// Quickstart: the full pipeline on the paper's flagship solvable example,
// the lossy link over {<-, ->} (Coulouma-Godard-Peters [8]), phrased
// against the api facade (Session/Query -- see src/api/api.hpp).
//
//   1. Name the adversary as a grid point and open a Session.
//   2. Check consensus solvability (Theorem 6.6 / Corollary 5.6) with one
//      solvability query.
//   3. Extract the universal algorithm of Theorem 5.5 from the result.
//   4. Run it in the synchronous round simulator and verify T/A/V.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>
#include <random>

#include "adversary/lossy_link.hpp"
#include "adversary/sampler.hpp"
#include "api/api.hpp"
#include "runtime/simulator.hpp"
#include "runtime/trace.hpp"
#include "runtime/universal_runner.hpp"
#include "runtime/verify.hpp"

int main() {
  using namespace topocon;

  // 1. The adversary: each round it picks "<-" (only 1 -> 0 delivered) or
  //    "->" (only 0 -> 1 delivered) -- grid point {"lossy_link", n=2,
  //    mask=0b011}. The session owns the thread pool and keeps every
  //    certificate it returns alive.
  const auto adversary = make_lossy_link(0b011);
  std::cout << "Adversary: " << adversary->name() << "\n";
  api::Session session;

  // 2. Solvability: one query runs the iterative deepening over the
  //    epsilon-approximation.
  const sweep::JobOutcome outcome =
      session.run_one(api::solvability({"lossy_link", 2, 0b011}));
  const SolvabilityResult& result = outcome.result;
  std::cout << "Verdict:   " << to_string(result.verdict)
            << " (certificate depth " << result.certified_depth << ")\n";
  if (result.verdict != SolvabilityVerdict::kSolvable) return 1;

  // 3. The universal algorithm is the decision table plus full information.
  const UniversalAlgorithm algo(*result.table);
  std::cout << "Universal algorithm: " << result.table->size()
            << " decision entries, decides every run by round "
            << result.table->worst_case_decision_round() << "\n\n";

  // 4. Simulate a few admissible runs and verify the consensus spec.
  std::mt19937_64 rng(1);
  for (const InputVector& inputs : {InputVector{0, 1}, InputVector{1, 1},
                                   InputVector{1, 0}, InputVector{0, 0}}) {
    const RunPrefix prefix = sample_prefix(*adversary, inputs, 6, rng);
    const ConsensusOutcome outcome = simulate(algo, prefix);
    const ConsensusCheck check = check_consensus(outcome, inputs);
    std::cout << prefix.to_string() << "\n  -> decisions: ";
    for (int p = 0; p < 2; ++p) {
      std::cout << "p" << p + 1 << "=" << *outcome.decisions[static_cast<std::size_t>(p)]
                << " (round " << outcome.decision_round[static_cast<std::size_t>(p)]
                << ")  ";
    }
    std::cout << (check.ok() ? "[T/A/V ok]" : check.detail) << "\n";
  }

  // Round-by-round timeline of one run (who knows what, who decides when).
  RunPrefix prefix;
  prefix.inputs = {0, 1};
  prefix.graphs = {adversary->graph(0), adversary->graph(1)};
  std::cout << "\nTimeline:\n" << trace_execution(algo, prefix).to_string();
  return 0;
}
