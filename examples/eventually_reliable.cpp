// The non-compact story of Section 6.3, end to end, on the finite-loss
// adversary ("eventually forever reliable"):
//   * the closure analysis stays valence-merged at every depth, so the
//     compact-case machinery (Theorem 6.6) can never certify it;
//   * yet AckConsensus solves consensus in every admissible run, because
//     admissibility excludes the limit sequences with infinitely many
//     losses -- broadcastability of the components (Theorem 6.7) holds.
//
// Usage: eventually_reliable [N] [RUNS]
#include <iostream>
#include <random>
#include <string>

#include "adversary/finite_loss.hpp"
#include "adversary/sampler.hpp"
#include "api/api.hpp"
#include "runtime/ack_consensus.hpp"
#include "runtime/simulator.hpp"
#include "runtime/verify.hpp"

int main(int argc, char** argv) {
  using namespace topocon;
  const int n = argc > 1 ? std::stoi(argv[1]) : 3;
  const int runs = argc > 2 ? std::stoi(argv[2]) : 20;

  const FiniteLossAdversary adversary(n);
  std::cout << "Adversary: " << adversary.name()
            << " (non-compact; closure = all graph sequences)\n\n";

  std::cout << "Closure analysis (always merged -- Theorem 6.6 cannot "
               "apply):\n";
  api::Session session;
  AnalysisOptions options;
  options.depth = 3;
  options.max_states = 4'000'000;
  const sweep::JobOutcome closure =
      session.run_one(api::depth_series({"finite_loss", n, 0}, options));
  for (const DepthStats& stats : closure.series) {
    std::cout << "  depth " << stats.depth << ": " << stats.num_components
              << " components, merged " << stats.merged_components
              << ", separated: " << (stats.separated ? "yes" : "no")
              << "\n";
  }

  std::cout << "\nAckConsensus on sampled admissible runs:\n";
  const AckConsensus algo(n);
  std::mt19937_64 rng(2026);
  int ok = 0;
  for (int trial = 0; trial < runs; ++trial) {
    const InputVector inputs = sample_inputs(n, 2, rng);
    const RunPrefix prefix = sample_prefix(adversary, inputs, 24, rng);
    const ConsensusOutcome outcome = simulate(algo, prefix);
    const ConsensusCheck check = check_consensus(outcome, inputs);
    ok += check.ok();
    if (trial < 8) {
      std::cout << "  run " << trial << ": inputs (";
      for (std::size_t p = 0; p < inputs.size(); ++p) {
        std::cout << (p ? "," : "") << inputs[p];
      }
      std::cout << ") -> decided " << *outcome.decisions[0] << " by round "
                << outcome.last_decision_round() << "  "
                << (check.ok() ? "[ok]" : check.detail) << "\n";
    }
  }
  std::cout << "  " << ok << "/" << runs
            << " runs satisfied Termination/Agreement/Validity\n";
  return ok == runs ? 0 : 1;
}
