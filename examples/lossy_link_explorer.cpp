// Interactive explorer for the n = 2 lossy-link family (Section 6.1).
//
// Usage: lossy_link_explorer [SUBSET] [DEPTH]
//   SUBSET: any combination of the letters l, r, b  (left "<-", right "->",
//           both "<->"); default "lrb" = the full, impossible adversary.
//   DEPTH:  analysis depth (default 4).
//
// Prints the epsilon-approximation component structure at the requested
// depth (computed by the root-sharded parallel engine), the solvability
// verdict, broadcaster information per component, and -- when the
// adversary is unsolvable -- a concrete epsilon-chain and fair-sequence
// prefix witnessing the obstruction.
//
// Accepts --sweep-threads=T (default: hardware concurrency; the printed
// output is identical for every T) and --sweep-json=PATH (solvability
// results as JSON).
#include <bit>
#include <iostream>
#include <string>

#include "adversary/lossy_link.hpp"
#include "analysis/oracles.hpp"
#include "analysis/report.hpp"
#include "api/api.hpp"
#include "core/obstruction.hpp"
#include "core/solvability.hpp"
#include "runtime/sweep/cli.hpp"
#include "runtime/sweep/parallel_solver.hpp"

int main(int argc, char** argv) {
  using namespace topocon;
  const sweep::SweepCliOptions sweep_options =
      sweep::consume_sweep_args(&argc, argv);

  unsigned mask = 0;
  const std::string subset = argc > 1 ? argv[1] : "lrb";
  for (const char c : subset) {
    if (c == 'l') mask |= 0b001;
    if (c == 'r') mask |= 0b010;
    if (c == 'b') mask |= 0b100;
  }
  if (mask == 0) {
    std::cerr << "usage: lossy_link_explorer [l|r|b]+ [depth]\n";
    return 2;
  }
  const int depth = argc > 2 ? std::stoi(argv[2]) : 4;

  const auto ma = make_lossy_link(mask);
  std::cout << "Adversary " << ma->name() << ", oracle: "
            << (lossy_link_solvable(mask) ? "solvable" : "impossible")
            << "\n\n";

  // One session provides both the raw fixed-depth analysis (via its
  // pool) and the solvability verdict (via a query).
  api::Session session;
  AnalysisOptions options;
  options.depth = depth;
  const DepthAnalysis analysis =
      sweep::parallel_analyze_depth(*ma, options, session.pool());
  std::cout << "Depth-" << depth << " epsilon-approximation: "
            << analysis.leaves().size() << " leaf classes, "
            << analysis.components.size() << " components, separated: "
            << yes_no(analysis.valence_separated) << "\n\n";

  Table table({"component", "leaves", "valences", "broadcasters"});
  for (std::size_t c = 0; c < analysis.components.size(); ++c) {
    const ComponentInfo& info = analysis.components[c];
    std::string valences;
    for (int v = 0; v < analysis.num_values; ++v) {
      if (info.valence_mask & (1u << v)) {
        valences += "z";
        valences += std::to_string(v);
        valences += " ";
      }
    }
    std::string broadcasters;
    NodeMask rest = info.broadcasters;
    while (rest != 0) {
      const int p = std::countr_zero(rest);
      rest &= rest - 1;
      broadcasters += "p";
      broadcasters += std::to_string(p + 1);
      broadcasters += " ";
    }
    table.add_row({std::to_string(c), std::to_string(info.num_leaves),
                   valences.empty() ? "-" : valences,
                   broadcasters.empty() ? "-" : broadcasters});
  }
  table.print(std::cout);

  const std::vector<sweep::JobOutcome> outcomes = session.run(
      "lossy-link-explorer",
      {api::solvability({"lossy_link", 2, static_cast<int>(mask)})});
  const SolvabilityResult& result = outcomes[0].result;
  std::cout << "\nChecker verdict: " << to_string(result.verdict) << "\n";

  if (!analysis.valence_separated) {
    std::cout << "\nObstruction (epsilon-chain from a 0-valent to a "
                 "1-valent run):\n";
    const auto chain = find_merged_chain(*ma, analysis, 0, 1);
    if (chain.has_value()) {
      for (std::size_t i = 0; i < chain->chain.size(); ++i) {
        std::cout << "  " << chain->chain[i].to_string();
        if (i + 1 < chain->chain.size()) {
          std::cout << "   (process " << chain->witness[i] + 1
                    << " cannot tell)";
        }
        std::cout << "\n";
      }
    }
    const auto fair = fair_sequence_prefix(*ma, depth);
    if (fair.has_value()) {
      std::cout << "\nFair-sequence prefix (Definition 5.16):\n  "
                << fair->to_string() << "\n";
    }
  }
  return sweep::flush_sweep_json(sweep_options) ? 0 : 1;
}
