// The eventually-stabilizing VSSC adversary of Section 6.3 ([6, 23]):
// consensus hinges on a vertex-stable root component living long enough.
// This example walks one sampled admissible run round by round, printing
// the root component of each round, when the guaranteed stable window
// occurs, and when each process verifies it and decides.
//
// Usage: stability_window [N] [STABILITY] [SEED]
#include <bit>
#include <iostream>
#include <random>
#include <string>

#include "adversary/sampler.hpp"
#include "adversary/vssc.hpp"
#include "graph/scc.hpp"
#include "runtime/simulator.hpp"
#include "runtime/verify.hpp"
#include "runtime/vssc_algo.hpp"

namespace {

std::string mask_to_string(topocon::NodeMask mask) {
  std::string s = "{";
  while (mask != 0) {
    const int p = std::countr_zero(mask);
    mask &= mask - 1;
    s += std::to_string(p + 1);
    if (mask != 0) s += ",";
  }
  return s + "}";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topocon;
  const int n = argc > 1 ? std::stoi(argv[1]) : 3;
  const int stability = argc > 2 ? std::stoi(argv[2]) : 3 * n;
  const unsigned seed = argc > 3 ? static_cast<unsigned>(std::stoul(argv[3])) : 7;

  const VsscAdversary adversary(n, stability);
  std::cout << "Adversary: " << adversary.name() << " ("
            << adversary.alphabet_size() << " rooted graphs)\n";

  std::mt19937_64 rng(seed);
  InputVector inputs = sample_inputs(n, 2, rng);
  const RunPrefix prefix =
      sample_prefix(adversary, inputs, 5 * n + stability, rng);

  std::cout << "Inputs: (";
  for (std::size_t p = 0; p < inputs.size(); ++p) {
    std::cout << (p ? "," : "") << inputs[p];
  }
  std::cout << ")\nPer-round root components:\n  ";
  for (int t = 0; t < prefix.length(); ++t) {
    std::cout << mask_to_string(
        root_members(prefix.graphs[static_cast<std::size_t>(t)]));
    if ((t + 1) % 10 == 0) std::cout << "\n  ";
  }
  std::cout << "\n\n";

  const VsscConsensus algo(n);
  const ConsensusOutcome outcome = simulate(algo, prefix);
  const ConsensusCheck check = check_consensus(outcome, inputs);
  for (int p = 0; p < n; ++p) {
    std::cout << "process " << p + 1 << ": ";
    if (outcome.decisions[static_cast<std::size_t>(p)].has_value()) {
      std::cout << "decided " << *outcome.decisions[static_cast<std::size_t>(p)]
                << " in round "
                << outcome.decision_round[static_cast<std::size_t>(p)] << "\n";
    } else {
      std::cout << "undecided within horizon\n";
    }
  }
  std::cout << (check.agreement && check.validity
                    ? "[agreement + validity ok]"
                    : check.detail)
            << "\n";
  return 0;
}
