// Santoro-Widmayer omission adversaries (Section 6.1, [21, 22]): sweep the
// per-round omission budget f for a chosen n, run the topological checker,
// and contrast the extracted universal algorithm with the FloodMin
// baseline on sampled runs.
//
// Usage: omission_sweep [N]
#include <iostream>
#include <random>
#include <string>

#include "adversary/omission.hpp"
#include "adversary/sampler.hpp"
#include "analysis/oracles.hpp"
#include "analysis/report.hpp"
#include "core/solvability.hpp"
#include "runtime/flood_min.hpp"
#include "runtime/simulator.hpp"
#include "runtime/universal_runner.hpp"
#include "runtime/verify.hpp"

int main(int argc, char** argv) {
  using namespace topocon;
  const int n = argc > 1 ? std::stoi(argv[1]) : 3;
  if (n < 2 || n > 3) {
    std::cerr << "N must be 2 or 3\n";
    return 2;
  }

  std::cout << "Omission sweep, n = " << n << "\n\n";
  Table table({"f", "oracle [21,22]", "checker", "universal T/A/V (sampled)",
               "FloodMin(n-1) T/A/V (sampled)"});
  std::mt19937_64 rng(5);
  for (int f = 0; f <= n * (n - 1); ++f) {
    const auto ma = make_omission_adversary(n, f);
    SolvabilityOptions options;
    options.max_depth = n == 2 ? 6 : 3;
    options.max_states = 6'000'000;
    const SolvabilityResult result = check_solvability(*ma, options);

    std::string universal = "-";
    if (result.table.has_value()) {
      const UniversalAlgorithm algo(*result.table);
      int ok = 0;
      const int runs = 100;
      for (int trial = 0; trial < runs; ++trial) {
        const InputVector inputs = sample_inputs(n, 2, rng);
        const RunPrefix prefix =
            sample_prefix(*ma, inputs, result.certified_depth + 1, rng);
        ok += check_consensus(simulate(algo, prefix), inputs).ok();
      }
      universal = std::to_string(ok) + "/" + std::to_string(runs);
    }

    const FloodMinAlgorithm flood(n - 1);
    int flood_ok = 0;
    const int runs = 100;
    for (int trial = 0; trial < runs; ++trial) {
      const InputVector inputs = sample_inputs(n, 2, rng);
      const RunPrefix prefix = sample_prefix(*ma, inputs, n - 1, rng);
      flood_ok += check_consensus(simulate(flood, prefix), inputs).ok();
    }

    table.add_row({std::to_string(f),
                   omission_solvable(n, f) ? "solvable" : "impossible",
                   to_string(result.verdict), universal,
                   std::to_string(flood_ok) + "/" + std::to_string(runs)});
  }
  table.print(std::cout);
  std::cout << "\nThe solvability threshold f = n-2 = " << n - 2
            << " (Santoro-Widmayer).\n";
  return 0;
}
