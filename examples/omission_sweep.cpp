// Santoro-Widmayer omission adversaries (Section 6.1, [21, 22]): sweep the
// per-round omission budget f for a chosen n on the parallel sweep engine,
// and contrast the extracted universal algorithm with the FloodMin
// baseline on sampled runs.
//
// Usage: omission_sweep [N] [--sweep-threads=T] [--sweep-json=PATH]
//   N                  processes (2 or 3; default 3)
//   --sweep-threads=T  engine threads (default: hardware concurrency)
//   --sweep-json=PATH  write the sweep results as JSON (byte-identical
//                      for every T)
#include <iostream>
#include <random>
#include <string>

#include "adversary/family.hpp"
#include "adversary/sampler.hpp"
#include "analysis/oracles.hpp"
#include "analysis/report.hpp"
#include "api/api.hpp"
#include "runtime/flood_min.hpp"
#include "runtime/simulator.hpp"
#include "runtime/sweep/cli.hpp"
#include "runtime/universal_runner.hpp"
#include "runtime/verify.hpp"

int main(int argc, char** argv) {
  using namespace topocon;
  const sweep::SweepCliOptions sweep_options =
      sweep::consume_sweep_args(&argc, argv);
  const int n = argc > 1 ? std::stoi(argv[1]) : 3;
  if (n < 2 || n > 3) {
    std::cerr << "N must be 2 or 3\n";
    return 2;
  }

  api::Session session;
  std::cout << "Omission sweep, n = " << n << " (" << session.num_threads()
            << " thread(s))\n\n";
  const int max_f = n * (n - 1);
  std::vector<api::Query> queries;
  SolvabilityOptions options;
  options.max_depth = n == 2 ? 6 : 3;
  options.max_states = 6'000'000;
  for (int f = 0; f <= max_f; ++f) {
    queries.push_back(api::solvability({"omission", n, f}, options));
  }
  const std::vector<sweep::JobOutcome> outcomes =
      session.run("omission-sweep-n" + std::to_string(n), queries);

  Table table({"f", "oracle [21,22]", "checker", "universal T/A/V (sampled)",
               "FloodMin(n-1) T/A/V (sampled)"});
  std::mt19937_64 rng(5);
  for (int f = 0; f <= max_f; ++f) {
    const SolvabilityResult& result =
        outcomes[static_cast<std::size_t>(f)].result;
    const auto ma = make_family_adversary({"omission", n, f});

    std::string universal = "-";
    if (result.table.has_value()) {
      const UniversalAlgorithm algo(*result.table);
      int ok = 0;
      const int runs = 100;
      for (int trial = 0; trial < runs; ++trial) {
        const InputVector inputs = sample_inputs(n, 2, rng);
        const RunPrefix prefix =
            sample_prefix(*ma, inputs, result.certified_depth + 1, rng);
        ok += check_consensus(simulate(algo, prefix), inputs).ok();
      }
      universal = std::to_string(ok) + "/" + std::to_string(runs);
    }

    const FloodMinAlgorithm flood(n - 1);
    int flood_ok = 0;
    const int runs = 100;
    for (int trial = 0; trial < runs; ++trial) {
      const InputVector inputs = sample_inputs(n, 2, rng);
      const RunPrefix prefix = sample_prefix(*ma, inputs, n - 1, rng);
      flood_ok += check_consensus(simulate(flood, prefix), inputs).ok();
    }

    table.add_row({std::to_string(f),
                   omission_solvable(n, f) ? "solvable" : "impossible",
                   to_string(result.verdict), universal,
                   std::to_string(flood_ok) + "/" + std::to_string(runs)});
  }
  table.print(std::cout);
  std::cout << "\nThe solvability threshold f = n-2 = " << n - 2
            << " (Santoro-Widmayer).\n";
  return sweep::flush_sweep_json(sweep_options) ? 0 : 1;
}
