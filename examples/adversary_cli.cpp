// General-purpose command-line front end: define an arbitrary oblivious
// message adversary by its graph alphabet, run the full topological
// analysis, and print verdict, components, and obstructions.
//
// Custom alphabets are not FamilyPoints, so this is the one example that
// talks to the core checker directly instead of phrasing an api::Query;
// its flags use the shared runtime/sweep/cli helpers like every other
// topocon binary (`--name=value` form).
//
// Usage: adversary_cli N ALPHABET [--max-depth=K] [--max-states=M]
//   N            number of processes (2..4)
//   ALPHABET     graphs separated by '|'; each graph is a comma-separated
//                list of directed edges "p>q" (0-based; self-loops
//                implicit); an empty graph is written as '-'.
//   --max-depth  iterative-deepening bound (default 6)
//   --max-states per-level state budget (default 6000000)
//
// Examples:
//   adversary_cli 2 '1>0|0>1'            # CGP solvable pair
//   adversary_cli 2 '1>0|0>1|0>1,1>0'    # Santoro-Widmayer impossible
//   adversary_cli 3 '0>1,1>2,2>0|-' --max-depth=4   # ring or silence
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/oblivious.hpp"
#include "analysis/report.hpp"
#include "core/obstruction.hpp"
#include "core/solvability.hpp"
#include "runtime/sweep/cli.hpp"

namespace {

using namespace topocon;

bool parse_graph(const std::string& spec, int n, Digraph& out) {
  out = Digraph(n);
  if (spec == "-" || spec.empty()) return true;
  std::stringstream stream(spec);
  std::string edge;
  while (std::getline(stream, edge, ',')) {
    const std::size_t arrow = edge.find('>');
    if (arrow == std::string::npos) return false;
    try {
      const int p = std::stoi(edge.substr(0, arrow));
      const int q = std::stoi(edge.substr(arrow + 1));
      if (p < 0 || p >= n || q < 0 || q >= n) return false;
      out.add_edge(p, q);
    } catch (const std::exception&) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: adversary_cli N 'graph|graph|...' "
                 "[--max-depth=K] [--max-states=M]\n"
                 "       graph = 'p>q,p>q,...' or '-' (self-loops "
                 "implicit)\n";
    return 2;
  }
  int n = 0;
  int max_depth = 6;
  std::size_t max_states = 6'000'000;
  try {
    n = sweep::parse_int_value("n", argv[1]);
    for (int i = 3; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (const auto v = sweep::flag_value(arg, "max-depth")) {
        max_depth = sweep::parse_int_value("max-depth", *v);
      } else if (const auto v = sweep::flag_value(arg, "max-states")) {
        max_states = static_cast<std::size_t>(
            sweep::parse_int_value("max-states", *v));
      } else {
        std::cerr << "adversary_cli: unknown argument '" << arg << "'\n";
        return 2;
      }
    }
  } catch (const std::invalid_argument& error) {
    std::cerr << "adversary_cli: " << error.what() << "\n";
    return 2;
  }
  if (n < 2 || n > 4) {
    std::cerr << "N must be in 2..4\n";
    return 2;
  }
  std::vector<Digraph> alphabet;
  std::stringstream specs(argv[2]);
  std::string spec;
  while (std::getline(specs, spec, '|')) {
    Digraph g(n);
    if (!parse_graph(spec, n, g)) {
      std::cerr << "cannot parse graph '" << spec << "'\n";
      return 2;
    }
    alphabet.push_back(g);
  }
  if (alphabet.empty()) {
    std::cerr << "empty alphabet\n";
    return 2;
  }

  std::cout << "Alphabet (" << alphabet.size() << " graphs):\n";
  for (std::size_t i = 0; i < alphabet.size(); ++i) {
    std::cout << "  G" << i << " = " << alphabet[i].to_string() << "\n";
  }
  const ObliviousAdversary ma(n, std::move(alphabet), "cli");

  SolvabilityOptions options;
  options.max_depth = max_depth;
  options.max_states = max_states;
  const SolvabilityResult result = check_solvability(ma, options);

  std::cout << "\nPer-depth analysis:\n";
  Table table({"depth", "leaf classes", "components", "merged",
               "separated", "broadcastable"});
  for (const DepthStats& stats : result.per_depth) {
    table.add_row({std::to_string(stats.depth),
                   std::to_string(stats.num_leaf_classes),
                   std::to_string(stats.num_components),
                   std::to_string(stats.merged_components),
                   yes_no(stats.separated),
                   yes_no(stats.valent_broadcastable)});
  }
  table.print(std::cout);

  std::cout << "\nVerdict: " << to_string(result.verdict);
  if (result.verdict == SolvabilityVerdict::kSolvable) {
    std::cout << " (certificate depth " << result.certified_depth
              << ", decision table with " << result.table->size()
              << " entries, worst decision round "
              << result.table->worst_case_decision_round() << ")";
  } else if (result.verdict == SolvabilityVerdict::kNotSeparated) {
    std::cout << " up to depth " << max_depth
              << " (conclusive impossibility evidence for compact "
                 "adversaries as depth grows)";
    const auto fair = fair_sequence_prefix(ma, std::min(max_depth, 5));
    if (fair.has_value()) {
      std::cout << "\nFair-sequence prefix: " << fair->to_string();
    }
  }
  std::cout << "\n";
  return result.verdict == SolvabilityVerdict::kSolvable ? 0 : 1;
}
