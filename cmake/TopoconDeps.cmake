# Third-party test/bench dependencies: GoogleTest and google-benchmark.
#
# Preference order:
#   1. A system install found via find_package (works fully offline, which is
#      how CI containers with pre-baked toolchains build this repo).
#   2. FetchContent from the upstream GitHub repos, pinned to known-good tags.
#
# Both paths end with the same imported targets available:
#   GTest::gtest, GTest::gtest_main, benchmark::benchmark.

include(FetchContent)

if(TOPOCON_BUILD_TESTS)
  find_package(GTest QUIET)
  if(GTest_FOUND)
    message(STATUS "topocon: using system GoogleTest")
  else()
    message(STATUS "topocon: fetching GoogleTest v1.14.0")
    FetchContent_Declare(googletest
      URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
      URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7)
    # Keep gtest out of our install set and off our warning flags.
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
    FetchContent_MakeAvailable(googletest)
  endif()
endif()

if(TOPOCON_BUILD_BENCH)
  find_package(benchmark QUIET)
  if(benchmark_FOUND)
    message(STATUS "topocon: using system google-benchmark")
  else()
    message(STATUS "topocon: fetching google-benchmark v1.8.3")
    FetchContent_Declare(googlebenchmark
      URL https://github.com/google/benchmark/archive/refs/tags/v1.8.3.tar.gz
      URL_HASH SHA256=6bc180a57d23d4d9515519f92b0c83d61b05b5bab188961f36ac7b06b0d9e9ce)
    set(BENCHMARK_ENABLE_TESTING OFF CACHE BOOL "" FORCE)
    set(BENCHMARK_ENABLE_INSTALL OFF CACHE BOOL "" FORCE)
    FetchContent_MakeAvailable(googlebenchmark)
  endif()
endif()
