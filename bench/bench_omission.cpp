// E5 -- Section 6.1 / [21, 22]: per-round omission adversaries. The table
// sweeps the per-round omission budget f and compares the checker against
// the Santoro-Widmayer threshold (solvable iff f <= n-2), and contrasts
// the universal algorithm with the FloodMin baseline of [22] (correct for
// f <= n-2 with decision round n-1; loses agreement at f = n-1).
//
// The checker column is produced by the parallel sweep engine: one
// solvability job per budget f, root-sharded internally. Run with
// --sweep-threads=N / --sweep-json=PATH (see bench_common.hpp).
#include <chrono>
#include <random>

#include "adversary/family.hpp"
#include "adversary/omission.hpp"
#include "adversary/sampler.hpp"
#include "analysis/oracles.hpp"
#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "core/solvability.hpp"
#include "runtime/flood_min.hpp"
#include "runtime/simulator.hpp"
#include "runtime/sweep/parallel_solver.hpp"
#include "runtime/verify.hpp"

namespace {

using namespace topocon;

// Fraction of sampled runs in which FloodMin(n-1) satisfies the spec.
double flood_min_success(const MessageAdversary& ma, int n, int samples) {
  std::mt19937_64 rng(7);
  const FloodMinAlgorithm algo(n - 1);
  int ok = 0;
  for (int trial = 0; trial < samples; ++trial) {
    const InputVector inputs = sample_inputs(n, 2, rng);
    const RunPrefix prefix = sample_prefix(ma, inputs, n - 1, rng);
    if (check_consensus(simulate(algo, prefix), inputs).ok()) ++ok;
  }
  return static_cast<double>(ok) / samples;
}

// Worst case over all admissible runs at decision depth (exhaustive).
bool flood_min_always_correct(const MessageAdversary& ma, int n) {
  const FloodMinAlgorithm algo(n - 1);
  for (const auto& letters : enumerate_letter_sequences(ma, n - 1)) {
    for (const InputVector& inputs : all_input_vectors(n, 2)) {
      RunPrefix prefix;
      prefix.inputs = inputs;
      prefix.graphs = letters_to_graphs(ma, letters);
      if (!check_consensus(simulate(algo, prefix), inputs).ok()) return false;
    }
  }
  return true;
}

void sweep(std::ostream& out, api::Session& session, int n, int max_f,
           int max_depth, std::size_t max_states) {
  std::vector<api::Query> queries;
  SolvabilityOptions options;
  options.max_depth = max_depth;
  options.max_states = max_states;
  options.build_table = false;
  for (int f = 0; f <= max_f; ++f) {
    queries.push_back(api::solvability({"omission", n, f}, options));
  }
  const auto start = std::chrono::steady_clock::now();
  const std::vector<sweep::JobOutcome> outcomes =
      session.run("E5-omission-n" + std::to_string(n), queries);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  out << "n = " << n << " processes:\n";
  Table table({"f (omissions/round)", "oracle [21,22]", "checker verdict",
               "cert depth", "FloodMin(n-1) exhaustive",
               "FloodMin(n-1) sampled ok"});
  for (int f = 0; f <= max_f; ++f) {
    const SolvabilityResult& result =
        outcomes[static_cast<std::size_t>(f)].result;
    const auto ma = make_omission_adversary(n, f);
    const bool exhaustive = flood_min_always_correct(*ma, n);
    table.add_row(
        {std::to_string(f),
         omission_solvable(n, f) ? "solvable" : "impossible",
         to_string(result.verdict),
         result.certified_depth >= 0 ? std::to_string(result.certified_depth)
                                     : "-",
         yes_no(exhaustive), fmt(flood_min_success(*ma, n, 300), 2)});
  }
  table.print(out);
  out << "(sweep: " << queries.size() << " jobs in " << fmt(elapsed, 3)
      << " s on " << session.num_threads() << " thread(s))\n\n";
}

void print_report(std::ostream& out) {
  out << "== E5: Santoro-Widmayer omission sweep (Section 6.1, [21, 22])\n\n";
  api::Session session;
  sweep(out, session, 2, 2, 6, 2'000'000);
  sweep(out, session, 3, 4, 3, 6'000'000);
  out << "Expected shape: solvable exactly for f <= n-2; FloodMin(n-1)\n"
         "exhaustively correct in the solvable regime and failing at\n"
         "f = n-1 (the adversary can silence the minimum's holder).\n\n";
}

void BM_CheckOmission(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int f = static_cast<int>(state.range(1));
  const auto ma = make_omission_adversary(n, f);
  SolvabilityOptions options;
  options.max_depth = n == 2 ? 5 : 2;
  options.max_states = 6'000'000;
  options.build_table = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_solvability(*ma, options));
  }
  set_peak_rss_counter(state);
}
BENCHMARK(BM_CheckOmission)->Args({2, 0})->Args({2, 1})->Args({3, 1})->Args({3, 2});

// Same check through the sharded engine; compare against BM_CheckOmission
// for the intra-job speedup at --sweep-threads.
void BM_ParallelCheckOmission(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int f = static_cast<int>(state.range(1));
  const auto ma = make_omission_adversary(n, f);
  SolvabilityOptions options;
  options.max_depth = n == 2 ? 5 : 2;
  options.max_states = 6'000'000;
  options.build_table = false;
  sweep::ThreadPool pool(sweep::default_num_threads());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sweep::parallel_check_solvability(*ma, options, pool));
  }
  set_peak_rss_counter(state);
}
BENCHMARK(BM_ParallelCheckOmission)->Args({3, 1})->Args({3, 2});

// The same check with sub-root sharding forced to `chunk` states per
// expansion chunk (0 = the process default): measures the frontier
// engine's chunking overhead at one lane and its load-balance win at
// --sweep-threads > 1. Results are identical for every chunk size.
void BM_ChunkedCheckOmission(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int f = static_cast<int>(state.range(1));
  const auto chunk = static_cast<std::size_t>(state.range(2));
  const auto ma = make_omission_adversary(n, f);
  SolvabilityOptions options;
  options.max_depth = n == 2 ? 5 : 2;
  options.max_states = 6'000'000;
  options.build_table = false;
  sweep::ThreadPool pool(sweep::default_num_threads());
  sweep::ShardingOptions sharding;
  sharding.chunk_states = chunk;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sweep::parallel_check_solvability(*ma, options, pool, {}, sharding));
  }
  set_peak_rss_counter(state);
}
BENCHMARK(BM_ChunkedCheckOmission)
    ->Args({3, 2, 64})
    ->Args({3, 2, 1024})
    ->Args({3, 2, 0});

void BM_FloodMinRound(benchmark::State& state) {
  const int n = 3;
  const auto ma = make_omission_adversary(n, 1);
  std::mt19937_64 rng(3);
  const RunPrefix prefix = sample_prefix(*ma, {0, 1, 1}, 16, rng);
  const FloodMinAlgorithm algo(n - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(algo, prefix));
  }
}
BENCHMARK(BM_FloodMinRound);

}  // namespace

TOPOCON_BENCH_MAIN(print_report)
