// E1 -- Figure 2 (paper Section 3): the process-time graph at time t = 2
// with n = 3 processes and inputs x = (1, 0, 1), with process 1's view
// highlighted. Prints the exact node/edge structure and the dot rendering,
// then benchmarks process-time-graph construction and view extraction.
#include <sstream>

#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "graph/enumerate.hpp"
#include "ptg/process_time_graph.hpp"
#include "ptg/view_intern.hpp"

namespace {

using namespace topocon;

RunPrefix figure2_prefix() {
  // Round 1 and round 2 graphs chosen to match the edge pattern of the
  // paper's Figure 2 (1-indexed processes 1,2,3 = indices 0,1,2):
  // round 1: 1->2, 2->3; round 2: 2->1, 3->2.
  RunPrefix prefix;
  prefix.inputs = {1, 0, 1};
  prefix.graphs = {Digraph::from_edges(3, {{0, 1}, {1, 2}}),
                   Digraph::from_edges(3, {{1, 0}, {2, 1}})};
  return prefix;
}

void print_report(std::ostream& out) {
  out << "== E1: Figure 2 -- process-time graph PT^2, n = 3, x = (1,0,1)\n\n";
  const RunPrefix prefix = figure2_prefix();
  const ProcessTimeGraph ptg(prefix);
  out << ptg.to_string() << '\n';

  out << "View of process 1 (index 0) at t = 2 (highlighted in Figure 2):\n";
  const auto cone = ptg.view_nodes(0, 2);
  Table table({"time", "nodes in view"});
  for (int t = 0; t <= 2; ++t) {
    std::ostringstream nodes;
    for (int p = 0; p < 3; ++p) {
      if (mask_contains(cone[static_cast<std::size_t>(t)], p)) {
        nodes << '(' << p + 1 << ',' << t << ") ";
      }
    }
    table.add_row({std::to_string(t), nodes.str()});
  }
  table.print(out);

  out << "\nGraphviz rendering (view of process 1 in bold green):\n"
      << ptg.to_dot(0) << '\n';
}

void BM_PtgConstruction(benchmark::State& state) {
  const RunPrefix prefix = figure2_prefix();
  for (auto _ : state) {
    ProcessTimeGraph ptg(prefix);
    benchmark::DoNotOptimize(ptg.depth());
  }
}
BENCHMARK(BM_PtgConstruction);

void BM_ViewConeExtraction(benchmark::State& state) {
  // Longer prefixes: repeat the two figure rounds.
  RunPrefix prefix = figure2_prefix();
  for (int i = 0; i < 16; ++i) {
    prefix.graphs.push_back(prefix.graphs[static_cast<std::size_t>(i % 2)]);
  }
  const ProcessTimeGraph ptg(prefix);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ptg.view_nodes(0, ptg.depth()));
  }
}
BENCHMARK(BM_ViewConeExtraction);

void BM_ViewInterningPerPrefix(benchmark::State& state) {
  RunPrefix prefix = figure2_prefix();
  const auto graphs = all_graphs(3);
  for (int i = 0; i < static_cast<int>(state.range(0)) - 2; ++i) {
    prefix.graphs.push_back(graphs[static_cast<std::size_t>(i * 7 % 64)]);
  }
  for (auto _ : state) {
    ViewInterner interner;
    benchmark::DoNotOptimize(interner.of_prefix(prefix));
  }
}
BENCHMARK(BM_ViewInterningPerPrefix)->Arg(4)->Arg(8)->Arg(16);

void BM_ViewsEqual(benchmark::State& state) {
  const RunPrefix prefix = figure2_prefix();
  const ProcessTimeGraph a(prefix), b(prefix);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProcessTimeGraph::views_equal(a, 0, b, 0, 2));
  }
}
BENCHMARK(BM_ViewsEqual);

}  // namespace

TOPOCON_BENCH_MAIN(print_report)
