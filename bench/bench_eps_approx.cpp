// E6 -- Section 6.2 / Figure 4: epsilon-approximation convergence for
// compact (oblivious) adversaries. For each adversary the series shows how
// the epsilon = 2^-t components refine as t grows: for solvable
// adversaries the valence regions separate at a finite depth and the
// valent components become broadcastable (Theorem 6.6); for the
// unsolvable full lossy link they stay merged at every depth. This is the
// quantitative form of Figure 4's picture (components with positive
// distance).
#include <memory>

#include "adversary/lossy_link.hpp"
#include "adversary/omission.hpp"
#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "core/epsilon_approx.hpp"

namespace {

using namespace topocon;

void print_series(std::ostream& out, const sweep::JobOutcome& outcome) {
  out << "Adversary " << outcome.family << " " << outcome.label << ":\n";
  Table table({"depth t (eps=2^-t)", "leaf classes", "components",
               "merged", "separated", "valent broadcastable",
               "distinct views"});
  for (const DepthStats& stats : outcome.series) {
    table.add_row({std::to_string(stats.depth),
                   std::to_string(stats.num_leaf_classes),
                   std::to_string(stats.num_components),
                   std::to_string(stats.merged_components),
                   yes_no(stats.separated),
                   yes_no(stats.valent_broadcastable),
                   std::to_string(stats.interner_views)});
  }
  table.print(out);
  out << '\n';
}

void print_report(std::ostream& out) {
  out << "== E6: epsilon-approximation convergence (Section 6.2, "
         "Figure 4)\n\n";
  api::Session session;
  std::vector<api::Query> queries;
  AnalysisOptions to8;
  to8.depth = 8;
  to8.keep_levels = false;
  queries.push_back(api::depth_series({"lossy_link", 2, 0b011}, to8));
  queries.push_back(api::depth_series({"lossy_link", 2, 0b101}, to8));
  queries.push_back(api::depth_series({"lossy_link", 2, 0b111}, to8));
  AnalysisOptions omission4 = to8;
  omission4.depth = 4;
  omission4.max_states = 6'000'000;
  queries.push_back(api::depth_series({"omission", 3, 1}, omission4));
  for (const sweep::JobOutcome& outcome :
       session.run("E6-eps-convergence", queries)) {
    print_series(out, outcome);
  }
  out << "Expected shape: solvable adversaries separate at depth 1 and "
         "stay\nseparated (refinement); the full lossy link keeps >= 1 "
         "merged\ncomponent at every depth.\n\n";

  // Why the MINIMUM topology: the alternative topologies of Section 4.1
  // over-separate -- they declare even the impossible adversary separated.
  // Each topology is one depth-3 series job on the sweep engine.
  out << "Topology comparison on the impossible {<-, ->, <->} at depth "
         "3:\n";
  std::vector<api::Query> topo_queries;
  const auto topology_options = [](AdjacencyTopology topology,
                                   NodeMask pset) {
    AnalysisOptions options;
    options.depth = 3;
    options.keep_levels = false;
    options.topology = topology;
    options.pview_set = pset;
    return options;
  };
  topo_queries.push_back(api::depth_series(
      {"lossy_link", 2, 0b111}, topology_options(AdjacencyTopology::kMin, 0)));
  topo_queries.push_back(
      api::depth_series({"lossy_link", 2, 0b111},
                        topology_options(AdjacencyTopology::kPView, 0b01)));
  topo_queries.push_back(
      api::depth_series({"lossy_link", 2, 0b111},
                        topology_options(AdjacencyTopology::kPView, 0b10)));
  topo_queries.push_back(
      api::depth_series({"lossy_link", 2, 0b111},
                        topology_options(AdjacencyTopology::kPView, 0b11)));
  const auto topo_outcomes =
      session.run("E6-topology-comparison", topo_queries);
  const char* topo_names[] = {"d_min (Section 4.2)", "d_{1} (P-view, P={1})",
                              "d_{2} (P-view, P={2})",
                              "d_max (common prefix)"};
  const char* topo_criterion[] = {"YES (Thm 6.6)", "no", "no", "no"};
  Table topo({"topology", "components", "valence separated",
              "is a solvability criterion"});
  for (std::size_t i = 0; i < topo_outcomes.size(); ++i) {
    const DepthStats& at3 = topo_outcomes[i].series.back();
    topo.add_row({topo_names[i], std::to_string(at3.num_components),
                  yes_no(at3.separated), topo_criterion[i]});
  }
  topo.print(out);
  out << "\nOnly d_min keeps the impossible adversary merged; the P-view\n"
         "and common-prefix topologies over-separate (Theorem 5.4 gives\n"
         "clopen decision sets in them too, but separation there is not\n"
         "sufficient for solvability).\n\n";
}

void BM_AnalyzeDepth(benchmark::State& state) {
  const auto ma = make_lossy_link(static_cast<unsigned>(state.range(0)));
  const int depth = static_cast<int>(state.range(1));
  for (auto _ : state) {
    AnalysisOptions options;
    options.depth = depth;
    options.keep_levels = false;
    benchmark::DoNotOptimize(analyze_depth(*ma, options));
  }
}
BENCHMARK(BM_AnalyzeDepth)
    ->Args({0b111, 4})
    ->Args({0b111, 6})
    ->Args({0b111, 8})
    ->Args({0b011, 6});

void BM_AnalyzeDepthKeepLevels(benchmark::State& state) {
  const auto ma = make_lossy_link(0b111);
  for (auto _ : state) {
    AnalysisOptions options;
    options.depth = static_cast<int>(state.range(0));
    options.keep_levels = true;
    benchmark::DoNotOptimize(analyze_depth(*ma, options));
  }
}
BENCHMARK(BM_AnalyzeDepthKeepLevels)->Arg(4)->Arg(6);

void BM_AnalyzeOmissionN3(benchmark::State& state) {
  const auto ma = make_omission_adversary(3, 1);
  for (auto _ : state) {
    AnalysisOptions options;
    options.depth = static_cast<int>(state.range(0));
    options.keep_levels = false;
    options.max_states = 6'000'000;
    benchmark::DoNotOptimize(analyze_depth(*ma, options));
  }
}
BENCHMARK(BM_AnalyzeOmissionN3)->Arg(2)->Arg(3);

}  // namespace

TOPOCON_BENCH_MAIN(print_report)
