// E6 -- Section 6.2 / Figure 4: epsilon-approximation convergence for
// compact (oblivious) adversaries. For each adversary the series shows how
// the epsilon = 2^-t components refine as t grows: for solvable
// adversaries the valence regions separate at a finite depth and the
// valent components become broadcastable (Theorem 6.6); for the
// unsolvable full lossy link they stay merged at every depth. This is the
// quantitative form of Figure 4's picture (components with positive
// distance).
#include <memory>

#include "adversary/lossy_link.hpp"
#include "adversary/omission.hpp"
#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "core/epsilon_approx.hpp"

namespace {

using namespace topocon;

void series(std::ostream& out, const MessageAdversary& ma, int max_depth,
            std::size_t max_states = 2'000'000) {
  out << "Adversary " << ma.name() << ":\n";
  Table table({"depth t (eps=2^-t)", "leaf classes", "components",
               "merged", "separated", "valent broadcastable",
               "distinct views"});
  auto interner = std::make_shared<ViewInterner>();
  for (int depth = 1; depth <= max_depth; ++depth) {
    AnalysisOptions options;
    options.depth = depth;
    options.keep_levels = false;
    options.max_states = max_states;
    const DepthAnalysis analysis = analyze_depth(ma, options, interner);
    if (analysis.truncated) break;
    table.add_row({std::to_string(depth),
                   std::to_string(analysis.leaves().size()),
                   std::to_string(analysis.components.size()),
                   std::to_string(analysis.merged_components),
                   yes_no(analysis.valence_separated),
                   yes_no(analysis.valent_broadcastable),
                   std::to_string(interner->size())});
  }
  table.print(out);
  out << '\n';
}

void print_report(std::ostream& out) {
  out << "== E6: epsilon-approximation convergence (Section 6.2, "
         "Figure 4)\n\n";
  series(out, *make_lossy_link(0b011), 8);   // solvable pair
  series(out, *make_lossy_link(0b101), 8);   // solvable, broadcaster 1
  series(out, *make_lossy_link(0b111), 8);   // impossible
  series(out, *make_omission_adversary(3, 1), 4, 6'000'000);
  out << "Expected shape: solvable adversaries separate at depth 1 and "
         "stay\nseparated (refinement); the full lossy link keeps >= 1 "
         "merged\ncomponent at every depth.\n\n";

  // Why the MINIMUM topology: the alternative topologies of Section 4.1
  // over-separate -- they declare even the impossible adversary separated.
  out << "Topology comparison on the impossible {<-, ->, <->} at depth "
         "3:\n";
  Table topo({"topology", "components", "valence separated",
              "is a solvability criterion"});
  const auto full = make_lossy_link(0b111);
  auto run = [&](const char* name, AdjacencyTopology topology,
                 NodeMask pset, const char* criterion) {
    AnalysisOptions options;
    options.depth = 3;
    options.keep_levels = false;
    options.topology = topology;
    options.pview_set = pset;
    const DepthAnalysis analysis = analyze_depth(*full, options);
    topo.add_row({name, std::to_string(analysis.components.size()),
                  yes_no(analysis.valence_separated), criterion});
  };
  run("d_min (Section 4.2)", AdjacencyTopology::kMin, 0, "YES (Thm 6.6)");
  run("d_{1} (P-view, P={1})", AdjacencyTopology::kPView, 0b01, "no");
  run("d_{2} (P-view, P={2})", AdjacencyTopology::kPView, 0b10, "no");
  run("d_max (common prefix)", AdjacencyTopology::kPView, 0b11, "no");
  topo.print(out);
  out << "\nOnly d_min keeps the impossible adversary merged; the P-view\n"
         "and common-prefix topologies over-separate (Theorem 5.4 gives\n"
         "clopen decision sets in them too, but separation there is not\n"
         "sufficient for solvability).\n\n";
}

void BM_AnalyzeDepth(benchmark::State& state) {
  const auto ma = make_lossy_link(static_cast<unsigned>(state.range(0)));
  const int depth = static_cast<int>(state.range(1));
  for (auto _ : state) {
    AnalysisOptions options;
    options.depth = depth;
    options.keep_levels = false;
    benchmark::DoNotOptimize(analyze_depth(*ma, options));
  }
}
BENCHMARK(BM_AnalyzeDepth)
    ->Args({0b111, 4})
    ->Args({0b111, 6})
    ->Args({0b111, 8})
    ->Args({0b011, 6});

void BM_AnalyzeDepthKeepLevels(benchmark::State& state) {
  const auto ma = make_lossy_link(0b111);
  for (auto _ : state) {
    AnalysisOptions options;
    options.depth = static_cast<int>(state.range(0));
    options.keep_levels = true;
    benchmark::DoNotOptimize(analyze_depth(*ma, options));
  }
}
BENCHMARK(BM_AnalyzeDepthKeepLevels)->Arg(4)->Arg(6);

void BM_AnalyzeOmissionN3(benchmark::State& state) {
  const auto ma = make_omission_adversary(3, 1);
  for (auto _ : state) {
    AnalysisOptions options;
    options.depth = static_cast<int>(state.range(0));
    options.keep_levels = false;
    options.max_states = 6'000'000;
    benchmark::DoNotOptimize(analyze_depth(*ma, options));
  }
}
BENCHMARK(BM_AnalyzeOmissionN3)->Arg(2)->Arg(3);

}  // namespace

TOPOCON_BENCH_MAIN(print_report)
