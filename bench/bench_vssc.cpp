// E8 -- Section 6.3 / [6, 23]: eventually-stabilizing VSSC adversaries.
// Sweeps the stability parameter k and regenerates the paper's shape:
//  * the safety closure (all rooted graphs, obliviously) never separates,
//    independent of k -- solvability is invisible to prefix analysis;
//  * short stability (k = 1, the oblivious case) is known impossible;
//  * long isolated stability (k >= 3n) is solvable: the stable-window
//    algorithm decides in every sampled admissible run shortly after the
//    guaranteed window, and never violates agreement or validity.
#include <algorithm>
#include <random>

#include "adversary/sampler.hpp"
#include "adversary/vssc.hpp"
#include "analysis/oracles.hpp"
#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "core/solvability.hpp"
#include "runtime/simulator.hpp"
#include "runtime/verify.hpp"
#include "runtime/vssc_algo.hpp"

namespace {

using namespace topocon;

void sweep(std::ostream& out, api::Session& session, int n, int max_k) {
  out << "n = " << n << " processes (stable-window algorithm with "
      << "verification window 2n = " << 2 * n << "):\n";
  std::vector<api::Query> queries;
  SolvabilityOptions closure_options;
  closure_options.max_depth = 3;
  closure_options.max_states = 4'000'000;
  closure_options.build_table = false;
  for (int k = 1; k <= max_k; ++k) {
    queries.push_back(api::solvability({"vssc", n, k}, closure_options));
  }
  const auto outcomes =
      session.run("E8-vssc-n" + std::to_string(n), queries);

  Table table({"stability k", "oracle", "closure verdict", "runs decided",
               "agreement+validity", "mean decision round"});
  std::mt19937_64 rng(123);
  for (int k = 1; k <= max_k; ++k) {
    const VsscAdversary ma(n, k);
    const SolvabilityResult& closure =
        outcomes[static_cast<std::size_t>(k - 1)].result;

    const VsscConsensus algo(n);
    const int runs = 120;
    const int horizon = std::max(4 * n + k, 3 * k + 4);
    int decided = 0, safe = 0;
    double sum_round = 0;
    int decided_count = 0;
    for (int trial = 0; trial < runs; ++trial) {
      const InputVector inputs = sample_inputs(n, 2, rng);
      const RunPrefix prefix = sample_prefix(ma, inputs, horizon, rng);
      const ConsensusOutcome outcome = simulate(algo, prefix);
      const ConsensusCheck check = check_consensus(outcome, inputs);
      if (check.agreement && check.validity) ++safe;
      if (outcome.all_decided()) {
        ++decided;
        sum_round += outcome.last_decision_round();
        ++decided_count;
      }
    }
    const auto oracle = vssc_solvable(n, k);
    table.add_row(
        {std::to_string(k),
         oracle.has_value() ? (*oracle ? "solvable" : "impossible")
                            : "open (for this library)",
         to_string(closure.verdict),
         std::to_string(decided) + "/" + std::to_string(runs),
         yes_no(safe == runs),
         decided_count > 0 ? fmt(sum_round / decided_count, 1) : "-"});
  }
  table.print(out);
  out << '\n';
}

void print_report(std::ostream& out) {
  out << "== E8: VSSC stability sweep (Section 6.3, [6, 23])\n\n";
  api::Session session;
  sweep(out, session, 2, 7);
  sweep(out, session, 3, 10);
  out << "Expected shape: closure NOT-SEPARATED for every k (prefix\n"
         "analysis cannot see liveness); decision rate 0 for k < 2n (no\n"
         "verifiable window), everything decided with T/A/V for k >= 3n;\n"
         "agreement and validity never violated at any k.\n\n";
}

void BM_VsscSimulation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const VsscAdversary ma(n, 3 * n);
  std::mt19937_64 rng(9);
  const RunPrefix prefix =
      sample_prefix(ma, InputVector(static_cast<std::size_t>(n), 0), 5 * n,
                    rng);
  const VsscConsensus algo(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(algo, prefix));
  }
}
BENCHMARK(BM_VsscSimulation)->Arg(2)->Arg(3)->Arg(4);

void BM_VsscSampling(benchmark::State& state) {
  const VsscAdversary ma(3, 9);
  std::mt19937_64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ma.sample(rng, 32));
  }
}
BENCHMARK(BM_VsscSampling);

void BM_RootVerification(benchmark::State& state) {
  // Cost of one full decision scan in the stable-window algorithm.
  const int n = 4;
  const VsscAdversary ma(n, 3 * n);
  std::mt19937_64 rng(2);
  const RunPrefix prefix =
      sample_prefix(ma, InputVector(static_cast<std::size_t>(n), 0), 6 * n,
                    rng);
  const VsscConsensus algo(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(algo, prefix));
  }
}
BENCHMARK(BM_RootVerification);

}  // namespace

TOPOCON_BENCH_MAIN(print_report)
