// Shared helper for bench binaries: print the reproduced paper artifact
// first, then run the google-benchmark timing section.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>

#define TOPOCON_BENCH_MAIN(print_report)                  \
  int main(int argc, char** argv) {                       \
    print_report(std::cout);                              \
    ::benchmark::Initialize(&argc, argv);                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                \
    ::benchmark::Shutdown();                              \
    return 0;                                             \
  }
