// Shared helper for bench binaries: print the reproduced paper artifact
// first, then run the google-benchmark timing section. Reports phrase
// their sweeps as api::Query lists on one api::Session per report (the
// session owns the pool; Session::run mirrors every named run into the
// global registry for --sweep-json).
//
// Sweep plumbing (parsed before google-benchmark sees argv):
//   --sweep-threads=N    session thread count for the report's sweeps
//                        (default: hardware_concurrency)
//   --sweep-json=PATH    dump all sweeps run by the report as JSON; the
//                        document is byte-identical for every N
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>

#include "api/api.hpp"
#include "runtime/sweep/cli.hpp"

#define TOPOCON_BENCH_MAIN(print_report)                                 \
  int main(int argc, char** argv) {                                      \
    const topocon::sweep::SweepCliOptions sweep_options =                \
        topocon::sweep::consume_sweep_args(&argc, argv);                 \
    print_report(std::cout);                                             \
    ::benchmark::Initialize(&argc, argv);                                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;  \
    ::benchmark::RunSpecifiedBenchmarks();                               \
    ::benchmark::Shutdown();                                             \
    if (!topocon::sweep::flush_sweep_json(sweep_options)) return 1;      \
    return 0;                                                            \
  }
