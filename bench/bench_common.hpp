// Shared helper for bench binaries: print the reproduced paper artifact
// first, then run the google-benchmark timing section. Reports phrase
// their sweeps as api::Query lists on one api::Session per report (the
// session owns the pool; Session::run mirrors every named run into the
// global registry for --sweep-json).
//
// Sweep plumbing (parsed before google-benchmark sees argv):
//   --sweep-threads=N    session thread count for the report's sweeps
//                        (default: hardware_concurrency)
//   --sweep-json=PATH    dump all sweeps run by the report as JSON; the
//                        document is byte-identical for every N
#pragma once

#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <iostream>

#include "api/api.hpp"
#include "runtime/sweep/cli.hpp"

namespace topocon {

/// Process-lifetime peak resident set in bytes (getrusage ru_maxrss is
/// KiB on Linux); 0 when unavailable. Attached to benchmark rows as the
/// "peak_rss_bytes" counter so the bench regression gate
/// (runtime/sweep/bench_compare.hpp) can catch memory regressions, not
/// just time ones. Lifetime-max semantics mean the counter is only
/// meaningful under a --filter that isolates the benchmark -- exactly
/// how the gate lane runs (tools/bench_gate.cmake).
inline void set_peak_rss_counter(benchmark::State& state) {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return;
  state.counters["peak_rss_bytes"] =
      benchmark::Counter(static_cast<double>(usage.ru_maxrss) * 1024.0);
}

}  // namespace topocon

#define TOPOCON_BENCH_MAIN(print_report)                                 \
  int main(int argc, char** argv) {                                      \
    const topocon::sweep::SweepCliOptions sweep_options =                \
        topocon::sweep::consume_sweep_args(&argc, argv);                 \
    print_report(std::cout);                                             \
    ::benchmark::Initialize(&argc, argv);                                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;  \
    ::benchmark::RunSpecifiedBenchmarks();                               \
    ::benchmark::Shutdown();                                             \
    if (!topocon::sweep::flush_sweep_json(sweep_options)) return 1;      \
    return 0;                                                            \
  }
