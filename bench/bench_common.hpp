// Shared helper for bench binaries: print the reproduced paper artifact
// first, then run the google-benchmark timing section.
//
// Sweep plumbing (parsed before google-benchmark sees argv):
//   --sweep-threads=N    thread count for every run_sweep in the report
//                        (default: hardware_concurrency)
//   --sweep-json=PATH    dump all sweeps run by the report as JSON; the
//                        document is byte-identical for every N
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>

#include "runtime/sweep/cli.hpp"
#include "runtime/sweep/engine.hpp"

#define TOPOCON_BENCH_MAIN(print_report)                                 \
  int main(int argc, char** argv) {                                      \
    const topocon::sweep::SweepCliOptions sweep_options =                \
        topocon::sweep::consume_sweep_args(&argc, argv);                 \
    print_report(std::cout);                                             \
    ::benchmark::Initialize(&argc, argv);                                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;  \
    ::benchmark::RunSpecifiedBenchmarks();                               \
    ::benchmark::Shutdown();                                             \
    if (!topocon::sweep::flush_sweep_json(sweep_options)) return 1;      \
    return 0;                                                            \
  }
