// E2 -- Figure 3 (paper Section 4): comparison of the P-view, minimum, and
// common-prefix distances on the two three-process executions of the
// figure. The paper states d_max = d_{3} = 1, d_{2} = 1/2, and
// d_min = d_{1} = 1/4; the table below regenerates exactly those values.
// The timing section benchmarks the distance computations on labelled
// executions and on process-time-graph prefixes.
#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "graph/enumerate.hpp"

namespace {

using namespace topocon;

LabelledExecution figure3_alpha() {
  return LabelledExecution{{{0, 0, 0}, {0, 0, 1}, {0, 1, 1}}};
}
LabelledExecution figure3_beta() {
  return LabelledExecution{{{0, 0, 1}, {0, 1, 1}, {1, 1, 1}}};
}

void print_report(std::ostream& out) {
  out << "== E2: Figure 3 -- P-view vs minimum vs common-prefix distance\n\n";
  const LabelledExecution alpha = figure3_alpha();
  const LabelledExecution beta = figure3_beta();
  Table table({"distance", "paper", "measured"});
  table.add_row({"d_max(alpha,beta)", "1", fmt(d_max(alpha, beta), 4)});
  table.add_row({"d_{3}(alpha,beta)", "1", fmt(d_process(alpha, beta, 2), 4)});
  table.add_row(
      {"d_{2}(alpha,beta)", "1/2 = 0.5", fmt(d_process(alpha, beta, 1), 4)});
  table.add_row(
      {"d_{1}(alpha,beta)", "1/4 = 0.25", fmt(d_process(alpha, beta, 0), 4)});
  table.add_row({"d_min(alpha,beta)", "1/4 = 0.25", fmt(d_min(alpha, beta), 4)});
  table.print(out);

  out << "\nTheorem 4.3 sanity on the same pair: d_P monotone in P:\n";
  Table mono({"P", "d_P"});
  mono.add_row({"{1}", fmt(d_pset(alpha, beta, 0b001), 4)});
  mono.add_row({"{1,2}", fmt(d_pset(alpha, beta, 0b011), 4)});
  mono.add_row({"{1,2,3} = [n]", fmt(d_pset(alpha, beta, 0b111), 4)});
  mono.print(out);
  out << '\n';
}

void BM_LabelledDistances(benchmark::State& state) {
  const LabelledExecution alpha = figure3_alpha();
  const LabelledExecution beta = figure3_beta();
  for (auto _ : state) {
    benchmark::DoNotOptimize(d_min(alpha, beta));
    benchmark::DoNotOptimize(d_max(alpha, beta));
  }
}
BENCHMARK(BM_LabelledDistances);

void BM_PrefixDistance(benchmark::State& state) {
  const auto graphs = lossy_link_graphs();
  RunPrefix a, b;
  a.inputs = {0, 1};
  b.inputs = {0, 1};
  const int len = static_cast<int>(state.range(0));
  for (int t = 0; t < len; ++t) {
    a.graphs.push_back(graphs[static_cast<std::size_t>(t % 2)]);
    b.graphs.push_back(graphs[static_cast<std::size_t>((t + t / 4) % 3)]);
  }
  ViewInterner interner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d_min(interner, a, b));
  }
}
BENCHMARK(BM_PrefixDistance)->Arg(4)->Arg(16)->Arg(64);

void BM_DiameterOfSet(benchmark::State& state) {
  const auto graphs = lossy_link_graphs();
  std::vector<RunPrefix> prefixes;
  for (int k = 0; k < static_cast<int>(state.range(0)); ++k) {
    RunPrefix prefix;
    prefix.inputs = {k % 2, (k / 2) % 2};
    for (int t = 0; t < 8; ++t) {
      prefix.graphs.push_back(graphs[static_cast<std::size_t>((k + t) % 3)]);
    }
    prefixes.push_back(std::move(prefix));
  }
  ViewInterner interner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(diameter_min(interner, prefixes));
  }
}
BENCHMARK(BM_DiameterOfSet)->Arg(8)->Arg(32);

}  // namespace

TOPOCON_BENCH_MAIN(print_report)
