// E9 -- Theorem 5.5: cost profile of the universal consensus algorithm.
// Reports, per solvable adversary: certificate depth, decision-table size,
// worst-case decision round, and the per-round fraction of runs fully
// decided (the "early decision" profile of the ball-containment rule).
// The timing section benchmarks certificate construction and the online
// per-round cost of running the extracted algorithm.
#include <random>

#include "adversary/lossy_link.hpp"
#include "adversary/omission.hpp"
#include "adversary/sampler.hpp"
#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "core/solvability.hpp"
#include "runtime/simulator.hpp"
#include "runtime/universal_runner.hpp"

namespace {

using namespace topocon;

void profile(std::ostream& out, const sweep::JobOutcome& outcome) {
  const SolvabilityResult& result = outcome.result;
  out << "Adversary " << outcome.family << " " << outcome.label << ": "
      << to_string(result.verdict);
  if (result.verdict != SolvabilityVerdict::kSolvable) {
    out << "\n\n";
    return;
  }
  out << ", certificate depth " << result.certified_depth
      << ", table entries " << result.table->size()
      << ", worst decision round "
      << result.table->worst_case_decision_round() << "\n";
  Table table({"round", "fraction of runs fully decided"});
  const auto& fractions = result.table->decided_fraction();
  for (std::size_t s = 0; s < fractions.size(); ++s) {
    table.add_row({std::to_string(s), fmt(fractions[s], 4)});
  }
  table.print(out);
  out << '\n';
}

void print_report(std::ostream& out) {
  out << "== E9: universal algorithm (Theorem 5.5) cost profile\n\n";
  api::Session session;
  std::vector<api::Query> queries;
  SolvabilityOptions to6;
  to6.max_depth = 6;
  queries.push_back(api::solvability({"lossy_link", 2, 0b011}, to6));
  queries.push_back(api::solvability({"lossy_link", 2, 0b101}, to6));
  queries.push_back(api::solvability({"lossy_link", 2, 0b100}, to6));
  SolvabilityOptions omission;
  omission.max_depth = 4;
  omission.max_states = 6'000'000;
  queries.push_back(api::solvability({"omission", 3, 1}, omission));
  for (const sweep::JobOutcome& outcome :
       session.run("E9-universal-profile", queries)) {
    profile(out, outcome);
  }
}

void BM_CertificateConstruction(benchmark::State& state) {
  const auto ma = make_lossy_link(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    SolvabilityOptions options;
    options.max_depth = 6;
    benchmark::DoNotOptimize(check_solvability(*ma, options));
  }
}
BENCHMARK(BM_CertificateConstruction)->Arg(0b011)->Arg(0b101)->Arg(0b100);

void BM_UniversalOnlineRound(benchmark::State& state) {
  // Per-run online cost: full-information step + table lookups over a
  // horizon of 16 rounds.
  const auto ma = make_lossy_link(0b011);
  const SolvabilityResult result = check_solvability(*ma);
  const UniversalAlgorithm algo(*result.table);
  std::mt19937_64 rng(4);
  const RunPrefix prefix = sample_prefix(*ma, {0, 1}, 16, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(algo, prefix));
  }
}
BENCHMARK(BM_UniversalOnlineRound);

void BM_TableLookup(benchmark::State& state) {
  const auto ma = make_lossy_link(0b011);
  const SolvabilityResult result = check_solvability(*ma);
  const DecisionTable& table = *result.table;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.decide(1, 0, 0));
    benchmark::DoNotOptimize(table.decide(1, 1, 3));
  }
}
BENCHMARK(BM_TableLookup);

}  // namespace

TOPOCON_BENCH_MAIN(print_report)
