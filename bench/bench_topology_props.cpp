// E10 -- Theorems 4.3 / 5.9 and Lemma 4.8 as measured sweeps: the
// pseudo-metric laws of d_P, the identity d_min = min_p d_{p}, the
// *failure* of the triangle inequality for d_min (why the minimum
// topology is only pseudo-semi-metric), and the diameter bound <= 1/2 for
// broadcastable components (Theorem 5.9). The timing section benchmarks
// the underlying distance kernels.
#include <bit>
#include <memory>
#include <random>

#include "adversary/lossy_link.hpp"
#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "core/epsilon_approx.hpp"
#include "core/metrics.hpp"
#include "graph/enumerate.hpp"

namespace {

using namespace topocon;

RunPrefix random_prefix(std::mt19937_64& rng,
                        const std::vector<Digraph>& graphs, int n, int len) {
  RunPrefix prefix;
  for (int p = 0; p < n; ++p) {
    prefix.inputs.push_back(static_cast<Value>(rng() % 2));
  }
  for (int t = 0; t < len; ++t) {
    prefix.graphs.push_back(graphs[rng() % graphs.size()]);
  }
  return prefix;
}

void print_report(std::ostream& out) {
  out << "== E10: topology laws as measured sweeps (Theorems 4.3, 5.9; "
         "Lemma 4.8)\n\n";
  std::mt19937_64 rng(2718);
  const auto graphs = all_graphs(3);
  ViewInterner interner;

  const int samples = 2000;
  int sym_ok = 0, tri_p_ok = 0, min_ok = 0, mono_ok = 0;
  int tri_min_violations = 0;
  for (int trial = 0; trial < samples; ++trial) {
    const RunPrefix a = random_prefix(rng, graphs, 3, 5);
    const RunPrefix b = random_prefix(rng, graphs, 3, 5);
    const RunPrefix c = random_prefix(rng, graphs, 3, 5);
    bool sym = true, tri = true, mono = true;
    double min_expected = 1.0;
    for (int p = 0; p < 3; ++p) {
      const double ab = d_process(interner, a, b, p);
      sym &= ab == d_process(interner, b, a, p);
      tri &= d_process(interner, a, c, p) <=
             ab + d_process(interner, b, c, p) + 1e-12;
      mono &= d_min(interner, a, b) <= ab && ab <= d_max(interner, a, b);
      min_expected = std::min(min_expected, ab);
    }
    sym_ok += sym;
    tri_p_ok += tri;
    mono_ok += mono;
    min_ok += d_min(interner, a, b) == min_expected;
    // d_min triangle inequality can fail:
    if (d_min(interner, a, c) >
        d_min(interner, a, b) + d_min(interner, b, c) + 1e-12) {
      ++tri_min_violations;
    }
  }
  Table laws({"law", "holds (out of 2000 random triples)"});
  laws.add_row({"d_{p} symmetry", std::to_string(sym_ok)});
  laws.add_row({"d_{p} triangle inequality", std::to_string(tri_p_ok)});
  laws.add_row({"d_min = min_p d_{p} (Lemma 4.8)", std::to_string(min_ok)});
  laws.add_row({"d_min <= d_{p} <= d_max (monotonicity)",
                std::to_string(mono_ok)});
  laws.add_row({"d_min triangle inequality VIOLATIONS (expected > 0)",
                std::to_string(tri_min_violations)});
  laws.print(out);

  out << "\nTheorem 5.9: broadcastable components of the solvable lossy "
         "links\nhave d_min-diameter <= 1/2:\n";
  Table diam({"adversary", "component", "broadcaster", "diameter",
              "<= 1/2"});
  for (unsigned mask : {0b011u, 0b101u, 0b110u}) {
    const auto ma = make_lossy_link(mask);
    AnalysisOptions options;
    options.depth = 3;
    const DepthAnalysis analysis = analyze_depth(*ma, options);
    std::vector<std::vector<RunPrefix>> members(analysis.components.size());
    for (std::size_t i = 0; i < analysis.leaves().size(); ++i) {
      members[static_cast<std::size_t>(analysis.leaf_component[i])].push_back(
          *reconstruct_prefix(*ma, analysis, static_cast<int>(i)));
    }
    for (std::size_t comp = 0; comp < analysis.components.size(); ++comp) {
      const ComponentInfo& info = analysis.components[comp];
      if (info.broadcasters == 0) continue;
      const double diameter = diameter_min(interner, members[comp]);
      diam.add_row({lossy_link_subset_name(mask), std::to_string(comp),
                    std::to_string(std::countr_zero(info.broadcasters) + 1),
                    fmt(diameter, 4), yes_no(diameter <= 0.5)});
    }
  }
  diam.print(out);
  out << '\n';
}

void BM_DProcessKernel(benchmark::State& state) {
  std::mt19937_64 rng(1);
  const auto graphs = all_graphs(3);
  const RunPrefix a = random_prefix(rng, graphs, 3,
                                    static_cast<int>(state.range(0)));
  const RunPrefix b = random_prefix(rng, graphs, 3,
                                    static_cast<int>(state.range(0)));
  ViewInterner interner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d_process(interner, a, b, 0));
  }
}
BENCHMARK(BM_DProcessKernel)->Arg(8)->Arg(32);

void BM_DMinKernel(benchmark::State& state) {
  std::mt19937_64 rng(2);
  const auto graphs = all_graphs(3);
  const RunPrefix a = random_prefix(rng, graphs, 3, 16);
  const RunPrefix b = random_prefix(rng, graphs, 3, 16);
  ViewInterner interner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d_min(interner, a, b));
  }
}
BENCHMARK(BM_DMinKernel);

}  // namespace

TOPOCON_BENCH_MAIN(print_report)
