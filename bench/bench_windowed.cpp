// E11 (ablation) -- windowed lossy link: how much per-graph persistence
// rescues consensus. Window 1 is the oblivious Santoro-Widmayer lossy link
// (impossible); for every window >= 2 the repetition constraint breaks the
// single-round perturbations of the bivalence chain and the checker
// certifies solvability with decisions at round `window`. A thematic
// sibling of the paper's Section 6.3: stability is what makes consensus
// possible. Also sweeps the Heard-Of family [7] as a second oblivious
// parameterization.
#include "adversary/heard_of.hpp"
#include "adversary/windowed.hpp"
#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "core/solvability.hpp"

namespace {

using namespace topocon;

void print_report(std::ostream& out) {
  out << "== E11 (ablation): repetition windows vs lossy-link "
         "solvability\n\n";
  api::Session session;
  std::vector<api::Query> windows;
  SolvabilityOptions window_options;
  window_options.max_depth = 8;
  for (int w = 1; w <= 4; ++w) {
    windows.push_back(
        api::solvability({"windowed_lossy_link", 2, w}, window_options));
  }
  const auto window_outcomes = session.run("E11-windowed", windows);

  Table table({"window w", "checker verdict", "cert depth",
               "worst decision round", "leaf classes at cert depth"});
  for (int w = 1; w <= 4; ++w) {
    const SolvabilityResult& result =
        window_outcomes[static_cast<std::size_t>(w - 1)].result;
    table.add_row(
        {std::to_string(w), to_string(result.verdict),
         result.certified_depth >= 0 ? std::to_string(result.certified_depth)
                                     : "-",
         result.table.has_value()
             ? std::to_string(result.table->worst_case_decision_round())
             : "-",
         std::to_string(result.per_depth.back().num_leaf_classes)});
  }
  table.print(out);
  out << "\nExpected shape: impossible at w = 1 (oblivious lossy link),\n"
         "solvable at every w >= 2 with certificate depth 2 (all\n"
         "admissible 2-prefixes are doubled graphs).\n\n";

  out << "Heard-Of sweep (per-receiver in-degree bound, [7]):\n";
  std::vector<api::Query> heard;
  for (int n = 2; n <= 3; ++n) {
    for (int k = 1; k <= n; ++k) {
      SolvabilityOptions options;
      options.max_depth = n == 2 ? 6 : 3;
      options.max_states = 6'000'000;
      options.build_table = false;
      heard.push_back(api::solvability({"heard_of", n, k}, options));
    }
  }
  const auto heard_outcomes = session.run("E11-heard-of", heard);
  Table ho({"n", "min heard-of k", "checker verdict"});
  std::size_t row = 0;
  for (int n = 2; n <= 3; ++n) {
    for (int k = 1; k <= n; ++k) {
      ho.add_row({std::to_string(n), std::to_string(k),
                  to_string(heard_outcomes[row++].result.verdict)});
    }
  }
  ho.print(out);
  out << "\nExpected shape: solvable only at k = n (complete graph); any\n"
         "slack lets the adversary silence one process forever.\n\n";
}

void BM_WindowedCheck(benchmark::State& state) {
  const auto ma = make_windowed_lossy_link(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SolvabilityOptions options;
    options.max_depth = 8;
    options.build_table = false;
    benchmark::DoNotOptimize(check_solvability(*ma, options));
  }
}
BENCHMARK(BM_WindowedCheck)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_HeardOfCheck(benchmark::State& state) {
  const auto ma =
      make_heard_of_adversary(3, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SolvabilityOptions options;
    options.max_depth = 2;
    options.max_states = 6'000'000;
    options.build_table = false;
    benchmark::DoNotOptimize(check_solvability(*ma, options));
  }
}
BENCHMARK(BM_HeardOfCheck)->Arg(2)->Arg(3);

}  // namespace

TOPOCON_BENCH_MAIN(print_report)
