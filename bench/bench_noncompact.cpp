// E7 -- Section 6.3 / Figure 5: non-compact message adversaries. The
// finite-loss adversary ("only finitely many lossy rounds") is solvable --
// the AckConsensus algorithm decides in every admissible run -- yet its
// epsilon-approximation stays valence-merged at EVERY depth, exactly the
// failure mode the paper proves for non-compact adversaries: the analysis
// only ever sees the (unsolvable) closure, and the excluded limit
// sequences (infinitely lossy runs) are what keeps the approximation
// connected. The report regenerates:
//   (1) the non-compactness exhibit (admissible chain, inadmissible limit),
//   (2) the per-depth closure analysis (always merged),
//   (3) AckConsensus decision-round statistics as a function of the loss
//       phase -- the witness that the adversary itself is solvable.
#include <algorithm>
#include <memory>
#include <random>

#include "adversary/finite_loss.hpp"
#include "adversary/sampler.hpp"
#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "core/epsilon_approx.hpp"
#include "runtime/ack_consensus.hpp"
#include "runtime/simulator.hpp"
#include "runtime/verify.hpp"

namespace {

using namespace topocon;

void print_report(std::ostream& out) {
  out << "== E7: non-compact adversaries -- finite-loss (Section 6.3, "
         "Figure 5)\n\n";
  const int n = 3;
  const FiniteLossAdversary ma(n);

  out << "(1) Non-compactness: empty^k . complete^w is admissible for "
         "every k,\n    its letter-wise limit empty^w is not:\n";
  int empty_letter = -1;
  for (int letter = 0; letter < ma.alphabet_size(); ++letter) {
    if (ma.graph(letter) == Digraph::empty(n)) empty_letter = letter;
  }
  Table limits({"sequence", "admissible"});
  for (int k = 1; k <= 4; ++k) {
    std::vector<int> stem(static_cast<std::size_t>(k), empty_letter);
    limits.add_row({"empty^" + std::to_string(k) + " . complete^w",
                    yes_no(ma.admits_lasso(stem, {ma.complete_letter()}))});
  }
  limits.add_row({"empty^w (the limit)",
                  yes_no(ma.admits_lasso({}, {empty_letter}))});
  limits.print(out);

  out << "\n(2) Closure analysis: merged at every depth (the "
         "epsilon-approximation\n    cannot certify this solvable "
         "adversary):\n";
  api::Session session;
  AnalysisOptions closure_options;
  closure_options.depth = 3;
  closure_options.keep_levels = false;
  closure_options.max_states = 6'000'000;
  const auto outcomes = session.run(
      "E7-finite-loss-closure",
      {api::depth_series({"finite_loss", n, 0}, closure_options)});
  Table closure({"depth", "components", "merged", "separated"});
  for (const DepthStats& stats : outcomes[0].series) {
    closure.add_row({std::to_string(stats.depth),
                     std::to_string(stats.num_components),
                     std::to_string(stats.merged_components),
                     yes_no(stats.separated)});
  }
  closure.print(out);

  out << "\n(3) ...yet AckConsensus decides every admissible run "
         "(solvable):\n";
  Table ack({"loss phase L", "runs", "all T/A/V ok", "mean decision round",
             "max decision round"});
  std::mt19937_64 rng(99);
  const AckConsensus algo(n);
  for (int loss = 0; loss <= 10; loss += 2) {
    const int runs = 200;
    int ok = 0, max_round = 0;
    double sum_round = 0;
    for (int trial = 0; trial < runs; ++trial) {
      const InputVector inputs = sample_inputs(n, 2, rng);
      RunPrefix prefix;
      prefix.inputs = inputs;
      std::uniform_int_distribution<int> pick(0, ma.alphabet_size() - 1);
      for (int t = 0; t < loss; ++t) {
        prefix.graphs.push_back(ma.graph(pick(rng)));
      }
      for (int t = 0; t < 4; ++t) {
        prefix.graphs.push_back(Digraph::complete(n));
      }
      const ConsensusOutcome outcome = simulate(algo, prefix);
      if (check_consensus(outcome, inputs).ok()) ++ok;
      const int round = outcome.last_decision_round();
      sum_round += round;
      max_round = std::max(max_round, round);
    }
    ack.add_row({std::to_string(loss), std::to_string(runs),
                 yes_no(ok == runs), fmt(sum_round / runs, 2),
                 std::to_string(max_round)});
  }
  ack.print(out);
  out << "\nExpected shape: admissibility column flips only at the limit; "
         "closure\nstays merged; AckConsensus always correct with decision "
         "round tracking\nthe end of the loss phase (+<= 2 rounds of "
         "flood + ack).\n\n";
}

void BM_AckSimulation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const FiniteLossAdversary ma(n);
  std::mt19937_64 rng(5);
  const RunPrefix prefix =
      sample_prefix(ma, InputVector(static_cast<std::size_t>(n), 1), 24, rng);
  const AckConsensus algo(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(algo, prefix));
  }
}
BENCHMARK(BM_AckSimulation)->Arg(2)->Arg(3)->Arg(4);

void BM_ClosureAnalysis(benchmark::State& state) {
  const FiniteLossAdversary ma(2);
  for (auto _ : state) {
    AnalysisOptions options;
    options.depth = static_cast<int>(state.range(0));
    options.keep_levels = false;
    benchmark::DoNotOptimize(analyze_depth(ma, options));
  }
}
BENCHMARK(BM_ClosureAnalysis)->Arg(3)->Arg(5);

}  // namespace

TOPOCON_BENCH_MAIN(print_report)
