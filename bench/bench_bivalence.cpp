// E4 -- Section 6.1: bivalence survival. The paper explains that
// forever-bivalent runs are the common limits of approach sequences from
// both decision regions, and notes that for the reduced lossy link
// {<-, ->} "all configurations reached after the first round are already
// univalent", while for {<-, ->, <->} bivalence survives forever. This
// bench regenerates that contrast as a per-depth series of merged
// (still-bivalent) component counts, prints a concrete fair-sequence
// prefix (Definition 5.16) with an epsilon-chain witness, and benchmarks
// the obstruction machinery.
#include <sstream>

#include "adversary/lossy_link.hpp"
#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "core/obstruction.hpp"

namespace {

using namespace topocon;

void print_series(std::ostream& out, const sweep::JobOutcome& outcome) {
  out << "Adversary " << outcome.label << ":\n";
  Table table({"depth", "leaf classes", "components", "merged (bivalent)"});
  for (const DepthStats& stats : outcome.series) {
    table.add_row({std::to_string(stats.depth),
                   std::to_string(stats.num_leaf_classes),
                   std::to_string(stats.num_components),
                   std::to_string(stats.merged_components)});
  }
  table.print(out);
  out << '\n';
}

void print_report(std::ostream& out) {
  out << "== E4: bivalence survival per depth (Section 6.1)\n\n";
  api::Session session;
  AnalysisOptions to7;
  to7.depth = 7;
  to7.keep_levels = false;
  const auto outcomes =
      session.run("E4-bivalence-survival",
                  {api::depth_series({"lossy_link", 2, 0b011}, to7),
                   api::depth_series({"lossy_link", 2, 0b111}, to7)});
  print_series(out, outcomes[0]);  // {<-, ->}: dies after round 1
  print_series(out, outcomes[1]);  // {<-, ->, <->}: survives forever

  out << "Fair-sequence prefix for {<-, ->, <->} (Definition 5.16): a run\n"
         "whose component is valence-merged at every depth:\n";
  const auto ma = make_lossy_link(0b111);
  const auto prefix = fair_sequence_prefix(*ma, 6);
  if (prefix.has_value()) {
    out << "  " << prefix->to_string() << "\n\n";
  }

  out << "Epsilon-chain witness at depth 4 (consecutive prefixes\n"
         "indistinguishable to the witness process):\n";
  AnalysisOptions options;
  options.depth = 4;
  const DepthAnalysis analysis = analyze_depth(*ma, options);
  const auto chain = find_merged_chain(*ma, analysis, 0, 1);
  if (chain.has_value()) {
    for (std::size_t i = 0; i < chain->chain.size(); ++i) {
      out << "  [" << i << "] " << chain->chain[i].to_string();
      if (i + 1 < chain->chain.size()) {
        out << "   --(process " << chain->witness[i] + 1 << " blind)-->";
      }
      out << '\n';
    }
  }
  out << '\n';
}

void BM_BivalenceSeries(benchmark::State& state) {
  const auto ma = make_lossy_link(0b111);
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bivalence_series(*ma, depth));
  }
}
BENCHMARK(BM_BivalenceSeries)->Arg(4)->Arg(6)->Arg(8);

void BM_FairSequencePrefix(benchmark::State& state) {
  const auto ma = make_lossy_link(0b111);
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fair_sequence_prefix(*ma, depth));
  }
}
BENCHMARK(BM_FairSequencePrefix)->Arg(3)->Arg(5);

void BM_MergedChain(benchmark::State& state) {
  const auto ma = make_lossy_link(0b111);
  AnalysisOptions options;
  options.depth = static_cast<int>(state.range(0));
  const DepthAnalysis analysis = analyze_depth(*ma, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_merged_chain(*ma, analysis, 0, 1));
  }
}
BENCHMARK(BM_MergedChain)->Arg(3)->Arg(5);

}  // namespace

TOPOCON_BENCH_MAIN(print_report)
