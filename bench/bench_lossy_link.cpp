// E3 -- Section 6.1: the complete lossy-link solvability table for n = 2.
// For every nonempty subset of {<-, ->, <->} the checker's verdict is
// compared against the literature oracle (Santoro-Widmayer impossibility
// for the full set; CGP solvability for {<-, ->}; broadcaster-based
// solvability for the remaining subsets), together with the certificate
// depth and the extracted universal algorithm's worst-case decision round.
// The timing section benchmarks the checker per subset.
#include "adversary/lossy_link.hpp"
#include "analysis/oracles.hpp"
#include "analysis/report.hpp"
#include "analysis/root_heuristic.hpp"
#include "bench_common.hpp"
#include "core/solvability.hpp"

namespace {

using namespace topocon;

void print_report(std::ostream& out) {
  out << "== E3: lossy-link solvability table (n = 2, Section 6.1)\n\n";
  api::Session session;
  std::vector<api::Query> queries;
  SolvabilityOptions options;
  options.max_depth = 8;
  for (int mask = 1; mask < 8; ++mask) {
    queries.push_back(api::solvability({"lossy_link", 2, mask}, options));
  }
  const std::vector<sweep::JobOutcome> outcomes =
      session.run("E3-lossy-link", queries);

  Table table({"adversary", "oracle", "checker verdict", "CGP-style heuristic",
               "cert depth", "components", "worst decision round",
               "table entries"});
  for (unsigned mask = 1; mask < 8; ++mask) {
    const SolvabilityResult& result = outcomes[mask - 1].result;
    const bool heuristic =
        root_intersection_heuristic(make_lossy_link(mask)->alphabet())
            .solvable;
    std::string depth = result.certified_depth >= 0
                            ? std::to_string(result.certified_depth)
                            : "-";
    std::string rounds = "-", entries = "-";
    if (result.table.has_value()) {
      rounds = std::to_string(result.table->worst_case_decision_round());
      entries = std::to_string(result.table->size());
    }
    const auto& last = result.per_depth.back();
    table.add_row({lossy_link_subset_name(mask),
                   lossy_link_solvable(mask) ? "solvable" : "impossible",
                   to_string(result.verdict),
                   heuristic ? "solvable" : "impossible", depth,
                   std::to_string(last.num_components), rounds, entries});
  }
  table.print(out);
  out << "\nExpected shape: every proper subset solvable (certified at "
         "depth 1),\nthe full set {<-, ->, <->} NOT-SEPARATED at every "
         "depth (impossible).\n\n";
}

void BM_CheckSubset(benchmark::State& state) {
  const auto mask = static_cast<unsigned>(state.range(0));
  const auto ma = make_lossy_link(mask);
  SolvabilityOptions options;
  options.max_depth = static_cast<int>(state.range(1));
  options.build_table = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_solvability(*ma, options));
  }
}
BENCHMARK(BM_CheckSubset)
    ->Args({0b011, 4})
    ->Args({0b101, 4})
    ->Args({0b111, 4})
    ->Args({0b111, 6})
    ->Args({0b111, 8});

void BM_ExtractTable(benchmark::State& state) {
  const auto ma = make_lossy_link(0b011);
  SolvabilityOptions options;
  options.max_depth = 6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_solvability(*ma, options));
  }
}
BENCHMARK(BM_ExtractTable);

}  // namespace

TOPOCON_BENCH_MAIN(print_report)
