#include "service/client.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace topocon::service {

ServeClient::ServeClient(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("client: socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("client: socket() failed");
  if (connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = std::strerror(errno);
    close(fd_);
    fd_ = -1;
    throw std::runtime_error("client: cannot connect to " + socket_path +
                             ": " + why);
  }
  hello_ = read_line();
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) close(fd_);
}

void ServeClient::send_line(const std::string& line) {
  std::string frame = line;
  if (frame.empty() || frame.back() != '\n') frame += '\n';
  std::size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a dead server surfaces as an exception, not SIGPIPE.
    const ssize_t n =
        send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw std::runtime_error("client: write failed");
    sent += static_cast<std::size_t>(n);
  }
}

void ServeClient::fill_buffer() {
  char chunk[4096];
  for (;;) {
    const ssize_t n = read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) throw std::runtime_error("client: read failed");
    if (n == 0) throw std::runtime_error("client: server closed connection");
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return;
  }
}

std::string ServeClient::read_line() {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    fill_buffer();
  }
}

std::string ServeClient::read_bytes(std::size_t count) {
  while (buffer_.size() < count) fill_buffer();
  std::string bytes = buffer_.substr(0, count);
  buffer_.erase(0, count);
  return bytes;
}

}  // namespace topocon::service
