// The topocon serve daemon: one poll()-based I/O loop on a Unix-domain
// socket plus one executor thread that owns the shared api::Session.
//
// Threading model (two threads, three queues):
//
//   I/O thread       parses request lines, runs admission control, and
//                    owns every connection, subscription, and output
//                    buffer. It never computes.
//   executor thread  owns the api::Session (Sessions are single-
//                    threaded by contract) and runs one submission at a
//                    time off a FIFO queue; it never touches sockets.
//
// They meet at (a) the mutex-protected submission table + job queue,
// (b) the mutex-protected VerdictCache, and (c) one preallocated
// EventRing per subscriber, which the executor's Observer pushes into
// without ever blocking (service/ring.hpp). A self-pipe wakes the poll
// loop when the executor finishes a job or publishes events.
//
// Admission: one running sweep plus at most `queue_limit` queued ones;
// a submit beyond that is answered `overloaded` and never enqueued.
// Memoized submissions bypass admission entirely -- the stored artifact
// bytes are replayed from the I/O thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/session.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"
#include "service/ring.hpp"

namespace topocon::service {

struct ServeOptions {
  std::string socket_path;
  /// Session pool size; 0 = sweep::default_num_threads().
  int num_threads = 0;
  /// Queued (not yet running) submissions beyond which submits are
  /// rejected as overloaded.
  std::size_t queue_limit = 16;
  /// Verdict cache limits (see service/cache.hpp).
  std::size_t cache_entries = 64;
  std::size_t cache_bytes = 64ull << 20;
  /// Event-ring capacity per subscriber (rounded up to a power of two).
  std::size_t ring_capacity = 1024;
  /// Info log sink (the CLI passes stderr); null = silent.
  std::ostream* log = nullptr;
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and serves until a shutdown request (or
  /// request_stop). Returns 0 on clean shutdown, 1 on a socket-layer
  /// failure (message on the log sink).
  int run();

  /// Asks the running loop to stop; safe from any thread and from
  /// signal handlers (one pipe write).
  void request_stop();

  /// Coherent counter snapshot (also the `stats` frame's source).
  StatsSnapshot stats();

 private:
  struct Submission {
    std::uint64_t id = 0;
    api::Plan plan;
    std::string cache_key;
    /// Connection generation stamp of the submitter (see Connection);
    /// results are dropped when the connection is gone.
    int fd = -1;
    std::uint64_t conn_gen = 0;
    enum class State { kQueued, kRunning, kDone, kCancelled, kFailed };
    State state = State::kQueued;
    std::string artifact;  // kDone
    std::string error;     // kFailed
  };

  struct Connection {
    int fd = -1;
    /// Monotonic stamp distinguishing reuses of the same fd number.
    std::uint64_t gen = 0;
    std::string input;
    std::string output;
    bool subscribed = false;
    /// Submission filter; 0 = all.
    std::uint64_t subscribe_id = 0;
    std::unique_ptr<EventRing> ring;
    bool closing = false;  ///< flush output, then close (bye sent)
  };

  // I/O-thread side.
  int setup_listener();
  void accept_clients();
  void handle_readable(Connection& conn);
  void handle_line(Connection& conn, std::string_view line);
  void handle_submit(Connection& conn, Request request);
  void deliver_finished_locked(Submission& submission);
  void drain_rings();
  void drain_wakeup_pipe();
  void close_connection(std::size_t index);

  // Executor side.
  void executor_main();
  void publish(const ServeEvent& event);
  void wake_io();

  class ExecObserver;

  ServeOptions options_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::vector<Connection> connections_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> executor_done_{false};

  std::mutex state_mutex_;
  std::condition_variable work_available_;
  std::deque<std::uint64_t> job_queue_;
  std::map<std::uint64_t, Submission> submissions_;
  std::vector<std::uint64_t> finished_;  ///< done/failed, result not yet sent
  std::uint64_t next_id_ = 1;
  std::uint64_t next_conn_gen_ = 1;
  bool executor_running_job_ = false;

  std::mutex cache_mutex_;
  VerdictCache cache_;

  /// Rings of live subscribers, shared with the executor's observer.
  std::mutex subscribers_mutex_;
  std::vector<std::pair<EventRing*, std::uint64_t>> subscriber_rings_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> submits_{0};
  std::atomic<std::uint64_t> rejected_overload_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::uint64_t> events_streamed_{0};
  /// Drops of rings whose connection already closed.
  std::atomic<std::uint64_t> retired_drops_{0};

  std::thread executor_;
};

}  // namespace topocon::service
