#include "service/server.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <initializer_list>
#include <ostream>
#include <stdexcept>

#include "core/frontier.hpp"
#include "core/solvability.hpp"
#include "telemetry/metrics.hpp"

namespace topocon::service {

namespace {

/// Request lines beyond this are abuse, not workloads (an explicit
/// submit with hundreds of queries stays far below it).
constexpr std::size_t kMaxLineBytes = 1 << 20;

/// Per-connection output buffered beyond this stops ring draining for
/// that subscriber -- backpressure surfaces as ring drops, never as a
/// blocked compute thread.
constexpr std::size_t kOutputSoftCap = 256 << 10;

/// Poll tick; also the executor's stop-check cadence, so request_stop
/// needs no condition-variable notify (it must stay signal-safe).
constexpr int kPollMillis = 200;

/// Shutdown waits this long for pending output to flush before closing
/// straggler connections (units of kPollMillis).
constexpr int kShutdownGraceTicks = 25;

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

/// The executor's view of a running sweep: every engine callback becomes
/// one ServeEvent pushed at the subscriber rings (never blocking).
class Server::ExecObserver : public api::Observer {
 public:
  ExecObserver(Server* server, std::uint64_t submission,
               std::uint64_t jobs_total)
      : server_(server), submission_(submission), jobs_total_(jobs_total) {}

  void on_job_start(std::size_t job, const api::Query&) override {
    publish(job, ServeEvent::Kind::kJobStart, {});
  }
  void on_depth(std::size_t job, const DepthStats& stats) override {
    publish(job, ServeEvent::Kind::kDepth,
            {static_cast<std::uint64_t>(stats.depth), stats.num_leaf_classes,
             static_cast<std::uint64_t>(stats.num_components),
             stats.separated ? 1u : 0u});
  }
  void on_depth(std::size_t job, const ChunkProgress& progress) override {
    publish(job, ServeEvent::Kind::kChunk,
            {static_cast<std::uint64_t>(progress.depth),
             static_cast<std::uint64_t>(progress.level), progress.chunks_done,
             progress.chunks_total, progress.frontier_states});
  }
  void on_job_telemetry(std::size_t job,
                        const telemetry::JobTelemetry& snapshot) override {
    publish(job, ServeEvent::Kind::kTelemetry,
            {snapshot.counters.states_expanded,
             snapshot.counters.states_committed,
             snapshot.counters.views_interned,
             snapshot.counters.levels_committed,
             snapshot.counters.frontier_high_water});
  }
  void on_job_done(std::size_t job, const sweep::JobOutcome&) override {
    ++jobs_done_;
    publish(job, ServeEvent::Kind::kJobDone, {jobs_done_, jobs_total_});
  }

 private:
  void publish(std::size_t job, ServeEvent::Kind kind,
               std::initializer_list<std::uint64_t> payload) {
    ServeEvent event;
    event.submission = submission_;
    event.job = static_cast<std::uint32_t>(job);
    event.kind = kind;
    std::uint64_t* slot = &event.a;
    for (const std::uint64_t value : payload) *slot++ = value;
    server_->publish(event);
  }

  Server* server_;
  std::uint64_t submission_;
  std::uint64_t jobs_total_;
  std::uint64_t jobs_done_ = 0;
};

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_entries, options_.cache_bytes) {
  // The wake pipe exists for the object's whole lifetime so request_stop
  // works even before (or after) run().
  if (pipe(wake_pipe_) != 0) {
    wake_pipe_[0] = wake_pipe_[1] = -1;
  } else {
    set_nonblocking(wake_pipe_[0]);
    set_nonblocking(wake_pipe_[1]);
  }
}

Server::~Server() {
  stopping_.store(true, std::memory_order_relaxed);
  if (executor_.joinable()) executor_.join();
  for (Connection& conn : connections_) {
    if (conn.fd >= 0) close(conn.fd);
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_pipe_[0] >= 0) close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) close(wake_pipe_[1]);
}

void Server::request_stop() {
  stopping_.store(true, std::memory_order_relaxed);
  wake_io();
}

void Server::wake_io() {
  if (wake_pipe_[1] < 0) return;
  const char byte = 'w';
  // A full pipe means a wakeup is already pending; any other failure is
  // recovered by the poll timeout.
  [[maybe_unused]] const ssize_t n = write(wake_pipe_[1], &byte, 1);
}

int Server::setup_listener() {
  if (options_.socket_path.empty()) {
    if (options_.log) *options_.log << "serve: --socket is required\n";
    return -1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    if (options_.log) {
      *options_.log << "serve: socket path too long: " << options_.socket_path
                    << "\n";
    }
    return -1;
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (options_.log) *options_.log << "serve: socket() failed\n";
    return -1;
  }
  // A previous daemon's stale socket file would make bind fail; the
  // path is operator-chosen, so replacing it is the expected behavior.
  unlink(options_.socket_path.c_str());
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 16) != 0 || !set_nonblocking(fd)) {
    if (options_.log) {
      *options_.log << "serve: cannot listen on " << options_.socket_path
                    << ": " << std::strerror(errno) << "\n";
    }
    close(fd);
    return -1;
  }
  return fd;
}

int Server::run() {
  listen_fd_ = setup_listener();
  if (listen_fd_ < 0 || wake_pipe_[0] < 0) return 1;
  if (options_.log) {
    *options_.log << "serve: listening on " << options_.socket_path << "\n";
  }
  executor_ = std::thread([this] { executor_main(); });

  int grace_ticks = 0;
  bool listener_open = true;
  for (;;) {
    std::vector<pollfd> fds;
    fds.push_back({listener_open ? listen_fd_ : -1, POLLIN, 0});
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    const std::size_t base = fds.size();
    for (const Connection& conn : connections_) {
      short events = POLLIN;
      if (!conn.output.empty()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
    }
    poll(fds.data(), fds.size(), kPollMillis);
    drain_wakeup_pipe();

    const std::size_t present = connections_.size();
    for (std::size_t i = 0; i < present; ++i) {
      Connection& conn = connections_[i];
      const short revents = fds[base + i].revents;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        conn.closing = true;
        conn.output.clear();
        continue;
      }
      if (revents & POLLIN) handle_readable(conn);
    }

    // Rings drain before results: the executor publishes every event of
    // a job before marking it finished, so this order keeps a job's
    // progress frames ahead of its result even when the whole sweep ran
    // within one poll interval.
    drain_rings();
    {
      std::unique_lock<std::mutex> lock(state_mutex_);
      for (const std::uint64_t id : finished_) {
        const auto it = submissions_.find(id);
        if (it != submissions_.end()) deliver_finished_locked(it->second);
      }
      finished_.clear();
    }

    // Single flush point: every frame queued above goes out here.
    for (Connection& conn : connections_) {
      while (!conn.output.empty()) {
        // MSG_NOSIGNAL: a vanished client is an EPIPE on this socket,
        // never a process-wide SIGPIPE.
        const ssize_t n = send(conn.fd, conn.output.data(),
                               conn.output.size(), MSG_NOSIGNAL);
        if (n > 0) {
          conn.output.erase(0, static_cast<std::size_t>(n));
        } else if (n < 0 && errno == EINTR) {
          continue;
        } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          break;
        } else {
          conn.closing = true;
          conn.output.clear();
          break;
        }
      }
    }
    for (std::size_t i = connections_.size(); i-- > 0;) {
      if (connections_[i].closing && connections_[i].output.empty()) {
        close_connection(i);
      }
    }
    if (listener_open && (fds[0].revents & POLLIN)) accept_clients();

    if (stopping_.load(std::memory_order_relaxed)) {
      if (listener_open) {
        close(listen_fd_);
        listen_fd_ = -1;
        listener_open = false;
        unlink(options_.socket_path.c_str());
        std::unique_lock<std::mutex> lock(state_mutex_);
        for (const std::uint64_t id : job_queue_) {
          const auto it = submissions_.find(id);
          if (it != submissions_.end()) {
            it->second.state = Submission::State::kCancelled;
          }
          cancelled_.fetch_add(1, std::memory_order_relaxed);
        }
        job_queue_.clear();
      }
      const bool flushed = std::all_of(
          connections_.begin(), connections_.end(),
          [](const Connection& conn) { return conn.output.empty(); });
      if (executor_done_.load(std::memory_order_acquire) &&
          (flushed || ++grace_ticks > kShutdownGraceTicks)) {
        break;
      }
    }
  }
  while (!connections_.empty()) close_connection(connections_.size() - 1);
  executor_.join();
  if (options_.log) *options_.log << "serve: shut down\n";
  return 0;
}

void Server::accept_clients() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN, or a race with a vanished client
    if (!set_nonblocking(fd)) {
      close(fd);
      continue;
    }
    Connection conn;
    conn.fd = fd;
    conn.gen = next_conn_gen_++;
    conn.output = hello_line();
    connections_.push_back(std::move(conn));
  }
}

void Server::handle_readable(Connection& conn) {
  char buffer[4096];
  bool eof = false;
  for (;;) {
    const ssize_t n = read(conn.fd, buffer, sizeof(buffer));
    if (n > 0) {
      conn.input.append(buffer, static_cast<std::size_t>(n));
      if (conn.input.size() > kMaxLineBytes) {
        conn.output += error_line("request line too long");
        conn.closing = true;
        return;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0) {  // hard error: drop the connection, pending output too
      conn.closing = true;
      conn.output.clear();
      return;
    }
    eof = true;  // buffered lines (e.g. a final shutdown) still parse
    break;
  }
  std::size_t newline;
  while (!conn.closing &&
         (newline = conn.input.find('\n')) != std::string::npos) {
    const std::string line = conn.input.substr(0, newline);
    conn.input.erase(0, newline + 1);
    if (!line.empty()) handle_line(conn, line);
  }
  if (eof) conn.closing = true;
}

void Server::handle_line(Connection& conn, std::string_view line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  Request request;
  try {
    request = parse_request(line);
  } catch (const std::runtime_error& e) {
    conn.output += error_line(e.what());
    return;
  }
  switch (request.op) {
    case Request::Op::kSubmit:
      handle_submit(conn, std::move(request));
      return;
    case Request::Op::kStatus: {
      std::unique_lock<std::mutex> lock(state_mutex_);
      const auto it = submissions_.find(request.id);
      if (it == submissions_.end()) {
        lock.unlock();
        conn.output += error_line("status: unknown id " +
                                  std::to_string(request.id));
        return;
      }
      const char* state = "done";
      std::uint64_t position = 0;
      switch (it->second.state) {
        case Submission::State::kQueued: {
          state = "queued";
          const auto at = std::find(job_queue_.begin(), job_queue_.end(),
                                    request.id);
          position = static_cast<std::uint64_t>(
              at == job_queue_.end() ? 0 : at - job_queue_.begin() + 1);
          break;
        }
        case Submission::State::kRunning: state = "running"; break;
        case Submission::State::kDone: state = "done"; break;
        case Submission::State::kCancelled: state = "cancelled"; break;
        case Submission::State::kFailed: state = "failed"; break;
      }
      lock.unlock();
      conn.output += status_line(request.id, state, position);
      return;
    }
    case Request::Op::kSubscribe: {
      if (conn.ring == nullptr) {
        conn.ring = std::make_unique<EventRing>(options_.ring_capacity);
      }
      conn.subscribe_id = request.has_id ? request.id : 0;
      {
        std::unique_lock<std::mutex> lock(subscribers_mutex_);
        if (!conn.subscribed) {
          subscriber_rings_.emplace_back(conn.ring.get(), conn.subscribe_id);
        } else {
          for (auto& [ring, filter] : subscriber_rings_) {
            if (ring == conn.ring.get()) filter = conn.subscribe_id;
          }
        }
      }
      conn.subscribed = true;
      conn.output += subscribed_line(conn.subscribe_id);
      return;
    }
    case Request::Op::kCancel: {
      std::unique_lock<std::mutex> lock(state_mutex_);
      const auto at =
          std::find(job_queue_.begin(), job_queue_.end(), request.id);
      if (at == job_queue_.end()) {
        lock.unlock();
        conn.output +=
            error_line("cancel: id " + std::to_string(request.id) +
                       " is not queued (running sweeps finish)");
        return;
      }
      job_queue_.erase(at);
      const auto it = submissions_.find(request.id);
      if (it != submissions_.end()) {
        it->second.state = Submission::State::kCancelled;
      }
      lock.unlock();
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      conn.output += cancelled_line(request.id);
      return;
    }
    case Request::Op::kStats:
      conn.output += stats_line(stats());
      return;
    case Request::Op::kShutdown:
      conn.output += bye_line();
      conn.closing = true;
      stopping_.store(true, std::memory_order_relaxed);
      return;
  }
}

void Server::handle_submit(Connection& conn, Request request) {
  submits_.fetch_add(1, std::memory_order_relaxed);
  api::Plan plan;
  try {
    if (!request.scenario.empty()) {
      const scenario::Scenario* s = scenario::find_scenario(request.scenario);
      if (s == nullptr) {
        throw std::invalid_argument("unknown scenario: " + request.scenario);
      }
      plan = scenario::expand_scenario(*s, request.overrides);
    } else {
      plan.name = std::move(request.name);
      plan.queries = std::move(request.queries);
    }
  } catch (const std::exception& e) {
    conn.output += error_line(std::string("submit: ") + e.what());
    return;
  }
  const std::string key = plan_cache_key(plan);

  std::string cached_artifact;
  {
    std::unique_lock<std::mutex> lock(cache_mutex_);
    const std::string* hit = cache_.find(key);
    if (hit != nullptr) cached_artifact = *hit;
  }
  if (!cached_artifact.empty()) {
    std::uint64_t id;
    {
      std::unique_lock<std::mutex> lock(state_mutex_);
      id = next_id_++;
      Submission& submission = submissions_[id];
      submission.id = id;
      submission.cache_key = key;
      submission.state = Submission::State::kDone;
      submission.plan.name = plan.name;
    }
    conn.output += accepted_line(id, /*cached=*/true, /*queued=*/0);
    conn.output += result_line(id, plan.name, /*cached=*/true,
                               cached_artifact.size());
    conn.output += cached_artifact;
    return;
  }

  std::unique_lock<std::mutex> lock(state_mutex_);
  if (stopping_.load(std::memory_order_relaxed)) {
    lock.unlock();
    conn.output += error_line("submit: server is shutting down");
    return;
  }
  if (job_queue_.size() >= options_.queue_limit) {
    const std::uint64_t depth = job_queue_.size();
    lock.unlock();
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    conn.output += overloaded_line(depth, options_.queue_limit);
    return;
  }
  const std::uint64_t id = next_id_++;
  Submission& submission = submissions_[id];
  submission.id = id;
  submission.plan = std::move(plan);
  submission.cache_key = key;
  submission.fd = conn.fd;
  submission.conn_gen = conn.gen;
  submission.state = Submission::State::kQueued;
  job_queue_.push_back(id);
  const std::uint64_t position = job_queue_.size();
  lock.unlock();
  work_available_.notify_one();
  conn.output += accepted_line(id, /*cached=*/false, position);
}

/// state_mutex_ held by the caller.
void Server::deliver_finished_locked(Submission& submission) {
  Connection* conn = nullptr;
  for (Connection& candidate : connections_) {
    if (candidate.fd == submission.fd && candidate.gen == submission.conn_gen) {
      conn = &candidate;
      break;
    }
  }
  if (conn == nullptr || conn->closing) {
    submission.artifact.clear();  // submitter is gone; drop the payload
    return;
  }
  if (submission.state == Submission::State::kFailed) {
    conn->output += error_line("submission " + std::to_string(submission.id) +
                               " failed: " + submission.error);
    return;
  }
  conn->output += result_line(submission.id, submission.plan.name,
                              /*cached=*/false, submission.artifact.size());
  conn->output += submission.artifact;
  submission.artifact.clear();  // the cache owns the retained copy
}

void Server::drain_rings() {
  for (Connection& conn : connections_) {
    if (!conn.subscribed || conn.ring == nullptr || conn.closing) continue;
    ServeEvent event;
    while (conn.output.size() < kOutputSoftCap && conn.ring->pop(&event)) {
      conn.output += event_line(event);
    }
  }
}

void Server::drain_wakeup_pipe() {
  char buffer[256];
  while (read(wake_pipe_[0], buffer, sizeof(buffer)) > 0) {
  }
}

void Server::close_connection(std::size_t index) {
  Connection& conn = connections_[index];
  if (conn.subscribed && conn.ring != nullptr) {
    std::unique_lock<std::mutex> lock(subscribers_mutex_);
    std::erase_if(subscriber_rings_, [&](const auto& entry) {
      return entry.first == conn.ring.get();
    });
    retired_drops_.fetch_add(conn.ring->drops(), std::memory_order_relaxed);
  }
  close(conn.fd);
  connections_.erase(connections_.begin() +
                     static_cast<std::ptrdiff_t>(index));
}

void Server::publish(const ServeEvent& event) {
  bool delivered = false;
  {
    std::unique_lock<std::mutex> lock(subscribers_mutex_);
    for (const auto& [ring, filter] : subscriber_rings_) {
      if (filter != 0 && filter != event.submission) continue;
      ring->push(event);
      events_streamed_.fetch_add(1, std::memory_order_relaxed);
      delivered = true;
    }
  }
  if (delivered) wake_io();
}

void Server::executor_main() {
  // One warm Session for the daemon's lifetime: the pool and interner
  // arena amortize across submissions (the whole point of serving).
  // Telemetry collection is always on -- it feeds the subscriber event
  // stream and never changes the serialized records (telemetry_in_records
  // stays false, so artifacts match `topocon run` byte for byte).
  api::Session session({.num_threads = options_.num_threads,
                        .record_global = false,
                        .collect_telemetry = true,
                        .telemetry_in_records = false});
  for (;;) {
    std::uint64_t id = 0;
    api::Plan plan;
    std::string cache_key;
    {
      std::unique_lock<std::mutex> lock(state_mutex_);
      work_available_.wait_for(
          lock, std::chrono::milliseconds(kPollMillis), [this] {
            return !job_queue_.empty() ||
                   stopping_.load(std::memory_order_relaxed);
          });
      if (job_queue_.empty()) {
        if (stopping_.load(std::memory_order_relaxed)) break;
        continue;
      }
      if (stopping_.load(std::memory_order_relaxed)) break;  // queue discarded
      id = job_queue_.front();
      job_queue_.pop_front();
      Submission& submission = submissions_[id];
      submission.state = Submission::State::kRunning;
      plan = submission.plan;
      cache_key = submission.cache_key;
      executor_running_job_ = true;
    }

    std::string artifact;
    std::string error;
    try {
      ExecObserver observer(this, id, plan.queries.size());
      session.run(plan.name, plan.queries, &observer);
      const std::vector<sweep::JobRecord>& records =
          session.history().back().second;
      artifact = render_artifact(plan.name, records);
      // History growth is unbounded across a daemon's life; the arena
      // (which keeps certificates replayable) is the only retained state.
      session.clear_history();
    } catch (const std::exception& e) {
      error = e.what();
    }

    if (error.empty()) {
      std::unique_lock<std::mutex> lock(cache_mutex_);
      cache_.insert(cache_key, artifact);
    }
    {
      std::unique_lock<std::mutex> lock(state_mutex_);
      Submission& submission = submissions_[id];
      submission.state = error.empty() ? Submission::State::kDone
                                       : Submission::State::kFailed;
      submission.artifact = std::move(artifact);
      submission.error = std::move(error);
      finished_.push_back(id);
      executor_running_job_ = false;
    }
    jobs_completed_.fetch_add(1, std::memory_order_relaxed);
    wake_io();
  }
  executor_done_.store(true, std::memory_order_release);
  wake_io();
}

StatsSnapshot Server::stats() {
  StatsSnapshot snapshot;
  snapshot.requests = requests_.load(std::memory_order_relaxed);
  snapshot.submits = submits_.load(std::memory_order_relaxed);
  snapshot.rejected_overload =
      rejected_overload_.load(std::memory_order_relaxed);
  snapshot.cancelled = cancelled_.load(std::memory_order_relaxed);
  snapshot.jobs_completed = jobs_completed_.load(std::memory_order_relaxed);
  snapshot.events_streamed = events_streamed_.load(std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lock(cache_mutex_);
    snapshot.cache_hits = cache_.hits();
    snapshot.cache_misses = cache_.misses();
    snapshot.cache_entries = cache_.entries();
    snapshot.cache_bytes = cache_.bytes();
  }
  {
    std::unique_lock<std::mutex> lock(state_mutex_);
    snapshot.queue_depth = job_queue_.size();
    snapshot.running = executor_running_job_ ? 1 : 0;
  }
  {
    std::unique_lock<std::mutex> lock(subscribers_mutex_);
    snapshot.subscribers = subscriber_rings_.size();
    snapshot.subscriber_drops = retired_drops_.load(std::memory_order_relaxed);
    for (const auto& [ring, filter] : subscriber_rings_) {
      snapshot.subscriber_drops += ring->drops();
    }
  }
  return snapshot;
}

}  // namespace topocon::service
