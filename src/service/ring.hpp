// Preallocated bounded event ring for the serve-side progress fan-out
// (NDN-DPDK rxloop idiom: the hot producer never waits for a slow
// consumer). One ring per subscriber: the compute thread publishes
// ServeEvents, the I/O loop drains them into the subscriber's socket
// buffer.
//
// Semantics: single consumer; producers are externally serialized (the
// engine fires Observer callbacks under its own mutex, one at a time,
// possibly from different pool threads -- the mutex provides the
// cross-thread ordering). push() never blocks and never allocates: when
// the ring is full it overwrites the OLDEST pending event (advancing the
// consumer cursor itself), and in the narrow window where the consumer
// is mid-claim on that very slot it drops the new event instead of
// spinning. Every overwritten or dropped event counts into drops(), the
// signal behind the `subscriber_drops` serve counter -- a slow dashboard
// loses events, never stalls a sweep.
//
// The implementation is a Vyukov-style bounded queue: per-slot sequence
// numbers decide handoff, so an event's bytes are only ever read after
// the release-store that published them (TSan-clean by construction).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace topocon::service {

/// One progress event, numeric-only so ring slots are preallocated POD.
/// `a..e` are kind-specific (see the serializer in protocol.cpp).
struct ServeEvent {
  enum class Kind : std::uint8_t {
    kJobStart = 0,
    kChunk = 1,
    kDepth = 2,
    kTelemetry = 3,
    kJobDone = 4,
  };
  std::uint64_t submission = 0;  ///< serve-side submission id
  std::uint32_t job = 0;         ///< job index within the submission
  Kind kind = Kind::kJobStart;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t d = 0;
  std::uint64_t e = 0;
};

class EventRing {
 public:
  /// Capacity is rounded up to a power of two; >= 2.
  explicit EventRing(std::size_t capacity) {
    std::size_t size = 2;
    while (size < capacity) size *= 2;
    slots_ = std::vector<Slot>(size);
    mask_ = size - 1;
    for (std::size_t i = 0; i < size; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Publishes one event; never blocks. Returns false iff the event was
  /// dropped outright (consumer mid-claim on the slot to be recycled).
  bool push(const ServeEvent& event) {
    const std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    Slot& slot = slots_[pos & mask_];
    std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq != pos) {
      // Full: retire the oldest pending event ourselves so the newest
      // data wins (rxloop style), unless the consumer is claiming it.
      std::uint64_t head = head_.load(std::memory_order_relaxed);
      if (pos - head >= slots_.size() &&
          head_.compare_exchange_strong(head, head + 1,
                                        std::memory_order_acq_rel)) {
        slots_[head & mask_].seq.store(head + slots_.size(),
                                       std::memory_order_release);
        drops_.fetch_add(1, std::memory_order_relaxed);
        seq = slot.seq.load(std::memory_order_acquire);
      }
      if (seq != pos) {
        drops_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    slot.event = event;
    slot.seq.store(pos + 1, std::memory_order_release);
    tail_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Takes the oldest event; false when the ring is empty.
  bool pop(ServeEvent* out) {
    for (;;) {
      std::uint64_t head = head_.load(std::memory_order_relaxed);
      Slot& slot = slots_[head & mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      if (seq != head + 1) return false;  // empty (or being written)
      // Claim before copying: the producer sees the un-freed slot and
      // drops instead of overwriting bytes we are reading.
      if (head_.compare_exchange_strong(head, head + 1,
                                        std::memory_order_acq_rel)) {
        *out = slot.event;
        slot.seq.store(head + slots_.size(), std::memory_order_release);
        return true;
      }
      // The producer retired this event under our feet; try the next.
    }
  }

  /// Events lost to overwrites or claim races, monotonic.
  std::uint64_t drops() const {
    return drops_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    ServeEvent event;
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> drops_{0};
};

}  // namespace topocon::service
