// VerdictCache: LRU memoization of finalized sweep artifacts for the
// serve daemon. Keys are the canonical plan JSON (service/protocol.hpp's
// plan_cache_key), values are the exact artifact bytes a run produced --
// a hit replays the bytes without touching the Session, so the served
// document stays byte-identical to the original `topocon run` output by
// construction. Bounded by entry count AND total artifact bytes; the
// least recently used entry is evicted first. Not thread-safe: the
// server guards it with its own mutex (lookups happen on the I/O thread,
// inserts on the executor thread).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

namespace topocon::service {

class VerdictCache {
 public:
  /// Limits: at most `max_entries` artifacts totalling at most
  /// `max_bytes` of artifact payload. An artifact larger than max_bytes
  /// on its own is never stored (the miss still computes and serves it).
  VerdictCache(std::size_t max_entries, std::size_t max_bytes)
      : max_entries_(max_entries), max_bytes_(max_bytes) {}

  /// Looks up and promotes `key`; nullptr on miss. The pointer stays
  /// valid until the next insert() (eviction) -- callers copy or send
  /// the bytes before touching the cache again.
  const std::string* find(const std::string& key);

  /// Stores (or refreshes) `key`, evicting LRU entries until the limits
  /// hold again.
  void insert(const std::string& key, std::string artifact);

  std::size_t entries() const { return index_.size(); }
  std::size_t bytes() const { return bytes_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  void evict_until_fits();

  std::size_t max_entries_;
  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  /// Front = most recently used.
  std::list<std::pair<std::string, std::string>> order_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, std::string>>::iterator>
      index_;
};

}  // namespace topocon::service
