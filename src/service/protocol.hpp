// The topocon serve wire protocol: newline-delimited JSON, version 1.
//
// Every frame is one compact JSON object on one line. The server greets
// each connection with a `hello` line carrying the protocol number and
// the artifact schema versions, then answers one response frame (or an
// event stream) per request line. The single exception to pure JSONL is
// artifact delivery: a `result` line announces `artifact_bytes": M` and
// the next M bytes on the wire are the raw artifact document -- raw
// framing, not a JSON string, so the served bytes can be compared
// byte-for-byte against `topocon run` output without an escaping round
// trip.
//
// Client -> server ops: submit, status, subscribe, cancel, stats,
// shutdown. Server -> client frames: hello, accepted, overloaded,
// result, status, stats, subscribed, event, cancelled, error, bye.
// One writer per connection (the I/O loop), so frames never interleave.
//
// This header also owns the memoization key: plan_cache_key renders a
// plan as `{"name": ..., "queries": [...]}` with every query in its
// canonical JSON form (api::query_to_json -- fixed member order, fixed
// value encoding), so two submissions that expand to the same plan hit
// the same cache line no matter how they were phrased on the wire.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/session.hpp"
#include "runtime/sweep/engine.hpp"
#include "scenario/scenario.hpp"
#include "service/ring.hpp"

namespace topocon::service {

inline constexpr int kServeProtocolVersion = 1;
inline constexpr std::string_view kServeSchema = "topocon-serve-v1";

/// One-line version banner: serve protocol plus every artifact schema a
/// client may negotiate against (`topocon --version` and the hello
/// frame's "versions" member carry the same facts).
std::string version_line();

/// The canonical memoization key of a plan (see the header comment).
std::string plan_cache_key(const api::Plan& plan);

/// The finalized topocon-sweep-v1 document for one run -- byte-identical
/// to what `topocon run --json` writes for the same records (pretty
/// JSON, trailing newline).
std::string render_artifact(const std::string& sweep_name,
                            const std::vector<sweep::JobRecord>& records);

/// A parsed client request line.
struct Request {
  enum class Op { kSubmit, kStatus, kSubscribe, kCancel, kStats, kShutdown };
  Op op = Op::kStats;
  /// status/cancel target; subscribe filter (0 = all submissions).
  std::uint64_t id = 0;
  bool has_id = false;
  /// Submit, scenario form: non-empty scenario name plus overrides.
  std::string scenario;
  scenario::GridOverrides overrides;
  /// Submit, explicit form: plan name plus canonical query objects.
  std::string name;
  std::vector<api::Query> queries;
};

/// Parses one request line. Throws std::runtime_error with a
/// client-presentable message on malformed JSON, unknown ops, unknown or
/// conflicting members, or invalid queries.
Request parse_request(std::string_view line);

/// Serve-level counters as one coherent snapshot (the `stats` frame).
struct StatsSnapshot {
  std::uint64_t requests = 0;
  std::uint64_t submits = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t running = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t subscribers = 0;
  std::uint64_t subscriber_drops = 0;
  std::uint64_t events_streamed = 0;
};

// Response frame builders. Each returns one complete line including the
// trailing '\n'.
std::string hello_line();
std::string accepted_line(std::uint64_t id, bool cached,
                          std::uint64_t queued);
std::string overloaded_line(std::uint64_t queued, std::uint64_t limit);
std::string result_line(std::uint64_t id, const std::string& name,
                        bool cached, std::size_t artifact_bytes);
std::string status_line(std::uint64_t id, std::string_view state,
                        std::uint64_t position);
std::string stats_line(const StatsSnapshot& stats);
std::string subscribed_line(std::uint64_t id);
std::string cancelled_line(std::uint64_t id);
std::string error_line(std::string_view message);
std::string bye_line();
std::string event_line(const ServeEvent& event);

}  // namespace topocon::service
