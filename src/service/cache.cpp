#include "service/cache.hpp"

namespace topocon::service {

const std::string* VerdictCache::find(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  order_.splice(order_.begin(), order_, it->second);
  return &it->second->second;
}

void VerdictCache::insert(const std::string& key, std::string artifact) {
  if (artifact.size() > max_bytes_ || max_entries_ == 0) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->second.size();
    bytes_ += artifact.size();
    it->second->second = std::move(artifact);
    order_.splice(order_.begin(), order_, it->second);
  } else {
    bytes_ += artifact.size();
    order_.emplace_front(key, std::move(artifact));
    index_.emplace(key, order_.begin());
  }
  evict_until_fits();
}

void VerdictCache::evict_until_fits() {
  while (index_.size() > max_entries_ || bytes_ > max_bytes_) {
    const auto& victim = order_.back();
    bytes_ -= victim.second.size();
    index_.erase(victim.first);
    order_.pop_back();
    ++evictions_;
  }
}

}  // namespace topocon::service
