// Minimal blocking client for the topocon serve protocol: line-framed
// reads and writes over a Unix-domain socket, plus the raw-byte read
// that follows a `result` frame. Used by `topocon client`, the serve
// smoke tests, and CI; deliberately thin -- protocol knowledge (frame
// shapes, the artifact_bytes contract) stays in service/protocol.hpp
// and the callers.
#pragma once

#include <cstddef>
#include <string>

namespace topocon::service {

class ServeClient {
 public:
  /// Connects and reads the server's hello line. Throws
  /// std::runtime_error when the socket cannot be reached or the
  /// greeting does not arrive.
  explicit ServeClient(const std::string& socket_path);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// The server's greeting, verbatim (without the trailing newline).
  const std::string& hello() const { return hello_; }

  /// Sends one frame; `line` need not be newline-terminated.
  void send_line(const std::string& line);

  /// Blocks for the next frame; the newline is stripped. Throws
  /// std::runtime_error on EOF or a read error.
  std::string read_line();

  /// Blocks for exactly `count` raw bytes (artifact payload after a
  /// `result` frame). Throws std::runtime_error on a short read.
  std::string read_bytes(std::size_t count);

 private:
  void fill_buffer();

  int fd_ = -1;
  std::string buffer_;
  std::string hello_;
};

}  // namespace topocon::service
