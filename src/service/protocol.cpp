#include "service/protocol.hpp"

#include <cstdint>
#include <sstream>
#include <stdexcept>

#include "api/query.hpp"
#include "runtime/sweep/bench_compare.hpp"
#include "runtime/sweep/checkpoint.hpp"
#include "runtime/sweep/json.hpp"

namespace topocon::service {

namespace {

using sweep::JsonStyle;
using sweep::JsonValue;
using sweep::JsonWriter;

/// All compact frames end in exactly one newline: the line IS the frame.
std::string finish(std::ostringstream& out) {
  out << '\n';
  return out.str();
}

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error(message);
}

int int_member(const JsonValue& value, const char* key) {
  const std::int64_t wide = value.at(key).as_int();
  if (wide < INT32_MIN || wide > INT32_MAX) {
    fail(std::string("request: member \"") + key + "\" out of range");
  }
  return static_cast<int>(wide);
}

}  // namespace

std::string version_line() {
  std::string line = "topocon (serve protocol ";
  line += std::to_string(kServeProtocolVersion);
  line += "; schemas: ";
  line += sweep::kSweepSchema;
  line += ", ";
  line += sweep::kCheckpointSchema;
  line += ", ";
  line += sweep::kBenchBaselineSchema;
  line += ", ";
  line += kServeSchema;
  line += ")";
  return line;
}

std::string plan_cache_key(const api::Plan& plan) {
  std::ostringstream out;
  JsonWriter writer(out, JsonStyle::kCompact);
  writer.begin_object();
  writer.member("name", plan.name);
  writer.key("queries");
  writer.begin_array();
  for (const api::Query& query : plan.queries) {
    write_json_value(writer, api::query_to_json(query));
  }
  writer.end_array();
  writer.end_object();
  return out.str();
}

std::string render_artifact(const std::string& sweep_name,
                            const std::vector<sweep::JobRecord>& records) {
  std::ostringstream out;
  JsonWriter writer(out);
  writer.begin_object();
  writer.member("schema", sweep::kSweepSchema);
  writer.key("sweeps");
  writer.begin_array();
  sweep::write_sweep_json(writer, sweep_name, records);
  writer.end_array();
  writer.end_object();
  out << '\n';
  return out.str();
}

Request parse_request(std::string_view line) {
  JsonValue value;
  try {
    value = sweep::JsonReader::parse(line);
  } catch (const std::runtime_error& e) {
    fail(std::string("request: malformed JSON (") + e.what() + ")");
  }
  if (!value.is_object()) fail("request: expected a JSON object");
  const JsonValue* op = value.find("op");
  if (op == nullptr) fail("request: missing \"op\"");
  const std::string& name = op->as_string();

  Request request;
  if (name == "submit") {
    request.op = Request::Op::kSubmit;
  } else if (name == "status") {
    request.op = Request::Op::kStatus;
  } else if (name == "subscribe") {
    request.op = Request::Op::kSubscribe;
  } else if (name == "cancel") {
    request.op = Request::Op::kCancel;
  } else if (name == "stats") {
    request.op = Request::Op::kStats;
  } else if (name == "shutdown") {
    request.op = Request::Op::kShutdown;
  } else {
    fail("request: unknown op \"" + name + "\"");
  }

  if (request.op == Request::Op::kSubmit) {
    const bool by_scenario = value.find("scenario") != nullptr;
    const bool by_queries =
        value.find("name") != nullptr || value.find("queries") != nullptr;
    if (by_scenario == by_queries) {
      fail("submit: exactly one of \"scenario\" or \"name\"+\"queries\" "
           "is required");
    }
    for (const auto& [key, member] : value.members) {
      if (key == "op") continue;
      if (by_scenario) {
        if (key == "scenario") {
          request.scenario = member.as_string();
        } else if (key == "n") {
          request.overrides.n = int_member(value, "n");
        } else if (key == "param_min") {
          request.overrides.param_min = int_member(value, "param_min");
        } else if (key == "param_max") {
          request.overrides.param_max = int_member(value, "param_max");
        } else if (key == "seed") {
          request.overrides.seed = member.as_uint();
        } else if (key == "count") {
          request.overrides.count = int_member(value, "count");
        } else {
          fail("submit: unknown member \"" + key + "\"");
        }
      } else {
        if (key == "name") {
          request.name = member.as_string();
        } else if (key == "queries") {
          if (!member.is_array()) fail("submit: \"queries\" must be an array");
          for (const JsonValue& query : member.elements) {
            try {
              request.queries.push_back(api::query_from_json(query));
            } catch (const std::exception& e) {
              fail(std::string("submit: ") + e.what());
            }
          }
        } else {
          fail("submit: unknown member \"" + key + "\"");
        }
      }
    }
    if (by_queries) {
      if (request.name.empty()) fail("submit: missing \"name\"");
      if (request.queries.empty()) fail("submit: \"queries\" must be non-empty");
    }
    return request;
  }

  for (const auto& [key, member] : value.members) {
    if (key == "op") continue;
    if (key == "id" && (request.op == Request::Op::kStatus ||
                        request.op == Request::Op::kSubscribe ||
                        request.op == Request::Op::kCancel)) {
      request.id = member.as_uint();
      request.has_id = true;
      continue;
    }
    fail(name + ": unknown member \"" + key + "\"");
  }
  if (!request.has_id && (request.op == Request::Op::kStatus ||
                          request.op == Request::Op::kCancel)) {
    fail(name + ": missing \"id\"");
  }
  return request;
}

std::string hello_line() {
  std::ostringstream out;
  JsonWriter writer(out, JsonStyle::kCompact);
  writer.begin_object();
  writer.member("op", "hello");
  writer.member("schema", kServeSchema);
  writer.member("protocol", kServeProtocolVersion);
  writer.key("version");
  writer.begin_object();
  writer.member("sweep", sweep::kSweepSchema);
  writer.member("checkpoint", sweep::kCheckpointSchema);
  writer.member("bench_baseline", sweep::kBenchBaselineSchema);
  writer.end_object();
  writer.end_object();
  return finish(out);
}

std::string accepted_line(std::uint64_t id, bool cached,
                          std::uint64_t queued) {
  std::ostringstream out;
  JsonWriter writer(out, JsonStyle::kCompact);
  writer.begin_object();
  writer.member("op", "accepted");
  writer.member("id", id);
  writer.member("cached", cached);
  writer.member("queued", queued);
  writer.end_object();
  return finish(out);
}

std::string overloaded_line(std::uint64_t queued, std::uint64_t limit) {
  std::ostringstream out;
  JsonWriter writer(out, JsonStyle::kCompact);
  writer.begin_object();
  writer.member("op", "overloaded");
  writer.member("queued", queued);
  writer.member("limit", limit);
  writer.end_object();
  return finish(out);
}

std::string result_line(std::uint64_t id, const std::string& name,
                        bool cached, std::size_t artifact_bytes) {
  std::ostringstream out;
  JsonWriter writer(out, JsonStyle::kCompact);
  writer.begin_object();
  writer.member("op", "result");
  writer.member("id", id);
  writer.member("name", name);
  writer.member("cached", cached);
  writer.member("artifact_bytes", artifact_bytes);
  writer.end_object();
  return finish(out);
}

std::string status_line(std::uint64_t id, std::string_view state,
                        std::uint64_t position) {
  std::ostringstream out;
  JsonWriter writer(out, JsonStyle::kCompact);
  writer.begin_object();
  writer.member("op", "status");
  writer.member("id", id);
  writer.member("state", state);
  writer.member("position", position);
  writer.end_object();
  return finish(out);
}

std::string stats_line(const StatsSnapshot& stats) {
  std::ostringstream out;
  JsonWriter writer(out, JsonStyle::kCompact);
  writer.begin_object();
  writer.member("op", "stats");
  writer.member("requests", stats.requests);
  writer.member("submits", stats.submits);
  writer.member("cache_hits", stats.cache_hits);
  writer.member("cache_misses", stats.cache_misses);
  writer.member("cache_entries", stats.cache_entries);
  writer.member("cache_bytes", stats.cache_bytes);
  writer.member("queue_depth", stats.queue_depth);
  writer.member("running", stats.running);
  writer.member("rejected_overload", stats.rejected_overload);
  writer.member("cancelled", stats.cancelled);
  writer.member("jobs_completed", stats.jobs_completed);
  writer.member("subscribers", stats.subscribers);
  writer.member("subscriber_drops", stats.subscriber_drops);
  writer.member("events_streamed", stats.events_streamed);
  writer.end_object();
  return finish(out);
}

std::string subscribed_line(std::uint64_t id) {
  std::ostringstream out;
  JsonWriter writer(out, JsonStyle::kCompact);
  writer.begin_object();
  writer.member("op", "subscribed");
  writer.member("id", id);
  writer.end_object();
  return finish(out);
}

std::string cancelled_line(std::uint64_t id) {
  std::ostringstream out;
  JsonWriter writer(out, JsonStyle::kCompact);
  writer.begin_object();
  writer.member("op", "cancelled");
  writer.member("id", id);
  writer.end_object();
  return finish(out);
}

std::string error_line(std::string_view message) {
  std::ostringstream out;
  JsonWriter writer(out, JsonStyle::kCompact);
  writer.begin_object();
  writer.member("op", "error");
  writer.member("message", message);
  writer.end_object();
  return finish(out);
}

std::string bye_line() {
  std::ostringstream out;
  JsonWriter writer(out, JsonStyle::kCompact);
  writer.begin_object();
  writer.member("op", "bye");
  writer.end_object();
  return finish(out);
}

std::string event_line(const ServeEvent& event) {
  std::ostringstream out;
  JsonWriter writer(out, JsonStyle::kCompact);
  writer.begin_object();
  writer.member("op", "event");
  switch (event.kind) {
    case ServeEvent::Kind::kJobStart:
      writer.member("kind", "job_start");
      writer.member("submission", event.submission);
      writer.member("job", event.job);
      break;
    case ServeEvent::Kind::kChunk:
      writer.member("kind", "chunk");
      writer.member("submission", event.submission);
      writer.member("job", event.job);
      writer.member("depth", event.a);
      writer.member("level", event.b);
      writer.member("chunks_done", event.c);
      writer.member("chunks_total", event.d);
      writer.member("frontier_states", event.e);
      break;
    case ServeEvent::Kind::kDepth:
      writer.member("kind", "depth");
      writer.member("submission", event.submission);
      writer.member("job", event.job);
      writer.member("depth", event.a);
      writer.member("leaf_classes", event.b);
      writer.member("components", event.c);
      writer.member("separated", event.d != 0);
      break;
    case ServeEvent::Kind::kTelemetry:
      writer.member("kind", "telemetry");
      writer.member("submission", event.submission);
      writer.member("job", event.job);
      writer.member("states_expanded", event.a);
      writer.member("states_committed", event.b);
      writer.member("views_interned", event.c);
      writer.member("levels_committed", event.d);
      writer.member("frontier_high_water", event.e);
      break;
    case ServeEvent::Kind::kJobDone:
      writer.member("kind", "job_done");
      writer.member("submission", event.submission);
      writer.member("job", event.job);
      writer.member("jobs_done", event.a);
      writer.member("jobs_total", event.b);
      break;
  }
  writer.end_object();
  return finish(out);
}

}  // namespace topocon::service
