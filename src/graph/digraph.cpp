#include "graph/digraph.hpp"

#include <bit>
#include <cassert>
#include <sstream>

namespace topocon {

Digraph::Digraph(int n) : n_(n), in_(static_cast<std::size_t>(n)) {
  assert(n >= 1 && n <= kMaxProcesses);
  for (int q = 0; q < n; ++q) {
    in_[static_cast<std::size_t>(q)] = NodeMask{1} << q;
  }
}

Digraph Digraph::complete(int n) {
  Digraph g(n);
  for (int q = 0; q < n; ++q) {
    g.in_[static_cast<std::size_t>(q)] = full_mask(n);
  }
  return g;
}

Digraph Digraph::empty(int n) { return Digraph(n); }

Digraph Digraph::from_edges(
    int n, std::initializer_list<std::pair<ProcessId, ProcessId>> edges) {
  Digraph g(n);
  for (const auto& [p, q] : edges) {
    g.add_edge(p, q);
  }
  return g;
}

Digraph Digraph::decode(int n, std::uint64_t key) {
  assert(n * n <= 64);
  Digraph g(n);
  for (int q = 0; q < n; ++q) {
    const auto row =
        static_cast<NodeMask>((key >> (q * n)) & full_mask(n));
    g.in_[static_cast<std::size_t>(q)] = row | (NodeMask{1} << q);
  }
  return g;
}

void Digraph::add_edge(ProcessId p, ProcessId q) {
  assert(p >= 0 && p < n_ && q >= 0 && q < n_);
  in_[static_cast<std::size_t>(q)] |= NodeMask{1} << p;
}

void Digraph::remove_edge(ProcessId p, ProcessId q) {
  assert(p >= 0 && p < n_ && q >= 0 && q < n_);
  if (p == q) return;  // self-loops are permanent
  in_[static_cast<std::size_t>(q)] &= ~(NodeMask{1} << p);
}

NodeMask Digraph::out_mask(ProcessId p) const {
  NodeMask out = 0;
  for (int q = 0; q < n_; ++q) {
    if (has_edge(p, q)) out |= NodeMask{1} << q;
  }
  return out;
}

int Digraph::num_edges() const {
  int count = 0;
  for (int q = 0; q < n_; ++q) {
    count += std::popcount(in_[static_cast<std::size_t>(q)]);
  }
  return count;
}

int Digraph::num_omissions() const {
  return n_ * n_ - num_edges();  // complete has n*n edges incl. loops
}

std::uint64_t Digraph::encode() const {
  assert(n_ * n_ <= 64);
  std::uint64_t key = 0;
  for (int q = 0; q < n_; ++q) {
    key |= static_cast<std::uint64_t>(in_[static_cast<std::size_t>(q)])
           << (q * n_);
  }
  return key;
}

std::string Digraph::to_string() const {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (int p = 0; p < n_; ++p) {
    for (int q = 0; q < n_; ++q) {
      if (p != q && has_edge(p, q)) {
        if (!first) out << ", ";
        out << p << "->" << q;
        first = false;
      }
    }
  }
  out << '}';
  return out.str();
}

}  // namespace topocon
