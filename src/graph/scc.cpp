#include "graph/scc.hpp"

#include <algorithm>
#include <bit>

namespace topocon {

namespace {

// Iterative Tarjan over the out-edge view of the graph.
struct TarjanState {
  const Digraph& g;
  std::vector<NodeMask> out;
  std::vector<int> index, lowlink;
  std::vector<bool> on_stack;
  std::vector<int> stack;
  int next_index = 0;
  SccDecomposition result;

  explicit TarjanState(const Digraph& graph)
      : g(graph),
        out(static_cast<std::size_t>(graph.num_processes())),
        index(static_cast<std::size_t>(graph.num_processes()), -1),
        lowlink(static_cast<std::size_t>(graph.num_processes()), 0),
        on_stack(static_cast<std::size_t>(graph.num_processes()), false) {
    const int n = g.num_processes();
    for (int p = 0; p < n; ++p) {
      out[static_cast<std::size_t>(p)] = g.out_mask(p);
    }
    result.comp.assign(static_cast<std::size_t>(n), -1);
  }

  void run(int start) {
    struct Frame {
      int v;
      NodeMask pending;  // unexplored out-neighbours
    };
    std::vector<Frame> frames;
    frames.push_back({start, out[static_cast<std::size_t>(start)]});
    index[static_cast<std::size_t>(start)] =
        lowlink[static_cast<std::size_t>(start)] = next_index++;
    stack.push_back(start);
    on_stack[static_cast<std::size_t>(start)] = true;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto v = static_cast<std::size_t>(f.v);
      if (f.pending != 0) {
        const int w = std::countr_zero(f.pending);
        f.pending &= f.pending - 1;
        const auto wi = static_cast<std::size_t>(w);
        if (index[wi] < 0) {
          index[wi] = lowlink[wi] = next_index++;
          stack.push_back(w);
          on_stack[wi] = true;
          frames.push_back({w, out[wi]});
        } else if (on_stack[wi]) {
          lowlink[v] = std::min(lowlink[v], index[wi]);
        }
        continue;
      }
      // v finished: maybe close a component, then propagate lowlink up.
      if (lowlink[v] == index[v]) {
        const int c = result.num_components++;
        NodeMask members = 0;
        int w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          result.comp[static_cast<std::size_t>(w)] = c;
          members |= NodeMask{1} << w;
        } while (w != f.v);
        result.members.push_back(members);
      }
      const int finished = f.v;
      frames.pop_back();
      if (!frames.empty()) {
        const auto parent = static_cast<std::size_t>(frames.back().v);
        lowlink[parent] =
            std::min(lowlink[parent],
                     lowlink[static_cast<std::size_t>(finished)]);
      }
    }
  }
};

}  // namespace

SccDecomposition strongly_connected_components(const Digraph& g) {
  TarjanState state(g);
  const int n = g.num_processes();
  for (int p = 0; p < n; ++p) {
    if (state.index[static_cast<std::size_t>(p)] < 0) state.run(p);
  }
  SccDecomposition result = std::move(state.result);
  // Mark root components: those with no in-edge from a different component.
  result.is_root.assign(static_cast<std::size_t>(result.num_components),
                        true);
  for (int q = 0; q < n; ++q) {
    const int cq = result.comp[static_cast<std::size_t>(q)];
    NodeMask senders = g.in_mask(q);
    while (senders != 0) {
      const int p = std::countr_zero(senders);
      senders &= senders - 1;
      const int cp = result.comp[static_cast<std::size_t>(p)];
      if (cp != cq) result.is_root[static_cast<std::size_t>(cq)] = false;
    }
  }
  return result;
}

NodeMask root_members(const Digraph& g) {
  const SccDecomposition scc = strongly_connected_components(g);
  NodeMask roots = 0;
  for (int c = 0; c < scc.num_components; ++c) {
    if (scc.is_root[static_cast<std::size_t>(c)]) {
      roots |= scc.members[static_cast<std::size_t>(c)];
    }
  }
  return roots;
}

bool is_rooted(const Digraph& g) {
  const SccDecomposition scc = strongly_connected_components(g);
  int roots = 0;
  for (int c = 0; c < scc.num_components; ++c) {
    roots += scc.is_root[static_cast<std::size_t>(c)] ? 1 : 0;
  }
  return roots == 1;
}

NodeMask broadcasters(const Digraph& g) {
  // p reaches everyone iff p lies in the unique root component.
  if (!is_rooted(g)) return 0;
  return root_members(g);
}

std::vector<NodeMask> propagate(const Digraph& g,
                                const std::vector<NodeMask>& know) {
  const int n = g.num_processes();
  std::vector<NodeMask> next(static_cast<std::size_t>(n), 0);
  for (int q = 0; q < n; ++q) {
    NodeMask acc = 0;
    NodeMask senders = g.in_mask(q);
    while (senders != 0) {
      const int p = std::countr_zero(senders);
      senders &= senders - 1;
      acc |= know[static_cast<std::size_t>(p)];
    }
    next[static_cast<std::size_t>(q)] = acc;
  }
  return next;
}

}  // namespace topocon
