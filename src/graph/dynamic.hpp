// Dynamic-graph measures over finite graph sequences: broadcast times and
// the dynamic diameter, the quantities the VSSC literature's stability
// thresholds (D+1 in [23]) are phrased in.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace topocon {

/// First round t (1-based) by which every process knows p's initial
/// value under the given graph sequence, or -1 if that never happens
/// within the sequence.
int broadcast_time(const std::vector<Digraph>& graphs, ProcessId p);

/// First round by which everyone knows everyone's initial value
/// (max over broadcast_time of the processes), or -1.
int dynamic_diameter(const std::vector<Digraph>& graphs);

/// Mask of processes that complete a broadcast within the sequence.
NodeMask broadcasters_within(const std::vector<Digraph>& graphs);

}  // namespace topocon
