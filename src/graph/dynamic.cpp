#include "graph/dynamic.hpp"

#include "graph/scc.hpp"

namespace topocon {

namespace {

// know[q] = mask of processes whose initial value q holds.
std::vector<NodeMask> initial_knowledge(int n) {
  std::vector<NodeMask> know(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) {
    know[static_cast<std::size_t>(q)] = NodeMask{1} << q;
  }
  return know;
}

}  // namespace

int broadcast_time(const std::vector<Digraph>& graphs, ProcessId p) {
  if (graphs.empty()) return -1;
  const int n = graphs.front().num_processes();
  std::vector<NodeMask> know = initial_knowledge(n);
  for (std::size_t t = 0; t < graphs.size(); ++t) {
    know = propagate(graphs[t], know);
    bool all = true;
    for (int q = 0; q < n; ++q) {
      if (!mask_contains(know[static_cast<std::size_t>(q)], p)) all = false;
    }
    if (all) return static_cast<int>(t) + 1;
  }
  return -1;
}

int dynamic_diameter(const std::vector<Digraph>& graphs) {
  if (graphs.empty()) return -1;
  const int n = graphs.front().num_processes();
  int worst = -1;
  for (int p = 0; p < n; ++p) {
    const int time = broadcast_time(graphs, p);
    if (time < 0) return -1;
    if (time > worst) worst = time;
  }
  return worst;
}

NodeMask broadcasters_within(const std::vector<Digraph>& graphs) {
  if (graphs.empty()) return 0;
  const int n = graphs.front().num_processes();
  NodeMask result = 0;
  for (int p = 0; p < n; ++p) {
    if (broadcast_time(graphs, p) >= 0) result |= NodeMask{1} << p;
  }
  return result;
}

}  // namespace topocon
