#include "graph/enumerate.hpp"

#include <bit>
#include <cassert>

#include "graph/scc.hpp"

namespace topocon {

namespace {

// Enumerates off-diagonal edge subsets as bitmasks over n(n-1) positions;
// position index for (p, q), p != q, counts row-major skipping the diagonal.
Digraph graph_from_offdiag_mask(int n, std::uint32_t mask) {
  Digraph g(n);
  int bit = 0;
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      if (p == q) continue;
      if ((mask >> bit) & 1u) g.add_edge(p, q);
      ++bit;
    }
  }
  return g;
}

}  // namespace

std::vector<Digraph> all_graphs(int n) {
  assert(n >= 1 && n <= 4);
  const int positions = n * (n - 1);
  std::vector<Digraph> graphs;
  graphs.reserve(std::size_t{1} << positions);
  for (std::uint32_t mask = 0; mask < (1u << positions); ++mask) {
    graphs.push_back(graph_from_offdiag_mask(n, mask));
  }
  return graphs;
}

std::vector<Digraph> graphs_with_max_omissions(int n, int max_omissions) {
  assert(n >= 1 && n <= 4);
  const int positions = n * (n - 1);
  std::vector<Digraph> graphs;
  for (std::uint32_t mask = 0; mask < (1u << positions); ++mask) {
    const int omissions = positions - std::popcount(mask);
    if (omissions <= max_omissions) {
      graphs.push_back(graph_from_offdiag_mask(n, mask));
    }
  }
  return graphs;
}

std::vector<Digraph> rooted_graphs(int n) {
  std::vector<Digraph> graphs;
  for (const Digraph& g : all_graphs(n)) {
    if (is_rooted(g)) graphs.push_back(g);
  }
  return graphs;
}

std::vector<Digraph> lossy_link_graphs() {
  return {
      Digraph::from_edges(2, {{1, 0}}),          // LEFT  "<-"
      Digraph::from_edges(2, {{0, 1}}),          // RIGHT "->"
      Digraph::from_edges(2, {{0, 1}, {1, 0}}),  // BOTH  "<->"
  };
}

const char* lossy_link_name(int index) {
  switch (index) {
    case 0: return "<-";
    case 1: return "->";
    case 2: return "<->";
    default: return "?";
  }
}

}  // namespace topocon
