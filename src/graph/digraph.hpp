// Directed communication graphs on the process set [n] = {0, ..., n-1}.
//
// A communication graph determines one round of message delivery in a
// synchronous dynamic network (paper, Section 2): process q receives the
// round-t message of process p iff (p, q) is an edge of the round-t graph.
//
// Representation: one in-neighbour bitmask per node, which makes the two
// operations the rest of the library performs constantly -- "who did q hear
// from this round?" and "are two in-neighbourhoods equal?" -- O(1).
//
// Self-loops. Following the standard message-adversary convention, every
// process always receives its own message, i.e., all graphs carry all
// self-loops. This is load-bearing for the topology layer: it makes local
// views cumulative over time (V_p(a^t) is recoverable from V_p(a^{t+1})),
// which in turn makes the process-view distances of Section 4 behave as the
// paper assumes. Construction APIs therefore insert self-loops by default;
// tests cover the invariant.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace topocon {

/// Process identifier in [0, n).
using ProcessId = int;

/// Bitmask over the process set; bit p set means process p is a member.
using NodeMask = std::uint32_t;

/// Maximum number of processes supported by the bitmask representation.
inline constexpr int kMaxProcesses = 16;

/// Returns the mask containing all of [0, n).
constexpr NodeMask full_mask(int n) {
  return static_cast<NodeMask>((1u << n) - 1u);
}

/// Returns true if process p is a member of mask m.
constexpr bool mask_contains(NodeMask m, ProcessId p) {
  return (m >> p) & 1u;
}

/// A directed graph on [n] with mandatory self-loops, stored as per-node
/// in-neighbour bitmasks.
class Digraph {
 public:
  /// Constructs the graph with only self-loops on n nodes.
  explicit Digraph(int n);

  /// The graph with every edge present (including self-loops).
  static Digraph complete(int n);

  /// The graph with only self-loops; alias of the constructor, for intent.
  static Digraph empty(int n);

  /// Builds a graph from an edge list (self-loops added automatically).
  static Digraph from_edges(
      int n, std::initializer_list<std::pair<ProcessId, ProcessId>> edges);

  /// Reconstructs a graph from its encode() key.
  static Digraph decode(int n, std::uint64_t key);

  int num_processes() const { return n_; }

  /// True iff q receives p's message under this graph.
  bool has_edge(ProcessId p, ProcessId q) const {
    return mask_contains(in_[static_cast<std::size_t>(q)], p);
  }

  /// Adds edge (p, q). Adding a self-loop is a no-op (always present).
  void add_edge(ProcessId p, ProcessId q);

  /// Removes edge (p, q). Self-loops cannot be removed; attempting to is a
  /// no-op, preserving the library-wide invariant.
  void remove_edge(ProcessId p, ProcessId q);

  /// The senders q hears from in this round (always contains q itself).
  NodeMask in_mask(ProcessId q) const {
    return in_[static_cast<std::size_t>(q)];
  }

  /// The receivers of p's message (always contains p itself). O(n).
  NodeMask out_mask(ProcessId p) const;

  /// Number of edges, self-loops included.
  int num_edges() const;

  /// Number of absent off-diagonal edges ("omissions" w.r.t. complete).
  int num_omissions() const;

  /// Canonical 64-bit key: row q occupies bits [q*n, (q+1)*n). Requires
  /// n*n <= 64, i.e., n <= 8; asserted. Used for hashing and dense tables.
  std::uint64_t encode() const;

  /// Human-readable edge list such as "{0->1, 1->0}" (self-loops omitted).
  std::string to_string() const;

  friend bool operator==(const Digraph& a, const Digraph& b) {
    return a.n_ == b.n_ && a.in_ == b.in_;
  }

 private:
  int n_;
  std::vector<NodeMask> in_;
};

}  // namespace topocon

template <>
struct std::hash<topocon::Digraph> {
  std::size_t operator()(const topocon::Digraph& g) const noexcept {
    std::size_t h = std::hash<int>{}(g.num_processes());
    for (int q = 0; q < g.num_processes(); ++q) {
      h = h * 1000003u + g.in_mask(q);
    }
    return h;
  }
};
