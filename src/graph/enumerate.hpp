// Enumerators for the communication-graph families used by the paper's
// applications (Section 6) and by the message adversaries built on them.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace topocon {

/// All directed graphs on [n] (with self-loops): 2^(n(n-1)) graphs.
/// Requires n <= 4 to keep the enumeration tractable.
std::vector<Digraph> all_graphs(int n);

/// All graphs obtained from the complete graph by removing at most
/// max_omissions off-diagonal edges (Santoro-Widmayer style adversaries
/// [21, 22]). max_omissions = n(n-1) yields all_graphs(n).
std::vector<Digraph> graphs_with_max_omissions(int n, int max_omissions);

/// All *rooted* graphs on [n] (exactly one root component); the per-round
/// guarantee of the VSSC adversaries of [6, 23].
std::vector<Digraph> rooted_graphs(int n);

/// The lossy-link alphabet for n = 2 (paper Sections 1, 6.1).
/// Index 0 = LEFT  ("<-"): only 1 -> 0 delivered.
/// Index 1 = RIGHT ("->"): only 0 -> 1 delivered.
/// Index 2 = BOTH  ("<->"): both messages delivered.
std::vector<Digraph> lossy_link_graphs();

/// Names matching lossy_link_graphs() order: "<-", "->", "<->".
const char* lossy_link_name(int index);

}  // namespace topocon
