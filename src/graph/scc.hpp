// Strongly connected components, root components, and broadcastability
// predicates on communication graphs.
//
// Terminology from the paper and its references [6, 23]:
//  * A *root component* (a.k.a. source component / vertex-stable source
//    component when persistent over rounds) is an SCC of the condensation
//    with no incoming edges from outside the SCC.
//  * A graph is *rooted* iff it has exactly one root component; equivalently
//    iff some process has a directed path to every process. Rooted graphs
//    are exactly those in which a single round can originate a broadcast.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace topocon {

/// Result of an SCC decomposition.
struct SccDecomposition {
  /// comp[q] = id of q's component; ids are in reverse topological order of
  /// the condensation (id 0 has no outgoing edges to other components).
  std::vector<int> comp;
  int num_components = 0;
  /// members[c] = bitmask of the processes in component c.
  std::vector<NodeMask> members;
  /// is_root[c] = component c has no incoming edge from another component.
  std::vector<bool> is_root;
};

/// Tarjan's algorithm (iterative), O(n + m).
SccDecomposition strongly_connected_components(const Digraph& g);

/// Union of all root components of g.
NodeMask root_members(const Digraph& g);

/// True iff g has exactly one root component (single-rooted graph).
bool is_rooted(const Digraph& g);

/// The set of processes that reach every process via directed paths in g.
/// Nonempty iff is_rooted(g); equals the unique root component then.
NodeMask broadcasters(const Digraph& g);

/// Transitive-closure step: for each process q, the set of processes whose
/// round-start information q holds after one round under g, given the sets
/// `know` held at round start. know[q] and the result always contain q.
std::vector<NodeMask> propagate(const Digraph& g,
                                const std::vector<NodeMask>& know);

}  // namespace topocon
