#include "adversary/family.hpp"

#include <stdexcept>

#include "adversary/finite_loss.hpp"
#include "adversary/heard_of.hpp"
#include "adversary/lossy_link.hpp"
#include "adversary/omission.hpp"
#include "adversary/vssc.hpp"
#include "adversary/windowed.hpp"

namespace topocon {

const std::vector<std::string>& known_families() {
  static const std::vector<std::string> families = {
      "lossy_link", "omission",    "heard_of",
      "windowed_lossy_link", "vssc", "finite_loss"};
  return families;
}

std::string family_point_label(const FamilyPoint& point) {
  if (point.family == "lossy_link") {
    return lossy_link_subset_name(static_cast<unsigned>(point.param));
  }
  if (point.family == "omission") {
    return "n=" + std::to_string(point.n) +
           " f=" + std::to_string(point.param);
  }
  if (point.family == "heard_of") {
    return "n=" + std::to_string(point.n) +
           " k=" + std::to_string(point.param);
  }
  if (point.family == "windowed_lossy_link") {
    return "w=" + std::to_string(point.param);
  }
  if (point.family == "vssc") {
    return "n=" + std::to_string(point.n) +
           " stability=" + std::to_string(point.param);
  }
  if (point.family == "finite_loss") {
    return "n=" + std::to_string(point.n);
  }
  return point.family + "(n=" + std::to_string(point.n) +
         ", param=" + std::to_string(point.param) + ")";
}

std::unique_ptr<MessageAdversary> make_family_adversary(
    const FamilyPoint& point) {
  if (point.family == "lossy_link") {
    if (point.n != 2 || point.param < 1 || point.param > 7) {
      throw std::invalid_argument("lossy_link: need n=2, 1 <= mask <= 7");
    }
    return make_lossy_link(static_cast<unsigned>(point.param));
  }
  if (point.family == "omission") {
    return make_omission_adversary(point.n, point.param);
  }
  if (point.family == "heard_of") {
    return make_heard_of_adversary(point.n, point.param);
  }
  if (point.family == "windowed_lossy_link") {
    if (point.n != 2 || point.param < 1) {
      throw std::invalid_argument(
          "windowed_lossy_link: need n=2, window >= 1");
    }
    return make_windowed_lossy_link(point.param);
  }
  if (point.family == "vssc") {
    return std::make_unique<VsscAdversary>(point.n, point.param);
  }
  if (point.family == "finite_loss") {
    return std::make_unique<FiniteLossAdversary>(point.n);
  }
  throw std::invalid_argument("unknown adversary family: " + point.family);
}

}  // namespace topocon
