#include "adversary/family.hpp"

#include <algorithm>
#include <climits>
#include <stdexcept>

#include "adversary/compose.hpp"
#include "adversary/finite_loss.hpp"
#include "adversary/heard_of.hpp"
#include "adversary/lossy_link.hpp"
#include "adversary/mobile_failure.hpp"
#include "adversary/omission.hpp"
#include "adversary/vssc.hpp"
#include "adversary/windowed.hpp"

namespace topocon {

const std::vector<std::string>& known_families() {
  static const std::vector<std::string> families = {
      "lossy_link", "omission",    "heard_of", "heard_of_rounds",
      "mobile_failure", "windowed_lossy_link", "vssc", "finite_loss"};
  return families;
}

std::string family_point_label(const FamilyPoint& point) {
  if (is_composed_family(point.family)) {
    // The spec JSON exactly as carried by the family string: the label
    // alone replays the point (parse_compose_spec round-trips it).
    return std::string(composed_spec_of(point.family));
  }
  if (point.family == "lossy_link") {
    return lossy_link_subset_name(static_cast<unsigned>(point.param));
  }
  if (point.family == "omission") {
    return "n=" + std::to_string(point.n) +
           " f=" + std::to_string(point.param);
  }
  if (point.family == "heard_of") {
    return "n=" + std::to_string(point.n) +
           " k=" + std::to_string(point.param);
  }
  if (point.family == "heard_of_rounds") {
    return "n=" + std::to_string(point.n) +
           " p=" + std::to_string(point.param);
  }
  if (point.family == "mobile_failure") {
    return "n=" + std::to_string(point.n) +
           " r=" + std::to_string(point.param);
  }
  if (point.family == "windowed_lossy_link") {
    return "w=" + std::to_string(point.param);
  }
  if (point.family == "vssc") {
    return "n=" + std::to_string(point.n) +
           " stability=" + std::to_string(point.param);
  }
  if (point.family == "finite_loss") {
    return "n=" + std::to_string(point.n);
  }
  return point.family + "(n=" + std::to_string(point.n) +
         ", param=" + std::to_string(point.param) + ")";
}

namespace {

[[noreturn]] void fail_point(const std::string& family,
                             const std::string& what, int got) {
  throw std::invalid_argument(family + ": " + what + " (got " +
                              std::to_string(got) + ")");
}

void check_param_in_range(const std::string& family,
                          const FamilyParamRange& range, int param) {
  if (param < range.min || param > range.max) {
    fail_point(family,
               "param must be in [" + std::to_string(range.min) + ", " +
                   (range.max == INT_MAX ? "inf"
                                         : std::to_string(range.max)) +
                   "]",
               param);
  }
}

/// Grids beyond this are operator error, not a workload: the expansion
/// is rejected before any allocation so absurd --param-max values cannot
/// exhaust memory.
constexpr long long kMaxGridPoints = 100'000;

}  // namespace

FamilyParamRange family_param_range(const std::string& family, int n) {
  if (is_composed_family(family)) {
    // Parsing + structural validation of the embedded spec; the point's
    // n must equal the components' common process count.
    const ComposeSpec spec = parse_compose_spec(composed_spec_of(family));
    const int spec_n = validate_compose_spec(spec);
    if (n != spec_n) {
      throw std::invalid_argument("composed: n must be " +
                                  std::to_string(spec_n) + " (got " +
                                  std::to_string(n) + ")");
    }
    return {0, 0, "unused (must be 0)"};
  }
  if (family == "lossy_link") {
    if (n != 2) fail_point(family, "n must be 2", n);
    return {1, 7, "subset mask over {<-, ->, <->}"};
  }
  if (family == "omission") {
    if (n < 2) fail_point(family, "n must be >= 2", n);
    const long long max_f = static_cast<long long>(n) * (n - 1);
    return {0, static_cast<int>(std::min<long long>(max_f, INT_MAX)),
            "per-round omission budget f"};
  }
  if (family == "heard_of") {
    if (n < 2) fail_point(family, "n must be >= 2", n);
    return {1, n, "minimal per-receiver in-degree k"};
  }
  if (family == "heard_of_rounds") {
    // The alphabet enumerates all_graphs(n), tractable only to n = 4.
    if (n < 2 || n > 4) fail_point(family, "n must be in [2, 4]", n);
    return {1, INT_MAX, "uniform-round period p"};
  }
  if (family == "mobile_failure") {
    // The alphabet has 1 + n * (2^(n-1) - 1) graphs, tractable to n = 6;
    // the automaton encodes (sender, streak) as 1 + sender * r + len - 1,
    // so r is capped where the encoding would leave AdvState.
    if (n < 2 || n > 6) fail_point(family, "n must be in [2, 6]", n);
    return {1, (INT_MAX - 1) / n, "max consecutive faulty rounds r"};
  }
  if (family == "windowed_lossy_link") {
    if (n != 2) fail_point(family, "n must be 2", n);
    return {1, INT_MAX, "repetition window w"};
  }
  if (family == "vssc") {
    if (n < 2) fail_point(family, "n must be >= 2", n);
    return {1, INT_MAX, "stability window length"};
  }
  if (family == "finite_loss") {
    if (n < 2) fail_point(family, "n must be >= 2", n);
    return {0, 0, "unused (must be 0)"};
  }
  throw std::invalid_argument("unknown adversary family: " + family);
}

void validate_family_point(const FamilyPoint& point) {
  if (is_composed_family(point.family)) {
    family_param_range(point.family, point.n);  // spec + n validation
    if (point.param != 0) {
      // Not the generic range message: it would prefix the whole spec
      // string instead of the "composed" family tag.
      throw std::invalid_argument("composed: param must be 0 (got " +
                                  std::to_string(point.param) + ")");
    }
    return;
  }
  check_param_in_range(point.family,
                       family_param_range(point.family, point.n),
                       point.param);
}

std::vector<FamilyPoint> family_grid(const std::string& family, int n,
                                     int param_min, int param_max) {
  // Validate family and n first so a typo'd family name is reported as
  // such, not as an interval problem; then the endpoints, before any
  // allocation -- the whole interval is then inside the valid range.
  const FamilyParamRange range = family_param_range(family, n);
  if (param_min > param_max) {
    throw std::invalid_argument(
        family + ": empty parameter interval [" + std::to_string(param_min) +
        ", " + std::to_string(param_max) + "]");
  }
  check_param_in_range(family, range, param_min);
  check_param_in_range(family, range, param_max);
  const long long count =
      static_cast<long long>(param_max) - param_min + 1;
  if (count > kMaxGridPoints) {
    throw std::invalid_argument(
        family + ": parameter interval [" + std::to_string(param_min) +
        ", " + std::to_string(param_max) + "] expands to " +
        std::to_string(count) + " points (limit " +
        std::to_string(kMaxGridPoints) + ")");
  }
  std::vector<FamilyPoint> points;
  points.reserve(static_cast<std::size_t>(count));
  // Widened loop variable: `int param <= param_max` would never terminate
  // (and overflow) when param_max == INT_MAX, a legal bound for the
  // window families.
  for (long long param = param_min; param <= param_max; ++param) {
    points.push_back({family, n, static_cast<int>(param)});
  }
  return points;
}

std::unique_ptr<MessageAdversary> make_family_adversary(
    const FamilyPoint& point) {
  validate_family_point(point);
  if (is_composed_family(point.family)) {
    return make_composed_adversary(
        parse_compose_spec(composed_spec_of(point.family)));
  }
  if (point.family == "lossy_link") {
    return make_lossy_link(static_cast<unsigned>(point.param));
  }
  if (point.family == "omission") {
    return make_omission_adversary(point.n, point.param);
  }
  if (point.family == "heard_of") {
    return make_heard_of_adversary(point.n, point.param);
  }
  if (point.family == "heard_of_rounds") {
    return make_heard_of_rounds_adversary(point.n, point.param);
  }
  if (point.family == "mobile_failure") {
    return make_mobile_failure_adversary(point.n, point.param);
  }
  if (point.family == "windowed_lossy_link") {
    return make_windowed_lossy_link(point.param);
  }
  if (point.family == "vssc") {
    return std::make_unique<VsscAdversary>(point.n, point.param);
  }
  if (point.family == "finite_loss") {
    return std::make_unique<FiniteLossAdversary>(point.n);
  }
  // validate_family_point accepted the name, so a missing branch here is
  // a dispatch/known_families() mismatch, not caller error.
  throw std::logic_error("make_family_adversary: unhandled family " +
                         point.family);
}

}  // namespace topocon
