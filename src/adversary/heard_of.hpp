// Heard-Of style oblivious adversaries (Charron-Bost & Schiper [7]): the
// admissible graphs are those in which every process "hears of" at least
// `min_heard` processes per round (its own in-degree, self included).
//
// For n = 2, min_heard = 1 this is exactly the full lossy link
// {<-, ->, <->} (impossible); min_heard = n leaves only the complete graph
// (trivially solvable). In between, each receiver may lose up to
// n - min_heard incoming messages per round -- the per-receiver analogue
// of the per-round total budget of the omission adversaries [21, 22],
// and impossible for every min_heard < n by the same silencing argument
// (each other receiver can drop the same sender every round).
#pragma once

#include <memory>

#include "adversary/oblivious.hpp"

namespace topocon {

/// Builds the oblivious adversary of all graphs with per-process in-degree
/// >= min_heard (1 <= min_heard <= n; self-loops count). n <= 4.
std::unique_ptr<ObliviousAdversary> make_heard_of_adversary(int n,
                                                            int min_heard);

}  // namespace topocon
