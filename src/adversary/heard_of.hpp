// Heard-Of style oblivious adversaries (Charron-Bost & Schiper [7]): the
// admissible graphs are those in which every process "hears of" at least
// `min_heard` processes per round (its own in-degree, self included).
//
// For n = 2, min_heard = 1 this is exactly the full lossy link
// {<-, ->, <->} (impossible); min_heard = n leaves only the complete graph
// (trivially solvable). In between, each receiver may lose up to
// n - min_heard incoming messages per round -- the per-receiver analogue
// of the per-round total budget of the omission adversaries [21, 22],
// and impossible for every min_heard < n by the same silencing argument
// (each other receiver can drop the same sender every round).
#pragma once

#include <memory>

#include "adversary/oblivious.hpp"

namespace topocon {

/// Builds the oblivious adversary of all graphs with per-process in-degree
/// >= min_heard (1 <= min_heard <= n; self-loops count). n <= 4.
std::unique_ptr<ObliviousAdversary> make_heard_of_adversary(int n,
                                                            int min_heard);

/// Rounds-based heard-of adversary (the "at least one uniform round every
/// Phi rounds" communication predicates of the heard-of literature): the
/// per-round alphabet is every graph in which each receiver misses at most
/// one sender (in-degree >= n - 1, self included; n^n graphs), and the
/// safety automaton demands that every window of `period` consecutive
/// rounds contains at least one *uniform* round -- the complete graph.
/// Unlike heard_of (oblivious, per-round guarantee only), this family is
/// non-oblivious but compact: the automaton counts rounds since the last
/// uniform round and rejects at `period`. period = 1 leaves only the
/// complete graph (trivially solvable); large periods approach the
/// impossible per-receiver-loss adversary.
class HeardOfRoundsAdversary : public MessageAdversary {
 public:
  /// n in [2, 4] (the alphabet enumerates all_graphs(n)); period >= 1.
  HeardOfRoundsAdversary(int n, int period);

  AdvState initial_state() const override { return 0; }
  /// State s in [0, period): rounds since the last uniform round.
  AdvState transition(AdvState state, int letter) const override;
  AdvState state_bound() const override { return period_; }
  /// Exact liveness for lassos: a cycle with no uniform round drifts the
  /// counter past any period, so the default two-unrolling check is not
  /// enough.
  bool admits_lasso(const std::vector<int>& stem,
                    const std::vector<int>& cycle) const override;

  int period() const { return period_; }
  /// Letter index of the complete graph within alphabet().
  int uniform_letter() const { return uniform_letter_; }

 private:
  int period_;
  int uniform_letter_;
};

/// Builds the rounds-based heard-of adversary (family "heard_of_rounds").
std::unique_ptr<HeardOfRoundsAdversary> make_heard_of_rounds_adversary(
    int n, int period);

}  // namespace topocon
