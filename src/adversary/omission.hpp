// Per-round omission adversaries (Santoro-Widmayer [21], Schmid-Weiss-Keidar
// [22]): in every round, the adversary removes up to f off-diagonal edges
// from the complete graph. Oblivious, hence compact.
//
// Known results reproduced as oracles and benchmarks:
//   * f >= n-1: consensus impossible (the adversary can silence one process
//     each round; [21], re-derived topologically in paper Section 6.1).
//   * f < n-1 : consensus solvable (no process can be isolated; after one
//     round some process is heard by everyone).
#pragma once

#include <memory>

#include "adversary/oblivious.hpp"

namespace topocon {

/// Builds the adversary that may omit up to `max_omissions` edges per round.
std::unique_ptr<ObliviousAdversary> make_omission_adversary(int n,
                                                            int max_omissions);

}  // namespace topocon
