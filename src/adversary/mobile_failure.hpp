// Mobile-failure message adversary (Santoro & Widmayer's mobile omission
// faults, as phrased in the heard-of literature's communication
// predicates): in every round at most ONE process is send-faulty -- an
// arbitrary nonempty subset of its outgoing messages to other processes
// is lost while every other edge is delivered -- and the faulty process
// may MOVE between rounds but may not stay: no process is faulty for
// more than `persistence` consecutive rounds.
//
// The per-round alphabet is therefore the complete graph (a clean round)
// plus, for each sender p, the 2^(n-1) - 1 graphs missing a nonempty
// subset of p's outgoing non-self edges; each faulty letter names its
// sender uniquely, so the safety automaton is deterministic: it tracks
// (current faulty sender, streak length) and rejects when a streak would
// exceed `persistence`. persistence = 1 forces the fault to move every
// round; large persistence approaches the oblivious one-mobile-fault
// adversary. Compact (pure safety), like heard_of_rounds.
#pragma once

#include <memory>

#include "adversary/adversary.hpp"

namespace topocon {

class MobileFailureAdversary : public MessageAdversary {
 public:
  /// n in [2, 6] (the alphabet has 1 + n * (2^(n-1) - 1) graphs);
  /// persistence >= 1.
  MobileFailureAdversary(int n, int persistence);

  AdvState initial_state() const override { return 0; }
  /// State 0: the previous round was clean (or initial). State
  /// 1 + p * persistence + (len - 1): process p has been faulty for the
  /// last `len` consecutive rounds, 1 <= len <= persistence.
  AdvState transition(AdvState state, int letter) const override;
  AdvState state_bound() const override;
  /// Exact liveness for lassos: a cycle faulting one process in every
  /// letter drifts the streak across unrollings (rejected here); every
  /// other cycle resets the streak mid-pass, for which the base
  /// two-unrolling check is exact.
  bool admits_lasso(const std::vector<int>& stem,
                    const std::vector<int>& cycle) const override;

  int persistence() const { return persistence_; }
  /// Faulty sender of a letter, -1 for the clean (complete) round.
  int fault_of(int letter) const {
    return fault_of_[static_cast<std::size_t>(letter)];
  }

 private:
  int persistence_;
  std::vector<int> fault_of_;
};

/// Builds the mobile-failure adversary (family "mobile_failure").
std::unique_ptr<MobileFailureAdversary> make_mobile_failure_adversary(
    int n, int persistence);

}  // namespace topocon
