#include "adversary/windowed.hpp"

#include <cassert>

#include "graph/enumerate.hpp"

namespace topocon {

WindowedAdversary::WindowedAdversary(int n, std::vector<Digraph> graphs,
                                     int window, std::string name)
    : MessageAdversary(
          n, std::move(graphs),
          name.empty() ? "windowed(w=" + std::to_string(window) + ")"
                       : std::move(name)),
      window_(window) {
  assert(window >= 1);
}

AdvState WindowedAdversary::transition(AdvState state, int letter) const {
  if (state == 0) {
    return 1 + letter * window_;  // first round: any letter, age 1
  }
  const int encoded = state - 1;
  const int last = encoded / window_;
  const int age = encoded % window_ + 1;
  if (letter == last) {
    const int new_age = age < window_ ? age + 1 : window_;
    return 1 + letter * window_ + (new_age - 1);
  }
  if (age >= window_) {
    return 1 + letter * window_;  // switch allowed, age resets
  }
  return kRejectState;  // premature switch
}

std::vector<int> WindowedAdversary::sample(std::mt19937_64& rng,
                                           int horizon) const {
  std::vector<int> letters;
  letters.reserve(static_cast<std::size_t>(horizon));
  std::uniform_int_distribution<int> pick(0, alphabet_size() - 1);
  std::uniform_int_distribution<int> extra(0, window_);
  while (static_cast<int>(letters.size()) < horizon) {
    const int letter = pick(rng);
    const int run = window_ + extra(rng);
    for (int i = 0; i < run && static_cast<int>(letters.size()) < horizon;
         ++i) {
      letters.push_back(letter);
    }
  }
  return letters;
}

std::unique_ptr<WindowedAdversary> make_windowed_lossy_link(int window) {
  return std::make_unique<WindowedAdversary>(
      2, lossy_link_graphs(), window,
      "windowed-lossy-link(w=" + std::to_string(window) + ")");
}

}  // namespace topocon
