#include "adversary/omission.hpp"

#include "graph/enumerate.hpp"

namespace topocon {

std::unique_ptr<ObliviousAdversary> make_omission_adversary(
    int n, int max_omissions) {
  return std::make_unique<ObliviousAdversary>(
      n, graphs_with_max_omissions(n, max_omissions),
      "omission(n=" + std::to_string(n) +
          ",f=" + std::to_string(max_omissions) + ")");
}

}  // namespace topocon
