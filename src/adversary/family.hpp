// Named adversary families as data: one (family, n, param) triple per
// grid point, with a uniform factory. This is the adapter layer between
// the benchmark/CLI parameter grids and the sweep engine
// (runtime/sweep/engine.hpp): a SweepSpec is essentially a list of
// FamilyPoints plus solver options, and every bench table row corresponds
// to one point.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "adversary/adversary.hpp"

namespace topocon {

/// One point of a family parameter grid. `param` is family-specific:
///   lossy_link          -- subset mask over {<-, ->, <->} (1..7); n = 2.
///   omission            -- per-round omission budget f.
///   heard_of            -- minimal per-receiver in-degree k (1..n).
///   heard_of_rounds     -- uniform-round period p (>= 1); n in [2, 4].
///   mobile_failure      -- max consecutive faulty rounds r (>= 1) of the
///                          single per-round mobile faulty sender; n in
///                          [2, 6].
///   windowed_lossy_link -- repetition window w (>= 1); n = 2.
///   vssc                -- stability window length (>= 1).
///   finite_loss         -- unused (0).
///
/// Beyond the named grid families, a point whose family string starts
/// with "composed:" carries a whole combinator tree (product/union/
/// window over compact families) as canonical JSON in the family string
/// itself; param is unused (0) and n must equal the components' common
/// process count. See adversary/compose.hpp for the spec grammar. The
/// encoding makes composed adversaries ride through every FamilyPoint
/// consumer -- queries, sweeps, checkpoints, resume -- unchanged.
struct FamilyPoint {
  std::string family;
  int n = 2;
  int param = 0;
};

/// The named grid families make_family_adversary accepts, in canonical
/// order. Composed points ("composed:..." family strings) are accepted
/// too but not enumerated here -- their space is a tree grammar, not a
/// list.
const std::vector<std::string>& known_families();

/// Short human/JSON label of a point, e.g. "n=3 f=1" or "{<-, ->}".
std::string family_point_label(const FamilyPoint& point);

/// Constructs the adversary for a grid point. Throws std::invalid_argument
/// with an exact, family-specific message for unknown family names and
/// out-of-range n or param (see validate_family_point).
std::unique_ptr<MessageAdversary> make_family_adversary(
    const FamilyPoint& point);

/// The checks behind make_family_adversary, usable without constructing
/// the adversary (grid expansion validates points up front). Throws
/// std::invalid_argument; the message always starts with "family:".
void validate_family_point(const FamilyPoint& point);

/// Valid parameter interval of a family at a given n. `max` is INT_MAX
/// for families whose parameter is unbounded above (windows); both are 0
/// for finite_loss, whose param is unused. Throws std::invalid_argument
/// for unknown families or invalid n.
struct FamilyParamRange {
  int min = 0;
  int max = 0;
  /// What the parameter means, e.g. "per-round omission budget f".
  const char* meaning = "";
};
FamilyParamRange family_param_range(const std::string& family, int n);

/// Expands the inclusive parameter interval [param_min, param_max] into
/// validated grid points of one family at fixed n -- the adapter between
/// scenario grids and SweepSpecs. Throws std::invalid_argument when the
/// interval is empty or leaves the family's valid range.
std::vector<FamilyPoint> family_grid(const std::string& family, int n,
                                     int param_min, int param_max);

}  // namespace topocon
