// The lossy-link scenario for n = 2 (paper, Sections 1 and 6.1; [8, 9, 21]).
//
// The adversary may choose per round from a subset of {<-, ->, <->}. The
// paper's touchstone results, all reproduced by this library:
//   * D = {<-, <->, ->}  : consensus impossible (Santoro-Widmayer [21]).
//   * D = {<-, ->}       : consensus solvable  (CGP [8]).
// Subsets are encoded as 3-bit masks over the order of lossy_link_graphs():
// bit 0 = "<-", bit 1 = "->", bit 2 = "<->".
#pragma once

#include <memory>
#include <string>

#include "adversary/oblivious.hpp"

namespace topocon {

/// Builds the oblivious lossy-link adversary for the given subset mask
/// (must be nonzero).
std::unique_ptr<ObliviousAdversary> make_lossy_link(unsigned subset_mask);

/// Human-readable subset name, e.g. "{<-, <->}".
std::string lossy_link_subset_name(unsigned subset_mask);

}  // namespace topocon
