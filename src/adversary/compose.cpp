#include "adversary/compose.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <stdexcept>
#include <utility>

#include "adversary/windowed.hpp"

namespace topocon {

bool is_composed_family(std::string_view family) {
  return family.size() > kComposedPrefix.size() &&
         family.substr(0, kComposedPrefix.size()) == kComposedPrefix;
}

std::string_view composed_spec_of(std::string_view family) {
  return family.substr(kComposedPrefix.size());
}

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("composed: " + what);
}

// ---- Spec parser --------------------------------------------------------
//
// Minimal recursive-descent JSON subset (objects with string keys, string
// and integer values, arrays of objects) -- hand-rolled because the
// adversary layer sits below the runtime layer's sweep JSON reader.

class SpecParser {
 public:
  explicit SpecParser(std::string_view text) : text_(text) {}

  ComposeSpec parse_document() {
    ComposeSpec spec = parse_spec();
    skip_ws();
    if (pos_ != text_.size()) syntax_fail("trailing characters after spec");
    return spec;
  }

 private:
  [[noreturn]] void syntax_fail(const std::string& what) {
    fail(what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) syntax_fail(std::string("expected '") + c + "'");
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) syntax_fail("unterminated escape");
        c = text_[pos_++];
        if (c != '"' && c != '\\') syntax_fail("unsupported escape");
      }
      out += c;
    }
    if (pos_ >= text_.size()) syntax_fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  int parse_int() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    const std::string_view digits = text_.substr(start, pos_ - start);
    if (digits.empty() || digits == "-") syntax_fail("expected an integer");
    try {
      return std::stoi(std::string(digits));
    } catch (const std::out_of_range&) {
      pos_ = start;
      syntax_fail("integer out of range");
    }
  }

  ComposeSpec parse_spec() {
    expect('{');
    ComposeSpec spec;
    bool has_family = false, has_n = false, has_param = false;
    bool has_op = false, has_w = false, has_of = false;
    std::string op;
    if (!consume('}')) {
      do {
        const std::string key = parse_string();
        expect(':');
        const auto once = [&](bool* seen) {
          if (*seen) fail("duplicate member '" + key + "'");
          *seen = true;
        };
        if (key == "family") {
          once(&has_family);
          spec.leaf.family = parse_string();
        } else if (key == "n") {
          once(&has_n);
          spec.leaf.n = parse_int();
        } else if (key == "param") {
          once(&has_param);
          spec.leaf.param = parse_int();
        } else if (key == "op") {
          once(&has_op);
          op = parse_string();
        } else if (key == "w") {
          once(&has_w);
          spec.window = parse_int();
        } else if (key == "of") {
          once(&has_of);
          expect('[');
          if (!consume(']')) {
            do {
              spec.children.push_back(parse_spec());
            } while (consume(','));
            expect(']');
          }
        } else {
          fail("unknown member '" + key + "'");
        }
      } while (consume(','));
      expect('}');
    }

    if (has_op) {
      if (has_family || has_n || has_param) {
        fail("spec mixes leaf and combinator members");
      }
      if (!has_of) fail("combinator needs an of member");
      const std::size_t arity = spec.children.size();
      if (op == "product" || op == "union") {
        if (has_w) fail("only window carries a w member");
        if (arity < 2) {
          fail(op + " needs >= 2 components (got " + std::to_string(arity) +
               ")");
        }
        spec.kind = op == "product" ? ComposeSpec::Kind::kProduct
                                    : ComposeSpec::Kind::kUnion;
      } else if (op == "window") {
        if (arity != 1) {
          fail("window needs exactly 1 component (got " +
               std::to_string(arity) + ")");
        }
        if (!has_w) fail("window needs a w member");
        spec.kind = ComposeSpec::Kind::kWindow;
      } else {
        fail("unknown combinator '" + op + "'");
      }
    } else {
      if (has_w || has_of) fail("spec mixes leaf and combinator members");
      if (!has_family || !has_n || !has_param) {
        fail("leaf needs family, n, and param members");
      }
      spec.kind = ComposeSpec::Kind::kLeaf;
    }
    return spec;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void append_json_string(std::string* out, const std::string& text) {
  *out += '"';
  for (const char c : text) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
  *out += '"';
}

void append_spec(std::string* out, const ComposeSpec& spec) {
  switch (spec.kind) {
    case ComposeSpec::Kind::kLeaf:
      *out += "{\"family\":";
      append_json_string(out, spec.leaf.family);
      *out += ",\"n\":" + std::to_string(spec.leaf.n);
      *out += ",\"param\":" + std::to_string(spec.leaf.param) + "}";
      return;
    case ComposeSpec::Kind::kProduct:
    case ComposeSpec::Kind::kUnion:
      *out += spec.kind == ComposeSpec::Kind::kProduct ? "{\"op\":\"product\""
                                                       : "{\"op\":\"union\"";
      break;
    case ComposeSpec::Kind::kWindow:
      *out += "{\"op\":\"window\",\"w\":" + std::to_string(spec.window);
      break;
  }
  *out += ",\"of\":[";
  for (std::size_t i = 0; i < spec.children.size(); ++i) {
    if (i > 0) *out += ',';
    append_spec(out, spec.children[i]);
  }
  *out += "]}";
}

/// Families whose liveness predicate is non-trivial: composing them would
/// silently change semantics (the combinators compose safety automata
/// only), so the validator rejects them. Kept in sync with the
/// is_compact() overrides of the leaf families.
bool is_noncompact_family(const std::string& family) {
  return family == "vssc" || family == "finite_loss";
}

const char* op_name(ComposeSpec::Kind kind) {
  switch (kind) {
    case ComposeSpec::Kind::kLeaf: return "leaf";
    case ComposeSpec::Kind::kProduct: return "product";
    case ComposeSpec::Kind::kUnion: return "union";
    case ComposeSpec::Kind::kWindow: return "window";
  }
  return "?";
}

}  // namespace

ComposeSpec parse_compose_spec(std::string_view text) {
  return SpecParser(text).parse_document();
}

std::string compose_spec_to_string(const ComposeSpec& spec) {
  std::string out;
  append_spec(&out, spec);
  return out;
}

int validate_compose_spec(const ComposeSpec& spec) {
  if (spec.kind == ComposeSpec::Kind::kLeaf) {
    if (is_composed_family(spec.leaf.family)) {
      fail("leaf family must be a plain family name");
    }
    validate_family_point(spec.leaf);
    if (is_noncompact_family(spec.leaf.family)) {
      fail("non-compact leaf family " + spec.leaf.family +
           " is not composable");
    }
    return spec.leaf.n;
  }
  // Arity re-checks: the parser enforces these for parsed specs, but
  // specs can also be built directly as structs.
  const std::size_t arity = spec.children.size();
  if (spec.kind == ComposeSpec::Kind::kWindow) {
    if (arity != 1) {
      fail("window needs exactly 1 component (got " + std::to_string(arity) +
           ")");
    }
    if (spec.window < 1) {
      fail("window w must be >= 1 (got " + std::to_string(spec.window) + ")");
    }
  } else if (arity < 2) {
    fail(std::string(op_name(spec.kind)) + " needs >= 2 components (got " +
         std::to_string(arity) + ")");
  }
  const int n = validate_compose_spec(spec.children.front());
  for (std::size_t i = 1; i < spec.children.size(); ++i) {
    const int m = validate_compose_spec(spec.children[i]);
    if (m != n) {
      fail("component n must be " + std::to_string(n) + " (got " +
           std::to_string(m) + ")");
    }
  }
  return n;
}

FamilyPoint composed_family_point(const ComposeSpec& spec) {
  const int n = validate_compose_spec(spec);
  return {std::string(kComposedPrefix) + compose_spec_to_string(spec), n, 0};
}

// ---- Combinator automata ------------------------------------------------

namespace {

using Parts = std::vector<std::unique_ptr<MessageAdversary>>;

int parts_processes(const Parts& parts, const char* op) {
  if (parts.empty()) {
    fail(std::string(op) + " needs >= 1 components (got 0)");
  }
  const int n = parts.front()->num_processes();
  for (const auto& part : parts) {
    if (part->num_processes() != n) {
      fail("component n must be " + std::to_string(n) + " (got " +
           std::to_string(part->num_processes()) + ")");
    }
  }
  return n;
}

bool contains_graph(const std::vector<Digraph>& graphs, const Digraph& g) {
  return std::find(graphs.begin(), graphs.end(), g) != graphs.end();
}

/// Graphs present in every component's alphabet, in the first component's
/// order. Must be nonempty before the MessageAdversary base constructor
/// runs (it asserts a nonempty alphabet).
std::vector<Digraph> common_alphabet(const Parts& parts) {
  std::vector<Digraph> common;
  for (const Digraph& g : parts.front()->alphabet()) {
    if (contains_graph(common, g)) continue;
    bool everywhere = true;
    for (std::size_t p = 1; p < parts.size() && everywhere; ++p) {
      everywhere = contains_graph(parts[p]->alphabet(), g);
    }
    if (everywhere) common.push_back(g);
  }
  if (common.empty()) fail("product alphabet is empty");
  return common;
}

/// Ordered union: the first component's alphabet, then each later
/// component's unseen graphs in its own order.
std::vector<Digraph> union_alphabet(const Parts& parts) {
  std::vector<Digraph> all;
  for (const auto& part : parts) {
    for (const Digraph& g : part->alphabet()) {
      if (!contains_graph(all, g)) all.push_back(g);
    }
  }
  return all;
}

std::string resolve_name(std::string name, const char* op,
                         const Parts& parts) {
  if (!name.empty()) return name;
  std::string joined = std::string(op) + "(";
  for (std::size_t p = 0; p < parts.size(); ++p) {
    if (p > 0) joined += " & ";
    joined += parts[p]->name();
  }
  return joined + ")";
}

/// Per-component letter translation: letter l of `alphabet` as an index
/// into each component's alphabet, -1 where absent.
std::vector<std::vector<int>> letter_maps(const std::vector<Digraph>& alphabet,
                                          const Parts& parts) {
  std::vector<std::vector<int>> maps(parts.size(),
                                     std::vector<int>(alphabet.size(), -1));
  for (std::size_t p = 0; p < parts.size(); ++p) {
    const std::vector<Digraph>& graphs = parts[p]->alphabet();
    for (std::size_t l = 0; l < alphabet.size(); ++l) {
      const auto it = std::find(graphs.begin(), graphs.end(), alphabet[l]);
      if (it != graphs.end()) {
        maps[p][l] = static_cast<int>(it - graphs.begin());
      }
    }
  }
  return maps;
}

AdvState intern_tuple(std::map<std::vector<AdvState>, AdvState>* ids,
                      std::vector<std::vector<AdvState>>* tuples,
                      std::vector<AdvState> tuple) {
  const auto [it, inserted] =
      ids->try_emplace(tuple, static_cast<AdvState>(tuples->size()));
  if (inserted) {
    if (tuples->size() >= static_cast<std::size_t>(kMaxComposedStates)) {
      fail("automaton exceeds " + std::to_string(kMaxComposedStates) +
           " states");
    }
    tuples->push_back(std::move(tuple));
  }
  return it->second;
}

}  // namespace

ProductAdversary::ProductAdversary(Parts parts, std::string name)
    : MessageAdversary(parts_processes(parts, "product"),
                       common_alphabet(parts),
                       resolve_name(std::move(name), "product", parts)),
      parts_(std::move(parts)) {
  build_table();
}

void ProductAdversary::build_table() {
  const int m = alphabet_size();
  const std::size_t k = parts_.size();
  const std::vector<std::vector<int>> part_letter =
      letter_maps(alphabet(), parts_);
  std::map<std::vector<AdvState>, AdvState> ids;
  std::vector<std::vector<AdvState>> tuples;
  std::vector<AdvState> init(k);
  for (std::size_t p = 0; p < k; ++p) init[p] = parts_[p]->initial_state();
  intern_tuple(&ids, &tuples, std::move(init));

  for (std::size_t s = 0; s < tuples.size(); ++s) {
    // Copy: intern_tuple below may reallocate `tuples`.
    const std::vector<AdvState> tuple = tuples[s];
    for (int l = 0; l < m; ++l) {
      std::vector<AdvState> next(k);
      bool rejected = false;
      for (std::size_t p = 0; p < k && !rejected; ++p) {
        const AdvState t = parts_[p]->transition(
            tuple[p], part_letter[p][static_cast<std::size_t>(l)]);
        rejected = t == kRejectState;
        next[p] = t;
      }
      table_.push_back(rejected ? kRejectState
                                : intern_tuple(&ids, &tuples, std::move(next)));
    }
  }

  // Trim to the states from which an infinite non-rejecting run exists:
  // iteratively kill states with no live successor, then redirect every
  // transition into a killed state to reject. Afterwards the automaton is
  // non-blocking and its prefixes are exactly the prefixes of the
  // intersection language.
  const std::size_t num_states = tuples.size();
  std::vector<char> dead(num_states, 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t s = 0; s < num_states; ++s) {
      if (dead[s]) continue;
      bool alive = false;
      for (int l = 0; l < m && !alive; ++l) {
        const AdvState t = table_[s * static_cast<std::size_t>(m) +
                                  static_cast<std::size_t>(l)];
        alive = t != kRejectState && !dead[static_cast<std::size_t>(t)];
      }
      if (!alive) {
        dead[s] = 1;
        changed = true;
      }
    }
  }
  if (dead[0]) fail("product is blocking (no admissible sequences)");
  for (AdvState& t : table_) {
    if (t != kRejectState && dead[static_cast<std::size_t>(t)]) {
      t = kRejectState;
    }
  }
}

AdvState ProductAdversary::transition(AdvState state, int letter) const {
  return table_[static_cast<std::size_t>(state) *
                    static_cast<std::size_t>(alphabet_size()) +
                static_cast<std::size_t>(letter)];
}

UnionAdversary::UnionAdversary(Parts parts, std::string name)
    : MessageAdversary(parts_processes(parts, "union"),
                       union_alphabet(parts),
                       resolve_name(std::move(name), "union", parts)),
      parts_(std::move(parts)) {
  build_table();
}

void UnionAdversary::build_table() {
  const int m = alphabet_size();
  const std::size_t k = parts_.size();
  const std::vector<std::vector<int>> part_letter =
      letter_maps(alphabet(), parts_);
  std::map<std::vector<AdvState>, AdvState> ids;
  std::vector<std::vector<AdvState>> tuples;
  std::vector<AdvState> init(k);
  for (std::size_t p = 0; p < k; ++p) init[p] = parts_[p]->initial_state();
  intern_tuple(&ids, &tuples, std::move(init));

  for (std::size_t s = 0; s < tuples.size(); ++s) {
    const std::vector<AdvState> tuple = tuples[s];
    for (int l = 0; l < m; ++l) {
      std::vector<AdvState> next(k);
      bool any_alive = false;
      for (std::size_t p = 0; p < k; ++p) {
        // Dead markers are monotone: a component that rejected once (or
        // never had the letter) stays dead for the rest of the word.
        const int pl = part_letter[p][static_cast<std::size_t>(l)];
        next[p] = (tuple[p] == kRejectState || pl < 0)
                      ? kRejectState
                      : parts_[p]->transition(tuple[p], pl);
        any_alive |= next[p] != kRejectState;
      }
      table_.push_back(any_alive
                           ? intern_tuple(&ids, &tuples, std::move(next))
                           : kRejectState);
    }
  }
  // Non-blocking by construction: every reachable state has an alive,
  // non-blocking component whose allowed letter keeps it alive.
}

AdvState UnionAdversary::transition(AdvState state, int letter) const {
  return table_[static_cast<std::size_t>(state) *
                    static_cast<std::size_t>(alphabet_size()) +
                static_cast<std::size_t>(letter)];
}

std::unique_ptr<MessageAdversary> make_windowed_composition(
    std::unique_ptr<MessageAdversary> inner, int window, std::string name) {
  if (window < 1) {
    fail("window w must be >= 1 (got " + std::to_string(window) + ")");
  }
  const int n = inner->num_processes();
  std::vector<Digraph> graphs = inner->alphabet();
  Parts parts;
  parts.reserve(2);
  auto windowed = std::make_unique<WindowedAdversary>(
      n, std::move(graphs), window,
      "window(" + std::to_string(window) + " over " + inner->name() + ")");
  parts.push_back(std::move(inner));
  parts.push_back(std::move(windowed));
  // The windowed component's alphabet is the inner alphabet, so the
  // common alphabet (and letter numbering) is exactly the inner one.
  return std::make_unique<ProductAdversary>(std::move(parts),
                                            std::move(name));
}

namespace {

std::unique_ptr<MessageAdversary> build_composed(const ComposeSpec& spec) {
  switch (spec.kind) {
    case ComposeSpec::Kind::kLeaf:
      return make_family_adversary(spec.leaf);
    case ComposeSpec::Kind::kWindow:
      return make_windowed_composition(build_composed(spec.children.front()),
                                       spec.window,
                                       compose_spec_to_string(spec));
    case ComposeSpec::Kind::kProduct:
    case ComposeSpec::Kind::kUnion: {
      Parts parts;
      parts.reserve(spec.children.size());
      for (const ComposeSpec& child : spec.children) {
        parts.push_back(build_composed(child));
      }
      if (spec.kind == ComposeSpec::Kind::kProduct) {
        return std::make_unique<ProductAdversary>(
            std::move(parts), compose_spec_to_string(spec));
      }
      return std::make_unique<UnionAdversary>(std::move(parts),
                                              compose_spec_to_string(spec));
    }
  }
  throw std::logic_error("make_composed_adversary: unhandled spec kind");
}

}  // namespace

std::unique_ptr<MessageAdversary> make_composed_adversary(
    const ComposeSpec& spec) {
  validate_compose_spec(spec);
  return build_composed(spec);
}

}  // namespace topocon
