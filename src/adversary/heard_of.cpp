#include "adversary/heard_of.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "graph/enumerate.hpp"

namespace topocon {

namespace {

/// All graphs in which every receiver misses at most one sender: per-node
/// in-degree >= n - 1 with the mandatory self-loop counted. n^n graphs.
std::vector<Digraph> near_uniform_graphs(int n) {
  std::vector<Digraph> chosen;
  for (const Digraph& g : all_graphs(n)) {
    bool ok = true;
    for (int q = 0; q < n; ++q) {
      if (std::popcount(g.in_mask(q)) < n - 1) {
        ok = false;
        break;
      }
    }
    if (ok) chosen.push_back(g);
  }
  return chosen;
}

}  // namespace

HeardOfRoundsAdversary::HeardOfRoundsAdversary(int n, int period)
    : MessageAdversary(n, near_uniform_graphs(n),
                       "heard-of-rounds(n=" + std::to_string(n) +
                           ",p=" + std::to_string(period) + ")"),
      period_(period) {
  assert(n >= 2 && n <= 4);
  assert(period >= 1);
  const Digraph complete = Digraph::complete(n);
  const auto it = std::find(alphabet().begin(), alphabet().end(), complete);
  assert(it != alphabet().end());
  uniform_letter_ = static_cast<int>(it - alphabet().begin());
}

AdvState HeardOfRoundsAdversary::transition(AdvState state,
                                            int letter) const {
  if (letter == uniform_letter_) return 0;
  return state + 1 >= period_ ? kRejectState : state + 1;
}

bool HeardOfRoundsAdversary::admits_lasso(
    const std::vector<int>& stem, const std::vector<int>& cycle) const {
  // The counter grows by |cycle| per unrolling unless the cycle resets it,
  // so a uniform-round-free cycle eventually rejects regardless of the
  // stem; with a uniform round in the cycle, the post-cycle state is
  // periodic after one pass and the base two-unrolling check is exact.
  if (std::find(cycle.begin(), cycle.end(), uniform_letter_) == cycle.end()) {
    return false;
  }
  return MessageAdversary::admits_lasso(stem, cycle);
}

std::unique_ptr<HeardOfRoundsAdversary> make_heard_of_rounds_adversary(
    int n, int period) {
  return std::make_unique<HeardOfRoundsAdversary>(n, period);
}

std::unique_ptr<ObliviousAdversary> make_heard_of_adversary(int n,
                                                            int min_heard) {
  assert(min_heard >= 1 && min_heard <= n);
  std::vector<Digraph> chosen;
  for (const Digraph& g : all_graphs(n)) {
    bool ok = true;
    for (int q = 0; q < n; ++q) {
      if (std::popcount(g.in_mask(q)) < min_heard) {
        ok = false;
        break;
      }
    }
    if (ok) chosen.push_back(g);
  }
  return std::make_unique<ObliviousAdversary>(
      n, std::move(chosen),
      "heard-of(n=" + std::to_string(n) +
          ",k=" + std::to_string(min_heard) + ")");
}

}  // namespace topocon
