#include "adversary/heard_of.hpp"

#include <bit>
#include <cassert>

#include "graph/enumerate.hpp"

namespace topocon {

std::unique_ptr<ObliviousAdversary> make_heard_of_adversary(int n,
                                                            int min_heard) {
  assert(min_heard >= 1 && min_heard <= n);
  std::vector<Digraph> chosen;
  for (const Digraph& g : all_graphs(n)) {
    bool ok = true;
    for (int q = 0; q < n; ++q) {
      if (std::popcount(g.in_mask(q)) < min_heard) {
        ok = false;
        break;
      }
    }
    if (ok) chosen.push_back(g);
  }
  return std::make_unique<ObliviousAdversary>(
      n, std::move(chosen),
      "heard-of(n=" + std::to_string(n) +
          ",k=" + std::to_string(min_heard) + ")");
}

}  // namespace topocon
