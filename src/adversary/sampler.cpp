#include "adversary/sampler.hpp"

#include <cassert>

namespace topocon {

std::vector<Digraph> letters_to_graphs(const MessageAdversary& adversary,
                                       const std::vector<int>& letters) {
  std::vector<Digraph> graphs;
  graphs.reserve(letters.size());
  for (const int letter : letters) {
    graphs.push_back(adversary.graph(letter));
  }
  return graphs;
}

RunPrefix sample_prefix(const MessageAdversary& adversary,
                        const InputVector& inputs, int length,
                        std::mt19937_64& rng) {
  assert(static_cast<int>(inputs.size()) == adversary.num_processes());
  RunPrefix prefix;
  prefix.inputs = inputs;
  prefix.graphs = letters_to_graphs(adversary, adversary.sample(rng, length));
  return prefix;
}

InputVector sample_inputs(int n, int num_values, std::mt19937_64& rng) {
  std::uniform_int_distribution<Value> pick(0, num_values - 1);
  InputVector inputs(static_cast<std::size_t>(n));
  for (Value& x : inputs) {
    x = pick(rng);
  }
  return inputs;
}

std::vector<std::vector<int>> enumerate_letter_sequences(
    const MessageAdversary& adversary, int length) {
  std::vector<std::vector<int>> result;
  std::vector<int> current;
  // Depth-first enumeration following the safety automaton.
  auto visit = [&](auto&& self, AdvState state) -> void {
    if (static_cast<int>(current.size()) == length) {
      result.push_back(current);
      return;
    }
    for (int letter = 0; letter < adversary.alphabet_size(); ++letter) {
      const AdvState next = adversary.transition(state, letter);
      if (next == kRejectState) continue;
      current.push_back(letter);
      self(self, next);
      current.pop_back();
    }
  };
  visit(visit, adversary.initial_state());
  return result;
}

}  // namespace topocon
