// Algebraic combinators over message adversaries, plus the canonical
// spec codec that threads composed adversaries through the FamilyPoint
// machinery (grids, queries, checkpoints, CSV) unchanged.
//
// Semantics (sets of admissible infinite graph sequences):
//
//   product   intersection. The safety automaton is the synchronous
//             product over the COMMON alphabet (graphs present in every
//             component's alphabet, in the first component's order),
//             trimmed to the states from which an infinite non-rejecting
//             run exists -- the library's non-blocking invariant
//             (adversary.hpp) demands exactly that trim, and it is what
//             makes the depth-t prefix space the true prefix set of the
//             intersection rather than of the pairwise prefix overlap.
//   union     set union. The automaton runs every component in parallel
//             over the UNION alphabet and marks components dead once
//             they reject (letter absent from their alphabet or safety
//             violated); the word is rejected only when every component
//             is dead. Dead markers are monotone, so an infinite
//             non-rejected run keeps some component alive forever:
//             the accepted language is exactly the union. Non-blocking
//             components make the union non-blocking with no trim.
//   window    repetition constraint: window(w, A) is the product of A
//             with a WindowedAdversary over A's alphabet (windowed.hpp)
//             -- the "keep each graph >= w rounds" combinator, reusing
//             the existing windowed safety automaton as a component.
//
// Only COMPACT (limit-closed) components are composable: intersections
// and unions of closed sets are closed, so every composed adversary is
// again compact and the default liveness/sampling hooks stay exact. The
// non-compact families (vssc, finite_loss) are rejected by the spec
// validator.
//
// Spec codec. A composed FamilyPoint encodes the whole combinator tree
// in its family string: `family = "composed:" + canonical JSON`,
// param = 0, n = the components' common process count. The canonical
// JSON is compact (no whitespace, fixed member order):
//
//   leaf     {"family":"omission","n":3,"param":1}
//   product  {"op":"product","of":[SPEC,SPEC,...]}     (>= 2 components)
//   union    {"op":"union","of":[SPEC,SPEC,...]}       (>= 2 components)
//   window   {"op":"window","w":2,"of":[SPEC]}         (exactly 1)
//
// parse_compose_spec accepts insignificant whitespace and members in any
// order but nothing beyond the canonical set;
// compose_spec_to_string(parse_compose_spec(s)) is the canonical form.
// The codec is hand-rolled here because the adversary layer sits below
// the runtime layer that owns the sweep JSON reader (src/CMakeLists.txt
// layering).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "adversary/adversary.hpp"
#include "adversary/family.hpp"

namespace topocon {

/// One node of a composed-adversary spec tree.
struct ComposeSpec {
  enum class Kind { kLeaf, kProduct, kUnion, kWindow };
  Kind kind = Kind::kLeaf;
  /// The grid point of a kLeaf node (must be a compact family).
  FamilyPoint leaf;
  /// The repetition window of a kWindow node (>= 1).
  int window = 0;
  /// Component subtrees of a combinator node.
  std::vector<ComposeSpec> children;
};

/// The family-string prefix marking a composed point.
inline constexpr std::string_view kComposedPrefix = "composed:";

/// True iff the family string encodes a composed spec.
bool is_composed_family(std::string_view family);

/// The spec JSON of a composed family string (the part after the
/// "composed:" prefix). Precondition: is_composed_family(family).
std::string_view composed_spec_of(std::string_view family);

/// Parses a spec document. Throws std::invalid_argument with a message
/// starting "composed: " on malformed JSON, unknown members, unknown
/// combinators, or arity violations. Leaf grid points are NOT validated
/// here (see validate_compose_spec).
ComposeSpec parse_compose_spec(std::string_view text);

/// Canonical compact serialization (the label of a composed point).
std::string compose_spec_to_string(const ComposeSpec& spec);

/// Structural validation beyond the grammar: every leaf is a valid,
/// compact family point and every node's components agree on the process
/// count. Returns that common count. Throws std::invalid_argument (leaf
/// errors carry the family layer's exact message).
int validate_compose_spec(const ComposeSpec& spec);

/// The FamilyPoint encoding of a spec ("composed:" + canonical JSON).
FamilyPoint composed_family_point(const ComposeSpec& spec);

/// Builds the composed adversary (validate_compose_spec first). May
/// additionally throw for degenerate compositions: an empty product
/// alphabet, a blocking (empty-language) product, or an automaton
/// exceeding the composed-state cap.
std::unique_ptr<MessageAdversary> make_composed_adversary(
    const ComposeSpec& spec);

/// Intersection of the component adversaries (see the header comment).
/// Requires >= 1 components with equal process counts; throws
/// std::invalid_argument when the common alphabet is empty, when the
/// trimmed automaton rejects everything, or when the product automaton
/// exceeds kMaxComposedStates.
class ProductAdversary : public MessageAdversary {
 public:
  explicit ProductAdversary(
      std::vector<std::unique_ptr<MessageAdversary>> parts,
      std::string name = {});

  AdvState transition(AdvState state, int letter) const override;

 private:
  void build_table();

  std::vector<std::unique_ptr<MessageAdversary>> parts_;
  /// Flat trimmed transition table: table_[state * alphabet + letter].
  std::vector<AdvState> table_;
};

/// Union of the component adversaries (see the header comment).
/// Requires >= 1 components with equal process counts; throws
/// std::invalid_argument when the automaton exceeds kMaxComposedStates.
class UnionAdversary : public MessageAdversary {
 public:
  explicit UnionAdversary(
      std::vector<std::unique_ptr<MessageAdversary>> parts,
      std::string name = {});

  AdvState transition(AdvState state, int letter) const override;

 private:
  void build_table();

  std::vector<std::unique_ptr<MessageAdversary>> parts_;
  /// Flat transition table: table_[state * alphabet + letter].
  std::vector<AdvState> table_;
};

/// window(w, inner): the product of `inner` with a WindowedAdversary
/// over inner's alphabet -- forces every played graph to repeat for at
/// least `window` consecutive rounds.
std::unique_ptr<MessageAdversary> make_windowed_composition(
    std::unique_ptr<MessageAdversary> inner, int window,
    std::string name = {});

/// Cap on the eagerly-built composed automaton (product/union tuple
/// states); compositions beyond it are rejected as operator error.
inline constexpr int kMaxComposedStates = 100'000;

}  // namespace topocon
