#include "adversary/adversary.hpp"

#include <cassert>

namespace topocon {

MessageAdversary::MessageAdversary(int n, std::vector<Digraph> alphabet,
                                   std::string name)
    : n_(n), alphabet_(std::move(alphabet)), name_(std::move(name)) {
  assert(!alphabet_.empty());
  for (const Digraph& g : alphabet_) {
    assert(g.num_processes() == n_);
    (void)g;
  }
}

bool MessageAdversary::admits_lasso(const std::vector<int>& stem,
                                    const std::vector<int>& cycle) const {
  if (cycle.empty()) return false;
  AdvState s = initial_state();
  for (const int letter : stem) {
    s = transition(s, letter);
    if (s == kRejectState) return false;
  }
  // The safety automata in this library have finitely many states, so if
  // the cycle survives |stem| + enough unrollings it survives forever; all
  // concrete families here have monotone or memoryless safety, for which
  // two unrollings suffice (covered by tests).
  for (int round = 0; round < 2; ++round) {
    for (const int letter : cycle) {
      s = transition(s, letter);
      if (s == kRejectState) return false;
    }
  }
  return true;
}

std::vector<int> MessageAdversary::sample(std::mt19937_64& rng,
                                          int horizon) const {
  std::vector<int> letters;
  letters.reserve(static_cast<std::size_t>(horizon));
  AdvState s = initial_state();
  std::uniform_int_distribution<int> pick(0, alphabet_size() - 1);
  for (int t = 0; t < horizon; ++t) {
    // Rejection-sample an allowed letter; adversaries are non-blocking.
    int letter = pick(rng);
    AdvState next = transition(s, letter);
    [[maybe_unused]] int attempts = 0;
    while (next == kRejectState) {
      letter = (letter + 1) % alphabet_size();
      next = transition(s, letter);
      assert(++attempts <= alphabet_size() && "blocking adversary state");
    }
    letters.push_back(letter);
    s = next;
  }
  return letters;
}

bool MessageAdversary::safety_rejects(const std::vector<int>& letters) const {
  AdvState s = initial_state();
  for (const int letter : letters) {
    s = transition(s, letter);
    if (s == kRejectState) return true;
  }
  return false;
}

}  // namespace topocon
