#include "adversary/oblivious.hpp"

namespace topocon {

ObliviousAdversary::ObliviousAdversary(int n, std::vector<Digraph> graphs,
                                       std::string name)
    : MessageAdversary(n, std::move(graphs), std::move(name)) {}

AdvState ObliviousAdversary::transition(AdvState state, int letter) const {
  (void)letter;
  return state;  // single non-rejecting state; every letter always allowed
}

}  // namespace topocon
