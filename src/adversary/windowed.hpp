// Windowed (repetition-constrained) message adversaries: a *non-oblivious
// but compact* family. The adversary picks graphs from a base set but must
// keep each chosen graph for at least `window` consecutive rounds before
// switching.
//
// This family serves two purposes in the library:
//
//  1. It exercises the general safety-automaton machinery (every other
//     compact family here is oblivious, i.e., single-state): the automaton
//     tracks (last letter, age) and rejects premature switches. The set of
//     admissible sequences is limit-closed, hence compact, but depends on
//     history -- exactly the "set of possible graphs may change over time"
//     setting of the paper's Section 1.
//  2. It yields a sharp ablation discovered by the checker itself: the
//     lossy link {<-, ->, <->} is *impossible* for window = 1 (oblivious,
//     Santoro-Widmayer) but becomes *solvable* for window >= 2, with
//     decisions at round 2. Intuition: the bivalence chain needs to
//     perturb single rounds, and the repetition constraint breaks all
//     single-round perturbations; after two equal rounds each process has
//     relayed enough of its first-round view to disambiguate. This is the
//     compact cousin of the paper's Section 6.3 message: stability
//     (here: forced repetition; there: a stable root window) is what
//     rescues consensus. Reproduced in bench_windowed and tests.
#pragma once

#include <memory>
#include <vector>

#include "adversary/adversary.hpp"

namespace topocon {

class WindowedAdversary : public MessageAdversary {
 public:
  /// Base graphs + minimal repetition count (window >= 1; window = 1 is
  /// exactly the oblivious adversary over the base set).
  WindowedAdversary(int n, std::vector<Digraph> graphs, int window,
                    std::string name = {});

  AdvState initial_state() const override { return 0; }
  AdvState transition(AdvState state, int letter) const override;

  /// Samples admissible sequences: i.i.d. letters stretched to random run
  /// lengths >= window.
  std::vector<int> sample(std::mt19937_64& rng, int horizon) const override;

  int window() const { return window_; }

 private:
  // State encoding: 0 = initial (nothing played yet);
  // 1 + letter * window + (age - 1) with age in [1, window] capped.
  int window_;
};

/// The windowed lossy link over the full set {<-, ->, <->}.
std::unique_ptr<WindowedAdversary> make_windowed_lossy_link(int window);

}  // namespace topocon
