#include "adversary/lossy_link.hpp"

#include <cassert>

#include "graph/enumerate.hpp"

namespace topocon {

std::unique_ptr<ObliviousAdversary> make_lossy_link(unsigned subset_mask) {
  assert(subset_mask != 0 && subset_mask < 8);
  const std::vector<Digraph> all = lossy_link_graphs();
  std::vector<Digraph> chosen;
  for (int i = 0; i < 3; ++i) {
    if ((subset_mask >> i) & 1u) chosen.push_back(all[static_cast<std::size_t>(i)]);
  }
  return std::make_unique<ObliviousAdversary>(
      2, std::move(chosen), "lossy-link" + lossy_link_subset_name(subset_mask));
}

std::string lossy_link_subset_name(unsigned subset_mask) {
  std::string name = "{";
  bool first = true;
  for (int i = 0; i < 3; ++i) {
    if ((subset_mask >> i) & 1u) {
      if (!first) name += ", ";
      name += lossy_link_name(i);
      first = false;
    }
  }
  name += "}";
  return name;
}

}  // namespace topocon
