#include "adversary/vssc.hpp"

#include <cassert>
#include <map>

#include "graph/enumerate.hpp"
#include "graph/scc.hpp"

namespace topocon {

VsscAdversary::VsscAdversary(int n, int stability)
    : VsscAdversary(n, stability, rooted_graphs(n)) {}

VsscAdversary::VsscAdversary(int n, int stability,
                             std::vector<Digraph> alphabet)
    : MessageAdversary(n, std::move(alphabet),
                       "vssc(n=" + std::to_string(n) +
                           ",k=" + std::to_string(stability) + ")"),
      stability_(stability) {
  assert(stability >= 1);
  roots_.reserve(static_cast<std::size_t>(alphabet_size()));
  std::map<NodeMask, std::vector<int>> grouped;
  for (int letter = 0; letter < alphabet_size(); ++letter) {
    assert(is_rooted(graph(letter)));
    const NodeMask root = root_members(graph(letter));
    roots_.push_back(root);
    grouped[root].push_back(letter);
  }
  assert(grouped.size() >= 3 && "sampler needs >= 3 distinct root sets");
  by_root_.reserve(grouped.size());
  for (auto& [root, letters] : grouped) {
    (void)root;
    by_root_.push_back(std::move(letters));
  }
}

AdvState VsscAdversary::transition(AdvState state, int letter) const {
  (void)letter;
  return state;  // every rooted graph is always allowed (safety closure)
}

bool VsscAdversary::has_stable_window(const std::vector<int>& letters) const {
  int run_length = 0;
  NodeMask current = 0;
  for (const int letter : letters) {
    const NodeMask root = root_of(letter);
    if (run_length > 0 && root == current) {
      ++run_length;
    } else {
      current = root;
      run_length = 1;
    }
    if (run_length >= stability_) return true;
  }
  return false;
}

bool VsscAdversary::admits_lasso(const std::vector<int>& stem,
                                 const std::vector<int>& cycle) const {
  if (cycle.empty()) return false;
  // A stable window in stem . cycle^w, if any, occurs within the first
  // |stem| + 2|cycle| + stability letters (it either lies in the stem, or
  // intersects the periodic part and then repeats within two periods plus
  // the window length).
  std::vector<int> unrolled = stem;
  const std::size_t needed = stem.size() + 2 * cycle.size() +
                             static_cast<std::size_t>(stability_);
  while (unrolled.size() < needed) {
    unrolled.insert(unrolled.end(), cycle.begin(), cycle.end());
  }
  return has_stable_window(unrolled);
}

std::vector<int> VsscAdversary::sample(std::mt19937_64& rng,
                                       int horizon) const {
  // Samples the "isolated stability" regime of [23] that the library's
  // VsscConsensus algorithm is built for: exactly one vertex-stable window
  // of length `stability_`, and *consecutive roots differ* everywhere
  // outside it, so no competing stable run of length >= 2 exists.
  std::vector<int> letters(static_cast<std::size_t>(horizon), 0);
  if (horizon <= 0) return letters;

  std::uniform_int_distribution<std::size_t> pick_group(0,
                                                        by_root_.size() - 1);
  auto pick_from = [&](const std::vector<int>& group) {
    std::uniform_int_distribution<std::size_t> dist(0, group.size() - 1);
    return group[dist(rng)];
  };

  int start = 0;
  std::size_t window_group = pick_group(rng);
  if (horizon >= stability_) {
    std::uniform_int_distribution<int> start_dist(0, horizon - stability_);
    start = start_dist(rng);
  } else {
    start = horizon;  // no room: degenerate sample (callers use horizons
                      // >= stability for admissible runs)
  }
  const int end = std::min(horizon, start + stability_);
  const NodeMask window_root =
      roots_[static_cast<std::size_t>(by_root_[window_group].front())];

  NodeMask previous_root = 0;
  for (int t = 0; t < horizon; ++t) {
    if (t >= start && t < end) {
      letters[static_cast<std::size_t>(t)] = pick_from(by_root_[window_group]);
      previous_root = window_root;
      continue;
    }
    // Outside the window: any group whose root differs from the previous
    // round's root and from the window root at its boundaries.
    const NodeMask forbid_boundary =
        (t + 1 == start || t == end) ? window_root : 0;
    std::size_t group;
    NodeMask root;
    do {
      group = pick_group(rng);
      root = roots_[static_cast<std::size_t>(by_root_[group].front())];
    } while (root == previous_root || root == forbid_boundary);
    letters[static_cast<std::size_t>(t)] = pick_from(by_root_[group]);
    previous_root = root;
  }
  return letters;
}

}  // namespace topocon
