#include "adversary/mobile_failure.hpp"

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>

namespace topocon {

namespace {

/// The clean round first (letter 0), then for each sender p in process
/// order every nonempty dropped subset of its outgoing non-self edges in
/// subset order -- a deterministic letter numbering, like every other
/// family's alphabet.
std::pair<std::vector<Digraph>, std::vector<int>> build_alphabet(int n) {
  std::vector<Digraph> graphs;
  std::vector<int> faults;
  graphs.push_back(Digraph::complete(n));
  faults.push_back(-1);
  for (ProcessId p = 0; p < n; ++p) {
    // `drop` enumerates subsets of the n - 1 other processes, mapped to
    // actual receiver ids by skipping p itself.
    for (unsigned drop = 1; drop < (1u << (n - 1)); ++drop) {
      Digraph g = Digraph::complete(n);
      int bit = 0;
      for (ProcessId q = 0; q < n; ++q) {
        if (q == p) continue;
        if ((drop >> bit) & 1u) g.remove_edge(p, q);
        ++bit;
      }
      graphs.push_back(std::move(g));
      faults.push_back(p);
    }
  }
  return {std::move(graphs), std::move(faults)};
}

}  // namespace

MobileFailureAdversary::MobileFailureAdversary(int n, int persistence)
    : MessageAdversary(n, build_alphabet(n).first,
                       "mobile-failure(n=" + std::to_string(n) +
                           ",r=" + std::to_string(persistence) + ")"),
      persistence_(persistence),
      fault_of_(build_alphabet(n).second) {
  assert(n >= 2 && n <= 6);
  assert(persistence >= 1);
  // The state encoding 1 + p * persistence + (len - 1) must fit AdvState
  // for every p < n; family_param_range caps the parameter accordingly.
  assert(static_cast<long long>(n) * persistence < INT32_MAX);
}

AdvState MobileFailureAdversary::transition(AdvState state,
                                            int letter) const {
  const int sender = fault_of(letter);
  if (sender < 0) return 0;  // clean round resets every streak
  if (state != 0) {
    const AdvState streak_of = (state - 1) / persistence_;
    const AdvState len = (state - 1) % persistence_ + 1;
    if (streak_of == sender) {
      if (len >= persistence_) return kRejectState;
      return state + 1;  // same sender: (p, len) -> (p, len + 1)
    }
  }
  return 1 + sender * persistence_;  // new streak (sender, 1)
}

AdvState MobileFailureAdversary::state_bound() const {
  // 0 plus (sender, len) for len in [1, persistence]; the constructor
  // asserted this fits.
  return 1 + num_processes() * persistence_;
}

bool MobileFailureAdversary::admits_lasso(
    const std::vector<int>& stem, const std::vector<int>& cycle) const {
  if (cycle.empty()) return false;
  // A cycle whose every letter faults the SAME process grows that streak
  // by |cycle| per unrolling, so it rejects eventually regardless of the
  // stem. Any other cycle contains a "break" letter (clean, or a second
  // sender) after which the state no longer depends on the entry state,
  // making the post-cycle state constant from the first pass on -- the
  // base two-unrolling check is then exact.
  const int first = fault_of(cycle.front());
  bool single_sender = first >= 0;
  for (const int letter : cycle) {
    if (fault_of(letter) != first) {
      single_sender = false;
      break;
    }
  }
  if (single_sender) return false;
  return MessageAdversary::admits_lasso(stem, cycle);
}

std::unique_ptr<MobileFailureAdversary> make_mobile_failure_adversary(
    int n, int persistence) {
  return std::make_unique<MobileFailureAdversary>(n, persistence);
}

}  // namespace topocon
