#include "adversary/finite_loss.hpp"

#include <cassert>

#include "graph/enumerate.hpp"

namespace topocon {

FiniteLossAdversary::FiniteLossAdversary(int n)
    : FiniteLossAdversary(n, all_graphs(n)) {}

FiniteLossAdversary::FiniteLossAdversary(int n, std::vector<Digraph> alphabet)
    : MessageAdversary(n, std::move(alphabet),
                       "finite-loss(n=" + std::to_string(n) + ")"),
      complete_letter_(-1) {
  const Digraph complete = Digraph::complete(n);
  for (int letter = 0; letter < alphabet_size(); ++letter) {
    if (graph(letter) == complete) {
      complete_letter_ = letter;
      break;
    }
  }
  assert(complete_letter_ >= 0 && "alphabet must contain the complete graph");
}

AdvState FiniteLossAdversary::transition(AdvState state, int letter) const {
  (void)letter;
  return state;  // safety closure is the full oblivious adversary
}

bool FiniteLossAdversary::admits_lasso(const std::vector<int>& stem,
                                       const std::vector<int>& cycle) const {
  (void)stem;
  if (cycle.empty()) return false;
  for (const int letter : cycle) {
    if (letter != complete_letter_) return false;
  }
  return true;
}

std::vector<int> FiniteLossAdversary::sample(std::mt19937_64& rng,
                                             int horizon) const {
  std::vector<int> letters(static_cast<std::size_t>(horizon),
                           complete_letter_);
  if (horizon <= 1) return letters;
  // Lossy phase of random length in [0, horizon/2]; arbitrary graphs there.
  std::uniform_int_distribution<int> phase(0, horizon / 2);
  std::uniform_int_distribution<int> pick(0, alphabet_size() - 1);
  const int lossy_rounds = phase(rng);
  for (int t = 0; t < lossy_rounds; ++t) {
    letters[static_cast<std::size_t>(t)] = pick(rng);
  }
  return letters;
}

}  // namespace topocon
