// Oblivious message adversaries (paper, Sections 1 and 6.2; [6, 8, 21]):
// the admissible sequences are all combinations D^w of a fixed set D of
// communication graphs. Oblivious adversaries are compact.
#pragma once

#include <string>
#include <vector>

#include "adversary/adversary.hpp"

namespace topocon {

class ObliviousAdversary : public MessageAdversary {
 public:
  ObliviousAdversary(int n, std::vector<Digraph> graphs, std::string name);

  AdvState transition(AdvState state, int letter) const override;
  /// The safety automaton has the single state 0.
  AdvState state_bound() const override { return 1; }
};

}  // namespace topocon
