// Eventually-stabilizing "vertex-stable source component" adversaries
// (paper, Sections 1, 6.1, 6.3; Biely et al. [6], Winkler et al. [23]).
//
// Every round's graph is *rooted* (has a unique root component). A sequence
// is admissible iff somewhere it contains a window of `stability` many
// consecutive rounds whose root components have the *same member set* (the
// vertex-stable source component, VSSC).
//
// Properties reproduced by the library:
//  * Non-compact: prefixes that keep alternating roots converge to sequences
//    without any stable window.
//  * Short windows (stability too small for the root to broadcast and for
//    everyone to detect it) leave consensus unsolvable [6, 23]; the fair /
//    unfair limit sequences of Definition 5.16 are exactly the runs where a
//    sufficiently stable window never happens.
//  * Long windows make every component broadcastable: during a window of
//    length >= 2n-1 every root member's input reaches every process and the
//    window becomes locally verifiable; runtime/vssc_algo.* decides then.
#pragma once

#include <memory>
#include <vector>

#include "adversary/adversary.hpp"

namespace topocon {

class VsscAdversary : public MessageAdversary {
 public:
  /// n <= 4; stability >= 1.
  VsscAdversary(int n, int stability);

  /// Large-n constructor with an explicit alphabet of *rooted* graphs
  /// (asserted); simulation-side use scales to kMaxProcesses.
  VsscAdversary(int n, int stability, std::vector<Digraph> alphabet);

  AdvState transition(AdvState state, int letter) const override;
  bool is_compact() const override { return false; }

  bool admits_lasso(const std::vector<int>& stem,
                    const std::vector<int>& cycle) const override;

  /// Samples rooted graphs with one stable window of length `stability()`
  /// inserted at a random position within the horizon.
  std::vector<int> sample(std::mt19937_64& rng, int horizon) const override;

  int stability() const { return stability_; }

  /// Root-component member set of the given letter's graph.
  NodeMask root_of(int letter) const {
    return roots_[static_cast<std::size_t>(letter)];
  }

  /// True iff letters[a .. a+stability-1] is a vertex-stable window for
  /// some a (used by tests and the admissibility predicate).
  bool has_stable_window(const std::vector<int>& letters) const;

 private:
  int stability_;
  std::vector<NodeMask> roots_;              // per letter
  std::vector<std::vector<int>> by_root_;    // letters grouped by root set
};

}  // namespace topocon
