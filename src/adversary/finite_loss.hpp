// The finite-loss adversary: every admissible sequence contains only
// finitely many rounds that are not the complete graph ("eventually forever
// reliable"). This is the library's flagship *non-compact, solvable* message
// adversary for Section 6.3 of the paper:
//
//  * Non-compact: the sequences with at most one lossy round, say, converge
//    (letter-wise) to sequences with infinitely many losses, which are not
//    admissible. The closure is the oblivious adversary over the same
//    alphabet, under which consensus is impossible for any alphabet that
//    permits silencing a process forever.
//  * Solvable: every admissible sequence is eventually complete forever, so
//    every process broadcasts in every admissible run -- all connected
//    components of PS are broadcastable and Theorem 6.7 applies. A direct
//    witness algorithm (runtime/ack_consensus.*) decides once it can verify
//    from its view that everyone knows process 0's input.
//  * The epsilon-approximation of Section 6.2 *fails* on it, exactly as the
//    paper states for non-compact adversaries: at every finite depth t the
//    all-lossy prefix keeps the valence regions chain-connected, so no
//    finite depth certifies solvability (demonstrated in bench E7).
//
// The alphabet is every graph on [n]; losses per round are unbounded, only
// their total duration is finite.
#pragma once

#include <memory>

#include "adversary/adversary.hpp"

namespace topocon {

class FiniteLossAdversary : public MessageAdversary {
 public:
  /// n <= 4 (the alphabet enumerates all graphs on [n]).
  explicit FiniteLossAdversary(int n);

  /// Large-n constructor with an explicit alphabet (must contain the
  /// complete graph); the prefix analysis no longer enumerates all graphs,
  /// but simulation-side use (AckConsensus validation, sampling) scales to
  /// kMaxProcesses.
  FiniteLossAdversary(int n, std::vector<Digraph> alphabet);

  AdvState transition(AdvState state, int letter) const override;
  bool is_compact() const override { return false; }

  /// Lasso admissible iff the cycle consists of complete graphs only.
  bool admits_lasso(const std::vector<int>& stem,
                    const std::vector<int>& cycle) const override;

  /// Samples: random graphs until a geometric stopping time within the
  /// horizon, complete graphs afterwards.
  std::vector<int> sample(std::mt19937_64& rng, int horizon) const override;

  /// Letter index of the complete graph.
  int complete_letter() const { return complete_letter_; }

 private:
  int complete_letter_;
};

}  // namespace topocon
