// Message adversaries (paper, Sections 1-2): a message adversary is a set of
// infinite sequences of communication graphs; sequences in the set are
// *admissible*.
//
// Representation. Every adversary in this library is given by
//   (1) a finite *alphabet* of communication graphs,
//   (2) a *safety automaton*: a deterministic finite-state acceptor over the
//       alphabet whose non-rejecting infinite runs form the topological
//       closure of the adversary (the prefix-extension structure), and
//   (3) an optional *liveness* predicate on ultimately periodic sequences,
//       used for the non-compact adversaries of Section 6.3.
//
// An adversary is *compact* (limit-closed, Section 6.2) iff the liveness
// predicate is trivial: then the admissible set is exactly the set of
// infinite words along non-rejecting automaton paths, which is closed in the
// product topology. Oblivious adversaries (one state, constant alphabet) are
// the canonical compact examples. The finite-loss and VSSC adversaries
// override the liveness hooks and report is_compact() == false.
//
// Every adversary here is *non-blocking*: each reachable state has at least
// one allowed letter, so every admissible prefix extends to an admissible
// prefix of any length (and, for the families implemented here, to an
// admissible infinite sequence — they are machine-closed). The solvability
// checker in core/ relies on this: the depth-t prefix space it analyzes is
// exactly the set of length-t prefixes of admissible sequences of the
// adversary's closure.
#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace topocon {

/// State of the safety automaton. State 0 is initial.
using AdvState = std::int32_t;

/// Returned by transition() for disallowed letters.
inline constexpr AdvState kRejectState = -1;

/// Abstract message adversary. Thread-compatible; concrete subclasses are
/// immutable after construction.
class MessageAdversary {
 public:
  MessageAdversary(int n, std::vector<Digraph> alphabet, std::string name);
  virtual ~MessageAdversary() = default;

  MessageAdversary(const MessageAdversary&) = delete;
  MessageAdversary& operator=(const MessageAdversary&) = delete;

  int num_processes() const { return n_; }

  /// The graphs the adversary may play, indexed by "letter".
  const std::vector<Digraph>& alphabet() const { return alphabet_; }
  int alphabet_size() const { return static_cast<int>(alphabet_.size()); }
  const Digraph& graph(int letter) const {
    return alphabet_[static_cast<std::size_t>(letter)];
  }

  const std::string& name() const { return name_; }

  /// Initial safety-automaton state.
  virtual AdvState initial_state() const { return 0; }

  /// Successor state, or kRejectState if `letter` is not allowed in s.
  virtual AdvState transition(AdvState state, int letter) const = 0;

  /// Exclusive upper bound on every non-reject state value reachable from
  /// initial_state(), or 0 when no finite bound is known. Purely an
  /// encoding hint: the frontier engine packs adversary states into
  /// ceil(log2(bound)) bits of its dedup keys (32 when unknown), so a
  /// WRONG bound (a reachable state >= the bound) corrupts state
  /// deduplication. Override only when the bound is structural -- e.g.
  /// oblivious adversaries have the single state 0, periodic automata
  /// their period.
  virtual AdvState state_bound() const { return 0; }

  /// True iff the adversary is limit-closed (trivial liveness).
  virtual bool is_compact() const { return true; }

  /// Liveness check for the ultimately periodic sequence stem . cycle^w.
  /// The default accepts every safety-consistent lasso (compact adversaries).
  virtual bool admits_lasso(const std::vector<int>& stem,
                            const std::vector<int>& cycle) const;

  /// Samples `horizon` letters of an admissible sequence; for non-compact
  /// adversaries the liveness obligation is discharged within the horizon
  /// (e.g. losses stop / the stable window occurs before the end).
  virtual std::vector<int> sample(std::mt19937_64& rng, int horizon) const;

  /// True iff stem (read from the initial state) violates safety.
  bool safety_rejects(const std::vector<int>& letters) const;

 private:
  int n_;
  std::vector<Digraph> alphabet_;
  std::string name_;
};

}  // namespace topocon
