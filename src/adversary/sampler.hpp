// Helpers to materialize sampled / enumerated adversary letter sequences as
// run prefixes (inputs + graphs) for simulation and analysis.
#pragma once

#include <random>
#include <vector>

#include "adversary/adversary.hpp"
#include "ptg/prefix.hpp"

namespace topocon {

/// Converts a letter sequence to the corresponding graph sequence.
std::vector<Digraph> letters_to_graphs(const MessageAdversary& adversary,
                                       const std::vector<int>& letters);

/// Samples an admissible prefix of the given length with the given inputs.
RunPrefix sample_prefix(const MessageAdversary& adversary,
                        const InputVector& inputs, int length,
                        std::mt19937_64& rng);

/// Samples a uniformly random input vector over {0, ..., num_values-1}^n.
InputVector sample_inputs(int n, int num_values, std::mt19937_64& rng);

/// Enumerates all safety-consistent letter sequences of the given length
/// (the depth-`length` prefix tree of the adversary's closure). Intended for
/// exhaustive verification at small depth; the count is
/// O(alphabet^length).
std::vector<std::vector<int>> enumerate_letter_sequences(
    const MessageAdversary& adversary, int length);

}  // namespace topocon
