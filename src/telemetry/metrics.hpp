// Per-job telemetry: cheap monotonic counters aggregated into a
// JobTelemetry snapshot.
//
// Determinism contract: every field of TelemetryCounters is flushed only
// for COMMITTED frontier levels (FrontierEngine::commit is the single
// flush point; a truncated level contributes exactly one
// budget_early_aborts tick and nothing else), so the counts are identical
// across thread counts. They DO depend on the execution shape
// (--chunk, --frontier): a different chunk partition dedups at different
// boundaries and plans dense/sparse per chunk. Timings
// (LevelTiming::seconds, JobTelemetry::wall_seconds) are wall clock and
// never deterministic; the JSON "telemetry" section embeds counters only.
//
// Named src/telemetry (not metrics) to avoid clashing with the paper's
// core/metrics.* distance metrics.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace topocon::telemetry {

class TraceWriter;

/// Expansion statistics accumulated inside a PendingFrontier while its
/// dedup tables are still chunk-local. expand() fills one per chunk,
/// merge() sums them across a root's chunks (adding the cross-chunk dedup
/// it performs itself), and commit() flushes the merged totals into the
/// job's MetricsRegistry.
struct PendingStats {
  std::uint64_t chunks = 0;              ///< chunk expansions folded in
  std::uint64_t dense_view_chunks = 0;   ///< chunks planned dense for views
  std::uint64_t dense_state_chunks = 0;  ///< chunks planned dense for states
  std::uint64_t emissions = 0;           ///< (parent, letter) child emissions
  std::uint64_t dedup_hits = 0;          ///< emissions folded into a seen state
  std::uint64_t pending_states = 0;      ///< distinct states after dedup
  std::uint64_t pending_views = 0;       ///< distinct uninterned views
  std::uint64_t rehashes = 0;            ///< WordSeqIndex growth rehashes

  void add(const PendingStats& other);
};

/// Monotonic per-job counters. All values are deterministic for a fixed
/// query + chunk size + frontier mode, at any thread count.
struct TelemetryCounters {
  std::uint64_t states_expanded = 0;     ///< child emissions scanned
  std::uint64_t state_dedup_hits = 0;    ///< emissions deduped away
  std::uint64_t states_committed = 0;    ///< states surviving into levels
  std::uint64_t pending_views = 0;       ///< distinct views before interning
  std::uint64_t views_interned = 0;      ///< ViewInterner growth
  std::uint64_t chunks_expanded = 0;     ///< chunk expansions committed
  std::uint64_t dense_view_chunks = 0;   ///< chunks on the dense view path
  std::uint64_t dense_state_chunks = 0;  ///< chunks on the dense state path
  std::uint64_t wordseq_rehashes = 0;    ///< sparse-table growth rehashes
  std::uint64_t levels_committed = 0;    ///< committed (root-set, level) steps
  std::uint64_t budget_early_aborts = 0; ///< levels truncated by max_states
  std::uint64_t frontier_high_water = 0; ///< largest committed frontier

  friend bool operator==(const TelemetryCounters&,
                         const TelemetryCounters&) = default;
};

/// Out-of-core spill totals (core/spill.*), commit-only like every other
/// counter: discarded passes leave no trace. Deterministic for a fixed
/// query + chunk size + frontier mode + spill budget, at any thread
/// count. Never serialized into artifacts -- telemetry JSON is
/// byte-identical spill-on vs off; --metrics shows these on stderr.
struct SpillStats {
  std::uint64_t chunks_spilled = 0;   ///< chunk payloads written to disk
  std::uint64_t bytes_written = 0;    ///< spill-file bytes written
  std::uint64_t bytes_replayed = 0;   ///< spill-file bytes streamed back
  std::uint64_t replay_passes = 0;    ///< committed levels that replayed

  void add(const SpillStats& other);
};

/// Wall time of one committed level. Non-deterministic (timings).
struct LevelTiming {
  int depth = 0;              ///< the analysis depth this level belongs to
  int level = 0;              ///< 1-based level within that analysis
  std::uint64_t states = 0;   ///< committed frontier size after the level
  double seconds = 0;         ///< wall time of the level
};

/// Everything one job reported: deterministic counters plus wall timings.
struct JobTelemetry {
  TelemetryCounters counters;
  std::vector<LevelTiming> levels;
  double wall_seconds = 0;
  /// Non-serialized, like wall_seconds: spill totals never enter the
  /// JSON "telemetry" section.
  SpillStats spill;
};

/// Sink for one job's counters. Counter flushes are relaxed atomics and may
/// arrive concurrently from pool threads (commit runs under parallel_for);
/// the level-timing vector is single-writer — only the job's sequential
/// level driver appends. snapshot() is meant for after the job finishes
/// (the engine reads it before firing on_job_done).
class MetricsRegistry {
 public:
  explicit MetricsRegistry(TraceWriter* trace = nullptr) : trace_(trace) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The span writer shared by this job, or null when not tracing.
  TraceWriter* trace() const { return trace_; }

  /// Flush a merged level's expansion stats (commit-time only).
  void add_pending(const PendingStats& stats);

  /// Flush a committed level's intern results.
  void add_commit(std::uint64_t states, std::uint64_t new_views);

  /// One truncated (never committed) level.
  void add_budget_abort();

  /// Fold one analysis call's committed spill totals in (end-of-call
  /// flush from the parallel solver; may arrive from several depths).
  void add_spill(const SpillStats& stats);

  /// Raise the frontier high-water mark.
  void note_frontier(std::uint64_t states);

  /// Record one committed level of the driving loop: counts it, raises the
  /// high-water mark, appends the timing, and samples the frontier size
  /// into the trace. Single-writer.
  void add_level(int depth, int level, std::uint64_t states, double seconds);

  /// Attribute wall time not covered by add_level (for the final snapshot).
  void set_wall_seconds(double seconds) { wall_seconds_ = seconds; }

  JobTelemetry snapshot() const;

 private:
  std::atomic<std::uint64_t> states_expanded_{0};
  std::atomic<std::uint64_t> state_dedup_hits_{0};
  std::atomic<std::uint64_t> states_committed_{0};
  std::atomic<std::uint64_t> pending_views_{0};
  std::atomic<std::uint64_t> views_interned_{0};
  std::atomic<std::uint64_t> chunks_expanded_{0};
  std::atomic<std::uint64_t> dense_view_chunks_{0};
  std::atomic<std::uint64_t> dense_state_chunks_{0};
  std::atomic<std::uint64_t> wordseq_rehashes_{0};
  std::atomic<std::uint64_t> levels_committed_{0};
  std::atomic<std::uint64_t> budget_early_aborts_{0};
  std::atomic<std::uint64_t> frontier_high_water_{0};
  std::atomic<std::uint64_t> spill_chunks_{0};
  std::atomic<std::uint64_t> spill_bytes_written_{0};
  std::atomic<std::uint64_t> spill_bytes_replayed_{0};
  std::atomic<std::uint64_t> spill_replay_passes_{0};
  std::vector<LevelTiming> levels_;
  double wall_seconds_ = 0;
  TraceWriter* trace_;
};

}  // namespace topocon::telemetry
