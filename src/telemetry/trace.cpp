#include "telemetry/trace.hpp"

#include <string>

namespace topocon::telemetry {

namespace {

// Local minimal JSON string escaping. The telemetry layer sits below
// runtime/sweep, so it cannot reuse sweep::json_escape.
std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_args(std::ostream& out, std::initializer_list<TraceArg> args) {
  out << ",\"args\":{";
  bool first = true;
  for (const TraceArg& arg : args) {
    if (!first) out << ',';
    first = false;
    out << '"' << escape(arg.key) << "\":";
    if (arg.is_string) {
      out << '"' << escape(arg.text) << '"';
    } else {
      out << arg.number;
    }
  }
  out << '}';
}

}  // namespace

TraceWriter::TraceWriter(std::ostream& out)
    : out_(out), epoch_(std::chrono::steady_clock::now()) {
  out_ << '[';
}

TraceWriter::~TraceWriter() {
  out_ << "\n]\n";
  out_.flush();
}

std::uint64_t TraceWriter::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

std::uint32_t TraceWriter::tid_locked() {
  const auto [it, inserted] = tids_.emplace(
      std::this_thread::get_id(), static_cast<std::uint32_t>(tids_.size() + 1));
  return it->second;
}

void TraceWriter::begin_event_locked() {
  out_ << (first_ ? "\n" : ",\n");
  first_ = false;
}

void TraceWriter::complete(std::string_view name, std::string_view category,
                           std::uint64_t ts_us, std::uint64_t dur_us,
                           std::initializer_list<TraceArg> args) {
  const std::lock_guard<std::mutex> lock(mutex_);
  begin_event_locked();
  out_ << "{\"name\":\"" << escape(name) << "\",\"cat\":\"" << escape(category)
       << "\",\"ph\":\"X\",\"ts\":" << ts_us << ",\"dur\":" << dur_us
       << ",\"pid\":1,\"tid\":" << tid_locked();
  if (args.size() > 0) write_args(out_, args);
  out_ << '}';
}

void TraceWriter::counter(std::string_view name, std::uint64_t value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  begin_event_locked();
  out_ << "{\"name\":\"" << escape(name)
       << "\",\"cat\":\"telemetry\",\"ph\":\"C\",\"ts\":" << now_us()
       << ",\"pid\":1,\"tid\":" << tid_locked() << ",\"args\":{\"value\":"
       << value << "}}";
}

void TraceWriter::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  out_.flush();
}

}  // namespace topocon::telemetry
