// Chrome Trace Event Format writer (load in chrome://tracing or
// https://ui.perfetto.dev).
//
// Emits a plain JSON array with one event object per line: complete
// duration spans ("ph":"X") carrying integer-microsecond ts/dur relative
// to the writer's construction, and counter samples ("ph":"C"). pid is
// always 1; tid is a small integer assigned to each OS thread in
// first-event order. The writer is fully mutex-protected — spans from the
// work-helping pool interleave safely.
//
// Timestamps and event order follow the wall clock, so trace FILES are not
// byte-deterministic; everything else about a traced run is (the golden
// lanes pin that artifacts stay byte-identical with --trace on).
#pragma once

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <ostream>
#include <string_view>
#include <thread>
#include <unordered_map>

namespace topocon::telemetry {

/// One "args" entry of a trace event: an unsigned number or a string.
struct TraceArg {
  std::string_view key;
  bool is_string = false;
  std::uint64_t number = 0;
  std::string_view text;

  static TraceArg num(std::string_view key, std::uint64_t value) {
    TraceArg arg;
    arg.key = key;
    arg.number = value;
    return arg;
  }
  static TraceArg str(std::string_view key, std::string_view value) {
    TraceArg arg;
    arg.key = key;
    arg.is_string = true;
    arg.text = value;
    return arg;
  }
};

class TraceWriter {
 public:
  /// The stream must outlive the writer; the closing "]" is written by the
  /// destructor.
  explicit TraceWriter(std::ostream& out);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Microseconds elapsed since this writer's construction (steady clock,
  /// floored — flooring both ends of a span preserves parent/child
  /// containment).
  std::uint64_t now_us() const;

  /// A finished span [ts_us, ts_us + dur_us] on the calling thread.
  void complete(std::string_view name, std::string_view category,
                std::uint64_t ts_us, std::uint64_t dur_us,
                std::initializer_list<TraceArg> args = {});

  /// A counter sample at now_us() on the calling thread.
  void counter(std::string_view name, std::uint64_t value);

  void flush();

 private:
  std::uint32_t tid_locked();
  void begin_event_locked();

  std::ostream& out_;
  std::mutex mutex_;
  std::chrono::steady_clock::time_point epoch_;
  std::unordered_map<std::thread::id, std::uint32_t> tids_;
  bool first_ = true;
};

}  // namespace topocon::telemetry
