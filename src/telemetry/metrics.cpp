#include "telemetry/metrics.hpp"

#include "telemetry/trace.hpp"

namespace topocon::telemetry {

void PendingStats::add(const PendingStats& other) {
  chunks += other.chunks;
  dense_view_chunks += other.dense_view_chunks;
  dense_state_chunks += other.dense_state_chunks;
  emissions += other.emissions;
  dedup_hits += other.dedup_hits;
  pending_states += other.pending_states;
  pending_views += other.pending_views;
  rehashes += other.rehashes;
}

void MetricsRegistry::add_pending(const PendingStats& stats) {
  states_expanded_.fetch_add(stats.emissions, std::memory_order_relaxed);
  state_dedup_hits_.fetch_add(stats.dedup_hits, std::memory_order_relaxed);
  pending_views_.fetch_add(stats.pending_views, std::memory_order_relaxed);
  chunks_expanded_.fetch_add(stats.chunks, std::memory_order_relaxed);
  dense_view_chunks_.fetch_add(stats.dense_view_chunks,
                               std::memory_order_relaxed);
  dense_state_chunks_.fetch_add(stats.dense_state_chunks,
                                std::memory_order_relaxed);
  wordseq_rehashes_.fetch_add(stats.rehashes, std::memory_order_relaxed);
}

void MetricsRegistry::add_commit(std::uint64_t states,
                                 std::uint64_t new_views) {
  states_committed_.fetch_add(states, std::memory_order_relaxed);
  views_interned_.fetch_add(new_views, std::memory_order_relaxed);
}

void MetricsRegistry::add_budget_abort() {
  budget_early_aborts_.fetch_add(1, std::memory_order_relaxed);
}

void SpillStats::add(const SpillStats& other) {
  chunks_spilled += other.chunks_spilled;
  bytes_written += other.bytes_written;
  bytes_replayed += other.bytes_replayed;
  replay_passes += other.replay_passes;
}

void MetricsRegistry::add_spill(const SpillStats& stats) {
  spill_chunks_.fetch_add(stats.chunks_spilled, std::memory_order_relaxed);
  spill_bytes_written_.fetch_add(stats.bytes_written,
                                 std::memory_order_relaxed);
  spill_bytes_replayed_.fetch_add(stats.bytes_replayed,
                                  std::memory_order_relaxed);
  spill_replay_passes_.fetch_add(stats.replay_passes,
                                 std::memory_order_relaxed);
}

void MetricsRegistry::note_frontier(std::uint64_t states) {
  std::uint64_t seen = frontier_high_water_.load(std::memory_order_relaxed);
  while (seen < states &&
         !frontier_high_water_.compare_exchange_weak(
             seen, states, std::memory_order_relaxed)) {
  }
}

void MetricsRegistry::add_level(int depth, int level, std::uint64_t states,
                                double seconds) {
  levels_committed_.fetch_add(1, std::memory_order_relaxed);
  note_frontier(states);
  levels_.push_back(LevelTiming{depth, level, states, seconds});
  if (trace_ != nullptr) trace_->counter("frontier_states", states);
}

JobTelemetry MetricsRegistry::snapshot() const {
  JobTelemetry out;
  out.counters.states_expanded =
      states_expanded_.load(std::memory_order_relaxed);
  out.counters.state_dedup_hits =
      state_dedup_hits_.load(std::memory_order_relaxed);
  out.counters.states_committed =
      states_committed_.load(std::memory_order_relaxed);
  out.counters.pending_views = pending_views_.load(std::memory_order_relaxed);
  out.counters.views_interned =
      views_interned_.load(std::memory_order_relaxed);
  out.counters.chunks_expanded =
      chunks_expanded_.load(std::memory_order_relaxed);
  out.counters.dense_view_chunks =
      dense_view_chunks_.load(std::memory_order_relaxed);
  out.counters.dense_state_chunks =
      dense_state_chunks_.load(std::memory_order_relaxed);
  out.counters.wordseq_rehashes =
      wordseq_rehashes_.load(std::memory_order_relaxed);
  out.counters.levels_committed =
      levels_committed_.load(std::memory_order_relaxed);
  out.counters.budget_early_aborts =
      budget_early_aborts_.load(std::memory_order_relaxed);
  out.counters.frontier_high_water =
      frontier_high_water_.load(std::memory_order_relaxed);
  out.levels = levels_;
  out.wall_seconds = wall_seconds_;
  out.spill.chunks_spilled = spill_chunks_.load(std::memory_order_relaxed);
  out.spill.bytes_written =
      spill_bytes_written_.load(std::memory_order_relaxed);
  out.spill.bytes_replayed =
      spill_bytes_replayed_.load(std::memory_order_relaxed);
  out.spill.replay_passes =
      spill_replay_passes_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace topocon::telemetry
