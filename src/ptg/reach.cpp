#include "ptg/reach.hpp"

#include "graph/scc.hpp"

namespace topocon {

ReachVector initial_reach(int n) {
  ReachVector reach(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) {
    reach[static_cast<std::size_t>(q)] = NodeMask{1} << q;
  }
  return reach;
}

ReachVector advance_reach(const ReachVector& reach, const Digraph& g) {
  return propagate(g, reach);
}

ReachVector reach_of_prefix(const RunPrefix& prefix) {
  ReachVector reach = initial_reach(prefix.num_processes());
  for (const Digraph& g : prefix.graphs) {
    reach = advance_reach(reach, g);
  }
  return reach;
}

NodeMask broadcast_complete(const ReachVector& reach) {
  if (reach.empty()) return 0;
  NodeMask common = ~NodeMask{0};
  for (const NodeMask m : reach) {
    common &= m;
  }
  return common & full_mask(static_cast<int>(reach.size()));
}

}  // namespace topocon
