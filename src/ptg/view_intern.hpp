// Exact hash-consing of process views V_p(a^t).
//
// The view of process p at time t in a run a (paper, Definition 4.1 applied
// to process-time graphs) is the causal cone of the node (p, t): the sub-DAG
// of the process-time graph induced by all nodes with a path to (p, t),
// including the input values at the time-0 nodes. Because process-time-graph
// nodes carry explicit identities (q, s), two views are "the same view" iff
// they are *equal* as labelled graphs -- not merely isomorphic.
//
// This module assigns a small integer ViewId to every distinct view via
// structural interning:
//
//   base(p, x)                 <-> the cone of (p, 0) with input x
//   step(q, M, ids)            <-> the cone of (q, t); M is q's round-t
//                                  in-neighbour mask and ids are the cone
//                                  ids of the senders at time t-1, listed in
//                                  increasing process order.
//
// Invariant (proved by induction on t, and cross-checked against explicit
// process-time graphs in tests/ptg_test.cpp): for runs a, b and any process
// p,   id of V_p(a^t) == id of V_p(b^t)  <=>  V_p(a^t) = V_p(b^t).
//
// Consequently the process-view pseudo-metric of Section 4.1 becomes
//   d_{p}(a, b) = 2^{-min{ t : id_p(a, t) != id_p(b, t) }},
// computable in O(1) per round per process, and the minimum distance d_min
// (Section 4.2) is the min over p. Since all communication graphs contain
// self-loops, every cone at time t contains the sender chain of its own
// process, so ids at different depths never coincide and views are
// cumulative: equality at time t implies equality at all s <= t.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "graph/digraph.hpp"
#include "ptg/prefix.hpp"

namespace topocon {

/// Identifier of an interned view. Ids are dense, starting at 0.
using ViewId = std::int32_t;

/// The views of all processes at a common time, indexed by process id.
using ViewVector = std::vector<ViewId>;

/// Structural interner for process views.
///
/// Threading contract: an interner is single-threaded state. Mutating
/// operations (base, step, and everything built on them) bind the
/// instance to the first mutating thread and abort on mutation from any
/// other thread; sequential hand-off between threads is legitimate and is
/// declared with attach_to_current_thread(). Concurrent expansion uses one
/// interner per shard, merged afterwards with absorb() -- see
/// runtime/sweep/. One instance is shared by an analysis and any
/// simulations replaying its decision tables.
class ViewInterner {
 public:
  ViewInterner() = default;
  ViewInterner(const ViewInterner&) = delete;
  ViewInterner& operator=(const ViewInterner&) = delete;

  /// Id of the time-0 view of process p with input value x.
  ViewId base(ProcessId p, Value x);

  /// Id of the time-t view of process q whose round-t in-mask is `mask` and
  /// whose senders' time-(t-1) views are `sender_ids` (increasing process
  /// order, one entry per bit of mask). Aborts if the sender count does not
  /// match the mask; debug builds additionally verify that the sender ids
  /// are listed in mask (= increasing process) order at a common depth.
  ViewId step(ProcessId q, NodeMask mask, const std::vector<ViewId>& sender_ids);

  /// Views of all processes at time 0 for the given inputs.
  ViewVector initial(const InputVector& inputs);

  /// Advances all views by one round under communication graph g.
  ViewVector advance(const ViewVector& views, const Digraph& g);

  /// Views of all processes at time prefix.length() (applies advance along
  /// the whole prefix).
  ViewVector of_prefix(const RunPrefix& prefix);

  /// Total number of distinct views interned so far.
  std::size_t size() const { return nodes_.size(); }

  /// Re-interns every view of `other` into this interner (parents before
  /// children, so sender references resolve) and returns the translation
  /// vector: remap[id in other] = id in this. Structural dedup makes the
  /// operation idempotent; the parallel sweep engine uses it to merge
  /// per-shard interners in a deterministic shard order.
  std::vector<ViewId> absorb(const ViewInterner& other);

  /// Re-binds the instance to the calling thread. Required before mutating
  /// an interner that a *different* thread mutated earlier (sequential
  /// hand-off, e.g. results returned from a worker pool); without it the
  /// next cross-thread mutation aborts.
  void attach_to_current_thread();

  /// Metadata of an interned view (for reconstruction, debugging, tests).
  struct Node {
    ProcessId process = -1;
    int depth = 0;          // time t of the cone's apex (q, t)
    Value input = -1;       // input value, for depth-0 nodes only
    NodeMask mask = 0;      // round-t in-mask, for depth > 0
    std::vector<ViewId> senders;  // cone ids of senders at t-1, mask order
  };
  const Node& node(ViewId id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }

 private:
  struct StepKey {
    ProcessId q;
    NodeMask mask;
    std::vector<ViewId> senders;
    bool operator==(const StepKey&) const = default;
  };
  struct StepKeyHash {
    std::size_t operator()(const StepKey& k) const noexcept {
      std::size_t h = static_cast<std::size_t>(k.q) * 0x9e3779b97f4a7c15ull;
      h ^= k.mask + 0x9e3779b9u + (h << 6) + (h >> 2);
      for (const ViewId id : k.senders) {
        h ^= static_cast<std::size_t>(id) + 0x9e3779b9u + (h << 6) + (h >> 2);
      }
      return h;
    }
  };

  /// Aborts unless the calling thread owns this interner, claiming
  /// ownership on the first mutation. Cheap: one relaxed load on the
  /// owning thread.
  void check_owner();

  std::unordered_map<std::uint64_t, ViewId> base_table_;
  std::unordered_map<StepKey, ViewId, StepKeyHash> step_table_;
  std::vector<Node> nodes_;
  /// Id of the thread that owns mutation rights; default-constructed until
  /// the first mutation.
  std::atomic<std::thread::id> owner_{};
};

}  // namespace topocon
