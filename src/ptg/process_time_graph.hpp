// Explicit process-time graphs (paper, Section 3 and Figure 2).
//
// PT^t contains a node (p, 0, x_p) for every process and nodes (p, s) for
// 1 <= s <= t, with an edge (p, s-1) -> (q, s) iff (p, q) is an edge of the
// round-s communication graph. The *view* of process p at time t is the
// sub-DAG induced by every node with a directed path to (p, t).
//
// This explicit representation is used for illustration (the Figure 2
// reproduction), for the paper-faithful definition of views, and as the
// ground truth against which the O(1)-comparison interned views of
// view_intern.hpp are cross-validated in tests.
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "ptg/prefix.hpp"

namespace topocon {

/// A node (process, time); input values are stored separately for time 0.
struct PtNode {
  ProcessId process = 0;
  int time = 0;
  friend bool operator==(const PtNode&, const PtNode&) = default;
  friend auto operator<=>(const PtNode&, const PtNode&) = default;
};

/// Explicit process-time graph of a finite run prefix.
class ProcessTimeGraph {
 public:
  /// Builds PT^t for t = prefix.length().
  explicit ProcessTimeGraph(const RunPrefix& prefix);

  int num_processes() const { return n_; }
  int depth() const { return depth_; }

  /// Input value at node (p, 0).
  Value input(ProcessId p) const {
    return inputs_[static_cast<std::size_t>(p)];
  }

  /// Senders with an edge (s, t-1) -> (q, t); t in [1, depth()].
  NodeMask in_mask(ProcessId q, int t) const;

  /// The causal cone of (p, t): for each time s in [0, t], the mask of
  /// processes q such that (q, s) has a path to (p, t). Entry [s] of the
  /// result. The cone always contains (p, t) itself.
  std::vector<NodeMask> view_nodes(ProcessId p, int t) const;

  /// Paper-faithful view equality: cones equal as labelled sub-DAGs
  /// (same node sets, same edges among them, same input labels).
  /// The compared graphs may come from different prefixes.
  static bool views_equal(const ProcessTimeGraph& a, ProcessId pa,
                          const ProcessTimeGraph& b, ProcessId pb, int t);

  /// Multi-line rendering of the graph (nodes per time level plus edges),
  /// used by the Figure 2 reproduction.
  std::string to_string() const;

  /// Graphviz dot output; the view of `highlight` at time depth() is bold,
  /// mirroring the highlighted view of Figure 2.
  std::string to_dot(ProcessId highlight) const;

 private:
  int n_;
  int depth_;
  InputVector inputs_;
  // in_masks_[t-1][q] = senders of (q, t) from time t-1.
  std::vector<std::vector<NodeMask>> in_masks_;
};

}  // namespace topocon
