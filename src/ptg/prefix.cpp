#include "ptg/prefix.hpp"

#include <cassert>
#include <sstream>

namespace topocon {

std::string RunPrefix::to_string() const {
  std::ostringstream out;
  out << "x=(";
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (i > 0) out << ',';
    out << inputs[i];
  }
  out << ") ";
  for (const Digraph& g : graphs) {
    out << g.to_string();
  }
  return out.str();
}

bool is_valent(const InputVector& inputs, Value v) {
  for (const Value x : inputs) {
    if (x != v) return false;
  }
  return !inputs.empty();
}

Value uniform_value(const InputVector& inputs) {
  if (inputs.empty()) return -1;
  const Value v = inputs.front();
  return is_valent(inputs, v) ? v : -1;
}

std::vector<InputVector> all_input_vectors(int n, int num_values) {
  assert(n >= 1 && num_values >= 1);
  std::vector<InputVector> result;
  InputVector current(static_cast<std::size_t>(n), 0);
  while (true) {
    result.push_back(current);
    int i = n - 1;
    while (i >= 0 && current[static_cast<std::size_t>(i)] == num_values - 1) {
      current[static_cast<std::size_t>(i)] = 0;
      --i;
    }
    if (i < 0) break;
    ++current[static_cast<std::size_t>(i)];
  }
  return result;
}

int input_vector_index(const InputVector& inputs, int num_values) {
  int index = 0;
  for (const Value x : inputs) {
    assert(x >= 0 && x < num_values);
    index = index * num_values + x;
  }
  return index;
}

}  // namespace topocon
