// Finite run prefixes: an assignment of input values plus a finite sequence
// of communication graphs. A run prefix determines the process-time graph
// PT^t (paper, Section 3) up to its length t, and hence every process view
// V_p(a^s), s <= t.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace topocon {

/// Input/output values of consensus. The paper allows any finite domain; the
/// library uses small non-negative integers.
using Value = int;

/// An assignment of one input value per process.
using InputVector = std::vector<Value>;

/// A finite execution prefix: inputs plus the first graphs of the sequence.
struct RunPrefix {
  InputVector inputs;
  std::vector<Digraph> graphs;

  int num_processes() const { return static_cast<int>(inputs.size()); }
  int length() const { return static_cast<int>(graphs.size()); }

  std::string to_string() const;
};

/// True iff all inputs equal v ("v-valent" starting point z_v, Section 5.1).
bool is_valent(const InputVector& inputs, Value v);

/// If the inputs are uniform, returns that value; otherwise -1.
Value uniform_value(const InputVector& inputs);

/// All input vectors over {0, ..., num_values-1}^n, in lexicographic order.
std::vector<InputVector> all_input_vectors(int n, int num_values);

/// Dense index of an input vector in all_input_vectors(n, num_values).
int input_vector_index(const InputVector& inputs, int num_values);

}  // namespace topocon
