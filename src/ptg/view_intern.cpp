#include "ptg/view_intern.hpp"

#include <bit>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace topocon {

namespace {

[[noreturn]] void die(const char* message) {
  std::fprintf(stderr, "ViewInterner misuse: %s\n", message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void ViewInterner::check_owner() {
  const std::thread::id self = std::this_thread::get_id();
  if (owner_.load(std::memory_order_relaxed) == self) return;
  std::thread::id expected{};
  if (!owner_.compare_exchange_strong(expected, self,
                                      std::memory_order_relaxed)) {
    die(
        "mutated from a second thread; interners are single-threaded -- "
        "give each shard its own instance and merge with absorb(), or "
        "declare a sequential hand-off with attach_to_current_thread()");
  }
}

void ViewInterner::attach_to_current_thread() {
  owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
}

ViewId ViewInterner::base(ProcessId p, Value x) {
  check_owner();
  assert(p >= 0 && x >= 0);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(p) << 32) | static_cast<std::uint32_t>(x);
  const auto [it, inserted] =
      base_table_.try_emplace(key, static_cast<ViewId>(nodes_.size()));
  if (inserted) {
    Node node;
    node.process = p;
    node.depth = 0;
    node.input = x;
    nodes_.push_back(std::move(node));
  }
  return it->second;
}

ViewId ViewInterner::step(ProcessId q, NodeMask mask,
                          const std::vector<ViewId>& sender_ids) {
  check_owner();
  assert(mask_contains(mask, q));  // self-loop invariant
  if (std::popcount(mask) != static_cast<int>(sender_ids.size())) {
    die("step() sender count does not match the in-mask popcount");
  }
#ifndef NDEBUG
  // The k-th sender id must be the view of the k-th process in the mask
  // (increasing process order) and all senders must sit at one depth --
  // the shape advance() produces. Catches hand-rolled unsorted calls.
  {
    NodeMask rest = mask;
    for (const ViewId id : sender_ids) {
      assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size() &&
             "step() sender id not interned here");
      const int p = std::countr_zero(rest);
      rest &= rest - 1;
      const Node& sender = nodes_[static_cast<std::size_t>(id)];
      assert(sender.process == p &&
             "step() sender ids not in increasing process (mask) order");
      assert(sender.depth ==
                 nodes_[static_cast<std::size_t>(sender_ids.front())].depth &&
             "step() senders at mixed depths");
    }
  }
#endif
  StepKey key{q, mask, sender_ids};
  const auto it = step_table_.find(key);
  if (it != step_table_.end()) return it->second;
  const auto id = static_cast<ViewId>(nodes_.size());
  Node node;
  node.process = q;
  // Depth = sender depth + 1; the self-loop guarantees q itself appears
  // among the senders, so every step node has depth >= 1.
  node.depth =
      nodes_[static_cast<std::size_t>(sender_ids.front())].depth + 1;
  node.mask = mask;
  node.senders = sender_ids;
  step_table_.emplace(std::move(key), id);
  nodes_.push_back(std::move(node));
  return id;
}

ViewVector ViewInterner::initial(const InputVector& inputs) {
  ViewVector views(inputs.size());
  for (std::size_t p = 0; p < inputs.size(); ++p) {
    views[p] = base(static_cast<ProcessId>(p), inputs[p]);
  }
  return views;
}

ViewVector ViewInterner::advance(const ViewVector& views, const Digraph& g) {
  const int n = g.num_processes();
  assert(static_cast<std::size_t>(n) == views.size());
  ViewVector next(views.size());
  std::vector<ViewId> senders;
  for (int q = 0; q < n; ++q) {
    const NodeMask mask = g.in_mask(q);
    senders.clear();
    NodeMask rest = mask;
    while (rest != 0) {
      const int p = std::countr_zero(rest);
      rest &= rest - 1;
      senders.push_back(views[static_cast<std::size_t>(p)]);
    }
    next[static_cast<std::size_t>(q)] = step(q, mask, senders);
  }
  return next;
}

ViewVector ViewInterner::of_prefix(const RunPrefix& prefix) {
  ViewVector views = initial(prefix.inputs);
  for (const Digraph& g : prefix.graphs) {
    views = advance(views, g);
  }
  return views;
}

std::vector<ViewId> ViewInterner::absorb(const ViewInterner& other) {
  check_owner();
  std::vector<ViewId> remap;
  remap.reserve(other.nodes_.size());
  std::vector<ViewId> senders;
  for (const Node& node : other.nodes_) {
    if (node.depth == 0) {
      remap.push_back(base(node.process, node.input));
      continue;
    }
    senders.clear();
    senders.reserve(node.senders.size());
    for (const ViewId id : node.senders) {
      // Step nodes only reference earlier ids, so the remap entry exists.
      senders.push_back(remap[static_cast<std::size_t>(id)]);
    }
    remap.push_back(step(node.process, node.mask, senders));
  }
  return remap;
}

}  // namespace topocon
