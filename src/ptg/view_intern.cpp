#include "ptg/view_intern.hpp"

#include <bit>
#include <cassert>

namespace topocon {

ViewId ViewInterner::base(ProcessId p, Value x) {
  assert(p >= 0 && x >= 0);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(p) << 32) | static_cast<std::uint32_t>(x);
  const auto [it, inserted] =
      base_table_.try_emplace(key, static_cast<ViewId>(nodes_.size()));
  if (inserted) {
    Node node;
    node.process = p;
    node.depth = 0;
    node.input = x;
    nodes_.push_back(std::move(node));
  }
  return it->second;
}

ViewId ViewInterner::step(ProcessId q, NodeMask mask,
                          const std::vector<ViewId>& sender_ids) {
  assert(mask_contains(mask, q));  // self-loop invariant
  assert(std::popcount(mask) == static_cast<int>(sender_ids.size()));
  StepKey key{q, mask, sender_ids};
  const auto it = step_table_.find(key);
  if (it != step_table_.end()) return it->second;
  const auto id = static_cast<ViewId>(nodes_.size());
  Node node;
  node.process = q;
  // Depth = sender depth + 1; the self-loop guarantees q itself appears
  // among the senders, so every step node has depth >= 1.
  node.depth =
      nodes_[static_cast<std::size_t>(sender_ids.front())].depth + 1;
  node.mask = mask;
  node.senders = sender_ids;
  step_table_.emplace(std::move(key), id);
  nodes_.push_back(std::move(node));
  return id;
}

ViewVector ViewInterner::initial(const InputVector& inputs) {
  ViewVector views(inputs.size());
  for (std::size_t p = 0; p < inputs.size(); ++p) {
    views[p] = base(static_cast<ProcessId>(p), inputs[p]);
  }
  return views;
}

ViewVector ViewInterner::advance(const ViewVector& views, const Digraph& g) {
  const int n = g.num_processes();
  assert(static_cast<std::size_t>(n) == views.size());
  ViewVector next(views.size());
  std::vector<ViewId> senders;
  for (int q = 0; q < n; ++q) {
    const NodeMask mask = g.in_mask(q);
    senders.clear();
    NodeMask rest = mask;
    while (rest != 0) {
      const int p = std::countr_zero(rest);
      rest &= rest - 1;
      senders.push_back(views[static_cast<std::size_t>(p)]);
    }
    next[static_cast<std::size_t>(q)] = step(q, mask, senders);
  }
  return next;
}

ViewVector ViewInterner::of_prefix(const RunPrefix& prefix) {
  ViewVector views = initial(prefix.inputs);
  for (const Digraph& g : prefix.graphs) {
    views = advance(views, g);
  }
  return views;
}

}  // namespace topocon
