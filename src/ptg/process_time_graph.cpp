#include "ptg/process_time_graph.hpp"

#include <bit>
#include <cassert>
#include <sstream>

namespace topocon {

ProcessTimeGraph::ProcessTimeGraph(const RunPrefix& prefix)
    : n_(prefix.num_processes()),
      depth_(prefix.length()),
      inputs_(prefix.inputs) {
  in_masks_.reserve(static_cast<std::size_t>(depth_));
  for (const Digraph& g : prefix.graphs) {
    assert(g.num_processes() == n_);
    std::vector<NodeMask> row(static_cast<std::size_t>(n_));
    for (int q = 0; q < n_; ++q) {
      row[static_cast<std::size_t>(q)] = g.in_mask(q);
    }
    in_masks_.push_back(std::move(row));
  }
}

NodeMask ProcessTimeGraph::in_mask(ProcessId q, int t) const {
  assert(t >= 1 && t <= depth_);
  return in_masks_[static_cast<std::size_t>(t - 1)]
                  [static_cast<std::size_t>(q)];
}

std::vector<NodeMask> ProcessTimeGraph::view_nodes(ProcessId p, int t) const {
  assert(t >= 0 && t <= depth_);
  std::vector<NodeMask> cone(static_cast<std::size_t>(t) + 1, 0);
  cone[static_cast<std::size_t>(t)] = NodeMask{1} << p;
  for (int s = t; s >= 1; --s) {
    NodeMask level = cone[static_cast<std::size_t>(s)];
    NodeMask below = 0;
    while (level != 0) {
      const int q = std::countr_zero(level);
      level &= level - 1;
      below |= in_mask(q, s);
    }
    cone[static_cast<std::size_t>(s - 1)] = below;
  }
  return cone;
}

bool ProcessTimeGraph::views_equal(const ProcessTimeGraph& a, ProcessId pa,
                                   const ProcessTimeGraph& b, ProcessId pb,
                                   int t) {
  if (pa != pb) return false;  // cone apices (pa, t) and (pb, t) differ
  const std::vector<NodeMask> ca = a.view_nodes(pa, t);
  const std::vector<NodeMask> cb = b.view_nodes(pb, t);
  if (ca != cb) return false;
  // Same node sets; compare induced edges level by level and input labels.
  for (int s = 1; s <= t; ++s) {
    NodeMask level = ca[static_cast<std::size_t>(s)];
    while (level != 0) {
      const int q = std::countr_zero(level);
      level &= level - 1;
      // All in-edges of an included node lie inside the cone by closure,
      // so the induced edge sets are equal iff the full masks are.
      if (a.in_mask(q, s) != b.in_mask(q, s)) return false;
    }
  }
  NodeMask level0 = ca[0];
  while (level0 != 0) {
    const int q = std::countr_zero(level0);
    level0 &= level0 - 1;
    if (a.input(q) != b.input(q)) return false;
  }
  return true;
}

std::string ProcessTimeGraph::to_string() const {
  std::ostringstream out;
  for (int p = 0; p < n_; ++p) {
    out << '(' << p + 1 << ", 0, " << input(p) << ")  ";
  }
  out << '\n';
  for (int t = 1; t <= depth_; ++t) {
    for (int q = 0; q < n_; ++q) {
      out << '(' << q + 1 << ", " << t << ")  senders:{";
      NodeMask mask = in_mask(q, t);
      bool first = true;
      while (mask != 0) {
        const int p = std::countr_zero(mask);
        mask &= mask - 1;
        if (!first) out << ',';
        out << p + 1;
        first = false;
      }
      out << "}  ";
    }
    out << '\n';
  }
  return out.str();
}

std::string ProcessTimeGraph::to_dot(ProcessId highlight) const {
  const std::vector<NodeMask> cone = view_nodes(highlight, depth_);
  std::ostringstream out;
  out << "digraph PT {\n  rankdir=BT;\n";
  for (int t = 0; t <= depth_; ++t) {
    for (int p = 0; p < n_; ++p) {
      out << "  n" << p << "_" << t << " [label=\"(" << p + 1 << "," << t;
      if (t == 0) out << "," << input(p);
      out << ")\"";
      if (mask_contains(cone[static_cast<std::size_t>(t)], p)) {
        out << ", penwidth=3, color=green";
      }
      out << "];\n";
    }
  }
  for (int t = 1; t <= depth_; ++t) {
    for (int q = 0; q < n_; ++q) {
      NodeMask mask = in_mask(q, t);
      while (mask != 0) {
        const int p = std::countr_zero(mask);
        mask &= mask - 1;
        out << "  n" << p << "_" << t - 1 << " -> n" << q << "_" << t;
        if (mask_contains(cone[static_cast<std::size_t>(t)], q) &&
            mask_contains(cone[static_cast<std::size_t>(t - 1)], p)) {
          out << " [penwidth=3, color=green]";
        }
        out << ";\n";
      }
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace topocon
