// Causal reachability ("who has heard from whom") along run prefixes.
//
// reach_q(t) = the set of processes p whose time-0 node (p, 0, x_p) lies in
// q's view at time t. This is exactly the knowledge set used by the paper's
// broadcastability notion (Definition 5.8): process p has broadcast in a by
// round t iff p is in reach_q(t) for every q.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "ptg/prefix.hpp"

namespace topocon {

/// Per-process knowledge masks; entry q = processes whose input q knows.
using ReachVector = std::vector<NodeMask>;

/// reach at time 0: every process knows exactly itself.
ReachVector initial_reach(int n);

/// One round of knowledge propagation under graph g.
ReachVector advance_reach(const ReachVector& reach, const Digraph& g);

/// Knowledge masks at the end of a prefix.
ReachVector reach_of_prefix(const RunPrefix& prefix);

/// Mask of processes whose input is known by *every* process.
NodeMask broadcast_complete(const ReachVector& reach);

}  // namespace topocon
