// Adversarial falsification: search for admissible executions on which an
// algorithm violates the consensus specification. Complements the
// exhaustive replays in tests (which are bounded by alphabet^depth) with
// (a) exhaustive search at small depth and (b) randomized search at large
// depth -- failure injection for algorithms whose correctness envelope is
// being probed (e.g. FloodMin beyond the Santoro-Widmayer threshold).
#pragma once

#include <optional>
#include <random>
#include <string>

#include "adversary/adversary.hpp"
#include "adversary/sampler.hpp"
#include "runtime/simulator.hpp"
#include "runtime/verify.hpp"

namespace topocon {

struct Falsification {
  RunPrefix prefix;
  ConsensusCheck check;
  std::string what;  // which property broke
};

struct FalsifierOptions {
  /// Exhaustive phase: all admissible letter sequences up to this length
  /// (alphabet^length sequences; keep small).
  int exhaustive_depth = 0;
  /// Randomized phase: number of sampled runs and their horizon.
  int random_runs = 1000;
  int random_horizon = 8;
  /// Check agreement/validity only (set false when the horizon is shorter
  /// than the algorithm's termination guarantee).
  bool require_termination = false;
  unsigned seed = 1;
};

/// Searches for a violating execution of `algo` under `adversary`.
/// Returns the first violation found, or nullopt. Agreement and validity
/// violations are always reported; termination violations only when
/// options.require_termination.
template <class Algo>
std::optional<Falsification> falsify(const MessageAdversary& adversary,
                                     const Algo& algo,
                                     const FalsifierOptions& options) {
  const int n = adversary.num_processes();
  auto violates = [&](const RunPrefix& prefix)
      -> std::optional<Falsification> {
    const ConsensusOutcome outcome = simulate(algo, prefix);
    const ConsensusCheck check = check_consensus(outcome, prefix.inputs);
    if (!check.agreement) {
      return Falsification{prefix, check, "agreement"};
    }
    if (!check.validity) {
      return Falsification{prefix, check, "validity"};
    }
    if (options.require_termination && !check.termination) {
      return Falsification{prefix, check, "termination"};
    }
    return std::nullopt;
  };

  if (options.exhaustive_depth > 0) {
    for (const auto& letters :
         enumerate_letter_sequences(adversary, options.exhaustive_depth)) {
      for (const InputVector& inputs : all_input_vectors(n, 2)) {
        RunPrefix prefix;
        prefix.inputs = inputs;
        prefix.graphs = letters_to_graphs(adversary, letters);
        if (auto hit = violates(prefix)) return hit;
      }
    }
  }
  std::mt19937_64 rng(options.seed);
  for (int trial = 0; trial < options.random_runs; ++trial) {
    const InputVector inputs = sample_inputs(n, 2, rng);
    const RunPrefix prefix =
        sample_prefix(adversary, inputs, options.random_horizon, rng);
    if (auto hit = violates(prefix)) return hit;
  }
  return std::nullopt;
}

}  // namespace topocon
