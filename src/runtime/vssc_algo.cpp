#include "runtime/vssc_algo.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "graph/scc.hpp"

namespace topocon {

void VsscKnowledge::ensure_rounds(int rounds) {
  if (static_cast<int>(inmasks.size()) < rounds) {
    inmasks.resize(static_cast<std::size_t>(rounds),
                   std::vector<int>(inputs.size(), -1));
  }
}

void VsscKnowledge::merge(const VsscKnowledge& other) {
  assert(inputs.size() == other.inputs.size());
  for (std::size_t p = 0; p < inputs.size(); ++p) {
    if (inputs[p] < 0) inputs[p] = other.inputs[p];
  }
  ensure_rounds(static_cast<int>(other.inmasks.size()));
  for (std::size_t t = 0; t < other.inmasks.size(); ++t) {
    for (std::size_t p = 0; p < inputs.size(); ++p) {
      if (inmasks[t][p] < 0) inmasks[t][p] = other.inmasks[t][p];
    }
  }
}

VsscConsensus::VsscConsensus(int n, int window)
    : n_(n), window_(window > 0 ? window : 2 * n) {}

VsscConsensus::State VsscConsensus::init(ProcessId p, Value input) const {
  State state;
  state.pid = p;
  state.knowledge.inputs.assign(static_cast<std::size_t>(n_), -1);
  state.knowledge.inputs[static_cast<std::size_t>(p)] = input;
  return state;
}

void VsscConsensus::step(
    State& state, int round,
    const std::vector<std::optional<Message>>& received) const {
  // Observe my own in-neighbourhood of this round, then merge what the
  // senders knew at the end of the previous round.
  NodeMask observed = 0;
  for (std::size_t s = 0; s < received.size(); ++s) {
    if (received[s].has_value()) observed |= NodeMask{1} << s;
  }
  state.knowledge.ensure_rounds(round);
  state.knowledge.inmasks[static_cast<std::size_t>(round - 1)]
                         [static_cast<std::size_t>(state.pid)] =
      static_cast<int>(observed);
  for (const auto& msg : received) {
    if (msg.has_value()) state.knowledge.merge(*msg);
  }
  maybe_decide(state);
}

NodeMask VsscConsensus::verified_root(const VsscKnowledge& k, int t) const {
  if (t < 1 || t > static_cast<int>(k.inmasks.size())) return 0;
  const std::vector<int>& masks = k.inmasks[static_cast<std::size_t>(t - 1)];
  // Build the partial graph of known in-edges; nodes with unknown masks
  // cannot belong to a verified root.
  Digraph g(n_);
  NodeMask known = 0;
  for (int q = 0; q < n_; ++q) {
    if (masks[static_cast<std::size_t>(q)] < 0) continue;
    known |= NodeMask{1} << q;
    NodeMask senders =
        static_cast<NodeMask>(masks[static_cast<std::size_t>(q)]);
    while (senders != 0) {
      const int p = std::countr_zero(senders);
      senders &= senders - 1;
      g.add_edge(p, q);
    }
  }
  if (known == 0) return 0;
  const SccDecomposition scc = strongly_connected_components(g);
  for (int c = 0; c < scc.num_components; ++c) {
    const NodeMask members = scc.members[static_cast<std::size_t>(c)];
    if ((members & known) != members) continue;  // some mask unknown
    // No member may have an in-edge from outside (true masks are known for
    // all members, so this verifies actual rootness).
    bool closed = true;
    NodeMask rest = members;
    while (rest != 0 && closed) {
      const int q = std::countr_zero(rest);
      rest &= rest - 1;
      const auto mask =
          static_cast<NodeMask>(masks[static_cast<std::size_t>(q)]);
      if ((mask & ~members) != 0) closed = false;
    }
    if (!closed) continue;
    // Strongly connected and closed under known (= true) in-edges: this is
    // the unique root component of round t.
    return members;
  }
  return 0;
}

void VsscConsensus::maybe_decide(State& state) const {
  if (state.decided.has_value()) return;
  const int rounds = static_cast<int>(state.knowledge.inmasks.size());
  int run_length = 0;
  NodeMask current = 0;
  for (int t = 1; t <= rounds; ++t) {
    const NodeMask root = verified_root(state.knowledge, t);
    if (root != 0 && root == current) {
      ++run_length;
    } else {
      current = root;
      run_length = root != 0 ? 1 : 0;
    }
    if (run_length >= window_ && current != 0) {
      // Decide min input over the stable root, once all inputs are known.
      Value best = -1;
      NodeMask rest = current;
      bool all_known = true;
      while (rest != 0) {
        const int s = std::countr_zero(rest);
        rest &= rest - 1;
        const Value x = state.knowledge.inputs[static_cast<std::size_t>(s)];
        if (x < 0) {
          all_known = false;
          break;
        }
        if (best < 0 || x < best) best = x;
      }
      if (all_known) {
        state.decided = best;
        return;
      }
    }
  }
}

}  // namespace topocon
