// Executable form of the paper's universal consensus algorithm
// (Theorem 5.5): full information plus the precomputed decision table.
//
// Process p decides value v at the end of round s as soon as the decision
// table certifies that every admissible sequence compatible with p's
// current view lies in the decision set PS(v) -- the "ball of radius 2^-s
// around the local view is contained in PS(v)" rule, made finite by the
// depth-t epsilon-approximation. Every process is guaranteed to decide by
// round t = table.depth() on every admissible sequence.
#pragma once

#include <optional>
#include <vector>

#include "core/decision_table.hpp"
#include "runtime/full_info.hpp"

namespace topocon {

class UniversalAlgorithm {
 public:
  struct State {
    FullInfoAlgorithm::State info;
    std::optional<Value> decided;
  };
  using Message = ViewId;

  explicit UniversalAlgorithm(const DecisionTable& table)
      : table_(&table), full_info_(table.interner()) {}

  State init(ProcessId p, Value input) const {
    State state{full_info_.init(p, input), std::nullopt};
    state.decided = table_->decide(0, p, state.info.view);
    return state;
  }

  Message message(const State& state) const {
    return full_info_.message(state.info);
  }

  void step(State& state, int round,
            const std::vector<std::optional<Message>>& received) const {
    full_info_.step(state.info, round, received);
    if (!state.decided.has_value()) {
      state.decided = table_->decide(round, state.info.pid, state.info.view);
    }
  }

  std::optional<Value> decision(const State& state) const {
    return state.decided;
  }

 private:
  const DecisionTable* table_;
  FullInfoAlgorithm full_info_;
};

}  // namespace topocon
