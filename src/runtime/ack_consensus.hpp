// Consensus under the finite-loss adversary (Section 6.3 flagship):
// "decide process 0's input once you know that everyone knows it."
//
// Each process tracks (a) process 0's input value, once learned, and
// (b) the set K of processes it knows to know that value; both are
// piggybacked on every message and merged monotonically. A process decides
// when K covers all processes.
//
// Correctness under the finite-loss adversary (proved in DESIGN.md terms,
// verified by property tests):
//  * Termination: eventually every round is the complete graph, so x_0
//    floods to everyone, then the K-sets flood and reach [n] everywhere.
//  * Agreement: every decision equals x_0.
//  * Validity: if all inputs are v then x_0 = v.
// Under the *closure* (infinitely many losses allowed) termination fails --
// exactly the non-compactness gap the paper's Section 6.3 is about, and
// part of bench E7.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.hpp"
#include "runtime/simulator.hpp"

namespace topocon {

class AckConsensus {
 public:
  struct State {
    ProcessId pid = 0;
    int n = 0;
    std::optional<Value> value0;  // x_0 once known
    NodeMask knowers = 0;         // processes known to know x_0
    std::optional<Value> decided;
  };
  struct Message {
    std::optional<Value> value0;
    NodeMask knowers = 0;
  };

  explicit AckConsensus(int n) : n_(n) {}

  State init(ProcessId p, Value input) const {
    State state;
    state.pid = p;
    state.n = n_;
    if (p == 0) {
      state.value0 = input;
      state.knowers = NodeMask{1};
    }
    maybe_decide(state);
    return state;
  }

  Message message(const State& state) const {
    return Message{state.value0, state.knowers};
  }

  void step(State& state, int round,
            const std::vector<std::optional<Message>>& received) const {
    (void)round;
    for (const auto& msg : received) {
      if (!msg.has_value()) continue;
      if (msg->value0.has_value() && !state.value0.has_value()) {
        state.value0 = msg->value0;
      }
      state.knowers |= msg->knowers;
    }
    if (state.value0.has_value()) {
      state.knowers |= NodeMask{1} << state.pid;
    }
    maybe_decide(state);
  }

  std::optional<Value> decision(const State& state) const {
    return state.decided;
  }

 private:
  void maybe_decide(State& state) const {
    if (!state.decided.has_value() && state.knowers == full_mask(state.n)) {
      state.decided = state.value0;
    }
  }

  int n_;
};

}  // namespace topocon
