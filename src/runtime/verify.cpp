#include "runtime/verify.hpp"

#include <sstream>

namespace topocon {

ConsensusCheck check_consensus(const ConsensusOutcome& outcome,
                               const InputVector& inputs) {
  ConsensusCheck check;
  std::ostringstream detail;

  check.termination = outcome.all_decided();
  if (!check.termination) detail << "undecided process; ";

  check.agreement = true;
  Value decided = -1;
  for (const auto& d : outcome.decisions) {
    if (!d.has_value()) continue;
    if (decided < 0) {
      decided = *d;
    } else if (*d != decided) {
      check.agreement = false;
      detail << "decisions disagree; ";
      break;
    }
  }

  check.validity = true;
  const Value uniform = uniform_value(inputs);
  if (uniform >= 0 && decided >= 0 && decided != uniform) {
    check.validity = false;
    detail << "validity violated (all inputs " << uniform << ", decided "
           << decided << "); ";
  }

  check.strong_validity = true;
  if (decided >= 0) {
    bool found = false;
    for (const Value x : inputs) {
      if (x == decided) found = true;
    }
    if (!found) {
      check.strong_validity = false;
      detail << "strong validity violated (decided " << decided
             << " is no process's input); ";
    }
  }

  check.detail = detail.str();
  return check;
}

}  // namespace topocon
