// Hand-written consensus for the two-process lossy link over {<-, ->}
// (the CGP-solvable pair [8]) -- the classic one-round rule:
//
//   if you received the other process's round-1 message, decide its input;
//   otherwise decide your own.
//
// Exactly one direction is delivered per round, so exactly one process
// hears the other: the hearer adopts the silent process's input, the
// silent process keeps its own -- agreement in one round. This is the
// human-readable counterpart of the decision table the checker extracts
// (tests verify both make identical decisions on every admissible run),
// and a baseline for the universal algorithm's generality.
#pragma once

#include <optional>
#include <vector>

#include "runtime/simulator.hpp"

namespace topocon {

class PairHeardAlgorithm {
 public:
  struct State {
    ProcessId pid = 0;
    Value input = 0;
    std::optional<Value> decided;
  };
  using Message = Value;

  State init(ProcessId p, Value input) const { return State{p, input, {}}; }

  Message message(const State& state) const { return state.input; }

  void step(State& state, int round,
            const std::vector<std::optional<Message>>& received) const {
    if (round != 1 || state.decided.has_value()) return;
    const std::size_t other = state.pid == 0 ? 1 : 0;
    state.decided =
        received[other].has_value() ? *received[other] : state.input;
  }

  std::optional<Value> decision(const State& state) const {
    return state.decided;
  }
};

}  // namespace topocon
