// Execution tracing: run an algorithm while recording, per round, the
// communication graph, per-process knowledge (reach masks), and decision
// events; render the trace as a round-by-round text timeline. Debugging
// and teaching aid used by the examples.
#pragma once

#include <sstream>
#include <string>
#include <vector>

#include "ptg/reach.hpp"
#include "runtime/simulator.hpp"

namespace topocon {

struct RoundTrace {
  int round = 0;
  std::string graph;                    // edge list
  ReachVector reach;                    // knowledge after the round
  std::vector<int> decided_this_round;  // process ids
  std::vector<Value> decision_values;   // parallel to decided_this_round
};

struct ExecutionTrace {
  RunPrefix prefix;
  ConsensusOutcome outcome;
  std::vector<RoundTrace> rounds;

  std::string to_string() const {
    std::ostringstream out;
    out << "inputs: " << prefix.to_string() << "\n";
    for (const RoundTrace& r : rounds) {
      out << "round " << r.round << "  " << r.graph << "  knows:";
      for (std::size_t q = 0; q < r.reach.size(); ++q) {
        out << " p" << q + 1 << "={";
        NodeMask rest = r.reach[q];
        bool first = true;
        for (int p = 0; rest != 0; ++p, rest >>= 1) {
          if (rest & 1u) {
            if (!first) out << ',';
            out << p + 1;
            first = false;
          }
        }
        out << "}";
      }
      for (std::size_t i = 0; i < r.decided_this_round.size(); ++i) {
        out << "  [p" << r.decided_this_round[i] + 1 << " decides "
            << r.decision_values[i] << "]";
      }
      out << "\n";
    }
    return out.str();
  }
};

/// Simulates with tracing. Produces the same outcome as simulate()
/// (checked by tests) plus the per-round timeline.
template <class Algo>
ExecutionTrace trace_execution(const Algo& algo, const RunPrefix& prefix) {
  ExecutionTrace trace;
  trace.prefix = prefix;
  trace.outcome = simulate(algo, prefix);

  ReachVector reach = initial_reach(prefix.num_processes());
  for (int t = 1; t <= prefix.length(); ++t) {
    const Digraph& g = prefix.graphs[static_cast<std::size_t>(t - 1)];
    reach = advance_reach(reach, g);
    RoundTrace round;
    round.round = t;
    round.graph = g.to_string();
    round.reach = reach;
    for (std::size_t p = 0; p < trace.outcome.decisions.size(); ++p) {
      if (trace.outcome.decision_round[p] == t) {
        round.decided_this_round.push_back(static_cast<int>(p));
        round.decision_values.push_back(*trace.outcome.decisions[p]);
      }
    }
    trace.rounds.push_back(std::move(round));
  }
  return trace;
}

}  // namespace topocon
