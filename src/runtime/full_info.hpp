// The full-information protocol: every process relays its entire causal
// past each round. With views hash-consed by ViewInterner, a local state is
// a single ViewId and a message is the sender's ViewId -- the compiled form
// of "forward your whole view" that the paper's universal algorithm
// (Theorem 5.5) builds on.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "ptg/view_intern.hpp"
#include "runtime/simulator.hpp"

namespace topocon {

class FullInfoAlgorithm {
 public:
  struct State {
    ProcessId pid = 0;
    ViewId view = -1;
  };
  using Message = ViewId;

  /// The interner is shared and extended during simulation.
  explicit FullInfoAlgorithm(std::shared_ptr<ViewInterner> interner)
      : interner_(std::move(interner)) {}

  State init(ProcessId p, Value input) const {
    return State{p, interner_->base(p, input)};
  }

  Message message(const State& state) const { return state.view; }

  void step(State& state, int round,
            const std::vector<std::optional<Message>>& received) const {
    (void)round;
    NodeMask mask = 0;
    std::vector<ViewId> senders;
    for (std::size_t s = 0; s < received.size(); ++s) {
      if (received[s].has_value()) {
        mask |= NodeMask{1} << s;
        senders.push_back(*received[s]);
      }
    }
    state.view = interner_->step(state.pid, mask, senders);
  }

  std::optional<Value> decision(const State&) const { return std::nullopt; }

  const std::shared_ptr<ViewInterner>& interner() const { return interner_; }

 private:
  std::shared_ptr<ViewInterner> interner_;
};

}  // namespace topocon
