// Consensus under the eventually-stabilizing VSSC adversary (Section 6.3,
// [6, 23]): decide on the minimum input of a verified vertex-stable root
// component.
//
// Every process runs full information over *structured* knowledge: which
// input values it has learned, and which per-round in-neighbourhoods of the
// process-time graph it has learned (its own are observed directly; others
// arrive by message merging). From the known in-masks a process can
// *verify* that a set S was the root component of every round in a window:
// S must be strongly connected under the known edges and no known member
// may have an in-edge from outside S; since every graph of the VSSC
// alphabet is rooted (unique root component), a verified root is the true
// root.
//
// Decision rule: decide min{ x_s : s in S } for the first verified stable
// window of length >= `window` (= 2n by default) whose members' inputs are
// all known.
//
// Correctness requires the adversary to guarantee (as the library's
// VsscAdversary sampler does, mirroring the "short-lived stability
// elsewhere" regime of [23]):
//  (a) some stable window of length >= 3n occurs (termination: during the
//      guaranteed window every (s, t) node of root members floods to all
//      processes within n-1 rounds, so everyone verifies a 2n-sub-window
//      and knows the members' inputs before the window ends), and
//  (b) no other window reaches length 2n (agreement: all verified 2n-
//      windows are sub-windows of the guaranteed one, hence share S and
//      the decision value).
// Both conditions, and the resulting T/A/V, are exercised by property
// tests; bench E8 sweeps the stability parameter.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.hpp"
#include "ptg/prefix.hpp"
#include "runtime/simulator.hpp"

namespace topocon {

/// Mergeable causal knowledge: learned inputs and learned per-round
/// in-neighbourhoods of the process-time graph.
struct VsscKnowledge {
  std::vector<Value> inputs;          // -1 = unknown
  std::vector<std::vector<int>> inmasks;  // [t-1][p] = mask or -1

  void ensure_rounds(int rounds);
  void merge(const VsscKnowledge& other);
};

class VsscConsensus {
 public:
  struct State {
    ProcessId pid = 0;
    VsscKnowledge knowledge;
    std::optional<Value> decided;
  };
  using Message = VsscKnowledge;

  /// n = number of processes; window = required verified stability
  /// (default 2n, matching the guarantees above).
  explicit VsscConsensus(int n, int window = -1);

  State init(ProcessId p, Value input) const;
  Message message(const State& state) const { return state.knowledge; }
  void step(State& state, int round,
            const std::vector<std::optional<Message>>& received) const;
  std::optional<Value> decision(const State& state) const {
    return state.decided;
  }

  int window() const { return window_; }

 private:
  /// The verified root component of round t (1-based) given current
  /// knowledge, or 0 if none is verifiable yet.
  NodeMask verified_root(const VsscKnowledge& k, int t) const;

  void maybe_decide(State& state) const;

  int n_;
  int window_;
};

}  // namespace topocon
