// Synchronous lock-step round simulator (paper, Section 2).
//
// Rounds proceed in send-receive-compute order: every process broadcasts
// one message per round; the round's communication graph decides delivery
// (q receives p's message iff (p, q) is an edge); then every process makes
// a deterministic state transition on its received messages.
//
// Algorithms plug in through a compile-time concept:
//
//   struct Algo {
//     using State = ...;     // local process state
//     using Message = ...;   // broadcast payload
//     State init(ProcessId p, Value input) const;
//     Message message(const State&) const;                  // send phase
//     void step(State&, int round,
//               const std::vector<std::optional<Message>>& received) const;
//     std::optional<Value> decision(const State&) const;    // after compute
//   };
//
// `received[s]` is engaged iff the round graph delivers s -> p; the
// self-loop invariant guarantees received[p] is always engaged for p.
#pragma once

#include <optional>
#include <vector>

#include "ptg/prefix.hpp"

namespace topocon {

/// Outcome of simulating one algorithm over one run prefix.
struct ConsensusOutcome {
  std::vector<std::optional<Value>> decisions;  // per process
  std::vector<int> decision_round;              // per process; -1 undecided
  int rounds = 0;

  bool all_decided() const {
    for (const auto& d : decisions) {
      if (!d.has_value()) return false;
    }
    return !decisions.empty();
  }

  /// Latest decision round, or -1 if someone is undecided.
  int last_decision_round() const {
    int last = -1;
    for (std::size_t p = 0; p < decisions.size(); ++p) {
      if (!decisions[p].has_value()) return -1;
      if (decision_round[p] > last) last = decision_round[p];
    }
    return last;
  }
};

/// Runs `algo` for prefix.length() rounds under the prefix's graphs.
template <class Algo>
ConsensusOutcome simulate(const Algo& algo, const RunPrefix& prefix) {
  const int n = prefix.num_processes();
  std::vector<typename Algo::State> states;
  states.reserve(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    states.push_back(algo.init(p, prefix.inputs[static_cast<std::size_t>(p)]));
  }

  ConsensusOutcome outcome;
  outcome.decisions.assign(static_cast<std::size_t>(n), std::nullopt);
  outcome.decision_round.assign(static_cast<std::size_t>(n), -1);
  outcome.rounds = prefix.length();

  auto record = [&](int round) {
    for (int p = 0; p < n; ++p) {
      const auto pi = static_cast<std::size_t>(p);
      if (outcome.decisions[pi].has_value()) continue;
      if (auto v = algo.decision(states[pi]); v.has_value()) {
        outcome.decisions[pi] = v;
        outcome.decision_round[pi] = round;
      }
    }
  };
  record(0);

  for (int t = 1; t <= prefix.length(); ++t) {
    const Digraph& g = prefix.graphs[static_cast<std::size_t>(t - 1)];
    std::vector<typename Algo::Message> sent;
    sent.reserve(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      sent.push_back(algo.message(states[static_cast<std::size_t>(p)]));
    }
    for (int q = 0; q < n; ++q) {
      std::vector<std::optional<typename Algo::Message>> received(
          static_cast<std::size_t>(n));
      NodeMask senders = g.in_mask(q);
      for (int s = 0; s < n; ++s) {
        if (mask_contains(senders, s)) {
          received[static_cast<std::size_t>(s)] =
              sent[static_cast<std::size_t>(s)];
        }
      }
      algo.step(states[static_cast<std::size_t>(q)], t, received);
    }
    record(t);
  }
  return outcome;
}

}  // namespace topocon
