#include "runtime/sweep/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <ostream>

#include "runtime/sweep/parallel_solver.hpp"
#include "runtime/sweep/thread_pool.hpp"
#include "telemetry/trace.hpp"

namespace topocon::sweep {

namespace {

/// Components above this count are aggregated in JSON to keep documents
/// bounded; the elision is recorded explicitly (components_elided).
constexpr std::size_t kMaxJsonComponents = 64;

std::atomic<int> g_default_threads{0};

void write_telemetry_counters(JsonWriter& writer,
                              const telemetry::TelemetryCounters& counters) {
  writer.key("telemetry");
  writer.begin_object();
  writer.member("states_expanded", counters.states_expanded);
  writer.member("state_dedup_hits", counters.state_dedup_hits);
  writer.member("states_committed", counters.states_committed);
  writer.member("pending_views", counters.pending_views);
  writer.member("views_interned", counters.views_interned);
  writer.member("chunks_expanded", counters.chunks_expanded);
  writer.member("dense_view_chunks", counters.dense_view_chunks);
  writer.member("dense_state_chunks", counters.dense_state_chunks);
  writer.member("wordseq_rehashes", counters.wordseq_rehashes);
  writer.member("levels_committed", counters.levels_committed);
  writer.member("budget_early_aborts", counters.budget_early_aborts);
  writer.member("frontier_high_water", counters.frontier_high_water);
  writer.end_object();
}

void write_depth_stats(JsonWriter& writer, const DepthStats& stats) {
  writer.begin_object();
  writer.member("depth", stats.depth);
  writer.member("leaf_classes", stats.num_leaf_classes);
  writer.member("components", stats.num_components);
  writer.member("merged", stats.merged_components);
  writer.member("separated", stats.separated);
  writer.member("valent_broadcastable", stats.valent_broadcastable);
  writer.member("strong_assignable", stats.strong_assignable);
  writer.member("interner_views", stats.interner_views);
  writer.end_object();
}

}  // namespace

void write_job_record_json(JsonWriter& writer, const JobRecord& record) {
  writer.begin_object();
  writer.member("family", record.family);
  writer.member("label", record.label);
  writer.member("n", record.n);
  writer.member("kind", to_string(record.kind));
  if (record.kind == JobKind::kSolvability) {
    writer.member("verdict", record.verdict);
    writer.member("certified_depth", record.certified_depth);
    writer.member("closure_only", record.closure_only);
    writer.key("per_depth");
    writer.begin_array();
    for (const DepthStats& stats : record.per_depth) {
      write_depth_stats(writer, stats);
    }
    writer.end_array();
    if (record.final_analysis.has_value()) {
      const JobRecord::FinalAnalysis& final_analysis =
          *record.final_analysis;
      writer.key("final_analysis");
      writer.begin_object();
      writer.member("final_depth", final_analysis.depth);
      writer.member("leaf_classes", final_analysis.leaf_classes);
      writer.member("num_components", final_analysis.num_components);
      if (final_analysis.components.size() <
          final_analysis.num_components) {
        writer.member("components_elided",
                      final_analysis.num_components -
                          final_analysis.components.size());
      }
      writer.key("components");
      writer.begin_array();
      for (const ComponentInfo& info : final_analysis.components) {
        writer.begin_object();
        writer.member("leaves", static_cast<std::int64_t>(info.num_leaves));
        writer.member("valence_mask",
                      static_cast<std::int64_t>(info.valence_mask));
        writer.member("common_broadcast",
                      static_cast<std::int64_t>(info.common_broadcast));
        writer.member("broadcasters",
                      static_cast<std::int64_t>(info.broadcasters));
        writer.member("common_input_values",
                      static_cast<std::int64_t>(info.common_input_values));
        writer.member("assigned_value", info.assigned_value);
        writer.member("assigned_value_strong", info.assigned_value_strong);
        writer.end_object();
      }
      writer.end_array();
      writer.end_object();
    }
    if (record.table.has_value()) {
      writer.key("table");
      writer.begin_object();
      writer.member("entries", record.table->entries);
      writer.member("worst_decision_round",
                    record.table->worst_decision_round);
      writer.end_object();
    }
  } else if (record.kind == JobKind::kDecisionTable) {
    writer.member("verdict", record.verdict);
    writer.member("certified_depth", record.certified_depth);
    writer.member("closure_only", record.closure_only);
    if (record.table.has_value()) {
      writer.key("table");
      writer.begin_object();
      writer.member("entries", record.table->entries);
      writer.member("worst_decision_round",
                    record.table->worst_decision_round);
      writer.end_object();
      writer.key("round_entries");
      writer.begin_array();
      for (const std::uint64_t entries : record.round_entries) {
        writer.value(entries);
      }
      writer.end_array();
    }
  } else {
    writer.key("series");
    writer.begin_array();
    for (const DepthStats& stats : record.series) {
      write_depth_stats(writer, stats);
    }
    writer.end_array();
  }
  if (record.telemetry.has_value()) {
    write_telemetry_counters(writer, *record.telemetry);
  }
  writer.end_object();
}

JobRecord summarize(const JobOutcome& outcome, bool include_telemetry) {
  JobRecord record;
  record.family = outcome.family;
  record.label = outcome.label;
  record.n = outcome.n;
  record.kind = outcome.kind;
  if (include_telemetry && outcome.telemetry.has_value()) {
    record.telemetry = outcome.telemetry->counters;
  }
  // Only the kind's own fields are filled, so a record is exactly the
  // JSON-visible projection and survives a write/parse round trip.
  if (outcome.kind == JobKind::kDepthSeries) {
    record.series = outcome.series;
    return record;
  }
  record.verdict = to_string(outcome.result.verdict);
  record.certified_depth = outcome.result.certified_depth;
  record.closure_only = outcome.result.closure_only;
  if (outcome.result.table.has_value()) {
    JobRecord::Table table;
    table.entries =
        static_cast<std::uint64_t>(outcome.result.table->size());
    table.worst_decision_round =
        outcome.result.table->worst_case_decision_round();
    record.table = table;
  }
  if (outcome.kind == JobKind::kDecisionTable) {
    // The extraction record is about the certificate artifact: the table
    // shape, not the per-depth search statistics.
    if (outcome.result.table.has_value()) {
      for (const std::size_t entries :
           outcome.result.table->entries_per_round()) {
        record.round_entries.push_back(
            static_cast<std::uint64_t>(entries));
      }
    }
    return record;
  }
  record.per_depth = outcome.result.per_depth;
  if (outcome.result.analysis.has_value()) {
    const DepthAnalysis& analysis = *outcome.result.analysis;
    JobRecord::FinalAnalysis final_analysis;
    final_analysis.depth = analysis.depth;
    final_analysis.leaf_classes =
        static_cast<std::uint64_t>(analysis.leaves().size());
    final_analysis.num_components =
        static_cast<std::uint64_t>(analysis.components.size());
    final_analysis.components.assign(
        analysis.components.begin(),
        analysis.components.begin() +
            static_cast<std::ptrdiff_t>(std::min(analysis.components.size(),
                                                 kMaxJsonComponents)));
    record.final_analysis = std::move(final_analysis);
  }
  return record;
}

const char* to_string(JobKind kind) {
  switch (kind) {
    case JobKind::kSolvability: return "solvability";
    case JobKind::kDepthSeries: return "depth_series";
    case JobKind::kDecisionTable: return "decision_table";
  }
  return "?";
}

std::optional<JobKind> parse_job_kind(std::string_view name) {
  if (name == "solvability") return JobKind::kSolvability;
  if (name == "depth_series") return JobKind::kDepthSeries;
  if (name == "decision_table") return JobKind::kDecisionTable;
  return std::nullopt;
}

void set_default_num_threads(int threads) {
  g_default_threads.store(threads, std::memory_order_relaxed);
}

int default_num_threads() {
  return resolve_threads(g_default_threads.load(std::memory_order_relaxed));
}

std::vector<JobOutcome> run_sweep_on(const SweepSpec& spec, ThreadPool& pool,
                                     const SweepHooks& hooks) {
  std::vector<JobOutcome> outcomes(spec.jobs.size());
  std::mutex hook_mutex;

  const bool want_telemetry = hooks.collect_telemetry ||
                              hooks.trace != nullptr ||
                              static_cast<bool>(hooks.on_job_telemetry);

  pool.parallel_for(spec.jobs.size(), [&](std::size_t j) {
    const SweepJob& job = spec.jobs[j];
    JobOutcome& outcome = outcomes[j];
    outcome.family = job.point.family;
    outcome.label = family_point_label(job.point);
    outcome.n = job.point.n;
    outcome.kind = job.kind;
    // One registry per job, on the job's stack: counter flushes arrive
    // concurrently from the commit parallel_for, snapshot() only after
    // the solver returned.
    std::optional<telemetry::MetricsRegistry> registry;
    if (want_telemetry) registry.emplace(hooks.trace);
    if (hooks.on_job_start) {
      const std::lock_guard<std::mutex> lock(hook_mutex);
      hooks.on_job_start(j, job);
    }
    DepthProgressFn on_depth;
    if (hooks.on_depth) {
      on_depth = [&, j](const DepthStats& stats) {
        const std::lock_guard<std::mutex> lock(hook_mutex);
        hooks.on_depth(j, stats);
      };
    }
    ShardingOptions sharding;
    if (hooks.on_chunk) {
      sharding.on_chunk = [&, j](const ChunkProgress& progress) {
        const std::lock_guard<std::mutex> lock(hook_mutex);
        hooks.on_chunk(j, progress);
      };
    }
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t span_start =
        hooks.trace != nullptr ? hooks.trace->now_us() : 0;
    const std::unique_ptr<MessageAdversary> adversary =
        make_family_adversary(job.point);
    if (job.kind == JobKind::kSolvability ||
        job.kind == JobKind::kDecisionTable) {
      SolvabilityOptions solve = job.solve;
      if (job.kind == JobKind::kDecisionTable) solve.build_table = true;
      if (registry.has_value()) solve.metrics = &*registry;
      if (hooks.spill.has_value()) solve.spill = *hooks.spill;
      outcome.result = parallel_check_solvability(*adversary, solve, pool,
                                                  on_depth, sharding);
    } else {
      auto interner = std::make_shared<ViewInterner>();
      for (int depth = 1; depth <= job.analysis.depth; ++depth) {
        AnalysisOptions per_depth = job.analysis;
        per_depth.depth = depth;
        per_depth.keep_levels = false;
        if (registry.has_value()) per_depth.metrics = &*registry;
        if (hooks.spill.has_value()) per_depth.spill = *hooks.spill;
        const DepthAnalysis analysis = parallel_analyze_depth(
            *adversary, per_depth, pool, interner, sharding);
        if (analysis.truncated) break;
        DepthStats stats;
        stats.depth = depth;
        stats.num_leaf_classes = analysis.leaves().size();
        stats.num_components = static_cast<int>(analysis.components.size());
        stats.merged_components = analysis.merged_components;
        stats.separated = analysis.valence_separated;
        stats.valent_broadcastable = analysis.valent_broadcastable;
        stats.strong_assignable = analysis.strong_assignable;
        stats.interner_views = interner->size();
        outcome.series.push_back(stats);
        if (on_depth) on_depth(stats);
      }
    }
    outcome.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (hooks.trace != nullptr) {
      hooks.trace->complete(
          outcome.label, "job", span_start,
          hooks.trace->now_us() - span_start,
          {telemetry::TraceArg::str("family", outcome.family),
           telemetry::TraceArg::str("kind", to_string(outcome.kind)),
           telemetry::TraceArg::num("job", j)});
    }
    if (registry.has_value()) {
      registry->set_wall_seconds(outcome.wall_seconds);
      outcome.telemetry = registry->snapshot();
      if (hooks.on_job_telemetry) {
        const std::lock_guard<std::mutex> lock(hook_mutex);
        hooks.on_job_telemetry(j, *outcome.telemetry);
      }
    }
    if (hooks.on_job_done || spec.on_job_done) {
      const std::lock_guard<std::mutex> lock(hook_mutex);
      if (hooks.on_job_done) hooks.on_job_done(j, outcome);
      if (spec.on_job_done) spec.on_job_done(j, outcome);
    }
  });

  // Jobs ran on pool threads; re-home their interners so the caller can
  // replay tables and analyses directly.
  for (JobOutcome& outcome : outcomes) {
    if (outcome.result.analysis.has_value() &&
        outcome.result.analysis->interner) {
      outcome.result.analysis->interner->attach_to_current_thread();
    }
    if (outcome.result.table.has_value()) {
      outcome.result.table->interner()->attach_to_current_thread();
    }
  }
  return outcomes;
}

void write_sweep_json(JsonWriter& writer, const std::string& name,
                      const std::vector<JobRecord>& records) {
  writer.begin_object();
  writer.member("name", name);
  writer.key("jobs");
  writer.begin_array();
  for (const JobRecord& record : records) {
    write_job_record_json(writer, record);
  }
  writer.end_array();
  writer.end_object();
}

void write_sweep_json(JsonWriter& writer, const std::string& name,
                      const std::vector<JobOutcome>& outcomes) {
  std::vector<JobRecord> records;
  records.reserve(outcomes.size());
  for (const JobOutcome& outcome : outcomes) {
    records.push_back(summarize(outcome));
  }
  write_sweep_json(writer, name, records);
}

SweepRegistry& SweepRegistry::instance() {
  static SweepRegistry registry;
  return registry;
}

void SweepRegistry::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = enabled;
}

bool SweepRegistry::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void SweepRegistry::record(const std::string& name,
                           const std::vector<JobOutcome>& outcomes) {
  // Summarize outside the lock: only the JSON-visible aggregates are
  // retained, never the analysis levels or decision tables.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!enabled_) return;
  }
  std::vector<JobRecord> records;
  records.reserve(outcomes.size());
  for (const JobOutcome& outcome : outcomes) {
    records.push_back(summarize(outcome));
  }
  record(name, std::move(records));
}

void SweepRegistry::record(const std::string& name,
                           std::vector<JobRecord> records) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;
  sweeps_.emplace_back(name, std::move(records));
}

bool SweepRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sweeps_.empty();
}

void SweepRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  sweeps_.clear();
}

void SweepRegistry::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter writer(out);
  writer.begin_object();
  writer.member("schema", "topocon-sweep-v1");
  writer.key("sweeps");
  writer.begin_array();
  for (const auto& [name, records] : sweeps_) {
    write_sweep_json(writer, name, records);
  }
  writer.end_array();
  writer.end_object();
  out << '\n';
}

}  // namespace topocon::sweep
