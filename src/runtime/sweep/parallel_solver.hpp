// Chunk-sharded parallel depth-t epsilon-approximation.
//
// Work distribution is two-dimensional. The prefix space splits exactly
// into one independent subtree per input vector ("root": the dedup key
// contains every view and views contain their own inputs, so classes of
// different input vectors never merge); each root is one FrontierEngine
// with a private ViewInterner. Below the root, every BFS level is cut
// into fixed-size chunks of at most `chunk_states` frontier states
// (FrontierEngine::partition), and the pool executes the resulting
// (root, chunk) work items of one level concurrently -- so a single
// heavy root no longer serializes a level: its chunks spread over all
// threads. Chunk expansion is interner-free (pending views, see
// core/frontier.hpp), which is what makes concurrent chunks of ONE root
// safe without any locking.
//
// Determinism contract: chunk ids are deterministic (frontier order) and
// every level is merged in (root, chunk) order -- first discovery wins,
// multiplicities sum -- before the pending views are interned in merged
// order. The merged level (states, links, multiplicities, and even the
// per-root interner's id assignment order) is therefore identical to a
// serial scan of the whole level, for EVERY chunk size and EVERY thread
// count: `chunk_states` is an execution knob like the thread count and
// can never change a result, a verdict, or a byte of serialized output
// (the tests/golden/ artifacts are diffed with chunking forced to its
// finest setting by ctest). After the last level, shard results are
// merged in root order into one DepthAnalysis, so every field is
// bit-identical to the serial analyze_depth() output. The only internal
// difference is the private numbering of interned view ids, which the
// deterministic absorb() merge keeps consistent; no observable field
// depends on id values, only on id equality.
//
// Truncation: a level overflows iff the sum of its per-root pending
// sizes exceeds max_states -- the same condition the serial BFS checks.
// The check runs BEFORE the level is interned (merge is separated from
// commit exactly for this), so an overflowing level leaves every
// interner as if it had never been attempted and verdicts (including
// kResourceLimit) agree with the serial path bit for bit.
#pragma once

#include <cstddef>
#include <memory>

#include "core/frontier.hpp"
#include "core/solvability.hpp"
#include "runtime/sweep/thread_pool.hpp"

namespace topocon::sweep {

/// Execution-layer sharding knobs. Like the thread count, these can
/// never change any result (see the determinism contract above).
struct ShardingOptions {
  /// Maximum frontier states per expansion chunk; heavy roots split into
  /// ceil(frontier / chunk_states) chunks per level. 0 = the process
  /// default (default_chunk_states()). 1 = finest sharding (one chunk
  /// per state), used by the determinism tests.
  std::size_t chunk_states = 0;
  /// Streaming per-chunk progress (core/frontier.hpp). Invoked under an
  /// internal mutex, possibly from pool threads, once per completed
  /// chunk; purely observational.
  ChunkProgressFn on_chunk;
};

/// Process-wide default for ShardingOptions::chunk_states == 0: set from
/// the CLI (`topocon --chunk=N`); 0 (the initial value) resolves to the
/// built-in kDefaultChunkStates.
inline constexpr std::size_t kDefaultChunkStates = 4096;
void set_default_chunk_states(std::size_t chunk_states);
std::size_t default_chunk_states();

/// Parallel analyze_depth(): one frontier engine per input vector,
/// expanded chunk by chunk on the pool. If `interner` is null a fresh
/// one is created; passing one allows sharing ids across depths (as the
/// serial signature does).
DepthAnalysis parallel_analyze_depth(
    const MessageAdversary& adversary, const AnalysisOptions& options,
    ThreadPool& pool, std::shared_ptr<ViewInterner> interner = nullptr,
    const ShardingOptions& sharding = {});

/// Parallel check_solvability(): the iterative-deepening driver with each
/// depth's expansion chunk-sharded over the pool. Same contract and same
/// results as the serial checker. Interners inside the returned result
/// are re-homed to the calling thread, so tables and analyses can be used
/// directly by the caller. `on_depth` streams each completed depth's
/// statistics (see DepthProgressFn); it runs on the calling thread of
/// this function and never changes the result. `sharding.on_chunk`
/// additionally streams per-chunk progress inside every depth.
SolvabilityResult parallel_check_solvability(
    const MessageAdversary& adversary, const SolvabilityOptions& options,
    ThreadPool& pool, const DepthProgressFn& on_depth = {},
    const ShardingOptions& sharding = {});

}  // namespace topocon::sweep
