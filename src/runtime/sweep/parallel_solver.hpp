// Root-sharded parallel depth-t epsilon-approximation.
//
// Exactness of the sharding (see also the frontier API notes in
// core/epsilon_approx.hpp): the BFS dedup key contains every process view
// and views contain their own inputs, so prefix classes of different
// input vectors never merge. The depth-t prefix space is therefore the
// disjoint union of one independent subtree per input vector ("root"),
// and the serial BFS -- which scans parents in order -- enumerates every
// level in root-major order. Expanding each root in its own shard with a
// private ViewInterner and concatenating the shard levels in root order
// hence reproduces the serial analysis *exactly*: same classes, same
// order, same multiplicities, same components and flags. The only
// difference is the private numbering of interned view ids, which the
// deterministic absorb() merge keeps consistent but not serial-identical;
// no observable field depends on id values, only on id equality.
//
// Determinism: shard results are merged in root order after all shards
// complete, so every field of the returned DepthAnalysis is bit-identical
// for every thread count (including 1) and equal to the serial
// analyze_depth() output.
//
// Truncation: a level overflows iff the sum of its shard sizes exceeds
// max_states -- the same condition the serial BFS checks -- so verdicts
// (including kResourceLimit) agree with the serial path. Each shard also
// aborts on its own if it alone exceeds the budget, which implies the
// total does.
#pragma once

#include <memory>

#include "core/solvability.hpp"
#include "runtime/sweep/thread_pool.hpp"

namespace topocon::sweep {

/// Parallel analyze_depth(): one shard per input vector, expanded on the
/// pool. If `interner` is null a fresh one is created; passing one allows
/// sharing ids across depths (as the serial signature does).
DepthAnalysis parallel_analyze_depth(
    const MessageAdversary& adversary, const AnalysisOptions& options,
    ThreadPool& pool, std::shared_ptr<ViewInterner> interner = nullptr);

/// Parallel check_solvability(): the iterative-deepening driver with each
/// depth's expansion sharded over the pool. Same contract and same
/// results as the serial checker. Interners inside the returned result
/// are re-homed to the calling thread, so tables and analyses can be used
/// directly by the caller. `on_depth` streams each completed depth's
/// statistics (see DepthProgressFn); it runs on the calling thread of
/// this function and never changes the result.
SolvabilityResult parallel_check_solvability(
    const MessageAdversary& adversary, const SolvabilityOptions& options,
    ThreadPool& pool, const DepthProgressFn& on_depth = {});

}  // namespace topocon::sweep
