#include "runtime/sweep/thread_pool.hpp"

#include <algorithm>

namespace topocon::sweep {

int resolve_threads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) : num_threads_(resolve_threads(threads)) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

bool ThreadPool::run_one(std::unique_lock<std::mutex>& lock) {
  for (Batch* batch : batches_) {
    if (batch->next >= batch->count) continue;
    const std::size_t index = batch->next++;
    lock.unlock();
    std::exception_ptr error;
    try {
      (*batch->fn)(index);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !batch->error) batch->error = error;
    if (++batch->done == batch->count) {
      batches_.erase(std::find(batches_.begin(), batches_.end(), batch));
      cv_.notify_all();
    }
    return true;
  }
  return false;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (run_one(lock)) continue;
    if (stop_) return;
    cv_.wait(lock);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  Batch batch;
  batch.fn = &fn;
  batch.count = count;
  std::unique_lock<std::mutex> lock(mutex_);
  batches_.push_back(&batch);
  cv_.notify_all();
  // Participate until our batch is fully claimed, then help other batches
  // (nested parallel_for calls land there) while its tail runs elsewhere.
  while (batch.done < batch.count) {
    if (run_one(lock)) continue;
    cv_.wait(lock);
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace topocon::sweep
