// The parallel adversary-sweep engine.
//
// A SweepSpec is a batch of independent solver jobs -- adversary family x
// n x parameter grid -- executed concurrently on one work-helping thread
// pool: jobs run in parallel, and inside every job the depth-t prefix
// expansion is root-sharded over the same pool (parallel_solver.hpp).
// Results come back in job order with every field independent of the
// thread count, so sweeps are reproducible artifacts: running with 1 or
// 64 threads yields byte-identical JSON.
//
// A SweepJob is PURE DATA -- a FamilyPoint plus solver options. There is
// no factory closure anywhere in a spec: the engine constructs each job's
// adversary inside the worker via make_family_adversary, so jobs share no
// mutable state, any job list can be serialized (api/query.hpp is the
// typed serialization surface), and a checkpoint can carry the full job
// description instead of re-deriving it.
//
// This header is the execution layer. The operator-facing surface is the
// api facade (src/api/): api::Session owns the pool and the outcome
// history for its lifetime and runs api::Query values -- the typed
// tagged-union view of SweepJob -- through run_sweep_on below. (The
// pre-facade free functions run_sweep / solvability_job / series_job
// went through a deprecation cycle and are gone; phrase work as queries.)
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "adversary/family.hpp"
#include "core/frontier.hpp"
#include "core/solvability.hpp"
#include "runtime/sweep/json.hpp"
#include "telemetry/metrics.hpp"

namespace topocon::sweep {

class ThreadPool;

enum class JobKind {
  /// Iterative-deepening solvability check (parallel_check_solvability).
  kSolvability,
  /// Depth-by-depth epsilon-approximation series for depths 1..max,
  /// continuing past separation (the E4/E6/E7 convergence curves).
  kDepthSeries,
  /// Solvability check that additionally extracts the universal-algorithm
  /// decision table (Theorem 5.5) and records its shape: total entries,
  /// worst-case decision round, and the per-round entry counts.
  kDecisionTable,
};

const char* to_string(JobKind kind);
/// Inverse of to_string(JobKind); nullopt for unknown names.
std::optional<JobKind> parse_job_kind(std::string_view name);

struct SweepJob {
  /// Which adversary: the engine builds it per job inside the worker
  /// (make_family_adversary), so jobs are pure, serializable data.
  FamilyPoint point;
  JobKind kind = JobKind::kSolvability;
  /// Solver options for kSolvability and kDecisionTable jobs (the latter
  /// forces build_table on).
  SolvabilityOptions solve;
  /// Per-depth options for kDepthSeries jobs; `analysis.depth` is the
  /// maximum depth of the series (the series stops early on truncation).
  AnalysisOptions analysis;
};

struct JobOutcome {
  std::string family;
  std::string label;
  int n = 2;
  JobKind kind = JobKind::kSolvability;
  /// Filled for kSolvability and kDecisionTable jobs.
  SolvabilityResult result;
  /// Filled for kDepthSeries jobs: one entry per completed depth.
  std::vector<DepthStats> series;
  /// Wall-clock seconds of this job (informational; never serialized --
  /// it is the one thread-count-dependent field).
  double wall_seconds = 0;
  /// Per-job telemetry snapshot; present only when the sweep ran with a
  /// telemetry surface enabled (SweepHooks). The counters inside are
  /// deterministic across thread counts; the timings are not.
  std::optional<telemetry::JobTelemetry> telemetry;
};

struct SweepSpec {
  /// Name under which the outcomes are recorded (JSON "name" field).
  std::string name;
  std::vector<SweepJob> jobs;
  /// Incremental-checkpoint hook: invoked as each job finishes, with its
  /// index into `jobs` and the finished outcome. Calls are serialized by
  /// an engine-internal mutex but arrive in completion order, which
  /// depends on the thread count -- checkpoint consumers must therefore
  /// key on the job index, never on arrival order. Superseded by
  /// SweepHooks::on_job_done (api::Observer); kept for compatibility and
  /// honored alongside it.
  std::function<void(std::size_t, const JobOutcome&)> on_job_done;
};

/// Streaming hooks into a running sweep -- the engine-level form of
/// api::Observer. All are invoked under one engine-internal mutex (so
/// implementations need no locking of their own) but in completion
/// order: only on_depth/on_chunk calls of the SAME job are ordered
/// relative to each other, and a job's on_job_done follows all its other
/// calls. Consumers must key on the job index, never on arrival order.
struct SweepHooks {
  std::function<void(std::size_t, const SweepJob&)> on_job_start;
  std::function<void(std::size_t, const DepthStats&)> on_depth;
  /// Per-chunk expansion progress inside a job's current depth pass
  /// (core/frontier.hpp) -- the finest-grained signal, intended for
  /// progress display. Counters only; chunk completion order is
  /// thread-count-dependent.
  std::function<void(std::size_t, const ChunkProgress&)> on_chunk;
  /// Fired once per job with its telemetry snapshot, before the job's
  /// on_job_done. Setting it (or `collect_telemetry`, or `trace`) makes
  /// every job run with a MetricsRegistry and fill
  /// JobOutcome::telemetry; otherwise collection is off at zero cost.
  std::function<void(std::size_t, const telemetry::JobTelemetry&)>
      on_job_telemetry;
  std::function<void(std::size_t, const JobOutcome&)> on_job_done;
  /// Collect telemetry into JobOutcome::telemetry even without an
  /// on_job_telemetry consumer (e.g. for the JSON "telemetry" section).
  bool collect_telemetry = false;
  /// Out-of-core spill knobs injected into every job's options (like
  /// `metrics`), overriding whatever the job carries. nullopt = leave
  /// the job's own spill options (and thus the process default) alone.
  /// An execution detail: artifacts are byte-identical either way.
  std::optional<SpillOptions> spill = std::nullopt;
  /// Chrome-trace span writer shared by every job of the sweep
  /// (telemetry/trace.hpp); must outlive the run. Null = no tracing.
  telemetry::TraceWriter* trace = nullptr;
};

/// Runs all jobs of the spec on an existing pool. Outcomes are indexed
/// like spec.jobs; interners inside the outcomes are re-homed to the
/// calling thread. Does NOT record into the global registry -- callers
/// that retain outcomes do so themselves (api::Session records into its
/// own history). Inside every job the expansion is chunk-sharded with
/// the process-default chunk size (parallel_solver.hpp).
std::vector<JobOutcome> run_sweep_on(const SweepSpec& spec, ThreadPool& pool,
                                     const SweepHooks& hooks = {});

/// Default thread count for api::Session and the examples: set from
/// --sweep-threads; 0 (the initial value) resolves to
/// hardware_concurrency().
void set_default_num_threads(int threads);
int default_num_threads();

/// What the registry retains (and the JSON contains) per job: the
/// aggregate statistics only, never the heavyweight analysis levels or
/// decision tables a JobOutcome may carry.
struct JobRecord {
  std::string family;
  std::string label;
  int n = 2;
  JobKind kind = JobKind::kSolvability;
  std::string verdict;
  int certified_depth = -1;
  bool closure_only = false;
  std::vector<DepthStats> per_depth;  // kSolvability
  std::vector<DepthStats> series;     // kDepthSeries
  struct FinalAnalysis {
    int depth = 0;
    std::uint64_t leaf_classes = 0;
    /// Total component count; `components` holds at most the JSON cap.
    std::uint64_t num_components = 0;
    std::vector<ComponentInfo> components;

    friend bool operator==(const FinalAnalysis&,
                           const FinalAnalysis&) = default;
  };
  std::optional<FinalAnalysis> final_analysis;
  struct Table {
    std::uint64_t entries = 0;
    int worst_decision_round = 0;

    friend bool operator==(const Table&, const Table&) = default;
  };
  std::optional<Table> table;
  /// kDecisionTable only: entries becoming applicable per round (index =
  /// round, sums to table->entries). Empty when no table was extracted.
  std::vector<std::uint64_t> round_entries;
  /// The optional JSON "telemetry" section: the job's deterministic
  /// counters. Present only when summarize() ran with include_telemetry
  /// (off by default so existing artifacts stay byte-identical).
  std::optional<telemetry::TelemetryCounters> telemetry;

  /// Field-wise equality; with json_reader this makes "record -> JSON ->
  /// record" round-trips checkable.
  friend bool operator==(const JobRecord&, const JobRecord&) = default;
};

/// Extracts the JSON-visible aggregates of an outcome. When
/// include_telemetry is set and the outcome carries a telemetry snapshot,
/// its counters (only -- never the timings, which are thread-count-
/// dependent) become the record's "telemetry" section.
JobRecord summarize(const JobOutcome& outcome,
                    bool include_telemetry = false);

/// Serializes one record as a JSON object (the "jobs" array element
/// format; also the checkpoint line format, see checkpoint.hpp).
void write_job_record_json(JsonWriter& writer, const JobRecord& record);

/// Serializes records/outcomes as one {"name": ..., "jobs": [...]} object.
void write_sweep_json(JsonWriter& writer, const std::string& name,
                      const std::vector<JobRecord>& records);
void write_sweep_json(JsonWriter& writer, const std::string& name,
                      const std::vector<JobOutcome>& outcomes);

/// Process-global accumulation of every recorded sweep, in run order.
/// Disabled by default so sweeps cost no retained memory; enabled by
/// consume_sweep_args when --sweep-json is requested (or explicitly via
/// set_enabled). While disabled, record() is a no-op.
class SweepRegistry {
 public:
  static SweepRegistry& instance();

  void set_enabled(bool enabled);
  bool enabled() const;

  void record(const std::string& name, const std::vector<JobOutcome>& outcomes);
  void record(const std::string& name, std::vector<JobRecord> records);
  bool empty() const;
  void clear();

  /// {"schema": "topocon-sweep-v1", "sweeps": [...]} of everything
  /// recorded so far.
  void write_json(std::ostream& out) const;

 private:
  mutable std::mutex mutex_;
  bool enabled_ = false;
  std::vector<std::pair<std::string, std::vector<JobRecord>>> sweeps_;
};

}  // namespace topocon::sweep
