// The parallel adversary-sweep engine.
//
// A SweepSpec is a batch of independent solver jobs -- adversary family x
// n x parameter grid -- executed concurrently on one work-helping thread
// pool: jobs run in parallel, and inside every job the depth-t prefix
// expansion is root-sharded over the same pool (parallel_solver.hpp).
// Results come back in job order with every field independent of the
// thread count, so sweeps are reproducible artifacts: running with 1 or
// 64 threads yields byte-identical JSON.
//
// The engine replaces the per-family driver loops that used to be
// copy-pasted across bench/bench_*.cpp and the examples: a bench now
// declares its grid, calls run_sweep, and renders its table from the
// outcomes. Every run_sweep invocation also records its outcomes in a
// process-global registry which the bench binaries serialize with
// --sweep-json=PATH (thread count is set with --sweep-threads=N), giving
// the bench trajectory a machine-readable format.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "adversary/family.hpp"
#include "core/solvability.hpp"
#include "runtime/sweep/json.hpp"

namespace topocon::sweep {

enum class JobKind {
  /// Iterative-deepening solvability check (parallel_check_solvability).
  kSolvability,
  /// Depth-by-depth epsilon-approximation series for depths 1..max,
  /// continuing past separation (the E4/E6/E7 convergence curves).
  kDepthSeries,
};

const char* to_string(JobKind kind);
/// Inverse of to_string(JobKind); nullopt for unknown names.
std::optional<JobKind> parse_job_kind(std::string_view name);

struct SweepJob {
  std::string family;
  std::string label;
  int n = 2;
  /// Factory invoked inside the worker; adversaries are built per job so
  /// jobs share no mutable state.
  std::function<std::unique_ptr<MessageAdversary>()> make;
  JobKind kind = JobKind::kSolvability;
  /// Solver options for kSolvability jobs.
  SolvabilityOptions solve;
  /// Per-depth options for kDepthSeries jobs; `analysis.depth` is the
  /// maximum depth of the series (the series stops early on truncation).
  AnalysisOptions analysis;
};

/// A named grid point turned into a solvability job.
SweepJob solvability_job(const FamilyPoint& point,
                         const SolvabilityOptions& options = {});

/// A named grid point turned into a depth-series job.
SweepJob series_job(const FamilyPoint& point, const AnalysisOptions& options);

struct JobOutcome {
  std::string family;
  std::string label;
  int n = 2;
  JobKind kind = JobKind::kSolvability;
  /// Filled for kSolvability jobs.
  SolvabilityResult result;
  /// Filled for kDepthSeries jobs: one entry per completed depth.
  std::vector<DepthStats> series;
  /// Wall-clock seconds of this job (informational; never serialized --
  /// it is the one thread-count-dependent field).
  double wall_seconds = 0;
};

struct SweepSpec {
  /// Name under which the outcomes are recorded (JSON "name" field).
  std::string name;
  std::vector<SweepJob> jobs;
  /// 0 = default_num_threads().
  int num_threads = 0;
  /// Record outcomes in the global SweepRegistry (for --sweep-json).
  bool record = true;
  /// Incremental-checkpoint hook: invoked as each job finishes, with its
  /// index into `jobs` and the finished outcome. Calls are serialized by
  /// an engine-internal mutex but arrive in completion order, which
  /// depends on the thread count -- checkpoint consumers must therefore
  /// key on the job index, never on arrival order.
  std::function<void(std::size_t, const JobOutcome&)> on_job_done;
};

/// Runs all jobs of the spec. Outcomes are indexed like spec.jobs;
/// interners inside the outcomes are re-homed to the calling thread.
std::vector<JobOutcome> run_sweep(const SweepSpec& spec);

/// Default thread count for SweepSpec.num_threads == 0 and for examples:
/// set from --sweep-threads; 0 (the initial value) resolves to
/// hardware_concurrency().
void set_default_num_threads(int threads);
int default_num_threads();

/// What the registry retains (and the JSON contains) per job: the
/// aggregate statistics only, never the heavyweight analysis levels or
/// decision tables a JobOutcome may carry.
struct JobRecord {
  std::string family;
  std::string label;
  int n = 2;
  JobKind kind = JobKind::kSolvability;
  std::string verdict;
  int certified_depth = -1;
  bool closure_only = false;
  std::vector<DepthStats> per_depth;  // kSolvability
  std::vector<DepthStats> series;     // kDepthSeries
  struct FinalAnalysis {
    int depth = 0;
    std::uint64_t leaf_classes = 0;
    /// Total component count; `components` holds at most the JSON cap.
    std::uint64_t num_components = 0;
    std::vector<ComponentInfo> components;

    friend bool operator==(const FinalAnalysis&,
                           const FinalAnalysis&) = default;
  };
  std::optional<FinalAnalysis> final_analysis;
  struct Table {
    std::uint64_t entries = 0;
    int worst_decision_round = 0;

    friend bool operator==(const Table&, const Table&) = default;
  };
  std::optional<Table> table;

  /// Field-wise equality; with json_reader this makes "record -> JSON ->
  /// record" round-trips checkable.
  friend bool operator==(const JobRecord&, const JobRecord&) = default;
};

/// Extracts the JSON-visible aggregates of an outcome.
JobRecord summarize(const JobOutcome& outcome);

/// Serializes one record as a JSON object (the "jobs" array element
/// format; also the checkpoint line format, see checkpoint.hpp).
void write_job_record_json(JsonWriter& writer, const JobRecord& record);

/// Serializes records/outcomes as one {"name": ..., "jobs": [...]} object.
void write_sweep_json(JsonWriter& writer, const std::string& name,
                      const std::vector<JobRecord>& records);
void write_sweep_json(JsonWriter& writer, const std::string& name,
                      const std::vector<JobOutcome>& outcomes);

/// Process-global accumulation of every recorded sweep, in run order.
/// Disabled by default so sweeps cost no retained memory; enabled by
/// consume_sweep_args when --sweep-json is requested (or explicitly via
/// set_enabled). While disabled, record() is a no-op.
class SweepRegistry {
 public:
  static SweepRegistry& instance();

  void set_enabled(bool enabled);
  bool enabled() const;

  void record(const std::string& name, const std::vector<JobOutcome>& outcomes);
  bool empty() const;
  void clear();

  /// {"schema": "topocon-sweep-v1", "sweeps": [...]} of everything
  /// recorded so far.
  void write_json(std::ostream& out) const;

 private:
  mutable std::mutex mutex_;
  bool enabled_ = false;
  std::vector<std::pair<std::string, std::vector<JobRecord>>> sweeps_;
};

}  // namespace topocon::sweep
