#include "runtime/sweep/cli.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "core/frontier.hpp"
#include "core/spill.hpp"
#include "runtime/sweep/engine.hpp"

namespace topocon::sweep {

std::optional<std::string_view> flag_value(std::string_view arg,
                                           std::string_view flag) {
  if (arg.size() < flag.size() + 3 || !arg.starts_with("--")) {
    return std::nullopt;
  }
  arg.remove_prefix(2);
  if (!arg.starts_with(flag) || arg[flag.size()] != '=') return std::nullopt;
  return arg.substr(flag.size() + 1);
}

int parse_int_value(std::string_view flag, std::string_view value) {
  int parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    throw std::invalid_argument("--" + std::string(flag) +
                                " expects an integer, got '" +
                                std::string(value) + "'");
  }
  return parsed;
}

std::uint64_t parse_uint64_value(std::string_view flag,
                                 std::string_view value) {
  std::uint64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    throw std::invalid_argument("--" + std::string(flag) +
                                " expects an unsigned integer, got '" +
                                std::string(value) + "'");
  }
  return parsed;
}

SweepCliOptions consume_sweep_args(int* argc, char** argv) {
  SweepCliOptions options;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view arg = argv[i];
    if (const auto threads = flag_value(arg, "sweep-threads")) {
      // Callers (bench mains, examples) have no try block around argv
      // consumption; fail the process cleanly instead of letting the
      // invalid_argument escape to std::terminate.
      try {
        set_default_num_threads(parse_int_value("sweep-threads", *threads));
      } catch (const std::invalid_argument& error) {
        std::fprintf(stderr, "sweep: %s\n", error.what());
        std::exit(2);
      }
      continue;
    }
    if (const auto mode = flag_value(arg, "sweep-frontier")) {
      const auto parsed = frontier_mode_from_name(*mode);
      if (!parsed.has_value()) {
        std::fprintf(stderr,
                     "sweep: --sweep-frontier expects 'auto', 'dense', or "
                     "'sparse', got '%s'\n",
                     std::string(*mode).c_str());
        std::exit(2);
      }
      set_default_frontier_mode(*parsed);
      continue;
    }
    if (const auto budget = flag_value(arg, "sweep-spill-budget-mb")) {
      try {
        SpillOptions spill = default_spill();
        spill.budget_bytes = spill_budget_mb_to_bytes(
            parse_uint64_value("sweep-spill-budget-mb", *budget));
        set_default_spill(spill);
      } catch (const std::invalid_argument& error) {
        std::fprintf(stderr, "sweep: %s\n", error.what());
        std::exit(2);
      }
      continue;
    }
    if (const auto dir = flag_value(arg, "sweep-spill-dir")) {
      SpillOptions spill = default_spill();
      spill.dir = std::string(*dir);
      set_default_spill(spill);
      continue;
    }
    if (const auto path = flag_value(arg, "sweep-json")) {
      options.json_path = *path;
      SweepRegistry::instance().set_enabled(true);
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
  return options;
}

bool flush_sweep_json(const SweepCliOptions& options) {
  if (options.json_path.empty()) return true;
  std::ofstream out(options.json_path);
  if (!out) {
    std::fprintf(stderr, "sweep: cannot write %s\n",
                 options.json_path.c_str());
    return false;
  }
  SweepRegistry::instance().write_json(out);
  return static_cast<bool>(out);
}

}  // namespace topocon::sweep
