#include "runtime/sweep/bench_compare.hpp"

#include <sstream>
#include <stdexcept>

#include "runtime/sweep/json.hpp"

namespace topocon::sweep {

namespace {

/// google-benchmark time_unit -> nanoseconds multiplier.
double unit_to_ns(const std::string& unit) {
  if (unit == "ns") return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  throw std::runtime_error("bench json: unknown time_unit \"" + unit + "\"");
}

}  // namespace

BenchBaseline parse_bench_baseline(std::string_view text) {
  const JsonValue root = JsonReader::parse(text);
  const std::string& schema = root.at("schema").as_string();
  if (schema != kBenchBaselineSchema) {
    throw std::runtime_error("bench baseline: unknown schema \"" + schema +
                             "\"");
  }
  BenchBaseline baseline;
  baseline.default_tolerance_pct =
      root.at("default_tolerance_pct").as_uint();
  const JsonValue& benchmarks = root.at("benchmarks");
  if (!benchmarks.is_array()) {
    throw std::runtime_error("bench baseline: \"benchmarks\" is not an array");
  }
  for (const JsonValue& entry : benchmarks.elements) {
    BenchBaselineEntry parsed;
    parsed.name = entry.at("name").as_string();
    parsed.real_time_ns = entry.at("real_time_ns").as_uint();
    if (const JsonValue* tolerance = entry.find("tolerance_pct")) {
      parsed.tolerance_pct = tolerance->as_uint();
    }
    if (const JsonValue* rss = entry.find("peak_rss_bytes")) {
      parsed.peak_rss_bytes = rss->as_uint();
    }
    if (const JsonValue* tolerance = entry.find("rss_tolerance_pct")) {
      parsed.rss_tolerance_pct = tolerance->as_uint();
    }
    baseline.benchmarks.push_back(std::move(parsed));
  }
  return baseline;
}

std::string write_bench_baseline(const BenchBaseline& baseline) {
  std::ostringstream out;
  JsonWriter writer(out);
  writer.begin_object();
  writer.member("schema", kBenchBaselineSchema);
  writer.member("default_tolerance_pct", baseline.default_tolerance_pct);
  writer.key("benchmarks");
  writer.begin_array();
  for (const BenchBaselineEntry& entry : baseline.benchmarks) {
    writer.begin_object();
    writer.member("name", entry.name);
    writer.member("real_time_ns", entry.real_time_ns);
    if (entry.tolerance_pct.has_value()) {
      writer.member("tolerance_pct", *entry.tolerance_pct);
    }
    if (entry.peak_rss_bytes.has_value()) {
      writer.member("peak_rss_bytes", *entry.peak_rss_bytes);
    }
    if (entry.rss_tolerance_pct.has_value()) {
      writer.member("rss_tolerance_pct", *entry.rss_tolerance_pct);
    }
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();
  out << '\n';
  return out.str();
}

std::vector<BenchMeasurement> parse_benchmark_results(std::string_view text) {
  const JsonValue root =
      JsonReader::parse(text, JsonNumbers::kAllowFloats);
  const JsonValue& benchmarks = root.at("benchmarks");
  if (!benchmarks.is_array()) {
    throw std::runtime_error("bench json: \"benchmarks\" is not an array");
  }
  std::vector<BenchMeasurement> measurements;
  for (const JsonValue& entry : benchmarks.elements) {
    // Aggregate rows (mean/median/stddev of repetitions) would skew the
    // minimum; older google-benchmark versions omit run_type entirely,
    // in which case every row is an iteration.
    if (const JsonValue* run_type = entry.find("run_type")) {
      if (run_type->as_string() != "iteration") continue;
    }
    const std::string& name = entry.at("name").as_string();
    const double ns =
        entry.at("real_time").as_double() *
        unit_to_ns(entry.at("time_unit").as_string());
    // Counters appear as plain top-level members of the row; peak RSS
    // merges as the maximum across repetitions (it is a high-water
    // mark, so the minimum rule used for times would understate it).
    double rss = 0;
    if (const JsonValue* counter = entry.find("peak_rss_bytes")) {
      rss = counter->as_double();
    }
    bool merged = false;
    for (BenchMeasurement& seen : measurements) {
      if (seen.name == name) {
        if (ns < seen.real_time_ns) seen.real_time_ns = ns;
        if (rss > seen.peak_rss_bytes) seen.peak_rss_bytes = rss;
        merged = true;
        break;
      }
    }
    if (!merged) {
      measurements.push_back(BenchMeasurement{name, ns, rss});
    }
  }
  return measurements;
}

BenchCompareReport compare_bench_results(
    const BenchBaseline& baseline,
    const std::vector<BenchMeasurement>& measurements) {
  BenchCompareReport report;
  report.rows.reserve(baseline.benchmarks.size());
  for (const BenchBaselineEntry& entry : baseline.benchmarks) {
    BenchComparison row;
    row.name = entry.name;
    row.baseline_ns = entry.real_time_ns;
    row.tolerance_pct =
        entry.tolerance_pct.value_or(baseline.default_tolerance_pct);
    const BenchMeasurement* found = nullptr;
    for (const BenchMeasurement& measurement : measurements) {
      if (measurement.name == entry.name) {
        found = &measurement;
        break;
      }
    }
    if (entry.peak_rss_bytes.has_value()) {
      row.baseline_rss = *entry.peak_rss_bytes;
      row.rss_tolerance_pct = entry.rss_tolerance_pct.value_or(
          baseline.default_tolerance_pct);
    }
    if (found == nullptr) {
      row.missing = true;
      row.rss_missing = entry.peak_rss_bytes.has_value();
    } else {
      row.current_ns = found->real_time_ns;
      const double limit =
          static_cast<double>(row.baseline_ns) *
          (1.0 + static_cast<double>(row.tolerance_pct) / 100.0);
      row.regressed = row.current_ns > limit;
      if (entry.peak_rss_bytes.has_value()) {
        row.current_rss = found->peak_rss_bytes;
        if (found->peak_rss_bytes <= 0) {
          row.rss_missing = true;  // the counter silently vanished
        } else {
          const double rss_limit =
              static_cast<double>(row.baseline_rss) *
              (1.0 + static_cast<double>(row.rss_tolerance_pct) / 100.0);
          row.rss_regressed = row.current_rss > rss_limit;
        }
      }
    }
    report.rows.push_back(std::move(row));
  }
  return report;
}

}  // namespace topocon::sweep
