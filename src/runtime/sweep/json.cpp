#include "runtime/sweep/json.hpp"

#include <cstdio>

namespace topocon::sweep {

std::string json_escape(std::string_view text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

void JsonWriter::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!scopes_.empty()) {
    if (!first_.back()) out_ << ',';
    first_.back() = false;
    out_ << '\n';
    indent();
  }
}

void JsonWriter::indent() {
  for (std::size_t i = 0; i < scopes_.size(); ++i) out_ << "  ";
}

void JsonWriter::begin_object() {
  separate();
  out_ << '{';
  scopes_.push_back(Scope::kObject);
  first_.push_back(true);
}

void JsonWriter::end_object() {
  const bool empty = first_.back();
  scopes_.pop_back();
  first_.pop_back();
  if (!empty) {
    out_ << '\n';
    indent();
  }
  out_ << '}';
}

void JsonWriter::begin_array() {
  separate();
  out_ << '[';
  scopes_.push_back(Scope::kArray);
  first_.push_back(true);
}

void JsonWriter::end_array() {
  const bool empty = first_.back();
  scopes_.pop_back();
  first_.pop_back();
  if (!empty) {
    out_ << '\n';
    indent();
  }
  out_ << ']';
}

void JsonWriter::key(std::string_view name) {
  separate();
  out_ << '"' << json_escape(name) << "\": ";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view text) {
  separate();
  out_ << '"' << json_escape(text) << '"';
}

void JsonWriter::value(bool flag) {
  separate();
  out_ << (flag ? "true" : "false");
}

void JsonWriter::value(std::int64_t number) {
  separate();
  out_ << number;
}

void JsonWriter::value(std::uint64_t number) {
  separate();
  out_ << number;
}

}  // namespace topocon::sweep
