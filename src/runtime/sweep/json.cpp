#include "runtime/sweep/json.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace topocon::sweep {

std::string json_escape(std::string_view text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

void JsonWriter::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!scopes_.empty()) {
    if (!first_.back()) out_ << ',';
    first_.back() = false;
    if (style_ == JsonStyle::kPretty) {
      out_ << '\n';
      indent();
    }
  }
}

void JsonWriter::indent() {
  for (std::size_t i = 0; i < scopes_.size(); ++i) out_ << "  ";
}

void JsonWriter::begin_object() {
  separate();
  out_ << '{';
  scopes_.push_back(Scope::kObject);
  first_.push_back(true);
}

void JsonWriter::end_object() {
  const bool empty = first_.back();
  scopes_.pop_back();
  first_.pop_back();
  if (!empty && style_ == JsonStyle::kPretty) {
    out_ << '\n';
    indent();
  }
  out_ << '}';
}

void JsonWriter::begin_array() {
  separate();
  out_ << '[';
  scopes_.push_back(Scope::kArray);
  first_.push_back(true);
}

void JsonWriter::end_array() {
  const bool empty = first_.back();
  scopes_.pop_back();
  first_.pop_back();
  if (!empty && style_ == JsonStyle::kPretty) {
    out_ << '\n';
    indent();
  }
  out_ << ']';
}

void JsonWriter::key(std::string_view name) {
  separate();
  out_ << '"' << json_escape(name)
       << (style_ == JsonStyle::kPretty ? "\": " : "\":");
  pending_key_ = true;
}

void JsonWriter::value(std::string_view text) {
  separate();
  out_ << '"' << json_escape(text) << '"';
}

void JsonWriter::value(bool flag) {
  separate();
  out_ << (flag ? "true" : "false");
}

void JsonWriter::value(std::int64_t number) {
  separate();
  out_ << number;
}

void JsonWriter::value(std::uint64_t number) {
  separate();
  out_ << number;
}

// ---- JsonValue -----------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) {
    throw std::runtime_error("json: missing member \"" + std::string(key) +
                             "\"");
  }
  return *value;
}

bool JsonValue::as_bool() const {
  if (kind != Kind::kBool) throw std::runtime_error("json: expected bool");
  return boolean;
}

std::int64_t JsonValue::as_int() const {
  if (kind == Kind::kInt) return int_number;
  if (kind == Kind::kUint &&
      uint_number <= static_cast<std::uint64_t>(INT64_MAX)) {
    return static_cast<std::int64_t>(uint_number);
  }
  throw std::runtime_error("json: expected integer");
}

std::uint64_t JsonValue::as_uint() const {
  if (kind == Kind::kUint) return uint_number;
  if (kind == Kind::kInt && int_number >= 0) {
    return static_cast<std::uint64_t>(int_number);
  }
  throw std::runtime_error("json: expected non-negative integer");
}

double JsonValue::as_double() const {
  if (kind == Kind::kDouble) return double_number;
  if (kind == Kind::kInt) return static_cast<double>(int_number);
  if (kind == Kind::kUint) return static_cast<double>(uint_number);
  throw std::runtime_error("json: expected number");
}

const std::string& JsonValue::as_string() const {
  if (kind != Kind::kString) throw std::runtime_error("json: expected string");
  return string;
}

void write_json_value(JsonWriter& writer, const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      throw std::runtime_error("json: cannot serialize null");
    case JsonValue::Kind::kBool:
      writer.value(value.boolean);
      return;
    case JsonValue::Kind::kInt:
      writer.value(value.int_number);
      return;
    case JsonValue::Kind::kUint:
      writer.value(value.uint_number);
      return;
    case JsonValue::Kind::kDouble:
      // Floats exist only in float-mode parses of foreign documents; the
      // canonical writer has no deterministic formatting for them.
      throw std::runtime_error("json: cannot serialize floating point");
    case JsonValue::Kind::kString:
      writer.value(value.string);
      return;
    case JsonValue::Kind::kArray:
      writer.begin_array();
      for (const JsonValue& element : value.elements) {
        write_json_value(writer, element);
      }
      writer.end_array();
      return;
    case JsonValue::Kind::kObject:
      writer.begin_object();
      for (const auto& [name, member] : value.members) {
        writer.key(name);
        write_json_value(writer, member);
      }
      writer.end_object();
      return;
  }
}

// ---- JsonReader ----------------------------------------------------------

namespace {
/// Containers deeper than this are rejected; the sweep schema nests a
/// handful of levels, so the bound only guards against stack exhaustion.
constexpr int kMaxNesting = 64;
}  // namespace

JsonValue JsonReader::parse(std::string_view text, JsonNumbers numbers) {
  JsonReader reader(text, numbers);
  reader.skip_whitespace();
  JsonValue value = reader.parse_value(0);
  reader.skip_whitespace();
  if (reader.pos_ != text.size()) {
    reader.fail("trailing characters after document");
  }
  return value;
}

void JsonReader::fail(const std::string& message) const {
  throw std::runtime_error("json: " + message + " at offset " +
                           std::to_string(pos_));
}

void JsonReader::skip_whitespace() {
  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
    ++pos_;
  }
}

char JsonReader::peek() const {
  return pos_ < text_.size() ? text_[pos_] : '\0';
}

char JsonReader::take() {
  if (pos_ >= text_.size()) fail("unexpected end of document");
  return text_[pos_++];
}

void JsonReader::expect(char c) {
  if (take() != c) {
    --pos_;
    fail(std::string("expected '") + c + "'");
  }
}

bool JsonReader::consume_literal(std::string_view literal) {
  if (text_.substr(pos_, literal.size()) != literal) return false;
  pos_ += literal.size();
  return true;
}

JsonValue JsonReader::parse_value(int depth) {
  if (depth > kMaxNesting) fail("nesting too deep");
  skip_whitespace();
  JsonValue value;
  switch (peek()) {
    case '{': {
      take();
      value.kind = JsonValue::Kind::kObject;
      skip_whitespace();
      if (peek() == '}') {
        take();
        return value;
      }
      while (true) {
        skip_whitespace();
        std::string name = parse_string();
        skip_whitespace();
        expect(':');
        value.members.emplace_back(std::move(name), parse_value(depth + 1));
        skip_whitespace();
        const char c = take();
        if (c == '}') return value;
        if (c != ',') {
          --pos_;
          fail("expected ',' or '}'");
        }
      }
    }
    case '[': {
      take();
      value.kind = JsonValue::Kind::kArray;
      skip_whitespace();
      if (peek() == ']') {
        take();
        return value;
      }
      while (true) {
        value.elements.push_back(parse_value(depth + 1));
        skip_whitespace();
        const char c = take();
        if (c == ']') return value;
        if (c != ',') {
          --pos_;
          fail("expected ',' or ']'");
        }
      }
    }
    case '"':
      value.kind = JsonValue::Kind::kString;
      value.string = parse_string();
      return value;
    case 't':
      if (!consume_literal("true")) fail("invalid literal");
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    case 'f':
      if (!consume_literal("false")) fail("invalid literal");
      value.kind = JsonValue::Kind::kBool;
      value.boolean = false;
      return value;
    case 'n':
      if (!consume_literal("null")) fail("invalid literal");
      return value;
    default:
      return parse_number();
  }
}

std::string JsonReader::parse_string() {
  expect('"');
  std::string result;
  while (true) {
    const char c = take();
    if (c == '"') return result;
    if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
    if (c != '\\') {
      result += c;
      continue;
    }
    const char escape = take();
    switch (escape) {
      case '"': result += '"'; break;
      case '\\': result += '\\'; break;
      case '/': result += '/'; break;
      case 'b': result += '\b'; break;
      case 'f': result += '\f'; break;
      case 'n': result += '\n'; break;
      case 'r': result += '\r'; break;
      case 't': result += '\t'; break;
      case 'u': {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = take();
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            --pos_;
            fail("invalid \\u escape");
          }
        }
        if (code >= 0xD800 && code <= 0xDFFF) {
          fail("surrogate \\u escapes are unsupported");
        }
        // UTF-8 encode (the writer only ever emits control characters
        // here, but accept the full basic plane).
        if (code < 0x80) {
          result += static_cast<char>(code);
        } else if (code < 0x800) {
          result += static_cast<char>(0xC0 | (code >> 6));
          result += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          result += static_cast<char>(0xE0 | (code >> 12));
          result += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          result += static_cast<char>(0x80 | (code & 0x3F));
        }
        break;
      }
      default:
        --pos_;
        fail("invalid escape");
    }
  }
}

JsonValue JsonReader::parse_number() {
  const std::size_t start = pos_;
  const bool negative = peek() == '-';
  if (negative) take();
  if (peek() < '0' || peek() > '9') fail("invalid value");
  while (peek() >= '0' && peek() <= '9') take();
  if (peek() == '.' || peek() == 'e' || peek() == 'E') {
    if (numbers_ == JsonNumbers::kIntegersOnly) {
      fail("floating-point numbers are unsupported");
    }
    if (peek() == '.') {
      take();
      if (peek() < '0' || peek() > '9') fail("invalid fraction");
      while (peek() >= '0' && peek() <= '9') take();
    }
    if (peek() == 'e' || peek() == 'E') {
      take();
      if (peek() == '+' || peek() == '-') take();
      if (peek() < '0' || peek() > '9') fail("invalid exponent");
      while (peek() >= '0' && peek() <= '9') take();
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kDouble;
    const auto [ptr, ec] = std::from_chars(
        text_.data() + start, text_.data() + pos_, value.double_number);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      fail("number out of range");
    }
    return value;
  }
  const char* first = text_.data() + start;
  const char* last = text_.data() + pos_;
  JsonValue value;
  if (negative) {
    value.kind = JsonValue::Kind::kInt;
    const auto [ptr, ec] = std::from_chars(first, last, value.int_number);
    if (ec != std::errc() || ptr != last) fail("integer out of range");
  } else {
    value.kind = JsonValue::Kind::kUint;
    const auto [ptr, ec] = std::from_chars(first, last, value.uint_number);
    if (ec != std::errc() || ptr != last) fail("integer out of range");
  }
  return value;
}

}  // namespace topocon::sweep
