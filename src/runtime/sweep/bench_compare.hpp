// Bench regression gate: compare a google-benchmark JSON result file
// against a committed baseline (bench/baselines/*.json).
//
// The baseline is a topocon-authored document in the deterministic JSON
// subset (integers only, so it round-trips through JsonWriter):
//
//   {
//     "schema": "topocon-bench-baseline-v1",
//     "default_tolerance_pct": 300,
//     "benchmarks": [
//       {"name": "BM_CheckOmission/2/0", "real_time_ns": 12345},
//       {"name": "BM_CheckOmission/3/1", "real_time_ns": 678901,
//        "tolerance_pct": 500,
//        "peak_rss_bytes": 150000000, "rss_tolerance_pct": 200}
//     ]
//   }
//
// A row with "peak_rss_bytes" additionally gates the benchmark's
// "peak_rss_bytes" counter (bench/bench_common.hpp attaches getrusage
// max RSS): the MAXIMUM across repetitions is compared under
// rss_tolerance_pct (default_tolerance_pct when unset), and a baseline
// RSS bound whose counter is absent from the results fails the gate.
//
// The current side is google-benchmark's own --benchmark_format=json
// output, parsed in float mode (JsonNumbers::kAllowFloats). Per name the
// MINIMUM real_time across repetitions is compared (minimum, not mean:
// it is the best estimate of the true cost under CI noise); aggregate
// rows (run_type != "iteration") are skipped. A benchmark listed in the
// baseline but absent from the results is a failure -- a silently
// disappearing benchmark must not pass the gate -- while extra result
// rows are ignored, so the baseline can stay a curated subset.
//
// Tolerances are generous by design (hundreds of percent): the gate
// exists to catch order-of-magnitude regressions on shared CI runners,
// not single-digit drift.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace topocon::sweep {

inline constexpr std::string_view kBenchBaselineSchema =
    "topocon-bench-baseline-v1";

struct BenchBaselineEntry {
  std::string name;
  std::uint64_t real_time_ns = 0;
  /// Overrides BenchBaseline::default_tolerance_pct when set.
  std::optional<std::uint64_t> tolerance_pct;
  /// Peak resident set gate (the benchmark's "peak_rss_bytes" counter,
  /// see bench/bench_common.hpp). Unset = this row gates time only.
  std::optional<std::uint64_t> peak_rss_bytes;
  /// Overrides the default tolerance for the RSS comparison when set.
  std::optional<std::uint64_t> rss_tolerance_pct;
};

struct BenchBaseline {
  std::uint64_t default_tolerance_pct = 300;
  std::vector<BenchBaselineEntry> benchmarks;
};

/// One benchmark's minimum iteration time (and maximum reported peak
/// RSS, when the benchmark attaches the counter) from a results file.
struct BenchMeasurement {
  std::string name;
  double real_time_ns = 0;
  /// Maximum "peak_rss_bytes" counter across repetitions; 0 = the
  /// benchmark did not report one.
  double peak_rss_bytes = 0;
};

/// Outcome of one baseline row against the measurements.
struct BenchComparison {
  std::string name;
  std::uint64_t baseline_ns = 0;
  double current_ns = 0;      ///< 0 when missing
  std::uint64_t tolerance_pct = 0;
  bool missing = false;       ///< baseline row absent from the results
  bool regressed = false;     ///< current > baseline * (1 + tol/100)
  /// RSS leg, mirroring the time leg; all-zero when the baseline row
  /// does not gate RSS. A baseline RSS bound with no reported counter
  /// counts as rss_missing (a silently vanishing counter must not pass).
  std::uint64_t baseline_rss = 0;
  double current_rss = 0;
  std::uint64_t rss_tolerance_pct = 0;
  bool rss_missing = false;
  bool rss_regressed = false;
};

struct BenchCompareReport {
  std::vector<BenchComparison> rows;  ///< baseline order

  bool ok() const {
    for (const BenchComparison& row : rows) {
      if (row.missing || row.regressed) return false;
      if (row.rss_missing || row.rss_regressed) return false;
    }
    return true;
  }
};

/// Parses a baseline document. Throws std::runtime_error on malformed
/// input or an unknown schema.
BenchBaseline parse_bench_baseline(std::string_view text);

/// Serializes a baseline in the canonical (pretty, integer-only) style.
std::string write_bench_baseline(const BenchBaseline& baseline);

/// Extracts per-name minimum iteration times from google-benchmark JSON
/// (--benchmark_format=json / --benchmark_out). Throws std::runtime_error
/// on malformed input.
std::vector<BenchMeasurement> parse_benchmark_results(std::string_view text);

/// Compares every baseline row against the measurements (see the header
/// comment for the policy). Rows come back in baseline order.
BenchCompareReport compare_bench_results(
    const BenchBaseline& baseline,
    const std::vector<BenchMeasurement>& measurements);

}  // namespace topocon::sweep
