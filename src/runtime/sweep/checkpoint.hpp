// Incremental checkpointing for sweep runs, and the parsing side of the
// topocon-sweep-v1 schema.
//
// A checkpoint file is line-oriented JSON ("JSONL"): one compact header
// object followed by one compact {"job": index, "record": {...}} object
// per completed job, appended and flushed as jobs finish. Because every
// line is self-contained, a process killed mid-sweep leaves at worst one
// torn trailing line, which the reader detects and drops -- everything
// before it is recovered. Completion order depends on the thread count,
// so consumers key on the "job" index (the position in the expanded
// SweepSpec), never on line order; re-serializing the merged records in
// job order is what makes an interrupted-and-resumed sweep byte-identical
// to an uninterrupted one.
//
// The same reader also loads finalized topocon-sweep-v1 documents (the
// output of SweepRegistry::write_json and of `topocon run --json`) back
// into JobRecords -- the JSON-visible projection of JobOutcomes -- for
// rendering and round-trip tests.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "runtime/sweep/engine.hpp"
#include "runtime/sweep/json.hpp"

namespace topocon::sweep {

inline constexpr std::string_view kSweepSchema = "topocon-sweep-v1";
inline constexpr std::string_view kCheckpointSchema = "topocon-sweep-ckpt-v1";

/// First line of a checkpoint file: what sweep this is and how to rebuild
/// it. `meta` is an ordered string map for the producer's own use (the
/// topocon CLI stores the scenario name and grid overrides for display
/// and validation). `queries` carries the FULL job description -- one
/// serialized api::Query object per job, in job order (api::query_to_json
/// / api::query_from_json) -- so a resume rebuilds the exact job list
/// from the checkpoint itself instead of re-deriving it from a catalog
/// that may have changed. Checkpoints written before the api facade have
/// no "queries" member; readers fall back to meta-based reconstruction.
struct CheckpointHeader {
  std::string sweep_name;
  std::uint64_t num_jobs = 0;
  std::vector<std::pair<std::string, std::string>> meta;
  std::vector<JsonValue> queries;

  friend bool operator==(const CheckpointHeader&,
                         const CheckpointHeader&) = default;
};

/// Appends checkpoint lines to a stream, flushing after every line so a
/// kill loses at most the line being written.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::ostream& out) : out_(out) {}

  void write_header(const CheckpointHeader& header);
  void append(std::size_t job_index, const JobRecord& record);

 private:
  std::ostream& out_;
};

/// Everything recovered from a (possibly truncated) checkpoint file.
struct CheckpointState {
  CheckpointHeader header;
  /// (job index, record) in file order; indices are < header.num_jobs and
  /// unique (a later duplicate line for the same index wins).
  std::vector<std::pair<std::uint64_t, JobRecord>> completed;
  /// True iff the file ended in a torn line (interrupted mid-append).
  bool partial_tail = false;
};

/// True iff `text` begins with a checkpoint header line (as opposed to a
/// finalized sweep document or arbitrary junk).
bool looks_like_checkpoint(std::string_view text);

/// Parses a checkpoint file, dropping a torn trailing line. Throws
/// std::runtime_error on a malformed header or a corrupt interior line.
/// Resumers must not append blindly after a torn tail -- rewrite the
/// file from the recovered state first (the CLI does), or the torn bytes
/// corrupt the next line.
CheckpointState read_checkpoint(std::string_view text);
CheckpointState read_checkpoint(std::istream& in);

/// A parsed topocon-sweep-v1 document: (sweep name, records) in document
/// order.
struct SweepDocument {
  std::vector<std::pair<std::string, std::vector<JobRecord>>> sweeps;
};

/// Parses a finalized sweep document (schema topocon-sweep-v1). Throws
/// std::runtime_error on schema mismatch or malformed input.
SweepDocument read_sweep_document(std::string_view text);
SweepDocument read_sweep_document(std::istream& in);

/// Decodes one "jobs" array element (the write_job_record_json format).
JobRecord job_record_from_json(const JsonValue& value);

}  // namespace topocon::sweep
