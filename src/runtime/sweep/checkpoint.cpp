#include "runtime/sweep/checkpoint.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace topocon::sweep {

namespace {

DepthStats depth_stats_from_json(const JsonValue& value) {
  DepthStats stats;
  stats.depth = static_cast<int>(value.at("depth").as_int());
  stats.num_leaf_classes =
      static_cast<std::size_t>(value.at("leaf_classes").as_uint());
  stats.num_components = static_cast<int>(value.at("components").as_int());
  stats.merged_components = static_cast<int>(value.at("merged").as_int());
  stats.separated = value.at("separated").as_bool();
  stats.valent_broadcastable = value.at("valent_broadcastable").as_bool();
  stats.strong_assignable = value.at("strong_assignable").as_bool();
  stats.interner_views =
      static_cast<std::size_t>(value.at("interner_views").as_uint());
  return stats;
}

std::vector<DepthStats> depth_stats_array(const JsonValue& value) {
  if (!value.is_array()) {
    throw std::runtime_error("sweep json: expected stats array");
  }
  std::vector<DepthStats> stats;
  stats.reserve(value.elements.size());
  for (const JsonValue& element : value.elements) {
    stats.push_back(depth_stats_from_json(element));
  }
  return stats;
}

ComponentInfo component_from_json(const JsonValue& value) {
  ComponentInfo info;
  info.num_leaves = value.at("leaves").as_int();
  info.valence_mask =
      static_cast<std::uint32_t>(value.at("valence_mask").as_uint());
  info.common_broadcast =
      static_cast<NodeMask>(value.at("common_broadcast").as_uint());
  info.broadcasters =
      static_cast<NodeMask>(value.at("broadcasters").as_uint());
  info.common_input_values =
      static_cast<std::uint32_t>(value.at("common_input_values").as_uint());
  info.assigned_value =
      static_cast<Value>(value.at("assigned_value").as_int());
  info.assigned_value_strong =
      static_cast<Value>(value.at("assigned_value_strong").as_int());
  return info;
}

telemetry::TelemetryCounters telemetry_from_json(const JsonValue& value) {
  telemetry::TelemetryCounters counters;
  counters.states_expanded = value.at("states_expanded").as_uint();
  counters.state_dedup_hits = value.at("state_dedup_hits").as_uint();
  counters.states_committed = value.at("states_committed").as_uint();
  counters.pending_views = value.at("pending_views").as_uint();
  counters.views_interned = value.at("views_interned").as_uint();
  counters.chunks_expanded = value.at("chunks_expanded").as_uint();
  counters.dense_view_chunks = value.at("dense_view_chunks").as_uint();
  counters.dense_state_chunks = value.at("dense_state_chunks").as_uint();
  counters.wordseq_rehashes = value.at("wordseq_rehashes").as_uint();
  counters.levels_committed = value.at("levels_committed").as_uint();
  counters.budget_early_aborts = value.at("budget_early_aborts").as_uint();
  counters.frontier_high_water = value.at("frontier_high_water").as_uint();
  return counters;
}

void write_meta_compact(JsonWriter& writer, const CheckpointHeader& header) {
  writer.member("schema", kCheckpointSchema);
  writer.member("name", header.sweep_name);
  writer.member("num_jobs", header.num_jobs);
  writer.key("meta");
  writer.begin_object();
  for (const auto& [key, value] : header.meta) {
    writer.member(key, value);
  }
  writer.end_object();
  if (!header.queries.empty()) {
    writer.key("queries");
    writer.begin_array();
    for (const JsonValue& query : header.queries) {
      write_json_value(writer, query);
    }
    writer.end_array();
  }
}

}  // namespace

void CheckpointWriter::write_header(const CheckpointHeader& header) {
  JsonWriter writer(out_, JsonStyle::kCompact);
  writer.begin_object();
  write_meta_compact(writer, header);
  writer.end_object();
  out_ << '\n';
  out_.flush();
}

void CheckpointWriter::append(std::size_t job_index, const JobRecord& record) {
  JsonWriter writer(out_, JsonStyle::kCompact);
  writer.begin_object();
  writer.member("job", static_cast<std::uint64_t>(job_index));
  writer.key("record");
  write_job_record_json(writer, record);
  writer.end_object();
  out_ << '\n';
  out_.flush();
}

bool looks_like_checkpoint(std::string_view text) {
  const std::size_t newline = text.find('\n');
  const std::string_view first_line =
      newline == std::string_view::npos ? text : text.substr(0, newline);
  try {
    const JsonValue header = JsonReader::parse(first_line);
    const JsonValue* schema = header.find("schema");
    return schema != nullptr &&
           schema->kind == JsonValue::Kind::kString &&
           schema->string == kCheckpointSchema;
  } catch (const std::runtime_error&) {
    return false;
  }
}

CheckpointState read_checkpoint(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_checkpoint(buffer.str());
}

CheckpointState read_checkpoint(std::string_view text) {
  CheckpointState state;
  std::size_t line_start = 0;
  bool saw_header = false;
  // job index -> position in state.completed (last-wins for duplicates
  // without a linear scan per line).
  constexpr std::size_t kUnseen = static_cast<std::size_t>(-1);
  std::vector<std::size_t> slot;
  while (line_start < text.size()) {
    const std::size_t newline = text.find('\n', line_start);
    const bool terminated = newline != std::string::npos;
    const std::string_view line =
        terminated ? std::string_view(text).substr(line_start,
                                                   newline - line_start)
                   : std::string_view(text).substr(line_start);
    const bool is_last = !terminated || newline + 1 >= text.size();
    if (!line.empty()) {
      JsonValue value;
      try {
        value = JsonReader::parse(line);
      } catch (const std::runtime_error&) {
        // A torn trailing line is the expected signature of an
        // interrupted run; anything earlier is corruption.
        if (is_last && saw_header) {
          state.partial_tail = true;
          break;
        }
        throw;
      }
      // An unterminated last line parsed fine, but the writer always ends
      // lines with '\n' -- treat it as torn too (the record could still
      // be mid-write on a filesystem that flushed partially).
      if (!terminated && saw_header) {
        state.partial_tail = true;
        break;
      }
      if (!saw_header) {
        const JsonValue* schema = value.find("schema");
        if (schema == nullptr || schema->string != kCheckpointSchema) {
          throw std::runtime_error(
              "checkpoint: missing or unknown schema header");
        }
        state.header.sweep_name = value.at("name").as_string();
        state.header.num_jobs = value.at("num_jobs").as_uint();
        // Far above any real grid (family_grid caps at 1e5 points); a
        // corrupt header must not drive the slot-table allocation.
        if (state.header.num_jobs > 1'000'000) {
          throw std::runtime_error("checkpoint: implausible num_jobs " +
                                   std::to_string(state.header.num_jobs));
        }
        for (const auto& [key, meta_value] : value.at("meta").members) {
          state.header.meta.emplace_back(key, meta_value.as_string());
        }
        if (const JsonValue* queries = value.find("queries")) {
          if (!queries->is_array()) {
            throw std::runtime_error("checkpoint: \"queries\" is not an array");
          }
          if (queries->elements.size() != state.header.num_jobs) {
            throw std::runtime_error(
                "checkpoint: " + std::to_string(queries->elements.size()) +
                " queries for " + std::to_string(state.header.num_jobs) +
                " jobs");
          }
          state.header.queries = queries->elements;
        }
        slot.assign(static_cast<std::size_t>(state.header.num_jobs),
                    kUnseen);
        saw_header = true;
      } else {
        const std::uint64_t job = value.at("job").as_uint();
        if (job >= state.header.num_jobs) {
          throw std::runtime_error("checkpoint: job index " +
                                   std::to_string(job) + " out of range");
        }
        JobRecord record = job_record_from_json(value.at("record"));
        std::size_t& position = slot[static_cast<std::size_t>(job)];
        if (position == kUnseen) {
          position = state.completed.size();
          state.completed.emplace_back(job, std::move(record));
        } else {
          state.completed[position].second = std::move(record);
        }
      }
    }
    if (!terminated) break;
    line_start = newline + 1;
  }
  if (!saw_header) {
    throw std::runtime_error("checkpoint: empty or headerless file");
  }
  return state;
}

SweepDocument read_sweep_document(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_sweep_document(std::string_view(buffer.str()));
}

SweepDocument read_sweep_document(std::string_view text) {
  const JsonValue root = JsonReader::parse(text);
  if (root.at("schema").as_string() != kSweepSchema) {
    throw std::runtime_error("sweep json: unknown schema \"" +
                             root.at("schema").as_string() + "\"");
  }
  SweepDocument document;
  for (const JsonValue& sweep : root.at("sweeps").elements) {
    std::vector<JobRecord> records;
    for (const JsonValue& job : sweep.at("jobs").elements) {
      records.push_back(job_record_from_json(job));
    }
    document.sweeps.emplace_back(sweep.at("name").as_string(),
                                 std::move(records));
  }
  return document;
}

JobRecord job_record_from_json(const JsonValue& value) {
  JobRecord record;
  record.family = value.at("family").as_string();
  record.label = value.at("label").as_string();
  record.n = static_cast<int>(value.at("n").as_int());
  const std::string& kind_name = value.at("kind").as_string();
  const std::optional<JobKind> kind = parse_job_kind(kind_name);
  if (!kind.has_value()) {
    throw std::runtime_error("sweep json: unknown job kind \"" + kind_name +
                             "\"");
  }
  record.kind = *kind;
  // The optional counters section appears for every kind, always last in
  // the object; parse it up front since the kind branches return early.
  if (const JsonValue* counters = value.find("telemetry")) {
    record.telemetry = telemetry_from_json(*counters);
  }
  if (record.kind == JobKind::kDecisionTable) {
    record.verdict = value.at("verdict").as_string();
    if (!parse_solvability_verdict(record.verdict).has_value()) {
      throw std::runtime_error("sweep json: unknown verdict \"" +
                               record.verdict + "\"");
    }
    record.certified_depth =
        static_cast<int>(value.at("certified_depth").as_int());
    record.closure_only = value.at("closure_only").as_bool();
    if (const JsonValue* table = value.find("table")) {
      JobRecord::Table decoded;
      decoded.entries = table->at("entries").as_uint();
      decoded.worst_decision_round =
          static_cast<int>(table->at("worst_decision_round").as_int());
      record.table = decoded;
      const JsonValue& rounds = value.at("round_entries");
      if (!rounds.is_array()) {
        throw std::runtime_error("sweep json: round_entries is not an array");
      }
      for (const JsonValue& entries : rounds.elements) {
        record.round_entries.push_back(entries.as_uint());
      }
    }
    return record;
  }
  if (record.kind == JobKind::kSolvability) {
    record.verdict = value.at("verdict").as_string();
    if (!parse_solvability_verdict(record.verdict).has_value()) {
      throw std::runtime_error("sweep json: unknown verdict \"" +
                               record.verdict + "\"");
    }
    record.certified_depth =
        static_cast<int>(value.at("certified_depth").as_int());
    record.closure_only = value.at("closure_only").as_bool();
    record.per_depth = depth_stats_array(value.at("per_depth"));
    if (const JsonValue* final_analysis = value.find("final_analysis")) {
      JobRecord::FinalAnalysis analysis;
      analysis.depth =
          static_cast<int>(final_analysis->at("final_depth").as_int());
      analysis.leaf_classes = final_analysis->at("leaf_classes").as_uint();
      analysis.num_components =
          final_analysis->at("num_components").as_uint();
      for (const JsonValue& component :
           final_analysis->at("components").elements) {
        analysis.components.push_back(component_from_json(component));
      }
      record.final_analysis = std::move(analysis);
    }
    if (const JsonValue* table = value.find("table")) {
      JobRecord::Table decoded;
      decoded.entries = table->at("entries").as_uint();
      decoded.worst_decision_round =
          static_cast<int>(table->at("worst_decision_round").as_int());
      record.table = decoded;
    }
  } else {
    record.series = depth_stats_array(value.at("series"));
  }
  return record;
}

}  // namespace topocon::sweep
