// Fixed-size work-helping thread pool for the sweep engine.
//
// Design goals, in order: determinism of the *callers* (the pool itself
// never orders results -- callers write into index-addressed slots and do
// any order-dependent merging after parallel_for returns), safe nesting
// (a task may itself call parallel_for), and graceful degradation to
// serial execution (threads = 1 spawns no workers at all, so single-core
// containers and TSan runs exercise the exact same code path).
//
// Nesting is deadlock-free by construction: the thread that submits a
// batch participates in it until every index is claimed, and while
// waiting for in-flight indices it executes tasks of *other* pending
// batches instead of blocking. Hence no thread ever sleeps while
// unclaimed work exists.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace topocon::sweep {

/// Resolves a thread-count request: values >= 1 are returned unchanged,
/// 0 means std::thread::hardware_concurrency() (at least 1).
int resolve_threads(int requested);

class ThreadPool {
 public:
  /// A pool of `threads` execution lanes total: `threads - 1` workers are
  /// spawned and the thread calling parallel_for is the last lane.
  /// threads = 0 resolves to hardware_concurrency().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(0), ..., fn(count - 1), distributed over the pool. Returns
  /// when all calls have finished. The calling thread participates; the
  /// assignment of indices to threads is nondeterministic, so fn must
  /// confine its effects to per-index state. The first exception thrown
  /// by any fn is rethrown here (remaining indices still run).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  struct Batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::size_t next = 0;  // next index to claim
    std::size_t done = 0;  // completed indices
    std::exception_ptr error;
  };

  /// Claims and runs one index of any batch with unclaimed work.
  /// Returns false if no such batch exists. Called with `lock` held;
  /// releases it around the user function.
  bool run_one(std::unique_lock<std::mutex>& lock);

  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;  // new work and batch completions
  std::vector<Batch*> batches_;
  std::vector<std::thread> workers_;
  int num_threads_ = 1;
  bool stop_ = false;
};

}  // namespace topocon::sweep
