#include "runtime/sweep/parallel_solver.hpp"

#include <cstddef>
#include <utility>
#include <vector>

namespace topocon::sweep {

namespace {

// One root's expansion state: a private interner plus the recorded levels.
// With keep_levels every level and its tree links are kept; otherwise only
// the deepest complete level (the prospective leaves) and the per-level
// sizes needed for the global truncation accounting.
struct Shard {
  ViewInterner interner;
  std::vector<std::vector<PrefixState>> levels;
  std::vector<std::vector<std::pair<int, int>>> first_parent;
  std::vector<std::vector<std::vector<int>>> children;
  std::vector<std::size_t> level_sizes;
  /// Level whose expansion alone exceeded max_states; -1 if none.
  int truncated_at = -1;

  bool has_level(int s) const {
    return truncated_at < 0 || s < truncated_at;
  }
};

void expand_shard(const MessageAdversary& adversary,
                  const AnalysisOptions& options, int root, int depth,
                  Shard& shard) {
  std::vector<PrefixState> current =
      initial_frontier(adversary, options, shard.interner, root, root + 1);
  shard.level_sizes.push_back(current.size());
  if (options.keep_levels) {
    shard.levels.push_back(current);
    shard.first_parent.push_back(
        std::vector<std::pair<int, int>>(current.size(), {-1, -1}));
  }
  for (int s = 1; s <= depth; ++s) {
    FrontierLevel level =
        expand_frontier(adversary, shard.interner, current,
                        options.max_states, options.keep_levels);
    if (level.overflow) {
      shard.truncated_at = s;
      break;
    }
    current = std::move(level.states);
    shard.level_sizes.push_back(current.size());
    if (options.keep_levels) {
      shard.children.push_back(std::move(level.children));
      shard.levels.push_back(current);
      shard.first_parent.push_back(std::move(level.first_parent));
    }
  }
  if (!options.keep_levels) {
    shard.levels.push_back(std::move(current));
  }
}

/// First level at which the *merged* expansion would exceed max_states
/// (the serial overflow condition), or depth + 1 if none. A shard missing
/// a level implies that level's total exceeds the budget too.
int merged_cut(const std::vector<Shard>& shards, int depth,
               std::size_t max_states) {
  for (int s = 1; s <= depth; ++s) {
    std::size_t total = 0;
    for (const Shard& shard : shards) {
      if (!shard.has_level(s)) return s;
      total += shard.level_sizes[static_cast<std::size_t>(s)];
    }
    if (total > max_states) return s;
  }
  return depth + 1;
}

}  // namespace

DepthAnalysis parallel_analyze_depth(const MessageAdversary& adversary,
                                     const AnalysisOptions& options,
                                     ThreadPool& pool,
                                     std::shared_ptr<ViewInterner> interner) {
  const int n = adversary.num_processes();
  DepthAnalysis analysis;
  analysis.num_values = options.num_values;
  analysis.num_processes = n;
  analysis.interner =
      interner ? std::move(interner) : std::make_shared<ViewInterner>();

  const auto num_roots = static_cast<int>(
      all_input_vectors(n, options.num_values).size());

  // ---- Phase 1: expand every root to the requested depth.
  std::vector<Shard> shards(static_cast<std::size_t>(num_roots));
  pool.parallel_for(static_cast<std::size_t>(num_roots), [&](std::size_t r) {
    expand_shard(adversary, options, static_cast<int>(r), options.depth,
                 shards[r]);
  });

  // ---- Truncation: cut at the first level whose merged size would have
  // overflowed the serial BFS, and redo the (rare, shallower) expansion so
  // every shard holds exactly the levels below the cut.
  const int cut = merged_cut(shards, options.depth, options.max_states);
  analysis.truncated = cut <= options.depth;
  const int reached = analysis.truncated ? cut - 1 : options.depth;
  if (analysis.truncated) {
    std::vector<Shard> redone(static_cast<std::size_t>(num_roots));
    pool.parallel_for(static_cast<std::size_t>(num_roots),
                      [&](std::size_t r) {
                        expand_shard(adversary, options, static_cast<int>(r),
                                     reached, redone[r]);
                      });
    shards = std::move(redone);
  }
  analysis.depth = reached;

  // ---- Deterministic merge, in root order.
  std::vector<std::vector<ViewId>> remap(
      static_cast<std::size_t>(num_roots));
  for (std::size_t r = 0; r < shards.size(); ++r) {
    remap[r] = analysis.interner->absorb(shards[r].interner);
  }
  // offsets[s][r] = index offset of shard r within merged level s.
  const auto offsets_of = [&](int s) {
    std::vector<int> offsets(shards.size() + 1, 0);
    for (std::size_t r = 0; r < shards.size(); ++r) {
      const std::size_t local =
          options.keep_levels
              ? shards[r].levels[static_cast<std::size_t>(s)].size()
              : shards[r].levels.back().size();
      offsets[r + 1] = offsets[r] + static_cast<int>(local);
    }
    return offsets;
  };
  const auto merge_level = [&](int s) {
    std::vector<PrefixState> merged;
    for (std::size_t r = 0; r < shards.size(); ++r) {
      const std::vector<PrefixState>& local =
          options.keep_levels ? shards[r].levels[static_cast<std::size_t>(s)]
                              : shards[r].levels.back();
      for (const PrefixState& state : local) {
        PrefixState copy = state;
        for (ViewId& id : copy.views) {
          id = remap[r][static_cast<std::size_t>(id)];
        }
        merged.push_back(std::move(copy));
      }
    }
    return merged;
  };

  if (options.keep_levels) {
    std::vector<std::vector<int>> offsets;
    offsets.reserve(static_cast<std::size_t>(reached) + 1);
    for (int s = 0; s <= reached; ++s) offsets.push_back(offsets_of(s));
    for (int s = 0; s <= reached; ++s) {
      analysis.levels.push_back(merge_level(s));
      std::vector<std::pair<int, int>> parents;
      for (std::size_t r = 0; r < shards.size(); ++r) {
        for (const auto& [parent, letter] :
             shards[r].first_parent[static_cast<std::size_t>(s)]) {
          parents.emplace_back(
              parent < 0 ? -1 : parent + offsets[static_cast<std::size_t>(
                                              s - 1)][r],
              letter);
        }
      }
      analysis.first_parent.push_back(std::move(parents));
    }
    for (int s = 0; s < reached; ++s) {
      std::vector<std::vector<int>> kids;
      for (std::size_t r = 0; r < shards.size(); ++r) {
        for (const std::vector<int>& local :
             shards[r].children[static_cast<std::size_t>(s)]) {
          std::vector<int> shifted;
          shifted.reserve(local.size());
          for (const int child : local) {
            shifted.push_back(
                child + offsets[static_cast<std::size_t>(s + 1)][r]);
          }
          kids.push_back(std::move(shifted));
        }
      }
      analysis.children.push_back(std::move(kids));
    }
  } else {
    analysis.levels.push_back(merge_level(reached));
  }

  compute_components(options, analysis);
  return analysis;
}

SolvabilityResult parallel_check_solvability(
    const MessageAdversary& adversary, const SolvabilityOptions& options,
    ThreadPool& pool, const DepthProgressFn& on_depth) {
  // Same iterative-deepening driver as the serial checker; only the
  // per-depth analysis is swapped for the sharded one.
  return check_solvability_with(
      adversary, options,
      [&adversary, &pool](const AnalysisOptions& analysis_options,
                          const std::shared_ptr<ViewInterner>& interner) {
        return parallel_analyze_depth(adversary, analysis_options, pool,
                                      interner);
      },
      on_depth);
}

}  // namespace topocon::sweep
