#include "runtime/sweep/parallel_solver.hpp"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/spill.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace topocon::sweep {

namespace {

std::atomic<std::size_t> g_default_chunk_states{0};

// One root's engine plus the private interner it expands into. The
// interner must outlive the engine and stay address-stable, hence the
// two-member struct instead of engine-owned storage.
struct RootShard {
  ViewInterner interner;
  std::optional<FrontierEngine> engine;
};

}  // namespace

void set_default_chunk_states(std::size_t chunk_states) {
  g_default_chunk_states.store(chunk_states, std::memory_order_relaxed);
}

std::size_t default_chunk_states() {
  const std::size_t configured =
      g_default_chunk_states.load(std::memory_order_relaxed);
  return configured > 0 ? configured : kDefaultChunkStates;
}

DepthAnalysis parallel_analyze_depth(const MessageAdversary& adversary,
                                     const AnalysisOptions& options,
                                     ThreadPool& pool,
                                     std::shared_ptr<ViewInterner> interner,
                                     const ShardingOptions& sharding) {
  const int n = adversary.num_processes();
  DepthAnalysis analysis;
  analysis.num_values = options.num_values;
  analysis.num_processes = n;
  analysis.interner =
      interner ? std::move(interner) : std::make_shared<ViewInterner>();
  const std::size_t chunk_states = sharding.chunk_states > 0
                                       ? sharding.chunk_states
                                       : default_chunk_states();
  // Out-of-core tier (core/spill.*): expansions exceeding their fair
  // share of the budget go to temp files between expand and merge. Like
  // the chunk size, never observable in any result byte.
  const SpillOptions spill_options = resolve_spill(options.spill);
  std::optional<FrontierSpill> spill;
  if (spill_options.budget_bytes > 0) spill.emplace(spill_options);

  const auto num_roots = static_cast<std::size_t>(
      all_input_vectors(n, options.num_values).size());

  // ---- Level 0: one engine (and private interner) per root.
  std::vector<RootShard> shards(num_roots);
  pool.parallel_for(num_roots, [&](std::size_t r) {
    shards[r].engine.emplace(adversary, options, shards[r].interner,
                             static_cast<int>(r), static_cast<int>(r) + 1);
  });

  // ---- Levels 1..depth, level-synchronous: expand all (root, chunk)
  // work items of a level on the pool, merge per root in chunk order,
  // apply the global state budget, then commit.
  telemetry::MetricsRegistry* metrics = options.metrics;
  telemetry::TraceWriter* trace =
      metrics != nullptr ? metrics->trace() : nullptr;
  std::mutex progress_mutex;
  for (int s = 1; s <= options.depth && !analysis.truncated; ++s) {
    const std::uint64_t span_start =
        trace != nullptr ? trace->now_us() : 0;
    const auto level_start = std::chrono::steady_clock::now();
    struct Item {
      std::size_t root;
      FrontierChunk chunk;
    };
    std::vector<Item> items;
    // first_item[r] .. first_item[r + 1] are root r's chunks.
    std::vector<std::size_t> first_item(num_roots + 1, 0);
    std::size_t frontier_states = 0;
    for (std::size_t r = 0; r < num_roots; ++r) {
      first_item[r] = items.size();
      frontier_states += shards[r].engine->frontier().size();
      for (const FrontierChunk& chunk :
           shards[r].engine->partition(chunk_states)) {
        items.push_back(Item{r, chunk});
      }
    }
    first_item[num_roots] = items.size();

    const auto expand_items = [&](FrontierBudget* budget) {
      std::vector<PendingFrontier> expansions(items.size());
      std::size_t chunks_done = 0;
      pool.parallel_for(items.size(), [&](std::size_t i) {
        expansions[i] =
            shards[items[i].root].engine->expand(items[i].chunk, budget);
        if (spill) spill->maybe_spill(expansions[i], items.size());
        if (sharding.on_chunk) {
          const std::lock_guard<std::mutex> lock(progress_mutex);
          ++chunks_done;
          sharding.on_chunk(ChunkProgress{options.depth, s, chunks_done,
                                          items.size(), frontier_states});
        }
      });
      return expansions;
    };

    // Pass 1: chunked expansion under the shared level budget. When the
    // budget trips, the level *probably* overflows -- but chunk-local
    // counts can overcount the merged level (chunks of one root can
    // discover the same class), so unless pass 1 was already exact (one
    // chunk per root) the decision is re-derived in an exact pass 2 with
    // root-granular chunks, whose counts cannot overcount. Both passes
    // abort early once max_states is provably exceeded, so a doomed
    // level costs O(max_states), like the serial scan.
    FrontierBudget budget(options.max_states);
    std::vector<PendingFrontier> expansions = expand_items(&budget);
    bool tripped = budget.exceeded();
    for (const PendingFrontier& expansion : expansions) {
      tripped |= expansion.overflow;
    }
    if (tripped && items.size() != num_roots) {
      expansions.clear();  // drops any spill tickets: files unlink here
      expansions.shrink_to_fit();
      if (spill) spill->discard_staged();
      items.clear();
      for (std::size_t r = 0; r < num_roots; ++r) {
        first_item[r] = r;
        items.push_back(
            Item{r, FrontierChunk{0, shards[r].engine->frontier().size()}});
      }
      first_item[num_roots] = num_roots;
      FrontierBudget exact_budget(options.max_states);
      expansions = expand_items(&exact_budget);
      tripped = exact_budget.exceeded();
      for (const PendingFrontier& expansion : expansions) {
        tripped |= expansion.overflow;
      }
    }
    if (tripped) {
      // Exact by now: root-granular counts never overcount, so a
      // tripped budget or an overflowed chunk means the merged level
      // exceeds max_states -- the serial truncation condition.
      // Whether a level's final total exceeds max_states is independent
      // of scheduling, so this single tick is deterministic too.
      if (metrics != nullptr) metrics->add_budget_abort();
      analysis.truncated = true;
      if (spill) spill->discard_staged();
      pool.parallel_for(num_roots, [&](std::size_t r) {
        shards[r].engine->mark_truncated();
      });
      break;
    }

    std::vector<PendingFrontier> pending(num_roots);
    pool.parallel_for(num_roots, [&](std::size_t r) {
      std::vector<PendingFrontier> mine(
          std::make_move_iterator(expansions.begin() +
                                  static_cast<std::ptrdiff_t>(first_item[r])),
          std::make_move_iterator(
              expansions.begin() +
              static_cast<std::ptrdiff_t>(first_item[r + 1])));
      pending[r] = shards[r].engine->merge(std::move(mine));
    });

    // The serial overflow condition on the merged level, checked before
    // any interner mutation (see the header comment). With the budget
    // not tripped this cannot fire (sum of chunk counts <= max_states
    // bounds the merged size); kept as a safety net.
    std::size_t total = 0;
    bool overflow = false;
    for (const PendingFrontier& level : pending) {
      overflow |= level.overflow;
      total += level.states.size();
    }
    if (overflow || total > options.max_states) {
      if (metrics != nullptr) metrics->add_budget_abort();
      analysis.truncated = true;
      if (spill) spill->discard_staged();
      pool.parallel_for(num_roots, [&](std::size_t r) {
        shards[r].engine->mark_truncated();
      });
      break;
    }
    pool.parallel_for(num_roots, [&](std::size_t r) {
      shards[r].engine->commit(std::move(pending[r]));
    });
    if (spill) spill->commit_level();
    if (metrics != nullptr) {
      // frontier_states is the size of the level just expanded (s - 1),
      // total the size of the level just committed; together the two
      // cover every level for the high-water mark.
      metrics->note_frontier(frontier_states);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - level_start;
      metrics->add_level(options.depth, s, total, elapsed.count());
      if (trace != nullptr) {
        trace->complete(
            "level", "level", span_start, trace->now_us() - span_start,
            {telemetry::TraceArg::num("depth",
                                      static_cast<std::uint64_t>(options.depth)),
             telemetry::TraceArg::num("level", static_cast<std::uint64_t>(s)),
             telemetry::TraceArg::num("states", total),
             telemetry::TraceArg::num("chunks", items.size())});
      }
    }
  }
  const int reached = shards.empty() ? 0 : shards.front().engine->level();
  analysis.depth = reached;

  // ---- Deterministic merge, in root order.
  std::vector<std::vector<ViewId>> remap(num_roots);
  for (std::size_t r = 0; r < num_roots; ++r) {
    remap[r] = analysis.interner->absorb(shards[r].interner);
  }
  // offsets[s][r] = index offset of shard r within merged level s.
  const auto offsets_of = [&](int s) {
    std::vector<int> offsets(num_roots + 1, 0);
    for (std::size_t r = 0; r < num_roots; ++r) {
      offsets[r + 1] =
          offsets[r] +
          static_cast<int>(
              shards[r].engine->level_sizes()[static_cast<std::size_t>(s)]);
    }
    return offsets;
  };
  const auto merge_level = [&](int s) {
    std::vector<PrefixState> merged;
    for (std::size_t r = 0; r < num_roots; ++r) {
      const FrontierEngine& engine = *shards[r].engine;
      const std::vector<PrefixState>& local =
          options.keep_levels ? engine.levels()[static_cast<std::size_t>(s)]
                              : engine.frontier();
      for (const PrefixState& state : local) {
        PrefixState copy = state;
        for (ViewId& id : copy.views) {
          id = remap[r][static_cast<std::size_t>(id)];
        }
        merged.push_back(std::move(copy));
      }
    }
    return merged;
  };

  if (options.keep_levels) {
    std::vector<std::vector<int>> offsets;
    offsets.reserve(static_cast<std::size_t>(reached) + 1);
    for (int s = 0; s <= reached; ++s) offsets.push_back(offsets_of(s));
    for (int s = 0; s <= reached; ++s) {
      analysis.levels.push_back(merge_level(s));
      std::vector<std::pair<int, int>> parents;
      for (std::size_t r = 0; r < num_roots; ++r) {
        for (const auto& [parent, letter] :
             shards[r].engine->first_parent()[static_cast<std::size_t>(s)]) {
          parents.emplace_back(
              parent < 0 ? -1 : parent + offsets[static_cast<std::size_t>(
                                              s - 1)][r],
              letter);
        }
      }
      analysis.first_parent.push_back(std::move(parents));
    }
    for (int s = 0; s < reached; ++s) {
      std::vector<std::vector<int>> kids;
      for (std::size_t r = 0; r < num_roots; ++r) {
        for (const std::vector<int>& local :
             shards[r].engine->children()[static_cast<std::size_t>(s)]) {
          std::vector<int> shifted;
          shifted.reserve(local.size());
          for (const int child : local) {
            shifted.push_back(
                child + offsets[static_cast<std::size_t>(s + 1)][r]);
          }
          kids.push_back(std::move(shifted));
        }
      }
      analysis.children.push_back(std::move(kids));
    }
  } else {
    analysis.levels.push_back(merge_level(reached));
  }

  if (metrics != nullptr && spill) {
    const FrontierSpill::Stats totals = spill->stats();
    telemetry::SpillStats flushed;
    flushed.chunks_spilled = totals.chunks_spilled;
    flushed.bytes_written = totals.bytes_written;
    flushed.bytes_replayed = totals.bytes_replayed;
    flushed.replay_passes = totals.replay_passes;
    metrics->add_spill(flushed);
  }

  compute_components(options, analysis);
  return analysis;
}

SolvabilityResult parallel_check_solvability(
    const MessageAdversary& adversary, const SolvabilityOptions& options,
    ThreadPool& pool, const DepthProgressFn& on_depth,
    const ShardingOptions& sharding) {
  // Same iterative-deepening driver as the serial checker; only the
  // per-depth analysis is swapped for the sharded one.
  return check_solvability_with(
      adversary, options,
      [&adversary, &pool, &sharding](
          const AnalysisOptions& analysis_options,
          const std::shared_ptr<ViewInterner>& interner) {
        return parallel_analyze_depth(adversary, analysis_options, pool,
                                      interner, sharding);
      },
      on_depth);
}

}  // namespace topocon::sweep
