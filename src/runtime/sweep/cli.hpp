// Command-line plumbing shared by the bench binaries, the examples, and
// the topocon CLI: one flag-matching helper (`--name=value` form) and the
// --sweep-threads / --sweep-json handling that used to be copy-pasted
// around consume_sweep_args call sites.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace topocon::sweep {

/// If `arg` is "--FLAG=VALUE" for the given flag name (without dashes),
/// returns VALUE (possibly empty); otherwise std::nullopt. This is the
/// one flag syntax every topocon binary accepts.
std::optional<std::string_view> flag_value(std::string_view arg,
                                           std::string_view flag);

/// Parses a mandatory integer flag value. Throws std::invalid_argument
/// naming the flag on malformed or out-of-int-range input.
int parse_int_value(std::string_view flag, std::string_view value);

/// Parses a mandatory unsigned 64-bit flag value (the full seed space;
/// parse_int_value would cap it at int). Throws std::invalid_argument
/// naming the flag on malformed, negative, or out-of-range input.
std::uint64_t parse_uint64_value(std::string_view flag,
                                 std::string_view value);

/// Options consumed by consume_sweep_args.
struct SweepCliOptions {
  /// Destination of the registry dump; empty = no dump.
  std::string json_path;
};

/// Strips --sweep-threads=N, --sweep-frontier=MODE,
/// --sweep-spill-budget-mb=N, --sweep-spill-dir=PATH, and
/// --sweep-json=PATH from argv (so they can precede google-benchmark's
/// own argument parsing) and applies the thread/frontier/spill defaults
/// immediately.
SweepCliOptions consume_sweep_args(int* argc, char** argv);

/// Writes the registry to options.json_path if set. Returns false (after
/// printing to stderr) when the file cannot be written.
bool flush_sweep_json(const SweepCliOptions& options);

}  // namespace topocon::sweep
