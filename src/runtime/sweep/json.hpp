// Minimal deterministic JSON emitter for sweep results.
//
// Deliberately tiny: objects and arrays are emitted in call order with
// stable two-space indentation and no locale dependence, so two runs that
// produce the same logical results produce byte-identical documents --
// the property the bench trajectory and the determinism tests rely on.
// Only the types the sweep engine needs are supported (strings, integers,
// booleans, nested containers); no floating point, whose formatting is
// the classic source of cross-run diffs.
#pragma once

#include <concepts>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace topocon::sweep {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits the key of the next member (objects only).
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(bool flag);
  void value(std::int64_t number);
  void value(std::uint64_t number);
  /// Any other integer type (int, std::size_t, ...) widens to the exact
  /// 64-bit overloads, so call sites stay portable across platforms where
  /// size_t is a distinct type from uint64_t.
  template <typename T>
    requires std::integral<T> && (!std::same_as<T, bool>) &&
             (!std::same_as<T, std::int64_t>) &&
             (!std::same_as<T, std::uint64_t>)
  void value(T number) {
    if constexpr (std::is_signed_v<T>) {
      value(static_cast<std::int64_t>(number));
    } else {
      value(static_cast<std::uint64_t>(number));
    }
  }

  /// key + value in one call.
  template <typename T>
  void member(std::string_view name, T&& v) {
    key(name);
    value(std::forward<T>(v));
  }

 private:
  enum class Scope { kObject, kArray };

  void separate();
  void indent();

  std::ostream& out_;
  std::vector<Scope> scopes_;
  std::vector<bool> first_;
  bool pending_key_ = false;
};

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
std::string json_escape(std::string_view text);

}  // namespace topocon::sweep
