// Minimal deterministic JSON emitter and parser for sweep results.
//
// Deliberately tiny: objects and arrays are emitted in call order with
// stable two-space indentation (or a single-line compact style for
// checkpoint lines) and no locale dependence, so two runs that produce
// the same logical results produce byte-identical documents -- the
// property the bench trajectory, the checkpoint/resume machinery, and
// the determinism tests rely on. Only the types the sweep engine needs
// are supported (strings, integers, booleans, nested containers); no
// floating point, whose formatting is the classic source of cross-run
// diffs. JsonReader is the exact parsing counterpart: it accepts the
// same deterministic subset (rejecting floats outright) and preserves
// object member order, so write(parse(doc)) reproduces doc byte for
// byte.
#pragma once

#include <concepts>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace topocon::sweep {

/// Output layout of JsonWriter: kPretty is the two-space-indented style
/// of the sweep documents; kCompact emits everything on one line with no
/// whitespace (checkpoint lines, one record per line).
enum class JsonStyle { kPretty, kCompact };

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, JsonStyle style = JsonStyle::kPretty)
      : out_(out), style_(style) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits the key of the next member (objects only).
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(bool flag);
  void value(std::int64_t number);
  void value(std::uint64_t number);
  /// Any other integer type (int, std::size_t, ...) widens to the exact
  /// 64-bit overloads, so call sites stay portable across platforms where
  /// size_t is a distinct type from uint64_t.
  template <typename T>
    requires std::integral<T> && (!std::same_as<T, bool>) &&
             (!std::same_as<T, std::int64_t>) &&
             (!std::same_as<T, std::uint64_t>)
  void value(T number) {
    if constexpr (std::is_signed_v<T>) {
      value(static_cast<std::int64_t>(number));
    } else {
      value(static_cast<std::uint64_t>(number));
    }
  }

  /// key + value in one call.
  template <typename T>
  void member(std::string_view name, T&& v) {
    key(name);
    value(std::forward<T>(v));
  }

 private:
  enum class Scope { kObject, kArray };

  void separate();
  void indent();

  std::ostream& out_;
  JsonStyle style_;
  std::vector<Scope> scopes_;
  std::vector<bool> first_;
  bool pending_key_ = false;
};

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
std::string json_escape(std::string_view text);

/// Parsed JSON value over the deterministic subset JsonWriter emits.
/// Negative integers parse as kInt, non-negative ones as kUint; object
/// member order is the document order.
struct JsonValue {
  enum class Kind {
    kNull,
    kBool,
    kInt,
    kUint,
    kDouble,  // float-mode parses only; the canonical writer never emits it
    kString,
    kArray,
    kObject
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  std::int64_t int_number = 0;     // kInt
  std::uint64_t uint_number = 0;   // kUint
  double double_number = 0;        // kDouble
  std::string string;
  std::vector<JsonValue> elements;                         // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Structural equality (recursive; object member order matters, exactly
  /// as it matters for the canonical serialization).
  friend bool operator==(const JsonValue&, const JsonValue&) = default;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// Object member lookup; throws std::runtime_error naming the key when
  /// absent.
  const JsonValue& at(std::string_view key) const;

  /// Checked accessors; every one throws std::runtime_error on a kind
  /// mismatch (as_int accepts kUint values that fit, and vice versa;
  /// as_double accepts any numeric kind).
  bool as_bool() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  double as_double() const;
  const std::string& as_string() const;
};

/// Re-emits a parsed JsonValue through a JsonWriter (members in stored
/// order), making write(parse(doc)) reproduce doc byte for byte and --
/// since the writer is canonical -- write(v) a fixed point of
/// write(parse(.)) for any v. Used to embed opaque sub-documents (e.g.
/// serialized api::Query descriptions in checkpoint headers) without the
/// container layer knowing their schema.
void write_json_value(JsonWriter& writer, const JsonValue& value);

/// Which numeric literals JsonReader accepts. kIntegersOnly is the
/// deterministic subset (floats rejected by design, see the header
/// comment); kAllowFloats additionally parses floating-point literals as
/// kDouble values -- for FOREIGN documents only (google-benchmark output,
/// bench_compare baselines), never for topocon's own artifacts, which
/// must stay round-trippable through the integer-only writer.
enum class JsonNumbers { kIntegersOnly, kAllowFloats };

/// Parser for the deterministic JSON subset (the counterpart of
/// JsonWriter). Throws std::runtime_error with a byte offset on malformed
/// input; floating-point literals are rejected unless opted into.
class JsonReader {
 public:
  /// Parses exactly one document (trailing whitespace allowed).
  static JsonValue parse(std::string_view text,
                         JsonNumbers numbers = JsonNumbers::kIntegersOnly);

 private:
  explicit JsonReader(std::string_view text, JsonNumbers numbers)
      : text_(text), numbers_(numbers) {}

  JsonValue parse_value(int depth);
  std::string parse_string();
  JsonValue parse_number();
  void skip_whitespace();
  char peek() const;
  char take();
  void expect(char c);
  bool consume_literal(std::string_view literal);
  [[noreturn]] void fail(const std::string& message) const;

  std::string_view text_;
  JsonNumbers numbers_ = JsonNumbers::kIntegersOnly;
  std::size_t pos_ = 0;
};

}  // namespace topocon::sweep
