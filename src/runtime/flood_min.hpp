// Min-input flooding with a fixed decision round: the classic baseline
// algorithm in the style of Schmid-Weiss-Keidar [22] for omission
// adversaries with at most f <= n-2 omissions per round.
//
// Every process floods the smallest input value it has seen and decides it
// after `decision_round` rounds. With at most n-2 omissions per round, the
// set of processes knowing the global minimum gains at least one member
// per round (the cut between knowers and non-knowers has >= n-1 edges),
// so decision_round = n-1 suffices. With f = n-1 the adversary can isolate
// the minimum's holder forever and the algorithm loses agreement -- the
// negative control in tests and bench E5.
#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "runtime/simulator.hpp"

namespace topocon {

class FloodMinAlgorithm {
 public:
  struct State {
    Value min_seen = 0;
    int round = 0;
    std::optional<Value> decided;
  };
  using Message = Value;

  explicit FloodMinAlgorithm(int decision_round)
      : decision_round_(decision_round) {}

  State init(ProcessId p, Value input) const {
    (void)p;
    State state;
    state.min_seen = input;
    if (decision_round_ == 0) state.decided = input;
    return state;
  }

  Message message(const State& state) const { return state.min_seen; }

  void step(State& state, int round,
            const std::vector<std::optional<Message>>& received) const {
    for (const auto& msg : received) {
      if (msg.has_value()) state.min_seen = std::min(state.min_seen, *msg);
    }
    state.round = round;
    if (!state.decided.has_value() && round >= decision_round_) {
      state.decided = state.min_seen;
    }
  }

  std::optional<Value> decision(const State& state) const {
    return state.decided;
  }

 private:
  int decision_round_;
};

}  // namespace topocon
