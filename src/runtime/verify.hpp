// Checking the consensus specification (Definition 5.1) on simulation
// outcomes: Termination, Agreement, Validity.
#pragma once

#include <string>

#include "runtime/simulator.hpp"

namespace topocon {

struct ConsensusCheck {
  bool termination = false;
  bool agreement = false;
  bool validity = false;
  /// Strong validity: every decision value is some process's input.
  bool strong_validity = false;
  std::string detail;  // human-readable failure description, empty if ok

  bool ok() const { return termination && agreement && validity; }
  bool ok_strong() const { return ok() && strong_validity; }
};

/// Validates an outcome against the inputs it ran with. Termination here
/// means "all decided within the simulated horizon"; pass the horizon that
/// the adversary/algorithm pair is supposed to guarantee.
ConsensusCheck check_consensus(const ConsensusOutcome& outcome,
                               const InputVector& inputs);

}  // namespace topocon
