// Broadcastability (Definition 5.8) on finite sets of run prefixes, plus
// the diameter bound of Theorem 5.9 / Corollary 5.10 as checkable
// predicates. Used by tests and benches to validate the theorems on
// concrete component approximations.
#pragma once

#include <vector>

#include "ptg/prefix.hpp"
#include "ptg/view_intern.hpp"

namespace topocon {

/// Processes p such that in every prefix of the set, every process knows
/// p's input by the end of the prefix (the finite-horizon version of
/// "p is heard by all", Definition 5.8).
NodeMask broadcast_witnesses(const std::vector<RunPrefix>& prefixes);

/// True iff some process is a broadcast witness *and* its input value is
/// the same in every prefix of the set. For a connected set this is exactly
/// broadcastability; Theorem 5.9 then bounds the d_min-diameter by 1/2.
bool is_broadcastable(const std::vector<RunPrefix>& prefixes);

/// The broadcaster candidates: broadcast witnesses with uniform input.
NodeMask broadcasters(const std::vector<RunPrefix>& prefixes);

}  // namespace topocon
