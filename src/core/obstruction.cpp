#include "core/obstruction.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_map>

namespace topocon {

std::vector<BivalencePoint> bivalence_series(const MessageAdversary& adversary,
                                             int max_depth, int num_values,
                                             std::size_t max_states) {
  std::vector<BivalencePoint> series;
  auto interner = std::make_shared<ViewInterner>();
  for (int depth = 1; depth <= max_depth; ++depth) {
    AnalysisOptions options;
    options.depth = depth;
    options.num_values = num_values;
    options.max_states = max_states;
    options.keep_levels = false;
    const DepthAnalysis analysis = analyze_depth(adversary, options, interner);
    if (analysis.truncated) break;
    BivalencePoint point;
    point.depth = depth;
    point.num_leaf_classes = analysis.leaves().size();
    point.num_components = static_cast<int>(analysis.components.size());
    point.merged_components = analysis.merged_components;
    series.push_back(point);
  }
  return series;
}

std::optional<MergedChain> find_merged_chain(const MessageAdversary& adversary,
                                             const DepthAnalysis& analysis,
                                             Value v0, Value v1) {
  const std::vector<PrefixState>& leaves = analysis.leaves();
  const int n = analysis.num_processes;

  // Locate a component containing both valences and endpoints within it.
  int start = -1;
  int target_component = -1;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const int comp = analysis.leaf_component[i];
    const auto& info = analysis.components[static_cast<std::size_t>(comp)];
    if ((info.valence_mask & (1u << v0)) != 0 &&
        (info.valence_mask & (1u << v1)) != 0 &&
        uniform_value(leaves[i].inputs) == v0) {
      start = static_cast<int>(i);
      target_component = comp;
      break;
    }
  }
  if (start < 0) return std::nullopt;

  // Adjacency buckets: leaves sharing a view id of some process.
  std::vector<std::unordered_map<ViewId, std::vector<int>>> buckets(
      static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    if (analysis.leaf_component[i] != target_component) continue;
    for (int p = 0; p < n; ++p) {
      buckets[static_cast<std::size_t>(p)]
             [leaves[i].views[static_cast<std::size_t>(p)]]
                 .push_back(static_cast<int>(i));
    }
  }

  // BFS to the closest v1-valent leaf, remembering (previous, witness).
  std::vector<int> previous(leaves.size(), -1);
  std::vector<ProcessId> via(leaves.size(), -1);
  std::vector<bool> visited(leaves.size(), false);
  std::deque<int> queue;
  visited[static_cast<std::size_t>(start)] = true;
  queue.push_back(start);
  int goal = -1;
  while (!queue.empty() && goal < 0) {
    const int i = queue.front();
    queue.pop_front();
    if (uniform_value(leaves[static_cast<std::size_t>(i)].inputs) == v1) {
      goal = i;
      break;
    }
    for (int p = 0; p < n; ++p) {
      const ViewId id =
          leaves[static_cast<std::size_t>(i)].views[static_cast<std::size_t>(p)];
      for (const int j : buckets[static_cast<std::size_t>(p)][id]) {
        if (visited[static_cast<std::size_t>(j)]) continue;
        visited[static_cast<std::size_t>(j)] = true;
        previous[static_cast<std::size_t>(j)] = i;
        via[static_cast<std::size_t>(j)] = p;
        queue.push_back(j);
      }
    }
  }
  if (goal < 0) return std::nullopt;  // cannot happen in a merged component

  MergedChain chain;
  chain.depth = analysis.depth;
  std::vector<int> indices;
  for (int i = goal; i >= 0; i = previous[static_cast<std::size_t>(i)]) {
    indices.push_back(i);
  }
  std::reverse(indices.begin(), indices.end());
  for (std::size_t k = 0; k < indices.size(); ++k) {
    auto prefix = reconstruct_prefix(adversary, analysis, indices[k]);
    assert(prefix.has_value());
    chain.chain.push_back(std::move(*prefix));
    if (k + 1 < indices.size()) {
      chain.witness.push_back(via[static_cast<std::size_t>(indices[k + 1])]);
    }
  }
  return chain;
}

std::optional<RunPrefix> fair_sequence_prefix(
    const MessageAdversary& adversary, int depth, int num_values,
    std::size_t max_states) {
  AnalysisOptions options;
  options.depth = depth;
  options.num_values = num_values;
  options.max_states = max_states;
  options.keep_levels = true;
  const DepthAnalysis analysis = analyze_depth(adversary, options);
  if (analysis.truncated || analysis.valence_separated) return std::nullopt;

  const std::vector<PrefixState>& leaves = analysis.leaves();
  int best = -1;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const int comp = analysis.leaf_component[i];
    if (analysis.components[static_cast<std::size_t>(comp)].num_valences() <
        2) {
      continue;
    }
    if (best < 0) best = static_cast<int>(i);
    // Prefer a mixed-input representative (the classic bivalent start).
    if (uniform_value(leaves[i].inputs) < 0) {
      best = static_cast<int>(i);
      break;
    }
  }
  if (best < 0) return std::nullopt;
  return reconstruct_prefix(adversary, analysis, best);
}

}  // namespace topocon
