// The paper's distance functions (Section 4).
//
// On configuration sequences C^w, the P-view pseudo-metric is
//     d_P(a, b) = 2^{-inf{ t >= 0 : V_P(a^t) != V_P(b^t) }}
// (Theorem 4.4), the minimum pseudo-semi-metric is
//     d_min(a, b) = min_p d_{p}(a, b)
// (Section 4.2, Lemma 4.8), and d_[n] coincides with the classic
// Alpern-Schneider common-prefix metric d_max (Theorem 4.3).
//
// Two instantiations are provided:
//  * LabelledExecution -- abstract configuration sequences (each process has
//    an opaque local state per time step). This matches Figure 3 and is used
//    to validate the metric laws of Theorem 4.3 directly.
//  * RunPrefix -- process-time-graph prefixes; views are the causal cones of
//    Section 3, compared via interned ids. Distances computed on length-T
//    prefixes are exact whenever they are >= 2^-T; otherwise the prefixes
//    are indistinguishable up to the horizon and 0 is returned (the infimum
//    over the unseen future is unknowable from a prefix).
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "ptg/prefix.hpp"
#include "ptg/view_intern.hpp"

namespace topocon {

/// Sentinel for "no divergence within the common horizon".
inline constexpr int kNoDivergence = -1;

// -------------------------------------------------------------------------
// Abstract configuration sequences (Figure 3 style).

/// states[t][p] = opaque local state of process p at time t.
struct LabelledExecution {
  std::vector<std::vector<int>> states;

  int num_processes() const {
    return states.empty() ? 0 : static_cast<int>(states.front().size());
  }
  int length() const { return static_cast<int>(states.size()); }
};

/// First time the {p}-views differ, or kNoDivergence.
int divergence_time(const LabelledExecution& a, const LabelledExecution& b,
                    ProcessId p);

/// d_{p}; 0 if no divergence within the horizon.
double d_process(const LabelledExecution& a, const LabelledExecution& b,
                 ProcessId p);

/// d_P for a set of processes: first time the joint P-view differs.
double d_pset(const LabelledExecution& a, const LabelledExecution& b,
              NodeMask pset);

/// d_min = min_p d_{p} (Lemma 4.8).
double d_min(const LabelledExecution& a, const LabelledExecution& b);

/// d_max = d_[n], the common-prefix metric (Theorem 4.3, last item).
double d_max(const LabelledExecution& a, const LabelledExecution& b);

// -------------------------------------------------------------------------
// Process-time-graph prefixes (Section 3 views).

/// First t in [0, min(len_a, len_b)] with V_p(a^t) != V_p(b^t), else
/// kNoDivergence. Both prefixes must use `interner` for all their views.
int divergence_time(ViewInterner& interner, const RunPrefix& a,
                    const RunPrefix& b, ProcessId p);

double d_process(ViewInterner& interner, const RunPrefix& a,
                 const RunPrefix& b, ProcessId p);

double d_pset(ViewInterner& interner, const RunPrefix& a, const RunPrefix& b,
              NodeMask pset);

double d_min(ViewInterner& interner, const RunPrefix& a, const RunPrefix& b);

double d_max(ViewInterner& interner, const RunPrefix& a, const RunPrefix& b);

/// Diameter sup{d(a,b)} of a finite set of prefixes under d_min
/// (Definition 5.7).
double diameter_min(ViewInterner& interner,
                    const std::vector<RunPrefix>& prefixes);

/// Set distance inf{d(a,b)} under d_min (Definition 5.12 analogue).
double distance_min(ViewInterner& interner,
                    const std::vector<RunPrefix>& a,
                    const std::vector<RunPrefix>& b);

}  // namespace topocon
