// Iterative-deepening consensus-solvability checker.
//
// For a message adversary MA this driver runs the depth-t analysis of
// Definition 6.2 for t = 1, 2, ... and stops with:
//
//  * kSolvable(t): the epsilon = 2^-t components separate the valences
//    (Corollary 5.6 / Theorem 6.6). The certificate is constructive -- a
//    DecisionTable implementing the universal algorithm of Theorem 5.5 that
//    decides every admissible sequence by round t.
//  * kNotSeparated: valences still merged at max_depth. For a compact
//    adversary this is evidence of impossibility (it is conclusive in the
//    limit: by Theorem 6.6, solvability implies separation at some finite
//    depth; the benchmarked families' ground truths are encoded in
//    analysis/oracles.*). For a non-compact adversary the checker only ever
//    sees the closure, and Section 6.3 of the paper *predicts* permanent
//    mergedness even for solvable adversaries -- reproduced in bench E7.
//  * kResourceLimit: the state space exceeded options.max_states.
//
// Solvability is in general only semi-decidable from prefix information;
// this mirrors the structure of the paper, which characterizes solvability
// topologically but does not (and cannot, for black-box adversaries)
// provide a uniform decision procedure.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/decision_table.hpp"
#include "core/epsilon_approx.hpp"

namespace topocon {

enum class SolvabilityVerdict {
  kSolvable,
  kNotSeparated,
  kResourceLimit,
};

const char* to_string(SolvabilityVerdict verdict);
/// Inverse of to_string(SolvabilityVerdict); nullopt for unknown names.
std::optional<SolvabilityVerdict> parse_solvability_verdict(
    std::string_view name);

struct SolvabilityOptions {
  int max_depth = 10;
  int num_values = 2;
  std::size_t max_states = 2'000'000;
  /// Build the universal-algorithm decision table on success.
  bool build_table = true;
  /// Additionally require Theorem 6.6's broadcastability of all valent
  /// components, witnessed within the certifying depth.
  bool require_broadcastable = false;
  /// Certify (and extract the table for) strong validity: every decision
  /// value must be some process's input. Deepening remains sound: once a
  /// component is broadcastable its broadcaster's uniform input provides a
  /// strong assignment, so solvable adversaries certify eventually.
  bool strong_validity = false;
  /// Optional per-job telemetry sink, copied into every depth's
  /// AnalysisOptions (telemetry/metrics.hpp). An execution detail: never
  /// serialized, never changes a verdict byte; null = no collection.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Out-of-core spill knobs, copied into every depth's AnalysisOptions
  /// (core/spill.*). Same execution-detail contract as `metrics`.
  SpillOptions spill = {};
};

struct DepthStats {
  int depth = 0;
  std::size_t num_leaf_classes = 0;
  int num_components = 0;
  int merged_components = 0;
  bool separated = false;
  bool valent_broadcastable = false;
  bool strong_assignable = false;
  std::size_t interner_views = 0;

  friend bool operator==(const DepthStats&, const DepthStats&) = default;
};

struct SolvabilityResult {
  SolvabilityVerdict verdict = SolvabilityVerdict::kNotSeparated;
  /// Depth of the certificate when solvable; -1 otherwise.
  int certified_depth = -1;
  /// True iff the adversary is non-compact, i.e. the analysis covered the
  /// topological closure rather than the adversary itself.
  bool closure_only = false;
  /// Per-depth statistics, depth 1..last analyzed (series for bench E6).
  std::vector<DepthStats> per_depth;
  /// The final (certifying or deepest) analysis, with levels retained when
  /// a certificate was produced.
  std::optional<DepthAnalysis> analysis;
  /// Universal algorithm (Theorem 5.5) when solvable and build_table.
  std::optional<DecisionTable> table;
};

SolvabilityResult check_solvability(const MessageAdversary& adversary,
                                    const SolvabilityOptions& options = {});

/// REFERENCE implementation of check_solvability(): the same iterative-
/// deepening driver (check_solvability_with) over analyze_depth_oracle,
/// the single-scan expansion, instead of the chunked FrontierEngine.
/// Verdict, certified depth, per-depth statistics (including interned-
/// view counts), and the final analysis must be identical to the serial
/// checker and to parallel_check_solvability at every chunk size and
/// thread count; the fuzz differential harness asserts exactly that.
SolvabilityResult check_solvability_oracle(
    const MessageAdversary& adversary, const SolvabilityOptions& options = {});

/// The iterative-deepening driver behind check_solvability, parameterized
/// over the per-depth analysis: `analyze` receives the depth's
/// AnalysisOptions and the interner shared across all depths of this
/// check, and returns the DepthAnalysis. The parallel sweep engine passes
/// its sharded analysis here; check_solvability passes analyze_depth.
/// Keeping one driver guarantees serial and parallel verdicts can only
/// differ if the analyses differ.
using DepthAnalyzeFn = std::function<DepthAnalysis(
    const AnalysisOptions&, const std::shared_ptr<ViewInterner>&)>;
/// Streaming progress callback: invoked once per completed depth with the
/// depth's aggregate statistics, in depth order, before the verdict is
/// known. Purely observational -- the result is identical with or without
/// it. Feeds api::Observer::on_depth.
using DepthProgressFn = std::function<void(const DepthStats&)>;
SolvabilityResult check_solvability_with(const MessageAdversary& adversary,
                                         const SolvabilityOptions& options,
                                         const DepthAnalyzeFn& analyze,
                                         const DepthProgressFn& on_depth = {});

}  // namespace topocon
