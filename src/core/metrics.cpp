#include "core/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace topocon {

namespace {

double to_distance(int divergence) {
  if (divergence == kNoDivergence) return 0.0;
  return std::ldexp(1.0, -divergence);  // 2^-t
}

}  // namespace

// ---------------------------------------------------------------- labelled

int divergence_time(const LabelledExecution& a, const LabelledExecution& b,
                    ProcessId p) {
  const int horizon = std::min(a.length(), b.length());
  for (int t = 0; t < horizon; ++t) {
    if (a.states[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)] !=
        b.states[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)]) {
      return t;
    }
  }
  return kNoDivergence;
}

double d_process(const LabelledExecution& a, const LabelledExecution& b,
                 ProcessId p) {
  return to_distance(divergence_time(a, b, p));
}

double d_pset(const LabelledExecution& a, const LabelledExecution& b,
              NodeMask pset) {
  // The joint P-view differs as soon as any member's view differs, so
  // d_P = max_{p in P} d_{p} (monotonicity, Theorem 4.3).
  double result = 0.0;
  NodeMask rest = pset;
  while (rest != 0) {
    const int p = std::countr_zero(rest);
    rest &= rest - 1;
    result = std::max(result, d_process(a, b, p));
  }
  return result;
}

double d_min(const LabelledExecution& a, const LabelledExecution& b) {
  assert(a.num_processes() == b.num_processes());
  double result = 1.0;
  for (int p = 0; p < a.num_processes(); ++p) {
    result = std::min(result, d_process(a, b, p));
  }
  return result;
}

double d_max(const LabelledExecution& a, const LabelledExecution& b) {
  return d_pset(a, b, full_mask(a.num_processes()));
}

// ---------------------------------------------------------------- prefixes

int divergence_time(ViewInterner& interner, const RunPrefix& a,
                    const RunPrefix& b, ProcessId p) {
  assert(a.num_processes() == b.num_processes());
  const int horizon = std::min(a.length(), b.length());
  ViewVector va = interner.initial(a.inputs);
  ViewVector vb = interner.initial(b.inputs);
  const auto pi = static_cast<std::size_t>(p);
  if (va[pi] != vb[pi]) return 0;
  for (int t = 1; t <= horizon; ++t) {
    va = interner.advance(va, a.graphs[static_cast<std::size_t>(t - 1)]);
    vb = interner.advance(vb, b.graphs[static_cast<std::size_t>(t - 1)]);
    if (va[pi] != vb[pi]) return t;
  }
  return kNoDivergence;
}

double d_process(ViewInterner& interner, const RunPrefix& a,
                 const RunPrefix& b, ProcessId p) {
  return to_distance(divergence_time(interner, a, b, p));
}

double d_pset(ViewInterner& interner, const RunPrefix& a, const RunPrefix& b,
              NodeMask pset) {
  double result = 0.0;
  NodeMask rest = pset;
  while (rest != 0) {
    const int p = std::countr_zero(rest);
    rest &= rest - 1;
    result = std::max(result, d_process(interner, a, b, p));
  }
  return result;
}

double d_min(ViewInterner& interner, const RunPrefix& a, const RunPrefix& b) {
  double result = 1.0;
  for (int p = 0; p < a.num_processes(); ++p) {
    result = std::min(result, d_process(interner, a, b, p));
  }
  return result;
}

double d_max(ViewInterner& interner, const RunPrefix& a, const RunPrefix& b) {
  return d_pset(interner, a, b, full_mask(a.num_processes()));
}

double diameter_min(ViewInterner& interner,
                    const std::vector<RunPrefix>& prefixes) {
  double diameter = 0.0;
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    for (std::size_t j = i + 1; j < prefixes.size(); ++j) {
      diameter = std::max(diameter, d_min(interner, prefixes[i], prefixes[j]));
    }
  }
  return diameter;
}

double distance_min(ViewInterner& interner, const std::vector<RunPrefix>& a,
                    const std::vector<RunPrefix>& b) {
  double distance = 1.0;
  for (const RunPrefix& pa : a) {
    for (const RunPrefix& pb : b) {
      distance = std::min(distance, d_min(interner, pa, pb));
    }
  }
  return distance;
}

}  // namespace topocon
