#include "core/spill.hpp"

#include <unistd.h>

#include <cassert>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <system_error>
#include <utility>
#include <vector>

namespace topocon {

namespace {

// "TOPOSPL1" little-endian; spill files never cross a process boundary
// (the owning FrontierSpill unlinks them), so host endianness is fine
// and the magic only guards against torn or foreign files.
constexpr std::uint64_t kSpillMagic = 0x314c50534f504f54ull;

constexpr std::size_t kIoBuffer = std::size_t{1} << 20;

std::mutex g_default_spill_mutex;
SpillOptions g_default_spill;

std::atomic<std::uint64_t> g_spill_dir_seq{0};

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("spill: " + what + ": " + path);
}

/// Buffered binary writer: put() appends POD fields to an in-memory
/// block flushed at kIoBuffer, so multi-million-state chunks cost large
/// sequential fwrites, not one syscall per field.
class Writer {
 public:
  explicit Writer(const std::string& path) : path_(path) {
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr) fail("cannot create spill file", path_);
    buffer_.resize(kIoBuffer);
  }
  ~Writer() {
    if (file_ != nullptr) std::fclose(file_);
  }

  template <typename T>
  void put(T value) {
    put_raw(&value, sizeof(T));
  }
  void put_raw(const void* data, std::size_t bytes) {
    if (bytes > buffer_.size() - used_) {
      flush();
      if (bytes >= buffer_.size()) {
        if (std::fwrite(data, 1, bytes, file_) != bytes) {
          fail("short write", path_);
        }
        total_ += bytes;
        return;
      }
    }
    std::memcpy(buffer_.data() + used_, data, bytes);
    used_ += bytes;
    total_ += bytes;
  }

  /// Flushes and closes; returns the bytes written.
  std::uint64_t finish() {
    flush();
    if (std::fclose(file_) != 0) {
      file_ = nullptr;
      fail("short write", path_);
    }
    file_ = nullptr;
    return total_;
  }

 private:
  void flush() {
    if (used_ == 0) return;
    if (std::fwrite(buffer_.data(), 1, used_, file_) != used_) {
      fail("short write", path_);
    }
    used_ = 0;
  }

  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<unsigned char> buffer_;
  std::size_t used_ = 0;
  std::uint64_t total_ = 0;
};

class Reader {
 public:
  explicit Reader(const std::string& path) : path_(path) {
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr) fail("cannot open spill file", path_);
    std::setvbuf(file_, nullptr, _IOFBF, kIoBuffer);
  }
  ~Reader() {
    if (file_ != nullptr) std::fclose(file_);
  }

  template <typename T>
  T get() {
    T value;
    get_raw(&value, sizeof(T));
    return value;
  }
  void get_raw(void* data, std::size_t bytes) {
    if (std::fread(data, 1, bytes, file_) != bytes) {
      fail("short read", path_);
    }
  }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

std::uint64_t sat_mul64(std::uint64_t a, std::uint64_t b) {
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  if (a == 0 || b == 0) return 0;
  return a > kMax / b ? kMax : a * b;
}

}  // namespace

void set_default_spill(const SpillOptions& options) {
  const std::lock_guard<std::mutex> lock(g_default_spill_mutex);
  g_default_spill = options;
}

SpillOptions default_spill() {
  const std::lock_guard<std::mutex> lock(g_default_spill_mutex);
  return g_default_spill;
}

std::uint64_t spill_budget_mb_to_bytes(std::uint64_t mb) {
  return sat_mul64(mb, std::uint64_t{1} << 20);
}

SpillOptions resolve_spill(const SpillOptions& options) {
  SpillOptions resolved = options;
  const SpillOptions fallback = default_spill();
  if (resolved.budget_bytes == 0) resolved.budget_bytes = fallback.budget_bytes;
  // The dir falls back independently: a job that pins only its budget
  // (e.g. a scenario builder) still honors a CLI-set --spill-dir.
  if (resolved.dir.empty()) resolved.dir = fallback.dir;
  return resolved;
}

/// Private (de)serializer; as a member of FrontierSpill it shares the
/// WordSeqIndex friendship needed to rebuild tables without their probe
/// arrays.
struct FrontierSpill::Io {
  static void save_table(Writer& writer, const WordSeqIndex& table) {
    writer.put<std::uint64_t>(table.pool_.size());
    writer.put_raw(table.pool_.data(),
                   table.pool_.size() * sizeof(std::uint32_t));
    writer.put<std::uint64_t>(table.entries_.size());
    for (const WordSeqIndex::Entry& entry : table.entries_) {
      writer.put<std::uint64_t>(entry.offset);
      writer.put<std::uint32_t>(entry.count);
    }
  }

  static void load_table(Reader& reader, WordSeqIndex& table) {
    table.pool_.resize(reader.get<std::uint64_t>());
    reader.get_raw(table.pool_.data(),
                   table.pool_.size() * sizeof(std::uint32_t));
    table.entries_.resize(reader.get<std::uint64_t>());
    for (WordSeqIndex::Entry& entry : table.entries_) {
      entry.offset = reader.get<std::uint64_t>();
      entry.count = reader.get<std::uint32_t>();
      entry.hash = 0;
    }
    // No probe table: like after append_new, the restored table serves
    // words_of/count_of/size only, which is all merge()/commit() use.
    table.appended_ = true;
  }

  static void save_chunk(Writer& writer, const PendingFrontier& chunk) {
    writer.put<std::uint64_t>(kSpillMagic);
    writer.put<std::uint64_t>(chunk.states.size());
    const std::uint32_t n_inputs =
        chunk.states.empty()
            ? 0
            : static_cast<std::uint32_t>(chunk.states.front().inputs.size());
    const std::uint32_t n_reach =
        chunk.states.empty()
            ? 0
            : static_cast<std::uint32_t>(chunk.states.front().reach.size());
    writer.put<std::uint32_t>(n_inputs);
    writer.put<std::uint32_t>(n_reach);
    for (const PendingState& state : chunk.states) {
      assert(state.inputs.size() == n_inputs && state.reach.size() == n_reach);
      writer.put_raw(state.inputs.data(), n_inputs * sizeof(Value));
      writer.put_raw(state.reach.data(), n_reach * sizeof(NodeMask));
      writer.put<AdvState>(state.adv_state);
      writer.put<std::uint64_t>(state.multiplicity);
      writer.put<std::int32_t>(state.parent);
      writer.put<std::int32_t>(state.letter);
    }
    save_table(writer, chunk.views);
    save_table(writer, chunk.state_index);
    writer.put<std::uint64_t>(chunk.children.size());
    for (const std::vector<int>& kids : chunk.children) {
      writer.put<std::uint64_t>(kids.size());
      writer.put_raw(kids.data(), kids.size() * sizeof(int));
    }
  }

  static void load_chunk(Reader& reader, PendingFrontier& chunk) {
    if (reader.get<std::uint64_t>() != kSpillMagic) {
      fail("bad magic", chunk.spilled->path());
    }
    chunk.states.resize(reader.get<std::uint64_t>());
    const auto n_inputs = reader.get<std::uint32_t>();
    const auto n_reach = reader.get<std::uint32_t>();
    for (PendingState& state : chunk.states) {
      state.inputs.resize(n_inputs);
      reader.get_raw(state.inputs.data(), n_inputs * sizeof(Value));
      state.reach.resize(n_reach);
      reader.get_raw(state.reach.data(), n_reach * sizeof(NodeMask));
      state.adv_state = reader.get<AdvState>();
      state.multiplicity = reader.get<std::uint64_t>();
      state.parent = reader.get<std::int32_t>();
      state.letter = reader.get<std::int32_t>();
    }
    load_table(reader, chunk.views);
    load_table(reader, chunk.state_index);
    chunk.children.resize(reader.get<std::uint64_t>());
    for (std::vector<int>& kids : chunk.children) {
      kids.resize(reader.get<std::uint64_t>());
      reader.get_raw(kids.data(), kids.size() * sizeof(int));
    }
  }
};

SpillTicket::~SpillTicket() {
  std::error_code ec;
  std::filesystem::remove(path_, ec);  // best effort; the dir is removed too
}

FrontierSpill::FrontierSpill(const SpillOptions& options)
    : options_(options) {
  assert(options_.budget_bytes > 0 && "construct only when enabled");
  const std::filesystem::path base =
      options_.dir.empty() ? std::filesystem::temp_directory_path()
                           : std::filesystem::path(options_.dir);
  const std::filesystem::path sub =
      base / ("topocon-spill-" + std::to_string(::getpid()) + "-" +
              std::to_string(g_spill_dir_seq.fetch_add(
                  1, std::memory_order_relaxed)));
  std::error_code ec;
  std::filesystem::create_directories(sub, ec);
  if (ec) fail("cannot create spill directory", sub.string());
  dir_ = sub.string();
}

FrontierSpill::~FrontierSpill() {
  std::error_code ec;
  std::filesystem::remove_all(dir_, ec);
}

bool FrontierSpill::should_spill(const PendingFrontier& chunk,
                                 std::size_t level_chunks) const {
  if (chunk.spilled != nullptr || chunk.overflow) return false;
  const std::uint64_t bytes = chunk.approx_bytes();
  return sat_mul64(bytes, level_chunks) > options_.budget_bytes;
}

void FrontierSpill::spill(PendingFrontier& chunk) {
  assert(chunk.spilled == nullptr);
  const std::string path =
      dir_ + "/chunk-" +
      std::to_string(next_file_.fetch_add(1, std::memory_order_relaxed)) +
      ".bin";
  Writer writer(path);
  Io::save_chunk(writer, chunk);
  const std::uint64_t written = writer.finish();
  // Release the payload; the shell (chunk bounds, overflow, stats) stays.
  chunk.states = {};
  chunk.views = WordSeqIndex{};
  chunk.state_index = WordSeqIndex{};
  chunk.children = {};
  chunk.spilled = std::make_shared<SpillTicket>(path, written, this);
  staged_chunks_.fetch_add(1, std::memory_order_relaxed);
  staged_written_.fetch_add(written, std::memory_order_relaxed);
}

bool FrontierSpill::maybe_spill(PendingFrontier& chunk,
                                std::size_t level_chunks) {
  if (!should_spill(chunk, level_chunks)) return false;
  spill(chunk);
  return true;
}

void FrontierSpill::commit_level() {
  const std::uint64_t chunks =
      staged_chunks_.exchange(0, std::memory_order_relaxed);
  committed_.chunks_spilled += chunks;
  committed_.bytes_written +=
      staged_written_.exchange(0, std::memory_order_relaxed);
  committed_.bytes_replayed +=
      staged_replayed_.exchange(0, std::memory_order_relaxed);
  if (chunks > 0) ++committed_.replay_passes;
}

void FrontierSpill::discard_staged() {
  staged_chunks_.store(0, std::memory_order_relaxed);
  staged_written_.store(0, std::memory_order_relaxed);
  staged_replayed_.store(0, std::memory_order_relaxed);
}

FrontierSpill::Stats FrontierSpill::stats() const { return committed_; }

void restore_spilled(PendingFrontier& chunk) {
  assert(chunk.spilled != nullptr);
  {
    Reader reader(chunk.spilled->path());
    FrontierSpill::Io::load_chunk(reader, chunk);
  }
  FrontierSpill* owner = chunk.spilled->owner();
  if (owner != nullptr) {
    owner->staged_replayed_.fetch_add(chunk.spilled->bytes(),
                                      std::memory_order_relaxed);
  }
  chunk.spilled.reset();  // consumed: unlinks the file
}

}  // namespace topocon
