// Obstructions to consensus: the library's executable counterpart of the
// paper's Section 6.1 (bivalence-based impossibilities) and of the fair /
// unfair limit sequences of Definition 5.16 and Corollary 5.19.
//
// A *merged* component at depth t contains both a v-valent and a w-valent
// prefix class: at resolution epsilon = 2^-t the valence regions are still
// chain-connected. A sequence of analyses over growing t in which some
// component stays merged is exactly the skeleton of a bivalence proof: the
// merged leaf prefixes extend each other and converge (in the
// process-view / minimum topologies) to a forever-bivalent limit -- a fair
// sequence. This module extracts all of that as concrete data:
//
//  * bivalence_series: per-depth counts of merged components (the
//    "bivalent configurations survive" curve; dies at depth 1 for the
//    solvable lossy-link subset {<-, ->}, never dies for {<-, <->, ->}).
//  * find_merged_chain: for a merged analysis, a concrete chain of
//    admissible prefixes from a v-valent to a w-valent leaf in which
//    consecutive prefixes are indistinguishable to some process --
//    the epsilon-chain behind Definition 6.2.
//  * fair_sequence_prefix: a prefix of a fair sequence: a single run whose
//    depth-s component is merged at *every* analysis depth s <= t (its
//    extensions can still decide either value; Definition 5.16's r).
#pragma once

#include <optional>
#include <vector>

#include "core/epsilon_approx.hpp"

namespace topocon {

struct BivalencePoint {
  int depth = 0;
  std::size_t num_leaf_classes = 0;
  int num_components = 0;
  int merged_components = 0;
};

/// Component/merge counts for depths 1..max_depth (E4 series).
std::vector<BivalencePoint> bivalence_series(
    const MessageAdversary& adversary, int max_depth, int num_values = 2,
    std::size_t max_states = 2'000'000);

/// An epsilon-chain witnessing that two valences are merged at the given
/// depth: consecutive prefixes share the view of `witness[i]`.
struct MergedChain {
  int depth = 0;
  std::vector<RunPrefix> chain;
  std::vector<ProcessId> witness;  // size = chain.size() - 1
};

/// Finds a chain from a v0-valent to a v1-valent leaf inside one component
/// of `analysis` (which must have been built with keep_levels). Returns
/// nullopt iff no component contains both valences.
std::optional<MergedChain> find_merged_chain(const MessageAdversary& adversary,
                                             const DepthAnalysis& analysis,
                                             Value v0, Value v1);

/// A length-`depth` prefix of a fair sequence: its component is merged at
/// the depth-t analysis (hence at every shallower depth too, since
/// components only refine as t grows). Prefers a mixed-input witness, the
/// shape bivalence proofs construct. Returns nullopt if the adversary is
/// separated at this depth.
std::optional<RunPrefix> fair_sequence_prefix(
    const MessageAdversary& adversary, int depth, int num_values = 2,
    std::size_t max_states = 2'000'000);

}  // namespace topocon
