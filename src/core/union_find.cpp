#include "core/union_find.hpp"

#include <numeric>

namespace topocon {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), size_(n, 1), num_sets_(static_cast<int>(n)) {
  std::iota(parent_.begin(), parent_.end(), 0);
}

int UnionFind::find(int x) {
  while (parent_[static_cast<std::size_t>(x)] != x) {
    parent_[static_cast<std::size_t>(x)] =
        parent_[static_cast<std::size_t>(
            parent_[static_cast<std::size_t>(x)])];
    x = parent_[static_cast<std::size_t>(x)];
  }
  return x;
}

bool UnionFind::unite(int a, int b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[static_cast<std::size_t>(a)] < size_[static_cast<std::size_t>(b)]) {
    std::swap(a, b);
  }
  parent_[static_cast<std::size_t>(b)] = a;
  size_[static_cast<std::size_t>(a)] += size_[static_cast<std::size_t>(b)];
  --num_sets_;
  return true;
}

std::vector<int> UnionFind::component_ids() {
  std::vector<int> ids(parent_.size(), -1);
  std::vector<int> root_to_id(parent_.size(), -1);
  int next = 0;
  for (std::size_t x = 0; x < parent_.size(); ++x) {
    const int root = find(static_cast<int>(x));
    if (root_to_id[static_cast<std::size_t>(root)] < 0) {
      root_to_id[static_cast<std::size_t>(root)] = next++;
    }
    ids[x] = root_to_id[static_cast<std::size_t>(root)];
  }
  return ids;
}

}  // namespace topocon
