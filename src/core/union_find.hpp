// Disjoint-set forest with path halving and union by size.
#pragma once

#include <vector>

namespace topocon {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  /// Representative of x's set.
  int find(int x);

  /// Merges the sets of a and b; returns true if they were distinct.
  bool unite(int a, int b);

  std::size_t size() const { return parent_.size(); }
  int num_sets() const { return num_sets_; }

  /// Renumbers sets densely: result[x] = component id in [0, num_sets).
  /// Ids are ordered by first occurrence.
  std::vector<int> component_ids();

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
  int num_sets_;
};

}  // namespace topocon
