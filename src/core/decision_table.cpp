#include "core/decision_table.hpp"

#include <bit>
#include <cassert>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>

namespace topocon {

DecisionTable DecisionTable::build(const DepthAnalysis& analysis,
                                   bool strong_validity) {
  assert(analysis.valence_separated &&
         "decision tables require a valence-separated analysis");
  assert((!strong_validity || analysis.strong_assignable) &&
         "strong tables require a strong-assignable analysis");
  assert(analysis.levels.size() ==
             static_cast<std::size_t>(analysis.depth) + 1 &&
         "decision tables require keep_levels");
  DecisionTable table;
  table.depth_ = analysis.depth;
  table.num_values_ = analysis.num_values;
  table.interner_ = analysis.interner;

  const std::size_t num_levels = analysis.levels.size();
  // value_mask[i] at the current level: bitmask of component values
  // reachable from prefix class i.
  std::vector<std::uint32_t> value_mask;

  // Bottom-up over levels; build the per-level aggregation maps.
  std::vector<std::vector<std::uint32_t>> masks_per_level(num_levels);
  {
    const std::vector<PrefixState>& leaves = analysis.levels.back();
    value_mask.resize(leaves.size());
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      const int comp = analysis.leaf_component[i];
      const ComponentInfo& info =
          analysis.components[static_cast<std::size_t>(comp)];
      const Value v =
          strong_validity ? info.assigned_value_strong : info.assigned_value;
      assert(v >= 0);
      value_mask[i] = 1u << v;
    }
    masks_per_level[num_levels - 1] = value_mask;
  }
  for (std::size_t s = num_levels - 1; s-- > 0;) {
    const std::vector<std::vector<int>>& children = analysis.children[s];
    std::vector<std::uint32_t> up(analysis.levels[s].size(), 0);
    for (std::size_t i = 0; i < children.size(); ++i) {
      for (const int child : children[i]) {
        up[i] |= masks_per_level[s + 1][static_cast<std::size_t>(child)];
      }
    }
    masks_per_level[s] = std::move(up);
  }

  // Aggregate per level by (process, view id): the ball around a local view
  // is the union over *all* classes at this level sharing that view.
  const int n = analysis.num_processes;
  table.by_level_.resize(num_levels);
  table.decided_fraction_.assign(num_levels, 0.0);
  for (std::size_t s = 0; s < num_levels; ++s) {
    std::unordered_map<std::uint64_t, std::uint32_t> agg;
    const std::vector<PrefixState>& level = analysis.levels[s];
    for (std::size_t i = 0; i < level.size(); ++i) {
      for (int p = 0; p < n; ++p) {
        agg[key(p, level[i].views[static_cast<std::size_t>(p)])] |=
            masks_per_level[s][i];
      }
    }
    for (const auto& [k, mask] : agg) {
      if (std::popcount(mask) == 1) {
        table.by_level_[s].emplace(k, std::countr_zero(mask));
      }
    }
    // Diagnostics: multiplicity-weighted fraction of classes whose every
    // process has decided by the end of this round.
    std::uint64_t total = 0, decided = 0;
    for (const PrefixState& state : level) {
      total += state.multiplicity;
      bool all = true;
      for (int p = 0; p < n; ++p) {
        const auto it = table.by_level_[s].find(
            key(p, state.views[static_cast<std::size_t>(p)]));
        if (it == table.by_level_[s].end()) {
          all = false;
          break;
        }
      }
      if (all) decided += state.multiplicity;
    }
    table.decided_fraction_[s] =
        total == 0 ? 0.0
                   : static_cast<double>(decided) / static_cast<double>(total);
  }
  return table;
}

std::optional<Value> DecisionTable::decide(int round, ProcessId p,
                                           ViewId view) const {
  if (round < 0 || static_cast<std::size_t>(round) >= by_level_.size()) {
    return std::nullopt;
  }
  const auto& level = by_level_[static_cast<std::size_t>(round)];
  const auto it = level.find(key(p, view));
  if (it == level.end()) return std::nullopt;
  return it->second;
}

int DecisionTable::worst_case_decision_round() const {
  for (std::size_t s = 0; s < decided_fraction_.size(); ++s) {
    if (decided_fraction_[s] >= 1.0) return static_cast<int>(s);
  }
  return depth_;
}

std::size_t DecisionTable::size() const {
  std::size_t total = 0;
  for (const auto& level : by_level_) {
    total += level.size();
  }
  return total;
}

std::vector<std::size_t> DecisionTable::entries_per_round() const {
  std::vector<std::size_t> per_round;
  per_round.reserve(by_level_.size());
  for (const auto& level : by_level_) {
    per_round.push_back(level.size());
  }
  return per_round;
}

namespace {
constexpr const char* kMagic = "topocon-decision-table-v1";
}

void DecisionTable::save(std::ostream& out) const {
  out << kMagic << '\n';
  out << depth_ << ' ' << num_values_ << '\n';
  const ViewInterner& interner = *interner_;
  out << "interner " << interner.size() << '\n';
  for (std::size_t id = 0; id < interner.size(); ++id) {
    const ViewInterner::Node& node =
        interner.node(static_cast<ViewId>(id));
    if (node.depth == 0) {
      out << "B " << node.process << ' ' << node.input << '\n';
    } else {
      out << "S " << node.process << ' ' << node.mask << ' '
          << node.senders.size();
      for (const ViewId sender : node.senders) {
        out << ' ' << sender;
      }
      out << '\n';
    }
  }
  out << "levels " << by_level_.size() << '\n';
  for (const auto& level : by_level_) {
    out << "level " << level.size() << '\n';
    // Deterministic order for reproducible artifacts.
    std::map<std::uint64_t, Value> sorted(level.begin(), level.end());
    for (const auto& [k, v] : sorted) {
      out << k << ' ' << v << '\n';
    }
  }
  out << "fractions " << decided_fraction_.size();
  for (const double f : decided_fraction_) {
    out << ' ' << f;
  }
  out << '\n';
}

DecisionTable DecisionTable::load(std::istream& in) {
  auto fail = [](const char* what) -> void {
    throw std::runtime_error(std::string("DecisionTable::load: ") + what);
  };
  std::string token;
  in >> token;
  if (token != kMagic) fail("bad magic");
  DecisionTable table;
  in >> table.depth_ >> table.num_values_;
  in >> token;
  if (token != "interner") fail("expected interner section");
  std::size_t num_nodes = 0;
  in >> num_nodes;
  table.interner_ = std::make_shared<ViewInterner>();
  ViewInterner& interner = *table.interner_;
  for (std::size_t id = 0; id < num_nodes; ++id) {
    in >> token;
    ViewId created = -1;
    if (token == "B") {
      ProcessId p;
      Value x;
      in >> p >> x;
      created = interner.base(p, x);
    } else if (token == "S") {
      ProcessId q;
      NodeMask mask;
      std::size_t count;
      in >> q >> mask >> count;
      std::vector<ViewId> senders(count);
      for (ViewId& sender : senders) {
        in >> sender;
        if (sender < 0 || static_cast<std::size_t>(sender) >= id) {
          fail("forward sender reference");
        }
      }
      created = interner.step(q, mask, senders);
    } else {
      fail("unknown node kind");
    }
    if (created != static_cast<ViewId>(id)) fail("id mismatch");
  }
  in >> token;
  if (token != "levels") fail("expected levels section");
  std::size_t num_levels = 0;
  in >> num_levels;
  table.by_level_.resize(num_levels);
  for (std::size_t s = 0; s < num_levels; ++s) {
    in >> token;
    if (token != "level") fail("expected level header");
    std::size_t entries = 0;
    in >> entries;
    for (std::size_t e = 0; e < entries; ++e) {
      std::uint64_t k;
      Value v;
      in >> k >> v;
      table.by_level_[s].emplace(k, v);
    }
  }
  in >> token;
  if (token != "fractions") fail("expected fractions section");
  std::size_t count = 0;
  in >> count;
  table.decided_fraction_.resize(count);
  for (double& f : table.decided_fraction_) {
    in >> f;
  }
  if (!in) fail("truncated input");
  return table;
}

}  // namespace topocon
