#include "core/solvability.hpp"

#include <memory>
#include <string>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace topocon {

const char* to_string(SolvabilityVerdict verdict) {
  switch (verdict) {
    case SolvabilityVerdict::kSolvable: return "SOLVABLE";
    case SolvabilityVerdict::kNotSeparated: return "NOT-SEPARATED";
    case SolvabilityVerdict::kResourceLimit: return "RESOURCE-LIMIT";
  }
  return "?";
}

std::optional<SolvabilityVerdict> parse_solvability_verdict(
    std::string_view name) {
  if (name == "SOLVABLE") return SolvabilityVerdict::kSolvable;
  if (name == "NOT-SEPARATED") return SolvabilityVerdict::kNotSeparated;
  if (name == "RESOURCE-LIMIT") return SolvabilityVerdict::kResourceLimit;
  return std::nullopt;
}

SolvabilityResult check_solvability(const MessageAdversary& adversary,
                                    const SolvabilityOptions& options) {
  return check_solvability_with(
      adversary, options,
      [&adversary](const AnalysisOptions& analysis_options,
                   const std::shared_ptr<ViewInterner>& interner) {
        return analyze_depth(adversary, analysis_options, interner);
      });
}

SolvabilityResult check_solvability_oracle(const MessageAdversary& adversary,
                                           const SolvabilityOptions& options) {
  return check_solvability_with(
      adversary, options,
      [&adversary](const AnalysisOptions& analysis_options,
                   const std::shared_ptr<ViewInterner>& interner) {
        return analyze_depth_oracle(adversary, analysis_options, interner);
      });
}

SolvabilityResult check_solvability_with(const MessageAdversary& adversary,
                                         const SolvabilityOptions& options,
                                         const DepthAnalyzeFn& analyze,
                                         const DepthProgressFn& on_depth) {
  SolvabilityResult result;
  result.closure_only = !adversary.is_compact();
  auto interner = std::make_shared<ViewInterner>();
  telemetry::TraceWriter* trace =
      options.metrics != nullptr ? options.metrics->trace() : nullptr;

  for (int depth = 1; depth <= options.max_depth; ++depth) {
    AnalysisOptions analysis_options;
    analysis_options.depth = depth;
    analysis_options.num_values = options.num_values;
    analysis_options.max_states = options.max_states;
    analysis_options.keep_levels = false;  // cheap pass first
    analysis_options.metrics = options.metrics;
    analysis_options.spill = options.spill;
    const std::uint64_t span_start =
        trace != nullptr ? trace->now_us() : 0;
    DepthAnalysis cheap = analyze(analysis_options, interner);
    if (trace != nullptr) {
      trace->complete(
          "depth " + std::to_string(depth), "depth", span_start,
          trace->now_us() - span_start,
          {telemetry::TraceArg::num("depth", static_cast<std::uint64_t>(depth)),
           telemetry::TraceArg::num("leaf_classes", cheap.leaves().size())});
    }
    if (cheap.truncated) {
      result.verdict = SolvabilityVerdict::kResourceLimit;
      result.analysis = std::move(cheap);
      return result;
    }

    DepthStats stats;
    stats.depth = depth;
    stats.num_leaf_classes = cheap.leaves().size();
    stats.num_components = static_cast<int>(cheap.components.size());
    stats.merged_components = cheap.merged_components;
    stats.separated = cheap.valence_separated;
    stats.valent_broadcastable = cheap.valent_broadcastable;
    stats.strong_assignable = cheap.strong_assignable;
    stats.interner_views = interner->size();
    result.per_depth.push_back(stats);
    if (on_depth) on_depth(stats);

    const bool certified =
        cheap.valence_separated &&
        (!options.require_broadcastable || cheap.valent_broadcastable) &&
        (!options.strong_validity || cheap.strong_assignable);
    if (certified) {
      result.verdict = SolvabilityVerdict::kSolvable;
      result.certified_depth = depth;
      if (options.build_table) {
        analysis_options.keep_levels = true;
        const std::uint64_t certify_start =
            trace != nullptr ? trace->now_us() : 0;
        DepthAnalysis full = analyze(analysis_options, interner);
        if (trace != nullptr) {
          trace->complete("depth " + std::to_string(depth) + " (certify)",
                          "depth", certify_start,
                          trace->now_us() - certify_start,
                          {telemetry::TraceArg::num(
                              "depth", static_cast<std::uint64_t>(depth))});
        }
        result.table = DecisionTable::build(full, options.strong_validity);
        result.analysis = std::move(full);
      } else {
        result.analysis = std::move(cheap);
      }
      return result;
    }
    if (depth == options.max_depth) {
      result.analysis = std::move(cheap);
    }
  }
  result.verdict = SolvabilityVerdict::kNotSeparated;
  return result;
}

}  // namespace topocon
