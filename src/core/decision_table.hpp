// The universal consensus algorithm of Theorem 5.5, in executable form.
//
// The paper's construction: process p maintains its view (the causal cone
// of (p, t)) and decides value v in round t as soon as every admissible
// sequence compatible with its view lies in the decision set PS(v). Given a
// valence-separated depth analysis (core/epsilon_approx.hpp), this module
// precomputes that rule into per-round lookup tables:
//
//   decide(s, p, view-id)  =  v  iff all depth-t leaves b with
//                             pi_p(b^s) = view lie in components with
//                             assigned value v.
//
// By construction every process can decide at the latest in round t = the
// analysis depth (leaves sharing a view id are in one component), so the
// table is a total, terminating consensus algorithm for every admissible
// sequence of the analyzed adversary; runtime/universal_runner.* executes
// it in the round simulator, and the tests verify termination, agreement
// and validity exhaustively at small depth.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/epsilon_approx.hpp"
#include "ptg/view_intern.hpp"

namespace topocon {

class DecisionTable {
 public:
  /// Builds the table from a valence-separated analysis (keep_levels must
  /// have been set). Asserts on merged analyses. With strong_validity the
  /// component values of the strong assignment are used (the analysis must
  /// be strong_assignable); the resulting algorithm then also guarantees
  /// that every decision value is some process's input in that run.
  static DecisionTable build(const DepthAnalysis& analysis,
                             bool strong_validity = false);

  int depth() const { return depth_; }
  int num_values() const { return num_values_; }

  /// Shared interner; runtime view ids must come from it.
  const std::shared_ptr<ViewInterner>& interner() const { return interner_; }

  /// Decision of process p holding view id `view` at the end of round
  /// `round` (0 = initial state), or nullopt if p cannot decide yet.
  std::optional<Value> decide(int round, ProcessId p, ViewId view) const;

  /// Fraction of prefix classes (weighted by multiplicity) in which all
  /// processes have decided by the end of the given round; index = round.
  const std::vector<double>& decided_fraction() const {
    return decided_fraction_;
  }

  /// Earliest round at which every admissible sequence has fully decided.
  int worst_case_decision_round() const;

  /// Total number of (round, process, view) -> value entries.
  std::size_t size() const;

  /// Entry count per round (index = round, size = depth + 1): how many
  /// (process, view) -> value rules become applicable at each round. The
  /// integer-valued shape of the decision profile, summing to size();
  /// serialized by the sweep engine's decision-table extraction query
  /// (decided_fraction() is float-valued and therefore never serialized).
  std::vector<std::size_t> entries_per_round() const;

  /// Serializes the table together with the view-interner structure it
  /// references (a self-contained consensus-algorithm artifact: compile
  /// the certificate once, ship it to every process). Text format,
  /// versioned.
  void save(std::ostream& out) const;

  /// Loads a table written by save(). The interner is reconstructed with
  /// identical view ids (structural interning is insertion-ordered).
  /// Throws std::runtime_error on malformed input.
  static DecisionTable load(std::istream& in);

 private:
  static std::uint64_t key(ProcessId p, ViewId view) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p)) << 32) |
           static_cast<std::uint32_t>(view);
  }

  int depth_ = 0;
  int num_values_ = 2;
  std::shared_ptr<ViewInterner> interner_;
  /// by_level_[s][key(p, view)] = decided value.
  std::vector<std::unordered_map<std::uint64_t, Value>> by_level_;
  std::vector<double> decided_fraction_;
};

}  // namespace topocon
