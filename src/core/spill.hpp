// Out-of-core tier for the chunked frontier engine: expanded-but-unmerged
// PendingFrontier slices are serialized to temp files when a level's
// resident expansions would exceed a soft byte budget, then streamed back
// one at a time -- in the same deterministic (root, chunk) order the
// merge already uses -- through merge()/commit(). Spilling is an
// execution detail like the chunk size: a slice round-trips losslessly
// (states, both KeyCodec-packed dedup tables, children, in order), so
// artifacts are byte-identical at every budget, thread count, chunk
// size, and frontier mode. What changes is only the resident-set bound:
// with spill on, a level holds the merged result plus at most one
// restored chunk instead of every chunk at once.
//
// Policy. A chunk spills iff spilling is enabled and
//   chunk.approx_bytes() * level_chunk_count > budget_bytes (saturating),
// the "fair share" rule: a chunk keeps its share of the budget and goes
// to disk the moment it exceeds it. The decision depends only on the
// chunk's content and the level's chunk count -- never on scheduling --
// so the set of spilled chunks is deterministic for a fixed knob vector.
//
// Telemetry. Spill counters follow the commit-only contract of
// telemetry/metrics.hpp: spill()/restore tallies are STAGED and only
// folded into the visible totals when the level commits; discarded
// passes (a tripped budget's pass-1 expansions, truncated levels) leave
// no trace. The totals surface as JobTelemetry::spill -- a non-serialized
// member like wall_seconds, shown by --metrics and never part of any
// artifact (telemetry JSON artifacts are byte-identical spill-on vs off).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/epsilon_approx.hpp"
#include "core/frontier.hpp"

namespace topocon {

/// Process-wide default for SpillOptions::budget_bytes == 0: set from
/// the CLI (`topocon --spill-budget-mb/--spill-dir`,
/// `--sweep-spill-budget-mb/--sweep-spill-dir`). The initial value
/// disables spilling. An execution knob only -- results are identical
/// for every setting.
void set_default_spill(const SpillOptions& options);
SpillOptions default_spill();

/// `options` with budget_bytes == 0 replaced by the process-wide
/// default (and then an empty dir by the default dir).
SpillOptions resolve_spill(const SpillOptions& options);

/// Saturating MiB -> bytes, shared by every --spill-budget-mb-style
/// flag; 0 stays 0 (disabled / inherit the default).
std::uint64_t spill_budget_mb_to_bytes(std::uint64_t mb);

class FrontierSpill;

/// Handle to one spilled chunk's file. Deleting the ticket (e.g. when a
/// tripped budget discards pass-1 expansions) unlinks the file; a
/// restore consumes the ticket after replaying it.
class SpillTicket {
 public:
  SpillTicket(std::string path, std::uint64_t bytes, FrontierSpill* owner)
      : path_(std::move(path)), bytes_(bytes), owner_(owner) {}
  ~SpillTicket();
  SpillTicket(const SpillTicket&) = delete;
  SpillTicket& operator=(const SpillTicket&) = delete;

  const std::string& path() const { return path_; }
  std::uint64_t bytes() const { return bytes_; }
  FrontierSpill* owner() const { return owner_; }

 private:
  std::string path_;
  std::uint64_t bytes_ = 0;
  FrontierSpill* owner_ = nullptr;
};

/// Writer/reader of spilled PendingFrontier slices for ONE analysis
/// call: owns a unique temp subdirectory (removed on destruction, so a
/// discarded run never leaks files) and the staged/committed counters.
/// Must outlive every ticket it issued. spill() and restore_spilled()
/// are thread-safe (distinct files, atomic counters); the level-staging
/// calls (commit_level/discard_staged) belong to the level loop's
/// single-threaded sections.
class FrontierSpill {
 public:
  /// Observational spill totals; see the header comment for the
  /// commit-only staging contract.
  struct Stats {
    std::uint64_t chunks_spilled = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t bytes_replayed = 0;
    /// Levels whose merge replayed at least one spilled chunk.
    std::uint64_t replay_passes = 0;
  };

  /// `options` must be resolved (resolve_spill) and enabled. Creates the
  /// unique spill subdirectory eagerly; throws std::runtime_error when
  /// the directory cannot be created.
  explicit FrontierSpill(const SpillOptions& options);
  ~FrontierSpill();
  FrontierSpill(const FrontierSpill&) = delete;
  FrontierSpill& operator=(const FrontierSpill&) = delete;

  const SpillOptions& options() const { return options_; }
  const std::string& dir() const { return dir_; }

  /// The fair-share policy: true iff `chunk` should go to disk given
  /// this level's chunk count.
  bool should_spill(const PendingFrontier& chunk,
                    std::size_t level_chunks) const;

  /// Serializes the chunk's payload (states, views, state_index,
  /// children) to a new spill file and releases it from memory;
  /// chunk.spilled holds the ticket. chunk/overflow/stats stay resident.
  void spill(PendingFrontier& chunk);

  /// should_spill + spill in one call; returns true iff it spilled.
  bool maybe_spill(PendingFrontier& chunk, std::size_t level_chunks);

  /// Folds the staged tallies of the level that just committed into the
  /// visible totals (one replay pass if anything was staged).
  void commit_level();
  /// Drops staged tallies (tripped pass-1, truncated level); the files
  /// themselves die with their tickets.
  void discard_staged();

  /// Committed totals only (staged work invisible until commit_level).
  Stats stats() const;

 private:
  friend void restore_spilled(PendingFrontier& chunk);

  /// Private (de)serializer (spill.cpp); nested so it shares this
  /// class's WordSeqIndex friendship.
  struct Io;

  SpillOptions options_;
  std::string dir_;
  std::atomic<std::uint64_t> next_file_{0};
  // Staged (current level) and committed tallies.
  std::atomic<std::uint64_t> staged_chunks_{0};
  std::atomic<std::uint64_t> staged_written_{0};
  std::atomic<std::uint64_t> staged_replayed_{0};
  Stats committed_;
};

/// Replays chunk.spilled back into memory and consumes the ticket (the
/// file is deleted; the replayed bytes are staged on the owner).
/// frontier.cpp calls this from merge()/commit(); restored dedup tables
/// are read-only, which is all merge/commit need.
void restore_spilled(PendingFrontier& chunk);

}  // namespace topocon
