// The epsilon-approximation of Definition 6.2, computed exactly on the
// finite depth-t prefix space of a message adversary.
//
// Fix epsilon = 2^-t. The paper constructs PS^eps_z by iteratively closing
// {z} under eps-balls intersected with PS; that is exactly eps-chain
// connectivity: a and b are in the same PS^eps-component iff there is a
// finite chain a = c_0, ..., c_k = b of admissible sequences with
// d_min(c_i, c_{i+1}) < eps. Since d_min(a, b) < 2^-t holds iff some process
// has the same view in a and b at time t (views are cumulative, Section 4),
// the components are determined by the depth-t prefixes alone:
//
//   universe   = admissible (input vector, length-t graph sequence) pairs,
//                deduplicated by (safety state, interned view vector) --
//                states that agree on all views and the adversary state are
//                indistinguishable points of the analysis;
//   adjacency  = two prefixes share the interned view id of some process;
//   components = union-find closure, linear in the number of (state, view)
//                pairs via bucketing by view id.
//
// From the components the analysis derives everything Section 5 and 6 talk
// about: valences (which components contain v-valent sequences z_v),
// separation (Corollary 5.6's criterion at resolution eps), and
// broadcastability (Definition 5.8 restricted to depth t).
//
// For a *compact* adversary this is a faithful finite approximation of PS
// itself (Theorem 6.6); for a non-compact adversary it analyzes the closure
// and is expected to stay merged at every depth (Section 6.3) -- that
// failure is one of the reproduced results, not a bug.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "adversary/adversary.hpp"
#include "ptg/prefix.hpp"
#include "ptg/reach.hpp"
#include "ptg/view_intern.hpp"

namespace topocon {

namespace telemetry {
class MetricsRegistry;
}  // namespace telemetry

/// Which topology induces the component adjacency (Section 4):
///  * kMin  -- the minimum topology d_min (the paper's characterization
///    topology, Section 4.2): leaves adjacent iff SOME process has equal
///    views. This is the default and the only mode the solvability
///    checker uses.
///  * kPView -- the P-view topology d_P for a fixed process set P
///    (Section 4.1): leaves adjacent iff the JOINT P-view is equal, i.e.,
///    every process in P has equal views. P = [n] recovers the classic
///    common-prefix (Alpern-Schneider) topology d_max. These modes exist
///    for analysis and illustration: they over-separate (Theorem 5.4 makes
///    decision sets clopen in them too, but separation there does not
///    imply solvability) -- quantified in bench E6.
enum class AdjacencyTopology { kMin, kPView };

/// Pending-level dedup representation of the frontier engine
/// (core/frontier.hpp). An execution detail exactly like keep_levels and
/// the chunk size: it is never serialized into query JSON and can never
/// change any result byte -- forced dense, forced sparse, and the
/// per-chunk heuristic all produce bit-identical analyses (enforced by
/// tests/frontier_mode_test.cpp and the --frontier golden lanes).
enum class FrontierMode {
  /// Resolve to the process-wide default (set_default_frontier_mode in
  /// core/frontier.hpp; kAuto unless the CLI overrode it).
  kDefault,
  /// Per-chunk GBBS-style heuristic: direct-indexed tables when the
  /// enumerable key space is small relative to the chunk's emissions,
  /// open-addressed hashing otherwise.
  kAuto,
  /// Always the sparse open-addressed WordSeqIndex path.
  kSparse,
  /// Direct-indexed tables whenever the chunk's key space is
  /// representable under the memory cap (falls back to sparse beyond it).
  kDense,
};

/// Out-of-core spill knobs for the chunked frontier engine
/// (core/spill.*). An execution detail exactly like FrontierMode: never
/// serialized into query JSON, and artifacts are byte-identical at every
/// budget -- spilling only bounds how many expanded-but-unmerged chunks
/// stay resident at once.
struct SpillOptions {
  /// Soft budget in bytes for one level's resident chunk expansions.
  /// 0 resolves to the process-wide default (set_default_spill in
  /// core/spill.hpp), whose initial value disables spilling. A chunk
  /// spills when its footprint times the level's chunk count exceeds
  /// the budget -- a deterministic fair-share rule, so WHAT spills never
  /// depends on thread scheduling.
  std::uint64_t budget_bytes = 0;
  /// Directory for the per-run spill subdirectory; empty = the process
  /// default, then std::filesystem::temp_directory_path().
  std::string dir;
};

struct AnalysisOptions {
  /// Prefix depth t; epsilon = 2^-t.
  int depth = 4;
  /// Input domain {0, ..., num_values-1}.
  int num_values = 2;
  /// Abort (truncated = true) if any BFS level exceeds this many states.
  std::size_t max_states = 2'000'000;
  /// Retain all BFS levels and tree edges (needed for decision tables and
  /// witness extraction; disable for cheap component counting).
  bool keep_levels = true;
  /// Component adjacency; see AdjacencyTopology.
  AdjacencyTopology topology = AdjacencyTopology::kMin;
  /// Process set P for kPView (bitmask; must be nonzero in that mode).
  NodeMask pview_set = 0;
  /// Pending-level dedup representation; like keep_levels an execution
  /// detail that is never serialized and never changes a result byte.
  FrontierMode frontier = FrontierMode::kDefault;
  /// Optional per-job telemetry sink (telemetry/metrics.hpp). An
  /// execution detail like `frontier`: never serialized, never changes a
  /// result byte; null disables all collection at zero hot-path cost.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Out-of-core spill knobs (chunked engine only; the serial scan
  /// ignores them). Same execution-detail contract as `frontier`.
  SpillOptions spill = {};
};

/// One deduplicated prefix class at some level of the BFS.
struct PrefixState {
  InputVector inputs;
  ViewVector views;
  ReachVector reach;
  AdvState adv_state = 0;
  /// Number of (input, letter-sequence) prefixes in this class.
  std::uint64_t multiplicity = 1;
};

/// Summary of one connected component of the depth-t universe.
struct ComponentInfo {
  std::int64_t num_leaves = 0;
  /// Bit v set iff the component contains an all-v-input leaf (i.e., the
  /// component of some z_v in the sense of Section 5.1).
  std::uint32_t valence_mask = 0;
  /// Processes whose input is known to everyone in *every* leaf by round t.
  NodeMask common_broadcast = 0;
  /// Members of common_broadcast whose input value is moreover uniform
  /// across the component; nonempty => broadcastable (Definition 5.8
  /// witnessed within depth t, cf. Theorem 5.9).
  NodeMask broadcasters = 0;
  /// Bit v set iff value v occurs among the inputs of *every* leaf of the
  /// component. Used for the strong-validity variant of consensus
  /// (Definition 5.1's remark): a strong assignment must pick its value
  /// from this set. For broadcastable components the broadcaster's uniform
  /// input always lies here (Theorem 5.9).
  std::uint32_t common_input_values = 0;
  /// Value assigned by the meta-procedure of Section 5.1 (valence if
  /// unique, default 0 for non-valent components); -1 if the component has
  /// two valences (separation failed).
  Value assigned_value = -1;
  /// Assignment satisfying strong validity (decision value is some
  /// process's input in every run): the valence when valent, otherwise the
  /// smallest common input value; -1 if merged or infeasible at this depth.
  Value assigned_value_strong = -1;

  int num_valences() const {
    return std::popcount(valence_mask);
  }

  friend bool operator==(const ComponentInfo&, const ComponentInfo&) = default;
};

/// Result of the depth-t analysis.
struct DepthAnalysis {
  int depth = 0;
  int num_values = 2;
  int num_processes = 0;
  bool truncated = false;

  /// Shared interner; view ids in `levels` refer to it.
  std::shared_ptr<ViewInterner> interner;

  /// levels[s] = deduplicated prefix classes of length s (s = 0..depth).
  /// Present only when options.keep_levels (levels.back() -- the leaves --
  /// is always present).
  std::vector<std::vector<PrefixState>> levels;

  /// children[s][i] = indices into levels[s+1] reached from levels[s][i]
  /// by one letter (deduplicated). Present only when options.keep_levels.
  std::vector<std::vector<std::vector<int>>> children;

  /// first_parent[s][i] = (index into levels[s-1], letter) of the first
  /// discovered way to reach levels[s][i]; {-1, -1} at level 0. Present
  /// only when options.keep_levels. Used to reconstruct witness prefixes.
  std::vector<std::vector<std::pair<int, int>>> first_parent;

  /// Component id of each leaf (levels.back()).
  std::vector<int> leaf_component;
  std::vector<ComponentInfo> components;

  /// True iff no component contains two valences (Corollary 5.6 at
  /// resolution 2^-depth).
  bool valence_separated = false;
  /// Number of components with >= 2 valences ("still-bivalent" classes).
  int merged_components = 0;
  /// True iff every component containing a valence is broadcastable with a
  /// depth-t witness (Theorem 6.6's condition, checked at this depth).
  bool valent_broadcastable = false;
  /// True iff valence_separated and every component admits a strong-
  /// validity assignment (assigned_value_strong >= 0 everywhere).
  bool strong_assignable = false;

  const std::vector<PrefixState>& leaves() const { return levels.back(); }
};

/// Runs the depth-t analysis. If `interner` is null a fresh one is created;
/// passing one allows sharing ids across depths and with simulations.
DepthAnalysis analyze_depth(const MessageAdversary& adversary,
                            const AnalysisOptions& options,
                            std::shared_ptr<ViewInterner> interner = nullptr);

/// REFERENCE implementation of analyze_depth(): the identical analysis
/// driven by the single-scan initial_frontier()/expand_frontier() calls
/// below instead of the chunked FrontierEngine. Every field of the
/// result -- levels, links, multiplicities, truncation, components, and
/// the interner's id assignment order -- must be bit-identical to
/// analyze_depth() at every chunk size and thread count; the fuzz
/// differential harness (tests/fuzz_differential_test.cpp, `topocon
/// fuzz`) asserts exactly that on randomly composed adversaries.
DepthAnalysis analyze_depth_oracle(
    const MessageAdversary& adversary, const AnalysisOptions& options,
    std::shared_ptr<ViewInterner> interner = nullptr);

// ---- Frontier API -------------------------------------------------------
//
// The BFS over the admissible-prefix space, exposed level by level. The
// production expansion path is the chunked FrontierEngine in
// core/frontier.hpp -- analyze_depth() above drives one engine serially,
// the parallel sweep engine (runtime/sweep/parallel_solver.*) drives one
// engine per root with sub-root chunk sharding. A key structural fact
// makes root sharding exact: the dedup key contains all views, every view
// contains its own input, so classes of *different* input vectors never
// merge -- the prefix space is the disjoint union of one subtree per
// input vector ("root"), and each subtree can be expanded independently
// with a private interner. The calls below remain as the single-scan
// REFERENCE expansion: a direct transcription of the serial BFS step that
// the frontier engine must reproduce state for state (enforced by
// tests/frontier_engine_test.cpp).

/// One expanded BFS level: the deduplicated child classes plus the tree
/// links back into the parent level.
struct FrontierLevel {
  std::vector<PrefixState> states;
  /// (parent index, letter) of the first discovery, per state.
  std::vector<std::pair<int, int>> first_parent;
  /// children[i] = deduplicated child indices of parent i; filled only
  /// when expand_frontier is called with keep_links.
  std::vector<std::vector<int>> children;
  /// True iff the level exceeded max_states (states is then incomplete).
  bool overflow = false;
};

/// Level-0 classes: one per input vector with dense index in
/// [first_root, last_root) of all_input_vectors(n, options.num_values).
std::vector<PrefixState> initial_frontier(const MessageAdversary& adversary,
                                          const AnalysisOptions& options,
                                          ViewInterner& interner,
                                          int first_root, int last_root);

/// Expands `current` by one letter with per-level deduplication.
FrontierLevel expand_frontier(const MessageAdversary& adversary,
                              ViewInterner& interner,
                              const std::vector<PrefixState>& current,
                              std::size_t max_states, bool keep_links);

/// Builds leaf_component, components, and the separation/broadcastability
/// flags from analysis.levels.back(); requires num_processes, num_values,
/// and the leaves to be in place.
void compute_components(const AnalysisOptions& options,
                        DepthAnalysis& analysis);

/// Reconstructs a concrete run prefix (inputs + graphs) that belongs to the
/// given leaf class, by walking the BFS tree backwards. Requires
/// keep_levels. Returns nullopt only if the leaf index is invalid.
std::optional<RunPrefix> reconstruct_prefix(const MessageAdversary& adversary,
                                            const DepthAnalysis& analysis,
                                            int leaf_index);

}  // namespace topocon
