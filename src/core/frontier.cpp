#include "core/frontier.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#include "ptg/reach.hpp"

namespace topocon {

namespace {

std::size_t hash_words(const std::uint32_t* words, std::size_t count) {
  // FNV-1a over the key words; the table caches the result per entry.
  std::size_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < count; ++i) {
    h ^= words[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

int WordSeqIndex::intern(const std::uint32_t* words, std::size_t count,
                         bool* inserted) {
  if (slots_.empty()) {
    slots_.assign(64, -1);
  } else if ((entries_.size() + 1) * 10 > slots_.size() * 7) {
    grow();
  }
  const std::size_t hash = hash_words(words, count);
  const std::size_t mask = slots_.size() - 1;
  std::size_t pos = hash & mask;
  while (true) {
    const int e = slots_[pos];
    if (e < 0) {
      const auto id = static_cast<int>(entries_.size());
      Entry entry;
      entry.offset = pool_.size();
      entry.count = static_cast<std::uint32_t>(count);
      entry.hash = hash;
      pool_.insert(pool_.end(), words, words + count);
      entries_.push_back(entry);
      slots_[pos] = id;
      *inserted = true;
      return id;
    }
    const Entry& entry = entries_[static_cast<std::size_t>(e)];
    if (entry.hash == hash && entry.count == count &&
        std::memcmp(pool_.data() + entry.offset, words,
                    count * sizeof(std::uint32_t)) == 0) {
      *inserted = false;
      return e;
    }
    pos = (pos + 1) & mask;
  }
}

void WordSeqIndex::grow() {
  std::vector<int> next(slots_.size() * 2, -1);
  const std::size_t mask = next.size() - 1;
  for (std::size_t e = 0; e < entries_.size(); ++e) {
    std::size_t pos = entries_[e].hash & mask;
    while (next[pos] >= 0) pos = (pos + 1) & mask;
    next[pos] = static_cast<int>(e);
  }
  slots_ = std::move(next);
}

FrontierEngine::FrontierEngine(const MessageAdversary& adversary,
                               const AnalysisOptions& options,
                               ViewInterner& interner, int first_root,
                               int last_root)
    : adversary_(&adversary), options_(options), interner_(&interner) {
  frontier_ =
      initial_frontier(adversary, options, interner, first_root, last_root);
  level_sizes_.push_back(frontier_.size());
  if (options_.keep_levels) {
    levels_.push_back(frontier_);
    first_parent_.push_back(
        std::vector<std::pair<int, int>>(frontier_.size(), {-1, -1}));
  }
}

std::vector<FrontierChunk> FrontierEngine::partition(
    std::size_t chunk_states) const {
  const std::size_t size = frontier_.size();
  if (chunk_states == 0 || size <= chunk_states) {
    return {FrontierChunk{0, size}};
  }
  std::vector<FrontierChunk> chunks;
  chunks.reserve((size + chunk_states - 1) / chunk_states);
  for (std::size_t begin = 0; begin < size; begin += chunk_states) {
    chunks.push_back(
        FrontierChunk{begin, std::min(begin + chunk_states, size)});
  }
  return chunks;
}

PendingFrontier FrontierEngine::expand(const FrontierChunk& chunk,
                                       FrontierBudget* budget) const {
  assert(chunk.begin <= chunk.end && chunk.end <= frontier_.size());
  const MessageAdversary& adversary = *adversary_;
  const int n = adversary.num_processes();
  PendingFrontier out;
  out.chunk = chunk;
  if (budget != nullptr && budget->exceeded()) {
    // Another chunk already tripped the level budget; this chunk's work
    // would be discarded, so don't do it.
    out.overflow = true;
    return out;
  }
  if (options_.keep_levels) out.children.resize(chunk.end - chunk.begin);
  // Scratch keys, reused across emissions: no per-emission allocation.
  std::vector<std::uint32_t> view_key;
  view_key.reserve(static_cast<std::size_t>(n) + 2);
  std::vector<std::uint32_t> state_key(static_cast<std::size_t>(n) + 1);

  std::size_t reported = 0;
  for (std::size_t i = chunk.begin; i < chunk.end && !out.overflow; ++i) {
    if (budget != nullptr && i > chunk.begin) {
      if (!budget->add(out.states.size() - reported)) {
        out.overflow = true;
        break;
      }
      reported = out.states.size();
    }
    const PrefixState& parent = frontier_[i];
    for (int letter = 0; letter < adversary.alphabet_size(); ++letter) {
      const AdvState adv_next = adversary.transition(parent.adv_state, letter);
      if (adv_next == kRejectState) continue;
      const Digraph& g = adversary.graph(letter);
      for (int q = 0; q < n; ++q) {
        const NodeMask mask = g.in_mask(static_cast<ProcessId>(q));
        view_key.clear();
        view_key.push_back(static_cast<std::uint32_t>(q));
        view_key.push_back(mask);
        NodeMask rest = mask;
        while (rest != 0) {
          const int p = std::countr_zero(rest);
          rest &= rest - 1;
          view_key.push_back(static_cast<std::uint32_t>(
              parent.views[static_cast<std::size_t>(p)]));
        }
        bool view_inserted;
        state_key[static_cast<std::size_t>(q) + 1] =
            static_cast<std::uint32_t>(out.views.intern(
                view_key.data(), view_key.size(), &view_inserted));
      }
      state_key[0] = static_cast<std::uint32_t>(adv_next);
      bool inserted;
      const int index = out.state_index.intern(state_key.data(),
                                               state_key.size(), &inserted);
      if (inserted) {
        PendingState state;
        state.inputs = parent.inputs;
        state.reach = advance_reach(parent.reach, g);
        state.adv_state = adv_next;
        state.multiplicity = parent.multiplicity;
        state.parent = static_cast<int>(i);
        state.letter = letter;
        out.states.push_back(std::move(state));
        if (out.states.size() > options_.max_states) {
          out.overflow = true;
          break;
        }
      } else {
        out.states[static_cast<std::size_t>(index)].multiplicity +=
            parent.multiplicity;
      }
      if (options_.keep_levels) {
        // A parent can reach one class via several letters; filter the
        // repeats like the serial scan does.
        std::vector<int>& kids = out.children[i - chunk.begin];
        if (std::find(kids.begin(), kids.end(), index) == kids.end()) {
          kids.push_back(index);
        }
      }
    }
  }
  if (budget != nullptr && !out.overflow &&
      !budget->add(out.states.size() - reported)) {
    out.overflow = true;
  }
  return out;
}

PendingFrontier FrontierEngine::merge(
    std::vector<PendingFrontier> chunks) const {
  for (const PendingFrontier& chunk : chunks) {
    if (chunk.overflow) {
      PendingFrontier level;
      level.overflow = true;
      return level;
    }
  }
  if (chunks.size() == 1) {
    // The single chunk covered the whole frontier: its dedup is already
    // global and its parent indexing is the frontier's.
    return std::move(chunks.front());
  }

  PendingFrontier level;
  level.chunk = FrontierChunk{0, frontier_.size()};
  if (options_.keep_levels) level.children.resize(frontier_.size());
  std::vector<int> view_remap;
  std::vector<int> state_remap;
  std::vector<std::uint32_t> state_key;
  for (PendingFrontier& chunk : chunks) {
    // Re-key the chunk's distinct views in the merged view table (one
    // long-key lookup per distinct view, not per state).
    view_remap.assign(chunk.views.size(), -1);
    for (std::size_t v = 0; v < chunk.views.size(); ++v) {
      bool inserted;
      view_remap[v] = level.views.intern(
          chunk.views.words_of(static_cast<int>(v)),
          chunk.views.count_of(static_cast<int>(v)), &inserted);
    }
    state_remap.assign(chunk.states.size(), -1);
    for (std::size_t s = 0; s < chunk.states.size(); ++s) {
      const std::uint32_t* words =
          chunk.state_index.words_of(static_cast<int>(s));
      const std::size_t count = chunk.state_index.count_of(static_cast<int>(s));
      state_key.assign(words, words + count);
      for (std::size_t q = 1; q < count; ++q) {
        state_key[q] = static_cast<std::uint32_t>(
            view_remap[static_cast<std::size_t>(words[q])]);
      }
      bool inserted;
      const int index = level.state_index.intern(state_key.data(),
                                                 state_key.size(), &inserted);
      state_remap[s] = index;
      if (inserted) {
        level.states.push_back(std::move(chunk.states[s]));
        if (level.states.size() > options_.max_states) {
          level.overflow = true;
          return level;
        }
      } else {
        level.states[static_cast<std::size_t>(index)].multiplicity +=
            chunk.states[s].multiplicity;
      }
    }
    if (options_.keep_levels) {
      for (std::size_t p = 0; p < chunk.children.size(); ++p) {
        // Distinct chunk-local classes stay distinct after the merge, so
        // the per-parent lists need only remapping, not re-dedup.
        std::vector<int>& kids = level.children[chunk.chunk.begin + p];
        kids.reserve(chunk.children[p].size());
        for (const int child : chunk.children[p]) {
          kids.push_back(state_remap[static_cast<std::size_t>(child)]);
        }
      }
    }
  }
  return level;
}

void FrontierEngine::commit(PendingFrontier level) {
  assert(!level.overflow && "commit of an overflowed level");
  // Sequential hand-off: commits of one engine happen one at a time but
  // possibly from different pool threads across levels.
  interner_->attach_to_current_thread();
  const int n = adversary_->num_processes();
  std::vector<PrefixState> next;
  next.reserve(level.states.size());
  std::vector<std::pair<int, int>> parents;
  parents.reserve(level.states.size());
  // Each distinct pending view is interned exactly once, on first use;
  // states are walked in merged (= serial discovery) order and views in
  // process order, so ids are assigned in the serial scan's order.
  std::vector<ViewId> resolved(level.views.size(), -1);
  std::vector<ViewId> senders;
  for (std::size_t s = 0; s < level.states.size(); ++s) {
    PendingState& state = level.states[s];
    const std::uint32_t* key = level.state_index.words_of(static_cast<int>(s));
    PrefixState out;
    out.inputs = std::move(state.inputs);
    out.reach = std::move(state.reach);
    out.adv_state = state.adv_state;
    out.multiplicity = state.multiplicity;
    out.views.resize(static_cast<std::size_t>(n));
    for (int q = 0; q < n; ++q) {
      const auto v = static_cast<std::size_t>(key[static_cast<std::size_t>(q) + 1]);
      ViewId& id = resolved[v];
      if (id < 0) {
        const std::uint32_t* words = level.views.words_of(static_cast<int>(v));
        const std::size_t count = level.views.count_of(static_cast<int>(v));
        senders.clear();
        for (std::size_t k = 2; k < count; ++k) {
          senders.push_back(static_cast<ViewId>(words[k]));
        }
        id = interner_->step(static_cast<ProcessId>(words[0]),
                             static_cast<NodeMask>(words[1]), senders);
      }
      out.views[static_cast<std::size_t>(q)] = id;
    }
    next.push_back(std::move(out));
    parents.emplace_back(state.parent, state.letter);
  }
  frontier_ = std::move(next);
  ++level_;
  level_sizes_.push_back(frontier_.size());
  if (options_.keep_levels) {
    children_.push_back(std::move(level.children));
    levels_.push_back(frontier_);
    first_parent_.push_back(std::move(parents));
  }
}

bool FrontierEngine::advance(std::size_t chunk_states) {
  std::vector<PendingFrontier> expansions;
  for (const FrontierChunk& chunk : partition(chunk_states)) {
    expansions.push_back(expand(chunk));
  }
  PendingFrontier level = merge(std::move(expansions));
  if (level.overflow) {
    truncated_ = true;
    return false;
  }
  commit(std::move(level));
  return true;
}

}  // namespace topocon
