#include "core/frontier.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "core/spill.hpp"
#include "ptg/reach.hpp"
#include "telemetry/trace.hpp"

namespace topocon {

namespace {

std::size_t hash_words(const std::uint32_t* words, std::size_t count) {
  // FNV-1a over the key words; the table caches the result per entry.
  std::size_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < count; ++i) {
    h ^= words[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Hard cap on one direct-indexed table (entries, i.e. 4 bytes each):
/// above it even a forced kDense chunk falls back to hashing. Bounds the
/// per-chunk scratch at 8 MiB per table regardless of the key space.
constexpr std::uint64_t kDenseSlotCap = std::uint64_t{1} << 21;

/// GBBS-style density threshold for kAuto: a key space is "dense enough"
/// when it is at most this many times the chunk's expected insertions --
/// then the O(space) table initialization amortizes against the hashing
/// it replaces.
constexpr std::uint64_t kDenseHeadroom = 4;

/// Bounds for the pending-state dense path's adversary-state prescan.
constexpr std::size_t kDenseAdvCap = 1024;
constexpr std::size_t kDenseAdvTableCap = std::size_t{1} << 16;

constexpr std::uint64_t kSpaceOverflow =
    std::numeric_limits<std::uint64_t>::max();

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kSpaceOverflow / b) return kSpaceOverflow;
  return a * b;
}

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return a > kSpaceOverflow - b ? kSpaceOverflow : a + b;
}

/// Chunk-local open-addressed map from non-negative int32 keys to int32
/// values, used by the dense expansion path to assign compact digits to
/// parent view ids and adversary states. Sized once for a known entry
/// cap; the caller never inserts more than `max_entries` distinct keys.
class ScratchMap {
 public:
  void init(std::size_t max_entries) {
    std::size_t slots = 16;
    while (slots < max_entries * 2 + 2) slots <<= 1;
    keys_.assign(slots, -1);
    vals_.resize(slots);
  }

  /// Value of `key`, inserting `fresh` if absent; `*inserted` reports
  /// which happened.
  std::int32_t find_or_insert(std::int32_t key, std::int32_t fresh,
                              bool* inserted) {
    const std::size_t mask = keys_.size() - 1;
    std::size_t pos =
        (static_cast<std::uint32_t>(key) * 2654435761u) & mask;
    while (true) {
      if (keys_[pos] < 0) {
        keys_[pos] = key;
        vals_[pos] = fresh;
        *inserted = true;
        return fresh;
      }
      if (keys_[pos] == key) {
        *inserted = false;
        return vals_[pos];
      }
      pos = (pos + 1) & mask;
    }
  }

 private:
  std::vector<std::int32_t> keys_;
  std::vector<std::int32_t> vals_;
};

std::atomic<int> g_default_frontier_mode{
    static_cast<int>(FrontierMode::kAuto)};

}  // namespace

void set_default_frontier_mode(FrontierMode mode) {
  if (mode == FrontierMode::kDefault) mode = FrontierMode::kAuto;
  g_default_frontier_mode.store(static_cast<int>(mode),
                                std::memory_order_relaxed);
}

FrontierMode default_frontier_mode() {
  return static_cast<FrontierMode>(
      g_default_frontier_mode.load(std::memory_order_relaxed));
}

std::optional<FrontierMode> frontier_mode_from_name(std::string_view name) {
  if (name == "auto") return FrontierMode::kAuto;
  if (name == "dense") return FrontierMode::kDense;
  if (name == "sparse") return FrontierMode::kSparse;
  return std::nullopt;
}

const char* to_string(FrontierMode mode) {
  switch (mode) {
    case FrontierMode::kDefault:
      return "default";
    case FrontierMode::kAuto:
      return "auto";
    case FrontierMode::kSparse:
      return "sparse";
    case FrontierMode::kDense:
      return "dense";
  }
  return "?";
}

std::uint64_t PendingFrontier::approx_bytes() const {
  std::uint64_t bytes = states.size() * sizeof(PendingState);
  if (!states.empty()) {
    // Per-state heap payload (inputs + reach); uniform across states.
    bytes += states.size() *
             (states.front().inputs.size() * sizeof(Value) +
              states.front().reach.size() * sizeof(NodeMask));
  }
  bytes += views.approx_bytes() + state_index.approx_bytes();
  for (const std::vector<int>& kids : children) {
    bytes += sizeof(kids) + kids.size() * sizeof(int);
  }
  return bytes;
}

int WordSeqIndex::intern(const std::uint32_t* words, std::size_t count,
                         bool* inserted) {
  assert(!appended_ && "intern() on a table frozen by append_new()");
  if (slots_.empty()) {
    slots_.assign(64, -1);
  } else if ((entries_.size() + 1) * 10 > slots_.size() * 7) {
    grow();
  }
  const std::size_t hash = hash_words(words, count);
  const std::size_t mask = slots_.size() - 1;
  std::size_t pos = hash & mask;
  while (true) {
    const int e = slots_[pos];
    if (e < 0) {
      const auto id = static_cast<int>(entries_.size());
      Entry entry;
      entry.offset = pool_.size();
      entry.count = static_cast<std::uint32_t>(count);
      entry.hash = hash;
      pool_.insert(pool_.end(), words, words + count);
      entries_.push_back(entry);
      slots_[pos] = id;
      *inserted = true;
      return id;
    }
    const Entry& entry = entries_[static_cast<std::size_t>(e)];
    if (entry.hash == hash && entry.count == count &&
        std::memcmp(pool_.data() + entry.offset, words,
                    count * sizeof(std::uint32_t)) == 0) {
      *inserted = false;
      return e;
    }
    pos = (pos + 1) & mask;
  }
}

int WordSeqIndex::append_new(const std::uint32_t* words, std::size_t count) {
  appended_ = true;
  const auto id = static_cast<int>(entries_.size());
  Entry entry;
  entry.offset = pool_.size();
  entry.count = static_cast<std::uint32_t>(count);
  // The probe table is not maintained (see the header contract), so the
  // hash is never needed; skipping it is the point of the dense path.
  entry.hash = 0;
  pool_.insert(pool_.end(), words, words + count);
  entries_.push_back(entry);
  return id;
}

void WordSeqIndex::grow() {
  ++rehashes_;
  std::vector<int> next(slots_.size() * 2, -1);
  const std::size_t mask = next.size() - 1;
  for (std::size_t e = 0; e < entries_.size(); ++e) {
    std::size_t pos = entries_[e].hash & mask;
    while (next[pos] >= 0) pos = (pos + 1) & mask;
    next[pos] = static_cast<int>(e);
  }
  slots_ = std::move(next);
}

FrontierEngine::FrontierEngine(const MessageAdversary& adversary,
                               const AnalysisOptions& options,
                               ViewInterner& interner, int first_root,
                               int last_root)
    : adversary_(&adversary), options_(options), interner_(&interner) {
  const int n = adversary.num_processes();
  // The expansion shape: distinct (receiver, in-mask) pairs across the
  // whole alphabet, plus the (letter, process) -> pair index table.
  shape_.pair_of.assign(
      static_cast<std::size_t>(adversary.alphabet_size()) *
          static_cast<std::size_t>(n),
      -1);
  std::unordered_map<std::uint64_t, std::int32_t> pair_index;
  for (int letter = 0; letter < adversary.alphabet_size(); ++letter) {
    const Digraph& g = adversary.graph(letter);
    for (int q = 0; q < n; ++q) {
      const NodeMask mask = g.in_mask(static_cast<ProcessId>(q));
      const std::uint64_t key =
          (static_cast<std::uint64_t>(q) << 32) | mask;
      auto [it, fresh] = pair_index.try_emplace(
          key, static_cast<std::int32_t>(shape_.pairs.size()));
      if (fresh) {
        shape_.pairs.push_back(
            {static_cast<std::uint32_t>(q), mask});
      }
      shape_.pair_of[static_cast<std::size_t>(letter) *
                         static_cast<std::size_t>(n) +
                     static_cast<std::size_t>(q)] = it->second;
    }
  }

  frontier_ =
      initial_frontier(adversary, options, interner, first_root, last_root);
  // Distinct level-0 views per process (the roots are few: one class per
  // input vector of this shard).
  frontier_distinct_.assign(static_cast<std::size_t>(n), 0);
  std::vector<ViewId> ids;
  for (int p = 0; p < n; ++p) {
    ids.clear();
    for (const PrefixState& state : frontier_) {
      ids.push_back(state.views[static_cast<std::size_t>(p)]);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    frontier_distinct_[static_cast<std::size_t>(p)] =
        static_cast<std::uint32_t>(ids.size());
  }

  level_sizes_.push_back(frontier_.size());
  if (options_.keep_levels) {
    levels_.push_back(frontier_);
    first_parent_.push_back(
        std::vector<std::pair<int, int>>(frontier_.size(), {-1, -1}));
  }
}

KeyCodec FrontierEngine::level_codec() const {
  KeyCodec c;
  const int n = adversary_->num_processes();
  c.n = n;
  c.q_bits = n > 1 ? static_cast<std::uint32_t>(std::bit_width(
                         static_cast<std::uint32_t>(n - 1)))
                   : 0;
  c.mask_bits = static_cast<std::uint32_t>(n);
  // Senders are the PARENT level's interned view ids, all assigned by
  // earlier commits, so the current interner size bounds them.
  const std::uint64_t senders = interner_->size();
  c.sender_bits =
      senders > 1 ? std::min<std::uint32_t>(
                        32, static_cast<std::uint32_t>(
                                std::bit_width(senders - 1)))
                  : 0;
  const AdvState bound = adversary_->state_bound();
  c.adv_bits =
      bound <= 0 ? 32
      : bound > 1 ? static_cast<std::uint32_t>(std::bit_width(
                        static_cast<std::uint32_t>(bound - 1)))
                  : 0;
  // Every chunk contributes at most one distinct view per (parent, pair)
  // so frontier * pairs bounds chunk-local AND merged view-table
  // indices: one width makes chunk and merged state keys interoperable.
  const std::uint64_t index_bound =
      sat_mul(frontier_.size(), shape_.pairs.size());
  c.index_bits =
      index_bound > 1 ? std::min<std::uint32_t>(
                            32, static_cast<std::uint32_t>(
                                    std::bit_width(index_bound - 1)))
                      : 0;
  c.state_words = (c.adv_bits + static_cast<std::uint32_t>(n) * c.index_bits +
                   31) /
                  32;
  return c;
}

std::vector<FrontierChunk> FrontierEngine::partition(
    std::size_t chunk_states) const {
  const std::size_t size = frontier_.size();
  if (chunk_states == 0 || size <= chunk_states) {
    return {FrontierChunk{0, size}};
  }
  std::vector<FrontierChunk> chunks;
  chunks.reserve((size + chunk_states - 1) / chunk_states);
  for (std::size_t begin = 0; begin < size; begin += chunk_states) {
    chunks.push_back(
        FrontierChunk{begin, std::min(begin + chunk_states, size)});
  }
  return chunks;
}

PendingFrontier FrontierEngine::expand(const FrontierChunk& chunk,
                                       FrontierBudget* budget) const {
  assert(chunk.begin <= chunk.end && chunk.end <= frontier_.size());
  const MessageAdversary& adversary = *adversary_;
  const int n = adversary.num_processes();
  const int alphabet = adversary.alphabet_size();
  PendingFrontier out;
  out.chunk = chunk;
  if (budget != nullptr && budget->exceeded()) {
    // Another chunk already tripped the level budget; this chunk's work
    // would be discarded, so don't do it.
    out.overflow = true;
    return out;
  }
  if (options_.keep_levels) out.children.resize(chunk.end - chunk.begin);
  telemetry::TraceWriter* trace =
      options_.metrics != nullptr ? options_.metrics->trace() : nullptr;
  const std::uint64_t span_start = trace != nullptr ? trace->now_us() : 0;
  std::uint64_t emissions = 0;

  const std::size_t chunk_size = chunk.end - chunk.begin;
  const std::size_t num_pairs = shape_.pairs.size();
  FrontierMode mode = options_.frontier;
  if (mode == FrontierMode::kDefault) mode = default_frontier_mode();

  // ---- Dense planning, O(pairs) arithmetic before any expansion.
  //
  // A child-view key is [q, mask, senders...] where the senders are the
  // PARENT level's interned view ids of the processes in mask. Within
  // this chunk the sender in digit position p takes at most
  // U_p = min(|chunk|, distinct views of p in the whole frontier)
  // values, so the keys of pair (q, mask) enumerate a range of size
  // prod_{p in mask} U_p once sender ids are remapped to compact
  // per-process digits, and the whole chunk's key space has size
  // S_v = sum over distinct pairs of that product -- computable up
  // front. The chunk goes dense when S_v fits the slot cap and (under
  // kAuto) is at most kDenseHeadroom times the expected insertions, the
  // GBBS vertexSubset densification rule transplanted to dedup keys.
  bool dense_views = false;
  std::vector<std::uint32_t> radix;      // U_p per process
  std::vector<std::uint64_t> pair_base;  // dense offset per pair
  std::uint64_t view_space = 0;
  if (mode != FrontierMode::kSparse && chunk_size > 0) {
    radix.resize(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      radix[static_cast<std::size_t>(p)] =
          static_cast<std::uint32_t>(std::min<std::uint64_t>(
              chunk_size, frontier_distinct_[static_cast<std::size_t>(p)]));
    }
    pair_base.resize(num_pairs);
    for (std::size_t pr = 0; pr < num_pairs; ++pr) {
      pair_base[pr] = view_space;
      std::uint64_t pair_space = 1;
      NodeMask rest = shape_.pairs[pr].mask;
      while (rest != 0) {
        const int p = std::countr_zero(rest);
        rest &= rest - 1;
        pair_space = sat_mul(pair_space, radix[static_cast<std::size_t>(p)]);
      }
      view_space = sat_add(view_space, pair_space);
    }
    // After the per-parent (q, mask) memo below, at most one view
    // insertion happens per parent and pair.
    const std::uint64_t expected_views = sat_mul(chunk_size, num_pairs);
    dense_views = view_space <= kDenseSlotCap &&
                  (mode == FrontierMode::kDense ||
                   view_space <= sat_mul(kDenseHeadroom, expected_views));
  }

  // ---- Pending-state dense planning. State keys are [adversary state,
  // view index per process]; the view indices are bounded by
  // W = min(S_v, |chunk| * pairs) and the child adversary states are
  // enumerated by a prescan of the chunk's distinct parent states, so
  // the key space A_child * W^n is computable too. The prescan is only
  // worth its O(|chunk|) when the views went dense (W is tiny exactly
  // then); as a side effect it memoizes the safety-automaton transition,
  // replacing the per-emission virtual call with a table load.
  bool dense_states = false;
  bool adv_cached = false;
  std::uint64_t w_cap = 0;
  std::vector<std::int32_t> dense_state_slot;
  ScratchMap adv_remap;
  std::vector<AdvState> adv_child_value;   // [adv index * alphabet + letter]
  std::vector<std::int32_t> adv_child_digit;
  if (dense_views) {
    w_cap = std::min<std::uint64_t>(view_space,
                                    sat_mul(chunk_size, num_pairs));
    adv_remap.init(std::min(chunk_size, kDenseAdvCap + 1));
    std::vector<AdvState> advs;
    std::int32_t adv_count = 0;
    bool bounded = true;
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
      bool fresh;
      adv_remap.find_or_insert(frontier_[i].adv_state, adv_count, &fresh);
      if (fresh) {
        advs.push_back(frontier_[i].adv_state);
        if (static_cast<std::size_t>(++adv_count) > kDenseAdvCap) {
          bounded = false;
          break;
        }
      }
    }
    if (bounded && static_cast<std::size_t>(adv_count) *
                           static_cast<std::size_t>(alphabet) <=
                       kDenseAdvTableCap) {
      const std::size_t table =
          static_cast<std::size_t>(adv_count) *
          static_cast<std::size_t>(alphabet);
      adv_child_value.resize(table);
      adv_child_digit.assign(table, -1);
      ScratchMap child_remap;
      child_remap.init(table);
      std::int32_t child_count = 0;
      for (std::int32_t ai = 0; ai < adv_count; ++ai) {
        for (int letter = 0; letter < alphabet; ++letter) {
          const std::size_t slot =
              static_cast<std::size_t>(ai) *
                  static_cast<std::size_t>(alphabet) +
              static_cast<std::size_t>(letter);
          const AdvState next =
              adversary.transition(advs[static_cast<std::size_t>(ai)], letter);
          adv_child_value[slot] = next;
          if (next == kRejectState) continue;
          // Non-reject automaton states are non-negative (state 0 is
          // initial), which ScratchMap relies on.
          bool fresh;
          adv_child_digit[slot] =
              child_remap.find_or_insert(next, child_count, &fresh);
          if (fresh) ++child_count;
        }
      }
      adv_cached = true;
      std::uint64_t state_space =
          static_cast<std::uint64_t>(child_count);
      for (int q = 0; q < n; ++q) state_space = sat_mul(state_space, w_cap);
      const std::uint64_t expected_states = sat_mul(chunk_size, alphabet);
      dense_states = state_space <= kDenseSlotCap &&
                     (mode == FrontierMode::kDense ||
                      state_space <= sat_mul(kDenseHeadroom, expected_states));
      if (dense_states) {
        dense_state_slot.assign(static_cast<std::size_t>(state_space), -1);
      }
    }
  }

  // ---- Per-chunk scratch.
  std::vector<std::int32_t> dense_view_slot;
  if (dense_views) {
    dense_view_slot.assign(static_cast<std::size_t>(view_space), -1);
  }
  ScratchMap view_remap;  // parent view id -> compact per-process digit
  std::vector<std::uint32_t> digits(static_cast<std::size_t>(n), 0);
  std::vector<std::int32_t> next_digit(static_cast<std::size_t>(n), 0);
  if (dense_views) {
    std::size_t digit_cap = 0;
    for (int p = 0; p < n; ++p) {
      digit_cap += radix[static_cast<std::size_t>(p)];
    }
    view_remap.init(digit_cap);
  }
  // The per-parent (q, mask) memo: for a fixed parent, the child view of
  // process q depends only on its expansion-shape pair, so each pair is
  // resolved at most once per parent no matter how many letters share
  // it (e.g. omission's alphabet collapses from |letters| * n view
  // interns per parent to the distinct-pair count). Epoch-stamped, so
  // there is nothing to clear between parents.
  std::vector<std::int32_t> memo_val(num_pairs, -1);
  std::vector<std::uint32_t> memo_epoch(num_pairs, 0);

  // Scratch keys, reused across emissions: no per-emission allocation.
  // Keys are KeyCodec-packed (see frontier.hpp); the per-process view
  // indices additionally stay unpacked in view_idx for the dense-state
  // address computation.
  const KeyCodec codec = level_codec();
  std::vector<std::uint32_t> view_key;
  view_key.reserve(static_cast<std::size_t>(n) + 2);
  std::vector<std::uint32_t> state_key(codec.state_words);
  std::vector<std::uint32_t> view_idx(static_cast<std::size_t>(n), 0);
  const auto pack_view_key = [&](std::uint32_t recv, NodeMask in_mask,
                                 const PrefixState& par) {
    const auto senders =
        static_cast<std::uint32_t>(std::popcount(in_mask));
    const std::size_t bits =
        codec.q_bits + codec.mask_bits +
        static_cast<std::size_t>(senders) * codec.sender_bits;
    view_key.assign((bits + 31) / 32, 0);
    std::size_t pos = 0;
    put_bits(view_key.data(), pos, recv, codec.q_bits);
    pos += codec.q_bits;
    put_bits(view_key.data(), pos, in_mask, codec.mask_bits);
    pos += codec.mask_bits;
    NodeMask rest = in_mask;
    while (rest != 0) {
      const int p = std::countr_zero(rest);
      rest &= rest - 1;
      put_bits(view_key.data(), pos,
               static_cast<std::uint32_t>(
                   par.views[static_cast<std::size_t>(p)]),
               codec.sender_bits);
      pos += codec.sender_bits;
    }
  };
  const auto pack_state_key = [&](AdvState adv) {
    std::fill(state_key.begin(), state_key.end(), 0u);
    put_bits(state_key.data(), 0, static_cast<std::uint32_t>(adv),
             codec.adv_bits);
    for (int q = 0; q < n; ++q) {
      put_bits(state_key.data(),
               codec.adv_bits +
                   static_cast<std::size_t>(q) * codec.index_bits,
               view_idx[static_cast<std::size_t>(q)], codec.index_bits);
    }
  };

  std::size_t reported = 0;
  for (std::size_t i = chunk.begin; i < chunk.end && !out.overflow; ++i) {
    if (budget != nullptr && i > chunk.begin) {
      if (!budget->add(out.states.size() - reported)) {
        out.overflow = true;
        break;
      }
      reported = out.states.size();
    }
    const PrefixState& parent = frontier_[i];
    const auto epoch = static_cast<std::uint32_t>(i - chunk.begin) + 1;
    std::int32_t parent_adv = -1;
    if (adv_cached) {
      bool fresh;
      parent_adv = adv_remap.find_or_insert(parent.adv_state, -1, &fresh);
      assert(!fresh && "the prescan saw every parent state");
    }
    if (dense_views) {
      for (int p = 0; p < n; ++p) {
        bool fresh;
        const std::int32_t d = view_remap.find_or_insert(
            parent.views[static_cast<std::size_t>(p)],
            next_digit[static_cast<std::size_t>(p)], &fresh);
        if (fresh) ++next_digit[static_cast<std::size_t>(p)];
        digits[static_cast<std::size_t>(p)] =
            static_cast<std::uint32_t>(d);
      }
    }
    for (int letter = 0; letter < alphabet; ++letter) {
      const AdvState adv_next =
          adv_cached
              ? adv_child_value[static_cast<std::size_t>(parent_adv) *
                                    static_cast<std::size_t>(alphabet) +
                                static_cast<std::size_t>(letter)]
              : adversary.transition(parent.adv_state, letter);
      if (adv_next == kRejectState) continue;
      const Digraph& g = adversary.graph(letter);
      for (int q = 0; q < n; ++q) {
        const auto pair = static_cast<std::size_t>(
            shape_.pair_of[static_cast<std::size_t>(letter) *
                               static_cast<std::size_t>(n) +
                           static_cast<std::size_t>(q)]);
        std::int32_t view_index;
        if (memo_epoch[pair] == epoch) {
          view_index = memo_val[pair];
        } else {
          const NodeMask mask = g.in_mask(static_cast<ProcessId>(q));
          if (dense_views) {
            std::uint64_t local = 0;
            NodeMask rest = mask;
            while (rest != 0) {
              const int p = std::countr_zero(rest);
              rest &= rest - 1;
              local = local * radix[static_cast<std::size_t>(p)] +
                      digits[static_cast<std::size_t>(p)];
            }
            const std::size_t addr =
                static_cast<std::size_t>(pair_base[pair] + local);
            view_index = dense_view_slot[addr];
            if (view_index < 0) {
              pack_view_key(static_cast<std::uint32_t>(q), mask, parent);
              view_index =
                  out.views.append_new(view_key.data(), view_key.size());
              dense_view_slot[addr] = view_index;
            }
          } else {
            pack_view_key(static_cast<std::uint32_t>(q), mask, parent);
            bool view_inserted;
            view_index = out.views.intern(view_key.data(), view_key.size(),
                                          &view_inserted);
          }
          memo_val[pair] = view_index;
          memo_epoch[pair] = epoch;
        }
        view_idx[static_cast<std::size_t>(q)] =
            static_cast<std::uint32_t>(view_index);
      }
      assert(adversary.state_bound() <= 0 ||
             adv_next < adversary.state_bound());
      ++emissions;
      bool inserted;
      int index;
      if (dense_states) {
        std::uint64_t addr = static_cast<std::uint64_t>(
            adv_child_digit[static_cast<std::size_t>(parent_adv) *
                                static_cast<std::size_t>(alphabet) +
                            static_cast<std::size_t>(letter)]);
        for (int q = 0; q < n; ++q) {
          addr = addr * w_cap + view_idx[static_cast<std::size_t>(q)];
        }
        std::int32_t slot = dense_state_slot[static_cast<std::size_t>(addr)];
        inserted = slot < 0;
        if (inserted) {
          pack_state_key(adv_next);
          slot = out.state_index.append_new(state_key.data(),
                                            state_key.size());
          dense_state_slot[static_cast<std::size_t>(addr)] = slot;
        }
        index = slot;
      } else {
        pack_state_key(adv_next);
        index = out.state_index.intern(state_key.data(), state_key.size(),
                                       &inserted);
      }
      if (inserted) {
        PendingState state;
        state.inputs = parent.inputs;
        state.reach = advance_reach(parent.reach, g);
        state.adv_state = adv_next;
        state.multiplicity = parent.multiplicity;
        state.parent = static_cast<int>(i);
        state.letter = letter;
        out.states.push_back(std::move(state));
        if (out.states.size() > options_.max_states) {
          out.overflow = true;
          break;
        }
      } else {
        out.states[static_cast<std::size_t>(index)].multiplicity +=
            parent.multiplicity;
      }
      if (options_.keep_levels) {
        // A parent can reach one class via several letters; filter the
        // repeats like the serial scan does.
        std::vector<int>& kids = out.children[i - chunk.begin];
        if (std::find(kids.begin(), kids.end(), index) == kids.end()) {
          kids.push_back(index);
        }
      }
    }
  }
  if (budget != nullptr && !out.overflow &&
      !budget->add(out.states.size() - reported)) {
    out.overflow = true;
  }
  out.stats.chunks = 1;
  out.stats.dense_view_chunks = dense_views ? 1 : 0;
  out.stats.dense_state_chunks = dense_states ? 1 : 0;
  out.stats.emissions = emissions;
  out.stats.pending_states = out.states.size();
  out.stats.dedup_hits = emissions - out.states.size();
  out.stats.pending_views = out.views.size();
  out.stats.rehashes = out.views.rehashes() + out.state_index.rehashes();
  if (trace != nullptr) {
    trace->complete(
        "chunk", "expand", span_start, trace->now_us() - span_start,
        {telemetry::TraceArg::num("depth",
                                  static_cast<std::uint64_t>(options_.depth)),
         telemetry::TraceArg::num("level",
                                  static_cast<std::uint64_t>(level_) + 1),
         telemetry::TraceArg::num("begin", chunk.begin),
         telemetry::TraceArg::num("end", chunk.end),
         telemetry::TraceArg::num("states", out.states.size()),
         telemetry::TraceArg::num("dense", dense_views ? 1 : 0)});
  }
  return out;
}

PendingFrontier FrontierEngine::merge(
    std::vector<PendingFrontier> chunks) const {
  for (const PendingFrontier& chunk : chunks) {
    if (chunk.overflow) {
      PendingFrontier level;
      level.overflow = true;
      return level;
    }
  }
  if (chunks.size() == 1) {
    // The single chunk covered the whole frontier: its dedup is already
    // global and its parent indexing is the frontier's.
    if (chunks.front().spilled != nullptr) {
      restore_spilled(chunks.front());
    }
    return std::move(chunks.front());
  }

  const KeyCodec codec = level_codec();
  PendingFrontier level;
  level.chunk = FrontierChunk{0, frontier_.size()};
  if (options_.keep_levels) level.children.resize(frontier_.size());
  std::vector<int> view_remap;
  std::vector<int> state_remap;
  std::vector<std::uint32_t> state_key;
  for (PendingFrontier& chunk : chunks) {
    // Spilled chunks come back one at a time, right before they fold
    // in, so at most one restored chunk is resident besides the merged
    // level -- that bound is the spill tier's whole point.
    if (chunk.spilled != nullptr) restore_spilled(chunk);
    level.stats.add(chunk.stats);
    // Re-key the chunk's distinct views in the merged view table (one
    // long-key lookup per distinct view, not per state). Every chunk of
    // a level packs with the same KeyCodec, so the packed bytes carry
    // over verbatim.
    view_remap.assign(chunk.views.size(), -1);
    for (std::size_t v = 0; v < chunk.views.size(); ++v) {
      bool inserted;
      view_remap[v] = level.views.intern(
          chunk.views.words_of(static_cast<int>(v)),
          chunk.views.count_of(static_cast<int>(v)), &inserted);
    }
    state_remap.assign(chunk.states.size(), -1);
    for (std::size_t s = 0; s < chunk.states.size(); ++s) {
      const std::uint32_t* words =
          chunk.state_index.words_of(static_cast<int>(s));
      assert(chunk.state_index.count_of(static_cast<int>(s)) ==
             codec.state_words);
      // Remap the packed view-index fields into the merged table's
      // numbering; the adversary-state field carries over.
      state_key.assign(codec.state_words, 0);
      put_bits(state_key.data(), 0, get_bits(words, 0, codec.adv_bits),
               codec.adv_bits);
      for (int q = 0; q < codec.n; ++q) {
        const std::size_t pos =
            codec.adv_bits + static_cast<std::size_t>(q) * codec.index_bits;
        put_bits(state_key.data(), pos,
                 static_cast<std::uint32_t>(view_remap[get_bits(
                     words, pos, codec.index_bits)]),
                 codec.index_bits);
      }
      bool inserted;
      const int index = level.state_index.intern(state_key.data(),
                                                 state_key.size(), &inserted);
      state_remap[s] = index;
      if (inserted) {
        level.states.push_back(std::move(chunk.states[s]));
        if (level.states.size() > options_.max_states) {
          level.overflow = true;
          return level;
        }
      } else {
        level.states[static_cast<std::size_t>(index)].multiplicity +=
            chunk.states[s].multiplicity;
      }
    }
    if (options_.keep_levels) {
      for (std::size_t p = 0; p < chunk.children.size(); ++p) {
        // Distinct chunk-local classes stay distinct after the merge, so
        // the per-parent lists need only remapping, not re-dedup.
        std::vector<int>& kids = level.children[chunk.chunk.begin + p];
        kids.reserve(chunk.children[p].size());
        for (const int child : chunk.children[p]) {
          kids.push_back(state_remap[static_cast<std::size_t>(child)]);
        }
      }
    }
    // Fully folded in: release the chunk (and, for restored chunks, keep
    // the resident set at merged + one chunk instead of merged + all).
    chunk = PendingFrontier{};
  }
  // Fix up the summed chunk stats for the cross-chunk dedup this merge
  // performed: duplicates across chunks count as dedup hits, and the
  // distinct view/state tallies become the merged tables' sizes.
  const std::uint64_t chunk_states_total = level.stats.pending_states;
  level.stats.pending_states = level.states.size();
  level.stats.dedup_hits += chunk_states_total - level.states.size();
  level.stats.pending_views = level.views.size();
  level.stats.rehashes +=
      level.views.rehashes() + level.state_index.rehashes();
  return level;
}

void FrontierEngine::commit(PendingFrontier level) {
  assert(!level.overflow && "commit of an overflowed level");
  if (level.spilled != nullptr) restore_spilled(level);
  // The codec of the level being committed: derived BEFORE any interner
  // mutation below, so it matches what expand()/merge() used.
  const KeyCodec codec = level_codec();
  // Sequential hand-off: commits of one engine happen one at a time but
  // possibly from different pool threads across levels.
  interner_->attach_to_current_thread();
  const std::size_t views_before = interner_->size();
  const int n = adversary_->num_processes();
  std::vector<PrefixState> next;
  next.reserve(level.states.size());
  std::vector<std::pair<int, int>> parents;
  parents.reserve(level.states.size());
  // Each distinct pending view is interned exactly once, on first use;
  // states are walked in merged (= serial discovery) order and views in
  // process order, so ids are assigned in the serial scan's order.
  std::vector<ViewId> resolved(level.views.size(), -1);
  std::vector<ViewId> senders;
  for (std::size_t s = 0; s < level.states.size(); ++s) {
    PendingState& state = level.states[s];
    const std::uint32_t* key = level.state_index.words_of(static_cast<int>(s));
    PrefixState out;
    out.inputs = std::move(state.inputs);
    out.reach = std::move(state.reach);
    out.adv_state = state.adv_state;
    out.multiplicity = state.multiplicity;
    out.views.resize(static_cast<std::size_t>(n));
    for (int q = 0; q < n; ++q) {
      const auto v = static_cast<std::size_t>(get_bits(
          key, codec.adv_bits + static_cast<std::size_t>(q) * codec.index_bits,
          codec.index_bits));
      ViewId& id = resolved[v];
      if (id < 0) {
        const std::uint32_t* words = level.views.words_of(static_cast<int>(v));
        std::size_t pos = 0;
        const std::uint32_t recv = get_bits(words, pos, codec.q_bits);
        pos += codec.q_bits;
        const auto in_mask =
            static_cast<NodeMask>(get_bits(words, pos, codec.mask_bits));
        pos += codec.mask_bits;
        senders.clear();
        NodeMask rest = in_mask;
        while (rest != 0) {
          rest &= rest - 1;
          senders.push_back(
              static_cast<ViewId>(get_bits(words, pos, codec.sender_bits)));
          pos += codec.sender_bits;
        }
        id = interner_->step(static_cast<ProcessId>(recv), in_mask, senders);
      }
      out.views[static_cast<std::size_t>(q)] = id;
    }
    next.push_back(std::move(out));
    parents.emplace_back(state.parent, state.letter);
  }
  frontier_ = std::move(next);
  // level.views holds exactly the distinct views of the new frontier
  // (every entry was part of some committed state's key), so the
  // per-process tally feeding the dense heuristic is one scan of it.
  frontier_distinct_.assign(static_cast<std::size_t>(n), 0);
  for (std::size_t v = 0; v < level.views.size(); ++v) {
    ++frontier_distinct_[get_bits(level.views.words_of(static_cast<int>(v)),
                                  0, codec.q_bits)];
  }
  ++level_;
  level_sizes_.push_back(frontier_.size());
  if (options_.keep_levels) {
    children_.push_back(std::move(level.children));
    levels_.push_back(frontier_);
    first_parent_.push_back(std::move(parents));
  }
  // The single counter-flush point: only committed levels reach it, so
  // every count is identical at any thread count (see telemetry/metrics).
  if (options_.metrics != nullptr) {
    options_.metrics->add_pending(level.stats);
    options_.metrics->add_commit(frontier_.size(), interner_->size() -
                                                       views_before);
  }
}

bool FrontierEngine::advance(std::size_t chunk_states) {
  std::vector<PendingFrontier> expansions;
  for (const FrontierChunk& chunk : partition(chunk_states)) {
    expansions.push_back(expand(chunk));
  }
  PendingFrontier level = merge(std::move(expansions));
  if (level.overflow) {
    truncated_ = true;
    return false;
  }
  commit(std::move(level));
  return true;
}

}  // namespace topocon
