// The frontier engine: the per-level BFS expansion of the depth-t
// epsilon-approximation (Definition 6.2), exposed as ordered chunks so
// callers can shard one level's work below the input-vector root.
//
// The engine owns one shard of the prefix space -- a contiguous range of
// input-vector roots with a dedicated ViewInterner -- and expands it one
// level at a time in three phases:
//
//   partition  the current frontier is cut into deterministic chunks of
//              at most `chunk_states` parents, in frontier order;
//   expand     each chunk is expanded by one letter with chunk-local
//              deduplication. Expansion is *interner-free*: a child view
//              is recorded as its pending (process, round in-mask,
//              parent-level sender ids) word sequence, which is exactly
//              the structural identity ViewInterner::step interns -- two
//              children are equal iff their pending views are equal.
//              Pending views are deduplicated chunk-locally so state
//              dedup keys are short (one word per process), and no
//              shared state is written, so any number of chunks of one
//              engine may expand concurrently on different threads;
//   merge +    chunk results are deduplicated across chunks in chunk
//   commit     order (first discovery wins, multiplicities sum) and only
//              then interned: commit resolves each distinct pending view
//              exactly once, in first-use order. Because chunk order is
//              frontier order, the merged level -- states, first_parent
//              links, children links, multiplicities, and even the
//              interner's id assignment order -- is identical to what a
//              single serial scan of the whole frontier produces, for
//              EVERY chunk size. Chunking is an execution detail that
//              can never change a result.
//
// merge() is separated from commit() so a caller coordinating several
// engines (runtime/sweep/parallel_solver.*) can apply the global
// truncation budget to the sum of the pending level sizes BEFORE any
// interner mutation happens: an overflowing level leaves every interner
// exactly as if the level had never been attempted, matching the serial
// checker's truncation semantics bit for bit.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "adversary/adversary.hpp"
#include "core/epsilon_approx.hpp"
#include "ptg/view_intern.hpp"
#include "telemetry/metrics.hpp"

namespace topocon {

/// One deterministic slice [begin, end) of a frontier, in frontier order.
struct FrontierChunk {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Process-wide default for AnalysisOptions::frontier == kDefault: set
/// from the CLI (`topocon --frontier=MODE`, `--sweep-frontier=MODE`).
/// The initial value resolves to kAuto. Like set_default_chunk_states an
/// execution knob only -- results are identical for every mode.
void set_default_frontier_mode(FrontierMode mode);
FrontierMode default_frontier_mode();

/// Parses "auto" / "dense" / "sparse" (the `--frontier=` spellings);
/// nullopt for anything else.
std::optional<FrontierMode> frontier_mode_from_name(std::string_view name);
const char* to_string(FrontierMode mode);

/// Fixed-width bit layout of the engine's pending dedup keys, derived
/// once per level from quantities that are constant while that level
/// expands (n, the expansion shape, the parent interner size, the parent
/// frontier size, and the adversary's state_bound()). A view key
/// [q, mask, senders...] and a state key [adv_state, view indices] are
/// packed LSB-first into little-endian uint32 words; packing is
/// injective, so dedup equality classes -- and with them every result
/// byte -- are exactly those of the unpacked keys, while the
/// WordSeqIndex pools (and the spill records built from them) shrink by
/// the ratio of the summed bit widths to full words. Every chunk of one
/// level uses the same widths, so merge() can re-intern chunk view keys
/// byte-for-byte and only state keys need field-level remapping.
struct KeyCodec {
  std::uint32_t q_bits = 0;       ///< receiver process, < n
  std::uint32_t mask_bits = 0;    ///< round in-mask, n bits
  std::uint32_t sender_bits = 0;  ///< parent-level interned view ids
  std::uint32_t adv_bits = 0;     ///< safety-automaton state
  std::uint32_t index_bits = 0;   ///< pending-view table indices
  std::uint32_t state_words = 0;  ///< packed state-key length in words
  int n = 0;
};

/// Writes the low `bits` (<= 32) bits of `value` at absolute bit
/// position `pos` of a zero-initialized little-endian word buffer.
/// `value` must fit in `bits` bits; fields never overlap, so plain OR
/// suffices.
inline void put_bits(std::uint32_t* words, std::size_t pos,
                     std::uint32_t value, std::uint32_t bits) {
  if (bits == 0) return;
  const std::size_t w = pos >> 5;
  const unsigned off = pos & 31;
  const std::uint64_t shifted = static_cast<std::uint64_t>(value) << off;
  words[w] |= static_cast<std::uint32_t>(shifted);
  if (off + bits > 32) {
    words[w + 1] |= static_cast<std::uint32_t>(shifted >> 32);
  }
}

/// Reads the `bits` (<= 32) bits at absolute bit position `pos`.
inline std::uint32_t get_bits(const std::uint32_t* words, std::size_t pos,
                              std::uint32_t bits) {
  if (bits == 0) return 0;
  const std::size_t w = pos >> 5;
  const unsigned off = pos & 31;
  std::uint64_t value = words[w] >> off;
  if (off + bits > 32) {
    value |= static_cast<std::uint64_t>(words[w + 1]) << (32 - off);
  }
  const std::uint64_t mask =
      bits >= 32 ? 0xffffffffull : ((std::uint64_t{1} << bits) - 1);
  return static_cast<std::uint32_t>(value & mask);
}

/// Append-only open-addressed map from word sequences (dedup keys) to
/// dense indices, with the key material owned by the table -- the
/// allocation-free workhorse behind pending-view and pending-state
/// deduplication. Exposed here only because PendingFrontier embeds two.
class WordSeqIndex {
 public:
  /// Index of the key `words[0..count)`, inserting it if absent;
  /// `*inserted` reports which happened.
  int intern(const std::uint32_t* words, std::size_t count, bool* inserted);

  /// Appends the key as a NEW entry without consulting or maintaining
  /// the probe table: the dense expansion path has already proved
  /// uniqueness through its direct-indexed table. A table touched by
  /// append_new becomes read-only for dedup -- intern() must not be
  /// called on it afterwards (merge() and commit() only read entries,
  /// which is all the engine ever does with an expanded chunk).
  int append_new(const std::uint32_t* words, std::size_t count);

  std::size_t size() const { return entries_.size(); }
  /// Probe-table growth rehashes performed so far (telemetry).
  std::uint64_t rehashes() const { return rehashes_; }
  const std::uint32_t* words_of(int index) const {
    return pool_.data() + entries_[static_cast<std::size_t>(index)].offset;
  }
  std::size_t count_of(int index) const {
    return entries_[static_cast<std::size_t>(index)].count;
  }
  /// Rough resident footprint in bytes (pool + entries + probe table),
  /// an input of the spill policy (core/spill.*).
  std::uint64_t approx_bytes() const {
    return pool_.size() * sizeof(std::uint32_t) +
           entries_.size() * sizeof(Entry) + slots_.size() * sizeof(int);
  }

 private:
  /// The spill tier serializes pool_ + entries_ directly and restores
  /// tables without the probe table (read-only, like after append_new).
  friend class FrontierSpill;

  struct Entry {
    std::size_t offset = 0;
    std::uint32_t count = 0;
    std::size_t hash = 0;
  };
  void grow();

  std::vector<std::uint32_t> pool_;
  std::vector<Entry> entries_;
  /// Power-of-two probe table of entry indices; -1 = empty.
  std::vector<int> slots_;
  /// True once append_new bypassed the probe table (see its contract).
  bool appended_ = false;
  std::uint64_t rehashes_ = 0;
};

/// Per-state metadata of a pending (not yet interned) level; the view
/// data lives in the PendingFrontier tables.
struct PendingState {
  InputVector inputs;
  ReachVector reach;
  AdvState adv_state = 0;
  std::uint64_t multiplicity = 1;
  /// Frontier index and letter of the first discovery.
  int parent = -1;
  int letter = -1;
};

/// One expanded-but-not-yet-interned level slice: the output of
/// expand() (covering one chunk) and of merge() (covering the whole
/// frontier). Views are stored as chunk-local dedup indices into
/// `views`, whose key words are [process, mask, senders...] with sender
/// ids referring to the PARENT level's interned views.
class SpillTicket;

struct PendingFrontier {
  FrontierChunk chunk;
  std::vector<PendingState> states;
  /// Distinct pending views of this slice; key words of view v are
  /// the KeyCodec packing of [process, mask, senders...].
  WordSeqIndex views;
  /// State dedup table, parallel to `states`: key words of state s are
  /// the KeyCodec packing of [adv_state, view index of process 0, ...,
  /// view index of n-1].
  WordSeqIndex state_index;
  /// children[i - chunk.begin] = local child indices of frontier parent
  /// i, in discovery order; filled only under keep_levels.
  std::vector<std::vector<int>> children;
  /// True iff the slice exceeded max_states (states incomplete).
  bool overflow = false;
  /// Expansion statistics of this slice, flushed into
  /// AnalysisOptions::metrics only at commit() so truncated levels never
  /// contribute (the determinism contract in telemetry/metrics.hpp).
  telemetry::PendingStats stats;
  /// Non-null iff states/views/state_index/children currently live in a
  /// spill file instead of memory (core/spill.*); chunk, overflow, and
  /// stats stay resident so budget scans and stat sums never touch disk.
  /// merge() restores spilled slices one at a time, in chunk order.
  std::shared_ptr<SpillTicket> spilled;

  /// Rough resident footprint in bytes of the spillable payload, the
  /// quantity the spill policy compares against its budget.
  std::uint64_t approx_bytes() const;
};

/// Shared early-abort accumulator for one level's concurrent chunk
/// expansions: chunks report their dedup growth and stop once the
/// running total exceeds the per-level state cap, so a level that is
/// going to overflow costs O(max_states) instead of a full expansion.
/// NOTE: chunk-local counts can overcount the merged level (chunks of
/// one root may discover the same class), so a tripped budget is a
/// signal to fall back to exact accounting -- one chunk per root, whose
/// counts are exact because roots never share classes -- NOT an
/// overflow verdict by itself. runtime/sweep/parallel_solver.cpp
/// implements that two-pass protocol.
class FrontierBudget {
 public:
  explicit FrontierBudget(std::size_t max_states)
      : max_states_(max_states) {}

  /// Reports `delta` newly discovered states; returns false once the
  /// running total exceeds the cap.
  bool add(std::size_t delta) {
    return total_.fetch_add(delta, std::memory_order_relaxed) + delta <=
           max_states_;
  }
  bool exceeded() const {
    return total_.load(std::memory_order_relaxed) > max_states_;
  }

 private:
  std::atomic<std::size_t> total_{0};
  const std::size_t max_states_;
};

/// Streaming progress of a chunked expansion: fired once per completed
/// chunk of the level currently being expanded. Purely observational --
/// results never depend on it -- and the completion ORDER of chunks is
/// thread-count-dependent; consumers may rely only on the counters.
struct ChunkProgress {
  /// Target depth of the analysis pass this level belongs to.
  int depth = 0;
  /// Level being expanded (1..depth).
  int level = 0;
  std::size_t chunks_done = 0;
  std::size_t chunks_total = 0;
  /// Total states of the frontier being expanded (all shards).
  std::size_t frontier_states = 0;
};
using ChunkProgressFn = std::function<void(const ChunkProgress&)>;

/// One shard of the chunked BFS (see the header comment).
class FrontierEngine {
 public:
  /// Initializes the level-0 frontier: one class per input vector with
  /// dense index in [first_root, last_root). Mutates `interner` (which
  /// must outlive the engine), like every commit() does.
  FrontierEngine(const MessageAdversary& adversary,
                 const AnalysisOptions& options, ViewInterner& interner,
                 int first_root, int last_root);

  /// Depth expanded so far (0 right after construction).
  int level() const { return level_; }
  /// True once a level overflowed max_states; the frontier then still
  /// holds the last complete level.
  bool truncated() const { return truncated_; }
  const std::vector<PrefixState>& frontier() const { return frontier_; }

  /// Deterministic partition of the current frontier into chunks of at
  /// most `chunk_states` parents (0 = one chunk). Never empty: an empty
  /// frontier yields one empty chunk.
  std::vector<FrontierChunk> partition(std::size_t chunk_states) const;

  /// Expands one chunk by one letter with chunk-local dedup. Read-only:
  /// chunks of one engine may be expanded concurrently. When `budget` is
  /// given the chunk reports its growth there and aborts (overflow set)
  /// once the shared total trips -- see FrontierBudget for the exactness
  /// caveat.
  ///
  /// The dedup representation is chosen per chunk by
  /// options.frontier (kAuto by default): when the enumerable child-view
  /// key space -- at most sum over the distinct (process, in-mask) pairs
  /// of the product of the per-process sender-id bounds -- is small, the
  /// chunk dedups through direct-indexed tables instead of hashing.
  /// Keys, indices, and entry order are identical either way, so the
  /// choice (like the chunk size) can never change a result byte.
  PendingFrontier expand(const FrontierChunk& chunk,
                         FrontierBudget* budget = nullptr) const;

  /// Deduplicates the chunk expansions -- which must be all chunks of
  /// the current frontier, in partition order -- across chunks. Does not
  /// touch the interner or the engine. A single chunk passes through.
  PendingFrontier merge(std::vector<PendingFrontier> chunks) const;

  /// Interns the pending views (each distinct view once, in first-use
  /// order -- the id assignment order of a serial scan) and installs the
  /// level as the new frontier. Must not be called with an overflowed
  /// level. Re-binds the interner to the calling thread (sequential
  /// hand-off); at most one commit per engine may run at a time.
  void commit(PendingFrontier level);

  /// Records that the next level overflowed (the caller decided via the
  /// global budget); the frontier keeps the last complete level.
  void mark_truncated() { truncated_ = true; }

  /// Serial convenience: partition + expand + merge + commit in one
  /// call. Returns false (and marks truncated) on overflow.
  bool advance(std::size_t chunk_states = 0);

  /// Sizes of every committed level, 0..level().
  const std::vector<std::size_t>& level_sizes() const { return level_sizes_; }

  // History, recorded only under options.keep_levels; indexed like the
  // corresponding DepthAnalysis members restricted to this shard.
  const std::vector<std::vector<PrefixState>>& levels() const {
    return levels_;
  }
  const std::vector<std::vector<std::pair<int, int>>>& first_parent() const {
    return first_parent_;
  }
  const std::vector<std::vector<std::vector<int>>>& children() const {
    return children_;
  }

  // Move-out variants for building a DepthAnalysis from a finished
  // engine without copying multi-million-state histories; the engine is
  // done afterwards (history empty, frontier moved from).
  std::vector<std::vector<PrefixState>> take_levels() {
    return std::move(levels_);
  }
  std::vector<std::vector<std::pair<int, int>>> take_first_parent() {
    return std::move(first_parent_);
  }
  std::vector<std::vector<std::vector<int>>> take_children() {
    return std::move(children_);
  }
  std::vector<PrefixState> take_frontier() { return std::move(frontier_); }

 private:
  /// The adversary's per-round expansion shape, fixed at construction:
  /// the distinct (receiver, in-mask) pairs over all (letter, process)
  /// combinations. A parent's child view for process q depends only on
  /// its pair, so `pairs` bounds both the per-parent view-intern work
  /// (the expand memo) and the dense key-space enumeration.
  struct ExpansionShape {
    struct Pair {
      std::uint32_t q = 0;
      NodeMask mask = 0;
    };
    std::vector<Pair> pairs;
    /// [letter * n + q] -> index into pairs.
    std::vector<std::int32_t> pair_of;
  };

  /// The key bit-widths of the level currently being expanded, derived
  /// from pre-commit state only -- expand(), merge(), and the head of
  /// commit() (before any interner mutation) all see the same codec.
  KeyCodec level_codec() const;

  const MessageAdversary* adversary_;
  AnalysisOptions options_;
  ViewInterner* interner_;
  ExpansionShape shape_;
  /// Distinct interned views per process in the current frontier,
  /// maintained by the constructor and commit(); the per-chunk dense
  /// heuristic bounds sender-id digits with min(chunk size, this).
  std::vector<std::uint32_t> frontier_distinct_;
  std::vector<PrefixState> frontier_;
  int level_ = 0;
  bool truncated_ = false;
  std::vector<std::size_t> level_sizes_;
  std::vector<std::vector<PrefixState>> levels_;
  std::vector<std::vector<std::pair<int, int>>> first_parent_;
  std::vector<std::vector<std::vector<int>>> children_;
};

}  // namespace topocon
