#include "core/epsilon_approx.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>
#include <unordered_map>

#include "core/frontier.hpp"
#include "core/union_find.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace topocon {

namespace {

// Dedup key of a prefix class: safety state plus all interned views. The
// views determine the inputs (every view contains its own input) and the
// reach masks (the cone determines who has been heard), so this key
// identifies the class exactly.
struct StateKey {
  AdvState adv_state;
  ViewVector views;
  bool operator==(const StateKey&) const = default;
};

struct StateKeyHash {
  std::size_t operator()(const StateKey& k) const noexcept {
    std::size_t h = static_cast<std::size_t>(k.adv_state) + 1u;
    for (const ViewId id : k.views) {
      h ^= static_cast<std::size_t>(id) + 0x9e3779b9u + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace

std::vector<PrefixState> initial_frontier(const MessageAdversary& adversary,
                                          const AnalysisOptions& options,
                                          ViewInterner& interner,
                                          int first_root, int last_root) {
  const int n = adversary.num_processes();
  const std::vector<InputVector> roots =
      all_input_vectors(n, options.num_values);
  assert(0 <= first_root && first_root <= last_root &&
         static_cast<std::size_t>(last_root) <= roots.size());
  std::vector<PrefixState> frontier;
  frontier.reserve(static_cast<std::size_t>(last_root - first_root));
  for (int r = first_root; r < last_root; ++r) {
    const InputVector& x = roots[static_cast<std::size_t>(r)];
    PrefixState state;
    state.inputs = x;
    state.views = interner.initial(x);
    state.reach = initial_reach(n);
    state.adv_state = adversary.initial_state();
    state.multiplicity = 1;
    frontier.push_back(std::move(state));
  }
  return frontier;
}

FrontierLevel expand_frontier(const MessageAdversary& adversary,
                              ViewInterner& interner,
                              const std::vector<PrefixState>& current,
                              std::size_t max_states, bool keep_links) {
  FrontierLevel level;
  std::unordered_map<StateKey, int, StateKeyHash> index;
  if (keep_links) level.children.resize(current.size());

  for (std::size_t i = 0; i < current.size() && !level.overflow; ++i) {
    const PrefixState& parent = current[i];
    for (int letter = 0; letter < adversary.alphabet_size(); ++letter) {
      const AdvState adv_next = adversary.transition(parent.adv_state, letter);
      if (adv_next == kRejectState) continue;
      const Digraph& g = adversary.graph(letter);
      StateKey key{adv_next, interner.advance(parent.views, g)};
      auto [it, inserted] = index.try_emplace(
          std::move(key), static_cast<int>(level.states.size()));
      if (inserted) {
        PrefixState child;
        child.inputs = parent.inputs;
        child.views = it->first.views;
        child.reach = advance_reach(parent.reach, g);
        child.adv_state = adv_next;
        child.multiplicity = parent.multiplicity;
        level.states.push_back(std::move(child));
        level.first_parent.emplace_back(static_cast<int>(i), letter);
        if (level.states.size() > max_states) {
          level.overflow = true;
          break;
        }
      } else {
        level.states[static_cast<std::size_t>(it->second)].multiplicity +=
            parent.multiplicity;
      }
      if (keep_links) {
        std::vector<int>& kids = level.children[i];
        if (std::find(kids.begin(), kids.end(), it->second) == kids.end()) {
          kids.push_back(it->second);
        }
      }
    }
  }
  return level;
}

void compute_components(const AnalysisOptions& options,
                        DepthAnalysis& analysis) {
  const int n = analysis.num_processes;
  const std::vector<PrefixState>& leaves = analysis.levels.back();
  UnionFind uf(leaves.size());
  if (options.topology == AdjacencyTopology::kMin) {
    // Minimum topology: union leaves sharing any process's view id.
    for (int p = 0; p < n; ++p) {
      std::unordered_map<ViewId, int> first_leaf;
      for (std::size_t i = 0; i < leaves.size(); ++i) {
        const ViewId id = leaves[i].views[static_cast<std::size_t>(p)];
        const auto [it, inserted] =
            first_leaf.try_emplace(id, static_cast<int>(i));
        if (!inserted) uf.unite(it->second, static_cast<int>(i));
      }
    }
  } else {
    // P-view topology: union leaves with equal JOINT P-views (the exact
    // tuple of member views is the map key).
    assert(options.pview_set != 0);
    std::map<std::vector<ViewId>, int> first_leaf;
    std::vector<ViewId> tuple;
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      tuple.clear();
      NodeMask rest = options.pview_set & full_mask(n);
      while (rest != 0) {
        const int p = std::countr_zero(rest);
        rest &= rest - 1;
        tuple.push_back(leaves[i].views[static_cast<std::size_t>(p)]);
      }
      const auto [it, inserted] =
          first_leaf.try_emplace(tuple, static_cast<int>(i));
      if (!inserted) uf.unite(it->second, static_cast<int>(i));
    }
  }
  analysis.leaf_component = uf.component_ids();
  const int num_components = uf.num_sets();

  // ---- Component summaries.
  analysis.components.assign(static_cast<std::size_t>(num_components),
                             ComponentInfo{});
  // Per component, per process: first seen input value (-1 = none yet) and
  // whether it stayed uniform.
  std::vector<std::vector<Value>> first_input(
      static_cast<std::size_t>(num_components),
      std::vector<Value>(static_cast<std::size_t>(n), -1));
  std::vector<NodeMask> nonuniform(static_cast<std::size_t>(num_components),
                                   0);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const PrefixState& leaf = leaves[i];
    const auto c = static_cast<std::size_t>(analysis.leaf_component[i]);
    ComponentInfo& info = analysis.components[c];
    if (info.num_leaves == 0) {
      info.common_broadcast = full_mask(n);
      info.common_input_values = ~std::uint32_t{0};
    }
    info.num_leaves += 1;
    const Value v = uniform_value(leaf.inputs);
    if (v >= 0) info.valence_mask |= 1u << v;
    std::uint32_t present = 0;
    for (const Value x : leaf.inputs) {
      present |= 1u << x;
    }
    info.common_input_values &= present;
    info.common_broadcast &= broadcast_complete(leaf.reach);
    for (int p = 0; p < n; ++p) {
      Value& seen = first_input[c][static_cast<std::size_t>(p)];
      const Value x = leaf.inputs[static_cast<std::size_t>(p)];
      if (seen < 0) {
        seen = x;
      } else if (seen != x) {
        nonuniform[c] |= NodeMask{1} << p;
      }
    }
  }

  analysis.valence_separated = true;
  analysis.merged_components = 0;
  analysis.valent_broadcastable = true;
  analysis.strong_assignable = true;
  for (std::size_t c = 0; c < analysis.components.size(); ++c) {
    ComponentInfo& info = analysis.components[c];
    info.broadcasters = info.common_broadcast & ~nonuniform[c];
    if (info.num_valences() >= 2) {
      analysis.valence_separated = false;
      ++analysis.merged_components;
      info.assigned_value = -1;
      info.assigned_value_strong = -1;
    } else if (info.valence_mask != 0) {
      info.assigned_value = std::countr_zero(info.valence_mask);
      // Strong validity must still decide the valence; feasible iff that
      // value occurs in every leaf of the component.
      info.assigned_value_strong =
          (info.common_input_values & info.valence_mask) != 0
              ? info.assigned_value
              : -1;
      if (info.broadcasters == 0) analysis.valent_broadcastable = false;
    } else {
      info.assigned_value = 0;  // meta-procedure step 3: default value
      info.assigned_value_strong =
          info.common_input_values != 0
              ? std::countr_zero(info.common_input_values)
              : -1;
    }
    if (info.assigned_value_strong < 0) analysis.strong_assignable = false;
  }
  analysis.strong_assignable &= analysis.valence_separated;
}

DepthAnalysis analyze_depth(const MessageAdversary& adversary,
                            const AnalysisOptions& options,
                            std::shared_ptr<ViewInterner> interner) {
  const int n = adversary.num_processes();
  DepthAnalysis analysis;
  analysis.num_values = options.num_values;
  analysis.num_processes = n;
  analysis.interner =
      interner ? std::move(interner) : std::make_shared<ViewInterner>();

  // One engine over the whole root range, advanced serially (a single
  // chunk per level -- see core/frontier.hpp for the chunked form the
  // parallel solver drives).
  const int num_roots =
      static_cast<int>(all_input_vectors(n, options.num_values).size());
  FrontierEngine engine(adversary, options, *analysis.interner, 0,
                        num_roots);
  telemetry::MetricsRegistry* metrics = options.metrics;
  telemetry::TraceWriter* trace =
      metrics != nullptr ? metrics->trace() : nullptr;
  if (metrics != nullptr) metrics->note_frontier(engine.frontier().size());
  for (int s = 1; s <= options.depth; ++s) {
    const std::uint64_t span_start =
        trace != nullptr ? trace->now_us() : 0;
    const auto level_start = std::chrono::steady_clock::now();
    if (!engine.advance()) {
      analysis.truncated = true;
      if (metrics != nullptr) metrics->add_budget_abort();
      break;
    }
    if (metrics != nullptr) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - level_start;
      metrics->add_level(options.depth, s, engine.frontier().size(),
                         elapsed.count());
      if (trace != nullptr) {
        trace->complete(
            "level", "level", span_start, trace->now_us() - span_start,
            {telemetry::TraceArg::num("depth",
                                      static_cast<std::uint64_t>(options.depth)),
             telemetry::TraceArg::num("level", static_cast<std::uint64_t>(s)),
             telemetry::TraceArg::num("states", engine.frontier().size())});
      }
    }
  }
  analysis.depth = engine.level();
  if (options.keep_levels) {
    analysis.levels = engine.take_levels();
    analysis.first_parent = engine.take_first_parent();
    analysis.children = engine.take_children();
  } else {
    analysis.levels.push_back(engine.take_frontier());
  }

  compute_components(options, analysis);
  return analysis;
}

DepthAnalysis analyze_depth_oracle(const MessageAdversary& adversary,
                                   const AnalysisOptions& options,
                                   std::shared_ptr<ViewInterner> interner) {
  const int n = adversary.num_processes();
  DepthAnalysis analysis;
  analysis.num_values = options.num_values;
  analysis.num_processes = n;
  analysis.interner =
      interner ? std::move(interner) : std::make_shared<ViewInterner>();

  // The serial reference loop, mirroring the engine's bookkeeping exactly:
  // level 0 seeds the history with {-1, -1} parents (FrontierEngine's
  // constructor does the same), an overflowing level sets truncated and
  // keeps the last complete frontier.
  const int num_roots =
      static_cast<int>(all_input_vectors(n, options.num_values).size());
  std::vector<PrefixState> frontier = initial_frontier(
      adversary, options, *analysis.interner, 0, num_roots);
  if (options.keep_levels) {
    analysis.levels.push_back(frontier);
    analysis.first_parent.push_back(
        std::vector<std::pair<int, int>>(frontier.size(), {-1, -1}));
  }
  int level = 0;
  for (int s = 1; s <= options.depth; ++s) {
    FrontierLevel next =
        expand_frontier(adversary, *analysis.interner, frontier,
                        options.max_states, options.keep_levels);
    if (next.overflow) {
      analysis.truncated = true;
      break;
    }
    frontier = std::move(next.states);
    ++level;
    if (options.keep_levels) {
      analysis.levels.push_back(frontier);
      analysis.first_parent.push_back(std::move(next.first_parent));
      analysis.children.push_back(std::move(next.children));
    }
  }
  analysis.depth = level;
  if (!options.keep_levels) {
    analysis.levels.push_back(std::move(frontier));
  }

  compute_components(options, analysis);
  return analysis;
}

std::optional<RunPrefix> reconstruct_prefix(const MessageAdversary& adversary,
                                            const DepthAnalysis& analysis,
                                            int leaf_index) {
  assert(!analysis.first_parent.empty() &&
         "reconstruct_prefix requires keep_levels");
  const std::size_t last = analysis.levels.size() - 1;
  if (leaf_index < 0 ||
      static_cast<std::size_t>(leaf_index) >= analysis.levels[last].size()) {
    return std::nullopt;
  }
  std::vector<int> letters;
  int index = leaf_index;
  for (std::size_t s = last; s >= 1; --s) {
    const auto [parent, letter] =
        analysis.first_parent[s][static_cast<std::size_t>(index)];
    letters.push_back(letter);
    index = parent;
  }
  std::reverse(letters.begin(), letters.end());
  RunPrefix prefix;
  prefix.inputs = analysis.levels[last][static_cast<std::size_t>(leaf_index)]
                      .inputs;
  prefix.graphs.reserve(letters.size());
  for (const int letter : letters) {
    prefix.graphs.push_back(adversary.graph(letter));
  }
  return prefix;
}

}  // namespace topocon
