#include "core/broadcast.hpp"

#include "ptg/reach.hpp"

namespace topocon {

NodeMask broadcast_witnesses(const std::vector<RunPrefix>& prefixes) {
  if (prefixes.empty()) return 0;
  NodeMask witnesses = full_mask(prefixes.front().num_processes());
  for (const RunPrefix& prefix : prefixes) {
    witnesses &= broadcast_complete(reach_of_prefix(prefix));
  }
  return witnesses;
}

NodeMask broadcasters(const std::vector<RunPrefix>& prefixes) {
  NodeMask candidates = broadcast_witnesses(prefixes);
  if (candidates == 0) return 0;
  const int n = prefixes.front().num_processes();
  for (int p = 0; p < n; ++p) {
    if (!mask_contains(candidates, p)) continue;
    const Value x0 = prefixes.front().inputs[static_cast<std::size_t>(p)];
    for (const RunPrefix& prefix : prefixes) {
      if (prefix.inputs[static_cast<std::size_t>(p)] != x0) {
        candidates &= ~(NodeMask{1} << p);
        break;
      }
    }
  }
  return candidates;
}

bool is_broadcastable(const std::vector<RunPrefix>& prefixes) {
  return broadcasters(prefixes) != 0;
}

}  // namespace topocon
