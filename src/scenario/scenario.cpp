#include "scenario/scenario.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "adversary/family.hpp"

namespace topocon::scenario {

namespace {

using sweep::SweepSpec;

/// Applies --param-min/--param-max on top of a default interval, clamped
/// nowhere: leaving the family's valid range is reported by family_grid.
std::pair<int, int> override_range(const GridOverrides& overrides,
                                   int default_min, int default_max) {
  return {overrides.param_min.value_or(default_min),
          overrides.param_max.value_or(default_max)};
}

SweepSpec build_omission(const GridOverrides& overrides) {
  const int n = overrides.n.value_or(3);
  const FamilyParamRange range = family_param_range("omission", n);
  const auto [f_min, f_max] = override_range(overrides, range.min, range.max);
  SweepSpec spec;
  SolvabilityOptions options;
  options.max_depth = n == 2 ? 6 : 3;
  options.max_states = 6'000'000;
  for (const FamilyPoint& point : family_grid("omission", n, f_min, f_max)) {
    spec.jobs.push_back(sweep::solvability_job(point, options));
  }
  return spec;
}

SweepSpec build_lossy_link_atlas(const GridOverrides& overrides) {
  const auto [mask_min, mask_max] = override_range(overrides, 1, 7);
  SweepSpec spec;
  SolvabilityOptions options;
  options.max_depth = 6;
  for (const FamilyPoint& point :
       family_grid("lossy_link", 2, mask_min, mask_max)) {
    spec.jobs.push_back(sweep::solvability_job(point, options));
  }
  return spec;
}

SweepSpec build_heard_of_grid(const GridOverrides& overrides) {
  SweepSpec spec;
  const std::vector<int> ns =
      overrides.n.has_value() ? std::vector<int>{*overrides.n}
                              : std::vector<int>{2, 3};
  // The legs have different k ranges (1..n), so the override is checked
  // against their union and then intersected per leg; a leg whose
  // interval empties out is skipped, not an error (--param-min=3 means
  // "only the n=3 leg reaches k=3").
  int union_max = 0;
  for (const int n : ns) {
    union_max = std::max(union_max, family_param_range("heard_of", n).max);
  }
  const auto [k_min, k_max] = override_range(overrides, 1, union_max);
  if (k_min > k_max || k_max < 1 || k_min > union_max) {
    throw std::invalid_argument(
        "heard-of-grid: no k in [" + std::to_string(k_min) + ", " +
        std::to_string(k_max) + "] is valid for any selected n");
  }
  for (const int n : ns) {
    const FamilyParamRange range = family_param_range("heard_of", n);
    const int lo = std::max(k_min, range.min);
    const int hi = std::min(k_max, range.max);
    if (lo > hi) continue;
    SolvabilityOptions options;
    options.max_depth = n == 2 ? 5 : 2;
    options.max_states = 6'000'000;
    for (const FamilyPoint& point : family_grid("heard_of", n, lo, hi)) {
      spec.jobs.push_back(sweep::solvability_job(point, options));
    }
  }
  return spec;
}

SweepSpec build_vssc_windows(const GridOverrides& overrides) {
  const int n = overrides.n.value_or(2);
  const auto [k_min, k_max] = override_range(overrides, 1, 3);
  SweepSpec spec;
  SolvabilityOptions options;
  options.max_depth = 3;
  options.max_states = 4'000'000;
  options.build_table = false;
  for (const FamilyPoint& point : family_grid("vssc", n, k_min, k_max)) {
    spec.jobs.push_back(sweep::solvability_job(point, options));
  }
  return spec;
}

SweepSpec build_convergence_curves(const GridOverrides&) {
  SweepSpec spec;
  AnalysisOptions lossy;
  lossy.depth = 6;
  for (const int mask : {0b011, 0b101, 0b111}) {
    spec.jobs.push_back(sweep::series_job({"lossy_link", 2, mask}, lossy));
  }
  AnalysisOptions omission;
  omission.depth = 3;
  omission.max_states = 6'000'000;
  spec.jobs.push_back(sweep::series_job({"omission", 3, 1}, omission));
  AnalysisOptions finite_loss;
  finite_loss.depth = 4;
  spec.jobs.push_back(sweep::series_job({"finite_loss", 2, 0}, finite_loss));
  return spec;
}

std::vector<Scenario> make_catalog() {
  std::vector<Scenario> scenarios;
  scenarios.push_back(Scenario{
      "omission-n3",
      "Santoro-Widmayer omission frontier: f = 0..n(n-1) (default n=3)",
      "Solvability sweep over the per-round omission budget f at fixed n\n"
      "(default 3), reproducing the E5 frontier: consensus is solvable\n"
      "iff f <= n-2 [Santoro-Widmayer]. --n picks the process count,\n"
      "--param-min/--param-max restrict the f interval (valid: 0..n(n-1)).",
      /*supports_n=*/true, /*supports_param_range=*/true, build_omission});
  scenarios.push_back(Scenario{
      "lossy-link-atlas",
      "All 7 lossy-link subsets at n=2: the solvability atlas",
      "Solvability verdict for every nonempty subset of {<-, ->, <->} at\n"
      "n=2 (Section 6.1): solvable exactly when the subset misses some\n"
      "direction. --param-min/--param-max restrict the subset-mask\n"
      "interval (valid: 1..7).",
      /*supports_n=*/false, /*supports_param_range=*/true,
      build_lossy_link_atlas});
  scenarios.push_back(Scenario{
      "heard-of-grid",
      "Heard-Of minimal in-degree grid: k = 1..n for n in {2, 3}",
      "Solvability over the minimal per-receiver in-degree k: solvable\n"
      "iff k = n (everyone hears everyone). --n restricts to one process\n"
      "count, --param-min/--param-max restrict the k interval (valid:\n"
      "1..n).",
      /*supports_n=*/true, /*supports_param_range=*/true,
      build_heard_of_grid});
  scenarios.push_back(Scenario{
      "vssc-windows",
      "VSSC stability windows: non-compact closure stays merged",
      "Closure-only solvability checks of the vertex-stable source\n"
      "component adversary for stability windows 1..3 (default n=2): the\n"
      "adversary is non-compact, so the checker sees its topological\n"
      "closure and reports NOT-SEPARATED at every depth even though the\n"
      "adversary is solvable (Section 6.3, bench E8). --n picks the\n"
      "process count, --param-min/--param-max the window interval.",
      /*supports_n=*/true, /*supports_param_range=*/true,
      build_vssc_windows});
  scenarios.push_back(Scenario{
      "convergence-curves",
      "E4/E6/E7 depth-series curves across three families",
      "Depth-by-depth epsilon-approximation series past separation: the\n"
      "three canonical lossy-link subsets (depth 6), omission n=3 f=1\n"
      "(depth 3), and the non-compact finite-loss closure (depth 4,\n"
      "permanently merged). Fixed grid; no overrides.",
      /*supports_n=*/false, /*supports_param_range=*/false,
      build_convergence_curves});
  return scenarios;
}

}  // namespace

const std::vector<Scenario>& catalog() {
  static const std::vector<Scenario> scenarios = make_catalog();
  return scenarios;
}

const Scenario* find_scenario(std::string_view name) {
  for (const Scenario& scenario : catalog()) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

sweep::SweepSpec expand_scenario(const Scenario& scenario,
                                 const GridOverrides& overrides) {
  if (overrides.n.has_value() && !scenario.supports_n) {
    throw std::invalid_argument(scenario.name +
                                " does not support the --n override");
  }
  if ((overrides.param_min.has_value() || overrides.param_max.has_value()) &&
      !scenario.supports_param_range) {
    throw std::invalid_argument(
        scenario.name + " does not support --param-min/--param-max");
  }
  sweep::SweepSpec spec = scenario.build(overrides);
  spec.name = scenario.name;
  spec.record = false;
  return spec;
}

}  // namespace topocon::scenario
