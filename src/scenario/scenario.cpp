#include "scenario/scenario.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "adversary/family.hpp"
#include "scenario/fuzz.hpp"

namespace topocon::scenario {

namespace {

using api::Query;

/// Applies --param-min/--param-max on top of a default interval, clamped
/// nowhere: leaving the family's valid range is reported by family_grid.
std::pair<int, int> override_range(const GridOverrides& overrides,
                                   int default_min, int default_max) {
  return {overrides.param_min.value_or(default_min),
          overrides.param_max.value_or(default_max)};
}

std::vector<Query> build_omission(const GridOverrides& overrides) {
  const int n = overrides.n.value_or(3);
  const FamilyParamRange range = family_param_range("omission", n);
  const auto [f_min, f_max] = override_range(overrides, range.min, range.max);
  std::vector<Query> queries;
  SolvabilityOptions options;
  options.max_depth = n == 2 ? 6 : 3;
  options.max_states = 6'000'000;
  for (const FamilyPoint& point : family_grid("omission", n, f_min, f_max)) {
    queries.push_back(api::solvability(point, options));
  }
  return queries;
}

std::vector<Query> build_omission_n4(const GridOverrides& overrides) {
  // The n = 4 leg of the omission frontier. The depth-3 prefix space has
  // only 16 input-vector roots but millions of states in a heavy level,
  // so this grid is exactly the shape root-only sharding cannot balance
  // -- it exists because the chunked frontier engine spreads each root's
  // levels over every thread (parallel_solver.hpp).
  const int n = overrides.n.value_or(4);
  const FamilyParamRange range = family_param_range("omission", n);
  const auto [f_min, f_max] =
      override_range(overrides, 0, std::min(range.max, 3));
  std::vector<Query> queries;
  SolvabilityOptions options;
  options.max_depth = 3;
  // Enough for the depth-3 certificate of f = 2 (7,888,624 leaf classes);
  // budget-capped points past the frontier report RESOURCE-LIMIT after
  // O(max_states) work (the two-pass budget in parallel_solver.cpp).
  options.max_states = 8'000'000;
  options.build_table = false;
  for (const FamilyPoint& point : family_grid("omission", n, f_min, f_max)) {
    queries.push_back(api::solvability(point, options));
  }
  return queries;
}

std::vector<Query> build_omission_n4_deep(const GridOverrides& overrides) {
  // The out-of-core leg: same grid as omission-n4 but with a state
  // budget sized for the f = 3 depth-3 level (hundreds of millions of
  // states, tens of GiB of frontier) and a 1 GiB in-RAM spill budget, so
  // expanded-but-unmerged chunks stream through temp files instead of
  // resident memory (core/spill.hpp). The artifact is byte-identical to
  // an unconstrained in-RAM run -- spilling is an execution detail under
  // the same determinism contract as chunking. --spill-budget-mb/
  // --spill-dir override the budget per invocation.
  const int n = overrides.n.value_or(4);
  const FamilyParamRange range = family_param_range("omission", n);
  const auto [f_min, f_max] =
      override_range(overrides, 0, std::min(range.max, 3));
  std::vector<Query> queries;
  SolvabilityOptions options;
  options.max_depth = 3;
  options.max_states = 384'000'000;
  options.build_table = false;
  options.spill.budget_bytes = std::uint64_t{1} << 30;
  for (const FamilyPoint& point : family_grid("omission", n, f_min, f_max)) {
    queries.push_back(api::solvability(point, options));
  }
  return queries;
}

std::vector<Query> build_omission_n5(const GridOverrides& overrides) {
  // First n = 5 entry: 20 omission edges, 32 input-vector roots, depth
  // bound 2. f = 2 certifies at depth 2 (1.4M leaf classes); f = 3 --
  // solvable in principle (f <= n-2) -- documents the honest
  // RESOURCE-LIMIT verdict at this budget, the current edge of the
  // frontier. A modest spill budget keeps the peak resident set flat
  // when the f = 2/3 levels get heavy.
  const int n = overrides.n.value_or(5);
  const FamilyParamRange range = family_param_range("omission", n);
  const auto [f_min, f_max] =
      override_range(overrides, 0, std::min(range.max, 3));
  std::vector<Query> queries;
  SolvabilityOptions options;
  options.max_depth = 2;
  options.max_states = 8'000'000;
  options.build_table = false;
  options.spill.budget_bytes = std::uint64_t{512} << 20;
  for (const FamilyPoint& point : family_grid("omission", n, f_min, f_max)) {
    queries.push_back(api::solvability(point, options));
  }
  return queries;
}

std::vector<Query> build_lossy_link_atlas(const GridOverrides& overrides) {
  const auto [mask_min, mask_max] = override_range(overrides, 1, 7);
  std::vector<Query> queries;
  SolvabilityOptions options;
  options.max_depth = 6;
  for (const FamilyPoint& point :
       family_grid("lossy_link", 2, mask_min, mask_max)) {
    queries.push_back(api::solvability(point, options));
  }
  return queries;
}

std::vector<Query> build_heard_of_grid(const GridOverrides& overrides) {
  std::vector<Query> queries;
  const std::vector<int> ns =
      overrides.n.has_value() ? std::vector<int>{*overrides.n}
                              : std::vector<int>{2, 3};
  // The legs have different k ranges (1..n), so the override is checked
  // against their union and then intersected per leg; a leg whose
  // interval empties out is skipped, not an error (--param-min=3 means
  // "only the n=3 leg reaches k=3").
  int union_max = 0;
  for (const int n : ns) {
    union_max = std::max(union_max, family_param_range("heard_of", n).max);
  }
  const auto [k_min, k_max] = override_range(overrides, 1, union_max);
  if (k_min > k_max || k_max < 1 || k_min > union_max) {
    throw std::invalid_argument(
        "heard-of-grid: no k in [" + std::to_string(k_min) + ", " +
        std::to_string(k_max) + "] is valid for any selected n");
  }
  for (const int n : ns) {
    const FamilyParamRange range = family_param_range("heard_of", n);
    const int lo = std::max(k_min, range.min);
    const int hi = std::min(k_max, range.max);
    if (lo > hi) continue;
    SolvabilityOptions options;
    options.max_depth = n == 2 ? 5 : 2;
    options.max_states = 6'000'000;
    for (const FamilyPoint& point : family_grid("heard_of", n, lo, hi)) {
      queries.push_back(api::solvability(point, options));
    }
  }
  return queries;
}

std::vector<Query> build_vssc_windows(const GridOverrides& overrides) {
  const int n = overrides.n.value_or(2);
  const auto [k_min, k_max] = override_range(overrides, 1, 3);
  std::vector<Query> queries;
  SolvabilityOptions options;
  options.max_depth = 3;
  options.max_states = 4'000'000;
  options.build_table = false;
  for (const FamilyPoint& point : family_grid("vssc", n, k_min, k_max)) {
    queries.push_back(api::solvability(point, options));
  }
  return queries;
}

std::vector<Query> build_convergence_curves(const GridOverrides&) {
  std::vector<Query> queries;
  AnalysisOptions lossy;
  lossy.depth = 6;
  for (const int mask : {0b011, 0b101, 0b111}) {
    queries.push_back(api::depth_series({"lossy_link", 2, mask}, lossy));
  }
  AnalysisOptions omission;
  omission.depth = 3;
  omission.max_states = 6'000'000;
  queries.push_back(api::depth_series({"omission", 3, 1}, omission));
  AnalysisOptions finite_loss;
  finite_loss.depth = 4;
  queries.push_back(api::depth_series({"finite_loss", 2, 0}, finite_loss));
  return queries;
}

std::vector<Query> build_decision_tables(const GridOverrides& overrides) {
  // One extraction per solvable n=2 lossy-link subset (mask interval
  // overridable), plus the w=2 windowed certificate. Mask 7 is the
  // impossible full set: kept in the default grid as the "no table"
  // row -- extraction reports the NOT-SEPARATED verdict and no shape.
  const auto [mask_min, mask_max] = override_range(overrides, 1, 7);
  std::vector<Query> queries;
  SolvabilityOptions options;
  options.max_depth = 6;
  for (const FamilyPoint& point :
       family_grid("lossy_link", 2, mask_min, mask_max)) {
    queries.push_back(api::decision_table(point, options));
  }
  SolvabilityOptions windowed;
  windowed.max_depth = 4;
  queries.push_back(
      api::decision_table({"windowed_lossy_link", 2, 2}, windowed));
  return queries;
}

std::vector<Query> build_fuzz_composed(const GridOverrides& overrides) {
  FuzzSpec spec;
  spec.n = overrides.n.value_or(2);
  // --seed/--count are the first-class knobs (--seed carries the full
  // uint64 seed space); --param-min/--param-max remain as legacy aliases
  // from when the generic grid knobs were repurposed, but mixing an
  // override with its own alias is ambiguous and rejected.
  if (overrides.seed.has_value() && overrides.param_min.has_value()) {
    throw std::invalid_argument(
        "fuzz-composed: --seed conflicts with --param-min (the seed "
        "alias); pass one of them");
  }
  if (overrides.count.has_value() && overrides.param_max.has_value()) {
    throw std::invalid_argument(
        "fuzz-composed: --count conflicts with --param-max (the count "
        "alias); pass one of them");
  }
  if (overrides.seed.has_value()) {
    spec.seed = *overrides.seed;
  } else if (overrides.param_min.has_value()) {
    if (*overrides.param_min < 0) {
      throw std::invalid_argument(
          "fuzz-composed: the seed (--param-min) must be >= 0");
    }
    spec.seed = static_cast<std::uint64_t>(*overrides.param_min);
  }
  if (overrides.count.has_value()) {
    spec.count = *overrides.count;
  } else if (overrides.param_max.has_value()) {
    spec.count = *overrides.param_max;
  }
  return fuzz_queries(spec);
}

std::vector<Query> build_atlas(const GridOverrides& overrides) {
  // One family x n x param grid into a single solvability map; the
  // per-leg depth bounds are the smallest that still certify each leg's
  // whole solvable frontier (e.g. omission n=3 certifies f <= 1 by
  // depth 2, see tests/golden/omission-n3.json), so the map is exact yet
  // cheap enough to diff byte-for-byte in every CI configuration.
  // Overrides restrict the grid: --n keeps only that process count's
  // legs, --param-min/--param-max intersect each leg's parameter
  // interval (a leg whose interval empties out is skipped, like
  // heard-of-grid's per-leg intersection).
  if (overrides.n.has_value() && *overrides.n != 2 && *overrides.n != 3) {
    throw std::invalid_argument("atlas: --n must be 2 or 3, got " +
                                std::to_string(*overrides.n));
  }
  std::vector<Query> queries;
  const auto add = [&queries, &overrides](const char* family, int n,
                                          int param_min, int param_max,
                                          int max_depth,
                                          std::size_t max_states) {
    if (overrides.n.has_value() && n != *overrides.n) return;
    const int lo = std::max(param_min, overrides.param_min.value_or(param_min));
    const int hi = std::min(param_max, overrides.param_max.value_or(param_max));
    if (lo > hi) return;
    SolvabilityOptions options;
    options.max_depth = max_depth;
    options.max_states = max_states;
    options.build_table = false;
    for (const FamilyPoint& point : family_grid(family, n, lo, hi)) {
      queries.push_back(api::solvability(point, options));
    }
  };
  add("lossy_link", 2, 1, 7, 6, 2'000'000);
  add("windowed_lossy_link", 2, 1, 3, 4, 2'000'000);
  add("omission", 2, 0, 2, 6, 2'000'000);
  add("omission", 3, 0, 6, 2, 1'000'000);
  add("heard_of", 2, 1, 2, 5, 2'000'000);
  add("heard_of", 3, 1, 3, 2, 1'000'000);
  add("vssc", 2, 1, 2, 2, 2'000'000);
  add("finite_loss", 2, 0, 0, 3, 2'000'000);
  if (queries.empty()) {
    throw std::invalid_argument(
        "atlas: no grid leg intersects --param-min/--param-max");
  }
  return queries;
}

std::vector<Scenario> make_catalog() {
  std::vector<Scenario> scenarios;
  scenarios.push_back(Scenario{
      "omission-n3",
      "Santoro-Widmayer omission frontier: f = 0..n(n-1) (default n=3)",
      "Solvability sweep over the per-round omission budget f at fixed n\n"
      "(default 3), reproducing the E5 frontier: consensus is solvable\n"
      "iff f <= n-2 [Santoro-Widmayer]. --n picks the process count,\n"
      "--param-min/--param-max restrict the f interval (valid: 0..n(n-1)).",
      /*supports_n=*/true, /*supports_param_range=*/true,
      /*supports_seed=*/false, build_omission});
  scenarios.push_back(Scenario{
      "omission-n4",
      "Omission frontier at n=4: the chunk-sharded large-n grid "
      "(default f=0..3)",
      "Solvability sweep over the per-round omission budget f at n = 4\n"
      "(depth bound 3, 8M-state budget): the first process count whose\n"
      "per-root BFS levels are heavy enough (f=2 certifies at depth 3\n"
      "with 7.9M leaf classes over only 16 roots) that root-only\n"
      "sharding cannot balance them -- the frontier engine's sub-root\n"
      "chunk sharding spreads each level over all threads instead.\n"
      "Consensus is solvable iff f <= n-2 [Santoro-Widmayer]: the grid\n"
      "certifies the whole frontier, and the first point past it (f=3)\n"
      "documents the honest RESOURCE-LIMIT verdict at the state budget.\n"
      "--n picks the process count, --param-min/--param-max restrict the\n"
      "f interval (valid: 0..n(n-1)).",
      /*supports_n=*/true, /*supports_param_range=*/true,
      /*supports_seed=*/false, build_omission_n4});
  scenarios.push_back(Scenario{
      "omission-n4-deep",
      "Omission n=4 past the RAM wall: the out-of-core f=3 certificate "
      "(default f=0..3)",
      "The omission-n4 grid with the state budget raised to 384M and the\n"
      "out-of-core frontier tier on (1 GiB in-RAM spill budget): the\n"
      "f = 3 depth-3 level holds hundreds of millions of states, beyond\n"
      "what an unconstrained in-RAM run can hold on most machines, so\n"
      "expanded-but-unmerged chunks are streamed through temp files\n"
      "(core/spill.hpp) and replayed in deterministic (root, chunk) order\n"
      "at merge/commit. The artifact is byte-identical to an in-RAM run\n"
      "at every thread count, chunk size, and spill budget. --n picks the\n"
      "process count, --param-min/--param-max restrict the f interval;\n"
      "--spill-budget-mb/--spill-dir override the spill knobs per run.",
      /*supports_n=*/true, /*supports_param_range=*/true,
      /*supports_seed=*/false, build_omission_n4_deep});
  scenarios.push_back(Scenario{
      "omission-n5",
      "Omission frontier at n=5: 32 roots, depth 2 (default f=0..3)",
      "The first n = 5 grid: solvability over the per-round omission\n"
      "budget f at depth bound 2 with an 8M-state budget and a 512 MiB\n"
      "spill budget. f = 2 certifies at depth 2 (1.4M leaf classes);\n"
      "f = 3 is solvable in principle (f <= n-2 [Santoro-Widmayer]) but\n"
      "its depth-2 level outgrows the budget, documenting the honest\n"
      "RESOURCE-LIMIT verdict at the current frontier edge. --n picks\n"
      "the process count, --param-min/--param-max restrict the f\n"
      "interval (valid: 0..n(n-1)).",
      /*supports_n=*/true, /*supports_param_range=*/true,
      /*supports_seed=*/false, build_omission_n5});
  scenarios.push_back(Scenario{
      "lossy-link-atlas",
      "All 7 lossy-link subsets at n=2: the solvability atlas",
      "Solvability verdict for every nonempty subset of {<-, ->, <->} at\n"
      "n=2 (Section 6.1): solvable exactly when the subset misses some\n"
      "direction. --param-min/--param-max restrict the subset-mask\n"
      "interval (valid: 1..7).",
      /*supports_n=*/false, /*supports_param_range=*/true,
      /*supports_seed=*/false, build_lossy_link_atlas});
  scenarios.push_back(Scenario{
      "heard-of-grid",
      "Heard-Of minimal in-degree grid: k = 1..n for n in {2, 3}",
      "Solvability over the minimal per-receiver in-degree k: solvable\n"
      "iff k = n (everyone hears everyone). --n restricts to one process\n"
      "count, --param-min/--param-max restrict the k interval (valid:\n"
      "1..n).",
      /*supports_n=*/true, /*supports_param_range=*/true,
      /*supports_seed=*/false, build_heard_of_grid});
  scenarios.push_back(Scenario{
      "vssc-windows",
      "VSSC stability windows: non-compact closure stays merged",
      "Closure-only solvability checks of the vertex-stable source\n"
      "component adversary for stability windows 1..3 (default n=2): the\n"
      "adversary is non-compact, so the checker sees its topological\n"
      "closure and reports NOT-SEPARATED at every depth even though the\n"
      "adversary is solvable (Section 6.3, bench E8). --n picks the\n"
      "process count, --param-min/--param-max the window interval.",
      /*supports_n=*/true, /*supports_param_range=*/true,
      /*supports_seed=*/false, build_vssc_windows});
  scenarios.push_back(Scenario{
      "convergence-curves",
      "E4/E6/E7 depth-series curves across three families",
      "Depth-by-depth epsilon-approximation series past separation: the\n"
      "three canonical lossy-link subsets (depth 6), omission n=3 f=1\n"
      "(depth 3), and the non-compact finite-loss closure (depth 4,\n"
      "permanently merged). Fixed grid; no overrides.",
      /*supports_n=*/false, /*supports_param_range=*/false,
      /*supports_seed=*/false, build_convergence_curves});
  scenarios.push_back(Scenario{
      "fuzz-composed",
      "Seeded random composed adversaries (product/union/window) "
      "(default: seed 6, 8 points)",
      "Runs the seeded composed-adversary fuzzer (scenario/fuzz.hpp)\n"
      "through the full Session/checkpoint/resume path: each job is one\n"
      "randomly composed adversary -- products, unions, and repetition\n"
      "windows over the compact grid families (adversary/compose.hpp) --\n"
      "whose label is its canonical spec JSON, replayable on its own.\n"
      "The expansion is a pure function of (seed, n, count), so runs and\n"
      "resumes are byte-identical at every thread count. --n is the\n"
      "process count, --seed the fuzzer seed (full uint64 range), and\n"
      "--count the point count; --param-min/--param-max survive as legacy\n"
      "aliases of --seed/--count (mixing a flag with its own alias is\n"
      "rejected). The differential twin of this scenario is `topocon\n"
      "fuzz`, which re-checks every point against the single-scan\n"
      "reference oracle.",
      /*supports_n=*/true, /*supports_param_range=*/true,
      /*supports_seed=*/true, build_fuzz_composed});
  scenarios.push_back(Scenario{
      "atlas",
      "The cross-family solvability atlas: every family, one CSV map",
      "A fixed family x n x parameter sweep across all six grid families\n"
      "into one solvability/decision-depth map, rendered via\n"
      "--format=csv into a single plottable artifact (one row per\n"
      "deepening step per point). Depth bounds are per leg and chosen to\n"
      "certify each leg's whole solvable frontier: lossy_link (n=2,\n"
      "depth 6), windowed_lossy_link (w=1..3, depth 4), omission (n=2\n"
      "depth 6; n=3 depth 2), heard_of (n=2 depth 5; n=3 depth 2), plus\n"
      "the non-compact vssc and finite_loss closures, which stay merged\n"
      "at every depth (Section 6.3). --n keeps only one process count's\n"
      "legs (valid: 2 or 3); --param-min/--param-max intersect every\n"
      "leg's parameter interval, skipping legs that empty out. The\n"
      "default CSV is committed as tests/golden/atlas.csv and diffed\n"
      "byte-for-byte at several thread counts and chunk sizes by ctest.",
      /*supports_n=*/true, /*supports_param_range=*/true,
      /*supports_seed=*/false, build_atlas});
  scenarios.push_back(Scenario{
      "decision-tables",
      "Universal-algorithm extraction (Theorem 5.5) for the n=2 atlas",
      "Decision-table extraction queries: for every lossy-link subset at\n"
      "n=2 plus the w=2 windowed lossy link, run the solvability pipeline\n"
      "and record the certificate's shape -- total entries, worst-case\n"
      "decision round, and entries per round (the integer early-decision\n"
      "profile of Theorem 5.5). The impossible full subset documents the\n"
      "no-certificate case. --param-min/--param-max restrict the\n"
      "lossy-link mask interval (valid: 1..7).",
      /*supports_n=*/false, /*supports_param_range=*/true,
      /*supports_seed=*/false, build_decision_tables});
  return scenarios;
}

}  // namespace

const std::vector<Scenario>& catalog() {
  static const std::vector<Scenario> scenarios = make_catalog();
  return scenarios;
}

const Scenario* find_scenario(std::string_view name) {
  for (const Scenario& scenario : catalog()) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

api::Plan expand_scenario(const Scenario& scenario,
                          const GridOverrides& overrides) {
  if (overrides.n.has_value() && !scenario.supports_n) {
    throw std::invalid_argument(scenario.name +
                                " does not support the --n override");
  }
  if ((overrides.param_min.has_value() || overrides.param_max.has_value()) &&
      !scenario.supports_param_range) {
    throw std::invalid_argument(
        scenario.name + " does not support --param-min/--param-max");
  }
  if ((overrides.seed.has_value() || overrides.count.has_value()) &&
      !scenario.supports_seed) {
    throw std::invalid_argument(scenario.name +
                                " does not support --seed/--count");
  }
  api::Plan plan;
  plan.name = scenario.name;
  plan.queries = scenario.build(overrides);
  return plan;
}

}  // namespace topocon::scenario
