#include "scenario/render.hpp"

#include <string_view>

#include "analysis/report.hpp"

namespace topocon::scenario {

namespace {

using sweep::JobKind;
using sweep::JobRecord;

const DepthStats* last_stats(const JobRecord& record) {
  const std::vector<DepthStats>& stats =
      record.kind == JobKind::kSolvability ? record.per_depth : record.series;
  return stats.empty() ? nullptr : &stats.back();
}

void render_series(std::ostream& out, const JobRecord& record) {
  out << "\nConvergence " << record.family << " " << record.label << " (n="
      << record.n << "):\n";
  Table table({"depth", "leaf classes", "components", "merged", "separated",
               "broadcastable"});
  for (std::size_t c = 0; c < 4; ++c) table.align_right(c);
  for (const DepthStats& stats : record.series) {
    table.add_row({std::to_string(stats.depth),
                   std::to_string(stats.num_leaf_classes),
                   std::to_string(stats.num_components),
                   std::to_string(stats.merged_components),
                   yes_no(stats.separated),
                   yes_no(stats.valent_broadcastable)});
  }
  table.print(out);
}

void render_table_profile(std::ostream& out, const JobRecord& record) {
  out << "\nDecision table " << record.family << " " << record.label
      << " (n=" << record.n << "): ";
  if (!record.table.has_value()) {
    out << "no certificate (" << record.verdict << ")\n";
    return;
  }
  out << record.table->entries << " entries, worst decision round "
      << record.table->worst_decision_round << "\n";
  Table table({"round", "new entries"});
  table.align_right(0);
  table.align_right(1);
  for (std::size_t round = 0; round < record.round_entries.size(); ++round) {
    table.add_row({std::to_string(round),
                   std::to_string(record.round_entries[round])});
  }
  table.print(out);
}

/// RFC 4180 field quoting: quote when the field contains a comma, quote,
/// or newline; inner quotes double.
std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void csv_row(std::ostream& out, const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out << ',';
    out << csv_escape(fields[i]);
  }
  out << '\n';
}

std::string csv_bool(bool flag) { return flag ? "1" : "0"; }

}  // namespace

void render_records(std::ostream& out, const std::string& sweep_name,
                    const std::vector<JobRecord>& records) {
  out << "Sweep " << sweep_name << " (" << records.size() << " job"
      << (records.size() == 1 ? "" : "s") << "):\n";
  Table table({"#", "family", "label", "n", "kind", "verdict", "cert depth",
               "leaf classes", "components", "table"});
  table.align_right(0);
  table.align_right(3);
  for (std::size_t c = 6; c <= 9; ++c) table.align_right(c);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const JobRecord& record = records[i];
    const DepthStats* stats = last_stats(record);
    const bool has_verdict = record.kind != JobKind::kDepthSeries;
    std::string verdict = has_verdict ? record.verdict : "-";
    if (has_verdict && record.closure_only) verdict += " (closure)";
    table.add_row(
        {std::to_string(i), record.family, record.label,
         std::to_string(record.n), to_string(record.kind), verdict,
         has_verdict && record.certified_depth >= 0
             ? std::to_string(record.certified_depth)
             : "-",
         stats != nullptr ? std::to_string(stats->num_leaf_classes) : "-",
         stats != nullptr ? std::to_string(stats->num_components) : "-",
         record.table.has_value()
             ? std::to_string(record.table->entries) + " entries"
             : "-"});
  }
  table.print(out);
  for (const JobRecord& record : records) {
    if (record.kind == JobKind::kDepthSeries) render_series(out, record);
    if (record.kind == JobKind::kDecisionTable) {
      render_table_profile(out, record);
    }
  }
}

void render_records_csv(std::ostream& out, const std::string& sweep_name,
                        const std::vector<JobRecord>& records) {
  csv_row(out,
          {"sweep", "job", "family", "label", "n", "kind", "depth",
           "leaf_classes", "components", "merged", "separated",
           "valent_broadcastable", "strong_assignable", "interner_views",
           "verdict", "certified_depth", "table_entries",
           "worst_decision_round"});
  for (std::size_t i = 0; i < records.size(); ++i) {
    const JobRecord& record = records[i];
    const std::string job = std::to_string(i);
    const std::string n = std::to_string(record.n);
    const std::string kind = to_string(record.kind);
    const bool has_verdict = record.kind != JobKind::kDepthSeries;
    const std::string verdict = has_verdict ? record.verdict : "";
    const std::string certified_depth =
        has_verdict && record.certified_depth >= 0
            ? std::to_string(record.certified_depth)
            : "";
    const std::string worst_round =
        record.table.has_value()
            ? std::to_string(record.table->worst_decision_round)
            : "";
    if (record.kind == JobKind::kDecisionTable) {
      // One row per decision round: the early-decision profile. A job
      // without a certificate still gets one row so its verdict is not
      // lost from the artifact.
      if (record.round_entries.empty()) {
        csv_row(out, {sweep_name, job, record.family, record.label, n, kind,
                      "", "", "", "", "", "", "", "", verdict,
                      certified_depth, "", worst_round});
        continue;
      }
      for (std::size_t round = 0; round < record.round_entries.size();
           ++round) {
        csv_row(out, {sweep_name, job, record.family, record.label, n, kind,
                      std::to_string(round), "", "", "", "", "", "", "",
                      verdict, certified_depth,
                      std::to_string(record.round_entries[round]),
                      worst_round});
      }
      continue;
    }
    const std::string table_entries =
        record.table.has_value() ? std::to_string(record.table->entries)
                                 : "";
    const std::vector<DepthStats>& stats =
        record.kind == JobKind::kSolvability ? record.per_depth
                                             : record.series;
    for (const DepthStats& depth_stats : stats) {
      csv_row(out,
              {sweep_name, job, record.family, record.label, n, kind,
               std::to_string(depth_stats.depth),
               std::to_string(depth_stats.num_leaf_classes),
               std::to_string(depth_stats.num_components),
               std::to_string(depth_stats.merged_components),
               csv_bool(depth_stats.separated),
               csv_bool(depth_stats.valent_broadcastable),
               csv_bool(depth_stats.strong_assignable),
               std::to_string(depth_stats.interner_views), verdict,
               certified_depth, table_entries, worst_round});
    }
  }
}

}  // namespace topocon::scenario
