#include "scenario/render.hpp"

#include "analysis/report.hpp"

namespace topocon::scenario {

namespace {

using sweep::JobKind;
using sweep::JobRecord;

const DepthStats* last_stats(const JobRecord& record) {
  const std::vector<DepthStats>& stats =
      record.kind == JobKind::kSolvability ? record.per_depth : record.series;
  return stats.empty() ? nullptr : &stats.back();
}

void render_series(std::ostream& out, const JobRecord& record) {
  out << "\nConvergence " << record.family << " " << record.label << " (n="
      << record.n << "):\n";
  Table table({"depth", "leaf classes", "components", "merged", "separated",
               "broadcastable"});
  for (std::size_t c = 0; c < 4; ++c) table.align_right(c);
  for (const DepthStats& stats : record.series) {
    table.add_row({std::to_string(stats.depth),
                   std::to_string(stats.num_leaf_classes),
                   std::to_string(stats.num_components),
                   std::to_string(stats.merged_components),
                   yes_no(stats.separated),
                   yes_no(stats.valent_broadcastable)});
  }
  table.print(out);
}

}  // namespace

void render_records(std::ostream& out, const std::string& sweep_name,
                    const std::vector<JobRecord>& records) {
  out << "Sweep " << sweep_name << " (" << records.size() << " job"
      << (records.size() == 1 ? "" : "s") << "):\n";
  Table table({"#", "family", "label", "n", "kind", "verdict", "cert depth",
               "leaf classes", "components", "table"});
  table.align_right(0);
  table.align_right(3);
  for (std::size_t c = 6; c <= 9; ++c) table.align_right(c);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const JobRecord& record = records[i];
    const DepthStats* stats = last_stats(record);
    const bool solvability = record.kind == JobKind::kSolvability;
    std::string verdict = solvability ? record.verdict : "-";
    if (solvability && record.closure_only) verdict += " (closure)";
    table.add_row(
        {std::to_string(i), record.family, record.label,
         std::to_string(record.n), to_string(record.kind), verdict,
         solvability && record.certified_depth >= 0
             ? std::to_string(record.certified_depth)
             : "-",
         stats != nullptr ? std::to_string(stats->num_leaf_classes) : "-",
         stats != nullptr ? std::to_string(stats->num_components) : "-",
         record.table.has_value()
             ? std::to_string(record.table->entries) + " entries"
             : "-"});
  }
  table.print(out);
  for (const JobRecord& record : records) {
    if (record.kind == JobKind::kDepthSeries) render_series(out, record);
  }
}

}  // namespace topocon::scenario
