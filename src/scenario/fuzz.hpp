// Seeded composed-adversary fuzzer: deterministically expands a
// (seed, n, depth, count) spec into `count` distinct composed
// FamilyPoints (adversary/compose.hpp) -- the generator behind the
// fuzz-composed scenario, the `topocon fuzz` differential harness, and
// tests/fuzz_differential_test.cpp.
//
// Reproducibility contract: the expansion is a pure function of the
// FuzzSpec. The generator draws from a std::mt19937_64 (whose output
// sequence the standard fully specifies) and maps draws to choices with
// plain modulus -- never through std::uniform_int_distribution, whose
// mapping is implementation-defined -- so the same spec yields the same
// point list on every platform, compiler, and thread count. Every
// emitted point is replayable from its label alone: the label is the
// canonical spec JSON, and `"composed:" + label` rebuilds the point.
//
// Candidates that compose to a degenerate adversary (empty product
// alphabet, blocking product, oversized automaton or alphabet) are
// deterministically discarded and redrawn, and duplicates are skipped,
// so the emitted list contains `count` distinct constructible points.
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/family.hpp"
#include "api/query.hpp"
#include "core/solvability.hpp"

namespace topocon::scenario {

/// The fuzzer's whole input state; see the header comment.
struct FuzzSpec {
  /// Generator seed (`topocon fuzz --seed`).
  std::uint64_t seed = 6;
  /// Process count of every composed point.
  int n = 2;
  /// Maximum combinator nesting depth of a generated spec tree.
  int depth = 2;
  /// Number of distinct points to emit (`topocon fuzz --count`).
  int count = 8;
};

/// Deterministically expands the spec into `count` distinct composed
/// points (family = "composed:" + canonical JSON, param = 0). Throws
/// std::invalid_argument for a non-positive count, an n < 2, or a
/// negative depth.
std::vector<FamilyPoint> fuzz_points(const FuzzSpec& spec);

/// The solvability options the fuzz harness runs every point under:
/// shallow deepening (depth 4 at n = 2, else 2), a small state budget,
/// and no decision-table extraction -- tuned so a full differential
/// comparison (oracle + serial + parallel at several chunk sizes and
/// thread counts) stays cheap per point.
SolvabilityOptions fuzz_solve_options(int n);

/// One solvability query per fuzzed point, under fuzz_solve_options --
/// the fuzz-composed scenario's plan.
std::vector<api::Query> fuzz_queries(const FuzzSpec& spec);

}  // namespace topocon::scenario
