// Human- and machine-readable rendering of sweep records -- the CLI's
// report surface. Works off JobRecords (the JSON-visible projection of
// outcomes), so the exact same rendering applies to freshly-run sweeps
// and to documents loaded back from disk by the JsonReader.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "runtime/sweep/engine.hpp"

namespace topocon::scenario {

/// Prints a summary table of all records, then one convergence table per
/// depth-series record and one decision-profile table per decision-table
/// record.
void render_records(std::ostream& out, const std::string& sweep_name,
                    const std::vector<sweep::JobRecord>& records);

/// CSV rendering (`topocon run --format=csv`), built for plotting the
/// E4/E6/E7 convergence curves: a fixed header line, then one row per
/// per-depth statistic of each record (solvability deepening steps and
/// series entries alike), and one row per decision round for
/// decision-table records (depth = round, table_entries = entries
/// becoming applicable that round). Booleans render as 1/0, absent
/// values as empty cells; fields containing separators are quoted per
/// RFC 4180. Deterministic byte-for-byte, like the JSON artifacts.
void render_records_csv(std::ostream& out, const std::string& sweep_name,
                        const std::vector<sweep::JobRecord>& records);

}  // namespace topocon::scenario
