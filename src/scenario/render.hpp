// Human-readable rendering of sweep records -- the CLI's report surface.
// Works off JobRecords (the JSON-visible projection of outcomes), so the
// exact same rendering applies to freshly-run sweeps and to documents
// loaded back from disk by the JsonReader.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "runtime/sweep/engine.hpp"

namespace topocon::scenario {

/// Prints a summary table of all records, then one convergence table per
/// depth-series record.
void render_records(std::ostream& out, const std::string& sweep_name,
                    const std::vector<sweep::JobRecord>& records);

}  // namespace topocon::scenario
