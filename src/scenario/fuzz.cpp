#include "scenario/fuzz.hpp"

#include <algorithm>
#include <random>
#include <set>
#include <stdexcept>
#include <string>

#include "adversary/compose.hpp"

namespace topocon::scenario {

namespace {

/// Uniform-enough choice in [0, bound) with a fully specified mapping
/// (std::uniform_int_distribution is implementation-defined and would
/// break cross-platform replay). The modulus bias is irrelevant here --
/// the fuzzer only needs determinism, not exact uniformity.
int pick(std::mt19937_64& rng, int bound) {
  return static_cast<int>(rng() % static_cast<std::uint64_t>(bound));
}

FamilyPoint gen_leaf(std::mt19937_64& rng, int n) {
  if (n == 2) {
    switch (pick(rng, 6)) {
      case 0: return {"lossy_link", 2, 1 + pick(rng, 7)};
      case 1: return {"omission", 2, pick(rng, 3)};
      case 2: return {"heard_of", 2, 1 + pick(rng, 2)};
      case 3: return {"heard_of_rounds", 2, 1 + pick(rng, 3)};
      case 4: return {"mobile_failure", 2, 1 + pick(rng, 3)};
      default: return {"windowed_lossy_link", 2, 1 + pick(rng, 3)};
    }
  }
  // Larger n: stick to the families whose alphabets stay moderate.
  // heard_of below k = n-1 explodes combinatorially (k = 1 at n = 3 is
  // already all 64 graphs), so only the top of its range is drawn;
  // heard_of_rounds has n^n letters, within the fuzz cap only at n = 3;
  // mobile_failure has 1 + n(2^(n-1) - 1), within the cap to n = 4.
  const int choices = n == 3 ? 4 : (n == 4 ? 3 : 2);
  switch (pick(rng, choices)) {
    case 0: {
      const int max_f = std::min(2, n * (n - 1));
      return {"omission", n, pick(rng, max_f + 1)};
    }
    case 1: return {"heard_of", n, n - 1 + pick(rng, 2)};
    case 2:
      if (n == 3) return {"heard_of_rounds", n, 1 + pick(rng, 2)};
      [[fallthrough]];  // n == 4: slot 2 is mobile_failure
    default: return {"mobile_failure", n, 1 + pick(rng, 2)};
  }
}

ComposeSpec gen_spec(std::mt19937_64& rng, int n, int depth) {
  if (depth <= 0 || pick(rng, 3) == 0) {
    ComposeSpec spec;
    spec.kind = ComposeSpec::Kind::kLeaf;
    spec.leaf = gen_leaf(rng, n);
    return spec;
  }
  ComposeSpec spec;
  switch (pick(rng, 3)) {
    case 0: spec.kind = ComposeSpec::Kind::kProduct; break;
    case 1: spec.kind = ComposeSpec::Kind::kUnion; break;
    default: spec.kind = ComposeSpec::Kind::kWindow; break;
  }
  if (spec.kind == ComposeSpec::Kind::kWindow) {
    spec.window = 2 + pick(rng, 2);
    spec.children.push_back(gen_spec(rng, n, depth - 1));
  } else {
    spec.children.push_back(gen_spec(rng, n, depth - 1));
    spec.children.push_back(gen_spec(rng, n, depth - 1));
  }
  return spec;
}

/// Top-level candidates are always combinators: a bare leaf is a grid
/// point, not a composed one.
ComposeSpec gen_composed(std::mt19937_64& rng, int n, int depth) {
  ComposeSpec spec = gen_spec(rng, n, std::max(depth, 1));
  while (spec.kind == ComposeSpec::Kind::kLeaf) {
    spec = gen_spec(rng, n, std::max(depth, 1));
  }
  return spec;
}

/// Compositions past these caps are discarded: the differential harness
/// runs every point through several full solvability pipelines, so the
/// per-point cost must stay bounded.
constexpr int kMaxFuzzAlphabet = 40;

}  // namespace

std::vector<FamilyPoint> fuzz_points(const FuzzSpec& spec) {
  if (spec.count < 1) {
    throw std::invalid_argument("fuzz: count must be >= 1 (got " +
                                std::to_string(spec.count) + ")");
  }
  if (spec.n < 2) {
    throw std::invalid_argument("fuzz: n must be >= 2 (got " +
                                std::to_string(spec.n) + ")");
  }
  if (spec.depth < 0) {
    throw std::invalid_argument("fuzz: depth must be >= 0 (got " +
                                std::to_string(spec.depth) + ")");
  }
  std::mt19937_64 rng(spec.seed);
  std::vector<FamilyPoint> points;
  std::set<std::string> seen;
  // Degenerate and duplicate candidates are discarded deterministically;
  // the attempt cap only guards against a pathological spec whose space
  // is smaller than `count`.
  const long long max_attempts =
      static_cast<long long>(spec.count) * 1000 + 1000;
  for (long long attempt = 0;
       static_cast<int>(points.size()) < spec.count; ++attempt) {
    if (attempt >= max_attempts) {
      throw std::invalid_argument(
          "fuzz: could not draw " + std::to_string(spec.count) +
          " distinct composed points (space too small for this spec?)");
    }
    const ComposeSpec candidate = gen_composed(rng, spec.n, spec.depth);
    FamilyPoint point;
    try {
      point = composed_family_point(candidate);
      const auto adversary = make_composed_adversary(candidate);
      if (adversary->alphabet_size() > kMaxFuzzAlphabet) continue;
    } catch (const std::invalid_argument&) {
      continue;  // empty/blocking product, oversized automaton, ...
    }
    if (!seen.insert(point.family).second) continue;
    points.push_back(std::move(point));
  }
  return points;
}

SolvabilityOptions fuzz_solve_options(int n) {
  SolvabilityOptions options;
  options.max_depth = n == 2 ? 4 : 2;
  options.max_states = 200'000;
  options.build_table = false;
  return options;
}

std::vector<api::Query> fuzz_queries(const FuzzSpec& spec) {
  std::vector<api::Query> queries;
  for (const FamilyPoint& point : fuzz_points(spec)) {
    queries.push_back(api::solvability(point, fuzz_solve_options(spec.n)));
  }
  return queries;
}

}  // namespace topocon::scenario
