// Named, self-describing scenarios: the catalog that turns the api
// facade into an operator-facing product surface (tools/topocon).
//
// A Scenario expands a FamilyPoint grid into an api::Plan -- a named
// list of api::Query values, pure data end to end. Everything an
// operator can run from the CLI lives here as data -- name, summary,
// description, which grid overrides it accepts -- so `topocon list`,
// `topocon describe`, and future workloads all read one registry instead
// of hand-rolled driver loops (ROADMAP: "scenarios as SweepSpecs", now
// "scenarios as query plans").
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/api.hpp"

namespace topocon::scenario {

/// Operator overrides of a scenario's default grid (`--n`,
/// `--param-min`, `--param-max`, and -- for seeded scenarios --
/// `--seed`/`--count`). Semantics are scenario-specific and documented
/// per scenario; scenarios reject overrides they do not support with
/// std::invalid_argument.
struct GridOverrides {
  std::optional<int> n;
  std::optional<int> param_min;
  std::optional<int> param_max;
  /// Seed of a seeded scenario, with the full uint64 range (the
  /// --param-min alias squeezes it through int and cannot express it).
  std::optional<std::uint64_t> seed;
  /// Point count of a seeded scenario.
  std::optional<int> count;
};

struct Scenario {
  /// Registry key, e.g. "omission-n3".
  std::string name;
  /// One line for `topocon list`.
  std::string summary;
  /// Longer text for `topocon describe` (what the grid spans, which
  /// paper artifact it reproduces, what the parameter means).
  std::string description;
  /// Which overrides expand_scenario accepts for this scenario.
  bool supports_n = false;
  bool supports_param_range = false;
  bool supports_seed = false;
  /// Expands the (possibly overridden) grid into the query list; the
  /// plan name is filled in by expand_scenario.
  std::function<std::vector<api::Query>(const GridOverrides&)> build;
};

/// All registered scenarios, in catalog order; names are unique.
const std::vector<Scenario>& catalog();

/// Lookup by name; nullptr when unknown.
const Scenario* find_scenario(std::string_view name);

/// Validates the overrides against the scenario's capabilities, then
/// builds the plan (named after the scenario). Throws
/// std::invalid_argument on unsupported or out-of-range overrides.
api::Plan expand_scenario(const Scenario& scenario,
                          const GridOverrides& overrides);

}  // namespace topocon::scenario
