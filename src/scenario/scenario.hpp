// Named, self-describing scenarios: the catalog that turns the sweep
// engine into an operator-facing product surface (tools/topocon).
//
// A Scenario expands a FamilyPoint grid into a SweepSpec. Everything an
// operator can run from the CLI lives here as data -- name, summary,
// description, which grid overrides it accepts -- so `topocon list`,
// `topocon describe`, and future workloads all read one registry instead
// of hand-rolled driver loops (ROADMAP: "scenarios as SweepSpecs").
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/sweep/engine.hpp"

namespace topocon::scenario {

/// Operator overrides of a scenario's default grid (`--n`,
/// `--param-min`, `--param-max`). Semantics are scenario-specific and
/// documented per scenario; scenarios reject overrides they do not
/// support with std::invalid_argument.
struct GridOverrides {
  std::optional<int> n;
  std::optional<int> param_min;
  std::optional<int> param_max;
};

struct Scenario {
  /// Registry key, e.g. "omission-n3".
  std::string name;
  /// One line for `topocon list`.
  std::string summary;
  /// Longer text for `topocon describe` (what the grid spans, which
  /// paper artifact it reproduces, what the parameter means).
  std::string description;
  /// Which overrides expand_scenario accepts for this scenario.
  bool supports_n = false;
  bool supports_param_range = false;
  /// Expands the (possibly overridden) grid into a runnable spec. The
  /// spec comes back with record = false -- the CLI serializes outcomes
  /// itself -- and its name set to the scenario name.
  std::function<sweep::SweepSpec(const GridOverrides&)> build;
};

/// All registered scenarios, in catalog order; names are unique.
const std::vector<Scenario>& catalog();

/// Lookup by name; nullptr when unknown.
const Scenario* find_scenario(std::string_view name);

/// Validates the overrides against the scenario's capabilities, then
/// builds the spec. Throws std::invalid_argument on unsupported or
/// out-of-range overrides.
sweep::SweepSpec expand_scenario(const Scenario& scenario,
                                 const GridOverrides& overrides);

}  // namespace topocon::scenario
