// Minimal fixed-width table formatting for benchmark and example output.
// Benches print the reproduced paper artifact (table / figure series) with
// these helpers before running their timing sections.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace topocon {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Right-aligns the given column (numeric columns read better ragged
  /// left); out-of-range indices are ignored. Headers stay left-aligned.
  void align_right(std::size_t column);

  /// Renders with column-aligned padding and a header rule.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<bool> right_aligned_;
};

/// Formats a double with the given precision (fixed).
std::string fmt(double value, int precision = 3);

/// "yes"/"no".
std::string yes_no(bool value);

}  // namespace topocon
