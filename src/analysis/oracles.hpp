// Ground-truth solvability oracles from the literature, used to validate
// the topological checker and to label benchmark tables.
//
// Sources:
//  * Lossy link, n = 2 (Santoro-Widmayer [21]; Coulouma-Godard-Peters [8];
//    Fevat-Godard [9]): over subsets of {<-, ->, <->}, consensus is
//    impossible exactly for the full set {<-, ->, <->}. Every proper
//    nonempty subset leaves a process that is heard in every round
//    ({<-, <->}: process 1; {->, <->}: process 0; singletons trivially) or
//    is the CGP-solvable pair {<-, ->}.
//  * Per-round omission adversaries (Santoro-Widmayer [21], Schmid-Weiss-
//    Keidar [22]): with up to f omissions per round, consensus is solvable
//    iff f <= n-2.
//  * VSSC adversaries (Biely et al. [6], Winkler et al. [23]): stability 1
//    (the oblivious adversary of all rooted graphs) is impossible for
//    n >= 2; sufficiently long stability windows are solvable. The
//    library's constructive threshold is stability >= 3n with isolated
//    stability (see runtime/vssc_algo.hpp); between the known-impossible
//    and the constructive regime the oracle reports "unknown".
#pragma once

#include <optional>

namespace topocon {

/// True iff consensus is solvable for the lossy-link subset (3-bit mask,
/// bit order of lossy_link_graphs(); must be nonzero).
bool lossy_link_solvable(unsigned subset_mask);

/// True iff consensus is solvable with at most f omissions per round.
bool omission_solvable(int n, int max_omissions);

/// Three-valued oracle for the VSSC family: true/false when the literature
/// (or the library's constructive algorithm) settles it, nullopt otherwise.
std::optional<bool> vssc_solvable(int n, int stability);

}  // namespace topocon
