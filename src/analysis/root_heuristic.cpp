#include "analysis/root_heuristic.hpp"

#include <cassert>

#include "core/union_find.hpp"
#include "graph/scc.hpp"

namespace topocon {

RootHeuristicResult root_intersection_heuristic(
    const std::vector<Digraph>& alphabet) {
  assert(!alphabet.empty());
  const std::size_t m = alphabet.size();
  std::vector<NodeMask> bcast(m);
  for (std::size_t i = 0; i < m; ++i) {
    bcast[i] = broadcasters(alphabet[i]);
  }
  UnionFind classes(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      if ((bcast[i] & bcast[j]) != 0) {
        classes.unite(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  const std::vector<int> ids = classes.component_ids();
  RootHeuristicResult result;
  result.class_members.assign(
      static_cast<std::size_t>(classes.num_sets()), 0);
  result.class_broadcasters.assign(
      static_cast<std::size_t>(classes.num_sets()), ~NodeMask{0});
  for (std::size_t i = 0; i < m; ++i) {
    const auto c = static_cast<std::size_t>(ids[i]);
    result.class_members[c] |= std::uint32_t{1} << i;
    result.class_broadcasters[c] &= bcast[i];
  }
  result.solvable = true;
  for (const NodeMask common : result.class_broadcasters) {
    if (common == 0) result.solvable = false;
  }
  return result;
}

}  // namespace topocon
