#include "analysis/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace topocon {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    out << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << cells[c]
          << " | ";
    }
    out << '\n';
  };
  print_row(headers_);
  out << '|';
  for (const std::size_t w : widths) {
    out << std::string(w + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string yes_no(bool value) { return value ? "yes" : "no"; }

}  // namespace topocon
