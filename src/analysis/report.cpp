#include "analysis/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace topocon {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), right_aligned_(headers_.size(), false) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::align_right(std::size_t column) {
  if (column < right_aligned_.size()) right_aligned_[column] = true;
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells,
                       bool is_header) {
    out << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const bool right = !is_header && right_aligned_[c];
      out << (right ? std::right : std::left)
          << std::setw(static_cast<int>(widths[c])) << cells[c] << " | ";
    }
    out << '\n';
  };
  print_row(headers_, /*is_header=*/true);
  out << '|';
  for (const std::size_t w : widths) {
    out << std::string(w + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) {
    print_row(row, /*is_header=*/false);
  }
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string yes_no(bool value) { return value ? "yes" : "no"; }

}  // namespace topocon
