// A combinatorial baseline for *oblivious* adversaries, inspired by the
// beta-class characterization of Coulouma-Godard-Peters [8] (the paper's
// reference for oblivious solvability):
//
//   * relate two graphs iff their broadcaster sets (members of the unique
//     root component, empty for non-rooted graphs) intersect;
//   * close transitively into classes;
//   * declare consensus solvable iff every class has a common broadcaster
//     (the intersection of its members' broadcaster sets is nonempty).
//
// Intuition: graphs with a common broadcaster p are confusable -- p's
// broadcast looks the same -- so a class must agree on one process whose
// input can safely drive the decision; a non-rooted graph (no broadcaster
// at all) poisons its class.
//
// Status: this is a *heuristic baseline*, not the full CGP theorem. It is
// exhaustively correct on n = 2 (all 15 alphabets over {empty, <-, ->,
// <->}; verified in tests against the topological checker), but for n = 3
// it diverges from the truth in BOTH directions -- the cross-validation
// suite (tests/root_heuristic_test.cpp) pins one alphabet it wrongly
// calls solvable and one it wrongly calls unsolvable (where the checker's
// certificate survives exhaustive simulation). The CGP beta-relation is
// genuinely finer than broadcaster intersection; the topological checker
// is the library's source of truth. The heuristic remains useful as an
// O(|alphabet|^2) first filter and as a benchmark comparison point.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace topocon {

struct RootHeuristicResult {
  bool solvable = false;
  /// Per beta-class: bitmask of alphabet indices in the class.
  std::vector<std::uint32_t> class_members;
  /// Per beta-class: intersection of the members' broadcaster sets.
  std::vector<NodeMask> class_broadcasters;
};

/// Runs the heuristic on an oblivious alphabet.
RootHeuristicResult root_intersection_heuristic(
    const std::vector<Digraph>& alphabet);

}  // namespace topocon
