#include "analysis/oracles.hpp"

#include <cassert>

namespace topocon {

bool lossy_link_solvable(unsigned subset_mask) {
  assert(subset_mask != 0 && subset_mask < 8);
  return subset_mask != 7u;  // impossible iff all of {<-, ->, <->} allowed
}

bool omission_solvable(int n, int max_omissions) {
  assert(n >= 2);
  return max_omissions <= n - 2;
}

std::optional<bool> vssc_solvable(int n, int stability) {
  assert(n >= 2 && stability >= 1);
  if (stability == 1) return false;  // oblivious rooted graphs, [21]-style
  if (stability >= 3 * n) return true;  // constructive (vssc_algo)
  return std::nullopt;
}

}  // namespace topocon
