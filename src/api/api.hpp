// topocon::api -- the unified solver surface.
//
// Everything this library can compute about a message adversary is
// reachable through two types:
//
//   api::Query    WHAT to compute: a tagged union over one adversary
//                 grid point (FamilyPoint), pure serializable data.
//   api::Session  HOW it runs: owns the thread pool, the ViewInterner
//                 arena, and the outcome history for its lifetime, and
//                 streams progress to an api::Observer.
//
// How each query variant maps onto the paper
// (Nowak, Schmid, Winkler, PODC 2019):
//
//   api::solvability(point, options)
//     The full characterization pipeline. For t = 1, 2, ...:
//       1. build the depth-t epsilon-approximation of the space of
//          admissible sequences, epsilon = 2^-t (Definition 6.2): the
//          finite prefix space deduplicated by process views, with
//          eps-chain connectivity as adjacency;
//       2. check whether the epsilon-components separate the valence
//          regions (Corollary 5.6; for compact adversaries separation at
//          some finite depth is equivalent to consensus solvability by
//          Theorem 6.6).
//     Verdicts: SOLVABLE with a certifying depth, NOT-SEPARATED at the
//     depth bound (impossibility evidence for compact adversaries;
//     expected-permanent for non-compact ones, Section 6.3), or
//     RESOURCE-LIMIT. When build_table is set, the SOLVABLE certificate
//     is constructive: the universal algorithm of Theorem 5.5.
//
//   api::depth_series(point, options)
//     Step 1 alone, depth by depth, continuing past separation: the
//     convergence curves of Section 6.2 / Figure 4 (how components
//     refine as epsilon shrinks), including the non-compact closure
//     curves of Section 6.3 that stay merged forever.
//
//   api::decision_table(point, options)
//     The constructive content of Theorem 5.5 as the artifact of
//     interest: run the solvability pipeline, extract the decision table
//     -- process p decides value v in round t as soon as every
//     admissible sequence compatible with its view lies in the decision
//     set PS(v) -- and record its shape: total (round, process, view)
//     entries, the worst-case decision round, and the per-round entry
//     counts (the integer form of the early-decision profile).
//
// Grid points are not limited to the hand-written families: a
// FamilyPoint whose family string is "composed:" + a canonical spec
// JSON (adversary/compose.hpp) names an algebraic composition --
// products, unions, and window constraints over compact families --
// and flows through every query variant, checkpoint, and renderer
// unchanged. Its label is the spec itself, so any result row can be
// replayed by pasting the label back into a point (the seeded fuzzer
// behind `topocon fuzz` and the fuzz-composed scenario relies on
// exactly this).
//
// One session, any mix of queries:
//
//   topocon::api::Session session;                 // owns the pool
//   auto outcomes = session.run("demo", {
//       topocon::api::solvability({"omission", 3, 1}, options),
//       topocon::api::depth_series({"lossy_link", 2, 0b111}, series),
//       topocon::api::decision_table({"lossy_link", 2, 0b011}),
//   });
//   session.write_json(std::cout);                 // topocon-sweep-v1
//
// Queries round-trip through JSON (query_to_json / query_from_json), so
// checkpoints carry the full job description and sweeps can be replayed
// from their artifacts alone. Results are bit-identical at every thread
// count (and every frontier chunk size -- the sub-root sharding knob of
// runtime/sweep/parallel_solver.hpp) and independent of session
// history. An api::Observer streams job/depth/chunk progress while a
// run executes; observers can never change results.
#pragma once

#include "api/query.hpp"    // IWYU pragma: export
#include "api/session.hpp"  // IWYU pragma: export
