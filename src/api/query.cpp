#include "api/query.hpp"

#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace topocon::api {

namespace {

using sweep::JsonValue;

JsonValue json_string(std::string text) {
  JsonValue value;
  value.kind = JsonValue::Kind::kString;
  value.string = std::move(text);
  return value;
}

/// Integers serialize sign-dependently (the reader parses non-negative
/// literals as kUint, negative ones as kInt); matching that here is what
/// makes query_to_json(parse(...)) structurally equal to its input.
JsonValue json_integer(std::int64_t number) {
  JsonValue value;
  if (number >= 0) {
    value.kind = JsonValue::Kind::kUint;
    value.uint_number = static_cast<std::uint64_t>(number);
  } else {
    value.kind = JsonValue::Kind::kInt;
    value.int_number = number;
  }
  return value;
}

JsonValue json_unsigned(std::uint64_t number) {
  JsonValue value;
  value.kind = JsonValue::Kind::kUint;
  value.uint_number = number;
  return value;
}

JsonValue json_boolean(bool flag) {
  JsonValue value;
  value.kind = JsonValue::Kind::kBool;
  value.boolean = flag;
  return value;
}

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("query json: " + message);
}

const JsonValue& require(const JsonValue& object, std::string_view key) {
  const JsonValue* member = object.find(key);
  if (member == nullptr) {
    fail("missing member \"" + std::string(key) + "\"");
  }
  return *member;
}

int get_int(const JsonValue& object, std::string_view key) {
  const JsonValue& member = require(object, key);
  if (member.kind != JsonValue::Kind::kInt &&
      member.kind != JsonValue::Kind::kUint) {
    fail("member \"" + std::string(key) + "\" must be an integer");
  }
  const std::int64_t number = member.as_int();
  if (number < std::numeric_limits<int>::min() ||
      number > std::numeric_limits<int>::max()) {
    fail("member \"" + std::string(key) + "\" is out of range");
  }
  return static_cast<int>(number);
}

std::uint64_t get_unsigned(const JsonValue& object, std::string_view key) {
  const JsonValue& member = require(object, key);
  if (member.kind != JsonValue::Kind::kUint &&
      !(member.kind == JsonValue::Kind::kInt && member.int_number >= 0)) {
    fail("member \"" + std::string(key) +
         "\" must be a non-negative integer");
  }
  return member.as_uint();
}

bool get_bool(const JsonValue& object, std::string_view key) {
  const JsonValue& member = require(object, key);
  if (member.kind != JsonValue::Kind::kBool) {
    fail("member \"" + std::string(key) + "\" must be a boolean");
  }
  return member.boolean;
}

std::string get_string(const JsonValue& object, std::string_view key) {
  const JsonValue& member = require(object, key);
  if (member.kind != JsonValue::Kind::kString) {
    fail("member \"" + std::string(key) + "\" must be a string");
  }
  return member.string;
}

void reject_unknown_members(const JsonValue& object,
                            std::initializer_list<std::string_view> allowed) {
  for (const auto& [name, member] : object.members) {
    bool known = false;
    for (const std::string_view key : allowed) {
      known |= name == key;
    }
    if (!known) fail("unknown member \"" + name + "\"");
  }
}

/// The two solvability-options query kinds share one wire layout; only
/// kSolvability carries build_table (kDecisionTable implies it). Keeping
/// one append/parse pair is what keeps the kinds from diverging.
void append_solvability_options(JsonValue& object,
                                const SolvabilityOptions& options,
                                bool include_build_table) {
  object.members.emplace_back("max_depth", json_integer(options.max_depth));
  object.members.emplace_back("num_values",
                              json_integer(options.num_values));
  object.members.emplace_back("max_states",
                              json_unsigned(options.max_states));
  if (include_build_table) {
    object.members.emplace_back("build_table",
                                json_boolean(options.build_table));
  }
  object.members.emplace_back("require_broadcastable",
                              json_boolean(options.require_broadcastable));
  object.members.emplace_back("strong_validity",
                              json_boolean(options.strong_validity));
}

SolvabilityOptions solvability_options_from_json(const JsonValue& value,
                                                 bool include_build_table) {
  SolvabilityOptions options;
  options.max_depth = get_int(value, "max_depth");
  options.num_values = get_int(value, "num_values");
  options.max_states =
      static_cast<std::size_t>(get_unsigned(value, "max_states"));
  options.build_table =
      include_build_table ? get_bool(value, "build_table") : true;
  options.require_broadcastable = get_bool(value, "require_broadcastable");
  options.strong_validity = get_bool(value, "strong_validity");
  return options;
}

FamilyPoint point_from_json(const JsonValue& object) {
  FamilyPoint point;
  point.family = get_string(object, "family");
  point.n = get_int(object, "n");
  point.param = get_int(object, "param");
  try {
    validate_family_point(point);
  } catch (const std::invalid_argument& error) {
    fail(error.what());
  }
  return point;
}

void append_point(JsonValue& object, const FamilyPoint& point) {
  object.members.emplace_back("family", json_string(point.family));
  object.members.emplace_back("n", json_integer(point.n));
  object.members.emplace_back("param", json_integer(point.param));
}

const char* to_string(AdjacencyTopology topology) {
  return topology == AdjacencyTopology::kMin ? "min" : "pview";
}

}  // namespace

const char* to_string(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSolvability: return "solvability";
    case QueryKind::kDepthSeries: return "depth_series";
    case QueryKind::kDecisionTable: return "decision_table";
  }
  return "?";
}

std::optional<QueryKind> parse_query_kind(std::string_view name) {
  if (name == "solvability") return QueryKind::kSolvability;
  if (name == "depth_series") return QueryKind::kDepthSeries;
  if (name == "decision_table") return QueryKind::kDecisionTable;
  return std::nullopt;
}

QueryKind kind_of(const Query& query) {
  return static_cast<QueryKind>(query.index());
}

const FamilyPoint& point_of(const Query& query) {
  return std::visit(
      [](const auto& q) -> const FamilyPoint& { return q.point; }, query);
}

std::string label_of(const Query& query) {
  return family_point_label(point_of(query));
}

int depth_of(const Query& query) {
  switch (kind_of(query)) {
    case QueryKind::kDepthSeries:
      return std::get<DepthSeriesQuery>(query).options.depth;
    case QueryKind::kSolvability:
      return std::get<SolvabilityQuery>(query).options.max_depth;
    case QueryKind::kDecisionTable:
      return std::get<DecisionTableQuery>(query).options.max_depth;
  }
  return 0;
}

Query solvability(const FamilyPoint& point,
                  const SolvabilityOptions& options) {
  return SolvabilityQuery{point, options};
}

Query depth_series(const FamilyPoint& point, const AnalysisOptions& options) {
  return DepthSeriesQuery{point, options};
}

Query decision_table(const FamilyPoint& point,
                     const SolvabilityOptions& options) {
  return DecisionTableQuery{point, options};
}

void validate_query(const Query& query) {
  validate_family_point(point_of(query));
}

sweep::SweepJob to_sweep_job(const Query& query) {
  sweep::SweepJob job;
  job.point = point_of(query);
  switch (kind_of(query)) {
    case QueryKind::kSolvability:
      job.kind = sweep::JobKind::kSolvability;
      job.solve = std::get<SolvabilityQuery>(query).options;
      break;
    case QueryKind::kDepthSeries:
      job.kind = sweep::JobKind::kDepthSeries;
      job.analysis = std::get<DepthSeriesQuery>(query).options;
      break;
    case QueryKind::kDecisionTable:
      job.kind = sweep::JobKind::kDecisionTable;
      job.solve = std::get<DecisionTableQuery>(query).options;
      job.solve.build_table = true;
      break;
  }
  return job;
}

Query from_sweep_job(const sweep::SweepJob& job) {
  switch (job.kind) {
    case sweep::JobKind::kSolvability:
      return SolvabilityQuery{job.point, job.solve};
    case sweep::JobKind::kDepthSeries:
      return DepthSeriesQuery{job.point, job.analysis};
    case sweep::JobKind::kDecisionTable:
      return DecisionTableQuery{job.point, job.solve};
  }
  return SolvabilityQuery{job.point, job.solve};
}

sweep::JsonValue query_to_json(const Query& query) {
  JsonValue object;
  object.kind = JsonValue::Kind::kObject;
  object.members.emplace_back("query",
                              json_string(to_string(kind_of(query))));
  append_point(object, point_of(query));
  switch (kind_of(query)) {
    case QueryKind::kSolvability:
      append_solvability_options(object,
                                 std::get<SolvabilityQuery>(query).options,
                                 /*include_build_table=*/true);
      break;
    case QueryKind::kDecisionTable:
      append_solvability_options(
          object, std::get<DecisionTableQuery>(query).options,
          /*include_build_table=*/false);
      break;
    case QueryKind::kDepthSeries: {
      const AnalysisOptions& options =
          std::get<DepthSeriesQuery>(query).options;
      object.members.emplace_back("depth", json_integer(options.depth));
      object.members.emplace_back("num_values",
                                  json_integer(options.num_values));
      object.members.emplace_back("max_states",
                                  json_unsigned(options.max_states));
      object.members.emplace_back("topology",
                                  json_string(to_string(options.topology)));
      object.members.emplace_back(
          "pview_set",
          json_unsigned(static_cast<std::uint64_t>(options.pview_set)));
      break;
    }
  }
  return object;
}

Query query_from_json(const sweep::JsonValue& value) {
  if (!value.is_object()) fail("expected an object");
  const std::string kind_name = get_string(value, "query");
  const std::optional<QueryKind> kind = parse_query_kind(kind_name);
  if (!kind.has_value()) {
    fail("unknown query kind \"" + kind_name + "\"");
  }
  switch (*kind) {
    case QueryKind::kSolvability: {
      reject_unknown_members(
          value, {"query", "family", "n", "param", "max_depth", "num_values",
                  "max_states", "build_table", "require_broadcastable",
                  "strong_validity"});
      SolvabilityQuery query;
      query.point = point_from_json(value);
      query.options =
          solvability_options_from_json(value, /*include_build_table=*/true);
      return query;
    }
    case QueryKind::kDecisionTable: {
      reject_unknown_members(
          value, {"query", "family", "n", "param", "max_depth", "num_values",
                  "max_states", "require_broadcastable", "strong_validity"});
      DecisionTableQuery query;
      query.point = point_from_json(value);
      query.options = solvability_options_from_json(
          value, /*include_build_table=*/false);
      return query;
    }
    case QueryKind::kDepthSeries: {
      reject_unknown_members(value,
                             {"query", "family", "n", "param", "depth",
                              "num_values", "max_states", "topology",
                              "pview_set"});
      DepthSeriesQuery query;
      query.point = point_from_json(value);
      query.options.depth = get_int(value, "depth");
      query.options.num_values = get_int(value, "num_values");
      query.options.max_states =
          static_cast<std::size_t>(get_unsigned(value, "max_states"));
      query.options.keep_levels = false;
      const std::string topology = get_string(value, "topology");
      if (topology == "min") {
        query.options.topology = AdjacencyTopology::kMin;
      } else if (topology == "pview") {
        query.options.topology = AdjacencyTopology::kPView;
      } else {
        fail("unknown topology \"" + topology + "\"");
      }
      const std::uint64_t pview_set = get_unsigned(value, "pview_set");
      if (pview_set > std::numeric_limits<NodeMask>::max()) {
        fail("member \"pview_set\" is out of range");
      }
      query.options.pview_set = static_cast<NodeMask>(pview_set);
      return query;
    }
  }
  fail("unknown query kind \"" + kind_name + "\"");
}

std::string query_to_string(const Query& query) {
  std::ostringstream out;
  sweep::JsonWriter writer(out, sweep::JsonStyle::kCompact);
  sweep::write_json_value(writer, query_to_json(query));
  return out.str();
}

Query parse_query(std::string_view text) {
  return query_from_json(sweep::JsonReader::parse(text));
}

}  // namespace topocon::api
