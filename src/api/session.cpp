#include "api/session.hpp"

#include <ostream>

namespace topocon::api {

void Observer::on_job_start(std::size_t, const Query&) {}
void Observer::on_depth(std::size_t, const DepthStats&) {}
void Observer::on_depth(std::size_t, const ChunkProgress&) {}
void Observer::on_job_telemetry(std::size_t, const telemetry::JobTelemetry&) {}
void Observer::on_job_done(std::size_t, const sweep::JobOutcome&) {}

Session::Session(SessionOptions options)
    : options_(options),
      pool_(options.num_threads > 0 ? options.num_threads
                                    : sweep::default_num_threads()) {}

std::vector<sweep::JobOutcome> Session::run(const std::string& name,
                                            const std::vector<Query>& queries,
                                            Observer* observer) {
  sweep::SweepSpec spec;
  spec.name = name;
  spec.jobs.reserve(queries.size());
  for (const Query& query : queries) {
    validate_query(query);
    spec.jobs.push_back(to_sweep_job(query));
  }

  sweep::SweepHooks hooks;
  hooks.collect_telemetry =
      options_.collect_telemetry || options_.telemetry_in_records;
  hooks.trace = options_.trace;
  hooks.spill = options_.spill;
  const bool telemetry_active =
      hooks.collect_telemetry || hooks.trace != nullptr;
  if (observer != nullptr) {
    hooks.on_job_start = [observer, &queries](std::size_t job,
                                              const sweep::SweepJob&) {
      observer->on_job_start(job, queries[job]);
    };
    hooks.on_depth = [observer](std::size_t job, const DepthStats& stats) {
      observer->on_depth(job, stats);
    };
    hooks.on_chunk = [observer](std::size_t job,
                                const ChunkProgress& progress) {
      observer->on_depth(job, progress);
    };
    if (telemetry_active) {
      hooks.on_job_telemetry =
          [observer](std::size_t job,
                     const telemetry::JobTelemetry& snapshot) {
            observer->on_job_telemetry(job, snapshot);
          };
    }
    hooks.on_job_done = [observer](std::size_t job,
                                   const sweep::JobOutcome& outcome) {
      observer->on_job_done(job, outcome);
    };
  }

  std::vector<sweep::JobOutcome> outcomes =
      sweep::run_sweep_on(spec, pool_, hooks);

  // Retain the certificate interners: outcomes may be summarized and
  // dropped by the caller while tables live on (session arena contract).
  for (const sweep::JobOutcome& outcome : outcomes) {
    if (outcome.result.analysis.has_value() &&
        outcome.result.analysis->interner) {
      interner_arena_.push_back(outcome.result.analysis->interner);
    }
    if (outcome.result.table.has_value()) {
      interner_arena_.push_back(outcome.result.table->interner());
    }
  }

  std::vector<sweep::JobRecord> records;
  records.reserve(outcomes.size());
  for (const sweep::JobOutcome& outcome : outcomes) {
    records.push_back(
        sweep::summarize(outcome, options_.telemetry_in_records));
  }
  if (options_.record_global && sweep::SweepRegistry::instance().enabled()) {
    sweep::SweepRegistry::instance().record(name, records);
  }
  history_.emplace_back(name, std::move(records));
  return outcomes;
}

std::vector<sweep::JobOutcome> Session::run(const Plan& plan,
                                            Observer* observer) {
  return run(plan.name, plan.queries, observer);
}

sweep::JobOutcome Session::run_one(const Query& query, Observer* observer) {
  std::vector<sweep::JobOutcome> outcomes =
      run(label_of(query), {query}, observer);
  return std::move(outcomes.front());
}

void Session::write_json(std::ostream& out) const {
  sweep::JsonWriter writer(out);
  writer.begin_object();
  writer.member("schema", "topocon-sweep-v1");
  writer.key("sweeps");
  writer.begin_array();
  for (const auto& [name, records] : history_) {
    sweep::write_sweep_json(writer, name, records);
  }
  writer.end_array();
  writer.end_object();
  out << '\n';
}

}  // namespace topocon::api
