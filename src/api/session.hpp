// Session: the one entry point every front end shares.
//
// A Session owns, for its lifetime, the three resources a solver run
// needs -- so consecutive runs amortize them instead of rebuilding them
// per call (run_sweep's historical behavior):
//
//   * the work-helping ThreadPool jobs and their root shards execute on;
//   * the ViewInterner arena: the interners backing every certificate
//     (decision tables, final analyses) a run returns are retained and
//     re-homed here, so artifacts from earlier runs stay replayable for
//     as long as the Session lives;
//   * the outcome history: the JSON-visible record of every named run,
//     serializable as one topocon-sweep-v1 document (write_json).
//
// Determinism contract (inherited from the engine): for a fixed query
// list, every field of the outcomes and every byte of the serialized
// records are independent of the thread count AND of whatever the
// Session ran before -- two consecutive run() calls on one Session
// produce byte-identical artifacts to two fresh Sessions (enforced by
// api_session_test).
//
// Streaming: an Observer watches a run as it executes -- job start, each
// completed expansion chunk (the frontier engine's finest-grained
// signal, for progress display), each completed depth, job completion --
// generalizing the single on_job_done checkpoint hook of SweepSpec.
// Callbacks arrive serialized (no locking needed inside) but in
// completion order; key on the job index, never on arrival order.
// Observers cannot change results.
//
// Sessions are not thread-safe: one run() at a time, from one thread
// (the parallelism lives inside the pool). Create one Session per
// concurrent operator instead.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/query.hpp"
#include "ptg/view_intern.hpp"
#include "runtime/sweep/engine.hpp"
#include "runtime/sweep/thread_pool.hpp"

namespace topocon::api {

struct SessionOptions {
  /// Pool size; 0 = sweep::default_num_threads() (--sweep-threads or
  /// hardware concurrency). Results never depend on this.
  int num_threads = 0;
  /// Mirror every named run into the process-global sweep::SweepRegistry
  /// (the --sweep-json surface of the bench binaries). The registry still
  /// applies its own enabled() gate.
  bool record_global = true;
  /// Collect per-job telemetry (telemetry/metrics.hpp) into
  /// JobOutcome::telemetry. Off by default: collection is zero-cost when
  /// no surface below (or an Observer::on_job_telemetry override) wants
  /// it. The counters are deterministic across thread counts; the
  /// timings are not.
  bool collect_telemetry = false;
  /// Additionally embed each record's counters as the JSON "telemetry"
  /// section of the history (implies collect_telemetry). Off by default
  /// so existing artifacts stay byte-identical.
  bool telemetry_in_records = false;
  /// Chrome-trace span writer shared by every run of this session
  /// (telemetry/trace.hpp); must outlive the Session. Non-null implies
  /// collect_telemetry. Null = no tracing.
  telemetry::TraceWriter* trace = nullptr;
  /// Out-of-core spill knobs for every run of this session (core/spill.*),
  /// overriding the per-query options and the process default. nullopt =
  /// inherit (query options, then --spill-* defaults). Execution detail:
  /// results and artifacts are byte-identical at any setting.
  std::optional<SpillOptions> spill = std::nullopt;
};

/// Streaming view of a running Session (see the header comment).
class Observer {
 public:
  virtual ~Observer() = default;

  /// A worker picked up job `job` of the current run.
  virtual void on_job_start(std::size_t job, const Query& query);
  /// Job `job` completed the depth described by `stats` (solvability
  /// deepening step or series entry), in depth order per job.
  virtual void on_depth(std::size_t job, const DepthStats& stats);
  /// Finer-grained sibling of the overload above: job `job` finished one
  /// expansion chunk inside its current depth pass (core/frontier.hpp).
  /// Many per depth, level by level; intended for progress display.
  /// Counters only -- chunk completion order is thread-count-dependent.
  virtual void on_depth(std::size_t job, const ChunkProgress& progress);
  /// Job `job`'s telemetry snapshot: deterministic counters plus
  /// (thread-count-dependent) per-level timings. Fired before the job's
  /// on_job_done, and only when the session has a telemetry surface
  /// enabled (SessionOptions::collect_telemetry / telemetry_in_records /
  /// trace) -- a default-constructed session never pays for collection.
  virtual void on_job_telemetry(std::size_t job,
                                const telemetry::JobTelemetry& snapshot);
  /// Job `job` finished; `outcome` carries its final aggregates. Follows
  /// every on_depth of the same job.
  virtual void on_job_done(std::size_t job,
                           const sweep::JobOutcome& outcome);
};

/// A named batch of queries -- what a scenario expands to and a Session
/// runs. Pure data, like the queries themselves.
struct Plan {
  std::string name;
  std::vector<Query> queries;
};

class Session {
 public:
  explicit Session(SessionOptions options = {});

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  int num_threads() const { return pool_.num_threads(); }

  /// The session's pool, for interop with the engine primitives
  /// (parallel_analyze_depth and friends) when a front end needs raw
  /// DepthAnalysis objects beyond what queries record. Do not destroy or
  /// detach it; do not call run() while a borrowed reference is mid-use
  /// on another thread.
  sweep::ThreadPool& pool() { return pool_; }

  /// Runs the queries on the session pool; outcomes are indexed like
  /// `queries`, with every interner re-homed to the calling thread and
  /// retained in the session arena. Appends the run's records to the
  /// history under `name`. Throws std::invalid_argument on an invalid
  /// grid point (before anything runs).
  std::vector<sweep::JobOutcome> run(const std::string& name,
                                     const std::vector<Query>& queries,
                                     Observer* observer = nullptr);
  std::vector<sweep::JobOutcome> run(const Plan& plan,
                                     Observer* observer = nullptr);

  /// Single-query convenience: runs it under its point label as the run
  /// name and returns the one outcome.
  sweep::JobOutcome run_one(const Query& query, Observer* observer = nullptr);

  /// Every named run of this session, in run order, as the JSON-visible
  /// records (the same projection the registry and checkpoints use).
  using History =
      std::vector<std::pair<std::string, std::vector<sweep::JobRecord>>>;
  const History& history() const { return history_; }
  void clear_history() { history_.clear(); }

  /// Serializes the history as one {"schema": "topocon-sweep-v1", ...}
  /// document -- byte-identical to the global registry's dump of the
  /// same runs.
  void write_json(std::ostream& out) const;

 private:
  SessionOptions options_;
  sweep::ThreadPool pool_;
  History history_;
  /// Keeps certificate interners of past runs alive (see header comment).
  std::vector<std::shared_ptr<ViewInterner>> interner_arena_;
};

}  // namespace topocon::api
