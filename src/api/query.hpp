// Query: the solver workload as a pure, serializable value.
//
// A Query names one unit of work of the paper's pipeline on one adversary
// grid point (FamilyPoint) -- nothing more. It carries no closures, no
// adversary instances, and no execution state, so query lists can be
// stored in checkpoints, diffed, rendered, and replayed bit-identically:
// "declare the workload as data, let the engine own execution". The three
// variants map onto the paper as follows (see api.hpp for the full tour):
//
//   SolvabilityQuery   iterative deepening of the depth-t epsilon-
//                      approximation (Definition 6.2) until the valence
//                      regions separate (Corollary 5.6 / Theorem 6.6) or
//                      a bound is hit.
//   DepthSeriesQuery   the same approximation depth by depth, continuing
//                      past separation -- the convergence curves of
//                      Section 6.2 (bench E4/E6/E7).
//   DecisionTableQuery solvability plus extraction of the universal
//                      consensus algorithm of Theorem 5.5, recording the
//                      decision table's shape (entries per round).
//
// The JSON encoding round-trips exactly: query_to_json emits a canonical
// object (fixed member order, compact integer/boolean values only), and
// query_from_json accepts exactly that shape, so
// serialize(parse(serialize(q))) == serialize(q) for every query.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "adversary/family.hpp"
#include "core/epsilon_approx.hpp"
#include "core/solvability.hpp"
#include "runtime/sweep/engine.hpp"
#include "runtime/sweep/json.hpp"

namespace topocon::api {

/// Consensus solvability of one grid point (Definition 6.2 pipeline,
/// verdict per Corollary 5.6 / Theorem 6.6).
struct SolvabilityQuery {
  FamilyPoint point;
  SolvabilityOptions options;
};

/// Depth-by-depth epsilon-approximation series (Section 6.2 curves).
/// options.depth is the maximum depth; options.keep_levels is an
/// execution detail and ignored (the series never retains levels).
struct DepthSeriesQuery {
  FamilyPoint point;
  AnalysisOptions options;
};

/// Universal-algorithm extraction (Theorem 5.5): a solvability check
/// whose record is the decision-table shape. options.build_table is
/// implied and ignored.
struct DecisionTableQuery {
  FamilyPoint point;
  SolvabilityOptions options;
};

/// The tagged union every front end (benches, examples, scenarios, the
/// topocon CLI) submits to a Session.
using Query = std::variant<SolvabilityQuery, DepthSeriesQuery,
                           DecisionTableQuery>;

enum class QueryKind { kSolvability, kDepthSeries, kDecisionTable };

const char* to_string(QueryKind kind);
std::optional<QueryKind> parse_query_kind(std::string_view name);

QueryKind kind_of(const Query& query);
const FamilyPoint& point_of(const Query& query);
/// Short human/JSON label of the query's grid point (family_point_label).
std::string label_of(const Query& query);
/// The depth bound of the query (max_depth or series depth).
int depth_of(const Query& query);

/// Builders -- the one-line way to phrase work against the facade.
Query solvability(const FamilyPoint& point,
                  const SolvabilityOptions& options = {});
Query depth_series(const FamilyPoint& point, const AnalysisOptions& options);
Query decision_table(const FamilyPoint& point,
                     const SolvabilityOptions& options = {});

/// Validates the query's grid point (validate_family_point). Throws
/// std::invalid_argument with the family layer's exact message.
void validate_query(const Query& query);

/// The execution-layer form of the query (runtime/sweep/engine.hpp).
/// Queries and SweepJobs are the same data; the variant is the typed
/// surface, the job the engine's uniform record.
sweep::SweepJob to_sweep_job(const Query& query);
/// Inverse of to_sweep_job (the job's kind selects the variant).
Query from_sweep_job(const sweep::SweepJob& job);

/// Canonical JSON object of a query (fixed member order). The result
/// contains only strings, integers, and booleans, so it serializes
/// identically in pretty and compact styles modulo whitespace.
sweep::JsonValue query_to_json(const Query& query);

/// Parses a query object. Throws std::runtime_error with a message
/// starting "query json: " on any malformed input: wrong value kind,
/// missing or unknown members, unknown query/topology names, or a grid
/// point the family layer rejects. Accepts members in any order but
/// nothing beyond the canonical set.
Query query_from_json(const sweep::JsonValue& value);

/// One-line compact serialization (write_json_value of query_to_json).
std::string query_to_string(const Query& query);
/// parse + query_from_json of one document.
Query parse_query(std::string_view text);

}  // namespace topocon::api
