// Edge-case tests for library entry points that examples/CLI rely on, and
// assorted small-surface behaviours not covered elsewhere: reconstruction
// error paths, interner node metadata, adversary naming, RunPrefix
// printing, and Digraph string/decode edges.
#include <gtest/gtest.h>

#include "adversary/lossy_link.hpp"
#include "core/epsilon_approx.hpp"
#include "graph/enumerate.hpp"
#include "ptg/view_intern.hpp"

namespace topocon {
namespace {

TEST(EdgeCases, ReconstructPrefixRejectsBadIndex) {
  const auto ma = make_lossy_link(0b011);
  AnalysisOptions options;
  options.depth = 2;
  const DepthAnalysis analysis = analyze_depth(*ma, options);
  EXPECT_FALSE(reconstruct_prefix(*ma, analysis, -1).has_value());
  EXPECT_FALSE(
      reconstruct_prefix(*ma, analysis,
                         static_cast<int>(analysis.leaves().size()))
          .has_value());
  EXPECT_TRUE(reconstruct_prefix(*ma, analysis, 0).has_value());
}

TEST(EdgeCases, InternerNodeMetadata) {
  ViewInterner interner;
  const ViewId base_id = interner.base(1, 7);
  const ViewInterner::Node& base_node = interner.node(base_id);
  EXPECT_EQ(base_node.process, 1);
  EXPECT_EQ(base_node.depth, 0);
  EXPECT_EQ(base_node.input, 7);

  const ViewId other = interner.base(0, 3);
  const ViewId step_id =
      interner.step(1, 0b11, {other, base_id});  // senders 0 then 1
  const ViewInterner::Node& step_node = interner.node(step_id);
  EXPECT_EQ(step_node.process, 1);
  EXPECT_EQ(step_node.depth, 1);
  EXPECT_EQ(step_node.mask, NodeMask{0b11});
  ASSERT_EQ(step_node.senders.size(), 2u);
  EXPECT_EQ(step_node.senders[0], other);
  EXPECT_EQ(step_node.senders[1], base_id);
}

TEST(EdgeCases, AdversaryNames) {
  EXPECT_EQ(make_lossy_link(0b011)->name(), "lossy-link{<-, ->}");
  EXPECT_EQ(lossy_link_subset_name(0b111), "{<-, ->, <->}");
}

TEST(EdgeCases, RunPrefixToString) {
  RunPrefix prefix;
  prefix.inputs = {1, 0};
  prefix.graphs = {Digraph::from_edges(2, {{0, 1}})};
  EXPECT_EQ(prefix.to_string(), "x=(1,0) {0->1}");
}

TEST(EdgeCases, EmptyGraphToString) {
  EXPECT_EQ(Digraph::empty(3).to_string(), "{}");
}

TEST(EdgeCases, DepthZeroAnalysisHasInputLeavesOnly) {
  const auto ma = make_lossy_link(0b111);
  AnalysisOptions options;
  options.depth = 0;
  options.num_values = 3;
  const DepthAnalysis analysis = analyze_depth(*ma, options);
  EXPECT_EQ(analysis.leaves().size(), 9u);  // 3^2 input vectors
  EXPECT_EQ(analysis.depth, 0);
  for (const PrefixState& leaf : analysis.leaves()) {
    EXPECT_EQ(leaf.multiplicity, 1u);
  }
}

TEST(EdgeCases, AnalysisWithSharedInternerIsDeterministic) {
  const auto ma = make_lossy_link(0b101);
  AnalysisOptions options;
  options.depth = 3;
  options.keep_levels = false;
  const DepthAnalysis a = analyze_depth(*ma, options);
  const DepthAnalysis b = analyze_depth(*ma, options);
  ASSERT_EQ(a.leaves().size(), b.leaves().size());
  EXPECT_EQ(a.components.size(), b.components.size());
  EXPECT_EQ(a.leaf_component, b.leaf_component);
}

}  // namespace
}  // namespace topocon
