// Tests for the synchronous round simulator: delivery semantics, decision
// recording, the full-information protocol's equivalence with the offline
// view computation, and the consensus spec checker.
#include <memory>
#include <random>

#include <gtest/gtest.h>

#include "graph/enumerate.hpp"
#include "runtime/full_info.hpp"
#include "runtime/simulator.hpp"
#include "runtime/verify.hpp"

namespace topocon {
namespace {

// A probe algorithm that records exactly which senders were delivered in
// each round.
struct DeliveryProbe {
  struct State {
    ProcessId pid = 0;
    std::vector<NodeMask> delivered;  // per round
  };
  using Message = ProcessId;

  State init(ProcessId p, Value) const { return State{p, {}}; }
  Message message(const State& state) const { return state.pid; }
  void step(State& state, int round,
            const std::vector<std::optional<Message>>& received) const {
    NodeMask mask = 0;
    for (std::size_t s = 0; s < received.size(); ++s) {
      if (received[s].has_value()) {
        EXPECT_EQ(*received[s], static_cast<ProcessId>(s));
        mask |= NodeMask{1} << s;
      }
    }
    ASSERT_EQ(static_cast<int>(state.delivered.size()), round - 1);
    state.delivered.push_back(mask);
  }
  std::optional<Value> decision(const State&) const { return std::nullopt; }
};

TEST(Simulator, DeliversExactlyTheGraphEdges) {
  RunPrefix prefix;
  prefix.inputs = {0, 1, 0};
  prefix.graphs = {Digraph::from_edges(3, {{0, 1}, {2, 1}}),
                   Digraph::from_edges(3, {{1, 2}})};
  DeliveryProbe probe;
  const int n = prefix.num_processes();
  std::vector<DeliveryProbe::State> states;
  for (int p = 0; p < n; ++p) {
    states.push_back(probe.init(p, prefix.inputs[static_cast<std::size_t>(p)]));
  }
  // Use simulate() and inspect via a side channel: rerun manually instead.
  // simulate() owns the states, so here we just rely on the probe's
  // EXPECTs by running it through simulate.
  (void)simulate(probe, prefix);
}

// Self-loops guarantee every process receives its own message.
TEST(Simulator, SelfMessageAlwaysDelivered) {
  struct SelfCheck {
    struct State {
      ProcessId pid = 0;
    };
    using Message = ProcessId;
    State init(ProcessId p, Value) const { return State{p}; }
    Message message(const State& state) const { return state.pid; }
    void step(State& state, int,
              const std::vector<std::optional<Message>>& received) const {
      ASSERT_TRUE(received[static_cast<std::size_t>(state.pid)].has_value());
    }
    std::optional<Value> decision(const State&) const { return std::nullopt; }
  };
  RunPrefix prefix;
  prefix.inputs = {0, 0, 0};
  prefix.graphs = {Digraph::empty(3), Digraph::complete(3)};
  (void)simulate(SelfCheck{}, prefix);
}

// An algorithm that decides its input at a fixed round.
struct DecideAtRound {
  int target;
  struct State {
    Value input = 0;
    int round = 0;
  };
  using Message = int;
  State init(ProcessId, Value input) const { return State{input, 0}; }
  Message message(const State&) const { return 0; }
  void step(State& state, int round,
            const std::vector<std::optional<Message>>&) const {
    state.round = round;
  }
  std::optional<Value> decision(const State& state) const {
    if (state.round >= target) return state.input;
    return std::nullopt;
  }
};

TEST(Simulator, DecisionRoundsRecordedOnce) {
  RunPrefix prefix;
  prefix.inputs = {3, 5};
  prefix.graphs = {Digraph::complete(2), Digraph::complete(2),
                   Digraph::complete(2)};
  const ConsensusOutcome outcome = simulate(DecideAtRound{2}, prefix);
  EXPECT_TRUE(outcome.all_decided());
  EXPECT_EQ(outcome.decision_round[0], 2);
  EXPECT_EQ(outcome.decision_round[1], 2);
  EXPECT_EQ(*outcome.decisions[0], 3);
  EXPECT_EQ(*outcome.decisions[1], 5);
  EXPECT_EQ(outcome.last_decision_round(), 2);
}

TEST(Simulator, DecisionAtRoundZero) {
  RunPrefix prefix;
  prefix.inputs = {7};
  prefix.graphs = {Digraph::complete(1)};
  const ConsensusOutcome outcome = simulate(DecideAtRound{0}, prefix);
  EXPECT_EQ(outcome.decision_round[0], 0);
}

// A zero-length prefix still evaluates decisions once (the record(0) path):
// no rounds run, no messages are delivered, but an algorithm that decides in
// its initial state is recorded at round 0.
TEST(Simulator, ZeroLengthPrefix) {
  RunPrefix prefix;
  prefix.inputs = {4, 9};
  ASSERT_EQ(prefix.length(), 0);
  const ConsensusOutcome immediate = simulate(DecideAtRound{0}, prefix);
  EXPECT_EQ(immediate.rounds, 0);
  EXPECT_TRUE(immediate.all_decided());
  EXPECT_EQ(immediate.decision_round[0], 0);
  EXPECT_EQ(immediate.decision_round[1], 0);
  EXPECT_EQ(*immediate.decisions[0], 4);
  EXPECT_EQ(*immediate.decisions[1], 9);

  const ConsensusOutcome waiting = simulate(DecideAtRound{1}, prefix);
  EXPECT_EQ(waiting.rounds, 0);
  EXPECT_FALSE(waiting.all_decided());
  EXPECT_EQ(waiting.last_decision_round(), -1);
}

// A single process hears only itself each round; the simulator must still
// run the full round loop and record the decision at the target round.
TEST(Simulator, SingleProcessRun) {
  RunPrefix prefix;
  prefix.inputs = {6};
  prefix.graphs = {Digraph::empty(1), Digraph::empty(1), Digraph::empty(1)};
  struct CountSelf {
    struct State {
      Value input = 0;
      int heard = 0;
      int round = 0;
    };
    using Message = int;
    State init(ProcessId, Value input) const { return State{input, 0, 0}; }
    Message message(const State&) const { return 1; }
    void step(State& state, int round,
              const std::vector<std::optional<Message>>& received) const {
      ASSERT_EQ(received.size(), 1u);
      ASSERT_TRUE(received[0].has_value());  // self-loop delivery
      state.heard += *received[0];
      state.round = round;
    }
    std::optional<Value> decision(const State& state) const {
      if (state.round >= 2) return state.input;
      return std::nullopt;
    }
  };
  const ConsensusOutcome outcome = simulate(CountSelf{}, prefix);
  EXPECT_EQ(outcome.rounds, 3);
  EXPECT_TRUE(outcome.all_decided());
  EXPECT_EQ(outcome.decision_round[0], 2);
  EXPECT_EQ(*outcome.decisions[0], 6);
}

// Decisions made before any communication stick at round 0 and are never
// overwritten by later rounds, even if the algorithm's decision changes.
TEST(Simulator, RoundZeroDecisionIsSticky) {
  struct FlipAfterStep {
    struct State {
      Value current = 0;
    };
    using Message = int;
    State init(ProcessId, Value input) const { return State{input}; }
    Message message(const State&) const { return 0; }
    void step(State& state, int,
              const std::vector<std::optional<Message>>&) const {
      state.current += 100;  // would change the decision if re-recorded
    }
    std::optional<Value> decision(const State& state) const {
      return state.current;
    }
  };
  RunPrefix prefix;
  prefix.inputs = {1, 2, 3};
  prefix.graphs = {Digraph::complete(3), Digraph::complete(3)};
  const ConsensusOutcome outcome = simulate(FlipAfterStep{}, prefix);
  EXPECT_TRUE(outcome.all_decided());
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(outcome.decision_round[static_cast<std::size_t>(p)], 0);
    EXPECT_EQ(*outcome.decisions[static_cast<std::size_t>(p)], p + 1);
  }
  EXPECT_EQ(outcome.last_decision_round(), 0);
}

TEST(Simulator, UndecidedReported) {
  RunPrefix prefix;
  prefix.inputs = {1, 2};
  prefix.graphs = {Digraph::complete(2)};
  const ConsensusOutcome outcome = simulate(DecideAtRound{5}, prefix);
  EXPECT_FALSE(outcome.all_decided());
  EXPECT_EQ(outcome.last_decision_round(), -1);
}

// Full information in the simulator computes exactly the interned views of
// the offline prefix computation.
TEST(Simulator, FullInfoMatchesOfflineViews) {
  auto interner = std::make_shared<ViewInterner>();
  FullInfoAlgorithm algo(interner);
  const auto graphs = all_graphs(3);
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    RunPrefix prefix;
    prefix.inputs = {static_cast<Value>(rng() % 2),
                     static_cast<Value>(rng() % 2),
                     static_cast<Value>(rng() % 2)};
    for (int t = 0; t < 4; ++t) {
      prefix.graphs.push_back(graphs[rng() % graphs.size()]);
    }
    // Run the algorithm manually to capture final states.
    std::vector<FullInfoAlgorithm::State> states;
    for (int p = 0; p < 3; ++p) {
      states.push_back(
          algo.init(p, prefix.inputs[static_cast<std::size_t>(p)]));
    }
    for (int t = 1; t <= prefix.length(); ++t) {
      const Digraph& g = prefix.graphs[static_cast<std::size_t>(t - 1)];
      std::vector<ViewId> sent;
      for (int p = 0; p < 3; ++p) {
        sent.push_back(algo.message(states[static_cast<std::size_t>(p)]));
      }
      for (int q = 0; q < 3; ++q) {
        std::vector<std::optional<ViewId>> received(3);
        for (int s = 0; s < 3; ++s) {
          if (g.has_edge(s, q)) received[static_cast<std::size_t>(s)] = sent[static_cast<std::size_t>(s)];
        }
        algo.step(states[static_cast<std::size_t>(q)], t, received);
      }
    }
    const ViewVector offline = interner->of_prefix(prefix);
    for (int p = 0; p < 3; ++p) {
      EXPECT_EQ(states[static_cast<std::size_t>(p)].view,
                offline[static_cast<std::size_t>(p)]);
    }
  }
}

// ------------------------------------------------------------------ spec

TEST(Verify, DetectsAgreementViolation) {
  ConsensusOutcome outcome;
  outcome.decisions = {Value{0}, Value{1}};
  outcome.decision_round = {1, 1};
  const ConsensusCheck check = check_consensus(outcome, {0, 1});
  EXPECT_TRUE(check.termination);
  EXPECT_FALSE(check.agreement);
  EXPECT_FALSE(check.ok());
}

TEST(Verify, DetectsValidityViolation) {
  ConsensusOutcome outcome;
  outcome.decisions = {Value{1}, Value{1}};
  outcome.decision_round = {1, 1};
  const ConsensusCheck check = check_consensus(outcome, {0, 0});
  EXPECT_TRUE(check.agreement);
  EXPECT_FALSE(check.validity);
}

TEST(Verify, DetectsNonTermination) {
  ConsensusOutcome outcome;
  outcome.decisions = {Value{1}, std::nullopt};
  outcome.decision_round = {1, -1};
  const ConsensusCheck check = check_consensus(outcome, {1, 1});
  EXPECT_FALSE(check.termination);
}

TEST(Verify, AcceptsCorrectOutcome) {
  ConsensusOutcome outcome;
  outcome.decisions = {Value{1}, Value{1}, Value{1}};
  outcome.decision_round = {0, 2, 1};
  const ConsensusCheck check = check_consensus(outcome, {1, 0, 1});
  EXPECT_TRUE(check.ok()) << check.detail;
}

}  // namespace
}  // namespace topocon
