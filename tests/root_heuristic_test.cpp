// Cross-validation of the broadcaster-intersection heuristic (CGP-inspired
// baseline, analysis/root_heuristic.hpp) against the topological checker.
#include <random>

#include <gtest/gtest.h>

#include "adversary/oblivious.hpp"
#include "analysis/root_heuristic.hpp"
#include "core/solvability.hpp"
#include "adversary/sampler.hpp"
#include "graph/enumerate.hpp"
#include "runtime/simulator.hpp"
#include "runtime/universal_runner.hpp"
#include "runtime/verify.hpp"

namespace topocon {
namespace {

SolvabilityVerdict checker_verdict(int n, std::vector<Digraph> alphabet,
                                   int max_depth,
                                   std::size_t max_states = 2'000'000) {
  const ObliviousAdversary ma(n, std::move(alphabet), "xval");
  SolvabilityOptions options;
  options.max_depth = max_depth;
  options.max_states = max_states;
  options.build_table = false;
  return check_solvability(ma, options).verdict;
}

// Exhaustive n = 2: all 15 nonempty alphabets over {empty, <-, ->, <->}.
TEST(RootHeuristic, ExhaustiveN2) {
  const auto graphs = all_graphs(2);
  ASSERT_EQ(graphs.size(), 4u);
  for (unsigned mask = 1; mask < 16; ++mask) {
    std::vector<Digraph> alphabet;
    for (int i = 0; i < 4; ++i) {
      if ((mask >> i) & 1u) alphabet.push_back(graphs[static_cast<std::size_t>(i)]);
    }
    const bool heuristic = root_intersection_heuristic(alphabet).solvable;
    const SolvabilityVerdict verdict = checker_verdict(2, alphabet, 6);
    if (heuristic) {
      EXPECT_EQ(verdict, SolvabilityVerdict::kSolvable) << "mask " << mask;
    } else {
      EXPECT_EQ(verdict, SolvabilityVerdict::kNotSeparated)
          << "mask " << mask;
    }
  }
}

// Randomized n = 3 suite. The broadcaster-intersection heuristic is exact
// for n = 2 but provably diverges from the truth for n = 3 in BOTH
// directions (the beta-relation of the full CGP theorem is neither
// implied by nor implies broadcaster intersection). This suite documents
// that: it counts both disagreement kinds against the topological
// checker, whose SOLVABLE verdicts are machine-verified certificates.
TEST(RootHeuristic, RandomizedN3DisagreementCensus) {
  std::mt19937_64 rng(4242);
  const auto graphs = all_graphs(3);
  int optimistic = 0;   // heuristic solvable, checker merged
  int pessimistic = 0;  // heuristic unsolvable, checker certified
  for (int trial = 0; trial < 60; ++trial) {
    const int size = 1 + static_cast<int>(rng() % 3);
    std::vector<Digraph> alphabet;
    for (int k = 0; k < size; ++k) {
      alphabet.push_back(graphs[rng() % graphs.size()]);
    }
    const bool heuristic = root_intersection_heuristic(alphabet).solvable;
    const SolvabilityVerdict verdict =
        checker_verdict(3, alphabet, 4, 4'000'000);
    if (heuristic && verdict == SolvabilityVerdict::kNotSeparated) {
      ++optimistic;
    }
    if (!heuristic && verdict == SolvabilityVerdict::kSolvable) {
      ++pessimistic;
    }
  }
  // Both failure modes are real and present in this seeded suite.
  EXPECT_GE(optimistic, 1);
  EXPECT_GE(pessimistic, 1);
}

// Pinned counterexample 1 (heuristic too optimistic): broadcaster classes
// {G1, G2} (common broadcaster 1) and {G3} (broadcaster 0) suggest
// solvability, but the valence regions stay in one merged component
// through depth 7.
TEST(RootHeuristic, KnownOptimisticCounterexampleN3) {
  const std::vector<Digraph> alphabet = {
      Digraph::from_edges(3, {{1, 0}, {1, 2}, {2, 0}, {2, 1}}),
      Digraph::from_edges(3, {{0, 2}, {1, 0}, {2, 0}}),
      Digraph::from_edges(3, {{0, 2}, {2, 1}}),
  };
  EXPECT_TRUE(root_intersection_heuristic(alphabet).solvable);
  EXPECT_EQ(checker_verdict(3, alphabet, 5, 4'000'000),
            SolvabilityVerdict::kNotSeparated);
}

// Pinned counterexample 2 (heuristic too pessimistic): the heuristic's
// single class has empty broadcaster intersection, yet the checker
// certifies consensus -- and the certificate survives exhaustive
// simulation (integration-style replay below).
TEST(RootHeuristic, KnownPessimisticCounterexampleN3) {
  const std::vector<Digraph> alphabet = {
      Digraph::from_edges(3, {{0, 1}, {0, 2}, {1, 0}, {1, 2}}),
      Digraph::from_edges(3, {{0, 1}, {0, 2}, {1, 2}, {2, 0}}),
      Digraph::from_edges(3, {{0, 1}, {1, 0}, {2, 0}}),
  };
  EXPECT_FALSE(root_intersection_heuristic(alphabet).solvable);

  const ObliviousAdversary ma(3, alphabet, "pessimistic-cx");
  SolvabilityOptions options;
  options.max_depth = 4;
  options.max_states = 4'000'000;
  const SolvabilityResult result = check_solvability(ma, options);
  ASSERT_EQ(result.verdict, SolvabilityVerdict::kSolvable);
  const UniversalAlgorithm algo(*result.table);
  for (const auto& letters :
       enumerate_letter_sequences(ma, result.certified_depth)) {
    for (const InputVector& inputs : all_input_vectors(3, 2)) {
      RunPrefix prefix;
      prefix.inputs = inputs;
      prefix.graphs = letters_to_graphs(ma, letters);
      const ConsensusCheck check =
          check_consensus(simulate(algo, prefix), inputs);
      ASSERT_TRUE(check.ok()) << prefix.to_string() << check.detail;
    }
  }
}

TEST(RootHeuristic, ClassStructureOnLossyLink) {
  const auto lossy = lossy_link_graphs();
  const RootHeuristicResult full = root_intersection_heuristic(lossy);
  EXPECT_FALSE(full.solvable);
  ASSERT_EQ(full.class_members.size(), 1u);  // <-> bridges <- and ->
  EXPECT_EQ(full.class_broadcasters[0], NodeMask{0});

  const RootHeuristicResult pair =
      root_intersection_heuristic({lossy[0], lossy[1]});
  EXPECT_TRUE(pair.solvable);
  EXPECT_EQ(pair.class_members.size(), 2u);  // disjoint broadcasters
}

TEST(RootHeuristic, NonRootedGraphPoisonsItsClass) {
  EXPECT_FALSE(root_intersection_heuristic({Digraph::empty(2)}).solvable);
  // Even together with the complete graph, the non-rooted empty graph
  // forms a broadcaster-free class of its own: unsolvable (the adversary
  // can play silence forever).
  const RootHeuristicResult r = root_intersection_heuristic(
      {Digraph::empty(3), Digraph::complete(3)});
  EXPECT_FALSE(r.solvable);
}

}  // namespace
}  // namespace topocon
