// Differential harness over the seeded composed-adversary fuzzer
// (scenario/fuzz.hpp): every fuzzed point is run through the oracle
// checker (check_solvability_oracle -- the single-scan reference
// expansion), the serial FrontierEngine checker, and the chunk-sharded
// parallel checker at several chunk sizes and thread counts, and ALL of
// them must agree bit for bit on the verdict, the certified depth, and
// every per-depth statistic including the interned-view counts. Failure
// messages carry the seed and the point's replayable spec label, so any
// divergence reproduces with
//   topocon fuzz --seed=SEED --count=COUNT --n=N
// independently of this binary.
//
// Coverage: 40 points at n = 2 (seed 6) and 10 points at n = 3 (seed 7)
// -- at least 50 composed points in total, per the harness's acceptance
// bar -- plus the fuzzer's own determinism and validation contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/compose.hpp"
#include "adversary/family.hpp"
#include "core/solvability.hpp"
#include "runtime/sweep/parallel_solver.hpp"
#include "runtime/sweep/thread_pool.hpp"
#include "scenario/fuzz.hpp"

namespace topocon {
namespace {

std::string replay_hint(const scenario::FuzzSpec& spec) {
  return "replay: topocon fuzz --seed=" + std::to_string(spec.seed) +
         " --count=" + std::to_string(spec.count) +
         " --n=" + std::to_string(spec.n) +
         " --depth=" + std::to_string(spec.depth);
}

/// Asserts result equality on every field of the determinism contract.
void expect_same_result(const SolvabilityResult& oracle,
                        const SolvabilityResult& candidate,
                        const std::string& context) {
  EXPECT_EQ(candidate.verdict, oracle.verdict) << context;
  EXPECT_EQ(candidate.certified_depth, oracle.certified_depth) << context;
  EXPECT_EQ(candidate.closure_only, oracle.closure_only) << context;
  ASSERT_EQ(candidate.per_depth.size(), oracle.per_depth.size()) << context;
  for (std::size_t d = 0; d < oracle.per_depth.size(); ++d) {
    const DepthStats& expected = oracle.per_depth[d];
    const DepthStats& got = candidate.per_depth[d];
    EXPECT_EQ(got, expected)
        << context << " depth " << expected.depth << ": "
        << got.num_leaf_classes << " classes/" << got.num_components
        << " components/" << got.interner_views << " views vs oracle "
        << expected.num_leaf_classes << "/" << expected.num_components
        << "/" << expected.interner_views;
  }
}

/// The harness: fuzz `spec`, then demand oracle == serial == parallel at
/// threads x chunk in {1, 2, 8} x {1, default} for every point.
void run_differential(const scenario::FuzzSpec& spec) {
  const std::vector<FamilyPoint> points = scenario::fuzz_points(spec);
  ASSERT_EQ(points.size(), static_cast<std::size_t>(spec.count));
  const SolvabilityOptions options = scenario::fuzz_solve_options(spec.n);
  sweep::ThreadPool pool1(1);
  sweep::ThreadPool pool2(2);
  sweep::ThreadPool pool8(8);
  sweep::ThreadPool* const pools[] = {&pool1, &pool2, &pool8};

  for (std::size_t i = 0; i < points.size(); ++i) {
    const FamilyPoint& point = points[i];
    const std::string context = "seed " + std::to_string(spec.seed) +
                                " point " + std::to_string(i) + " [" +
                                family_point_label(point) + "] -- " +
                                replay_hint(spec);
    const auto adversary = make_family_adversary(point);
    const SolvabilityResult oracle =
        check_solvability_oracle(*adversary, options);

    expect_same_result(oracle, check_solvability(*adversary, options),
                       context + " (serial FrontierEngine)");
    for (sweep::ThreadPool* const pool : pools) {
      for (const std::size_t chunk_states : {std::size_t{1}, std::size_t{0}}) {
        sweep::ShardingOptions sharding;
        sharding.chunk_states = chunk_states;
        expect_same_result(
            oracle,
            sweep::parallel_check_solvability(*adversary, options, *pool,
                                              {}, sharding),
            context + " (parallel threads=" +
                std::to_string(pool->num_threads()) +
                " chunk=" + std::to_string(chunk_states) + ")");
      }
    }
  }
}

TEST(FuzzDifferential, FortyComposedPointsAtTwoProcesses) {
  run_differential({.seed = 6, .n = 2, .depth = 2, .count = 40});
}

TEST(FuzzDifferential, TenComposedPointsAtThreeProcesses) {
  run_differential({.seed = 7, .n = 3, .depth = 2, .count = 10});
}

TEST(FuzzPoints, ExpansionIsDeterministicAndReplayable) {
  const scenario::FuzzSpec spec{.seed = 6, .n = 2, .depth = 2, .count = 8};
  const std::vector<FamilyPoint> first = scenario::fuzz_points(spec);
  const std::vector<FamilyPoint> second = scenario::fuzz_points(spec);
  ASSERT_EQ(first.size(), 8u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    // Same spec -> byte-identical points...
    EXPECT_EQ(first[i].family, second[i].family) << i;
    EXPECT_EQ(first[i].n, 2) << i;
    EXPECT_EQ(first[i].param, 0) << i;
    // ...each replayable from its label alone: "composed:" + label is a
    // valid FamilyPoint naming the same adversary.
    const FamilyPoint replayed{
        std::string(kComposedPrefix) + family_point_label(first[i]),
        first[i].n, 0};
    EXPECT_EQ(replayed.family, first[i].family) << i;
    EXPECT_NO_THROW(make_family_adversary(replayed)) << i;
  }
}

TEST(FuzzPoints, DistinctSeedsDiverge) {
  const std::vector<FamilyPoint> a =
      scenario::fuzz_points({.seed = 6, .n = 2, .depth = 2, .count = 8});
  const std::vector<FamilyPoint> b =
      scenario::fuzz_points({.seed = 7, .n = 2, .depth = 2, .count = 8});
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_difference = any_difference || a[i].family != b[i].family;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FuzzPoints, PointsAreDistinctAndTopLevelComposed) {
  const std::vector<FamilyPoint> points =
      scenario::fuzz_points({.seed = 11, .n = 2, .depth = 3, .count = 16});
  std::vector<std::string> families;
  for (const FamilyPoint& point : points) {
    EXPECT_TRUE(is_composed_family(point.family));
    // Top-level nodes are combinators, never bare grid leaves.
    const ComposeSpec spec =
        parse_compose_spec(composed_spec_of(point.family));
    EXPECT_NE(spec.kind, ComposeSpec::Kind::kLeaf);
    families.push_back(point.family);
  }
  std::sort(families.begin(), families.end());
  EXPECT_EQ(std::adjacent_find(families.begin(), families.end()),
            families.end())
      << "duplicate fuzzed point";
}

TEST(FuzzPoints, RejectsInvalidSpecs) {
  EXPECT_THROW(scenario::fuzz_points({.seed = 1, .n = 2, .count = 0}),
               std::invalid_argument);
  EXPECT_THROW(scenario::fuzz_points({.seed = 1, .n = 1, .count = 4}),
               std::invalid_argument);
  EXPECT_THROW(
      scenario::fuzz_points({.seed = 1, .n = 2, .depth = -1, .count = 4}),
      std::invalid_argument);
}

}  // namespace
}  // namespace topocon
