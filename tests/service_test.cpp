// The serve subsystem: SPSC event ring semantics, verdict-cache LRU
// behavior, the canonical memoization key, protocol framing, and the
// end-to-end acceptance criteria of the daemon -- byte-identical cached
// artifacts without recompute, clean overload rejection, and a slow
// subscriber that loses events instead of stalling the sweep.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "gtest/gtest.h"
#include "runtime/sweep/json.hpp"
#include "scenario/scenario.hpp"
#include "service/cache.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/ring.hpp"
#include "service/server.hpp"

namespace topocon {
namespace {

using service::EventRing;
using service::Request;
using service::ServeClient;
using service::ServeEvent;
using service::ServeOptions;
using service::Server;
using service::StatsSnapshot;
using service::VerdictCache;

ServeEvent event_numbered(std::uint64_t n) {
  ServeEvent event;
  event.submission = n;
  event.kind = ServeEvent::Kind::kChunk;
  event.a = n * 10;
  return event;
}

TEST(EventRing, RoundTripsInOrder) {
  EventRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(ring.push(event_numbered(i)));
  }
  ServeEvent event;
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring.pop(&event));
    EXPECT_EQ(event.submission, i);
    EXPECT_EQ(event.a, i * 10);
  }
  EXPECT_FALSE(ring.pop(&event));
  EXPECT_EQ(ring.drops(), 0u);
}

TEST(EventRing, OverwritesOldestWhenFullAndCountsDrops) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) ring.push(event_numbered(i));
  EXPECT_EQ(ring.drops(), 6u);
  // The newest window survives: 6..9.
  ServeEvent event;
  for (std::uint64_t expected = 6; expected < 10; ++expected) {
    ASSERT_TRUE(ring.pop(&event));
    EXPECT_EQ(event.submission, expected);
  }
  EXPECT_FALSE(ring.pop(&event));
}

TEST(EventRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventRing(1).capacity(), 2u);
  EXPECT_EQ(EventRing(5).capacity(), 8u);
  EXPECT_EQ(EventRing(64).capacity(), 64u);
}

TEST(VerdictCache, LruEvictionAndCounters) {
  VerdictCache cache(/*max_entries=*/2, /*max_bytes=*/1 << 20);
  EXPECT_EQ(cache.find("a"), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.insert("a", "AAAA");
  cache.insert("b", "BBBB");
  ASSERT_NE(cache.find("a"), nullptr);  // promotes a over b
  EXPECT_EQ(*cache.find("a"), "AAAA");
  cache.insert("c", "CCCC");  // evicts b, the LRU entry
  EXPECT_EQ(cache.find("b"), nullptr);
  ASSERT_NE(cache.find("c"), nullptr);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.bytes(), 8u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.hits(), 3u);
}

TEST(VerdictCache, ByteLimitEvictsAndRejectsOversized) {
  VerdictCache cache(/*max_entries=*/10, /*max_bytes=*/10);
  cache.insert("big", std::string(11, 'x'));  // larger than the whole cache
  EXPECT_EQ(cache.entries(), 0u);
  cache.insert("a", std::string(6, 'a'));
  cache.insert("b", std::string(6, 'b'));  // 12 bytes total: evicts a
  EXPECT_EQ(cache.find("a"), nullptr);
  ASSERT_NE(cache.find("b"), nullptr);
  EXPECT_EQ(cache.bytes(), 6u);
}

// --- Satellite: the memoization key -----------------------------------

/// Serialization-irrelevant differences -- member order on the wire --
/// collapse onto one canonical form: parse(reordered) re-serializes to
/// the exact canonical bytes, so both phrasings share a cache key.
TEST(MemoKey, CanonicalJsonIsAFixedPointUnderReordering) {
  SolvabilityOptions options;
  options.max_depth = 5;
  options.build_table = false;
  const api::Query query = api::solvability({"lossy_link", 2, 3}, options);
  const std::string canonical = api::query_to_string(query);

  sweep::JsonValue reordered =
      sweep::JsonReader::parse(canonical);
  ASSERT_TRUE(reordered.is_object());
  std::reverse(reordered.members.begin(), reordered.members.end());
  std::ostringstream shuffled;
  sweep::JsonWriter writer(shuffled, sweep::JsonStyle::kCompact);
  sweep::write_json_value(writer, reordered);
  ASSERT_NE(shuffled.str(), canonical);  // the reorder really reordered

  const api::Query reparsed = api::parse_query(shuffled.str());
  EXPECT_EQ(api::query_to_string(reparsed), canonical);

  const api::Plan plan_a{"run", {query}};
  const api::Plan plan_b{"run", {reparsed}};
  EXPECT_EQ(service::plan_cache_key(plan_a), service::plan_cache_key(plan_b));
}

/// Distinct queries never collide: across families, parameters, query
/// kinds, and solver options, every key is unique.
TEST(MemoKey, DistinctQueriesNeverCollide) {
  std::vector<api::Query> queries;
  for (int mask = 1; mask <= 7; ++mask) {
    queries.push_back(api::solvability({"lossy_link", 2, mask}));
  }
  for (int f = 0; f <= 2; ++f) {
    queries.push_back(api::solvability({"omission", 2, f}));
  }
  for (int p = 1; p <= 3; ++p) {
    queries.push_back(api::solvability({"heard_of_rounds", 2, p}));
  }
  SolvabilityOptions deep;
  deep.max_depth = 7;
  queries.push_back(api::solvability({"lossy_link", 2, 3}, deep));
  SolvabilityOptions strong = deep;
  strong.strong_validity = true;
  queries.push_back(api::solvability({"lossy_link", 2, 3}, strong));
  queries.push_back(api::decision_table({"lossy_link", 2, 3}));
  AnalysisOptions series;
  series.depth = 3;
  queries.push_back(api::depth_series({"lossy_link", 2, 3}, series));
  AnalysisOptions deeper_series;
  deeper_series.depth = 4;
  queries.push_back(api::depth_series({"lossy_link", 2, 3}, deeper_series));

  std::set<std::string> keys;
  for (const api::Query& query : queries) {
    keys.insert(service::plan_cache_key(api::Plan{"run", {query}}));
  }
  EXPECT_EQ(keys.size(), queries.size());
  // The plan name is part of the key too: a renamed plan is a new entry.
  keys.insert(service::plan_cache_key(api::Plan{"other", {queries[0]}}));
  EXPECT_EQ(keys.size(), queries.size() + 1);
}

// --- Protocol framing --------------------------------------------------

TEST(Protocol, VersionLineNamesEverySchema) {
  const std::string line = service::version_line();
  EXPECT_NE(line.find("topocon-sweep-v1"), std::string::npos);
  EXPECT_NE(line.find("topocon-sweep-ckpt-v1"), std::string::npos);
  EXPECT_NE(line.find("topocon-bench-baseline-v1"), std::string::npos);
  EXPECT_NE(line.find("topocon-serve-v1"), std::string::npos);
  EXPECT_NE(line.find("serve protocol 1"), std::string::npos);
}

TEST(Protocol, ParsesScenarioSubmit) {
  const Request request = service::parse_request(
      R"({"op":"submit","scenario":"lossy-link-atlas","param_min":2,"param_max":3})");
  EXPECT_EQ(request.op, Request::Op::kSubmit);
  EXPECT_EQ(request.scenario, "lossy-link-atlas");
  EXPECT_EQ(request.overrides.param_min, 2);
  EXPECT_EQ(request.overrides.param_max, 3);
  EXPECT_FALSE(request.overrides.n.has_value());
}

TEST(Protocol, ParsesExplicitQuerySubmit) {
  const api::Query query = api::solvability({"omission", 2, 1});
  const Request request = service::parse_request(
      R"({"op":"submit","name":"mine","queries":[)" +
      api::query_to_string(query) + "]}");
  EXPECT_EQ(request.name, "mine");
  ASSERT_EQ(request.queries.size(), 1u);
  EXPECT_EQ(api::query_to_string(request.queries[0]),
            api::query_to_string(query));
}

TEST(Protocol, RejectsMalformedRequests) {
  EXPECT_THROW(service::parse_request("not json"), std::runtime_error);
  EXPECT_THROW(service::parse_request(R"({"op":"frobnicate"})"),
               std::runtime_error);
  // Mixing the two submit forms, or naming neither.
  EXPECT_THROW(
      service::parse_request(
          R"({"op":"submit","scenario":"atlas","name":"x","queries":[]})"),
      std::runtime_error);
  EXPECT_THROW(service::parse_request(R"({"op":"submit"})"),
               std::runtime_error);
  EXPECT_THROW(
      service::parse_request(R"({"op":"submit","scenario":"a","bogus":1})"),
      std::runtime_error);
  EXPECT_THROW(service::parse_request(R"({"op":"status"})"),
               std::runtime_error);
  EXPECT_THROW(service::parse_request(R"({"op":"cancel"})"),
               std::runtime_error);
}

// --- End-to-end daemon tests ------------------------------------------

std::string unique_socket_path(const char* tag) {
  static int counter = 0;
  return "/tmp/topocon-serve-test-" + std::to_string(getpid()) + "-" +
         std::to_string(counter++) + "-" + tag + ".sock";
}

/// Runs a Server on a background thread for one test's lifetime.
class ServerHarness {
 public:
  explicit ServerHarness(ServeOptions options)
      : path_(options.socket_path), server_(std::move(options)) {
    thread_ = std::thread([this] { exit_code_ = server_.run(); });
  }

  ~ServerHarness() {
    server_.request_stop();
    if (thread_.joinable()) thread_.join();
  }

  /// Connects, retrying until the listener is up.
  ServeClient connect() {
    for (int attempt = 0; attempt < 100; ++attempt) {
      try {
        return ServeClient(path_);
      } catch (const std::runtime_error&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    return ServeClient(path_);  // last try; throws the real error
  }

  Server& server() { return server_; }
  int exit_code() const { return exit_code_; }
  void join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::string path_;
  Server server_;
  std::thread thread_;
  int exit_code_ = -1;
};

sweep::JsonValue parse_frame(const std::string& line) {
  return sweep::JsonReader::parse(line);
}

/// Reads frames until one with `op`, failing the test on error frames.
sweep::JsonValue read_until(ServeClient& client, const std::string& op) {
  for (int i = 0; i < 10000; ++i) {
    const sweep::JsonValue frame = parse_frame(client.read_line());
    const std::string& got = frame.at("op").as_string();
    if (got == op) return frame;
    if (got == "error") {
      ADD_FAILURE() << "server error: " << frame.at("message").as_string();
      return frame;
    }
  }
  ADD_FAILURE() << "frame " << op << " never arrived";
  return {};
}

std::string submit_scenario_line(const char* scenario, int param_min,
                                 int param_max) {
  std::ostringstream out;
  sweep::JsonWriter writer(out, sweep::JsonStyle::kCompact);
  writer.begin_object();
  writer.member("op", "submit");
  writer.member("scenario", scenario);
  writer.member("param_min", param_min);
  writer.member("param_max", param_max);
  writer.end_object();
  return out.str();
}

/// The acceptance criterion: a submitted scenario's artifact is
/// byte-identical to a direct Session run, the repeat is served from the
/// cache (counter-proven: one sweep executed, one cache hit), and the
/// cached bytes equal the computed ones. Also proves scenario submits
/// and explicit canonical-query submits share one cache entry.
TEST(ServeEndToEnd, CacheHitReturnsIdenticalBytesWithoutRecompute) {
  ServeOptions options;
  options.socket_path = unique_socket_path("cache");
  ServerHarness harness(std::move(options));
  ServeClient client = harness.connect();
  EXPECT_EQ(parse_frame(client.hello()).at("schema").as_string(),
            "topocon-serve-v1");
  EXPECT_EQ(parse_frame(client.hello()).at("protocol").as_int(), 1);

  // What `topocon run lossy-link-atlas --param-min=1 --param-max=2
  // --json=...` would write, computed directly on a fresh Session.
  const scenario::Scenario* s = scenario::find_scenario("lossy-link-atlas");
  ASSERT_NE(s, nullptr);
  scenario::GridOverrides overrides;
  overrides.param_min = 1;
  overrides.param_max = 2;
  const api::Plan plan = scenario::expand_scenario(*s, overrides);
  api::Session session({.record_global = false});
  session.run(plan.name, plan.queries);
  const std::string expected =
      service::render_artifact(plan.name, session.history().back().second);

  client.send_line(submit_scenario_line("lossy-link-atlas", 1, 2));
  sweep::JsonValue accepted = read_until(client, "accepted");
  EXPECT_FALSE(accepted.at("cached").as_bool());
  sweep::JsonValue result = read_until(client, "result");
  EXPECT_FALSE(result.at("cached").as_bool());
  const std::string first = client.read_bytes(
      static_cast<std::size_t>(result.at("artifact_bytes").as_uint()));
  EXPECT_EQ(first, expected);

  // The repeat, phrased identically: answered from the cache.
  client.send_line(submit_scenario_line("lossy-link-atlas", 1, 2));
  accepted = read_until(client, "accepted");
  EXPECT_TRUE(accepted.at("cached").as_bool());
  result = read_until(client, "result");
  EXPECT_TRUE(result.at("cached").as_bool());
  const std::string second = client.read_bytes(
      static_cast<std::size_t>(result.at("artifact_bytes").as_uint()));
  EXPECT_EQ(second, first);

  // ... and phrased as explicit canonical queries: same key, same entry.
  std::ostringstream explicit_submit;
  sweep::JsonWriter writer(explicit_submit, sweep::JsonStyle::kCompact);
  writer.begin_object();
  writer.member("op", "submit");
  writer.member("name", plan.name);
  writer.key("queries");
  writer.begin_array();
  for (const api::Query& query : plan.queries) {
    sweep::write_json_value(writer, api::query_to_json(query));
  }
  writer.end_array();
  writer.end_object();
  client.send_line(explicit_submit.str());
  accepted = read_until(client, "accepted");
  EXPECT_TRUE(accepted.at("cached").as_bool());
  result = read_until(client, "result");
  client.read_bytes(
      static_cast<std::size_t>(result.at("artifact_bytes").as_uint()));

  // The counters prove no recompute: one executed sweep, two hits.
  const StatsSnapshot stats = harness.server().stats();
  EXPECT_EQ(stats.jobs_completed, 1u);
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_entries, 1u);
  EXPECT_EQ(stats.submits, 3u);

  client.send_line(R"({"op":"stats"})");
  const sweep::JsonValue frame = read_until(client, "stats");
  EXPECT_EQ(frame.at("cache_hits").as_uint(), 2u);
  EXPECT_EQ(frame.at("jobs_completed").as_uint(), 1u);
}

/// Admission control: with room for a single queued submission, firing
/// three distinct sweeps back to back must reject at least one with a
/// clean `overloaded` frame -- and every accepted one still completes.
TEST(ServeEndToEnd, OverloadedBeyondAdmissionLimit) {
  ServeOptions options;
  options.socket_path = unique_socket_path("overload");
  options.queue_limit = 1;
  ServerHarness harness(std::move(options));
  ServeClient client = harness.connect();

  // One write, three submit lines: the server processes them in one
  // pass, faster than any sweep can finish.
  client.send_line(submit_scenario_line("lossy-link-atlas", 1, 7) + "\n" +
                   submit_scenario_line("lossy-link-atlas", 1, 1) + "\n" +
                   submit_scenario_line("lossy-link-atlas", 2, 2));
  int accepted = 0;
  int overloaded = 0;
  std::vector<std::uint64_t> pending;
  while (accepted + overloaded < 3) {
    const sweep::JsonValue frame = parse_frame(client.read_line());
    const std::string& op = frame.at("op").as_string();
    if (op == "accepted") {
      ++accepted;
      pending.push_back(frame.at("id").as_uint());
    } else if (op == "overloaded") {
      ++overloaded;
      EXPECT_EQ(frame.at("limit").as_uint(), 1u);
    } else {
      FAIL() << "unexpected frame: " << op;
    }
  }
  EXPECT_GE(overloaded, 1);
  EXPECT_LE(accepted, 2);
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const sweep::JsonValue result = read_until(client, "result");
    client.read_bytes(
        static_cast<std::size_t>(result.at("artifact_bytes").as_uint()));
  }
  EXPECT_GE(harness.server().stats().rejected_overload, 1u);
}

/// The fan-out acceptance criterion: a subscriber that never reads loses
/// events (drop counter increments) while the sweep it watches runs to
/// completion undisturbed.
TEST(ServeEndToEnd, SlowSubscriberDropsEventsInsteadOfStalling) {
  ServeOptions options;
  options.socket_path = unique_socket_path("slowsub");
  options.ring_capacity = 2;  // minimal ring: overflow is immediate
  ServerHarness harness(std::move(options));

  ServeClient subscriber = harness.connect();
  subscriber.send_line(R"({"op":"subscribe"})");
  read_until(subscriber, "subscribed");
  // From here on the subscriber never reads: its ring fills and rolls.

  ServeClient submitter = harness.connect();
  submitter.send_line(submit_scenario_line("lossy-link-atlas", 1, 7));
  const sweep::JsonValue result = read_until(submitter, "result");
  const std::string artifact = submitter.read_bytes(
      static_cast<std::size_t>(result.at("artifact_bytes").as_uint()));
  EXPECT_FALSE(artifact.empty());  // the sweep finished despite the stall

  const StatsSnapshot stats = harness.server().stats();
  EXPECT_EQ(stats.subscribers, 1u);
  EXPECT_GT(stats.events_streamed, 0u);
  EXPECT_GT(stats.subscriber_drops, 0u);
}

/// A live subscriber receives well-formed event frames for the sweep.
TEST(ServeEndToEnd, SubscriberStreamsJobLifecycleEvents) {
  ServeOptions options;
  options.socket_path = unique_socket_path("events");
  ServerHarness harness(std::move(options));
  ServeClient client = harness.connect();
  client.send_line(R"({"op":"subscribe"})");
  read_until(client, "subscribed");
  client.send_line(submit_scenario_line("lossy-link-atlas", 3, 3));

  bool saw_start = false;
  bool saw_done = false;
  for (int i = 0; i < 10000; ++i) {
    const sweep::JsonValue frame = parse_frame(client.read_line());
    const std::string& op = frame.at("op").as_string();
    if (op == "result") {
      client.read_bytes(
          static_cast<std::size_t>(frame.at("artifact_bytes").as_uint()));
      break;
    }
    if (op != "event") continue;
    const std::string& kind = frame.at("kind").as_string();
    if (kind == "job_start") saw_start = true;
    if (kind == "job_done") {
      saw_done = true;
      EXPECT_EQ(frame.at("jobs_total").as_uint(), 1u);
    }
  }
  // The ring may roll chunk events at default capacity, but the sparse
  // lifecycle events of a one-job sweep always fit.
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_done);
}

TEST(ServeEndToEnd, StatusCancelAndErrors) {
  ServeOptions options;
  options.socket_path = unique_socket_path("status");
  ServerHarness harness(std::move(options));
  ServeClient client = harness.connect();

  client.send_line(R"({"op":"status","id":42})");
  sweep::JsonValue frame = parse_frame(client.read_line());
  EXPECT_EQ(frame.at("op").as_string(), "error");

  client.send_line(R"({"op":"cancel","id":42})");
  frame = parse_frame(client.read_line());
  EXPECT_EQ(frame.at("op").as_string(), "error");

  client.send_line(R"({"op":"submit","scenario":"no-such-scenario"})");
  frame = parse_frame(client.read_line());
  EXPECT_EQ(frame.at("op").as_string(), "error");
  EXPECT_NE(frame.at("message").as_string().find("unknown scenario"),
            std::string::npos);

  client.send_line(submit_scenario_line("lossy-link-atlas", 1, 1));
  frame = read_until(client, "accepted");
  const std::uint64_t id = frame.at("id").as_uint();
  frame = read_until(client, "result");
  client.read_bytes(
      static_cast<std::size_t>(frame.at("artifact_bytes").as_uint()));
  client.send_line("{\"op\":\"status\",\"id\":" + std::to_string(id) + "}");
  frame = read_until(client, "status");
  EXPECT_EQ(frame.at("state").as_string(), "done");
}

TEST(ServeEndToEnd, ShutdownDrainsAndExitsCleanly) {
  ServeOptions options;
  options.socket_path = unique_socket_path("shutdown");
  ServerHarness harness(std::move(options));
  ServeClient client = harness.connect();
  client.send_line(R"({"op":"shutdown"})");
  const sweep::JsonValue frame = parse_frame(client.read_line());
  EXPECT_EQ(frame.at("op").as_string(), "bye");
  harness.join();
  EXPECT_EQ(harness.exit_code(), 0);
}

}  // namespace
}  // namespace topocon
