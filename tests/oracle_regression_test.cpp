// Oracle regression tables: the paper results reproduced by this library,
// pinned as explicit EXPECT_EQ tables against BOTH the serial checker and
// the parallel sweep engine, so an engine or checker refactor cannot
// silently flip a reproduced ground truth. Sources: Santoro-Widmayer [21]
// and CGP [8] for the lossy link, [21, 22] for per-round omissions,
// Biely et al. [6] / Winkler et al. [23] for VSSC, Charron-Bost &
// Schiper [7] for Heard-Of.
#include <memory>

#include <gtest/gtest.h>

#include "adversary/family.hpp"
#include "analysis/oracles.hpp"
#include "api/api.hpp"
#include "core/solvability.hpp"

namespace topocon {
namespace {

struct PinnedRow {
  FamilyPoint point;
  SolvabilityVerdict verdict;
  int certified_depth;  // -1 when not solvable
};

void check_rows(const std::vector<PinnedRow>& rows,
                const SolvabilityOptions& options) {
  // Serial checker.
  for (const PinnedRow& row : rows) {
    const auto ma = make_family_adversary(row.point);
    const SolvabilityResult result = check_solvability(*ma, options);
    EXPECT_EQ(result.verdict, row.verdict) << family_point_label(row.point);
    EXPECT_EQ(result.certified_depth, row.certified_depth)
        << family_point_label(row.point);
  }
  // Parallel engine, all rows as one sweep through the api facade.
  api::Session session({.record_global = false});
  std::vector<api::Query> queries;
  for (const PinnedRow& row : rows) {
    queries.push_back(api::solvability(row.point, options));
  }
  const auto outcomes = session.run("oracle-regression", queries);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(outcomes[i].result.verdict, rows[i].verdict)
        << outcomes[i].label;
    EXPECT_EQ(outcomes[i].result.certified_depth, rows[i].certified_depth)
        << outcomes[i].label;
  }
}

// Santoro-Widmayer / CGP: over subsets of {<-, ->, <->}, consensus is
// impossible exactly for the full set. All six solvable subsets certify
// at depth 1.
TEST(OracleRegression, LossyLinkTable) {
  const std::vector<PinnedRow> rows = {
      {{"lossy_link", 2, 0b001}, SolvabilityVerdict::kSolvable, 1},
      {{"lossy_link", 2, 0b010}, SolvabilityVerdict::kSolvable, 1},
      {{"lossy_link", 2, 0b011}, SolvabilityVerdict::kSolvable, 1},
      {{"lossy_link", 2, 0b100}, SolvabilityVerdict::kSolvable, 1},
      {{"lossy_link", 2, 0b101}, SolvabilityVerdict::kSolvable, 1},
      {{"lossy_link", 2, 0b110}, SolvabilityVerdict::kSolvable, 1},
      {{"lossy_link", 2, 0b111}, SolvabilityVerdict::kNotSeparated, -1},
  };
  SolvabilityOptions options;
  options.max_depth = 6;
  options.build_table = false;
  check_rows(rows, options);
  // The oracle itself must agree with the pinned table.
  for (unsigned mask = 1; mask < 8; ++mask) {
    EXPECT_EQ(lossy_link_solvable(mask), mask != 0b111u);
  }
}

// Omission budgets: solvable iff f <= n - 2 (SW threshold [21, 22]).
// n = 2 certifies at depth 1 (f = 0 is the complete graph); n = 3
// certifies at depth 1 for f = 0 and at depth 2 for f = 1.
TEST(OracleRegression, OmissionThresholds) {
  SolvabilityOptions n2;
  n2.max_depth = 6;
  n2.build_table = false;
  check_rows({{{"omission", 2, 0}, SolvabilityVerdict::kSolvable, 1},
              {{"omission", 2, 1}, SolvabilityVerdict::kNotSeparated, -1},
              {{"omission", 2, 2}, SolvabilityVerdict::kNotSeparated, -1}},
             n2);
  SolvabilityOptions n3;
  n3.max_depth = 3;
  n3.max_states = 6'000'000;
  n3.build_table = false;
  check_rows({{{"omission", 3, 0}, SolvabilityVerdict::kSolvable, 1},
              {{"omission", 3, 1}, SolvabilityVerdict::kSolvable, 2},
              {{"omission", 3, 2}, SolvabilityVerdict::kNotSeparated, -1},
              {{"omission", 3, 3}, SolvabilityVerdict::kNotSeparated, -1}},
             n3);
  for (int f = 0; f <= 3; ++f) {
    EXPECT_EQ(omission_solvable(2, f), f <= 0);
    EXPECT_EQ(omission_solvable(3, f), f <= 1);
  }
}

// Heard-Of in-degree bounds: solvable iff k = n.
TEST(OracleRegression, HeardOfThresholds) {
  SolvabilityOptions n2;
  n2.max_depth = 5;
  n2.build_table = false;
  check_rows({{{"heard_of", 2, 1}, SolvabilityVerdict::kNotSeparated, -1},
              {{"heard_of", 2, 2}, SolvabilityVerdict::kSolvable, 1}},
             n2);
  SolvabilityOptions n3;
  n3.max_depth = 2;
  n3.max_states = 6'000'000;
  n3.build_table = false;
  check_rows({{{"heard_of", 3, 2}, SolvabilityVerdict::kNotSeparated, -1},
              {{"heard_of", 3, 3}, SolvabilityVerdict::kSolvable, 1}},
             n3);
}

// Windowed lossy link: the checker-discovered ablation -- impossible at
// w = 1 (oblivious lossy link), solvable with certificate depth 2 for
// every w >= 2.
TEST(OracleRegression, WindowedLossyLinkAblation) {
  SolvabilityOptions options;
  options.max_depth = 6;
  options.build_table = false;
  check_rows(
      {{{"windowed_lossy_link", 2, 1}, SolvabilityVerdict::kNotSeparated, -1},
       {{"windowed_lossy_link", 2, 2}, SolvabilityVerdict::kSolvable, 2},
       {{"windowed_lossy_link", 2, 3}, SolvabilityVerdict::kSolvable, 2},
       {{"windowed_lossy_link", 2, 4}, SolvabilityVerdict::kSolvable, 2}},
      options);
}

// VSSC: the prefix analysis only ever sees the (unsolvable) closure, so
// the verdict is NOT-SEPARATED for every stability -- including values
// where the adversary itself is solvable. This *is* the paper's Section
// 6.3 result; pin it so a refactor cannot accidentally "fix" it.
TEST(OracleRegression, VsscClosureStaysMerged) {
  SolvabilityOptions options;
  options.max_depth = 3;
  options.max_states = 4'000'000;
  options.build_table = false;
  check_rows({{{"vssc", 2, 1}, SolvabilityVerdict::kNotSeparated, -1},
              {{"vssc", 2, 6}, SolvabilityVerdict::kNotSeparated, -1},
              {{"vssc", 3, 1}, SolvabilityVerdict::kNotSeparated, -1}},
             options);
  // Oracle endpoints from the literature/library.
  EXPECT_EQ(vssc_solvable(2, 1), std::make_optional(false));
  EXPECT_EQ(vssc_solvable(2, 6), std::make_optional(true));
  EXPECT_EQ(vssc_solvable(3, 9), std::make_optional(true));
  EXPECT_EQ(vssc_solvable(3, 5), std::nullopt);
}

// Non-compact finite-loss: solvable adversary whose closure stays merged
// (Section 6.3, Figure 5); closure_only must be reported.
TEST(OracleRegression, FiniteLossClosureOnly) {
  const auto ma = make_family_adversary({"finite_loss", 2, 0});
  SolvabilityOptions options;
  options.max_depth = 4;
  options.build_table = false;
  const SolvabilityResult result = check_solvability(*ma, options);
  EXPECT_EQ(result.verdict, SolvabilityVerdict::kNotSeparated);
  EXPECT_TRUE(result.closure_only);
}

}  // namespace
}  // namespace topocon
