// Tests for the depth-t epsilon-approximation (Definition 6.2): component
// structure on the touchstone adversaries, the refinement laws of
// Lemma 6.3, state deduplication and multiplicity accounting, and
// consistency of the BFS with direct per-prefix computation.
#include <bit>
#include <memory>
#include <random>

#include <gtest/gtest.h>

#include "adversary/lossy_link.hpp"
#include "adversary/omission.hpp"
#include "core/epsilon_approx.hpp"
#include "ptg/reach.hpp"

namespace topocon {
namespace {

AnalysisOptions opts(int depth, bool keep = true) {
  AnalysisOptions o;
  o.depth = depth;
  o.keep_levels = keep;
  return o;
}

TEST(EpsilonApprox, LossyLinkPairSeparatesAtDepthOne) {
  const auto ma = make_lossy_link(0b011);  // {<-, ->}
  const DepthAnalysis analysis = analyze_depth(*ma, opts(1));
  EXPECT_TRUE(analysis.valence_separated);
  EXPECT_EQ(analysis.merged_components, 0);
  EXPECT_EQ(analysis.components.size(), 4u);
  EXPECT_TRUE(analysis.valent_broadcastable);
}

TEST(EpsilonApprox, LossyLinkFullStaysMerged) {
  const auto ma = make_lossy_link(0b111);  // {<-, ->, <->}
  for (int depth = 1; depth <= 5; ++depth) {
    const DepthAnalysis analysis = analyze_depth(*ma, opts(depth, false));
    EXPECT_FALSE(analysis.valence_separated) << "depth " << depth;
    EXPECT_GE(analysis.merged_components, 1) << "depth " << depth;
  }
}

TEST(EpsilonApprox, LossyLinkLeftBothSolvableByBroadcaster) {
  // {<-, <->}: process 1 is heard every round; separated and process 1 is
  // the broadcaster of every valent component.
  const auto ma = make_lossy_link(0b101);
  const DepthAnalysis analysis = analyze_depth(*ma, opts(1));
  EXPECT_TRUE(analysis.valence_separated);
  for (const ComponentInfo& info : analysis.components) {
    if (info.valence_mask != 0) {
      EXPECT_TRUE(mask_contains(info.broadcasters, 1));
    }
  }
}

TEST(EpsilonApprox, SingletonAlphabetSeparatesImmediately) {
  for (unsigned mask : {0b001u, 0b010u, 0b100u}) {
    const auto ma = make_lossy_link(mask);
    const DepthAnalysis analysis = analyze_depth(*ma, opts(2));
    EXPECT_TRUE(analysis.valence_separated) << mask;
    EXPECT_TRUE(analysis.valent_broadcastable) << mask;
  }
}

TEST(EpsilonApprox, DepthZeroIsFullyMergedForMultipleProcesses) {
  // At depth 0 only the inputs distinguish runs; flipping one coordinate
  // at a time keeps some process's view equal, so all input vectors form
  // one component containing both valences.
  const auto ma = make_lossy_link(0b111);
  const DepthAnalysis analysis = analyze_depth(*ma, opts(0));
  EXPECT_EQ(analysis.components.size(), 1u);
  EXPECT_FALSE(analysis.valence_separated);
}

// Lemma 6.3 (ii): epsilon-components refine as the depth grows -- the
// number of components is non-decreasing, and separation persists.
TEST(EpsilonApprox, ComponentsRefineWithDepth) {
  for (unsigned mask = 1; mask < 8; ++mask) {
    const auto ma = make_lossy_link(mask);
    auto interner = std::make_shared<ViewInterner>();
    std::size_t previous = 0;
    bool was_separated = false;
    for (int depth = 1; depth <= 4; ++depth) {
      const DepthAnalysis analysis =
          analyze_depth(*ma, opts(depth, false), interner);
      EXPECT_GE(analysis.components.size(), previous)
          << "subset " << mask << " depth " << depth;
      if (was_separated) {
        EXPECT_TRUE(analysis.valence_separated)
            << "separation must persist; subset " << mask;
      }
      previous = analysis.components.size();
      was_separated = analysis.valence_separated;
    }
  }
}

// Multiplicities add up to |inputs| * |alphabet|^depth for oblivious MAs.
TEST(EpsilonApprox, MultiplicityAccounting) {
  const auto ma = make_lossy_link(0b111);
  for (int depth = 0; depth <= 4; ++depth) {
    const DepthAnalysis analysis = analyze_depth(*ma, opts(depth, false));
    std::uint64_t total = 0;
    for (const PrefixState& leaf : analysis.leaves()) {
      total += leaf.multiplicity;
    }
    std::uint64_t expect = 4;  // binary inputs, n = 2
    for (int t = 0; t < depth; ++t) expect *= 3;
    EXPECT_EQ(total, expect) << "depth " << depth;
  }
}

// Every leaf's stored views and reach must match a from-scratch computation
// on a reconstructed concrete prefix.
TEST(EpsilonApprox, LeafStatesMatchReconstructedPrefixes) {
  const auto ma = make_omission_adversary(3, 2);
  const DepthAnalysis analysis = analyze_depth(*ma, opts(2));
  ASSERT_FALSE(analysis.truncated);
  std::mt19937_64 rng(1);
  const auto& leaves = analysis.leaves();
  for (int trial = 0; trial < 40; ++trial) {
    const int i = static_cast<int>(rng() % leaves.size());
    const auto prefix = reconstruct_prefix(*ma, analysis, i);
    ASSERT_TRUE(prefix.has_value());
    EXPECT_EQ(analysis.interner->of_prefix(*prefix),
              leaves[static_cast<std::size_t>(i)].views);
    EXPECT_EQ(reach_of_prefix(*prefix),
              leaves[static_cast<std::size_t>(i)].reach);
    EXPECT_EQ(prefix->inputs, leaves[static_cast<std::size_t>(i)].inputs);
  }
}

// Leaves sharing a view id must be in the same component, and components
// are minimal: the quotient graph on components has no cross edges.
TEST(EpsilonApprox, ComponentsAreViewClosedAndMinimal) {
  const auto ma = make_lossy_link(0b011);
  const DepthAnalysis analysis = analyze_depth(*ma, opts(3));
  const auto& leaves = analysis.leaves();
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    for (std::size_t j = i + 1; j < leaves.size(); ++j) {
      bool share = false;
      for (int p = 0; p < 2; ++p) {
        if (leaves[i].views[static_cast<std::size_t>(p)] ==
            leaves[j].views[static_cast<std::size_t>(p)]) {
          share = true;
        }
      }
      if (share) {
        EXPECT_EQ(analysis.leaf_component[i], analysis.leaf_component[j]);
      }
    }
  }
}

// The broadcaster field obeys Theorem 5.9 / Corollary 5.10: a broadcaster's
// input value is uniform across its component.
TEST(EpsilonApprox, BroadcasterInputsUniform) {
  const auto ma = make_omission_adversary(3, 1);
  const DepthAnalysis analysis = analyze_depth(*ma, opts(2));
  const auto& leaves = analysis.leaves();
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const auto& info =
        analysis.components[static_cast<std::size_t>(
            analysis.leaf_component[i])];
    NodeMask rest = info.broadcasters;
    while (rest != 0) {
      const int p = std::countr_zero(rest);
      rest &= rest - 1;
      // Compare against an arbitrary other leaf of the same component.
      for (std::size_t j = 0; j < leaves.size(); ++j) {
        if (analysis.leaf_component[j] == analysis.leaf_component[i]) {
          EXPECT_EQ(leaves[j].inputs[static_cast<std::size_t>(p)],
                    leaves[i].inputs[static_cast<std::size_t>(p)]);
        }
      }
    }
  }
}

TEST(EpsilonApprox, TruncationReportsCleanly) {
  const auto ma = make_omission_adversary(3, 6);  // alphabet of 64 graphs
  AnalysisOptions o = opts(4, false);
  o.max_states = 100;  // force overflow
  const DepthAnalysis analysis = analyze_depth(*ma, o);
  EXPECT_TRUE(analysis.truncated);
  EXPECT_LT(analysis.depth, 4);
  // The partial result is still a coherent analysis of the reached depth.
  EXPECT_FALSE(analysis.leaves().empty());
  EXPECT_EQ(analysis.leaf_component.size(), analysis.leaves().size());
}

TEST(EpsilonApprox, TernaryInputsSupported) {
  const auto ma = make_lossy_link(0b011);
  AnalysisOptions o = opts(2);
  o.num_values = 3;
  const DepthAnalysis analysis = analyze_depth(*ma, o);
  EXPECT_TRUE(analysis.valence_separated);
  // Three valent regions must exist.
  std::uint32_t seen = 0;
  for (const ComponentInfo& info : analysis.components) {
    seen |= info.valence_mask;
  }
  EXPECT_EQ(seen, 0b111u);
}

}  // namespace
}  // namespace topocon
