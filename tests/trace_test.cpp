// Tests for execution tracing: consistency with the plain simulator,
// knowledge-timeline correctness, and rendering.
#include <gtest/gtest.h>

#include "adversary/lossy_link.hpp"
#include "core/solvability.hpp"
#include "runtime/trace.hpp"
#include "runtime/universal_runner.hpp"

namespace topocon {
namespace {

TEST(Trace, MatchesPlainSimulation) {
  const auto ma = make_lossy_link(0b011);
  const SolvabilityResult result = check_solvability(*ma);
  ASSERT_TRUE(result.table.has_value());
  const UniversalAlgorithm algo(*result.table);
  RunPrefix prefix;
  prefix.inputs = {0, 1};
  prefix.graphs = {ma->graph(0), ma->graph(1), ma->graph(0)};
  const ExecutionTrace trace = trace_execution(algo, prefix);
  const ConsensusOutcome plain = simulate(algo, prefix);
  EXPECT_EQ(trace.outcome.decisions, plain.decisions);
  EXPECT_EQ(trace.outcome.decision_round, plain.decision_round);
  ASSERT_EQ(trace.rounds.size(), 3u);
}

TEST(Trace, KnowledgeTimelineMatchesReach) {
  const auto ma = make_lossy_link(0b011);
  const SolvabilityResult result = check_solvability(*ma);
  const UniversalAlgorithm algo(*result.table);
  RunPrefix prefix;
  prefix.inputs = {1, 0};
  prefix.graphs = {ma->graph(0), ma->graph(1)};
  const ExecutionTrace trace = trace_execution(algo, prefix);
  // Round 1 under "<-": process 0 hears process 1.
  EXPECT_EQ(trace.rounds[0].reach[0], NodeMask{0b11});
  EXPECT_EQ(trace.rounds[0].reach[1], NodeMask{0b10});
  // Full-prefix reach agrees with reach_of_prefix.
  EXPECT_EQ(trace.rounds.back().reach, reach_of_prefix(prefix));
}

TEST(Trace, DecisionEventsAppearExactlyOnce) {
  const auto ma = make_lossy_link(0b011);
  const SolvabilityResult result = check_solvability(*ma);
  const UniversalAlgorithm algo(*result.table);
  RunPrefix prefix;
  prefix.inputs = {0, 0};
  prefix.graphs = {ma->graph(1), ma->graph(1), ma->graph(0)};
  const ExecutionTrace trace = trace_execution(algo, prefix);
  int events = 0;
  for (const RoundTrace& round : trace.rounds) {
    events += static_cast<int>(round.decided_this_round.size());
    ASSERT_EQ(round.decided_this_round.size(),
              round.decision_values.size());
  }
  EXPECT_EQ(events, 2);  // both processes decide exactly once (round >= 1)
}

TEST(Trace, RenderingContainsRoundsAndDecisions) {
  const auto ma = make_lossy_link(0b011);
  const SolvabilityResult result = check_solvability(*ma);
  const UniversalAlgorithm algo(*result.table);
  RunPrefix prefix;
  prefix.inputs = {0, 1};
  prefix.graphs = {ma->graph(0)};
  const std::string text = trace_execution(algo, prefix).to_string();
  EXPECT_NE(text.find("round 1"), std::string::npos);
  EXPECT_NE(text.find("decides"), std::string::npos);
  EXPECT_NE(text.find("knows:"), std::string::npos);
}

}  // namespace
}  // namespace topocon
