// Unit tests for the chunked frontier engine (core/frontier.hpp): the
// engine must reproduce the single-scan reference expansion
// (expand_frontier) state for state at EVERY chunk size -- including the
// interner's id assignment order -- plus partition determinism, budget
// early-abort semantics, and the WordSeqIndex dedup table.
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/lossy_link.hpp"
#include "adversary/omission.hpp"
#include "core/frontier.hpp"

namespace topocon {
namespace {

/// Expands `depth` levels with the reference single-scan expansion.
std::vector<std::vector<PrefixState>> reference_levels(
    const MessageAdversary& adversary, const AnalysisOptions& options,
    ViewInterner& interner, int num_roots) {
  std::vector<std::vector<PrefixState>> levels;
  levels.push_back(
      initial_frontier(adversary, options, interner, 0, num_roots));
  for (int s = 1; s <= options.depth; ++s) {
    FrontierLevel level =
        expand_frontier(adversary, interner, levels.back(),
                        options.max_states, options.keep_levels);
    if (level.overflow) break;
    levels.push_back(std::move(level.states));
  }
  return levels;
}

void expect_states_equal(const std::vector<PrefixState>& a,
                         const std::vector<PrefixState>& b,
                         const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].inputs, b[i].inputs) << what << " state " << i;
    // Same interner insertion order => identical view ids, not merely
    // isomorphic ones. This is the strongest form of the determinism
    // contract and what makes absorb() merges bit-stable.
    EXPECT_EQ(a[i].views, b[i].views) << what << " state " << i;
    EXPECT_EQ(a[i].reach, b[i].reach) << what << " state " << i;
    EXPECT_EQ(a[i].adv_state, b[i].adv_state) << what << " state " << i;
    EXPECT_EQ(a[i].multiplicity, b[i].multiplicity)
        << what << " state " << i;
  }
}

TEST(WordSeqIndex, DedupsAndRetainsKeys) {
  WordSeqIndex index;
  const std::uint32_t a[] = {1, 2, 3};
  const std::uint32_t b[] = {1, 2, 4};
  const std::uint32_t c[] = {1, 2};
  bool inserted = false;
  EXPECT_EQ(index.intern(a, 3, &inserted), 0);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(index.intern(b, 3, &inserted), 1);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(index.intern(c, 2, &inserted), 2);  // prefix, distinct length
  EXPECT_TRUE(inserted);
  EXPECT_EQ(index.intern(a, 3, &inserted), 0);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(index.size(), 3u);
  EXPECT_EQ(index.count_of(2), 2u);
  EXPECT_EQ(index.words_of(1)[2], 4u);
}

TEST(WordSeqIndex, SurvivesGrowth) {
  WordSeqIndex index;
  bool inserted = false;
  for (std::uint32_t i = 0; i < 10'000; ++i) {
    const std::uint32_t key[] = {i, i * 7u + 1u};
    EXPECT_EQ(index.intern(key, 2, &inserted), static_cast<int>(i));
    EXPECT_TRUE(inserted);
  }
  for (std::uint32_t i = 0; i < 10'000; ++i) {
    const std::uint32_t key[] = {i, i * 7u + 1u};
    EXPECT_EQ(index.intern(key, 2, &inserted), static_cast<int>(i));
    EXPECT_FALSE(inserted);
  }
}

/// The table's FNV-1a over key words, replicated so tests can construct
/// probe collisions deliberately.
std::size_t fnv1a(const std::uint32_t* words, std::size_t count) {
  std::size_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < count; ++i) {
    h ^= words[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

TEST(WordSeqIndex, ProbeCollisionsResolveByFullKeyComparison) {
  // Single-word keys that land in the same slot of the initial 64-slot
  // table must linear-probe to distinct entries, and each must still be
  // found afterwards (the probe walks past foreign entries).
  std::vector<std::uint32_t> colliding;
  const std::size_t target = fnv1a(&colliding.emplace_back(0), 1) & 63;
  for (std::uint32_t w = 1; colliding.size() < 5; ++w) {
    if ((fnv1a(&w, 1) & 63) == target) colliding.push_back(w);
  }
  WordSeqIndex index;
  bool inserted = false;
  for (std::size_t i = 0; i < colliding.size(); ++i) {
    EXPECT_EQ(index.intern(&colliding[i], 1, &inserted),
              static_cast<int>(i));
    EXPECT_TRUE(inserted);
  }
  for (std::size_t i = 0; i < colliding.size(); ++i) {
    EXPECT_EQ(index.intern(&colliding[i], 1, &inserted),
              static_cast<int>(i));
    EXPECT_FALSE(inserted);
    EXPECT_EQ(index.words_of(static_cast<int>(i))[0], colliding[i]);
  }
}

TEST(WordSeqIndex, GrowthBoundaryKeepsIdsStable) {
  // The 64-slot table rehashes on the insert that would push the load
  // past 7/10 (the 45th entry). Ids and lookups must be unaffected on
  // both sides of the boundary.
  WordSeqIndex index;
  bool inserted = false;
  for (std::uint32_t i = 0; i < 44; ++i) {
    ASSERT_EQ(index.intern(&i, 1, &inserted), static_cast<int>(i));
  }
  for (std::uint32_t i = 44; i < 50; ++i) {  // crosses the rehash
    ASSERT_EQ(index.intern(&i, 1, &inserted), static_cast<int>(i));
    ASSERT_TRUE(inserted);
  }
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(index.intern(&i, 1, &inserted), static_cast<int>(i));
    EXPECT_FALSE(inserted);
  }
}

TEST(WordSeqIndex, DuplicateInsertsKeepOneEntry) {
  WordSeqIndex index;
  const std::uint32_t key[] = {7, 8, 9};
  bool inserted = false;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(index.intern(key, 3, &inserted), 0);
    EXPECT_EQ(inserted, i == 0);
  }
  EXPECT_EQ(index.size(), 1u);
}

TEST(WordSeqIndex, AppendNewExtendsTheEntryListInOrder) {
  // append_new is the dense expansion path's bulk append: the caller
  // already proved the key fresh, so the entry bypasses the probe table
  // but must round-trip through words_of/count_of like any other.
  WordSeqIndex index;
  bool inserted = false;
  const std::uint32_t first[] = {1, 2};
  ASSERT_EQ(index.intern(first, 2, &inserted), 0);
  const std::uint32_t second[] = {3, 4, 5};
  EXPECT_EQ(index.append_new(second, 3), 1);
  const std::uint32_t third[] = {6};
  EXPECT_EQ(index.append_new(third, 1), 2);
  EXPECT_EQ(index.size(), 3u);
  EXPECT_EQ(index.count_of(1), 3u);
  EXPECT_EQ(index.words_of(1)[2], 5u);
  EXPECT_EQ(index.count_of(2), 1u);
  EXPECT_EQ(index.words_of(2)[0], 6u);
  EXPECT_EQ(index.words_of(0)[0], 1u);  // pre-append entries untouched
}

TEST(FrontierEngine, MatchesReferenceExpansionLevelByLevel) {
  for (const unsigned mask : {0b011u, 0b111u}) {
    const auto ma = make_lossy_link(mask);
    AnalysisOptions options;
    options.depth = 4;
    options.keep_levels = false;
    ViewInterner reference_interner;
    const std::vector<std::vector<PrefixState>> reference =
        reference_levels(*ma, options, reference_interner, 4);

    ViewInterner interner;
    FrontierEngine engine(*ma, options, interner, 0, 4);
    expect_states_equal(reference[0], engine.frontier(), "level 0");
    for (std::size_t s = 1; s < reference.size(); ++s) {
      ASSERT_TRUE(engine.advance());
      expect_states_equal(reference[s], engine.frontier(), "level");
    }
    // Dedup-before-intern must produce the same interner content in the
    // same order as the reference's intern-per-emission scan.
    EXPECT_EQ(interner.size(), reference_interner.size());
  }
}

TEST(FrontierEngine, EveryChunkSizeYieldsIdenticalLevelsAndIds) {
  const auto ma = make_omission_adversary(2, 1);
  AnalysisOptions options;
  options.depth = 3;
  options.keep_levels = true;
  ViewInterner base_interner;
  FrontierEngine base(*ma, options, base_interner, 0, 4);
  while (base.level() < options.depth) ASSERT_TRUE(base.advance());

  for (const std::size_t chunk_states :
       {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
    ViewInterner interner;
    FrontierEngine engine(*ma, options, interner, 0, 4);
    while (engine.level() < options.depth) {
      ASSERT_TRUE(engine.advance(chunk_states));
    }
    ASSERT_EQ(engine.levels().size(), base.levels().size());
    for (std::size_t s = 0; s < base.levels().size(); ++s) {
      expect_states_equal(base.levels()[s], engine.levels()[s], "level");
    }
    EXPECT_EQ(engine.first_parent(), base.first_parent());
    EXPECT_EQ(engine.children(), base.children());
    EXPECT_EQ(engine.level_sizes(), base.level_sizes());
    EXPECT_EQ(interner.size(), base_interner.size());
  }
}

TEST(FrontierEngine, PartitionIsDeterministicAndCoversTheFrontier) {
  const auto ma = make_omission_adversary(2, 1);
  AnalysisOptions options;
  options.depth = 2;
  ViewInterner interner;
  FrontierEngine engine(*ma, options, interner, 0, 4);
  ASSERT_TRUE(engine.advance());
  ASSERT_TRUE(engine.advance());
  const std::size_t size = engine.frontier().size();
  ASSERT_GT(size, 4u);

  const std::vector<FrontierChunk> whole = engine.partition(0);
  ASSERT_EQ(whole.size(), 1u);
  EXPECT_EQ(whole[0].begin, 0u);
  EXPECT_EQ(whole[0].end, size);

  const std::vector<FrontierChunk> fine = engine.partition(3);
  EXPECT_EQ(fine.size(), (size + 2) / 3);
  std::size_t expected_begin = 0;
  for (const FrontierChunk& chunk : fine) {
    EXPECT_EQ(chunk.begin, expected_begin);
    EXPECT_LE(chunk.end - chunk.begin, 3u);
    expected_begin = chunk.end;
  }
  EXPECT_EQ(expected_begin, size);
}

TEST(FrontierEngine, ExpandIsReadOnlyAndChunksCompose) {
  // Expanding chunks out of order and merging in order must equal the
  // one-chunk expansion -- expand() never touches engine state.
  const auto ma = make_lossy_link(0b111);
  AnalysisOptions options;
  options.depth = 2;
  ViewInterner interner;
  FrontierEngine engine(*ma, options, interner, 0, 4);
  ASSERT_TRUE(engine.advance());

  const std::vector<FrontierChunk> chunks = engine.partition(2);
  ASSERT_GT(chunks.size(), 1u);
  std::vector<PendingFrontier> expansions(chunks.size());
  for (std::size_t c = chunks.size(); c-- > 0;) {  // reverse order
    expansions[c] = engine.expand(chunks[c]);
  }
  PendingFrontier merged = engine.merge(std::move(expansions));
  ASSERT_FALSE(merged.overflow);

  PendingFrontier whole = engine.expand(engine.partition(0).front());
  ASSERT_EQ(merged.states.size(), whole.states.size());
  for (std::size_t i = 0; i < whole.states.size(); ++i) {
    EXPECT_EQ(merged.states[i].parent, whole.states[i].parent) << i;
    EXPECT_EQ(merged.states[i].letter, whole.states[i].letter) << i;
    EXPECT_EQ(merged.states[i].multiplicity, whole.states[i].multiplicity)
        << i;
    EXPECT_EQ(merged.states[i].adv_state, whole.states[i].adv_state) << i;
  }
}

TEST(FrontierEngine, BudgetAbortsDoomedLevels) {
  const auto ma = make_omission_adversary(3, 2);
  AnalysisOptions options;
  options.depth = 2;
  options.max_states = 1000;  // level 1 has 176 classes, level 2 has 3872
  ViewInterner interner;
  FrontierEngine engine(*ma, options, interner, 0, 8);
  ASSERT_TRUE(engine.advance());  // level 1 fits

  FrontierBudget budget(options.max_states);
  const std::vector<FrontierChunk> chunks = engine.partition(4);
  bool aborted = false;
  for (const FrontierChunk& chunk : chunks) {
    if (engine.expand(chunk, &budget).overflow) aborted = true;
  }
  EXPECT_TRUE(aborted);
  EXPECT_TRUE(budget.exceeded());
  // The engine itself is untouched: the level was never committed.
  EXPECT_EQ(engine.level(), 1);
  EXPECT_FALSE(engine.truncated());
}

TEST(FrontierEngine, OverflowLeavesLastCompleteLevel) {
  const auto ma = make_lossy_link(0b111);
  AnalysisOptions options;
  options.depth = 6;
  options.max_states = 50;
  ViewInterner interner;
  FrontierEngine engine(*ma, options, interner, 0, 4);
  int completed = 0;
  while (engine.level() < options.depth && engine.advance(1)) ++completed;
  EXPECT_TRUE(engine.truncated());
  EXPECT_EQ(engine.level(), completed);
  EXPECT_LE(engine.frontier().size(), options.max_states);
}

}  // namespace
}  // namespace topocon
