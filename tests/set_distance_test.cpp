// Tests for the set-distance structure of decision sets: Corollary 6.1
// (for a compact adversary that allows consensus, distinct decision sets
// and distinct components have d_min-distance > 0) and the merged case
// (distance 0 between the valence regions of an unsolvable adversary),
// i.e., the finite-depth shadow of Theorem 5.13 / 5.14 and Figure 4 vs 5.
#include <gtest/gtest.h>

#include "adversary/lossy_link.hpp"
#include "core/epsilon_approx.hpp"
#include "core/metrics.hpp"
#include "core/solvability.hpp"
#include "runtime/pair_heard.hpp"
#include "runtime/simulator.hpp"
#include "runtime/universal_runner.hpp"

#include "adversary/sampler.hpp"

namespace topocon {
namespace {

// Collect the member prefixes of every component of a depth analysis.
std::vector<std::vector<RunPrefix>> component_members(
    const MessageAdversary& ma, const DepthAnalysis& analysis) {
  std::vector<std::vector<RunPrefix>> members(analysis.components.size());
  for (std::size_t i = 0; i < analysis.leaves().size(); ++i) {
    members[static_cast<std::size_t>(analysis.leaf_component[i])].push_back(
        *reconstruct_prefix(ma, analysis, static_cast<int>(i)));
  }
  return members;
}

TEST(SetDistance, DecisionSetsOfSolvableAdversaryAreSeparated) {
  const auto ma = make_lossy_link(0b011);
  AnalysisOptions options;
  options.depth = 3;
  const DepthAnalysis analysis = analyze_depth(*ma, options);
  ASSERT_TRUE(analysis.valence_separated);
  const auto members = component_members(*ma, analysis);

  // Assemble PS(0) and PS(1) from the assigned component values.
  std::vector<RunPrefix> ps0, ps1;
  for (std::size_t c = 0; c < analysis.components.size(); ++c) {
    auto& target =
        analysis.components[c].assigned_value == 0 ? ps0 : ps1;
    for (const RunPrefix& prefix : members[c]) target.push_back(prefix);
  }
  ASSERT_FALSE(ps0.empty());
  ASSERT_FALSE(ps1.empty());
  ViewInterner interner;
  // Corollary 6.1: d_min(PS(0), PS(1)) > 0; at depth t the witness is that
  // no pair is indistinguishable through the full horizon.
  EXPECT_GT(distance_min(interner, ps0, ps1), 0.0);
}

TEST(SetDistance, DistinctComponentsHavePositiveDistance) {
  const auto ma = make_lossy_link(0b101);
  AnalysisOptions options;
  options.depth = 3;
  const DepthAnalysis analysis = analyze_depth(*ma, options);
  const auto members = component_members(*ma, analysis);
  ViewInterner interner;
  for (std::size_t a = 0; a < members.size(); ++a) {
    for (std::size_t b = a + 1; b < members.size(); ++b) {
      EXPECT_GT(distance_min(interner, members[a], members[b]), 0.0)
          << "components " << a << " and " << b;
    }
  }
}

TEST(SetDistance, ValentSetsPositiveDistanceYetChainConnectedWhenMerged) {
  const auto ma = make_lossy_link(0b111);
  AnalysisOptions options;
  options.depth = 4;
  const DepthAnalysis analysis = analyze_depth(*ma, options);
  ASSERT_FALSE(analysis.valence_separated);
  const auto members = component_members(*ma, analysis);

  // Within the merged component, the 0-valent and 1-valent leaves are
  // connected by epsilon-chains; in particular some adjacent pair of
  // leaves with different "valence sides" has distance 0 through the
  // horizon. A weaker but direct check: the minimum distance between
  // 0-valent and 1-valent leaf prefixes inside one component is far below
  // the clean separation 2^-0 = 1 seen across true components -- and some
  // adjacent pair in the chain achieves indistinguishability (= 0 within
  // horizon), which obstruction_test verifies hop by hop.
  std::vector<RunPrefix> valent0, valent1;
  for (const auto& component : members) {
    for (const RunPrefix& prefix : component) {
      if (uniform_value(prefix.inputs) == 0) valent0.push_back(prefix);
      if (uniform_value(prefix.inputs) == 1) valent1.push_back(prefix);
    }
  }
  ViewInterner interner;
  // All valent runs live in one merged component; the *sets* {z_0-runs}
  // and {z_1-runs} have positive pairwise distance (they differ at every
  // process at time 0) -- it is the chain through mixed inputs that glues
  // them. This is exactly why Theorem 5.11's broadcastability argument
  // needs connectivity, not pointwise closeness.
  EXPECT_GT(distance_min(interner, valent0, valent1), 0.0);
  EXPECT_EQ(analysis.merged_components, 1);
}

// The hand-written pair algorithm agrees with the extracted universal
// algorithm on every admissible run of {<-, ->}.
TEST(PairHeard, MatchesUniversalAlgorithmEverywhere) {
  const auto ma = make_lossy_link(0b011);
  const SolvabilityResult result = check_solvability(*ma);
  ASSERT_EQ(result.verdict, SolvabilityVerdict::kSolvable);
  const UniversalAlgorithm universal(*result.table);
  const PairHeardAlgorithm pair;
  for (const auto& letters : enumerate_letter_sequences(*ma, 3)) {
    for (const InputVector& inputs : all_input_vectors(2, 2)) {
      RunPrefix prefix;
      prefix.inputs = inputs;
      prefix.graphs = letters_to_graphs(*ma, letters);
      const ConsensusOutcome a = simulate(universal, prefix);
      const ConsensusOutcome b = simulate(pair, prefix);
      ASSERT_TRUE(a.all_decided());
      ASSERT_TRUE(b.all_decided());
      for (int p = 0; p < 2; ++p) {
        EXPECT_EQ(*a.decisions[static_cast<std::size_t>(p)],
                  *b.decisions[static_cast<std::size_t>(p)])
            << prefix.to_string() << " p=" << p;
      }
    }
  }
}

}  // namespace
}  // namespace topocon
