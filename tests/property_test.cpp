// Property-based sweeps over randomly generated oblivious message
// adversaries: whenever the checker certifies solvability, the extracted
// universal algorithm must satisfy T/A/V exhaustively; component summaries
// must obey Theorem 5.9 (broadcastable => diameter <= 1/2) and
// Corollary 5.10; and the broadcast helpers must agree with the analysis.
#include <memory>
#include <random>

#include <gtest/gtest.h>

#include "adversary/oblivious.hpp"
#include "adversary/sampler.hpp"
#include "core/broadcast.hpp"
#include "core/metrics.hpp"
#include "core/solvability.hpp"
#include "graph/enumerate.hpp"
#include "runtime/simulator.hpp"
#include "runtime/universal_runner.hpp"
#include "runtime/verify.hpp"

namespace topocon {
namespace {

std::unique_ptr<ObliviousAdversary> random_adversary(std::mt19937_64& rng,
                                                     int n,
                                                     int alphabet_size) {
  const auto graphs = all_graphs(n);
  std::vector<Digraph> chosen;
  std::vector<std::size_t> indices(graphs.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  for (int k = 0; k < alphabet_size; ++k) {
    std::uniform_int_distribution<std::size_t> pick(0, indices.size() - 1);
    const std::size_t j = pick(rng);
    chosen.push_back(graphs[indices[j]]);
    indices.erase(indices.begin() + static_cast<std::ptrdiff_t>(j));
  }
  return std::make_unique<ObliviousAdversary>(n, std::move(chosen), "random");
}

class RandomAdversaries : public ::testing::TestWithParam<int> {};

TEST_P(RandomAdversaries, CertifiedTablesAreSoundN2) {
  std::mt19937_64 rng(static_cast<unsigned>(GetParam()));
  for (int trial = 0; trial < 12; ++trial) {
    const int alphabet = 1 + static_cast<int>(rng() % 4);
    const auto ma = random_adversary(rng, 2, alphabet);
    SolvabilityOptions options;
    options.max_depth = 5;
    const SolvabilityResult result = check_solvability(*ma, options);
    if (result.verdict != SolvabilityVerdict::kSolvable) continue;
    const UniversalAlgorithm algo(*result.table);
    const int horizon = result.certified_depth + 1;
    for (const auto& letters : enumerate_letter_sequences(*ma, horizon)) {
      for (const InputVector& inputs : all_input_vectors(2, 2)) {
        RunPrefix prefix;
        prefix.inputs = inputs;
        prefix.graphs = letters_to_graphs(*ma, letters);
        const ConsensusOutcome outcome = simulate(algo, prefix);
        const ConsensusCheck check = check_consensus(outcome, inputs);
        ASSERT_TRUE(check.ok()) << prefix.to_string() << ": " << check.detail;
        ASSERT_LE(outcome.last_decision_round(), result.certified_depth);
      }
    }
  }
}

TEST_P(RandomAdversaries, CertifiedTablesAreSoundN3) {
  std::mt19937_64 rng(static_cast<unsigned>(GetParam()) + 1000);
  for (int trial = 0; trial < 4; ++trial) {
    const int alphabet = 1 + static_cast<int>(rng() % 3);
    const auto ma = random_adversary(rng, 3, alphabet);
    SolvabilityOptions options;
    options.max_depth = 3;
    options.max_states = 1'000'000;
    const SolvabilityResult result = check_solvability(*ma, options);
    if (result.verdict != SolvabilityVerdict::kSolvable) continue;
    const UniversalAlgorithm algo(*result.table);
    const int horizon = result.certified_depth;
    for (const auto& letters : enumerate_letter_sequences(*ma, horizon)) {
      for (const InputVector& inputs : all_input_vectors(3, 2)) {
        RunPrefix prefix;
        prefix.inputs = inputs;
        prefix.graphs = letters_to_graphs(*ma, letters);
        const ConsensusOutcome outcome = simulate(algo, prefix);
        const ConsensusCheck check = check_consensus(outcome, inputs);
        ASSERT_TRUE(check.ok()) << prefix.to_string() << ": " << check.detail;
      }
    }
  }
}

// Theorem 5.9 / Corollary 5.10 on computed components: a broadcastable
// component has d_min-diameter <= 1/2 over its member prefixes.
TEST_P(RandomAdversaries, BroadcastableComponentsHaveSmallDiameter) {
  std::mt19937_64 rng(static_cast<unsigned>(GetParam()) + 2000);
  for (int trial = 0; trial < 8; ++trial) {
    const auto ma = random_adversary(rng, 2, 1 + static_cast<int>(rng() % 3));
    AnalysisOptions options;
    options.depth = 3;
    const DepthAnalysis analysis = analyze_depth(*ma, options);
    // Gather member prefixes per component.
    std::vector<std::vector<RunPrefix>> members(analysis.components.size());
    for (std::size_t i = 0; i < analysis.leaves().size(); ++i) {
      auto prefix =
          reconstruct_prefix(*ma, analysis, static_cast<int>(i));
      ASSERT_TRUE(prefix.has_value());
      members[static_cast<std::size_t>(analysis.leaf_component[i])]
          .push_back(std::move(*prefix));
    }
    ViewInterner interner;
    for (std::size_t c = 0; c < analysis.components.size(); ++c) {
      const ComponentInfo& info = analysis.components[c];
      if (info.broadcasters != 0) {
        EXPECT_LE(diameter_min(interner, members[c]), 0.5);
      }
      // The broadcast helpers must agree with the analysis summary.
      EXPECT_EQ(broadcast_witnesses(members[c]), info.common_broadcast);
      EXPECT_EQ(broadcasters(members[c]), info.broadcasters);
      EXPECT_EQ(is_broadcastable(members[c]), info.broadcasters != 0);
    }
  }
}

// Deepening never destroys separation (components refine).
TEST_P(RandomAdversaries, SeparationIsMonotoneInDepth) {
  std::mt19937_64 rng(static_cast<unsigned>(GetParam()) + 3000);
  for (int trial = 0; trial < 10; ++trial) {
    const auto ma = random_adversary(rng, 2, 1 + static_cast<int>(rng() % 4));
    auto interner = std::make_shared<ViewInterner>();
    bool separated = false;
    for (int depth = 1; depth <= 5; ++depth) {
      AnalysisOptions options;
      options.depth = depth;
      options.keep_levels = false;
      const DepthAnalysis analysis =
          analyze_depth(*ma, options, interner);
      if (separated) {
        EXPECT_TRUE(analysis.valence_separated);
      }
      separated = analysis.valence_separated;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAdversaries,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace topocon
