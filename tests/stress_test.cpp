// Larger-scale and adversarial-input stress tests: n = 4 adversaries,
// truncation boundaries, interner growth, and fuzzed analysis invariants.
#include <memory>
#include <random>

#include <gtest/gtest.h>

#include "adversary/heard_of.hpp"
#include "adversary/oblivious.hpp"
#include "adversary/omission.hpp"
#include "adversary/sampler.hpp"
#include "adversary/vssc.hpp"
#include "core/solvability.hpp"
#include "graph/enumerate.hpp"
#include "runtime/simulator.hpp"
#include "runtime/universal_runner.hpp"
#include "runtime/verify.hpp"
#include "runtime/vssc_algo.hpp"

namespace topocon {
namespace {

TEST(StressN4, OmissionF1SolvableAndSound) {
  const auto ma = make_omission_adversary(4, 1);
  SolvabilityOptions options;
  options.max_depth = 4;
  options.max_states = 4'000'000;
  const SolvabilityResult result = check_solvability(*ma, options);
  ASSERT_EQ(result.verdict, SolvabilityVerdict::kSolvable);
  EXPECT_LE(result.certified_depth, 3);

  const UniversalAlgorithm algo(*result.table);
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const InputVector inputs = sample_inputs(4, 2, rng);
    const RunPrefix prefix =
        sample_prefix(*ma, inputs, result.certified_depth + 1, rng);
    const ConsensusOutcome outcome = simulate(algo, prefix);
    const ConsensusCheck check = check_consensus(outcome, inputs);
    ASSERT_TRUE(check.ok()) << check.detail;
  }
}

TEST(StressN4, OmissionF3NotSeparatedAtSmallDepth) {
  const auto ma = make_omission_adversary(4, 3);
  SolvabilityOptions options;
  options.max_depth = 2;
  options.max_states = 4'000'000;
  options.build_table = false;
  const SolvabilityResult result = check_solvability(*ma, options);
  EXPECT_EQ(result.verdict, SolvabilityVerdict::kNotSeparated);
}

TEST(StressN4, HeardOfThreeOfFourImpossibleEvidence) {
  const auto ma = make_heard_of_adversary(4, 3);
  SolvabilityOptions options;
  options.max_depth = 2;
  options.max_states = 4'000'000;
  options.build_table = false;
  EXPECT_EQ(check_solvability(*ma, options).verdict,
            SolvabilityVerdict::kNotSeparated);
}

TEST(StressN4, VsscAlgorithmScales) {
  std::mt19937_64 rng(31);
  const int n = 4;
  const VsscAdversary ma(n, 3 * n);
  const VsscConsensus algo(n);
  int decided = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const InputVector inputs = sample_inputs(n, 2, rng);
    const RunPrefix prefix = sample_prefix(ma, inputs, 6 * n, rng);
    const ConsensusOutcome outcome = simulate(algo, prefix);
    const ConsensusCheck check = check_consensus(outcome, inputs);
    EXPECT_TRUE(check.agreement && check.validity) << check.detail;
    decided += outcome.all_decided();
  }
  EXPECT_GE(decided, 20);
}

// Fuzz: random oblivious adversaries on n = 4 with tiny alphabets; the
// analysis must never crash, always partition leaves, keep multiplicities
// consistent, and refine monotonically.
TEST(Fuzz, AnalysisInvariantsN4) {
  std::mt19937_64 rng(555);
  const auto graphs = all_graphs(4);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<Digraph> alphabet;
    const int size = 1 + static_cast<int>(rng() % 3);
    for (int k = 0; k < size; ++k) {
      alphabet.push_back(graphs[rng() % graphs.size()]);
    }
    const ObliviousAdversary ma(4, std::move(alphabet), "fuzz");
    auto interner = std::make_shared<ViewInterner>();
    std::size_t previous_components = 0;
    for (int depth = 1; depth <= 3; ++depth) {
      AnalysisOptions options;
      options.depth = depth;
      options.keep_levels = false;
      options.max_states = 500'000;
      const DepthAnalysis analysis = analyze_depth(ma, options, interner);
      if (analysis.truncated) break;
      // Partition invariant.
      ASSERT_EQ(analysis.leaf_component.size(), analysis.leaves().size());
      std::int64_t leaves_in_components = 0;
      for (const ComponentInfo& info : analysis.components) {
        leaves_in_components += info.num_leaves;
      }
      EXPECT_EQ(leaves_in_components,
                static_cast<std::int64_t>(analysis.leaves().size()));
      // Multiplicity accounting.
      std::uint64_t total = 0;
      for (const PrefixState& leaf : analysis.leaves()) {
        total += leaf.multiplicity;
      }
      std::uint64_t expect = 16;  // binary inputs, n = 4
      for (int t = 0; t < depth; ++t) {
        expect *= static_cast<std::uint64_t>(ma.alphabet_size());
      }
      EXPECT_EQ(total, expect);
      // Refinement.
      EXPECT_GE(analysis.components.size(), previous_components);
      previous_components = analysis.components.size();
    }
  }
}

TEST(Fuzz, CertifiedRandomN4TablesAreSound) {
  std::mt19937_64 rng(777);
  const auto graphs = all_graphs(4);
  int certified = 0;
  for (int trial = 0; trial < 10 && certified < 3; ++trial) {
    std::vector<Digraph> alphabet = {graphs[rng() % graphs.size()],
                                     graphs[rng() % graphs.size()]};
    const ObliviousAdversary ma(4, std::move(alphabet), "fuzz-cert");
    SolvabilityOptions options;
    options.max_depth = 3;
    options.max_states = 500'000;
    const SolvabilityResult result = check_solvability(ma, options);
    if (result.verdict != SolvabilityVerdict::kSolvable) continue;
    ++certified;
    const UniversalAlgorithm algo(*result.table);
    for (const auto& letters :
         enumerate_letter_sequences(ma, result.certified_depth)) {
      for (const InputVector& inputs : all_input_vectors(4, 2)) {
        RunPrefix prefix;
        prefix.inputs = inputs;
        prefix.graphs = letters_to_graphs(ma, letters);
        const ConsensusCheck check =
            check_consensus(simulate(algo, prefix), inputs);
        ASSERT_TRUE(check.ok()) << prefix.to_string() << check.detail;
      }
    }
  }
}

TEST(Stress, InternerGrowthIsSharedAcrossDepths) {
  const auto ma = make_omission_adversary(3, 1);
  auto interner = std::make_shared<ViewInterner>();
  AnalysisOptions options;
  options.keep_levels = false;
  options.depth = 2;
  (void)analyze_depth(*ma, options, interner);
  const std::size_t after_first = interner->size();
  // Re-running the same depth adds nothing (full reuse).
  (void)analyze_depth(*ma, options, interner);
  EXPECT_EQ(interner->size(), after_first);
  // A deeper run only extends.
  options.depth = 3;
  (void)analyze_depth(*ma, options, interner);
  EXPECT_GT(interner->size(), after_first);
}

}  // namespace
}  // namespace topocon
