// Tests for dynamic-graph measures: broadcast time, dynamic diameter, and
// their classic bounds (a static rooted graph broadcasts from its root
// within n-1 rounds; a stable rooted sequence has dynamic diameter <= n-1
// from root members).
#include <bit>
#include <random>

#include <gtest/gtest.h>

#include "graph/dynamic.hpp"
#include "graph/enumerate.hpp"
#include "graph/scc.hpp"
#include "ptg/reach.hpp"

namespace topocon {
namespace {

TEST(Dynamic, CompleteGraphBroadcastsInOneRound) {
  const std::vector<Digraph> seq(3, Digraph::complete(3));
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(broadcast_time(seq, p), 1);
  }
  EXPECT_EQ(dynamic_diameter(seq), 1);
  EXPECT_EQ(broadcasters_within(seq), full_mask(3));
}

TEST(Dynamic, EmptyGraphNeverBroadcasts) {
  const std::vector<Digraph> seq(5, Digraph::empty(3));
  EXPECT_EQ(broadcast_time(seq, 0), -1);
  EXPECT_EQ(dynamic_diameter(seq), -1);
  EXPECT_EQ(broadcasters_within(seq), NodeMask{0});
}

TEST(Dynamic, LineGraphTakesNMinusOneRounds) {
  // 0 -> 1 -> 2 -> 3 held statically: 0 broadcasts in exactly 3 rounds.
  const Digraph line =
      Digraph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const std::vector<Digraph> seq(5, line);
  EXPECT_EQ(broadcast_time(seq, 0), 3);
  // Non-root processes never reach upstream nodes.
  EXPECT_EQ(broadcast_time(seq, 1), -1);
  EXPECT_EQ(broadcasters_within(seq), NodeMask{0b0001});
}

// Static rooted graphs: every root member broadcasts within n-1 rounds.
TEST(Dynamic, StaticRootedBroadcastBound) {
  for (const Digraph& g : rooted_graphs(3)) {
    const std::vector<Digraph> seq(2, g);  // n-1 = 2 rounds
    NodeMask roots = root_members(g);
    while (roots != 0) {
      const int p = std::countr_zero(roots);
      roots &= roots - 1;
      const int time = broadcast_time(seq, p);
      EXPECT_GE(time, 1);
      EXPECT_LE(time, 2) << g.to_string() << " p=" << p;
    }
  }
}

// Changing-but-commonly-rooted sequences: the common root member still
// broadcasts within n-1 rounds (the flooding argument behind the VSSC
// algorithm's window length).
TEST(Dynamic, StableRootSequencesBroadcastWithinNMinusOne) {
  std::mt19937_64 rng(12);
  const auto rooted = rooted_graphs(3);
  // Group by root set; pick sequences within one group.
  for (int trial = 0; trial < 50; ++trial) {
    const Digraph& first = rooted[rng() % rooted.size()];
    const NodeMask root = root_members(first);
    std::vector<Digraph> seq = {first};
    while (seq.size() < 2) {
      const Digraph& g = rooted[rng() % rooted.size()];
      if (root_members(g) == root) seq.push_back(g);
    }
    NodeMask members = root;
    while (members != 0) {
      const int p = std::countr_zero(members);
      members &= members - 1;
      const int time = broadcast_time(seq, p);
      EXPECT_GE(time, 1);
      EXPECT_LE(time, 2);
    }
  }
}

// Consistency with the reach machinery used by the core analysis.
TEST(Dynamic, AgreesWithReachMasks) {
  std::mt19937_64 rng(9);
  const auto graphs = all_graphs(3);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Digraph> seq;
    for (int t = 0; t < 4; ++t) {
      seq.push_back(graphs[rng() % graphs.size()]);
    }
    RunPrefix prefix;
    prefix.inputs = {0, 0, 0};
    prefix.graphs = seq;
    const NodeMask complete = broadcast_complete(reach_of_prefix(prefix));
    EXPECT_EQ(broadcasters_within(seq), complete);
  }
}

}  // namespace
}  // namespace topocon
