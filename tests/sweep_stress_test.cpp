// Long-running determinism stress for the sweep engine (ctest label:
// stress; excluded from the default CI matrix, run by the dedicated
// stress/TSan lanes). Repeats the acceptance checks at full scale: the
// E5-style omission family sweep must produce byte-identical JSON at 1
// thread, 8 threads, and hardware_concurrency, and heavyweight analyses
// must match the serial checker exactly under thread oversubscription.
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/family.hpp"
#include "api/api.hpp"
#include "core/solvability.hpp"
#include "runtime/sweep/parallel_solver.hpp"

namespace topocon {
namespace {

std::vector<sweep::JobOutcome> run_omission_bench(int threads) {
  api::Session session({.num_threads = threads, .record_global = false});
  std::vector<api::Query> queries;
  SolvabilityOptions options;
  options.max_depth = 3;
  options.max_states = 6'000'000;
  options.build_table = false;
  for (int f = 0; f <= 4; ++f) {
    queries.push_back(api::solvability({"omission", 3, f}, options));
  }
  return session.run("stress-omission-n3", queries);
}

std::string sweep_json(const std::vector<sweep::JobOutcome>& outcomes) {
  std::ostringstream out;
  sweep::JsonWriter writer(out);
  sweep::write_sweep_json(writer, "stress-omission-n3", outcomes);
  return out.str();
}

// The PR acceptance criterion, as a regression test: the full n = 3
// omission bench sweep yields byte-identical JSON at 1 vs 8 vs
// hardware_concurrency threads.
TEST(SweepStress, OmissionBenchJsonByteIdenticalAcrossThreadCounts) {
  const std::string base = sweep_json(run_omission_bench(1));
  EXPECT_FALSE(base.empty());
  for (const int threads :
       {8, static_cast<int>(std::thread::hardware_concurrency())}) {
    const std::string json = sweep_json(run_omission_bench(std::max(threads, 1)));
    EXPECT_EQ(json, base) << "JSON differs at " << threads << " threads";
  }
}

// Deep windowed analysis (26k leaf classes at w = 1) under an
// oversubscribed pool: exact agreement with the serial analysis.
TEST(SweepStress, DeepWindowedAnalysisMatchesSerialOversubscribed) {
  const auto ma = make_family_adversary({"windowed_lossy_link", 2, 1});
  AnalysisOptions options;
  options.depth = 8;
  options.keep_levels = false;
  options.max_states = 6'000'000;
  const DepthAnalysis serial = analyze_depth(*ma, options);
  const int hw = sweep::resolve_threads(0);
  sweep::ThreadPool pool(2 * hw + 1);
  const DepthAnalysis parallel =
      sweep::parallel_analyze_depth(*ma, options, pool);
  EXPECT_EQ(parallel.leaf_component, serial.leaf_component);
  EXPECT_EQ(parallel.components.size(), serial.components.size());
  EXPECT_EQ(parallel.merged_components, serial.merged_components);
  EXPECT_EQ(parallel.valence_separated, serial.valence_separated);
}

// Repeated mixed-family sweeps: run the same heterogeneous spec many
// times on different pools and require identical JSON every time (hunts
// scheduling-dependent nondeterminism that single runs can miss).
TEST(SweepStress, RepeatedMixedSweepsAreStable) {
  const auto run_mixed = [](int threads) {
    api::Session session({.num_threads = threads, .record_global = false});
    std::vector<api::Query> queries;
    SolvabilityOptions solve;
    solve.max_depth = 5;
    for (int mask = 1; mask < 8; ++mask) {
      queries.push_back(api::solvability({"lossy_link", 2, mask}, solve));
    }
    SolvabilityOptions heard;
    heard.max_depth = 2;
    heard.max_states = 6'000'000;
    heard.build_table = false;
    queries.push_back(api::solvability({"heard_of", 3, 2}, heard));
    AnalysisOptions series;
    series.depth = 6;
    series.keep_levels = false;
    queries.push_back(api::depth_series({"lossy_link", 2, 7}, series));
    queries.push_back(api::decision_table({"lossy_link", 2, 5}, solve));
    return session.run("stress-mixed", queries);
  };
  std::ostringstream base_out;
  sweep::JsonWriter base_writer(base_out);
  sweep::write_sweep_json(base_writer, "stress-mixed", run_mixed(1));
  const std::string base = base_out.str();
  for (int round = 0; round < 6; ++round) {
    std::ostringstream out;
    sweep::JsonWriter writer(out);
    sweep::write_sweep_json(writer, "stress-mixed", run_mixed(2 + round));
    ASSERT_EQ(out.str(), base) << "round " << round;
  }
}

}  // namespace
}  // namespace topocon
