// The telemetry subsystem: MetricsRegistry aggregation under concurrent
// flushes, the determinism contract of the per-job counters (identical
// across thread counts, including the budget-abort path), the opt-in
// "telemetry" JSON section and its round-trip, artifact byte-stability
// with telemetry surfaces enabled, and the bench regression gate
// (baseline parsing, google-benchmark result parsing, compare policy).
#include <cstdint>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/api.hpp"
#include "core/solvability.hpp"
#include "runtime/sweep/bench_compare.hpp"
#include "runtime/sweep/checkpoint.hpp"
#include "runtime/sweep/json.hpp"
#include "telemetry/metrics.hpp"

namespace topocon {
namespace {

using api::Query;
using api::Session;
using telemetry::JobTelemetry;
using telemetry::MetricsRegistry;
using telemetry::PendingStats;
using telemetry::TelemetryCounters;

// ---- MetricsRegistry ------------------------------------------------------

TEST(Telemetry, RegistryAggregatesConcurrentFlushes) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kFlushes = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      for (int i = 0; i < kFlushes; ++i) {
        PendingStats stats;
        stats.chunks = 1;
        stats.dense_view_chunks = 1;
        stats.emissions = 10;
        stats.dedup_hits = 2;
        stats.pending_states = 8;
        stats.pending_views = 3;
        stats.rehashes = 1;
        registry.add_pending(stats);
        registry.add_commit(8, 3);
        registry.note_frontier(static_cast<std::uint64_t>(t * kFlushes + i));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  registry.add_budget_abort();

  const TelemetryCounters counters = registry.snapshot().counters;
  constexpr std::uint64_t kTotal = kThreads * kFlushes;
  EXPECT_EQ(counters.states_expanded, 10 * kTotal);
  EXPECT_EQ(counters.state_dedup_hits, 2 * kTotal);
  EXPECT_EQ(counters.states_committed, 8 * kTotal);
  EXPECT_EQ(counters.pending_views, 3 * kTotal);
  EXPECT_EQ(counters.views_interned, 3 * kTotal);
  EXPECT_EQ(counters.chunks_expanded, kTotal);
  EXPECT_EQ(counters.dense_view_chunks, kTotal);
  EXPECT_EQ(counters.dense_state_chunks, 0u);
  EXPECT_EQ(counters.wordseq_rehashes, kTotal);
  EXPECT_EQ(counters.budget_early_aborts, 1u);
  EXPECT_EQ(counters.frontier_high_water, kTotal - 1);
}

TEST(Telemetry, AddLevelCountsAndRecordsTimings) {
  MetricsRegistry registry;
  registry.add_level(3, 1, 100, 0.5);
  registry.add_level(3, 2, 400, 1.5);
  registry.set_wall_seconds(2.5);
  const JobTelemetry snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counters.levels_committed, 2u);
  EXPECT_EQ(snapshot.counters.frontier_high_water, 400u);
  ASSERT_EQ(snapshot.levels.size(), 2u);
  EXPECT_EQ(snapshot.levels[0].depth, 3);
  EXPECT_EQ(snapshot.levels[0].level, 1);
  EXPECT_EQ(snapshot.levels[0].states, 100u);
  EXPECT_EQ(snapshot.levels[1].level, 2);
  EXPECT_DOUBLE_EQ(snapshot.wall_seconds, 2.5);
}

// ---- Counter determinism through the Session ------------------------------

/// Captures every on_job_telemetry snapshot by overall job index.
class TelemetryCapture : public api::Observer {
 public:
  explicit TelemetryCapture(std::size_t jobs) : snapshots(jobs) {}

  void on_job_telemetry(std::size_t job,
                        const JobTelemetry& snapshot) override {
    snapshots[job] = snapshot;
  }

  std::vector<std::optional<JobTelemetry>> snapshots;
};

std::vector<Query> telemetry_queries() {
  std::vector<Query> queries;
  SolvabilityOptions solve;
  solve.max_depth = 6;
  queries.push_back(api::solvability({"omission", 3, 1}, solve));
  queries.push_back(api::solvability({"lossy_link", 2, 7}, solve));
  AnalysisOptions series;
  series.depth = 3;
  queries.push_back(api::depth_series({"lossy_link", 2, 3}, series));
  queries.push_back(api::decision_table({"lossy_link", 2, 1}));
  return queries;
}

std::vector<std::optional<JobTelemetry>> run_with_telemetry(
    int threads, const std::vector<Query>& queries) {
  Session session({.num_threads = threads,
                   .record_global = false,
                   .collect_telemetry = true});
  TelemetryCapture capture(queries.size());
  session.run("telemetry", queries, &capture);
  return capture.snapshots;
}

// The tentpole determinism contract: every counter of every job is
// identical at 1, 2, and 8 threads (timings are exempt and ignored).
TEST(Telemetry, CountersIdenticalAcrossThreadCounts) {
  const std::vector<Query> queries = telemetry_queries();
  const auto base = run_with_telemetry(1, queries);
  ASSERT_EQ(base.size(), queries.size());
  for (const auto& snapshot : base) {
    ASSERT_TRUE(snapshot.has_value());
    EXPECT_GT(snapshot->counters.states_expanded, 0u);
    EXPECT_GT(snapshot->counters.states_committed, 0u);
    EXPECT_GT(snapshot->counters.levels_committed, 0u);
    EXPECT_GT(snapshot->counters.frontier_high_water, 0u);
  }
  for (const int threads : {2, 8}) {
    const auto other = run_with_telemetry(threads, queries);
    ASSERT_EQ(other.size(), base.size());
    for (std::size_t j = 0; j < base.size(); ++j) {
      ASSERT_TRUE(other[j].has_value());
      EXPECT_EQ(other[j]->counters, base[j]->counters)
          << "job " << j << " at " << threads << " threads";
    }
  }
}

// The budget-abort path is deterministic too: a RESOURCE-LIMIT query
// reports the same single abort tick (and every other counter) at every
// thread count.
TEST(Telemetry, BudgetAbortCountersIdenticalAcrossThreadCounts) {
  SolvabilityOptions solve;
  solve.max_depth = 6;
  solve.max_states = 5000;  // omission n=3 f=6 blows past this quickly
  std::vector<Query> queries;
  queries.push_back(api::solvability({"omission", 3, 6}, solve));

  const auto base = run_with_telemetry(1, queries);
  ASSERT_TRUE(base[0].has_value());
  EXPECT_GE(base[0]->counters.budget_early_aborts, 1u);
  for (const int threads : {2, 8}) {
    const auto other = run_with_telemetry(threads, queries);
    ASSERT_TRUE(other[0].has_value());
    EXPECT_EQ(other[0]->counters, base[0]->counters);
  }
}

// The serial checker reports through the same registry type.
TEST(Telemetry, SerialCheckerFillsRegistry) {
  MetricsRegistry registry;
  SolvabilityOptions options;
  options.max_depth = 6;
  options.metrics = &registry;
  const auto adversary = make_family_adversary({"lossy_link", 2, 7});
  const SolvabilityResult result = check_solvability(*adversary, options);
  EXPECT_NE(result.verdict, SolvabilityVerdict::kResourceLimit);
  const TelemetryCounters counters = registry.snapshot().counters;
  EXPECT_GT(counters.states_expanded, 0u);
  EXPECT_GT(counters.states_committed, 0u);
  EXPECT_GT(counters.levels_committed, 0u);
  EXPECT_EQ(counters.budget_early_aborts, 0u);
}

// ---- The opt-in JSON section ----------------------------------------------

TEST(Telemetry, OffByDefaultEverywhere) {
  Session session({.num_threads = 2, .record_global = false});
  SolvabilityOptions solve;
  solve.max_depth = 5;
  const auto outcomes = session.run(
      "plain", {api::solvability({"lossy_link", 2, 3}, solve)});
  EXPECT_FALSE(outcomes[0].telemetry.has_value());
  std::ostringstream out;
  session.write_json(out);
  EXPECT_EQ(out.str().find("telemetry"), std::string::npos);
}

TEST(Telemetry, RecordsCarryCountersWhenOptedIn) {
  Session session({.num_threads = 2,
                   .record_global = false,
                   .telemetry_in_records = true});
  const std::vector<Query> queries = telemetry_queries();
  const auto outcomes = session.run("telemetry", queries, nullptr);
  const std::vector<sweep::JobRecord>& records =
      session.history().back().second;
  ASSERT_EQ(records.size(), queries.size());
  for (std::size_t j = 0; j < records.size(); ++j) {
    ASSERT_TRUE(outcomes[j].telemetry.has_value()) << "job " << j;
    ASSERT_TRUE(records[j].telemetry.has_value()) << "job " << j;
    EXPECT_EQ(*records[j].telemetry, outcomes[j].telemetry->counters);
  }

  // The document round-trips: parsing the serialized history reproduces
  // the records, counters included, for every query kind.
  std::ostringstream out;
  session.write_json(out);
  const sweep::SweepDocument doc = sweep::read_sweep_document(out.str());
  ASSERT_EQ(doc.sweeps.size(), 1u);
  EXPECT_EQ(doc.sweeps[0].second, records);
}

// Telemetry surfaces must never change the artifact bytes: the same run
// with collection on (but telemetry_in_records off) serializes
// byte-identically to a default run.
TEST(Telemetry, CollectionDoesNotChangeArtifactBytes) {
  const std::vector<Query> queries = telemetry_queries();
  Session plain({.num_threads = 2, .record_global = false});
  plain.run("stable", queries);
  Session collecting({.num_threads = 2,
                      .record_global = false,
                      .collect_telemetry = true});
  TelemetryCapture capture(queries.size());
  collecting.run("stable", queries, &capture);
  std::ostringstream plain_json;
  plain.write_json(plain_json);
  std::ostringstream collecting_json;
  collecting.write_json(collecting_json);
  EXPECT_EQ(plain_json.str(), collecting_json.str());
  EXPECT_TRUE(capture.snapshots[0].has_value());
}

// ---- Bench regression gate ------------------------------------------------

TEST(BenchCompare, ParsesBaselineWithOverrides) {
  const sweep::BenchBaseline baseline = sweep::parse_bench_baseline(R"({
    "schema": "topocon-bench-baseline-v1",
    "default_tolerance_pct": 300,
    "benchmarks": [
      {"name": "BM_A/1", "real_time_ns": 1000},
      {"name": "BM_B/2", "real_time_ns": 2000, "tolerance_pct": 50,
       "peak_rss_bytes": 150000000, "rss_tolerance_pct": 200}
    ]
  })");
  EXPECT_EQ(baseline.default_tolerance_pct, 300u);
  ASSERT_EQ(baseline.benchmarks.size(), 2u);
  EXPECT_EQ(baseline.benchmarks[0].name, "BM_A/1");
  EXPECT_EQ(baseline.benchmarks[0].real_time_ns, 1000u);
  EXPECT_FALSE(baseline.benchmarks[0].tolerance_pct.has_value());
  EXPECT_FALSE(baseline.benchmarks[0].peak_rss_bytes.has_value());
  EXPECT_EQ(baseline.benchmarks[1].tolerance_pct, 50u);
  EXPECT_EQ(baseline.benchmarks[1].peak_rss_bytes, 150000000u);
  EXPECT_EQ(baseline.benchmarks[1].rss_tolerance_pct, 200u);
}

TEST(BenchCompare, RejectsUnknownSchema) {
  EXPECT_THROW(
      sweep::parse_bench_baseline(
          R"({"schema": "nope", "default_tolerance_pct": 1,
              "benchmarks": []})"),
      std::runtime_error);
}

TEST(BenchCompare, BaselineWriteParsesBack) {
  sweep::BenchBaseline baseline;
  baseline.default_tolerance_pct = 250;
  baseline.benchmarks.push_back(
      {"BM_X/3/1", 123456, std::nullopt, std::nullopt, std::nullopt});
  baseline.benchmarks.push_back(
      {"BM_Y", 99, 500, std::nullopt, std::nullopt});
  baseline.benchmarks.push_back({"BM_Z", 7, std::nullopt, 88'000'000, 150});
  const std::string text = sweep::write_bench_baseline(baseline);
  const sweep::BenchBaseline parsed = sweep::parse_bench_baseline(text);
  EXPECT_EQ(parsed.default_tolerance_pct, 250u);
  ASSERT_EQ(parsed.benchmarks.size(), 3u);
  EXPECT_EQ(parsed.benchmarks[0].name, "BM_X/3/1");
  EXPECT_EQ(parsed.benchmarks[0].real_time_ns, 123456u);
  EXPECT_FALSE(parsed.benchmarks[0].peak_rss_bytes.has_value());
  EXPECT_EQ(parsed.benchmarks[1].tolerance_pct, 500u);
  EXPECT_EQ(parsed.benchmarks[2].peak_rss_bytes, 88'000'000u);
  EXPECT_EQ(parsed.benchmarks[2].rss_tolerance_pct, 150u);
}

// google-benchmark output: floats parse, repetitions collapse to the
// minimum, aggregate rows are skipped, time units normalize to ns.
TEST(BenchCompare, ParsesBenchmarkResults) {
  const auto measurements = sweep::parse_benchmark_results(R"({
    "context": {"date": "2026-08-07", "num_cpus": 1},
    "benchmarks": [
      {"name": "BM_A/1", "run_type": "iteration",
       "real_time": 1.5e3, "time_unit": "ns", "peak_rss_bytes": 5.0e7},
      {"name": "BM_A/1", "run_type": "iteration",
       "real_time": 1.2e3, "time_unit": "ns", "peak_rss_bytes": 6.0e7},
      {"name": "BM_A/1_mean", "run_type": "aggregate",
       "real_time": 9.9e9, "time_unit": "ns"},
      {"name": "BM_B/2", "run_type": "iteration",
       "real_time": 2.5, "time_unit": "us"}
    ]
  })");
  ASSERT_EQ(measurements.size(), 2u);
  EXPECT_EQ(measurements[0].name, "BM_A/1");
  EXPECT_DOUBLE_EQ(measurements[0].real_time_ns, 1200.0);
  // Times collapse to the minimum, the RSS high-water mark to the max.
  EXPECT_DOUBLE_EQ(measurements[0].peak_rss_bytes, 6.0e7);
  EXPECT_EQ(measurements[1].name, "BM_B/2");
  EXPECT_DOUBLE_EQ(measurements[1].real_time_ns, 2500.0);
  EXPECT_DOUBLE_EQ(measurements[1].peak_rss_bytes, 0.0);  // not reported
}

TEST(BenchCompare, GatePassesWithinToleranceAndFlagsRegressions) {
  sweep::BenchBaseline baseline;
  baseline.default_tolerance_pct = 100;  // 2x allowed
  baseline.benchmarks.push_back(
      {"BM_ok", 1000, std::nullopt, std::nullopt, std::nullopt});
  baseline.benchmarks.push_back(
      {"BM_slow", 1000, std::nullopt, std::nullopt, std::nullopt});
  baseline.benchmarks.push_back(
      {"BM_tight", 1000, 10, std::nullopt, std::nullopt});
  baseline.benchmarks.push_back(
      {"BM_gone", 1000, std::nullopt, std::nullopt, std::nullopt});
  const std::vector<sweep::BenchMeasurement> measurements = {
      {"BM_ok", 1999.0, 0.0},
      {"BM_slow", 2001.0, 0.0},
      {"BM_tight", 1200.0, 0.0},
      {"BM_extra_is_ignored", 1.0, 0.0},
  };
  const sweep::BenchCompareReport report =
      sweep::compare_bench_results(baseline, measurements);
  ASSERT_EQ(report.rows.size(), 4u);
  EXPECT_FALSE(report.rows[0].regressed);
  EXPECT_TRUE(report.rows[1].regressed);
  EXPECT_TRUE(report.rows[2].regressed);  // per-benchmark override bites
  EXPECT_TRUE(report.rows[3].missing);
  EXPECT_FALSE(report.ok());

  // Drop the offenders: the remaining rows pass.
  baseline.benchmarks.resize(1);
  EXPECT_TRUE(sweep::compare_bench_results(baseline, measurements).ok());
}

TEST(BenchCompare, GateChecksPeakRssWhenTheBaselineBoundsIt) {
  sweep::BenchBaseline baseline;
  baseline.default_tolerance_pct = 100;  // 2x allowed
  baseline.benchmarks.push_back(
      {"BM_rss_ok", 1000, std::nullopt, 1'000'000, std::nullopt});
  baseline.benchmarks.push_back(
      {"BM_rss_fat", 1000, std::nullopt, 1'000'000, std::nullopt});
  baseline.benchmarks.push_back(
      {"BM_rss_tight", 1000, std::nullopt, 1'000'000, 10});
  baseline.benchmarks.push_back(
      {"BM_rss_gone", 1000, std::nullopt, 1'000'000, std::nullopt});
  baseline.benchmarks.push_back(
      {"BM_ungated", 1000, std::nullopt, std::nullopt, std::nullopt});
  const std::vector<sweep::BenchMeasurement> measurements = {
      {"BM_rss_ok", 1500.0, 1'999'000.0},
      {"BM_rss_fat", 1500.0, 2'001'000.0},
      {"BM_rss_tight", 1500.0, 1'200'000.0},
      {"BM_rss_gone", 1500.0, 0.0},      // counter vanished: must fail
      {"BM_ungated", 1500.0, 9.9e12},    // no baseline bound: ignored
  };
  const sweep::BenchCompareReport report =
      sweep::compare_bench_results(baseline, measurements);
  ASSERT_EQ(report.rows.size(), 5u);
  EXPECT_FALSE(report.rows[0].rss_regressed);
  EXPECT_EQ(report.rows[0].baseline_rss, 1'000'000u);
  EXPECT_DOUBLE_EQ(report.rows[0].current_rss, 1'999'000.0);
  EXPECT_TRUE(report.rows[1].rss_regressed);
  EXPECT_FALSE(report.rows[1].regressed);  // the time leg is independent
  EXPECT_TRUE(report.rows[2].rss_regressed);  // per-row override bites
  EXPECT_TRUE(report.rows[3].rss_missing);
  EXPECT_FALSE(report.rows[4].rss_missing);
  EXPECT_FALSE(report.rows[4].rss_regressed);
  EXPECT_FALSE(report.ok());

  // A fully within-bounds subset passes.
  baseline.benchmarks.resize(1);
  EXPECT_TRUE(sweep::compare_bench_results(baseline, measurements).ok());
}

// The reader's float mode is opt-in: the deterministic integer-only
// subset keeps rejecting floats.
TEST(BenchCompare, FloatParsingIsOptIn) {
  EXPECT_THROW(sweep::JsonReader::parse("{\"x\": 1.5}"),
               std::runtime_error);
  const sweep::JsonValue value = sweep::JsonReader::parse(
      "{\"x\": 1.5, \"y\": -2e-2, \"z\": 7}",
      sweep::JsonNumbers::kAllowFloats);
  EXPECT_DOUBLE_EQ(value.at("x").as_double(), 1.5);
  EXPECT_DOUBLE_EQ(value.at("y").as_double(), -0.02);
  EXPECT_DOUBLE_EQ(value.at("z").as_double(), 7.0);
  EXPECT_EQ(value.at("z").as_uint(), 7u);
  EXPECT_THROW(value.at("x").as_uint(), std::runtime_error);
}

}  // namespace
}  // namespace topocon
