// Closure/safety-consistency properties of the adversary combinators
// (adversary/compose.hpp), checked against exhaustive sequence
// enumeration: the depth-L sequence set of a product is EXACTLY the
// intersection of the component sequence sets' joint prefixes, a union's
// is exactly the set union, and the window combinator reproduces the
// hand-written windowed families. Sequences are compared as graph
// sequences (Digraph::encode), since components may number a shared
// graph with different letters.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/compose.hpp"
#include "adversary/family.hpp"
#include "adversary/oblivious.hpp"
#include "adversary/sampler.hpp"
#include "adversary/windowed.hpp"

namespace topocon {
namespace {

using GraphSeq = std::vector<std::uint64_t>;
using SeqSet = std::set<GraphSeq>;

/// All admissible length-L sequences as encoded graph sequences.
SeqSet sequence_set(const MessageAdversary& adversary, int length) {
  SeqSet out;
  for (const std::vector<int>& letters :
       enumerate_letter_sequences(adversary, length)) {
    GraphSeq key;
    key.reserve(letters.size());
    for (const int letter : letters) {
      key.push_back(adversary.graph(letter).encode());
    }
    out.insert(std::move(key));
  }
  return out;
}

SeqSet intersect(const SeqSet& a, const SeqSet& b) {
  SeqSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::inserter(out, out.begin()));
  return out;
}

SeqSet unite(const SeqSet& a, const SeqSet& b) {
  SeqSet out = a;
  out.insert(b.begin(), b.end());
  return out;
}

std::unique_ptr<MessageAdversary> from_spec(const std::string& text) {
  return make_composed_adversary(parse_compose_spec(text));
}

/// The lossy-link graphs on two processes: <-, ->, <->.
Digraph left() { return Digraph::from_edges(2, {{1, 0}}); }
Digraph right() { return Digraph::from_edges(2, {{0, 1}}); }
Digraph both() { return Digraph::complete(2); }

/// Test-local stateful component: the graph must CHANGE every round.
/// Non-blocking on its own (>= 2 graphs), but its intersection with any
/// window >= 2 constraint is empty.
class AlternatingAdversary : public MessageAdversary {
 public:
  AlternatingAdversary(int n, std::vector<Digraph> graphs)
      : MessageAdversary(n, std::move(graphs), "alternating") {}
  AdvState transition(AdvState state, int letter) const override {
    return state == 1 + letter ? kRejectState : 1 + letter;
  }
};

/// Test-local stateful component: any sequence until the trap graph is
/// played; from then on the graph must change every round. Used to force
/// the product trim: the one-letter prefix "trap" is admissible for this
/// component AND for a windowed component, yet extends to no joint
/// infinite run, so the trimmed product must already exclude it.
class TrapAlternatingAdversary : public MessageAdversary {
 public:
  TrapAlternatingAdversary(int n, std::vector<Digraph> graphs, int trap)
      : MessageAdversary(n, std::move(graphs), "trap-alternating"),
        trap_(trap) {}
  AdvState transition(AdvState state, int letter) const override {
    if (state == 0) return letter == trap_ ? 1 + letter : 0;
    return state == 1 + letter ? kRejectState : 1 + letter;
  }

 private:
  int trap_;
};

TEST(ComposeProduct, ObliviousProductIsAlphabetIntersection) {
  // lossy_link params are subset masks over {<-, ->, <->}:
  // 5 = {<-, <->}, 3 = {<-, ->}, intersection 1 = {<-}.
  const auto product = from_spec(
      R"({"op":"product","of":[{"family":"lossy_link","n":2,"param":5},)"
      R"({"family":"lossy_link","n":2,"param":3}]})");
  const auto expected = make_family_adversary({"lossy_link", 2, 1});
  const auto a = make_family_adversary({"lossy_link", 2, 5});
  const auto b = make_family_adversary({"lossy_link", 2, 3});
  for (int length = 1; length <= 3; ++length) {
    const SeqSet got = sequence_set(*product, length);
    EXPECT_EQ(got, sequence_set(*expected, length)) << "length " << length;
    EXPECT_EQ(got, intersect(sequence_set(*a, length),
                             sequence_set(*b, length)))
        << "length " << length;
  }
}

TEST(ComposeProduct, TrimExcludesJointlyDeadPrefixes) {
  // Windowed (>= 2 repeats) x trap-alternating on <->: the prefix "<->"
  // is admissible for each component alone, but jointly dead -- the
  // windowed component then demands a repeat the alternating mode
  // forbids. The trimmed product must therefore equal the windowed
  // adversary over {<-, ->} alone, at every depth. An untrimmed
  // synchronous product would wrongly admit "<->" (and "<-<-<->", ...).
  std::vector<std::unique_ptr<MessageAdversary>> parts;
  parts.push_back(std::make_unique<WindowedAdversary>(
      2, std::vector<Digraph>{left(), right(), both()}, 2));
  parts.push_back(std::make_unique<TrapAlternatingAdversary>(
      2, std::vector<Digraph>{left(), right(), both()}, 2));
  const ProductAdversary product(std::move(parts));
  const WindowedAdversary expected(
      2, std::vector<Digraph>{left(), right()}, 2);
  for (int length = 1; length <= 4; ++length) {
    EXPECT_EQ(sequence_set(product, length),
              sequence_set(expected, length))
        << "length " << length;
  }
}

TEST(ComposeProduct, BlockingProductThrows) {
  // Repeat >= 2 rounds vs. switch every round: the intersection is
  // empty, which violates the library-wide non-blocking invariant and
  // must be rejected at construction.
  std::vector<std::unique_ptr<MessageAdversary>> parts;
  parts.push_back(std::make_unique<WindowedAdversary>(
      2, std::vector<Digraph>{left(), right()}, 2));
  parts.push_back(std::make_unique<AlternatingAdversary>(
      2, std::vector<Digraph>{left(), right()}));
  try {
    const ProductAdversary product(std::move(parts));
    FAIL() << "blocking product did not throw";
  } catch (const std::invalid_argument& error) {
    EXPECT_EQ(std::string(error.what()),
              "composed: product is blocking (no admissible sequences)");
  }
}

TEST(ComposeProduct, DisjointAlphabetsThrow) {
  try {
    from_spec(
        R"({"op":"product","of":[{"family":"lossy_link","n":2,"param":1},)"
        R"({"family":"lossy_link","n":2,"param":2}]})");
    FAIL() << "empty common alphabet did not throw";
  } catch (const std::invalid_argument& error) {
    EXPECT_EQ(std::string(error.what()),
              "composed: product alphabet is empty");
  }
}

TEST(ComposeUnion, ObliviousUnionIsExactSequenceUnion) {
  // lossy_link(1) admits only <-^w and lossy_link(2) only ->^w; their
  // union holds exactly these two sequences per length -- NOT the 2^L
  // mixtures the oblivious adversary over {<-, ->} would admit.
  const auto u = from_spec(
      R"({"op":"union","of":[{"family":"lossy_link","n":2,"param":1},)"
      R"({"family":"lossy_link","n":2,"param":2}]})");
  const auto a = make_family_adversary({"lossy_link", 2, 1});
  const auto b = make_family_adversary({"lossy_link", 2, 2});
  for (int length = 1; length <= 4; ++length) {
    const SeqSet got = sequence_set(*u, length);
    EXPECT_EQ(got,
              unite(sequence_set(*a, length), sequence_set(*b, length)))
        << "length " << length;
    EXPECT_EQ(got.size(), 2u) << "length " << length;
  }
}

TEST(ComposeUnion, StatefulUnionOverOverlappingAlphabets) {
  // Windowed over {<-, ->} vs. oblivious over {->, <->}: the union
  // alphabet is all three graphs and the sequence set is the exact set
  // union (e.g. "-> ->" comes from both, "-> <-" from neither at
  // depth 2 -- windowed forbids the early switch).
  std::vector<std::unique_ptr<MessageAdversary>> parts;
  parts.push_back(std::make_unique<WindowedAdversary>(
      2, std::vector<Digraph>{left(), right()}, 2));
  parts.push_back(std::make_unique<ObliviousAdversary>(
      2, std::vector<Digraph>{right(), both()}, "ll23"));
  const WindowedAdversary a(2, std::vector<Digraph>{left(), right()}, 2);
  const ObliviousAdversary b(2, std::vector<Digraph>{right(), both()},
                             "ll23");
  const UnionAdversary u(std::move(parts));
  EXPECT_EQ(u.alphabet_size(), 3);
  for (int length = 1; length <= 4; ++length) {
    EXPECT_EQ(sequence_set(u, length),
              unite(sequence_set(a, length), sequence_set(b, length)))
        << "length " << length;
  }
}

TEST(ComposeWindow, MatchesHandWrittenWindowedFamily) {
  // window(w over lossy_link(7)) must reproduce windowed_lossy_link(w)
  // exactly: the combinator is the product of the inner adversary with
  // the WindowedAdversary over its alphabet.
  for (const int w : {2, 3}) {
    const auto composed = from_spec(
        R"({"op":"window","w":)" + std::to_string(w) +
        R"(,"of":[{"family":"lossy_link","n":2,"param":7}]})");
    const auto expected =
        make_family_adversary({"windowed_lossy_link", 2, w});
    for (int length = 1; length <= 4; ++length) {
      EXPECT_EQ(sequence_set(*composed, length),
                sequence_set(*expected, length))
          << "w " << w << " length " << length;
    }
  }
}

TEST(ComposeWindow, WindowOneIsInnerAdversary) {
  const auto composed = from_spec(
      R"({"op":"window","w":1,"of":[{"family":"omission","n":2,"param":1}]})");
  const auto inner = make_family_adversary({"omission", 2, 1});
  for (int length = 1; length <= 3; ++length) {
    EXPECT_EQ(sequence_set(*composed, length),
              sequence_set(*inner, length))
        << "length " << length;
  }
}

TEST(ComposeCodec, RoundTripsAndCanonicalizes) {
  const std::string canonical =
      R"({"op":"window","w":2,"of":[{"op":"product","of":[)"
      R"({"family":"heard_of","n":3,"param":2},)"
      R"({"family":"omission","n":3,"param":1}]}]})";
  // Whitespace and member order are insignificant on input; the emitter
  // restores the canonical compact form.
  const std::string loose =
      " { \"of\" : [ { \"of\": [ {\"n\":3, \"family\": \"heard_of\", "
      "\"param\": 2}, {\"family\":\"omission\",\"param\":1,\"n\":3} ], "
      "\"op\": \"product\" } ], \"w\" : 2, \"op\" : \"window\" } ";
  EXPECT_EQ(compose_spec_to_string(parse_compose_spec(loose)), canonical);
  EXPECT_EQ(compose_spec_to_string(parse_compose_spec(canonical)),
            canonical);

  const ComposeSpec spec = parse_compose_spec(canonical);
  EXPECT_EQ(validate_compose_spec(spec), 3);
  const FamilyPoint point = composed_family_point(spec);
  EXPECT_TRUE(is_composed_family(point.family));
  EXPECT_EQ(point.n, 3);
  EXPECT_EQ(point.param, 0);
  EXPECT_EQ(composed_spec_of(point.family), canonical);
  EXPECT_EQ(family_point_label(point), canonical);
}

TEST(ComposeCodec, ComposedAdversariesStayCompactAndNonBlocking) {
  // Compactness is what keeps the default liveness hooks exact for every
  // composed adversary; non-blocking is the invariant the solvability
  // checker relies on -- verify both on a nested composition, the latter
  // by walking every state reachable within a few rounds.
  const auto composed = from_spec(
      R"({"op":"union","of":[{"op":"window","w":2,"of":[)"
      R"({"family":"lossy_link","n":2,"param":7}]},)"
      R"({"family":"omission","n":2,"param":1}]})");
  EXPECT_TRUE(composed->is_compact());
  std::set<AdvState> frontier = {composed->initial_state()};
  for (int round = 0; round < 4; ++round) {
    std::set<AdvState> next;
    for (const AdvState state : frontier) {
      int allowed = 0;
      for (int letter = 0; letter < composed->alphabet_size(); ++letter) {
        const AdvState successor = composed->transition(state, letter);
        if (successor == kRejectState) continue;
        ++allowed;
        next.insert(successor);
      }
      EXPECT_GT(allowed, 0) << "blocking state " << state;
    }
    frontier = std::move(next);
  }
}

}  // namespace
}  // namespace topocon
