// The Chrome-trace span writer: the emitted document is well-formed JSON
// (parsed back with the repo's own strict reader), events carry the
// Trace Event Format fields chrome://tracing requires, string escaping
// is safe, threads get stable small tids, and a traced Session run
// produces properly nested job > depth > level > chunk spans.
#include <cstdint>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/api.hpp"
#include "core/solvability.hpp"
#include "runtime/sweep/json.hpp"
#include "telemetry/trace.hpp"

namespace topocon {
namespace {

using telemetry::TraceArg;
using telemetry::TraceWriter;

/// Emits spans through `body`, destroys the writer (writing the closing
/// bracket), and parses the document back with the strict reader — every
/// numeric field the writer emits is integral, so the deterministic
/// integer-only mode must accept it.
sweep::JsonValue trace_document(
    const std::function<void(TraceWriter&)>& body) {
  std::ostringstream out;
  {
    TraceWriter writer(out);
    body(writer);
  }
  return sweep::JsonReader::parse(out.str());
}

TEST(TraceWriter, EmitsWellFormedCompleteEvents) {
  const sweep::JsonValue doc = trace_document([](TraceWriter& writer) {
    writer.complete("outer", "test", 0, 100,
                    {TraceArg::num("states", 42),
                     TraceArg::str("label", "{<->}")});
    writer.complete("inner", "test", 10, 20);
  });
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.elements.size(), 2u);

  const sweep::JsonValue& outer = doc.elements[0];
  EXPECT_EQ(outer.at("name").as_string(), "outer");
  EXPECT_EQ(outer.at("cat").as_string(), "test");
  EXPECT_EQ(outer.at("ph").as_string(), "X");
  EXPECT_EQ(outer.at("ts").as_uint(), 0u);
  EXPECT_EQ(outer.at("dur").as_uint(), 100u);
  EXPECT_EQ(outer.at("pid").as_uint(), 1u);
  EXPECT_EQ(outer.at("args").at("states").as_uint(), 42u);
  EXPECT_EQ(outer.at("args").at("label").as_string(), "{<->}");

  // Both events come from this thread: same tid, assigned 1-based in
  // first-event order.
  EXPECT_EQ(outer.at("tid").as_uint(), doc.elements[1].at("tid").as_uint());
  EXPECT_EQ(outer.at("tid").as_uint(), 1u);
}

TEST(TraceWriter, EmitsCounterEvents) {
  const sweep::JsonValue doc = trace_document([](TraceWriter& writer) {
    writer.counter("frontier_states", 1234);
  });
  ASSERT_EQ(doc.elements.size(), 1u);
  const sweep::JsonValue& event = doc.elements[0];
  EXPECT_EQ(event.at("ph").as_string(), "C");
  EXPECT_EQ(event.at("name").as_string(), "frontier_states");
  EXPECT_EQ(event.at("args").at("value").as_uint(), 1234u);
}

TEST(TraceWriter, EscapesNamesAndStringArgs) {
  const sweep::JsonValue doc = trace_document([](TraceWriter& writer) {
    writer.complete("quote\" slash\\ tab\t", "c\nat", 0, 1,
                    {TraceArg::str("k", std::string_view("nul\0!", 5))});
  });
  const sweep::JsonValue& event = doc.elements[0];
  EXPECT_EQ(event.at("name").as_string(), "quote\" slash\\ tab\t");
  EXPECT_EQ(event.at("cat").as_string(), "c\nat");
  EXPECT_EQ(event.at("args").at("k").as_string(),
            std::string_view("nul\0!", 5));
}

TEST(TraceWriter, AssignsDistinctTidsPerThread) {
  const sweep::JsonValue doc = trace_document([](TraceWriter& writer) {
    writer.complete("main", "t", 0, 1);
    std::thread worker(
        [&writer] { writer.complete("worker", "t", 0, 1); });
    worker.join();
  });
  ASSERT_EQ(doc.elements.size(), 2u);
  // 1-based in first-event order: main logged first.
  EXPECT_EQ(doc.elements[0].at("tid").as_uint(), 1u);
  EXPECT_EQ(doc.elements[1].at("tid").as_uint(), 2u);
}

TEST(TraceWriter, NowIsMonotonic) {
  std::ostringstream out;
  TraceWriter writer(out);
  const std::uint64_t a = writer.now_us();
  const std::uint64_t b = writer.now_us();
  EXPECT_LE(a, b);
}

// ---- Span structure of a real traced run ----------------------------------

struct Span {
  std::string name;
  std::string category;
  std::uint64_t ts = 0;
  std::uint64_t dur = 0;

  std::uint64_t end() const { return ts + dur; }
  bool contains(const Span& other) const {
    return ts <= other.ts && other.end() <= end();
  }
};

/// True iff some span of `parents` contains `child` in time.
bool contained_in_any(const Span& child, const std::vector<Span>& parents) {
  for (const Span& parent : parents) {
    if (parent.contains(child)) return true;
  }
  return false;
}

// A single-job, single-thread traced Session run must produce one job
// span per query plus depth/level/chunk spans nested inside it.
TEST(TraceWriter, SessionRunEmitsNestedSpans) {
  std::ostringstream out;
  {
    TraceWriter writer(out);
    api::Session session({.num_threads = 1,
                          .record_global = false,
                          .trace = &writer});
    SolvabilityOptions solve;
    solve.max_depth = 5;
    session.run("traced", {api::solvability({"lossy_link", 2, 7}, solve)});
  }
  const sweep::JsonValue doc = sweep::JsonReader::parse(out.str());
  ASSERT_TRUE(doc.is_array());

  std::map<std::string, std::vector<Span>> by_category;
  bool saw_frontier_counter = false;
  for (const sweep::JsonValue& event : doc.elements) {
    if (event.at("ph").as_string() == "C") {
      saw_frontier_counter |=
          event.at("name").as_string() == "frontier_states";
      continue;
    }
    Span span;
    span.name = event.at("name").as_string();
    span.category = event.at("cat").as_string();
    span.ts = event.at("ts").as_uint();
    span.dur = event.at("dur").as_uint();
    by_category[span.category].push_back(span);
  }

  // Chunk expansions log under category "expand" with name "chunk".
  ASSERT_EQ(by_category["job"].size(), 1u);
  EXPECT_FALSE(by_category["depth"].empty());
  EXPECT_FALSE(by_category["level"].empty());
  EXPECT_FALSE(by_category["expand"].empty());
  EXPECT_TRUE(saw_frontier_counter);

  // Containment down the hierarchy (flooring preserves it exactly).
  for (const Span& depth : by_category["depth"]) {
    EXPECT_TRUE(by_category["job"][0].contains(depth)) << depth.name;
  }
  for (const Span& level : by_category["level"]) {
    EXPECT_TRUE(contained_in_any(level, by_category["depth"])) << level.name;
  }
  for (const Span& chunk : by_category["expand"]) {
    EXPECT_EQ(chunk.name, "chunk");
    EXPECT_TRUE(contained_in_any(chunk, by_category["level"])) << chunk.ts;
  }
}

}  // namespace
}  // namespace topocon
