// Randomized differential test of the parallel sweep engine: ~200 random
// compact (oblivious) adversaries with n <= 3 and depth <= 4, each checked
// by the serial solvability checker and by the parallel engine at a
// rotating thread count. Verdicts, per-depth statistics, leaf partitions,
// and component structures must agree exactly (the engine's contract is
// bit-identical results, not just equal verdicts).
#include <memory>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/oblivious.hpp"
#include "core/solvability.hpp"
#include "graph/enumerate.hpp"
#include "runtime/sweep/parallel_solver.hpp"

namespace topocon {
namespace {

std::unique_ptr<ObliviousAdversary> random_oblivious(std::mt19937& rng,
                                                     int n) {
  const std::vector<Digraph> universe = all_graphs(n);
  std::uniform_int_distribution<std::size_t> graph_count(1, 5);
  std::uniform_int_distribution<std::size_t> pick(0, universe.size() - 1);
  const std::size_t count = graph_count(rng);
  std::vector<Digraph> alphabet;
  for (std::size_t i = 0; i < count; ++i) {
    const Digraph& g = universe[pick(rng)];
    bool duplicate = false;
    for (const Digraph& have : alphabet) {
      if (have == g) duplicate = true;
    }
    if (!duplicate) alphabet.push_back(g);
  }
  return std::make_unique<ObliviousAdversary>(n, std::move(alphabet),
                                              "random-oblivious");
}

void expect_equal_results(const SolvabilityResult& serial,
                          const SolvabilityResult& parallel,
                          int case_index) {
  ASSERT_EQ(parallel.verdict, serial.verdict) << "case " << case_index;
  EXPECT_EQ(parallel.certified_depth, serial.certified_depth)
      << "case " << case_index;
  ASSERT_EQ(parallel.per_depth.size(), serial.per_depth.size());
  for (std::size_t d = 0; d < serial.per_depth.size(); ++d) {
    const DepthStats& a = serial.per_depth[d];
    const DepthStats& b = parallel.per_depth[d];
    EXPECT_EQ(a.num_leaf_classes, b.num_leaf_classes)
        << "case " << case_index << " depth " << a.depth;
    EXPECT_EQ(a.num_components, b.num_components);
    EXPECT_EQ(a.merged_components, b.merged_components);
    EXPECT_EQ(a.separated, b.separated);
    EXPECT_EQ(a.valent_broadcastable, b.valent_broadcastable);
    EXPECT_EQ(a.strong_assignable, b.strong_assignable);
    EXPECT_EQ(a.interner_views, b.interner_views);
  }
  ASSERT_EQ(parallel.analysis.has_value(), serial.analysis.has_value());
  if (serial.analysis.has_value()) {
    const DepthAnalysis& sa = *serial.analysis;
    const DepthAnalysis& pa = *parallel.analysis;
    EXPECT_EQ(pa.depth, sa.depth);
    EXPECT_EQ(pa.truncated, sa.truncated);
    EXPECT_EQ(pa.leaf_component, sa.leaf_component) << "case " << case_index;
    ASSERT_EQ(pa.components.size(), sa.components.size());
    for (std::size_t c = 0; c < sa.components.size(); ++c) {
      const ComponentInfo& x = sa.components[c];
      const ComponentInfo& y = pa.components[c];
      EXPECT_EQ(x.num_leaves, y.num_leaves);
      EXPECT_EQ(x.valence_mask, y.valence_mask);
      EXPECT_EQ(x.common_broadcast, y.common_broadcast);
      EXPECT_EQ(x.broadcasters, y.broadcasters);
      EXPECT_EQ(x.common_input_values, y.common_input_values);
      EXPECT_EQ(x.assigned_value, y.assigned_value);
      EXPECT_EQ(x.assigned_value_strong, y.assigned_value_strong);
    }
  }
  ASSERT_EQ(parallel.table.has_value(), serial.table.has_value());
  if (serial.table.has_value()) {
    EXPECT_EQ(parallel.table->size(), serial.table->size());
    EXPECT_EQ(parallel.table->worst_case_decision_round(),
              serial.table->worst_case_decision_round());
    EXPECT_EQ(parallel.table->depth(), serial.table->depth());
  }
}

TEST(SweepDifferential, RandomCompactAdversaries) {
  std::mt19937 rng(20250729);
  const int cases = 200;
  for (int i = 0; i < cases; ++i) {
    const int n = 2 + static_cast<int>(rng() % 2);
    const auto ma = random_oblivious(rng, n);
    SolvabilityOptions options;
    options.max_depth = 1 + static_cast<int>(rng() % 4);
    options.num_values = 2 + static_cast<int>(rng() % 2);
    options.max_states = 500'000;
    options.build_table = (rng() % 2) == 0;
    options.strong_validity = (rng() % 4) == 0;

    const SolvabilityResult serial = check_solvability(*ma, options);
    sweep::ThreadPool pool(2 + static_cast<int>(i % 3));
    const SolvabilityResult parallel =
        sweep::parallel_check_solvability(*ma, options, pool);
    expect_equal_results(serial, parallel, i);
  }
}

}  // namespace
}  // namespace topocon
