// The scenario catalog: registry invariants, grid override handling, and
// the record-merge semantics resume is built on (completed records from a
// checkpoint + freshly-run pending jobs == an uninterrupted run).
#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "api/api.hpp"
#include "scenario/render.hpp"
#include "scenario/scenario.hpp"

namespace topocon {
namespace {

using api::Plan;
using scenario::GridOverrides;
using scenario::Scenario;
using sweep::JobRecord;

TEST(ScenarioCatalog, NamesAreUniqueAndFindable) {
  std::set<std::string> names;
  for (const Scenario& s : scenario::catalog()) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.summary.empty());
    EXPECT_FALSE(s.description.empty());
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
    EXPECT_EQ(scenario::find_scenario(s.name), &s);
  }
  EXPECT_GE(names.size(), 5u);
  EXPECT_EQ(scenario::find_scenario("nope"), nullptr);
}

TEST(ScenarioCatalog, EveryScenarioExpandsToABuildableGrid) {
  for (const Scenario& s : scenario::catalog()) {
    const Plan plan = scenario::expand_scenario(s, {});
    EXPECT_EQ(plan.name, s.name);
    ASSERT_FALSE(plan.queries.empty()) << s.name;
    for (const api::Query& query : plan.queries) {
      EXPECT_FALSE(api::label_of(query).empty()) << s.name;
      // Every grid point must construct without running anything heavy.
      const auto adversary = make_family_adversary(api::point_of(query));
      EXPECT_EQ(adversary->num_processes(), api::point_of(query).n)
          << s.name << " " << api::label_of(query);
      // ... and survive the JSON round trip checkpoints rely on.
      const api::Query reparsed =
          api::parse_query(api::query_to_string(query));
      EXPECT_EQ(api::query_to_string(reparsed), api::query_to_string(query));
    }
  }
}

TEST(ScenarioOverrides, OmissionGridRespondsToNAndParamRange) {
  const Scenario* s = scenario::find_scenario("omission-n3");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(scenario::expand_scenario(*s, {}).queries.size(), 7u);  // f=0..6

  GridOverrides n2;
  n2.n = 2;
  EXPECT_EQ(scenario::expand_scenario(*s, n2).queries.size(), 3u);  // f=0..2

  GridOverrides window;
  window.param_min = 1;
  window.param_max = 2;
  const Plan plan = scenario::expand_scenario(*s, window);
  ASSERT_EQ(plan.queries.size(), 2u);
  EXPECT_EQ(api::label_of(plan.queries[0]), "n=3 f=1");
  EXPECT_EQ(api::label_of(plan.queries[1]), "n=3 f=2");
}

TEST(ScenarioOverrides, HeardOfGridSkipsLegsWhoseIntervalEmpties) {
  const Scenario* grid = scenario::find_scenario("heard-of-grid");
  ASSERT_NE(grid, nullptr);
  // k=3 only exists on the n=3 leg; the n=2 leg is skipped, not an error.
  GridOverrides k3;
  k3.param_min = 3;
  const Plan plan = scenario::expand_scenario(*grid, k3);
  ASSERT_EQ(plan.queries.size(), 1u);
  EXPECT_EQ(api::label_of(plan.queries[0]), "n=3 k=3");
  // Beyond every leg's range is still an error.
  GridOverrides k9;
  k9.param_min = 9;
  EXPECT_THROW(scenario::expand_scenario(*grid, k9), std::invalid_argument);
}

TEST(ScenarioOverrides, UnsupportedAndOutOfRangeOverridesThrow) {
  const Scenario* curves = scenario::find_scenario("convergence-curves");
  ASSERT_NE(curves, nullptr);
  GridOverrides n_override;
  n_override.n = 2;
  EXPECT_THROW(scenario::expand_scenario(*curves, n_override),
               std::invalid_argument);
  GridOverrides param_override;
  param_override.param_max = 2;
  EXPECT_THROW(scenario::expand_scenario(*curves, param_override),
               std::invalid_argument);

  const Scenario* atlas = scenario::find_scenario("lossy-link-atlas");
  ASSERT_NE(atlas, nullptr);
  EXPECT_THROW(scenario::expand_scenario(*atlas, n_override),
               std::invalid_argument);
  GridOverrides bad_range;
  bad_range.param_max = 9;
  EXPECT_THROW(scenario::expand_scenario(*atlas, bad_range),
               std::invalid_argument);
  GridOverrides empty_range;
  empty_range.param_min = 5;
  empty_range.param_max = 2;
  EXPECT_THROW(scenario::expand_scenario(*atlas, empty_range),
               std::invalid_argument);
}

// Resume's core claim, tested at the library level: running only the
// pending jobs and merging by job index reproduces the uninterrupted
// run's records exactly.
TEST(ScenarioResumeMerge, PendingJobsPlusCheckpointEqualsFullRun) {
  const Scenario* atlas = scenario::find_scenario("lossy-link-atlas");
  ASSERT_NE(atlas, nullptr);
  GridOverrides small;
  small.param_max = 3;
  const Plan full = scenario::expand_scenario(*atlas, small);
  ASSERT_EQ(full.queries.size(), 3u);
  api::Session session({.num_threads = 2, .record_global = false});
  std::vector<JobRecord> expected;
  for (const sweep::JobOutcome& outcome : session.run(full)) {
    expected.push_back(sweep::summarize(outcome));
  }

  // "Checkpoint" holds job 1; jobs 0 and 2 are pending.
  std::vector<JobRecord> merged(3);
  merged[1] = expected[1];
  const std::vector<sweep::JobOutcome> outcomes = session.run(
      full.name, {full.queries[0], full.queries[2]});
  merged[0] = sweep::summarize(outcomes[0]);
  merged[2] = sweep::summarize(outcomes[1]);
  EXPECT_EQ(merged, expected);
}

TEST(ScenarioRender, RendersSolvabilityAndSeriesRecords) {
  JobRecord solvable;
  solvable.family = "lossy_link";
  solvable.label = "{<-}";
  solvable.n = 2;
  solvable.kind = sweep::JobKind::kSolvability;
  solvable.verdict = "SOLVABLE";
  solvable.certified_depth = 1;
  DepthStats stats;
  stats.depth = 1;
  stats.num_leaf_classes = 4;
  stats.num_components = 2;
  solvable.per_depth.push_back(stats);
  JobRecord::Table table;
  table.entries = 12;
  solvable.table = table;

  JobRecord series;
  series.family = "finite_loss";
  series.label = "n=2";
  series.n = 2;
  series.kind = sweep::JobKind::kDepthSeries;
  series.series.push_back(stats);

  std::ostringstream out;
  scenario::render_records(out, "unit", {solvable, series});
  const std::string text = out.str();
  EXPECT_NE(text.find("Sweep unit (2 jobs)"), std::string::npos);
  EXPECT_NE(text.find("SOLVABLE"), std::string::npos);
  EXPECT_NE(text.find("12 entries"), std::string::npos);
  EXPECT_NE(text.find("Convergence finite_loss n=2"), std::string::npos);
}

TEST(ScenarioRender, CsvKeepsEveryJobIncludingCertificatelessExtractions) {
  JobRecord series;
  series.family = "lossy_link";
  series.label = "{<-, ->}";  // comma in the label forces RFC 4180 quoting
  series.n = 2;
  series.kind = sweep::JobKind::kDepthSeries;
  DepthStats stats;
  stats.depth = 1;
  stats.num_leaf_classes = 8;
  stats.num_components = 4;
  stats.separated = true;
  series.series.push_back(stats);

  JobRecord extraction;
  extraction.family = "lossy_link";
  extraction.label = "{<->}";
  extraction.n = 2;
  extraction.kind = sweep::JobKind::kDecisionTable;
  extraction.verdict = "SOLVABLE";
  extraction.certified_depth = 1;
  JobRecord::Table table;
  table.entries = 10;
  table.worst_decision_round = 1;
  extraction.table = table;
  extraction.round_entries = {2, 8};

  JobRecord merged;  // no certificate: must still appear in the CSV
  merged.family = "lossy_link";
  merged.label = "{<-, ->, <->}";
  merged.n = 2;
  merged.kind = sweep::JobKind::kDecisionTable;
  merged.verdict = "NOT-SEPARATED";

  std::ostringstream out;
  scenario::render_records_csv(out, "unit", {series, extraction, merged});
  const std::string text = out.str();
  // Header + 1 series row + 2 round rows + 1 verdict-only row.
  EXPECT_EQ(static_cast<int>(std::count(text.begin(), text.end(), '\n')), 5);
  EXPECT_NE(text.find("\"{<-, ->}\""), std::string::npos);
  EXPECT_NE(text.find("unit,1,lossy_link,{<->},2,decision_table,0,,,,,,,,"
                      "SOLVABLE,1,2,1"),
            std::string::npos);
  EXPECT_NE(text.find("unit,2,lossy_link,\"{<-, ->, <->}\",2,decision_table"
                      ",,,,,,,,,NOT-SEPARATED,,,"),
            std::string::npos);
}

}  // namespace
}  // namespace topocon
