// The scenario catalog: registry invariants, grid override handling, and
// the record-merge semantics resume is built on (completed records from a
// checkpoint + freshly-run pending jobs == an uninterrupted run).
#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "api/api.hpp"
#include "scenario/render.hpp"
#include "scenario/scenario.hpp"

namespace topocon {
namespace {

using api::Plan;
using scenario::GridOverrides;
using scenario::Scenario;
using sweep::JobRecord;

TEST(ScenarioCatalog, NamesAreUniqueAndFindable) {
  std::set<std::string> names;
  for (const Scenario& s : scenario::catalog()) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.summary.empty());
    EXPECT_FALSE(s.description.empty());
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
    EXPECT_EQ(scenario::find_scenario(s.name), &s);
  }
  EXPECT_GE(names.size(), 5u);
  EXPECT_EQ(scenario::find_scenario("nope"), nullptr);
}

TEST(ScenarioCatalog, EveryScenarioExpandsToABuildableGrid) {
  for (const Scenario& s : scenario::catalog()) {
    const Plan plan = scenario::expand_scenario(s, {});
    EXPECT_EQ(plan.name, s.name);
    ASSERT_FALSE(plan.queries.empty()) << s.name;
    for (const api::Query& query : plan.queries) {
      EXPECT_FALSE(api::label_of(query).empty()) << s.name;
      // Every grid point must construct without running anything heavy.
      const auto adversary = make_family_adversary(api::point_of(query));
      EXPECT_EQ(adversary->num_processes(), api::point_of(query).n)
          << s.name << " " << api::label_of(query);
      // ... and survive the JSON round trip checkpoints rely on.
      const api::Query reparsed =
          api::parse_query(api::query_to_string(query));
      EXPECT_EQ(api::query_to_string(reparsed), api::query_to_string(query));
    }
  }
}

TEST(ScenarioOverrides, OmissionGridRespondsToNAndParamRange) {
  const Scenario* s = scenario::find_scenario("omission-n3");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(scenario::expand_scenario(*s, {}).queries.size(), 7u);  // f=0..6

  GridOverrides n2;
  n2.n = 2;
  EXPECT_EQ(scenario::expand_scenario(*s, n2).queries.size(), 3u);  // f=0..2

  GridOverrides window;
  window.param_min = 1;
  window.param_max = 2;
  const Plan plan = scenario::expand_scenario(*s, window);
  ASSERT_EQ(plan.queries.size(), 2u);
  EXPECT_EQ(api::label_of(plan.queries[0]), "n=3 f=1");
  EXPECT_EQ(api::label_of(plan.queries[1]), "n=3 f=2");
}

TEST(ScenarioOverrides, HeardOfGridSkipsLegsWhoseIntervalEmpties) {
  const Scenario* grid = scenario::find_scenario("heard-of-grid");
  ASSERT_NE(grid, nullptr);
  // k=3 only exists on the n=3 leg; the n=2 leg is skipped, not an error.
  GridOverrides k3;
  k3.param_min = 3;
  const Plan plan = scenario::expand_scenario(*grid, k3);
  ASSERT_EQ(plan.queries.size(), 1u);
  EXPECT_EQ(api::label_of(plan.queries[0]), "n=3 k=3");
  // Beyond every leg's range is still an error.
  GridOverrides k9;
  k9.param_min = 9;
  EXPECT_THROW(scenario::expand_scenario(*grid, k9), std::invalid_argument);
}

TEST(ScenarioOverrides, UnsupportedAndOutOfRangeOverridesThrow) {
  const Scenario* curves = scenario::find_scenario("convergence-curves");
  ASSERT_NE(curves, nullptr);
  GridOverrides n_override;
  n_override.n = 2;
  EXPECT_THROW(scenario::expand_scenario(*curves, n_override),
               std::invalid_argument);
  GridOverrides param_override;
  param_override.param_max = 2;
  EXPECT_THROW(scenario::expand_scenario(*curves, param_override),
               std::invalid_argument);

  const Scenario* atlas = scenario::find_scenario("lossy-link-atlas");
  ASSERT_NE(atlas, nullptr);
  EXPECT_THROW(scenario::expand_scenario(*atlas, n_override),
               std::invalid_argument);
  GridOverrides bad_range;
  bad_range.param_max = 9;
  EXPECT_THROW(scenario::expand_scenario(*atlas, bad_range),
               std::invalid_argument);
  GridOverrides empty_range;
  empty_range.param_min = 5;
  empty_range.param_max = 2;
  EXPECT_THROW(scenario::expand_scenario(*atlas, empty_range),
               std::invalid_argument);
}

TEST(ScenarioOverrides, AtlasRestrictsByNAndParamInterval) {
  const Scenario* atlas = scenario::find_scenario("atlas");
  ASSERT_NE(atlas, nullptr);
  EXPECT_TRUE(atlas->supports_n);
  EXPECT_TRUE(atlas->supports_param_range);
  const std::size_t full = scenario::expand_scenario(*atlas, {}).queries.size();

  // --n keeps only that process count's legs; n=2 + n=3 = the full grid.
  GridOverrides n2;
  n2.n = 2;
  GridOverrides n3;
  n3.n = 3;
  const Plan plan2 = scenario::expand_scenario(*atlas, n2);
  const Plan plan3 = scenario::expand_scenario(*atlas, n3);
  EXPECT_EQ(plan2.queries.size() + plan3.queries.size(), full);
  for (const api::Query& query : plan2.queries) {
    EXPECT_EQ(api::point_of(query).n, 2);
  }
  for (const api::Query& query : plan3.queries) {
    EXPECT_EQ(api::point_of(query).n, 3);
  }

  // The param interval intersects every leg; legs that empty out are
  // skipped (param >= 5: lossy_link keeps masks 5..7, omission n=3
  // keeps f=5..6, every other leg empties).
  GridOverrides high;
  high.param_min = 5;
  const Plan plan_high = scenario::expand_scenario(*atlas, high);
  ASSERT_EQ(plan_high.queries.size(), 5u);
  for (const api::Query& query : plan_high.queries) {
    EXPECT_GE(api::point_of(query).param, 5);
  }

  // Out-of-range n and an interval missing every leg carry exact
  // messages (they surface verbatim on the CLI).
  GridOverrides n4;
  n4.n = 4;
  try {
    scenario::expand_scenario(*atlas, n4);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_STREQ(error.what(), "atlas: --n must be 2 or 3, got 4");
  }
  GridOverrides beyond;
  beyond.param_min = 8;
  try {
    scenario::expand_scenario(*atlas, beyond);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_STREQ(error.what(),
                 "atlas: no grid leg intersects --param-min/--param-max");
  }
}

TEST(ScenarioOverrides, FuzzComposedSeedAndCountAreFirstClass) {
  const Scenario* fuzz = scenario::find_scenario("fuzz-composed");
  ASSERT_NE(fuzz, nullptr);
  EXPECT_TRUE(fuzz->supports_seed);

  // --seed carries the full uint64 range the --param-min alias cannot.
  GridOverrides max_seed;
  max_seed.seed = std::numeric_limits<std::uint64_t>::max();
  max_seed.count = 2;
  const Plan plan = scenario::expand_scenario(*fuzz, max_seed);
  EXPECT_EQ(plan.queries.size(), 2u);

  // The legacy aliases still expand, and agree with the first-class
  // flags where the ranges overlap.
  GridOverrides via_alias;
  via_alias.param_min = 6;
  via_alias.param_max = 2;
  GridOverrides via_flags;
  via_flags.seed = 6;
  via_flags.count = 2;
  const Plan alias_plan = scenario::expand_scenario(*fuzz, via_alias);
  const Plan flags_plan = scenario::expand_scenario(*fuzz, via_flags);
  ASSERT_EQ(alias_plan.queries.size(), flags_plan.queries.size());
  for (std::size_t j = 0; j < alias_plan.queries.size(); ++j) {
    EXPECT_EQ(api::query_to_string(alias_plan.queries[j]),
              api::query_to_string(flags_plan.queries[j]));
  }

  // Mixing a flag with its own alias is ambiguous and rejected with an
  // exact message.
  GridOverrides seed_conflict;
  seed_conflict.seed = 6;
  seed_conflict.param_min = 6;
  try {
    scenario::expand_scenario(*fuzz, seed_conflict);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_STREQ(error.what(),
                 "fuzz-composed: --seed conflicts with --param-min (the "
                 "seed alias); pass one of them");
  }
  GridOverrides count_conflict;
  count_conflict.count = 2;
  count_conflict.param_max = 2;
  try {
    scenario::expand_scenario(*fuzz, count_conflict);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_STREQ(error.what(),
                 "fuzz-composed: --count conflicts with --param-max (the "
                 "count alias); pass one of them");
  }

  // Scenarios without a seed reject the override by name.
  const Scenario* omission = scenario::find_scenario("omission-n3");
  ASSERT_NE(omission, nullptr);
  GridOverrides seeded;
  seeded.seed = 1;
  try {
    scenario::expand_scenario(*omission, seeded);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_STREQ(error.what(),
                 "omission-n3 does not support --seed/--count");
  }
}

// Resume's core claim, tested at the library level: running only the
// pending jobs and merging by job index reproduces the uninterrupted
// run's records exactly.
TEST(ScenarioResumeMerge, PendingJobsPlusCheckpointEqualsFullRun) {
  const Scenario* atlas = scenario::find_scenario("lossy-link-atlas");
  ASSERT_NE(atlas, nullptr);
  GridOverrides small;
  small.param_max = 3;
  const Plan full = scenario::expand_scenario(*atlas, small);
  ASSERT_EQ(full.queries.size(), 3u);
  api::Session session({.num_threads = 2, .record_global = false});
  std::vector<JobRecord> expected;
  for (const sweep::JobOutcome& outcome : session.run(full)) {
    expected.push_back(sweep::summarize(outcome));
  }

  // "Checkpoint" holds job 1; jobs 0 and 2 are pending.
  std::vector<JobRecord> merged(3);
  merged[1] = expected[1];
  const std::vector<sweep::JobOutcome> outcomes = session.run(
      full.name, {full.queries[0], full.queries[2]});
  merged[0] = sweep::summarize(outcomes[0]);
  merged[2] = sweep::summarize(outcomes[1]);
  EXPECT_EQ(merged, expected);
}

TEST(ScenarioRender, RendersSolvabilityAndSeriesRecords) {
  JobRecord solvable;
  solvable.family = "lossy_link";
  solvable.label = "{<-}";
  solvable.n = 2;
  solvable.kind = sweep::JobKind::kSolvability;
  solvable.verdict = "SOLVABLE";
  solvable.certified_depth = 1;
  DepthStats stats;
  stats.depth = 1;
  stats.num_leaf_classes = 4;
  stats.num_components = 2;
  solvable.per_depth.push_back(stats);
  JobRecord::Table table;
  table.entries = 12;
  solvable.table = table;

  JobRecord series;
  series.family = "finite_loss";
  series.label = "n=2";
  series.n = 2;
  series.kind = sweep::JobKind::kDepthSeries;
  series.series.push_back(stats);

  std::ostringstream out;
  scenario::render_records(out, "unit", {solvable, series});
  const std::string text = out.str();
  EXPECT_NE(text.find("Sweep unit (2 jobs)"), std::string::npos);
  EXPECT_NE(text.find("SOLVABLE"), std::string::npos);
  EXPECT_NE(text.find("12 entries"), std::string::npos);
  EXPECT_NE(text.find("Convergence finite_loss n=2"), std::string::npos);
}

TEST(ScenarioRender, CsvKeepsEveryJobIncludingCertificatelessExtractions) {
  JobRecord series;
  series.family = "lossy_link";
  series.label = "{<-, ->}";  // comma in the label forces RFC 4180 quoting
  series.n = 2;
  series.kind = sweep::JobKind::kDepthSeries;
  DepthStats stats;
  stats.depth = 1;
  stats.num_leaf_classes = 8;
  stats.num_components = 4;
  stats.separated = true;
  series.series.push_back(stats);

  JobRecord extraction;
  extraction.family = "lossy_link";
  extraction.label = "{<->}";
  extraction.n = 2;
  extraction.kind = sweep::JobKind::kDecisionTable;
  extraction.verdict = "SOLVABLE";
  extraction.certified_depth = 1;
  JobRecord::Table table;
  table.entries = 10;
  table.worst_decision_round = 1;
  extraction.table = table;
  extraction.round_entries = {2, 8};

  JobRecord merged;  // no certificate: must still appear in the CSV
  merged.family = "lossy_link";
  merged.label = "{<-, ->, <->}";
  merged.n = 2;
  merged.kind = sweep::JobKind::kDecisionTable;
  merged.verdict = "NOT-SEPARATED";

  std::ostringstream out;
  scenario::render_records_csv(out, "unit", {series, extraction, merged});
  const std::string text = out.str();
  // Header + 1 series row + 2 round rows + 1 verdict-only row.
  EXPECT_EQ(static_cast<int>(std::count(text.begin(), text.end(), '\n')), 5);
  EXPECT_NE(text.find("\"{<-, ->}\""), std::string::npos);
  EXPECT_NE(text.find("unit,1,lossy_link,{<->},2,decision_table,0,,,,,,,,"
                      "SOLVABLE,1,2,1"),
            std::string::npos);
  EXPECT_NE(text.find("unit,2,lossy_link,\"{<-, ->, <->}\",2,decision_table"
                      ",,,,,,,,,NOT-SEPARATED,,,"),
            std::string::npos);
}

}  // namespace
}  // namespace topocon
