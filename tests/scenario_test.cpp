// The scenario catalog: registry invariants, grid override handling, and
// the record-merge semantics resume is built on (completed records from a
// checkpoint + freshly-run pending jobs == an uninterrupted run).
#include <set>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "scenario/render.hpp"
#include "scenario/scenario.hpp"

namespace topocon {
namespace {

using scenario::GridOverrides;
using scenario::Scenario;
using sweep::JobRecord;
using sweep::SweepSpec;

TEST(ScenarioCatalog, NamesAreUniqueAndFindable) {
  std::set<std::string> names;
  for (const Scenario& s : scenario::catalog()) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.summary.empty());
    EXPECT_FALSE(s.description.empty());
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
    EXPECT_EQ(scenario::find_scenario(s.name), &s);
  }
  EXPECT_GE(names.size(), 5u);
  EXPECT_EQ(scenario::find_scenario("nope"), nullptr);
}

TEST(ScenarioCatalog, EveryScenarioExpandsToABuildableGrid) {
  for (const Scenario& s : scenario::catalog()) {
    const SweepSpec spec = scenario::expand_scenario(s, {});
    EXPECT_EQ(spec.name, s.name);
    EXPECT_FALSE(spec.record);
    ASSERT_FALSE(spec.jobs.empty()) << s.name;
    for (const sweep::SweepJob& job : spec.jobs) {
      EXPECT_FALSE(job.label.empty()) << s.name;
      // The factory must construct without running anything heavy.
      const auto adversary = job.make();
      EXPECT_EQ(adversary->num_processes(), job.n)
          << s.name << " " << job.label;
    }
  }
}

TEST(ScenarioOverrides, OmissionGridRespondsToNAndParamRange) {
  const Scenario* s = scenario::find_scenario("omission-n3");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(scenario::expand_scenario(*s, {}).jobs.size(), 7u);  // f=0..6

  GridOverrides n2;
  n2.n = 2;
  EXPECT_EQ(scenario::expand_scenario(*s, n2).jobs.size(), 3u);  // f=0..2

  GridOverrides window;
  window.param_min = 1;
  window.param_max = 2;
  const SweepSpec spec = scenario::expand_scenario(*s, window);
  ASSERT_EQ(spec.jobs.size(), 2u);
  EXPECT_EQ(spec.jobs[0].label, "n=3 f=1");
  EXPECT_EQ(spec.jobs[1].label, "n=3 f=2");
}

TEST(ScenarioOverrides, HeardOfGridSkipsLegsWhoseIntervalEmpties) {
  const Scenario* grid = scenario::find_scenario("heard-of-grid");
  ASSERT_NE(grid, nullptr);
  // k=3 only exists on the n=3 leg; the n=2 leg is skipped, not an error.
  GridOverrides k3;
  k3.param_min = 3;
  const SweepSpec spec = scenario::expand_scenario(*grid, k3);
  ASSERT_EQ(spec.jobs.size(), 1u);
  EXPECT_EQ(spec.jobs[0].label, "n=3 k=3");
  // Beyond every leg's range is still an error.
  GridOverrides k9;
  k9.param_min = 9;
  EXPECT_THROW(scenario::expand_scenario(*grid, k9), std::invalid_argument);
}

TEST(ScenarioOverrides, UnsupportedAndOutOfRangeOverridesThrow) {
  const Scenario* curves = scenario::find_scenario("convergence-curves");
  ASSERT_NE(curves, nullptr);
  GridOverrides n_override;
  n_override.n = 2;
  EXPECT_THROW(scenario::expand_scenario(*curves, n_override),
               std::invalid_argument);
  GridOverrides param_override;
  param_override.param_max = 2;
  EXPECT_THROW(scenario::expand_scenario(*curves, param_override),
               std::invalid_argument);

  const Scenario* atlas = scenario::find_scenario("lossy-link-atlas");
  ASSERT_NE(atlas, nullptr);
  EXPECT_THROW(scenario::expand_scenario(*atlas, n_override),
               std::invalid_argument);
  GridOverrides bad_range;
  bad_range.param_max = 9;
  EXPECT_THROW(scenario::expand_scenario(*atlas, bad_range),
               std::invalid_argument);
  GridOverrides empty_range;
  empty_range.param_min = 5;
  empty_range.param_max = 2;
  EXPECT_THROW(scenario::expand_scenario(*atlas, empty_range),
               std::invalid_argument);
}

// Resume's core claim, tested at the library level: running only the
// pending jobs and merging by job index reproduces the uninterrupted
// run's records exactly.
TEST(ScenarioResumeMerge, PendingJobsPlusCheckpointEqualsFullRun) {
  const Scenario* atlas = scenario::find_scenario("lossy-link-atlas");
  ASSERT_NE(atlas, nullptr);
  GridOverrides small;
  small.param_max = 3;
  SweepSpec full = scenario::expand_scenario(*atlas, small);
  full.num_threads = 2;
  ASSERT_EQ(full.jobs.size(), 3u);
  std::vector<JobRecord> expected;
  for (const sweep::JobOutcome& outcome : sweep::run_sweep(full)) {
    expected.push_back(sweep::summarize(outcome));
  }

  // "Checkpoint" holds job 1; jobs 0 and 2 are pending.
  SweepSpec pending = scenario::expand_scenario(*atlas, small);
  pending.num_threads = 2;
  std::vector<JobRecord> merged(3);
  merged[1] = expected[1];
  SweepSpec rest;
  rest.name = pending.name;
  rest.record = false;
  rest.num_threads = pending.num_threads;
  rest.jobs.push_back(std::move(pending.jobs[0]));
  rest.jobs.push_back(std::move(pending.jobs[2]));
  const std::vector<sweep::JobOutcome> outcomes = sweep::run_sweep(rest);
  merged[0] = sweep::summarize(outcomes[0]);
  merged[2] = sweep::summarize(outcomes[1]);
  EXPECT_EQ(merged, expected);
}

TEST(ScenarioRender, RendersSolvabilityAndSeriesRecords) {
  JobRecord solvable;
  solvable.family = "lossy_link";
  solvable.label = "{<-}";
  solvable.n = 2;
  solvable.kind = sweep::JobKind::kSolvability;
  solvable.verdict = "SOLVABLE";
  solvable.certified_depth = 1;
  DepthStats stats;
  stats.depth = 1;
  stats.num_leaf_classes = 4;
  stats.num_components = 2;
  solvable.per_depth.push_back(stats);
  JobRecord::Table table;
  table.entries = 12;
  solvable.table = table;

  JobRecord series;
  series.family = "finite_loss";
  series.label = "n=2";
  series.n = 2;
  series.kind = sweep::JobKind::kDepthSeries;
  series.series.push_back(stats);

  std::ostringstream out;
  scenario::render_records(out, "unit", {solvable, series});
  const std::string text = out.str();
  EXPECT_NE(text.find("Sweep unit (2 jobs)"), std::string::npos);
  EXPECT_NE(text.find("SOLVABLE"), std::string::npos);
  EXPECT_NE(text.find("12 entries"), std::string::npos);
  EXPECT_NE(text.find("Convergence finite_loss n=2"), std::string::npos);
}

}  // namespace
}  // namespace topocon
