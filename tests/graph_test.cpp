// Unit and property tests for the digraph substrate: construction
// invariants, SCC decomposition, root components, broadcasters, knowledge
// propagation, and the graph-family enumerators.
#include <bit>
#include <random>

#include <gtest/gtest.h>

#include "graph/digraph.hpp"
#include "graph/enumerate.hpp"
#include "graph/scc.hpp"

namespace topocon {
namespace {

TEST(Digraph, SelfLoopsAlwaysPresent) {
  Digraph g(3);
  for (int p = 0; p < 3; ++p) {
    EXPECT_TRUE(g.has_edge(p, p));
  }
  g.remove_edge(1, 1);  // must be a no-op
  EXPECT_TRUE(g.has_edge(1, 1));
}

TEST(Digraph, AddRemoveEdge) {
  Digraph g(3);
  EXPECT_FALSE(g.has_edge(0, 1));
  g.add_edge(0, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Digraph, CompleteAndEmptyCounts) {
  const Digraph complete = Digraph::complete(4);
  EXPECT_EQ(complete.num_edges(), 16);
  EXPECT_EQ(complete.num_omissions(), 0);
  const Digraph empty = Digraph::empty(4);
  EXPECT_EQ(empty.num_edges(), 4);  // self-loops only
  EXPECT_EQ(empty.num_omissions(), 12);
}

TEST(Digraph, EncodeDecodeRoundTrip) {
  std::mt19937_64 rng(7);
  for (int n = 1; n <= 4; ++n) {
    for (int trial = 0; trial < 50; ++trial) {
      Digraph g(n);
      for (int p = 0; p < n; ++p) {
        for (int q = 0; q < n; ++q) {
          if (p != q && (rng() & 1u)) g.add_edge(p, q);
        }
      }
      EXPECT_EQ(Digraph::decode(n, g.encode()), g);
    }
  }
}

TEST(Digraph, InOutMasksConsistent) {
  const Digraph g = Digraph::from_edges(3, {{0, 1}, {2, 1}, {1, 2}});
  EXPECT_EQ(g.in_mask(1), NodeMask{0b111});
  EXPECT_EQ(g.out_mask(0), NodeMask{0b011});
  EXPECT_EQ(g.out_mask(2), NodeMask{0b110});
}

TEST(Digraph, ToStringListsOffDiagonalEdges) {
  const Digraph g = Digraph::from_edges(2, {{0, 1}});
  EXPECT_EQ(g.to_string(), "{0->1}");
}

// ---------------------------------------------------------------- SCC

// Reference reachability by Floyd-Warshall on the edge relation.
std::vector<NodeMask> reachability(const Digraph& g) {
  const int n = g.num_processes();
  std::vector<NodeMask> reach(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    reach[static_cast<std::size_t>(p)] = g.out_mask(p);
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (int p = 0; p < n; ++p) {
      NodeMask acc = reach[static_cast<std::size_t>(p)];
      NodeMask targets = acc;
      while (targets != 0) {
        const int q = std::countr_zero(targets);
        targets &= targets - 1;
        acc |= reach[static_cast<std::size_t>(q)];
      }
      if (acc != reach[static_cast<std::size_t>(p)]) {
        reach[static_cast<std::size_t>(p)] = acc;
        changed = true;
      }
    }
  }
  return reach;
}

TEST(Scc, MatchesReachabilityDefinitionOnAllGraphsN3) {
  for (const Digraph& g : all_graphs(3)) {
    const auto reach = reachability(g);
    const SccDecomposition scc = strongly_connected_components(g);
    for (int p = 0; p < 3; ++p) {
      for (int q = 0; q < 3; ++q) {
        const bool same_scc =
            scc.comp[static_cast<std::size_t>(p)] ==
            scc.comp[static_cast<std::size_t>(q)];
        const bool mutually_reachable =
            mask_contains(reach[static_cast<std::size_t>(p)], q) &&
            mask_contains(reach[static_cast<std::size_t>(q)], p);
        EXPECT_EQ(same_scc, mutually_reachable)
            << g.to_string() << " p=" << p << " q=" << q;
      }
    }
  }
}

TEST(Scc, MembersPartitionTheNodeSet) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 2 + static_cast<int>(rng() % 5);
    Digraph g(n);
    for (int p = 0; p < n; ++p) {
      for (int q = 0; q < n; ++q) {
        if (p != q && (rng() % 3u) == 0) g.add_edge(p, q);
      }
    }
    const SccDecomposition scc = strongly_connected_components(g);
    NodeMask all = 0;
    int total = 0;
    for (int c = 0; c < scc.num_components; ++c) {
      EXPECT_EQ(all & scc.members[static_cast<std::size_t>(c)], NodeMask{0});
      all |= scc.members[static_cast<std::size_t>(c)];
      total += std::popcount(scc.members[static_cast<std::size_t>(c)]);
    }
    EXPECT_EQ(all, full_mask(n));
    EXPECT_EQ(total, n);
  }
}

TEST(Scc, BroadcastersAreExactlyNodesReachingEveryone) {
  for (const Digraph& g : all_graphs(3)) {
    const auto reach = reachability(g);
    NodeMask expect = 0;
    for (int p = 0; p < 3; ++p) {
      if ((reach[static_cast<std::size_t>(p)] | (NodeMask{1} << p)) ==
          full_mask(3)) {
        expect |= NodeMask{1} << p;
      }
    }
    EXPECT_EQ(broadcasters(g), expect) << g.to_string();
  }
}

TEST(Scc, RootedIffSomeNodeReachesAll) {
  for (const Digraph& g : all_graphs(3)) {
    const auto reach = reachability(g);
    bool some = false;
    for (int p = 0; p < 3; ++p) {
      if ((reach[static_cast<std::size_t>(p)] | (NodeMask{1} << p)) ==
          full_mask(3)) {
        some = true;
      }
    }
    EXPECT_EQ(is_rooted(g), some) << g.to_string();
  }
}

TEST(Scc, CompleteGraphSingleComponent) {
  const SccDecomposition scc =
      strongly_connected_components(Digraph::complete(5));
  EXPECT_EQ(scc.num_components, 1);
  EXPECT_TRUE(scc.is_root[0]);
  EXPECT_EQ(scc.members[0], full_mask(5));
}

TEST(Scc, EmptyGraphAllSingletonRoots) {
  const SccDecomposition scc =
      strongly_connected_components(Digraph::empty(4));
  EXPECT_EQ(scc.num_components, 4);
  for (int c = 0; c < 4; ++c) {
    EXPECT_TRUE(scc.is_root[static_cast<std::size_t>(c)]);
  }
}

TEST(Scc, PropagateMatchesManualKnowledgeFlow) {
  const Digraph g = Digraph::from_edges(3, {{0, 1}, {1, 2}});
  std::vector<NodeMask> know = {0b001, 0b010, 0b100};
  know = propagate(g, know);
  EXPECT_EQ(know[0], NodeMask{0b001});
  EXPECT_EQ(know[1], NodeMask{0b011});
  EXPECT_EQ(know[2], NodeMask{0b110});
  know = propagate(g, know);
  EXPECT_EQ(know[2], NodeMask{0b111});
}

// ---------------------------------------------------------------- enum

TEST(Enumerate, AllGraphsCountsAndUniqueness) {
  EXPECT_EQ(all_graphs(2).size(), 4u);
  const auto graphs3 = all_graphs(3);
  EXPECT_EQ(graphs3.size(), 64u);
  for (std::size_t i = 0; i < graphs3.size(); ++i) {
    for (std::size_t j = i + 1; j < graphs3.size(); ++j) {
      EXPECT_FALSE(graphs3[i] == graphs3[j]);
    }
  }
}

TEST(Enumerate, OmissionBudgetRespected) {
  for (int f = 0; f <= 6; ++f) {
    for (const Digraph& g : graphs_with_max_omissions(3, f)) {
      EXPECT_LE(g.num_omissions(), f);
    }
  }
  // f = 0 leaves only the complete graph.
  const auto only = graphs_with_max_omissions(3, 0);
  ASSERT_EQ(only.size(), 1u);
  EXPECT_EQ(only[0], Digraph::complete(3));
  // Full budget yields all graphs.
  EXPECT_EQ(graphs_with_max_omissions(3, 6).size(), all_graphs(3).size());
}

TEST(Enumerate, RootedGraphsAreRootedAndComplete) {
  const auto rooted = rooted_graphs(3);
  for (const Digraph& g : rooted) {
    EXPECT_TRUE(is_rooted(g)) << g.to_string();
  }
  // Cross-check the count against the definition over all graphs.
  std::size_t expect = 0;
  for (const Digraph& g : all_graphs(3)) {
    if (is_rooted(g)) ++expect;
  }
  EXPECT_EQ(rooted.size(), expect);
}

TEST(Enumerate, LossyLinkGraphs) {
  const auto graphs = lossy_link_graphs();
  ASSERT_EQ(graphs.size(), 3u);
  EXPECT_TRUE(graphs[0].has_edge(1, 0));   // "<-"
  EXPECT_FALSE(graphs[0].has_edge(0, 1));
  EXPECT_TRUE(graphs[1].has_edge(0, 1));   // "->"
  EXPECT_FALSE(graphs[1].has_edge(1, 0));
  EXPECT_TRUE(graphs[2].has_edge(0, 1));   // "<->"
  EXPECT_TRUE(graphs[2].has_edge(1, 0));
  EXPECT_STREQ(lossy_link_name(2), "<->");
}

}  // namespace
}  // namespace topocon
