// End-to-end integration: check solvability, extract the universal
// algorithm, and run it in the round simulator over exhaustive and sampled
// admissible executions -- the full pipeline of Theorem 5.5 / 6.6.
#include <memory>
#include <random>

#include <gtest/gtest.h>

#include "adversary/lossy_link.hpp"
#include "adversary/omission.hpp"
#include "adversary/sampler.hpp"
#include "core/solvability.hpp"
#include "runtime/simulator.hpp"
#include "runtime/universal_runner.hpp"
#include "runtime/verify.hpp"

namespace topocon {
namespace {

// Exhaustively simulate the extracted universal algorithm over all
// admissible letter sequences of certified depth + margin.
void pipeline_check(const MessageAdversary& ma, int margin,
                    int num_values = 2) {
  SolvabilityOptions options;
  options.max_depth = 6;
  options.num_values = num_values;
  const SolvabilityResult result = check_solvability(ma, options);
  ASSERT_EQ(result.verdict, SolvabilityVerdict::kSolvable) << ma.name();
  const UniversalAlgorithm algo(*result.table);
  const int horizon = result.certified_depth + margin;
  for (const auto& letters : enumerate_letter_sequences(ma, horizon)) {
    for (const InputVector& inputs :
         all_input_vectors(ma.num_processes(), num_values)) {
      RunPrefix prefix;
      prefix.inputs = inputs;
      prefix.graphs = letters_to_graphs(ma, letters);
      const ConsensusOutcome outcome = simulate(algo, prefix);
      const ConsensusCheck check = check_consensus(outcome, inputs);
      ASSERT_TRUE(check.ok())
          << ma.name() << " " << prefix.to_string() << ": " << check.detail;
      // The universal algorithm decides by the certified depth.
      EXPECT_LE(outcome.last_decision_round(), result.certified_depth);
    }
  }
}

TEST(Pipeline, LossyLinkPairExhaustive) {
  pipeline_check(*make_lossy_link(0b011), /*margin=*/2);
}

TEST(Pipeline, LossyLinkLeftBothExhaustive) {
  pipeline_check(*make_lossy_link(0b101), /*margin=*/2);
}

TEST(Pipeline, LossyLinkRightBothExhaustive) {
  pipeline_check(*make_lossy_link(0b110), /*margin=*/2);
}

TEST(Pipeline, LossyLinkSingletonsExhaustive) {
  pipeline_check(*make_lossy_link(0b001), /*margin=*/3);
  pipeline_check(*make_lossy_link(0b010), /*margin=*/3);
  pipeline_check(*make_lossy_link(0b100), /*margin=*/3);
}

TEST(Pipeline, TernaryInputsExhaustive) {
  pipeline_check(*make_lossy_link(0b011), /*margin=*/1, /*num_values=*/3);
}

TEST(Pipeline, OmissionN3F1Sampled) {
  const auto ma = make_omission_adversary(3, 1);
  SolvabilityOptions options;
  options.max_depth = 4;
  options.max_states = 5'000'000;
  const SolvabilityResult result = check_solvability(*ma, options);
  ASSERT_EQ(result.verdict, SolvabilityVerdict::kSolvable);
  const UniversalAlgorithm algo(*result.table);
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    const InputVector inputs = sample_inputs(3, 2, rng);
    const RunPrefix prefix =
        sample_prefix(*ma, inputs, result.certified_depth + 2, rng);
    const ConsensusOutcome outcome = simulate(algo, prefix);
    const ConsensusCheck check = check_consensus(outcome, inputs);
    ASSERT_TRUE(check.ok()) << check.detail;
  }
}

// The universal algorithm's early-decision rule: on the singleton
// adversary {<->} every process knows everything after one round and must
// decide at round <= 1 even if the certificate is deeper.
TEST(Pipeline, EarlyDecisionUnderBidirectional) {
  const auto ma = make_lossy_link(0b100);  // {<->} only
  const SolvabilityResult result = check_solvability(*ma);
  ASSERT_EQ(result.verdict, SolvabilityVerdict::kSolvable);
  const UniversalAlgorithm algo(*result.table);
  RunPrefix prefix;
  prefix.inputs = {0, 1};
  for (int t = 0; t < 3; ++t) {
    prefix.graphs.push_back(ma->graph(0));
  }
  const ConsensusOutcome outcome = simulate(algo, prefix);
  ASSERT_TRUE(outcome.all_decided());
  EXPECT_LE(outcome.last_decision_round(), 1);
}

// Validity in the strong sense for valent runs: all-v inputs decide v at
// round 0 only if the adversary is a singleton... in general by the
// certified depth; check the value.
TEST(Pipeline, ValentRunsDecideTheirValence) {
  const auto ma = make_lossy_link(0b011);
  const SolvabilityResult result = check_solvability(*ma);
  const UniversalAlgorithm algo(*result.table);
  std::mt19937_64 rng(3);
  for (Value v = 0; v < 2; ++v) {
    for (int trial = 0; trial < 20; ++trial) {
      const InputVector inputs(2, v);
      const RunPrefix prefix = sample_prefix(*ma, inputs, 4, rng);
      const ConsensusOutcome outcome = simulate(algo, prefix);
      ASSERT_TRUE(outcome.all_decided());
      EXPECT_EQ(*outcome.decisions[0], v);
    }
  }
}

}  // namespace
}  // namespace topocon
