// Tests for process-time graphs and view interning. The central property
// cross-validated here is the exactness of hash-consed views: interned ids
// are equal iff the paper-faithful causal-cone sub-DAGs are equal.
#include <random>

#include <gtest/gtest.h>

#include "graph/enumerate.hpp"
#include "ptg/prefix.hpp"
#include "ptg/process_time_graph.hpp"
#include "ptg/reach.hpp"
#include "ptg/view_intern.hpp"

namespace topocon {
namespace {

// The exact process-time graph of Figure 2: n = 3, x = (1, 0, 1), t = 2.
// Figure 2 (1-indexed): round 1 edges 1->2, 2->3, 3->3...; we reproduce a
// concrete instance with the same shape used by bench_fig2_ptg: round 1 =
// {0->1, 1->2}, round 2 = {1->0, 2->1}.
RunPrefix figure2_prefix() {
  RunPrefix prefix;
  prefix.inputs = {1, 0, 1};
  prefix.graphs = {Digraph::from_edges(3, {{0, 1}, {1, 2}}),
                   Digraph::from_edges(3, {{1, 0}, {2, 1}})};
  return prefix;
}

TEST(ProcessTimeGraph, NodesAndEdges) {
  const ProcessTimeGraph ptg(figure2_prefix());
  EXPECT_EQ(ptg.num_processes(), 3);
  EXPECT_EQ(ptg.depth(), 2);
  EXPECT_EQ(ptg.input(0), 1);
  EXPECT_EQ(ptg.input(1), 0);
  EXPECT_EQ(ptg.input(2), 1);
  // Round 1: 0->1 plus self-loops.
  EXPECT_EQ(ptg.in_mask(1, 1), NodeMask{0b011});
  EXPECT_EQ(ptg.in_mask(2, 1), NodeMask{0b110});
  // Round 2: 1->0 and 2->1 plus self-loops.
  EXPECT_EQ(ptg.in_mask(0, 2), NodeMask{0b011});
  EXPECT_EQ(ptg.in_mask(1, 2), NodeMask{0b110});
}

TEST(ProcessTimeGraph, ViewConeGrowsBackwards) {
  const ProcessTimeGraph ptg(figure2_prefix());
  // View of process 0 at time 2: (0,2) <- {(0,1),(1,1)} <- {(0,0),(1,0)}.
  const auto cone = ptg.view_nodes(0, 2);
  ASSERT_EQ(cone.size(), 3u);
  EXPECT_EQ(cone[2], NodeMask{0b001});
  EXPECT_EQ(cone[1], NodeMask{0b011});
  EXPECT_EQ(cone[0], NodeMask{0b011});
}

TEST(ProcessTimeGraph, ViewAtTimeZeroIsOwnNode) {
  const ProcessTimeGraph ptg(figure2_prefix());
  for (int p = 0; p < 3; ++p) {
    const auto cone = ptg.view_nodes(p, 0);
    ASSERT_EQ(cone.size(), 1u);
    EXPECT_EQ(cone[0], NodeMask{1} << p);
  }
}

TEST(ProcessTimeGraph, ViewsEqualIsReflexive) {
  const ProcessTimeGraph ptg(figure2_prefix());
  for (int p = 0; p < 3; ++p) {
    for (int t = 0; t <= 2; ++t) {
      EXPECT_TRUE(ProcessTimeGraph::views_equal(ptg, p, ptg, p, t));
    }
  }
}

TEST(ProcessTimeGraph, ViewsDifferWhenInputDiffers) {
  RunPrefix a = figure2_prefix();
  RunPrefix b = figure2_prefix();
  b.inputs[2] = 0;  // process 2's input changes
  const ProcessTimeGraph pa(a), pb(b);
  // Process 0 at time 2 has not heard from process 2: views equal.
  EXPECT_TRUE(ProcessTimeGraph::views_equal(pa, 0, pb, 0, 2));
  // Process 2's own view differs from time 0 on.
  EXPECT_FALSE(ProcessTimeGraph::views_equal(pa, 2, pb, 2, 0));
  // Process 1 heard 2 in round 2 (edge 2->1): differs at time 2 only.
  EXPECT_TRUE(ProcessTimeGraph::views_equal(pa, 1, pb, 1, 1));
  EXPECT_FALSE(ProcessTimeGraph::views_equal(pa, 1, pb, 1, 2));
}

TEST(ProcessTimeGraph, DotOutputMentionsHighlightedView) {
  const ProcessTimeGraph ptg(figure2_prefix());
  const std::string dot = ptg.to_dot(0);
  EXPECT_NE(dot.find("digraph PT"), std::string::npos);
  EXPECT_NE(dot.find("color=green"), std::string::npos);
}

// ------------------------------------------------------------- interning

TEST(ViewInterner, BaseIdsDistinguishProcessAndInput) {
  ViewInterner interner;
  EXPECT_EQ(interner.base(0, 1), interner.base(0, 1));
  EXPECT_NE(interner.base(0, 1), interner.base(0, 0));
  EXPECT_NE(interner.base(0, 1), interner.base(1, 1));
}

TEST(ViewInterner, AdvanceIsDeterministic) {
  ViewInterner interner;
  const RunPrefix prefix = figure2_prefix();
  const ViewVector v1 = interner.of_prefix(prefix);
  const ViewVector v2 = interner.of_prefix(prefix);
  EXPECT_EQ(v1, v2);
}

TEST(ViewInterner, DepthTracksRounds) {
  ViewInterner interner;
  const ViewVector views = interner.of_prefix(figure2_prefix());
  for (const ViewId id : views) {
    EXPECT_EQ(interner.node(id).depth, 2);
  }
}

// The exactness theorem: interned equality == cone equality, validated
// exhaustively over all pairs of depth-3 lossy-link prefixes and all
// binary inputs (n = 2), and by random sampling for n = 3.
TEST(ViewInterner, ExactnessExhaustiveLossyLink) {
  const auto graphs = lossy_link_graphs();
  std::vector<RunPrefix> prefixes;
  for (int x0 = 0; x0 < 2; ++x0) {
    for (int x1 = 0; x1 < 2; ++x1) {
      for (int a = 0; a < 3; ++a) {
        for (int b = 0; b < 3; ++b) {
          for (int c = 0; c < 3; ++c) {
            RunPrefix prefix;
            prefix.inputs = {x0, x1};
            prefix.graphs = {graphs[static_cast<std::size_t>(a)],
                             graphs[static_cast<std::size_t>(b)],
                             graphs[static_cast<std::size_t>(c)]};
            prefixes.push_back(std::move(prefix));
          }
        }
      }
    }
  }
  ViewInterner interner;
  std::vector<ViewVector> ids;
  std::vector<ProcessTimeGraph> ptgs;
  ids.reserve(prefixes.size());
  for (const RunPrefix& prefix : prefixes) {
    ids.push_back(interner.of_prefix(prefix));
    ptgs.emplace_back(prefix);
  }
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    for (std::size_t j = i; j < prefixes.size(); ++j) {
      for (int p = 0; p < 2; ++p) {
        const bool by_id = ids[i][static_cast<std::size_t>(p)] ==
                           ids[j][static_cast<std::size_t>(p)];
        const bool by_cone =
            ProcessTimeGraph::views_equal(ptgs[i], p, ptgs[j], p, 3);
        ASSERT_EQ(by_id, by_cone)
            << prefixes[i].to_string() << " vs " << prefixes[j].to_string()
            << " p=" << p;
      }
    }
  }
}

TEST(ViewInterner, ExactnessRandomN3) {
  std::mt19937_64 rng(42);
  const auto graphs = all_graphs(3);
  std::vector<RunPrefix> prefixes;
  for (int trial = 0; trial < 60; ++trial) {
    RunPrefix prefix;
    prefix.inputs = {static_cast<Value>(rng() % 2),
                     static_cast<Value>(rng() % 2),
                     static_cast<Value>(rng() % 2)};
    for (int t = 0; t < 4; ++t) {
      prefix.graphs.push_back(graphs[rng() % graphs.size()]);
    }
    prefixes.push_back(std::move(prefix));
  }
  ViewInterner interner;
  std::vector<ViewVector> ids;
  std::vector<ProcessTimeGraph> ptgs;
  for (const RunPrefix& prefix : prefixes) {
    ids.push_back(interner.of_prefix(prefix));
    ptgs.emplace_back(prefix);
  }
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    for (std::size_t j = i; j < prefixes.size(); ++j) {
      for (int p = 0; p < 3; ++p) {
        const bool by_id = ids[i][static_cast<std::size_t>(p)] ==
                           ids[j][static_cast<std::size_t>(p)];
        const bool by_cone =
            ProcessTimeGraph::views_equal(ptgs[i], p, ptgs[j], p, 4);
        ASSERT_EQ(by_id, by_cone) << i << " " << j << " p=" << p;
      }
    }
  }
}

// Views are cumulative (self-loop invariant): equal ids at time t+1 imply
// equal ids at time t.
TEST(ViewInterner, ViewsAreCumulative) {
  std::mt19937_64 rng(5);
  const auto graphs = all_graphs(3);
  ViewInterner interner;
  for (int trial = 0; trial < 100; ++trial) {
    RunPrefix a, b;
    a.inputs = {static_cast<Value>(rng() % 2), static_cast<Value>(rng() % 2),
                static_cast<Value>(rng() % 2)};
    b.inputs = {static_cast<Value>(rng() % 2), static_cast<Value>(rng() % 2),
                static_cast<Value>(rng() % 2)};
    ViewVector va = interner.initial(a.inputs);
    ViewVector vb = interner.initial(b.inputs);
    std::vector<ViewVector> history_a = {va}, history_b = {vb};
    for (int t = 0; t < 4; ++t) {
      const Digraph& ga = graphs[rng() % graphs.size()];
      const Digraph& gb = graphs[rng() % graphs.size()];
      va = interner.advance(va, ga);
      vb = interner.advance(vb, gb);
      history_a.push_back(va);
      history_b.push_back(vb);
    }
    for (std::size_t t = 1; t < history_a.size(); ++t) {
      for (int p = 0; p < 3; ++p) {
        if (history_a[t][static_cast<std::size_t>(p)] ==
            history_b[t][static_cast<std::size_t>(p)]) {
          EXPECT_EQ(history_a[t - 1][static_cast<std::size_t>(p)],
                    history_b[t - 1][static_cast<std::size_t>(p)]);
        }
      }
    }
  }
}

// ------------------------------------------------------------------ reach

TEST(Reach, MatchesConeTimeZeroLevel) {
  std::mt19937_64 rng(13);
  const auto graphs = all_graphs(3);
  for (int trial = 0; trial < 100; ++trial) {
    RunPrefix prefix;
    prefix.inputs = {0, 1, 0};
    const int len = 1 + static_cast<int>(rng() % 4);
    for (int t = 0; t < len; ++t) {
      prefix.graphs.push_back(graphs[rng() % graphs.size()]);
    }
    const ReachVector reach = reach_of_prefix(prefix);
    const ProcessTimeGraph ptg(prefix);
    for (int q = 0; q < 3; ++q) {
      EXPECT_EQ(reach[static_cast<std::size_t>(q)],
                ptg.view_nodes(q, len)[0]);
    }
  }
}

TEST(Reach, BroadcastCompleteUnderCompleteGraph) {
  RunPrefix prefix;
  prefix.inputs = {0, 1, 2};
  prefix.graphs = {Digraph::complete(3)};
  EXPECT_EQ(broadcast_complete(reach_of_prefix(prefix)), full_mask(3));
}

TEST(Reach, NoBroadcastUnderEmptyGraph) {
  RunPrefix prefix;
  prefix.inputs = {0, 1, 2};
  prefix.graphs = {Digraph::empty(3), Digraph::empty(3)};
  EXPECT_EQ(broadcast_complete(reach_of_prefix(prefix)), NodeMask{0});
}

TEST(Reach, MonotoneOverRounds) {
  std::mt19937_64 rng(17);
  const auto graphs = all_graphs(3);
  ReachVector reach = initial_reach(3);
  for (int t = 0; t < 10; ++t) {
    const ReachVector next =
        advance_reach(reach, graphs[rng() % graphs.size()]);
    for (int q = 0; q < 3; ++q) {
      EXPECT_EQ(next[static_cast<std::size_t>(q)] &
                    reach[static_cast<std::size_t>(q)],
                reach[static_cast<std::size_t>(q)]);
    }
    reach = next;
  }
}

// ------------------------------------------------------------------ misc

TEST(Prefix, ValenceHelpers) {
  EXPECT_TRUE(is_valent({1, 1, 1}, 1));
  EXPECT_FALSE(is_valent({1, 0, 1}, 1));
  EXPECT_EQ(uniform_value({2, 2}), 2);
  EXPECT_EQ(uniform_value({0, 1}), -1);
}

TEST(Prefix, AllInputVectorsLexicographic) {
  const auto vectors = all_input_vectors(2, 3);
  ASSERT_EQ(vectors.size(), 9u);
  EXPECT_EQ(vectors.front(), (InputVector{0, 0}));
  EXPECT_EQ(vectors.back(), (InputVector{2, 2}));
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    EXPECT_EQ(input_vector_index(vectors[i], 3), static_cast<int>(i));
  }
}

}  // namespace
}  // namespace topocon
