// Tests for the message-adversary families: safety automata, liveness
// lassos, sampling guarantees, and the non-compactness exhibits of
// Section 6.3 (admissible chains whose letter-wise limits are excluded).
#include <random>

#include <gtest/gtest.h>

#include "adversary/finite_loss.hpp"
#include "adversary/lossy_link.hpp"
#include "adversary/omission.hpp"
#include "adversary/oblivious.hpp"
#include "adversary/sampler.hpp"
#include "adversary/vssc.hpp"
#include "graph/enumerate.hpp"
#include "graph/scc.hpp"

namespace topocon {
namespace {

TEST(Oblivious, EverythingAllowedAlways) {
  const auto ma = make_lossy_link(0b111);
  EXPECT_EQ(ma->alphabet_size(), 3);
  EXPECT_TRUE(ma->is_compact());
  AdvState s = ma->initial_state();
  for (int letter = 0; letter < 3; ++letter) {
    EXPECT_NE(ma->transition(s, letter), kRejectState);
  }
  EXPECT_TRUE(ma->admits_lasso({0, 1}, {2}));
  EXPECT_FALSE(ma->admits_lasso({0}, {}));  // empty cycle is no sequence
}

TEST(LossyLink, SubsetsSelectGraphs) {
  const auto left_only = make_lossy_link(0b001);
  ASSERT_EQ(left_only->alphabet_size(), 1);
  EXPECT_TRUE(left_only->graph(0).has_edge(1, 0));
  EXPECT_FALSE(left_only->graph(0).has_edge(0, 1));
  const auto pair = make_lossy_link(0b011);
  EXPECT_EQ(pair->alphabet_size(), 2);
  EXPECT_EQ(lossy_link_subset_name(0b101), "{<-, <->}");
}

TEST(Omission, AlphabetMatchesBudget) {
  const auto ma = make_omission_adversary(3, 2);
  for (int letter = 0; letter < ma->alphabet_size(); ++letter) {
    EXPECT_LE(ma->graph(letter).num_omissions(), 2);
  }
  EXPECT_EQ(make_omission_adversary(3, 0)->alphabet_size(), 1);
  EXPECT_EQ(make_omission_adversary(3, 6)->alphabet_size(), 64);
}

TEST(Sampler, SampleRespectsSafety) {
  std::mt19937_64 rng(3);
  const auto ma = make_lossy_link(0b011);
  const auto letters = ma->sample(rng, 32);
  EXPECT_EQ(letters.size(), 32u);
  EXPECT_FALSE(ma->safety_rejects(letters));
  for (const int letter : letters) {
    EXPECT_GE(letter, 0);
    EXPECT_LT(letter, 2);
  }
}

TEST(Sampler, EnumerateLetterSequencesCount) {
  const auto ma = make_lossy_link(0b111);
  EXPECT_EQ(enumerate_letter_sequences(*ma, 0).size(), 1u);
  EXPECT_EQ(enumerate_letter_sequences(*ma, 3).size(), 27u);
}

TEST(Sampler, PrefixMaterialization) {
  std::mt19937_64 rng(4);
  const auto ma = make_omission_adversary(3, 1);
  const RunPrefix prefix = sample_prefix(*ma, {0, 1, 1}, 5, rng);
  EXPECT_EQ(prefix.length(), 5);
  EXPECT_EQ(prefix.num_processes(), 3);
  for (const Digraph& g : prefix.graphs) {
    EXPECT_LE(g.num_omissions(), 1);
  }
}

// ------------------------------------------------------------ finite loss

TEST(FiniteLoss, ClosureIsEverything) {
  const FiniteLossAdversary ma(2);
  EXPECT_FALSE(ma.is_compact());
  EXPECT_EQ(ma.alphabet_size(), 4);  // all graphs on 2 nodes
  AdvState s = ma.initial_state();
  for (int letter = 0; letter < ma.alphabet_size(); ++letter) {
    EXPECT_NE(ma.transition(s, letter), kRejectState);
  }
}

TEST(FiniteLoss, LassoLivenessRequiresCompleteCycle) {
  const FiniteLossAdversary ma(2);
  const int complete = ma.complete_letter();
  const int lossy = complete == 0 ? 1 : 0;
  EXPECT_TRUE(ma.admits_lasso({lossy, lossy, lossy}, {complete}));
  EXPECT_FALSE(ma.admits_lasso({complete}, {lossy}));
  EXPECT_FALSE(ma.admits_lasso({}, {complete, lossy}));
}

TEST(FiniteLoss, SamplesEndComplete) {
  std::mt19937_64 rng(8);
  const FiniteLossAdversary ma(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto letters = ma.sample(rng, 16);
    ASSERT_EQ(letters.size(), 16u);
    for (std::size_t t = 8; t < letters.size(); ++t) {
      EXPECT_EQ(letters[t], ma.complete_letter());
    }
  }
}

// The Section 6.3 non-compactness exhibit: the single-loss sequences
// converge letter-wise to the all-loss sequence, which is not admissible.
TEST(FiniteLoss, NonCompactnessExhibit) {
  const FiniteLossAdversary ma(2);
  const int complete = ma.complete_letter();
  int empty = -1;
  for (int letter = 0; letter < ma.alphabet_size(); ++letter) {
    if (ma.graph(letter) == Digraph::empty(2)) empty = letter;
  }
  ASSERT_GE(empty, 0);
  // a_k = empty^k . complete^w is admissible for every k ...
  for (int k = 0; k < 8; ++k) {
    std::vector<int> stem(static_cast<std::size_t>(k), empty);
    EXPECT_TRUE(ma.admits_lasso(stem, {complete}));
  }
  // ... but the letter-wise limit empty^w is not.
  EXPECT_FALSE(ma.admits_lasso({}, {empty}));
}

// ------------------------------------------------------------------ VSSC

TEST(Vssc, AlphabetIsRootedGraphs) {
  const VsscAdversary ma(3, 4);
  EXPECT_FALSE(ma.is_compact());
  for (int letter = 0; letter < ma.alphabet_size(); ++letter) {
    EXPECT_TRUE(is_rooted(ma.graph(letter)));
    EXPECT_EQ(ma.root_of(letter), root_members(ma.graph(letter)));
  }
}

TEST(Vssc, StableWindowDetection) {
  const VsscAdversary ma(2, 3);
  // Find two letters with different roots.
  int a = -1, b = -1;
  for (int letter = 0; letter < ma.alphabet_size(); ++letter) {
    if (ma.root_of(letter) == NodeMask{0b01}) a = letter;
    if (ma.root_of(letter) == NodeMask{0b10}) b = letter;
  }
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  EXPECT_FALSE(ma.has_stable_window({a, b, a, b, a, b}));
  EXPECT_TRUE(ma.has_stable_window({b, a, a, a, b}));
  EXPECT_TRUE(ma.admits_lasso({a, a, a}, {b}));
  EXPECT_FALSE(ma.admits_lasso({a, a}, {b, a}));
  // A cycle that is itself stable admits the lasso.
  EXPECT_TRUE(ma.admits_lasso({}, {b}));
}

TEST(Vssc, SamplesContainStableWindow) {
  std::mt19937_64 rng(21);
  const VsscAdversary ma(3, 6);
  for (int trial = 0; trial < 20; ++trial) {
    const auto letters = ma.sample(rng, 24);
    EXPECT_TRUE(ma.has_stable_window(letters));
  }
}

// The non-compactness exhibit for VSSC: alternating roots forever is the
// limit of sequences whose stable window moves later and later.
TEST(Vssc, NonCompactnessExhibit) {
  const VsscAdversary ma(2, 2);
  int a = -1, b = -1;
  for (int letter = 0; letter < ma.alphabet_size(); ++letter) {
    if (ma.root_of(letter) == NodeMask{0b01}) a = letter;
    if (ma.root_of(letter) == NodeMask{0b10}) b = letter;
  }
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  for (int k = 1; k < 6; ++k) {
    // alternate for 2k rounds, then stabilize: admissible.
    std::vector<int> stem;
    for (int i = 0; i < k; ++i) {
      stem.push_back(a);
      stem.push_back(b);
    }
    EXPECT_TRUE(ma.admits_lasso(stem, {a}));
  }
  // The limit alternates forever: not admissible.
  EXPECT_FALSE(ma.admits_lasso({}, {a, b}));
}

}  // namespace
}  // namespace topocon
