// Falsifier tests (failure injection): the search must find concrete
// violating executions for algorithms run outside their correctness
// envelope, and must find nothing for certified algorithms; plus
// large-n simulation tests enabled by the explicit-alphabet adversary
// constructors (beyond the enumeration limits of the checker).
#include <random>

#include <gtest/gtest.h>

#include "adversary/finite_loss.hpp"
#include "adversary/lossy_link.hpp"
#include "adversary/omission.hpp"
#include "adversary/vssc.hpp"
#include "core/solvability.hpp"
#include "runtime/ack_consensus.hpp"
#include "runtime/falsifier.hpp"
#include "runtime/flood_min.hpp"
#include "runtime/universal_runner.hpp"
#include "runtime/vssc_algo.hpp"

namespace topocon {
namespace {

TEST(Falsifier, FindsFloodMinAgreementViolationAboveThreshold) {
  // f = n-1 = 2 for n = 3: FloodMin(n-1) must break, and exhaustive
  // search at the decision depth finds a concrete witness.
  const auto ma = make_omission_adversary(3, 2);
  const FloodMinAlgorithm algo(2);
  FalsifierOptions options;
  options.exhaustive_depth = 2;
  options.random_runs = 0;
  const auto hit = falsify(*ma, algo, options);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->what, "agreement");
  EXPECT_FALSE(hit->check.agreement);
}

TEST(Falsifier, FindsNothingForFloodMinBelowThreshold) {
  const auto ma = make_omission_adversary(3, 1);
  const FloodMinAlgorithm algo(2);
  FalsifierOptions options;
  options.exhaustive_depth = 2;
  options.random_runs = 500;
  options.random_horizon = 6;
  EXPECT_FALSE(falsify(*ma, algo, options).has_value());
}

TEST(Falsifier, FindsNothingForCertifiedUniversalAlgorithm) {
  const auto ma = make_lossy_link(0b011);
  const SolvabilityResult result = check_solvability(*ma);
  ASSERT_TRUE(result.table.has_value());
  const UniversalAlgorithm algo(*result.table);
  FalsifierOptions options;
  options.exhaustive_depth = 4;
  options.random_runs = 500;
  options.random_horizon = 10;
  options.require_termination = true;  // horizon > certified depth
  EXPECT_FALSE(falsify(*ma, algo, options).has_value());
}

TEST(Falsifier, FindsPrematureFloodMinDecision) {
  // Deciding one round too early under omission f=1, n=3 loses agreement.
  const auto ma = make_omission_adversary(3, 1);
  const FloodMinAlgorithm premature(1);
  FalsifierOptions options;
  options.exhaustive_depth = 1;
  options.random_runs = 0;
  const auto hit = falsify(*ma, premature, options);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->what, "agreement");
}

// ------------------------------------------------------ large-n runtime

std::vector<Digraph> star_alphabet(int n) {
  std::vector<Digraph> graphs;
  graphs.push_back(Digraph::complete(n));
  for (int root = 0; root < n; ++root) {
    Digraph g(n);
    for (int q = 0; q < n; ++q) {
      if (q != root) g.add_edge(root, q);
    }
    graphs.push_back(g);
  }
  return graphs;
}

TEST(LargeN, AckConsensusAtEightProcesses) {
  const int n = 8;
  std::vector<Digraph> alphabet = star_alphabet(n);
  alphabet.push_back(Digraph::empty(n));
  const FiniteLossAdversary ma(n, std::move(alphabet));
  const AckConsensus algo(n);
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const InputVector inputs = sample_inputs(n, 2, rng);
    const RunPrefix prefix = sample_prefix(ma, inputs, 24, rng);
    const ConsensusCheck check =
        check_consensus(simulate(algo, prefix), inputs);
    ASSERT_TRUE(check.ok()) << check.detail;
  }
}

TEST(LargeN, VsscAtSixProcesses) {
  const int n = 6;
  // Star alphabet without the complete graph: roots are the n singletons
  // plus the full set for complete -- keep complete too (root = all).
  const VsscAdversary ma(n, 3 * n, star_alphabet(n));
  const VsscConsensus algo(n);
  std::mt19937_64 rng(4);
  int decided = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const InputVector inputs = sample_inputs(n, 2, rng);
    const RunPrefix prefix = sample_prefix(ma, inputs, 6 * n, rng);
    const ConsensusOutcome outcome = simulate(algo, prefix);
    const ConsensusCheck check = check_consensus(outcome, inputs);
    EXPECT_TRUE(check.agreement && check.validity) << check.detail;
    decided += outcome.all_decided();
  }
  EXPECT_GE(decided, 25);
}

TEST(LargeN, FalsifierCleanOnAckAtEight) {
  const int n = 8;
  const FiniteLossAdversary ma(n, star_alphabet(n));
  const AckConsensus algo(n);
  FalsifierOptions options;
  options.exhaustive_depth = 0;  // alphabet too large for exhaustion
  options.random_runs = 300;
  options.random_horizon = 20;
  EXPECT_FALSE(falsify(ma, algo, options).has_value());
}

}  // namespace
}  // namespace topocon
