// Tests for the iterative-deepening solvability checker against the
// literature oracles: the complete lossy-link table (Section 6.1), the
// Santoro-Widmayer omission threshold, and the checker's behaviour on
// non-compact adversaries (closure analysis, Section 6.3).
#include <gtest/gtest.h>

#include "adversary/finite_loss.hpp"
#include "adversary/lossy_link.hpp"
#include "adversary/omission.hpp"
#include "adversary/vssc.hpp"
#include "analysis/oracles.hpp"
#include "core/solvability.hpp"

namespace topocon {
namespace {

SolvabilityOptions capped(int max_depth) {
  SolvabilityOptions o;
  o.max_depth = max_depth;
  return o;
}

// The full lossy-link solvability table: every nonempty subset of
// {<-, ->, <->}; the checker must agree with the Santoro-Widmayer / CGP /
// Fevat-Godard ground truth (impossible iff the full set).
class LossyLinkTable : public ::testing::TestWithParam<unsigned> {};

TEST_P(LossyLinkTable, MatchesOracle) {
  const unsigned mask = GetParam();
  const auto ma = make_lossy_link(mask);
  const SolvabilityResult result = check_solvability(*ma, capped(6));
  if (lossy_link_solvable(mask)) {
    EXPECT_EQ(result.verdict, SolvabilityVerdict::kSolvable)
        << lossy_link_subset_name(mask);
    EXPECT_GE(result.certified_depth, 1);
    ASSERT_TRUE(result.table.has_value());
  } else {
    EXPECT_EQ(result.verdict, SolvabilityVerdict::kNotSeparated)
        << lossy_link_subset_name(mask);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSubsets, LossyLinkTable,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u));

TEST(LossyLink, SolvablePairCertifiesAtDepthOne) {
  const auto ma = make_lossy_link(0b011);
  const SolvabilityResult result = check_solvability(*ma, capped(4));
  EXPECT_EQ(result.certified_depth, 1);
}

// Santoro-Widmayer: n = 2, 3 with f = 0..n(n-1); solvable iff f <= n-2.
TEST(Omission, MatchesSantoroWidmayerN2) {
  for (int f = 0; f <= 2; ++f) {
    const auto ma = make_omission_adversary(2, f);
    const SolvabilityResult result = check_solvability(*ma, capped(5));
    if (omission_solvable(2, f)) {
      EXPECT_EQ(result.verdict, SolvabilityVerdict::kSolvable) << "f=" << f;
    } else {
      EXPECT_EQ(result.verdict, SolvabilityVerdict::kNotSeparated)
          << "f=" << f;
    }
  }
}

TEST(Omission, MatchesSantoroWidmayerN3) {
  for (int f = 0; f <= 3; ++f) {
    const auto ma = make_omission_adversary(3, f);
    SolvabilityOptions o = capped(3);
    o.max_states = 5'000'000;
    const SolvabilityResult result = check_solvability(*ma, o);
    if (omission_solvable(3, f)) {
      EXPECT_EQ(result.verdict, SolvabilityVerdict::kSolvable) << "f=" << f;
    } else {
      EXPECT_NE(result.verdict, SolvabilityVerdict::kSolvable) << "f=" << f;
    }
  }
}

TEST(Solvability, RequireBroadcastableAlsoCertifies) {
  SolvabilityOptions o = capped(6);
  o.require_broadcastable = true;
  const auto ma = make_lossy_link(0b011);
  const SolvabilityResult result = check_solvability(*ma, o);
  EXPECT_EQ(result.verdict, SolvabilityVerdict::kSolvable);
  ASSERT_TRUE(result.analysis.has_value());
  EXPECT_TRUE(result.analysis->valent_broadcastable);
}

TEST(Solvability, PerDepthStatsAreRecorded) {
  const auto ma = make_lossy_link(0b111);
  const SolvabilityResult result = check_solvability(*ma, capped(4));
  ASSERT_EQ(result.per_depth.size(), 4u);
  for (std::size_t i = 0; i < result.per_depth.size(); ++i) {
    EXPECT_EQ(result.per_depth[i].depth, static_cast<int>(i) + 1);
    EXPECT_FALSE(result.per_depth[i].separated);
    EXPECT_GE(result.per_depth[i].merged_components, 1);
  }
}

TEST(Solvability, ResourceLimitVerdict) {
  const auto ma = make_omission_adversary(3, 6);
  SolvabilityOptions o = capped(6);
  o.max_states = 50;
  const SolvabilityResult result = check_solvability(*ma, o);
  EXPECT_EQ(result.verdict, SolvabilityVerdict::kResourceLimit);
}

// Non-compact adversaries: the checker analyzes the closure and reports so.
// For the finite-loss adversary the closure is the full oblivious
// adversary, which never separates -- the Section 6.3 phenomenon: the
// epsilon-approximation cannot certify a solvable non-compact adversary.
TEST(Solvability, FiniteLossClosureNeverSeparates) {
  const FiniteLossAdversary ma(2);
  const SolvabilityResult result = check_solvability(ma, capped(5));
  EXPECT_TRUE(result.closure_only);
  EXPECT_EQ(result.verdict, SolvabilityVerdict::kNotSeparated);
}

TEST(Solvability, VsscClosureNeverSeparates) {
  const VsscAdversary ma(2, 8);
  const SolvabilityResult result = check_solvability(ma, capped(5));
  EXPECT_TRUE(result.closure_only);
  // The closure (all rooted graphs, obliviously) is the n = 2 lossy link
  // full set: never separated.
  EXPECT_EQ(result.verdict, SolvabilityVerdict::kNotSeparated);
}

TEST(Solvability, VerdictNames) {
  EXPECT_STREQ(to_string(SolvabilityVerdict::kSolvable), "SOLVABLE");
  EXPECT_STREQ(to_string(SolvabilityVerdict::kNotSeparated),
               "NOT-SEPARATED");
  EXPECT_STREQ(to_string(SolvabilityVerdict::kResourceLimit),
               "RESOURCE-LIMIT");
}

}  // namespace
}  // namespace topocon
