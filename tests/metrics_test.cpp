// Tests for the distance functions of Section 4: the Figure 3 example, the
// pseudo-metric laws of Theorem 4.3, Lemma 4.8 (d_min as min of d_{p}),
// and the failure of the triangle inequality for d_min (the reason the
// minimum topology is only pseudo-semi-metric).
#include <random>

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "graph/enumerate.hpp"

namespace topocon {
namespace {

// The two executions of Figure 3: three processes, two local states
// (0 = light, 1 = dark), three configurations. Process 3 (index 2) differs
// from time 0; process 2 (index 1) first differs at time 1; process 1
// (index 0) first differs at time 2.
LabelledExecution figure3_alpha() {
  return LabelledExecution{{{0, 0, 0}, {0, 0, 1}, {0, 1, 1}}};
}
LabelledExecution figure3_beta() {
  return LabelledExecution{{{0, 0, 1}, {0, 1, 1}, {1, 1, 1}}};
}

TEST(Figure3, DistancesMatchPaper) {
  const LabelledExecution alpha = figure3_alpha();
  const LabelledExecution beta = figure3_beta();
  EXPECT_DOUBLE_EQ(d_max(alpha, beta), 1.0);
  EXPECT_DOUBLE_EQ(d_process(alpha, beta, 2), 1.0);    // d_{3} = 1
  EXPECT_DOUBLE_EQ(d_process(alpha, beta, 1), 0.5);    // d_{2} = 1/2
  EXPECT_DOUBLE_EQ(d_process(alpha, beta, 0), 0.25);   // d_{1} = 1/4
  EXPECT_DOUBLE_EQ(d_min(alpha, beta), 0.25);          // d_min = d_{1}
}

TEST(Figure3, PSetMonotonicity) {
  const LabelledExecution alpha = figure3_alpha();
  const LabelledExecution beta = figure3_beta();
  // d_P <= d_Q for P subset of Q (Theorem 4.3).
  EXPECT_LE(d_pset(alpha, beta, 0b001), d_pset(alpha, beta, 0b011));
  EXPECT_LE(d_pset(alpha, beta, 0b011), d_pset(alpha, beta, 0b111));
  // d_[n] equals d_max.
  EXPECT_DOUBLE_EQ(d_pset(alpha, beta, 0b111), d_max(alpha, beta));
}

LabelledExecution random_execution(std::mt19937_64& rng, int n, int len,
                                   int states) {
  LabelledExecution e;
  for (int t = 0; t < len; ++t) {
    std::vector<int> config(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      config[static_cast<std::size_t>(p)] =
          static_cast<int>(rng() % static_cast<unsigned>(states));
    }
    e.states.push_back(std::move(config));
  }
  return e;
}

class MetricLaws : public ::testing::TestWithParam<int> {};

TEST_P(MetricLaws, PseudoMetricProperties) {
  std::mt19937_64 rng(static_cast<unsigned>(GetParam()));
  const int n = 3;
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = random_execution(rng, n, 5, 2);
    const auto b = random_execution(rng, n, 5, 2);
    const auto c = random_execution(rng, n, 5, 2);
    for (int p = 0; p < n; ++p) {
      // Symmetry.
      EXPECT_DOUBLE_EQ(d_process(a, b, p), d_process(b, a, p));
      // Triangle inequality for d_{p} (Theorem 4.3).
      EXPECT_LE(d_process(a, c, p),
                d_process(a, b, p) + d_process(b, c, p) + 1e-12);
      // Reflexivity (pseudo: d(a,a) = 0).
      EXPECT_DOUBLE_EQ(d_process(a, a, p), 0.0);
    }
    // Lemma 4.8: d_min = min_p d_{p}.
    double expected = 1.0;
    for (int p = 0; p < n; ++p) {
      expected = std::min(expected, d_process(a, b, p));
    }
    EXPECT_DOUBLE_EQ(d_min(a, b), expected);
    // Monotonicity d_min <= d_{p} <= d_max.
    for (int p = 0; p < n; ++p) {
      EXPECT_LE(d_min(a, b), d_process(a, b, p));
      EXPECT_LE(d_process(a, b, p), d_max(a, b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricLaws, ::testing::Values(1, 2, 3, 4, 5));

// Section 4.2: d_min violates the triangle inequality. Concrete witness:
// a and b agree on process 0 forever, b and c agree on process 1 forever,
// but a and c differ everywhere at time 0.
TEST(DMin, TriangleInequalityFails) {
  const LabelledExecution a{{{0, 0}, {0, 0}}};
  const LabelledExecution b{{{0, 1}, {0, 1}}};
  const LabelledExecution c{{{1, 1}, {1, 1}}};
  EXPECT_DOUBLE_EQ(d_min(a, b), 0.0);
  EXPECT_DOUBLE_EQ(d_min(b, c), 0.0);
  EXPECT_DOUBLE_EQ(d_min(a, c), 1.0);  // > 0 + 0
}

// ------------------------------------------------- prefix-based distances

TEST(PrefixMetrics, DivergenceByInput) {
  ViewInterner interner;
  RunPrefix a, b;
  a.inputs = {0, 1};
  b.inputs = {1, 1};
  const auto graphs = lossy_link_graphs();
  a.graphs = {graphs[0], graphs[0]};
  b.graphs = {graphs[0], graphs[0]};
  // "<-" delivers only 1 -> 0, so process 1 never hears process 0 and its
  // view never differs; process 0 differs from time 0.
  EXPECT_EQ(divergence_time(interner, a, b, 0), 0);
  EXPECT_EQ(divergence_time(interner, a, b, 1), kNoDivergence);
  EXPECT_DOUBLE_EQ(d_process(interner, a, b, 0), 1.0);
  EXPECT_DOUBLE_EQ(d_process(interner, a, b, 1), 0.0);
  EXPECT_DOUBLE_EQ(d_min(interner, a, b), 0.0);
  EXPECT_DOUBLE_EQ(d_max(interner, a, b), 1.0);
}

TEST(PrefixMetrics, DivergenceByGraphs) {
  ViewInterner interner;
  RunPrefix a, b;
  a.inputs = {0, 1};
  b.inputs = {0, 1};
  const auto graphs = lossy_link_graphs();
  // Same inputs; graphs differ in round 2: "<-" vs "<->" -- process 0
  // receives from 1 in both rounds either way, so the first process to see
  // a difference is process 1 (hears 0 in round 2 only under "<->").
  a.graphs = {graphs[0], graphs[0]};
  b.graphs = {graphs[0], graphs[2]};
  EXPECT_EQ(divergence_time(interner, a, b, 1), 2);
  // Process 0: round-2 in-mask is {0,1} in a ("<-")? "<-" delivers 1->0,
  // "<->" also delivers 1->0; but the message process 1 sends carries the
  // same view in both runs, so process 0 cannot distinguish within 2
  // rounds.
  EXPECT_EQ(divergence_time(interner, a, b, 0), kNoDivergence);
  EXPECT_DOUBLE_EQ(d_min(interner, a, b), 0.0);
  EXPECT_DOUBLE_EQ(d_process(interner, a, b, 1), 0.25);
}

TEST(PrefixMetrics, LawsOnRandomPrefixes) {
  std::mt19937_64 rng(99);
  ViewInterner interner;
  const auto graphs = all_graphs(3);
  auto random_prefix = [&](int len) {
    RunPrefix prefix;
    prefix.inputs = {static_cast<Value>(rng() % 2),
                     static_cast<Value>(rng() % 2),
                     static_cast<Value>(rng() % 2)};
    for (int t = 0; t < len; ++t) {
      prefix.graphs.push_back(graphs[rng() % graphs.size()]);
    }
    return prefix;
  };
  for (int trial = 0; trial < 50; ++trial) {
    const RunPrefix a = random_prefix(4);
    const RunPrefix b = random_prefix(4);
    const RunPrefix c = random_prefix(4);
    for (int p = 0; p < 3; ++p) {
      EXPECT_DOUBLE_EQ(d_process(interner, a, b, p),
                       d_process(interner, b, a, p));
      EXPECT_LE(d_process(interner, a, c, p),
                d_process(interner, a, b, p) + d_process(interner, b, c, p) +
                    1e-12);
      EXPECT_LE(d_min(interner, a, b), d_process(interner, a, b, p));
    }
    EXPECT_LE(d_min(interner, a, b), d_max(interner, a, b));
  }
}

TEST(PrefixMetrics, DiameterAndSetDistance) {
  ViewInterner interner;
  const auto graphs = lossy_link_graphs();
  RunPrefix a, b, c;
  a.inputs = {0, 0};
  b.inputs = {0, 1};
  c.inputs = {1, 1};
  a.graphs = b.graphs = c.graphs = {graphs[1], graphs[1]};  // "->" twice
  // Diameter of {a, c}: both processes differ at time 0 => 1.
  EXPECT_DOUBLE_EQ(diameter_min(interner, {a, c}), 1.0);
  // "->" keeps process 0 blind to process 1's input: d_min(a, b) = 0.
  EXPECT_DOUBLE_EQ(diameter_min(interner, {a, b}), 0.0);
  EXPECT_DOUBLE_EQ(distance_min(interner, {a}, {b, c}), 0.0);
  EXPECT_DOUBLE_EQ(distance_min(interner, {a}, {c}), 1.0);
}

}  // namespace
}  // namespace topocon
