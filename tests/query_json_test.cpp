// api::Query JSON round-trips (satellite of the Session/Query redesign):
// serialize -> parse -> serialize is a fixed point for every variant, the
// canonical encoding is stable across writer styles, and malformed input
// fails with EXACT error messages -- checkpoints carry serialized queries,
// so a resume diagnosing a corrupt file must say precisely what is wrong.
#include <string>

#include <gtest/gtest.h>

#include "api/query.hpp"
#include "runtime/sweep/json.hpp"

namespace topocon {
namespace {

using api::Query;

void expect_parse_error(const std::string& text, const std::string& message) {
  try {
    api::parse_query(text);
    FAIL() << "expected parse of `" << text << "` to throw";
  } catch (const std::runtime_error& error) {
    EXPECT_EQ(std::string(error.what()), message) << text;
  }
}

void expect_fixed_point(const Query& query) {
  const std::string once = api::query_to_string(query);
  const Query reparsed = api::parse_query(once);
  EXPECT_EQ(api::query_to_string(reparsed), once);
}

TEST(QueryJson, SerializeParseSerializeIsAFixedPointForEveryVariant) {
  SolvabilityOptions solve;
  solve.max_depth = 4;
  solve.max_states = 123'456;
  solve.build_table = false;
  solve.require_broadcastable = true;
  solve.strong_validity = true;
  expect_fixed_point(api::solvability({"omission", 3, 2}, solve));
  expect_fixed_point(api::solvability({"lossy_link", 2, 0b101}));

  AnalysisOptions series;
  series.depth = 7;
  series.num_values = 2;
  series.max_states = 999;
  expect_fixed_point(api::depth_series({"lossy_link", 2, 7}, series));
  AnalysisOptions pview = series;
  pview.topology = AdjacencyTopology::kPView;
  pview.pview_set = 0b11;
  expect_fixed_point(api::depth_series({"lossy_link", 2, 7}, pview));

  expect_fixed_point(api::decision_table({"windowed_lossy_link", 2, 2}));
}

TEST(QueryJson, CanonicalEncodingIsStable) {
  SolvabilityOptions solve;
  solve.max_depth = 3;
  solve.max_states = 6'000'000;
  const Query query = api::solvability({"omission", 3, 1}, solve);
  EXPECT_EQ(api::query_to_string(query),
            "{\"query\":\"solvability\",\"family\":\"omission\",\"n\":3,"
            "\"param\":1,\"max_depth\":3,\"num_values\":2,"
            "\"max_states\":6000000,\"build_table\":true,"
            "\"require_broadcastable\":false,\"strong_validity\":false}");
}

TEST(QueryJson, RoundTripPreservesSemantics) {
  AnalysisOptions series;
  series.depth = 5;
  series.topology = AdjacencyTopology::kPView;
  series.pview_set = 0b10;
  const Query query = api::depth_series({"lossy_link", 2, 3}, series);
  const Query reparsed = api::parse_query(api::query_to_string(query));
  ASSERT_EQ(api::kind_of(reparsed), api::QueryKind::kDepthSeries);
  const auto& options = std::get<api::DepthSeriesQuery>(reparsed).options;
  EXPECT_EQ(options.depth, 5);
  EXPECT_EQ(options.topology, AdjacencyTopology::kPView);
  EXPECT_EQ(options.pview_set, 0b10u);
  EXPECT_EQ(api::point_of(reparsed).family, "lossy_link");
  EXPECT_EQ(api::point_of(reparsed).param, 3);

  // decision_table implies build_table regardless of the flag's absence.
  const Query extraction =
      api::parse_query(api::query_to_string(api::decision_table(
          {"lossy_link", 2, 1})));
  EXPECT_TRUE(std::get<api::DecisionTableQuery>(extraction)
                  .options.build_table);
}

TEST(QueryJson, ExactErrorMessages) {
  expect_parse_error("[]", "query json: expected an object");
  expect_parse_error("{}", "query json: missing member \"query\"");
  expect_parse_error("{\"query\":7}",
                     "query json: member \"query\" must be a string");
  expect_parse_error("{\"query\":\"mystery\"}",
                     "query json: unknown query kind \"mystery\"");
  expect_parse_error("{\"query\":\"solvability\"}",
                     "query json: missing member \"family\"");
  expect_parse_error(
      "{\"query\":\"solvability\",\"family\":\"omission\",\"n\":\"x\"}",
      "query json: member \"n\" must be an integer");
  expect_parse_error(
      "{\"query\":\"solvability\",\"family\":\"nope\",\"n\":2,\"param\":0,"
      "\"max_depth\":3,\"num_values\":2,\"max_states\":10,"
      "\"build_table\":true,\"require_broadcastable\":false,"
      "\"strong_validity\":false}",
      "query json: unknown adversary family: nope");
  expect_parse_error(
      "{\"query\":\"solvability\",\"family\":\"lossy_link\",\"n\":3,"
      "\"param\":1,\"max_depth\":3,\"num_values\":2,\"max_states\":10,"
      "\"build_table\":true,\"require_broadcastable\":false,"
      "\"strong_validity\":false}",
      "query json: lossy_link: n must be 2 (got 3)");
  expect_parse_error(
      "{\"query\":\"solvability\",\"family\":\"omission\",\"n\":3,"
      "\"param\":1,\"max_depth\":3,\"num_values\":2,\"max_states\":-4,"
      "\"build_table\":true,\"require_broadcastable\":false,"
      "\"strong_validity\":false}",
      "query json: member \"max_states\" must be a non-negative integer");
  expect_parse_error(
      "{\"query\":\"solvability\",\"family\":\"omission\",\"n\":3,"
      "\"param\":1,\"max_depth\":3,\"num_values\":2,\"max_states\":10,"
      "\"build_table\":1,\"require_broadcastable\":false,"
      "\"strong_validity\":false}",
      "query json: member \"build_table\" must be a boolean");
  expect_parse_error(
      "{\"query\":\"solvability\",\"family\":\"omission\",\"n\":3,"
      "\"param\":1,\"max_depth\":3,\"num_values\":2,\"max_states\":10,"
      "\"build_table\":true,\"require_broadcastable\":false,"
      "\"strong_validity\":false,\"extra\":1}",
      "query json: unknown member \"extra\"");
  expect_parse_error(
      "{\"query\":\"depth_series\",\"family\":\"lossy_link\",\"n\":2,"
      "\"param\":7,\"depth\":3,\"num_values\":2,\"max_states\":10,"
      "\"topology\":\"weird\",\"pview_set\":0}",
      "query json: unknown topology \"weird\"");
  expect_parse_error(
      "{\"query\":\"depth_series\",\"family\":\"lossy_link\",\"n\":2,"
      "\"param\":7,\"depth\":3,\"num_values\":2,\"max_states\":10,"
      "\"topology\":\"min\",\"pview_set\":4294967296}",
      "query json: member \"pview_set\" is out of range");
  // The series encoding does not accept solvability members and vice
  // versa -- the kinds stay disjoint on the wire.
  expect_parse_error(
      "{\"query\":\"depth_series\",\"family\":\"lossy_link\",\"n\":2,"
      "\"param\":7,\"max_depth\":3,\"num_values\":2,\"max_states\":10,"
      "\"topology\":\"min\",\"pview_set\":0}",
      "query json: unknown member \"max_depth\"");
}

TEST(QueryJson, AcceptsMembersInAnyOrder) {
  const Query query = api::parse_query(
      "{\"family\":\"omission\",\"param\":1,\"n\":3,"
      "\"query\":\"solvability\",\"strong_validity\":false,"
      "\"max_depth\":3,\"num_values\":2,\"max_states\":10,"
      "\"build_table\":true,\"require_broadcastable\":false}");
  EXPECT_EQ(api::kind_of(query), api::QueryKind::kSolvability);
  // Re-serialization restores the canonical member order.
  EXPECT_EQ(api::query_to_string(query).substr(0, 9), "{\"query\":");
}

}  // namespace
}  // namespace topocon
