// Tests for the P-view-topology analysis mode (Section 4.1 / 5.2):
// component structure under d_P for various P, and the ordering
//   components(d_min) <= components(d_{p}) <= components(d_max)
// that makes the minimum topology the (only) correct characterization
// topology -- single-process and common-prefix topologies over-separate.
#include <set>

#include <gtest/gtest.h>

#include "adversary/lossy_link.hpp"
#include "core/epsilon_approx.hpp"

namespace topocon {
namespace {

AnalysisOptions pview(int depth, NodeMask pset) {
  AnalysisOptions options;
  options.depth = depth;
  options.keep_levels = false;
  options.topology = AdjacencyTopology::kPView;
  options.pview_set = pset;
  return options;
}

AnalysisOptions min_topology(int depth) {
  AnalysisOptions options;
  options.depth = depth;
  options.keep_levels = false;
  return options;
}

TEST(PViewTopology, FullSetGivesDiscreteComponents) {
  // d_[n] = d_max: two leaves are adjacent iff ALL views coincide, i.e.,
  // iff they are the same deduplicated leaf -- every component singleton.
  const auto ma = make_lossy_link(0b111);
  const DepthAnalysis analysis = analyze_depth(*ma, pview(3, 0b11));
  EXPECT_EQ(analysis.components.size(), analysis.leaves().size());
  // In particular d_max "separates" the valences even though consensus is
  // impossible: common-prefix separation is not a solvability criterion.
  EXPECT_TRUE(analysis.valence_separated);
}

TEST(PViewTopology, SingleProcessRefinesMin) {
  const auto ma = make_lossy_link(0b111);
  for (int depth = 1; depth <= 4; ++depth) {
    const DepthAnalysis min_analysis =
        analyze_depth(*ma, min_topology(depth));
    const DepthAnalysis p0 = analyze_depth(*ma, pview(depth, 0b01));
    const DepthAnalysis p1 = analyze_depth(*ma, pview(depth, 0b10));
    const DepthAnalysis both = analyze_depth(*ma, pview(depth, 0b11));
    EXPECT_LE(min_analysis.components.size(), p0.components.size());
    EXPECT_LE(min_analysis.components.size(), p1.components.size());
    EXPECT_LE(p0.components.size(), both.components.size());
    EXPECT_LE(p1.components.size(), both.components.size());
  }
}

TEST(PViewTopology, SingleProcessComponentsAreViewClasses) {
  const auto ma = make_lossy_link(0b011);
  const DepthAnalysis analysis = analyze_depth(*ma, pview(2, 0b01));
  // Components = distinct view ids of process 0 at depth 2.
  std::set<ViewId> distinct;
  for (const PrefixState& leaf : analysis.leaves()) {
    distinct.insert(leaf.views[0]);
  }
  EXPECT_EQ(analysis.components.size(), distinct.size());
}

TEST(PViewTopology, OverSeparationIsNotSolvability) {
  // Under d_{1} the full lossy link already separates the valences (x1 is
  // always in process 1's view), yet consensus is impossible: only the
  // minimum topology's verdict matters.
  const auto ma = make_lossy_link(0b111);
  const DepthAnalysis under_p1 = analyze_depth(*ma, pview(2, 0b10));
  EXPECT_TRUE(under_p1.valence_separated);
  const DepthAnalysis under_min = analyze_depth(*ma, min_topology(2));
  EXPECT_FALSE(under_min.valence_separated);
}

TEST(PViewTopology, MatchesMinForSingletonAlphabetStructure) {
  // For {<->} everything is common knowledge after round 1: the joint
  // topologies coincide with the min topology at depth >= 1.
  const auto ma = make_lossy_link(0b100);
  const DepthAnalysis min_analysis = analyze_depth(*ma, min_topology(2));
  const DepthAnalysis both = analyze_depth(*ma, pview(2, 0b11));
  EXPECT_EQ(min_analysis.components.size(), both.components.size());
}

}  // namespace
}  // namespace topocon
