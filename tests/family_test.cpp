// Error-path coverage of the family adapter layer: exact
// std::invalid_argument messages for every family in known_families(),
// plus the grid-expansion helpers behind the scenario catalog.
#include <gtest/gtest.h>

#include <climits>
#include <stdexcept>

#include "adversary/family.hpp"
#include "adversary/heard_of.hpp"
#include "adversary/mobile_failure.hpp"

namespace topocon {
namespace {

void expect_invalid(const FamilyPoint& point, const std::string& message) {
  try {
    make_family_adversary(point);
    FAIL() << point.family << " n=" << point.n << " param=" << point.param
           << " did not throw";
  } catch (const std::invalid_argument& error) {
    EXPECT_EQ(std::string(error.what()), message)
        << point.family << " n=" << point.n << " param=" << point.param;
  }
}

TEST(FamilyValidation, UnknownFamily) {
  expect_invalid({"nope", 2, 0}, "unknown adversary family: nope");
  EXPECT_THROW(family_param_range("nope", 2), std::invalid_argument);
}

TEST(FamilyValidation, LossyLink) {
  expect_invalid({"lossy_link", 3, 1}, "lossy_link: n must be 2 (got 3)");
  expect_invalid({"lossy_link", 2, 0},
                 "lossy_link: param must be in [1, 7] (got 0)");
  expect_invalid({"lossy_link", 2, 8},
                 "lossy_link: param must be in [1, 7] (got 8)");
  EXPECT_EQ(make_family_adversary({"lossy_link", 2, 1})->num_processes(), 2);
}

TEST(FamilyValidation, Omission) {
  expect_invalid({"omission", 1, 0}, "omission: n must be >= 2 (got 1)");
  expect_invalid({"omission", 3, -1},
                 "omission: param must be in [0, 6] (got -1)");
  expect_invalid({"omission", 3, 7},
                 "omission: param must be in [0, 6] (got 7)");
  EXPECT_EQ(make_family_adversary({"omission", 2, 2})->num_processes(), 2);
}

TEST(FamilyValidation, HeardOf) {
  expect_invalid({"heard_of", 0, 1}, "heard_of: n must be >= 2 (got 0)");
  expect_invalid({"heard_of", 3, 0},
                 "heard_of: param must be in [1, 3] (got 0)");
  expect_invalid({"heard_of", 3, 4},
                 "heard_of: param must be in [1, 3] (got 4)");
  EXPECT_EQ(make_family_adversary({"heard_of", 2, 1})->num_processes(), 2);
}

TEST(FamilyValidation, HeardOfRounds) {
  expect_invalid({"heard_of_rounds", 1, 1},
                 "heard_of_rounds: n must be in [2, 4] (got 1)");
  expect_invalid({"heard_of_rounds", 5, 1},
                 "heard_of_rounds: n must be in [2, 4] (got 5)");
  expect_invalid({"heard_of_rounds", 3, 0},
                 "heard_of_rounds: param must be in [1, inf] (got 0)");
  EXPECT_EQ(make_family_adversary({"heard_of_rounds", 2, 2})->num_processes(),
            2);
  EXPECT_EQ(family_point_label({"heard_of_rounds", 3, 4}), "n=3 p=4");
}

TEST(FamilyValidation, HeardOfRoundsAutomaton) {
  // Alphabet: each receiver misses at most one sender -> n^n graphs.
  const auto n2 = make_family_adversary({"heard_of_rounds", 2, 2});
  EXPECT_EQ(n2->alphabet_size(), 4);
  const auto n3 = make_family_adversary({"heard_of_rounds", 3, 2});
  EXPECT_EQ(n3->alphabet_size(), 27);
  EXPECT_TRUE(n3->is_compact());

  // The uniform (complete) round resets the counter; `period` consecutive
  // non-uniform rounds are rejected.
  const auto* adversary =
      dynamic_cast<const HeardOfRoundsAdversary*>(n3.get());
  ASSERT_NE(adversary, nullptr);
  const int uniform = adversary->uniform_letter();
  EXPECT_EQ(adversary->graph(uniform), Digraph::complete(3));
  const int lossy = uniform == 0 ? 1 : 0;
  EXPECT_FALSE(adversary->safety_rejects({lossy, uniform, lossy}));
  EXPECT_TRUE(adversary->safety_rejects({lossy, lossy}));
  EXPECT_FALSE(adversary->safety_rejects({uniform, lossy, uniform, lossy}));

  // Liveness on lassos: a cycle without the uniform round drifts the
  // counter past any finite period, however long.
  const auto lazy = make_family_adversary({"heard_of_rounds", 3, 100});
  EXPECT_TRUE(lazy->admits_lasso({lossy}, {uniform, lossy}));
  EXPECT_FALSE(lazy->admits_lasso({uniform}, {lossy}));

  // period = 1 admits only the complete graph.
  const auto strict = make_family_adversary({"heard_of_rounds", 2, 1});
  for (int letter = 0; letter < strict->alphabet_size(); ++letter) {
    EXPECT_EQ(strict->safety_rejects({letter}),
              strict->graph(letter) != Digraph::complete(2));
  }
}

TEST(FamilyValidation, HeardOfRoundsComposes) {
  // Compact and non-oblivious: accepted by the composed-spec codec (only
  // vssc/finite_loss are barred), including under a window combinator.
  const std::string spec =
      R"({"op":"product","of":[{"family":"heard_of_rounds","n":2,"param":2},{"family":"lossy_link","n":2,"param":7}]})";
  const FamilyPoint point{"composed:" + spec, 2, 0};
  EXPECT_EQ(family_point_label(point), spec);
  EXPECT_EQ(make_family_adversary(point)->num_processes(), 2);
}

TEST(FamilyValidation, MobileFailure) {
  expect_invalid({"mobile_failure", 1, 1},
                 "mobile_failure: n must be in [2, 6] (got 1)");
  expect_invalid({"mobile_failure", 7, 1},
                 "mobile_failure: n must be in [2, 6] (got 7)");
  // The parameter cap keeps 1 + n * r inside AdvState.
  expect_invalid({"mobile_failure", 3, 0},
                 "mobile_failure: param must be in [1, 715827882] (got 0)");
  expect_invalid({"mobile_failure", 2, INT_MAX},
                 "mobile_failure: param must be in [1, 1073741823] "
                 "(got 2147483647)");
  EXPECT_EQ(make_family_adversary({"mobile_failure", 2, 1})->num_processes(),
            2);
  EXPECT_EQ(family_point_label({"mobile_failure", 3, 2}), "n=3 r=2");
}

TEST(FamilyValidation, MobileFailureAutomaton) {
  // Alphabet: the clean round plus, per sender, every nonempty dropped
  // subset of its n - 1 outgoing edges -> 1 + n * (2^(n-1) - 1) graphs.
  EXPECT_EQ(make_family_adversary({"mobile_failure", 2, 1})->alphabet_size(),
            3);
  EXPECT_EQ(make_family_adversary({"mobile_failure", 4, 1})->alphabet_size(),
            29);
  const auto n3 = make_family_adversary({"mobile_failure", 3, 2});
  EXPECT_EQ(n3->alphabet_size(), 10);
  EXPECT_TRUE(n3->is_compact());

  // Letter 0 is the clean round; letters 1..3 fault sender 0, 4..6
  // sender 1, 7..9 sender 2.
  const auto* adversary =
      dynamic_cast<const MobileFailureAdversary*>(n3.get());
  ASSERT_NE(adversary, nullptr);
  EXPECT_EQ(adversary->persistence(), 2);
  EXPECT_EQ(adversary->graph(0), Digraph::complete(3));
  EXPECT_EQ(adversary->fault_of(0), -1);
  EXPECT_EQ(adversary->fault_of(1), 0);
  EXPECT_EQ(adversary->fault_of(4), 1);
  EXPECT_EQ(adversary->fault_of(9), 2);

  // A sender may stay faulty for `persistence` rounds, not more; a clean
  // round or a different sender resets the streak.
  EXPECT_FALSE(adversary->safety_rejects({1, 2}));
  EXPECT_TRUE(adversary->safety_rejects({1, 2, 3}));
  EXPECT_FALSE(adversary->safety_rejects({1, 0, 2, 3}));
  EXPECT_FALSE(adversary->safety_rejects({1, 4, 2, 5}));

  // persistence = 1 forces the fault to move (or vanish) every round.
  const auto strict = make_family_adversary({"mobile_failure", 3, 1});
  EXPECT_TRUE(strict->safety_rejects({1, 2}));
  EXPECT_FALSE(strict->safety_rejects({1, 4, 1, 4}));

  // Liveness on lassos: a cycle faulting one fixed sender drifts its
  // streak across unrollings however large the persistence; cycles with
  // a clean round or a second sender reset mid-pass and are admitted.
  const auto lazy = make_family_adversary({"mobile_failure", 3, 100});
  EXPECT_FALSE(lazy->admits_lasso({}, {1}));
  EXPECT_FALSE(lazy->admits_lasso({4}, {1, 2}));
  EXPECT_TRUE(lazy->admits_lasso({1}, {1, 4}));
  EXPECT_TRUE(lazy->admits_lasso({1}, {0}));
}

TEST(FamilyValidation, MobileFailureComposes) {
  // Compact and non-oblivious, so it composes like heard_of_rounds.
  const std::string spec =
      R"({"op":"window","w":2,"of":[{"family":"mobile_failure","n":2,"param":1}]})";
  const FamilyPoint point{"composed:" + spec, 2, 0};
  EXPECT_EQ(family_point_label(point), spec);
  EXPECT_EQ(make_family_adversary(point)->num_processes(), 2);
}

TEST(FamilyValidation, WindowedLossyLink) {
  expect_invalid({"windowed_lossy_link", 3, 1},
                 "windowed_lossy_link: n must be 2 (got 3)");
  expect_invalid({"windowed_lossy_link", 2, 0},
                 "windowed_lossy_link: param must be in [1, inf] (got 0)");
  EXPECT_EQ(
      make_family_adversary({"windowed_lossy_link", 2, 2})->num_processes(),
      2);
}

TEST(FamilyValidation, Vssc) {
  expect_invalid({"vssc", 1, 1}, "vssc: n must be >= 2 (got 1)");
  expect_invalid({"vssc", 2, 0}, "vssc: param must be in [1, inf] (got 0)");
  EXPECT_EQ(make_family_adversary({"vssc", 2, 1})->num_processes(), 2);
}

TEST(FamilyValidation, FiniteLoss) {
  expect_invalid({"finite_loss", 1, 0},
                 "finite_loss: n must be >= 2 (got 1)");
  expect_invalid({"finite_loss", 2, 1},
                 "finite_loss: param must be in [0, 0] (got 1)");
  EXPECT_EQ(make_family_adversary({"finite_loss", 2, 0})->num_processes(),
            2);
}

TEST(FamilyValidation, ComposedSpecGrammarErrors) {
  expect_invalid(
      {R"(composed:{"op":"interleave","of":[{"family":"omission","n":2,"param":1},{"family":"omission","n":2,"param":0}]})",
       2, 0},
      "composed: unknown combinator 'interleave'");
  expect_invalid(
      {R"(composed:{"op":"product","of":[{"family":"omission","n":2,"param":1}]})",
       2, 0},
      "composed: product needs >= 2 components (got 1)");
  expect_invalid(
      {R"(composed:{"op":"union","of":[{"family":"omission","n":2,"param":1}]})",
       2, 0},
      "composed: union needs >= 2 components (got 1)");
  expect_invalid(
      {R"(composed:{"op":"window","w":2,"of":[{"family":"omission","n":2,"param":1},{"family":"omission","n":2,"param":0}]})",
       2, 0},
      "composed: window needs exactly 1 component (got 2)");
  expect_invalid(
      {R"(composed:{"op":"window","of":[{"family":"omission","n":2,"param":1}]})",
       2, 0},
      "composed: window needs a w member");
  expect_invalid(
      {R"(composed:{"op":"product","bogus":1,"of":[{"family":"omission","n":2,"param":1},{"family":"omission","n":2,"param":0}]})",
       2, 0},
      "composed: unknown member 'bogus'");
}

TEST(FamilyValidation, ComposedSpecSemanticErrors) {
  // Components must agree on the process count...
  expect_invalid(
      {R"(composed:{"op":"product","of":[{"family":"omission","n":3,"param":1},{"family":"omission","n":2,"param":0}]})",
       3, 0},
      "composed: component n must be 3 (got 2)");
  // ...and the point's n must equal that common count.
  expect_invalid(
      {R"(composed:{"op":"union","of":[{"family":"omission","n":3,"param":1},{"family":"omission","n":3,"param":0}]})",
       2, 0},
      "composed: n must be 3 (got 2)");
  // The param slot is unused for composed points; the spec is the label.
  expect_invalid(
      {R"(composed:{"op":"union","of":[{"family":"omission","n":2,"param":1},{"family":"omission","n":2,"param":0}]})",
       2, 1},
      "composed: param must be 0 (got 1)");
  // Only compact leaves compose (closedness under product/union is what
  // keeps the default liveness hooks exact).
  expect_invalid(
      {R"(composed:{"op":"window","w":2,"of":[{"family":"vssc","n":2,"param":1}]})",
       2, 0},
      "composed: non-compact leaf family vssc is not composable");
  expect_invalid(
      {R"(composed:{"op":"window","w":0,"of":[{"family":"omission","n":2,"param":1}]})",
       2, 0},
      "composed: window w must be >= 1 (got 0)");
  // Leaf errors surface the family layer's own exact message.
  expect_invalid(
      {R"(composed:{"op":"window","w":2,"of":[{"family":"lossy_link","n":2,"param":9}]})",
       2, 0},
      "lossy_link: param must be in [1, 7] (got 9)");
}

TEST(FamilyValidation, ComposedPointsBuildAndLabelAsTheSpec) {
  const std::string spec =
      R"({"op":"product","of":[{"family":"lossy_link","n":2,"param":7},{"family":"lossy_link","n":2,"param":3}]})";
  const FamilyPoint point{"composed:" + spec, 2, 0};
  EXPECT_EQ(family_point_label(point), spec);
  const FamilyParamRange range = family_param_range(point.family, 2);
  EXPECT_EQ(range.min, 0);
  EXPECT_EQ(range.max, 0);
  EXPECT_EQ(make_family_adversary(point)->num_processes(), 2);
}

TEST(FamilyValidation, EveryKnownFamilyHasARangeAndBuilds) {
  for (const std::string& family : known_families()) {
    const int n = 2;  // valid for every family
    const FamilyParamRange range = family_param_range(family, n);
    EXPECT_LE(range.min, range.max) << family;
    EXPECT_STRNE(range.meaning, "") << family;
    const auto adversary =
        make_family_adversary({family, n, range.min});
    EXPECT_EQ(adversary->num_processes(), n) << family;
  }
}

TEST(FamilyGrid, ExpandsValidatedPoints) {
  const std::vector<FamilyPoint> grid = family_grid("omission", 3, 0, 6);
  ASSERT_EQ(grid.size(), 7u);
  EXPECT_EQ(grid.front().param, 0);
  EXPECT_EQ(grid.back().param, 6);
  for (const FamilyPoint& point : grid) {
    EXPECT_EQ(point.family, "omission");
    EXPECT_EQ(point.n, 3);
  }
}

TEST(FamilyGrid, RejectsEmptyAndOutOfRangeIntervals) {
  EXPECT_THROW(family_grid("omission", 3, 4, 2), std::invalid_argument);
  EXPECT_THROW(family_grid("lossy_link", 2, 0, 3), std::invalid_argument);
  EXPECT_THROW(family_grid("heard_of", 3, 1, 4), std::invalid_argument);
}

TEST(FamilyGrid, RejectsAbsurdIntervalsBeforeAllocating) {
  // Endpoints are validated (and the point count bounded) before any
  // reserve, so operator-supplied extremes fail cleanly instead of
  // overflowing or exhausting memory.
  EXPECT_THROW(family_grid("windowed_lossy_link", 2, 1, 2'000'000'000),
               std::invalid_argument);
  EXPECT_THROW(family_grid("omission", 3, -2'000'000'000, 2'000'000'000),
               std::invalid_argument);
  // n*(n-1) saturates instead of overflowing int.
  EXPECT_EQ(family_param_range("omission", 65536).max, INT_MAX);
}

TEST(FamilyGrid, TerminatesWithIntMaxUpperBound) {
  // INT_MAX is a legal param_max for the window families; the expansion
  // loop must not rely on `param <= INT_MAX` ever going false.
  const std::vector<FamilyPoint> grid =
      family_grid("vssc", 2, INT_MAX - 2, INT_MAX);
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_EQ(grid.back().param, INT_MAX);
}

TEST(FamilyGrid, ParamRangeMatchesDocumentedBounds) {
  EXPECT_EQ(family_param_range("lossy_link", 2).min, 1);
  EXPECT_EQ(family_param_range("lossy_link", 2).max, 7);
  EXPECT_EQ(family_param_range("omission", 3).max, 6);
  EXPECT_EQ(family_param_range("heard_of", 3).max, 3);
  EXPECT_EQ(family_param_range("mobile_failure", 3).max, 715827882);
  EXPECT_EQ(family_param_range("windowed_lossy_link", 2).max, INT_MAX);
  EXPECT_EQ(family_param_range("vssc", 4).min, 1);
  EXPECT_EQ(family_param_range("finite_loss", 2).max, 0);
}

}  // namespace
}  // namespace topocon
