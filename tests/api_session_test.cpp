// The api facade: Session execution semantics, Observer streaming, the
// decision-table extraction query, and the Session-reuse determinism
// contract -- two consecutive run() calls on one Session produce
// byte-identical artifacts to two fresh Sessions, at 1 and 4 threads.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/api.hpp"
#include "core/solvability.hpp"
#include "runtime/sweep/parallel_solver.hpp"

namespace topocon {
namespace {

using api::Query;
using api::Session;
using sweep::JobOutcome;

std::vector<Query> atlas_queries() {
  std::vector<Query> queries;
  SolvabilityOptions options;
  options.max_depth = 5;
  for (const int mask : {1, 3, 7}) {
    queries.push_back(api::solvability({"lossy_link", 2, mask}, options));
  }
  return queries;
}

std::vector<Query> mixed_queries() {
  std::vector<Query> queries = atlas_queries();
  AnalysisOptions series;
  series.depth = 4;
  queries.push_back(api::depth_series({"lossy_link", 2, 7}, series));
  queries.push_back(api::decision_table({"lossy_link", 2, 3}));
  return queries;
}

std::string history_json(const Session& session) {
  std::ostringstream out;
  session.write_json(out);
  return out.str();
}

TEST(ApiSession, OutcomesMatchTheSerialChecker) {
  Session session({.num_threads = 2, .record_global = false});
  const std::vector<JobOutcome> outcomes =
      session.run("atlas", atlas_queries());
  ASSERT_EQ(outcomes.size(), 3u);
  SolvabilityOptions options;
  options.max_depth = 5;
  for (std::size_t j = 0; j < outcomes.size(); ++j) {
    const auto ma =
        make_family_adversary(api::point_of(atlas_queries()[j]));
    const SolvabilityResult serial = check_solvability(*ma, options);
    EXPECT_EQ(outcomes[j].result.verdict, serial.verdict)
        << outcomes[j].label;
    EXPECT_EQ(outcomes[j].result.certified_depth, serial.certified_depth);
  }
  EXPECT_EQ(outcomes[0].label, "{<-}");
  EXPECT_EQ(outcomes[2].label, "{<-, ->, <->}");
}

// Satellite requirement: Session reuse changes nothing. Two consecutive
// runs on one Session == the same two runs on two fresh Sessions,
// byte-for-byte, at 1 and 4 threads.
TEST(ApiSession, ReuseProducesByteIdenticalArtifactsToFreshSessions) {
  for (const int threads : {1, 4}) {
    Session reused({.num_threads = threads, .record_global = false});
    reused.run("first", mixed_queries());
    reused.run("second", atlas_queries());
    const std::string reused_json = history_json(reused);

    Session fresh_first({.num_threads = threads, .record_global = false});
    fresh_first.run("first", mixed_queries());
    Session fresh_second({.num_threads = threads, .record_global = false});
    fresh_second.run("second", atlas_queries());

    // Per-run records are identical...
    ASSERT_EQ(reused.history().size(), 2u);
    EXPECT_EQ(reused.history()[0].second, fresh_first.history()[0].second)
        << "first run differs at " << threads << " threads";
    EXPECT_EQ(reused.history()[1].second, fresh_second.history()[0].second)
        << "second run differs at " << threads << " threads";

    // ... and so is the serialized document (fresh histories concatenated
    // == reused session's two-sweep document).
    Session combined({.num_threads = threads, .record_global = false});
    combined.run("first", mixed_queries());
    combined.run("second", atlas_queries());
    EXPECT_EQ(history_json(combined), reused_json)
        << "document differs at " << threads << " threads";
  }
}

TEST(ApiSession, ThreadCountNeverChangesTheDocument) {
  Session serial({.num_threads = 1, .record_global = false});
  serial.run("mixed", mixed_queries());
  const std::string base = history_json(serial);
  for (const int threads : {2, 4}) {
    Session session({.num_threads = threads, .record_global = false});
    session.run("mixed", mixed_queries());
    EXPECT_EQ(history_json(session), base)
        << "JSON differs at " << threads << " threads";
  }
}

TEST(ApiSession, ObserverStreamsStartDepthAndDoneForEveryJob) {
  class CountingObserver : public api::Observer {
   public:
    void on_job_start(std::size_t job, const Query& query) override {
      ++starts[job];
      labels[job] = api::label_of(query);
    }
    void on_depth(std::size_t job, const DepthStats& stats) override {
      depths[job].push_back(stats.depth);
    }
    void on_job_done(std::size_t job, const JobOutcome& outcome) override {
      ++dones[job];
      done_labels[job] = outcome.label;
    }
    std::vector<int> starts = std::vector<int>(5, 0);
    std::vector<int> dones = std::vector<int>(5, 0);
    std::vector<std::string> labels = std::vector<std::string>(5);
    std::vector<std::string> done_labels = std::vector<std::string>(5);
    std::vector<std::vector<int>> depths =
        std::vector<std::vector<int>>(5);
  };

  for (const int threads : {1, 4}) {
    Session session({.num_threads = threads, .record_global = false});
    CountingObserver observer;
    const std::vector<JobOutcome> outcomes =
        session.run("observed", mixed_queries(), &observer);
    ASSERT_EQ(outcomes.size(), 5u);
    for (std::size_t j = 0; j < outcomes.size(); ++j) {
      EXPECT_EQ(observer.starts[j], 1) << "job " << j;
      EXPECT_EQ(observer.dones[j], 1) << "job " << j;
      EXPECT_EQ(observer.labels[j], outcomes[j].label);
      EXPECT_EQ(observer.done_labels[j], outcomes[j].label);
      const std::vector<DepthStats>& stats =
          outcomes[j].kind == sweep::JobKind::kDepthSeries
              ? outcomes[j].series
              : outcomes[j].result.per_depth;
      ASSERT_EQ(observer.depths[j].size(), stats.size()) << "job " << j;
      for (std::size_t d = 0; d < stats.size(); ++d) {
        EXPECT_EQ(observer.depths[j][d], stats[d].depth) << "job " << j;
      }
    }
  }
}

TEST(ApiSession, ObserverStreamsChunkProgressAndItNeverChangesResults) {
  class ChunkObserver : public api::Observer {
   public:
    void on_depth(std::size_t job, const ChunkProgress& progress) override {
      ++chunk_events;
      EXPECT_LT(job, 5u);
      EXPECT_GE(progress.level, 1);
      EXPECT_LE(progress.level, progress.depth);
      EXPECT_GE(progress.chunks_done, 1u);
      EXPECT_LE(progress.chunks_done, progress.chunks_total);
    }
    int chunk_events = 0;
  };

  // Force the finest sub-root sharding; the document must not change.
  Session base({.num_threads = 2, .record_global = false});
  base.run("chunked", mixed_queries());
  sweep::set_default_chunk_states(1);
  Session session({.num_threads = 2, .record_global = false});
  ChunkObserver observer;
  session.run("chunked", mixed_queries(), &observer);
  sweep::set_default_chunk_states(0);
  EXPECT_GT(observer.chunk_events, 0);
  EXPECT_EQ(history_json(session), history_json(base));
}

TEST(ApiSession, DecisionTableQueryRecordsTheCertificateShape) {
  Session session({.num_threads = 2, .record_global = false});
  const JobOutcome outcome =
      session.run_one(api::decision_table({"lossy_link", 2, 0b011}));
  ASSERT_TRUE(outcome.result.table.has_value());
  const sweep::JobRecord record = sweep::summarize(outcome);
  EXPECT_EQ(record.kind, sweep::JobKind::kDecisionTable);
  ASSERT_TRUE(record.table.has_value());
  EXPECT_EQ(record.table->entries, outcome.result.table->size());
  std::uint64_t total = 0;
  for (const std::uint64_t entries : record.round_entries) total += entries;
  EXPECT_EQ(total, record.table->entries);
  // The unsolvable full set yields a verdict but no shape.
  const JobOutcome merged =
      session.run_one(api::decision_table({"lossy_link", 2, 0b111},
                                          {.max_depth = 4}));
  const sweep::JobRecord merged_record = sweep::summarize(merged);
  EXPECT_EQ(merged_record.verdict, "NOT-SEPARATED");
  EXPECT_FALSE(merged_record.table.has_value());
  EXPECT_TRUE(merged_record.round_entries.empty());
}

TEST(ApiSession, CertificatesOutliveTheRunViaTheInternerArena) {
  Session session({.num_threads = 2, .record_global = false});
  // Take a decision table out of a run, drop the outcome vector, and use
  // the table afterwards: the session arena keeps its interner alive.
  std::optional<DecisionTable> table;
  {
    const JobOutcome outcome =
        session.run_one(api::solvability({"lossy_link", 2, 0b011}));
    table = outcome.result.table;
  }
  session.run("later", atlas_queries());  // more work on the same pool
  ASSERT_TRUE(table.has_value());
  EXPECT_GT(table->size(), 0u);
  EXPECT_EQ(table->worst_case_decision_round(), 1);
}

TEST(ApiSession, InvalidQueryThrowsBeforeRunning) {
  Session session({.num_threads = 1, .record_global = false});
  EXPECT_THROW(session.run("bad", {api::solvability({"nope", 2, 0})}),
               std::invalid_argument);
  EXPECT_TRUE(session.history().empty());
}

}  // namespace
}  // namespace topocon
