// Tests for the extracted universal algorithm (Theorem 5.5): the decision
// table must decide every admissible sequence by the certified depth, obey
// the ball-containment rule, and satisfy Termination/Agreement/Validity
// exhaustively over all admissible prefixes.
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "adversary/lossy_link.hpp"
#include "adversary/omission.hpp"
#include "adversary/sampler.hpp"
#include "core/solvability.hpp"

namespace topocon {
namespace {

// Exhaustive ground-truth harness: for a solvable adversary, walk every
// admissible letter sequence of the certified depth for every input vector
// and check the table's decisions.
void exhaustive_check(const MessageAdversary& ma, int num_values = 2) {
  SolvabilityOptions options;
  options.max_depth = 6;
  options.num_values = num_values;
  const SolvabilityResult result = check_solvability(ma, options);
  ASSERT_EQ(result.verdict, SolvabilityVerdict::kSolvable) << ma.name();
  ASSERT_TRUE(result.table.has_value());
  const DecisionTable& table = *result.table;
  const int depth = result.certified_depth;
  ViewInterner& interner = *table.interner();

  const auto sequences = enumerate_letter_sequences(ma, depth);
  for (const InputVector& inputs :
       all_input_vectors(ma.num_processes(), num_values)) {
    for (const auto& letters : sequences) {
      // Replay the run round by round, tracking per-process decisions.
      ViewVector views = interner.initial(inputs);
      std::vector<std::optional<Value>> decided(
          static_cast<std::size_t>(ma.num_processes()));
      for (int p = 0; p < ma.num_processes(); ++p) {
        decided[static_cast<std::size_t>(p)] =
            table.decide(0, p, views[static_cast<std::size_t>(p)]);
      }
      for (int t = 1; t <= depth; ++t) {
        views = interner.advance(views,
                                 ma.graph(letters[static_cast<std::size_t>(
                                     t - 1)]));
        for (int p = 0; p < ma.num_processes(); ++p) {
          auto& d = decided[static_cast<std::size_t>(p)];
          if (!d.has_value()) {
            d = table.decide(t, p, views[static_cast<std::size_t>(p)]);
          }
        }
      }
      // Termination by the certified depth.
      Value common = -1;
      for (int p = 0; p < ma.num_processes(); ++p) {
        ASSERT_TRUE(decided[static_cast<std::size_t>(p)].has_value())
            << ma.name() << " inputs/letters undecided, p=" << p;
        // Agreement.
        const Value v = *decided[static_cast<std::size_t>(p)];
        if (common < 0) common = v;
        EXPECT_EQ(v, common);
      }
      // Validity.
      const Value uniform = uniform_value(inputs);
      if (uniform >= 0) {
        EXPECT_EQ(common, uniform);
      }
    }
  }
}

TEST(DecisionTable, ExhaustiveLossyLinkPair) {
  exhaustive_check(*make_lossy_link(0b011));
}

TEST(DecisionTable, ExhaustiveLossyLinkLeftBoth) {
  exhaustive_check(*make_lossy_link(0b101));
}

TEST(DecisionTable, ExhaustiveLossyLinkRightBoth) {
  exhaustive_check(*make_lossy_link(0b110));
}

TEST(DecisionTable, ExhaustiveSingletons) {
  exhaustive_check(*make_lossy_link(0b001));
  exhaustive_check(*make_lossy_link(0b010));
  exhaustive_check(*make_lossy_link(0b100));
}

TEST(DecisionTable, ExhaustiveOmissionN2) {
  exhaustive_check(*make_omission_adversary(2, 0));
}

TEST(DecisionTable, ExhaustiveOmissionN3F1) {
  exhaustive_check(*make_omission_adversary(3, 1));
}

TEST(DecisionTable, ExhaustiveTernaryValues) {
  exhaustive_check(*make_lossy_link(0b011), /*num_values=*/3);
}

TEST(DecisionTable, DecidedFractionReachesOne) {
  const SolvabilityResult result =
      check_solvability(*make_lossy_link(0b011));
  ASSERT_TRUE(result.table.has_value());
  const auto& fractions = result.table->decided_fraction();
  ASSERT_FALSE(fractions.empty());
  EXPECT_DOUBLE_EQ(fractions.back(), 1.0);
  EXPECT_LE(result.table->worst_case_decision_round(),
            result.certified_depth);
  EXPECT_GT(result.table->size(), 0u);
}

TEST(DecisionTable, SaveLoadRoundTrip) {
  const auto ma = make_lossy_link(0b011);
  const SolvabilityResult result = check_solvability(*ma);
  ASSERT_TRUE(result.table.has_value());
  std::stringstream buffer;
  result.table->save(buffer);
  const DecisionTable loaded = DecisionTable::load(buffer);
  EXPECT_EQ(loaded.depth(), result.table->depth());
  EXPECT_EQ(loaded.num_values(), result.table->num_values());
  EXPECT_EQ(loaded.size(), result.table->size());
  EXPECT_EQ(loaded.decided_fraction(), result.table->decided_fraction());

  // The loaded table must drive identical decisions on every admissible
  // run (fresh interner, same structural ids).
  ViewInterner& interner = *loaded.interner();
  for (const auto& letters :
       enumerate_letter_sequences(*ma, loaded.depth())) {
    for (const InputVector& inputs : all_input_vectors(2, 2)) {
      RunPrefix prefix;
      prefix.inputs = inputs;
      prefix.graphs = letters_to_graphs(*ma, letters);
      const ViewVector views = interner.of_prefix(prefix);
      for (int p = 0; p < 2; ++p) {
        const auto from_loaded = loaded.decide(
            loaded.depth(), p, views[static_cast<std::size_t>(p)]);
        const ViewVector original_views =
            result.table->interner()->of_prefix(prefix);
        const auto from_original = result.table->decide(
            result.table->depth(), p,
            original_views[static_cast<std::size_t>(p)]);
        ASSERT_TRUE(from_loaded.has_value());
        EXPECT_EQ(from_loaded, from_original);
      }
    }
  }
}

TEST(DecisionTable, LoadRejectsGarbage) {
  std::stringstream bad("not-a-table at all");
  EXPECT_THROW((void)DecisionTable::load(bad), std::runtime_error);
  std::stringstream truncated("topocon-decision-table-v1\n2 2\ninterner 5\n");
  EXPECT_THROW((void)DecisionTable::load(truncated), std::runtime_error);
}

TEST(DecisionTable, NoDecisionForUnknownView) {
  const SolvabilityResult result =
      check_solvability(*make_lossy_link(0b011));
  ASSERT_TRUE(result.table.has_value());
  // A view id that does not occur at round 0 in the table.
  EXPECT_FALSE(result.table->decide(0, 0, ViewId{999999}).has_value());
  EXPECT_FALSE(result.table->decide(-1, 0, 0).has_value());
  EXPECT_FALSE(result.table->decide(99, 0, 0).has_value());
}

}  // namespace
}  // namespace topocon
