// The parsing side of the sweep JSON schema: JsonReader primitives, the
// JobRecord round-trip (every JobKind written by JsonWriter parses back
// to an equal record -- the JSON-visible projection of a JobOutcome),
// and checkpoint files including the resume-from-partial-file case.
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/api.hpp"
#include "core/solvability.hpp"
#include "runtime/sweep/checkpoint.hpp"
#include "runtime/sweep/json.hpp"

namespace topocon {
namespace {

using sweep::CheckpointHeader;
using sweep::CheckpointState;
using sweep::CheckpointWriter;
using sweep::JobOutcome;
using sweep::JobRecord;
using sweep::JsonReader;
using sweep::JsonStyle;
using sweep::JsonValue;
using sweep::JsonWriter;
using sweep::SweepSpec;

TEST(JsonReaderTest, ParsesPrimitivesAndPreservesMemberOrder) {
  const JsonValue value = JsonReader::parse(
      "{\"b\": true, \"a\": -12, \"u\": 18446744073709551615, "
      "\"s\": \"x\", \"list\": [1, 2, 3], \"empty\": {}, \"z\": null}");
  ASSERT_TRUE(value.is_object());
  EXPECT_EQ(value.members[0].first, "b");
  EXPECT_EQ(value.members[1].first, "a");
  EXPECT_TRUE(value.at("b").as_bool());
  EXPECT_EQ(value.at("a").as_int(), -12);
  EXPECT_EQ(value.at("u").as_uint(), 18446744073709551615ull);
  EXPECT_EQ(value.at("s").as_string(), "x");
  ASSERT_EQ(value.at("list").elements.size(), 3u);
  EXPECT_EQ(value.at("list").elements[2].as_int(), 3);
  EXPECT_TRUE(value.at("empty").is_object());
  EXPECT_TRUE(value.at("z").is_null());
  EXPECT_EQ(value.find("missing"), nullptr);
  EXPECT_THROW(value.at("missing"), std::runtime_error);
}

TEST(JsonReaderTest, EscapedStringsRoundTrip) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  std::ostringstream out;
  JsonWriter writer(out);
  writer.begin_object();
  writer.member(nasty, nasty);
  writer.end_object();
  const JsonValue value = JsonReader::parse(out.str());
  ASSERT_EQ(value.members.size(), 1u);
  EXPECT_EQ(value.members[0].first, nasty);
  EXPECT_EQ(value.members[0].second.as_string(), nasty);
}

TEST(JsonReaderTest, CompactAndPrettyStylesParseIdentically) {
  auto emit = [](JsonStyle style) {
    std::ostringstream out;
    JsonWriter writer(out, style);
    writer.begin_object();
    writer.member("n", 3);
    writer.key("series");
    writer.begin_array();
    writer.value("a");
    writer.value(-1);
    writer.end_array();
    writer.end_object();
    return out.str();
  };
  const std::string pretty = emit(JsonStyle::kPretty);
  const std::string compact = emit(JsonStyle::kCompact);
  EXPECT_EQ(compact, "{\"n\":3,\"series\":[\"a\",-1]}");
  EXPECT_NE(pretty, compact);
  // Structurally identical: re-serializing the parsed compact form in
  // pretty style reproduces the pretty document.
  const JsonValue parsed = JsonReader::parse(compact);
  std::ostringstream out;
  JsonWriter writer(out);
  writer.begin_object();
  writer.member("n", parsed.at("n").as_int());
  writer.key("series");
  writer.begin_array();
  writer.value(parsed.at("series").elements[0].as_string());
  writer.value(parsed.at("series").elements[1].as_int());
  writer.end_array();
  writer.end_object();
  EXPECT_EQ(out.str(), pretty);
}

TEST(JsonReaderTest, RejectsMalformedInput) {
  EXPECT_THROW(JsonReader::parse("1.5"), std::runtime_error);
  EXPECT_THROW(JsonReader::parse("1e3"), std::runtime_error);
  EXPECT_THROW(JsonReader::parse("{\"a\": 1"), std::runtime_error);
  EXPECT_THROW(JsonReader::parse("{\"a\": 1} extra"), std::runtime_error);
  EXPECT_THROW(JsonReader::parse("{'a': 1}"), std::runtime_error);
  EXPECT_THROW(JsonReader::parse(""), std::runtime_error);
  EXPECT_THROW(JsonReader::parse("nul"), std::runtime_error);
  EXPECT_THROW(JsonReader::parse("\"\\q\""), std::runtime_error);
  EXPECT_THROW(JsonReader::parse("99999999999999999999999999"),
               std::runtime_error);
}

// ---- JobRecord round-trips ----------------------------------------------

/// A small sweep with jobs of every kind; solvable lossy-link points
/// exercise final_analysis + table, the full mask exercises the merged
/// path, the series job exercises the kDepthSeries encoding, and the
/// extraction job the kDecisionTable encoding (round_entries).
std::vector<JobOutcome> run_mixed_sweep() {
  api::Session session({.num_threads = 2, .record_global = false});
  std::vector<api::Query> queries;
  SolvabilityOptions options;
  options.max_depth = 5;
  for (const int mask : {1, 3, 7}) {
    queries.push_back(api::solvability({"lossy_link", 2, mask}, options));
  }
  AnalysisOptions series;
  series.depth = 3;
  queries.push_back(api::depth_series({"lossy_link", 2, 7}, series));
  queries.push_back(api::decision_table({"lossy_link", 2, 3}, options));
  return session.run("roundtrip", queries);
}

std::string record_json(const JobRecord& record, JsonStyle style) {
  std::ostringstream out;
  JsonWriter writer(out, style);
  sweep::write_job_record_json(writer, record);
  return out.str();
}

TEST(SweepJsonRoundTrip, EveryJobKindParsesBackToAnEqualRecord) {
  const std::vector<JobOutcome> outcomes = run_mixed_sweep();
  ASSERT_EQ(outcomes.size(), 5u);
  bool saw_table = false;
  bool saw_series = false;
  bool saw_extraction = false;
  for (const JobOutcome& outcome : outcomes) {
    const JobRecord record = sweep::summarize(outcome);
    saw_table |= record.table.has_value();
    saw_series |= record.kind == sweep::JobKind::kDepthSeries;
    saw_extraction |= record.kind == sweep::JobKind::kDecisionTable &&
                      !record.round_entries.empty();
    for (const JsonStyle style : {JsonStyle::kPretty, JsonStyle::kCompact}) {
      const JobRecord reparsed = sweep::job_record_from_json(
          JsonReader::parse(record_json(record, style)));
      EXPECT_EQ(reparsed, record) << record.family << " " << record.label;
    }
  }
  EXPECT_TRUE(saw_table);
  EXPECT_TRUE(saw_series);
  EXPECT_TRUE(saw_extraction);
}

TEST(SweepJsonRoundTrip, FullDocumentParsesBack) {
  const std::vector<JobOutcome> outcomes = run_mixed_sweep();
  std::vector<JobRecord> records;
  for (const JobOutcome& outcome : outcomes) {
    records.push_back(sweep::summarize(outcome));
  }
  std::ostringstream out;
  JsonWriter writer(out);
  writer.begin_object();
  writer.member("schema", sweep::kSweepSchema);
  writer.key("sweeps");
  writer.begin_array();
  sweep::write_sweep_json(writer, "roundtrip", records);
  writer.end_array();
  writer.end_object();

  std::istringstream in(out.str());
  const sweep::SweepDocument document = sweep::read_sweep_document(in);
  ASSERT_EQ(document.sweeps.size(), 1u);
  EXPECT_EQ(document.sweeps[0].first, "roundtrip");
  EXPECT_EQ(document.sweeps[0].second, records);
}

TEST(SweepJsonRoundTrip, RejectsUnknownSchemaKindAndVerdict) {
  std::istringstream bad_schema("{\"schema\": \"nope\", \"sweeps\": []}");
  EXPECT_THROW(sweep::read_sweep_document(bad_schema), std::runtime_error);
  EXPECT_THROW(sweep::job_record_from_json(JsonReader::parse(
                   "{\"family\": \"f\", \"label\": \"l\", \"n\": 2, "
                   "\"kind\": \"mystery\"}")),
               std::runtime_error);
  EXPECT_THROW(sweep::job_record_from_json(JsonReader::parse(
                   "{\"family\": \"f\", \"label\": \"l\", \"n\": 2, "
                   "\"kind\": \"solvability\", \"verdict\": \"MAYBE\"}")),
               std::runtime_error);
}

// ---- Checkpoint files ----------------------------------------------------

std::string checkpoint_text(const std::vector<JobRecord>& records) {
  std::ostringstream out;
  CheckpointWriter writer(out);
  CheckpointHeader header;
  header.sweep_name = "roundtrip";
  header.num_jobs = records.size() + 1;  // one job intentionally missing
  header.meta.emplace_back("scenario", "roundtrip");
  header.meta.emplace_back("param_max", "7");
  writer.write_header(header);
  for (std::size_t i = 0; i < records.size(); ++i) {
    writer.append(i, records[i]);
  }
  return out.str();
}

TEST(CheckpointTest, WritesOneLinePerJobAndReadsBack) {
  const std::vector<JobOutcome> outcomes = run_mixed_sweep();
  std::vector<JobRecord> records;
  for (const JobOutcome& outcome : outcomes) {
    records.push_back(sweep::summarize(outcome));
  }
  const std::string text = checkpoint_text(records);
  EXPECT_TRUE(sweep::looks_like_checkpoint(text));
  EXPECT_FALSE(sweep::looks_like_checkpoint("{\"schema\": \"other\"}"));
  EXPECT_FALSE(sweep::looks_like_checkpoint("junk"));

  std::istringstream in(text);
  const CheckpointState state = sweep::read_checkpoint(in);
  EXPECT_EQ(state.header.sweep_name, "roundtrip");
  EXPECT_EQ(state.header.num_jobs, records.size() + 1);
  ASSERT_EQ(state.header.meta.size(), 2u);
  EXPECT_EQ(state.header.meta[1],
            (std::pair<std::string, std::string>{"param_max", "7"}));
  EXPECT_FALSE(state.partial_tail);
  ASSERT_EQ(state.completed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(state.completed[i].first, i);
    EXPECT_EQ(state.completed[i].second, records[i]);
  }
}

TEST(CheckpointTest, TornTrailingLineIsDroppedEarlierRecordsSurvive) {
  const std::vector<JobOutcome> outcomes = run_mixed_sweep();
  std::vector<JobRecord> records;
  for (const JobOutcome& outcome : outcomes) {
    records.push_back(sweep::summarize(outcome));
  }
  const std::string text = checkpoint_text(records);
  // Cut inside the last line: everything before it must be recovered.
  const std::size_t last_line_start = text.rfind("{\"job\":");
  ASSERT_NE(last_line_start, std::string::npos);
  const std::string torn = text.substr(0, last_line_start + 10);
  std::istringstream in(torn);
  const CheckpointState state = sweep::read_checkpoint(in);
  EXPECT_TRUE(state.partial_tail);
  ASSERT_EQ(state.completed.size(), records.size() - 1);
  for (std::size_t i = 0; i + 1 < records.size(); ++i) {
    EXPECT_EQ(state.completed[i].second, records[i]);
  }
}

TEST(CheckpointTest, RejectsCorruptHeadersAndIndices) {
  std::istringstream empty("");
  EXPECT_THROW(sweep::read_checkpoint(empty), std::runtime_error);
  std::istringstream wrong_schema("{\"schema\": \"nope\"}\n");
  EXPECT_THROW(sweep::read_checkpoint(wrong_schema), std::runtime_error);
  // A record index beyond num_jobs is corruption, not a torn line.
  std::ostringstream out;
  CheckpointWriter writer(out);
  CheckpointHeader header;
  header.sweep_name = "x";
  header.num_jobs = 1;
  writer.write_header(header);
  writer.append(5, JobRecord{});
  out << "{\"job\":0,\"record\":";  // torn line after the corrupt one
  std::istringstream in(out.str());
  EXPECT_THROW(sweep::read_checkpoint(in), std::runtime_error);
}

}  // namespace
}  // namespace topocon
