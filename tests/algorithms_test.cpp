// Tests for the concrete consensus algorithms: AckConsensus under the
// finite-loss adversary, FloodMin under omission budgets (positive and
// negative controls), and the VSSC stable-window algorithm.
#include <random>

#include <gtest/gtest.h>

#include "adversary/finite_loss.hpp"
#include "adversary/omission.hpp"
#include "adversary/sampler.hpp"
#include "adversary/vssc.hpp"
#include "runtime/ack_consensus.hpp"
#include "runtime/flood_min.hpp"
#include "runtime/simulator.hpp"
#include "runtime/verify.hpp"
#include "runtime/vssc_algo.hpp"

namespace topocon {
namespace {

// ------------------------------------------------------------------- Ack

TEST(AckConsensus, DecidesUnderSampledFiniteLoss) {
  std::mt19937_64 rng(2024);
  for (int n = 2; n <= 3; ++n) {
    const FiniteLossAdversary ma(n);
    const AckConsensus algo(n);
    for (int trial = 0; trial < 200; ++trial) {
      const InputVector inputs = sample_inputs(n, 2, rng);
      const RunPrefix prefix = sample_prefix(ma, inputs, 24, rng);
      const ConsensusOutcome outcome = simulate(algo, prefix);
      const ConsensusCheck check = check_consensus(outcome, inputs);
      EXPECT_TRUE(check.ok()) << check.detail;
      // The decision is always process 0's input.
      EXPECT_EQ(*outcome.decisions[0], inputs[0]);
    }
  }
}

TEST(AckConsensus, DecisionLatencyTracksLossPhase) {
  // All losses in the first k rounds; decision must come within ~3 rounds
  // after the network heals (one flood + one ack flood).
  const int n = 3;
  const FiniteLossAdversary ma(n);
  const AckConsensus algo(n);
  for (int lossy = 0; lossy <= 8; ++lossy) {
    RunPrefix prefix;
    prefix.inputs = {1, 0, 0};
    for (int t = 0; t < lossy; ++t) {
      prefix.graphs.push_back(Digraph::empty(n));
    }
    for (int t = 0; t < 4; ++t) {
      prefix.graphs.push_back(Digraph::complete(n));
    }
    const ConsensusOutcome outcome = simulate(algo, prefix);
    EXPECT_TRUE(outcome.all_decided());
    EXPECT_LE(outcome.last_decision_round(), lossy + 2);
  }
}

TEST(AckConsensus, NoTerminationUnderForeverLossyClosure) {
  // The closure permits losing everything forever; Ack must then never
  // decide at processes other than... in fact nobody decides: process 1
  // never learns x_0.
  const int n = 2;
  const AckConsensus algo(n);
  RunPrefix prefix;
  prefix.inputs = {0, 1};
  for (int t = 0; t < 20; ++t) {
    prefix.graphs.push_back(Digraph::empty(n));
  }
  const ConsensusOutcome outcome = simulate(algo, prefix);
  EXPECT_FALSE(outcome.all_decided());
}

TEST(AckConsensus, SingleProcessDecidesImmediately) {
  const AckConsensus algo(1);
  RunPrefix prefix;
  prefix.inputs = {5};
  prefix.graphs = {};
  const ConsensusOutcome outcome = simulate(algo, prefix);
  EXPECT_TRUE(outcome.all_decided());
  EXPECT_EQ(outcome.decision_round[0], 0);
  EXPECT_EQ(*outcome.decisions[0], 5);
}

// -------------------------------------------------------------- FloodMin

TEST(FloodMin, SolvesOmissionWithinBudget) {
  // f <= n-2: decide min after n-1 rounds; exhaustive over letter
  // sequences at depth n-1 for n = 3, f = 1.
  const int n = 3;
  const auto ma = make_omission_adversary(n, n - 2);
  const FloodMinAlgorithm algo(n - 1);
  const auto sequences = enumerate_letter_sequences(*ma, n - 1);
  for (const InputVector& inputs : all_input_vectors(n, 2)) {
    for (const auto& letters : sequences) {
      RunPrefix prefix;
      prefix.inputs = inputs;
      prefix.graphs = letters_to_graphs(*ma, letters);
      const ConsensusOutcome outcome = simulate(algo, prefix);
      const ConsensusCheck check = check_consensus(outcome, inputs);
      EXPECT_TRUE(check.ok()) << check.detail << prefix.to_string();
    }
  }
}

TEST(FloodMin, FailsAgreementAtOmissionNMinusOne) {
  // f = n-1 lets the adversary isolate the minimum holder: processes
  // disagree. Construct the witness directly for n = 2: both directions
  // cut alternately is not needed -- one round of "->" only reversed:
  // here cut 0 -> 1, so process 1 never sees the 0.
  const int n = 2;
  Digraph isolate0(n);
  isolate0.add_edge(1, 0);  // only 1 -> 0 delivered; 0 -> 1 omitted
  RunPrefix prefix;
  prefix.inputs = {0, 1};
  prefix.graphs = {isolate0};
  const FloodMinAlgorithm algo(n - 1);
  const ConsensusOutcome outcome = simulate(algo, prefix);
  ASSERT_TRUE(outcome.all_decided());
  EXPECT_NE(*outcome.decisions[0], *outcome.decisions[1]);
}

TEST(FloodMin, DecidesExactlyAtConfiguredRound) {
  const FloodMinAlgorithm algo(3);
  RunPrefix prefix;
  prefix.inputs = {4, 2};
  prefix.graphs = {Digraph::complete(2), Digraph::complete(2),
                   Digraph::complete(2), Digraph::complete(2)};
  const ConsensusOutcome outcome = simulate(algo, prefix);
  EXPECT_EQ(outcome.decision_round[0], 3);
  EXPECT_EQ(outcome.decision_round[1], 3);
  EXPECT_EQ(*outcome.decisions[0], 2);
}

// ------------------------------------------------------------------ VSSC

TEST(VsscConsensus, DecidesOnSampledStableRuns) {
  std::mt19937_64 rng(77);
  for (int n = 2; n <= 3; ++n) {
    const int stability = 3 * n;
    const VsscAdversary ma(n, stability);
    const VsscConsensus algo(n);
    int decided_runs = 0;
    for (int trial = 0; trial < 100; ++trial) {
      const InputVector inputs = sample_inputs(n, 2, rng);
      const RunPrefix prefix = sample_prefix(ma, inputs, 5 * n + 8, rng);
      const ConsensusOutcome outcome = simulate(algo, prefix);
      const ConsensusCheck check = check_consensus(outcome, inputs);
      // Agreement and validity must hold unconditionally.
      EXPECT_TRUE(check.agreement) << check.detail;
      EXPECT_TRUE(check.validity) << check.detail;
      if (outcome.all_decided()) ++decided_runs;
    }
    // Sampled runs place the window within the horizon; the vast majority
    // must decide. (The window may end too close to the horizon for the
    // flooding to finish in rare placements.)
    EXPECT_GE(decided_runs, 60) << "n=" << n;
  }
}

TEST(VsscConsensus, DecidesDeterministicallyOnHandcraftedWindow) {
  // n = 3: alternate star roots, then a long stable window rooted at
  // process 2, then alternation again.
  const int n = 3;
  auto star = [&](int root) {
    Digraph g(n);
    for (int q = 0; q < n; ++q) {
      if (q != root) g.add_edge(root, q);
    }
    return g;
  };
  RunPrefix prefix;
  prefix.inputs = {1, 1, 0};
  prefix.graphs = {star(0), star(1), star(0)};
  for (int t = 0; t < 3 * n; ++t) prefix.graphs.push_back(star(2));
  for (int t = 0; t < 4; ++t) prefix.graphs.push_back(star(t % 2));
  const VsscConsensus algo(n);
  const ConsensusOutcome outcome = simulate(algo, prefix);
  ASSERT_TRUE(outcome.all_decided());
  for (int p = 0; p < n; ++p) {
    EXPECT_EQ(*outcome.decisions[p], 0);  // min input of root {2}
  }
}

TEST(VsscConsensus, DoesNotDecideWithoutStableWindow) {
  const int n = 2;
  auto star = [&](int root) {
    Digraph g(n);
    g.add_edge(root, 1 - root);
    return g;
  };
  RunPrefix prefix;
  prefix.inputs = {0, 1};
  for (int t = 0; t < 20; ++t) {
    prefix.graphs.push_back(star(t % 2));  // alternate forever
  }
  const VsscConsensus algo(n);
  const ConsensusOutcome outcome = simulate(algo, prefix);
  EXPECT_FALSE(outcome.all_decided());
}

TEST(VsscKnowledge, MergeIsMonotone) {
  VsscKnowledge a, b;
  a.inputs = {0, -1, -1};
  b.inputs = {-1, 1, -1};
  a.ensure_rounds(2);
  b.ensure_rounds(1);
  a.inmasks[0][0] = 0b011;
  b.inmasks[0][1] = 0b110;
  a.merge(b);
  EXPECT_EQ(a.inputs[0], 0);
  EXPECT_EQ(a.inputs[1], 1);
  EXPECT_EQ(a.inputs[2], -1);
  EXPECT_EQ(a.inmasks[0][0], 0b011);
  EXPECT_EQ(a.inmasks[0][1], 0b110);
  EXPECT_EQ(a.inmasks[1][0], -1);
}

}  // namespace
}  // namespace topocon
