// Tests for the strong-validity variant (Definition 5.1's remark): the
// decision value must be some process's input in that very run. The
// checker's strong mode must certify the same adversaries (broadcastable
// components always admit a strong assignment, Theorem 5.9), and the
// extracted strong tables must satisfy strong validity exhaustively.
#include <bit>

#include <gtest/gtest.h>

#include "adversary/lossy_link.hpp"
#include "adversary/omission.hpp"
#include "adversary/sampler.hpp"
#include "core/solvability.hpp"
#include "runtime/simulator.hpp"
#include "runtime/universal_runner.hpp"
#include "runtime/verify.hpp"

namespace topocon {
namespace {

void strong_exhaustive(const MessageAdversary& ma, int num_values) {
  SolvabilityOptions options;
  options.max_depth = 6;
  options.num_values = num_values;
  options.strong_validity = true;
  const SolvabilityResult result = check_solvability(ma, options);
  ASSERT_EQ(result.verdict, SolvabilityVerdict::kSolvable) << ma.name();
  const UniversalAlgorithm algo(*result.table);
  for (const auto& letters :
       enumerate_letter_sequences(ma, result.certified_depth)) {
    for (const InputVector& inputs :
         all_input_vectors(ma.num_processes(), num_values)) {
      RunPrefix prefix;
      prefix.inputs = inputs;
      prefix.graphs = letters_to_graphs(ma, letters);
      const ConsensusOutcome outcome = simulate(algo, prefix);
      const ConsensusCheck check = check_consensus(outcome, inputs);
      ASSERT_TRUE(check.ok_strong())
          << ma.name() << " " << prefix.to_string() << ": " << check.detail;
    }
  }
}

TEST(StrongValidity, LossyLinkPairBinary) {
  strong_exhaustive(*make_lossy_link(0b011), 2);
}

TEST(StrongValidity, LossyLinkPairTernary) {
  strong_exhaustive(*make_lossy_link(0b011), 3);
}

TEST(StrongValidity, LossyLinkLeftBothTernary) {
  strong_exhaustive(*make_lossy_link(0b101), 3);
}

TEST(StrongValidity, SingletonTernary) {
  strong_exhaustive(*make_lossy_link(0b010), 3);
}

TEST(StrongValidity, OmissionN3F1) {
  strong_exhaustive(*make_omission_adversary(3, 1), 2);
}

// Strong and weak certification coincide on the lossy-link family
// (broadcastable components always admit a strong assignment).
TEST(StrongValidity, SameVerdictsAsWeakOnLossyLink) {
  for (unsigned mask = 1; mask < 8; ++mask) {
    SolvabilityOptions weak, strong;
    weak.max_depth = strong.max_depth = 5;
    weak.build_table = strong.build_table = false;
    strong.strong_validity = true;
    const auto ma = make_lossy_link(mask);
    EXPECT_EQ(check_solvability(*ma, weak).verdict,
              check_solvability(*ma, strong).verdict)
        << mask;
  }
}

// The weak table may decide a default value that nobody proposed (e.g. a
// non-valent component assigned 0 in ternary domains); the strong table
// must not. This pins down the semantic difference between the modes.
TEST(StrongValidity, WeakTableMayViolateStrongTableMustNot) {
  const auto ma = make_lossy_link(0b010);  // "->" only: p0 blind forever
  SolvabilityOptions weak;
  weak.num_values = 3;
  weak.max_depth = 5;
  const SolvabilityResult weak_result = check_solvability(*ma, weak);
  ASSERT_EQ(weak_result.verdict, SolvabilityVerdict::kSolvable);

  SolvabilityOptions strong = weak;
  strong.strong_validity = true;
  const SolvabilityResult strong_result = check_solvability(*ma, strong);
  ASSERT_EQ(strong_result.verdict, SolvabilityVerdict::kSolvable);

  // Under "->" the decision must depend on p0 alone (p1's view is a
  // function of p0's past); the strong table decides x_0 in every run.
  const UniversalAlgorithm algo(*strong_result.table);
  for (const InputVector& inputs : all_input_vectors(2, 3)) {
    RunPrefix prefix;
    prefix.inputs = inputs;
    for (int t = 0; t < strong_result.certified_depth; ++t) {
      prefix.graphs.push_back(ma->graph(0));
    }
    const ConsensusOutcome outcome = simulate(algo, prefix);
    ASSERT_TRUE(outcome.all_decided());
    const Value v = *outcome.decisions[0];
    EXPECT_TRUE(v == inputs[0] || v == inputs[1]);
  }
}

// Component-level invariants of the strong assignment.
TEST(StrongValidity, ComponentAssignmentsRespectCommonValues) {
  const auto ma = make_lossy_link(0b011);
  AnalysisOptions options;
  options.depth = 2;
  options.num_values = 3;
  const DepthAnalysis analysis = analyze_depth(*ma, options);
  ASSERT_TRUE(analysis.valence_separated);
  ASSERT_TRUE(analysis.strong_assignable);
  for (const ComponentInfo& info : analysis.components) {
    ASSERT_GE(info.assigned_value_strong, 0);
    EXPECT_TRUE(info.common_input_values &
                (1u << info.assigned_value_strong));
    if (info.valence_mask != 0) {
      EXPECT_EQ(1 << info.assigned_value_strong, (int)info.valence_mask);
    }
    // Broadcaster's value is always a feasible strong choice (Thm 5.9).
    if (info.broadcasters != 0) {
      EXPECT_NE(info.common_input_values, 0u);
    }
  }
}

}  // namespace
}  // namespace topocon
