// Unit tests for the analysis helpers: literature oracles and the table
// formatter used by every bench report.
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/oracles.hpp"
#include "analysis/report.hpp"

namespace topocon {
namespace {

TEST(Oracles, LossyLinkTable) {
  EXPECT_TRUE(lossy_link_solvable(0b001));
  EXPECT_TRUE(lossy_link_solvable(0b010));
  EXPECT_TRUE(lossy_link_solvable(0b100));
  EXPECT_TRUE(lossy_link_solvable(0b011));
  EXPECT_TRUE(lossy_link_solvable(0b101));
  EXPECT_TRUE(lossy_link_solvable(0b110));
  EXPECT_FALSE(lossy_link_solvable(0b111));
}

TEST(Oracles, OmissionThreshold) {
  EXPECT_TRUE(omission_solvable(2, 0));
  EXPECT_FALSE(omission_solvable(2, 1));
  EXPECT_TRUE(omission_solvable(3, 1));
  EXPECT_FALSE(omission_solvable(3, 2));
  EXPECT_TRUE(omission_solvable(5, 3));
  EXPECT_FALSE(omission_solvable(5, 4));
}

TEST(Oracles, VsscThreeValued) {
  EXPECT_EQ(vssc_solvable(2, 1), std::optional<bool>(false));
  EXPECT_EQ(vssc_solvable(3, 1), std::optional<bool>(false));
  EXPECT_EQ(vssc_solvable(2, 6), std::optional<bool>(true));
  EXPECT_EQ(vssc_solvable(3, 9), std::optional<bool>(true));
  EXPECT_FALSE(vssc_solvable(3, 4).has_value());
}

TEST(Report, TableAlignsColumns) {
  Table table({"a", "long-header"});
  table.add_row({"xx", "y"});
  table.add_row({"1"});  // short rows are padded
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| a  | long-header | "), std::string::npos);
  EXPECT_NE(text.find("| xx | y           | "), std::string::npos);
  // Header rule present.
  EXPECT_NE(text.find("|----"), std::string::npos);
}

TEST(Report, Formatters) {
  EXPECT_EQ(fmt(0.5, 2), "0.50");
  EXPECT_EQ(fmt(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(yes_no(true), "yes");
  EXPECT_EQ(yes_no(false), "no");
}

}  // namespace
}  // namespace topocon
